// Property tests for the indexed tree core: on random GenerateTree corpora
// (and shape-extreme trees), the O(1) predicates, the O(log n) LCA, the
// post-order numbering, and the interval-built axis matrices must agree
// bit-for-bit with the walk-based reference implementations kept in
// tree/naive_reference.h as test-only oracles.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/axes.h"
#include "tree/generators.h"
#include "tree/naive_reference.h"
#include "tree/tree.h"

namespace xpv {
namespace {

std::vector<Tree> Corpus(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tree> corpus;
  for (std::size_t nodes : {1u, 2u, 7u, 33u, 64u, 65u, 200u}) {
    RandomTreeOptions opts;
    opts.num_nodes = nodes;
    opts.alphabet_size = 1 + rng.Below(4);
    corpus.push_back(RandomTree(rng, opts));
  }
  {
    RandomTreeOptions opts;
    opts.num_nodes = 150;
    opts.max_children = 2;
    corpus.push_back(RandomTree(rng, opts));
  }
  corpus.push_back(PathTree(97));
  corpus.push_back(StarTree(96));
  corpus.push_back(PerfectBinaryTree(6));
  corpus.push_back(BibliographyTree(rng, 12));
  return corpus;
}

class TreeIndexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TreeIndexPropertyTest, PredicatesMatchNaiveWalksOnAllPairs) {
  for (const Tree& t : Corpus(GetParam())) {
    const NodeId n = static_cast<NodeId>(t.size());
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(t.Depth(v), naive::Depth(t, v)) << "v=" << v;
    }
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(t.IsAncestorOrSelf(u, v), naive::IsAncestorOrSelf(t, u, v))
            << "u=" << u << " v=" << v << "\ntree: " << t.ToTerm();
        EXPECT_EQ(t.IsFollowingSiblingOrSelf(u, v),
                  naive::IsFollowingSiblingOrSelf(t, u, v))
            << "u=" << u << " v=" << v << "\ntree: " << t.ToTerm();
        EXPECT_EQ(t.LeastCommonAncestor(u, v),
                  naive::LeastCommonAncestor(t, u, v))
            << "u=" << u << " v=" << v << "\ntree: " << t.ToTerm();
      }
    }
  }
}

TEST_P(TreeIndexPropertyTest, SubtreeSizeIsDescendantOrSelfCount) {
  for (const Tree& t : Corpus(GetParam())) {
    const NodeId n = static_cast<NodeId>(t.size());
    for (NodeId u = 0; u < n; ++u) {
      std::size_t count = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (naive::IsAncestorOrSelf(t, u, v)) ++count;
      }
      EXPECT_EQ(t.SubtreeSize(u), count) << "u=" << u;
    }
  }
}

TEST_P(TreeIndexPropertyTest, PostOrderMatchesExplicitTraversal) {
  for (const Tree& t : Corpus(GetParam())) {
    const std::vector<NodeId> expected = naive::PostOrder(t);
    for (NodeId v = 0; v < t.size(); ++v) {
      EXPECT_EQ(t.PostOrder(v), expected[v]) << "v=" << v;
    }
  }
}

TEST_P(TreeIndexPropertyTest, IntervalAxisMatricesMatchNaiveBuilders) {
  for (const Tree& t : Corpus(GetParam())) {
    for (Axis axis : kAllAxes) {
      EXPECT_EQ(AxisMatrix(t, axis), naive::AxisMatrix(t, axis))
          << AxisName(axis) << "\ntree: " << t.ToTerm();
    }
  }
}

TEST_P(TreeIndexPropertyTest, PostingListLabelSetsMatchNaiveScans) {
  for (const Tree& t : Corpus(GetParam())) {
    for (LabelId id = 0; id < t.alphabet_size(); ++id) {
      const std::string& name = t.label_string(id);
      EXPECT_EQ(LabelSet(t, name), naive::LabelSet(t, name)) << name;
      // Posting lists are document-ordered and complete.
      const std::vector<NodeId>& postings = t.LabelPostings(id);
      EXPECT_EQ(postings.size(), naive::LabelSet(t, name).Count());
      for (std::size_t i = 1; i < postings.size(); ++i) {
        EXPECT_LT(postings[i - 1], postings[i]);
      }
    }
    EXPECT_EQ(LabelSet(t, ""), naive::LabelSet(t, ""));
    EXPECT_EQ(LabelSet(t, "no_such_label"),
              naive::LabelSet(t, "no_such_label"));
  }
}

TEST_P(TreeIndexPropertyTest, AxisHoldsMatchesMatrixCell) {
  Rng rng(GetParam() ^ 0x5eed);
  for (const Tree& t : Corpus(GetParam())) {
    const NodeId n = static_cast<NodeId>(t.size());
    for (Axis axis : kAllAxes) {
      BitMatrix m = AxisMatrix(t, axis);
      for (int trial = 0; trial < 64; ++trial) {
        NodeId u = static_cast<NodeId>(rng.Below(n));
        NodeId v = static_cast<NodeId>(rng.Below(n));
        EXPECT_EQ(AxisHolds(t, axis, u, v), m.Get(u, v))
            << AxisName(axis) << " u=" << u << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeIndexPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xpv