// Tests for axis relations: matrix construction, linear-time set images,
// and algebraic properties (inverses, closures) over random trees.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/axes.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace xpv {
namespace {

Tree MustParse(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(AxisNameTest, RoundTrip) {
  for (Axis axis : kAllAxes) {
    Result<Axis> parsed = ParseAxis(AxisName(axis));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, axis);
  }
}

TEST(AxisNameTest, AcceptsXPathHyphens) {
  EXPECT_TRUE(ParseAxis("following-sibling").ok());
  EXPECT_TRUE(ParseAxis("preceding-sibling").ok());
  EXPECT_FALSE(ParseAxis("descendant-or-self").ok());
  EXPECT_FALSE(ParseAxis("attribute").ok());
}

TEST(InverseAxisTest, IsInvolutive) {
  for (Axis axis : kAllAxes) {
    EXPECT_EQ(InverseAxis(InverseAxis(axis)), axis);
  }
  EXPECT_EQ(InverseAxis(Axis::kChild), Axis::kParent);
  EXPECT_EQ(InverseAxis(Axis::kDescendant), Axis::kAncestor);
  EXPECT_EQ(InverseAxis(Axis::kFollowingSibling), Axis::kPrecedingSibling);
  EXPECT_EQ(InverseAxis(Axis::kSelf), Axis::kSelf);
}

TEST(AxisMatrixTest, HandcraftedChildAndParent) {
  // a(b(c,d),e) -- ids: a=0 b=1 c=2 d=3 e=4.
  Tree t = MustParse("a(b(c,d),e)");
  BitMatrix child = AxisMatrix(t, Axis::kChild);
  EXPECT_TRUE(child.Get(0, 1));
  EXPECT_TRUE(child.Get(0, 4));
  EXPECT_TRUE(child.Get(1, 2));
  EXPECT_TRUE(child.Get(1, 3));
  EXPECT_EQ(child.Count(), 4u);
  EXPECT_EQ(AxisMatrix(t, Axis::kParent), child.Transpose());
}

TEST(AxisMatrixTest, HandcraftedDescendant) {
  Tree t = MustParse("a(b(c,d),e)");
  BitMatrix desc = AxisMatrix(t, Axis::kDescendant);
  EXPECT_EQ(desc.Count(), 6u);  // a->{b,c,d,e}, b->{c,d}
  EXPECT_TRUE(desc.Get(0, 3));
  EXPECT_TRUE(desc.Get(1, 2));
  EXPECT_FALSE(desc.Get(0, 0));
  EXPECT_FALSE(desc.Get(2, 3));
}

TEST(AxisMatrixTest, HandcraftedSiblings) {
  Tree t = MustParse("a(b,c,d)");
  BitMatrix fs = AxisMatrix(t, Axis::kFollowingSibling);
  EXPECT_TRUE(fs.Get(1, 2));
  EXPECT_TRUE(fs.Get(1, 3));
  EXPECT_TRUE(fs.Get(2, 3));
  EXPECT_EQ(fs.Count(), 3u);
  EXPECT_EQ(AxisMatrix(t, Axis::kPrecedingSibling), fs.Transpose());
}

class AxisRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

// AxisMatrix agrees with the brute-force AxisHolds oracle on random trees.
TEST_P(AxisRandomTest, MatrixMatchesOracle) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(40);
  Tree t = RandomTree(rng, opts);
  for (Axis axis : kAllAxes) {
    BitMatrix m = AxisMatrix(t, axis);
    for (NodeId u = 0; u < t.size(); ++u) {
      for (NodeId v = 0; v < t.size(); ++v) {
        EXPECT_EQ(m.Get(u, v), AxisHolds(t, axis, u, v))
            << AxisName(axis) << " u=" << u << " v=" << v
            << " tree=" << t.ToTerm();
      }
    }
  }
}

// AxisImage(t, a, N) == columns reachable from N in AxisMatrix.
TEST_P(AxisRandomTest, ImageMatchesMatrix) {
  Rng rng(GetParam() + 1000);
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(50);
  Tree t = RandomTree(rng, opts);
  for (Axis axis : kAllAxes) {
    BitMatrix m = AxisMatrix(t, axis);
    for (int trial = 0; trial < 5; ++trial) {
      BitVector from(t.size());
      for (std::size_t k = 0; k < t.size() / 2 + 1; ++k) {
        from.Set(rng.Below(t.size()));
      }
      EXPECT_EQ(AxisImage(t, axis, from), m.ImageOf(from))
          << AxisName(axis) << " tree=" << t.ToTerm();
    }
  }
}

// Inverse axis relation == transposed matrix.
TEST_P(AxisRandomTest, InverseIsTranspose) {
  Rng rng(GetParam() + 2000);
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(40);
  Tree t = RandomTree(rng, opts);
  for (Axis axis : kAllAxes) {
    EXPECT_EQ(AxisMatrix(t, InverseAxis(axis)),
              AxisMatrix(t, axis).Transpose());
  }
}

// descendant == transitive closure of child; following_sibling == closure
// of the next-sibling relation.
TEST_P(AxisRandomTest, ClosureLaws) {
  Rng rng(GetParam() + 3000);
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(30);
  Tree t = RandomTree(rng, opts);

  BitMatrix child = AxisMatrix(t, Axis::kChild);
  BitMatrix closure(t.size());
  BitMatrix power = child;
  while (!power.None()) {
    closure = closure.Or(power);
    power = power.Multiply(child);
  }
  EXPECT_EQ(closure, AxisMatrix(t, Axis::kDescendant));

  BitMatrix ns(t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.next_sibling(v) != kNoNode) ns.Set(v, t.next_sibling(v));
  }
  BitMatrix ns_closure(t.size());
  power = ns;
  while (!power.None()) {
    ns_closure = ns_closure.Or(power);
    power = power.Multiply(ns);
  }
  EXPECT_EQ(ns_closure, AxisMatrix(t, Axis::kFollowingSibling));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AxisImageTest, PathTreeExtremes) {
  Tree t = PathTree(50);
  BitVector root_only(t.size());
  root_only.Set(0);
  BitVector desc = AxisImage(t, Axis::kDescendant, root_only);
  EXPECT_EQ(desc.Count(), 49u);
  BitVector leaf_only(t.size());
  leaf_only.Set(49);
  BitVector anc = AxisImage(t, Axis::kAncestor, leaf_only);
  EXPECT_EQ(anc.Count(), 49u);
}

TEST(AxisImageTest, StarTreeSiblings) {
  Tree t = StarTree(20);
  BitVector first(t.size());
  first.Set(1);  // first leaf
  EXPECT_EQ(AxisImage(t, Axis::kFollowingSibling, first).Count(), 19u);
  EXPECT_EQ(AxisImage(t, Axis::kPrecedingSibling, first).Count(), 0u);
}

TEST(LabelSetTest, WildcardAndNames) {
  Tree t = MustParse("a(b,a(b,c))");
  EXPECT_EQ(LabelSet(t, "").Count(), 5u);
  EXPECT_EQ(LabelSet(t, "a").Count(), 2u);
  EXPECT_EQ(LabelSet(t, "b").Count(), 2u);
  EXPECT_EQ(LabelSet(t, "c").Count(), 1u);
  EXPECT_EQ(LabelSet(t, "nope").Count(), 0u);
}

}  // namespace
}  // namespace xpv
