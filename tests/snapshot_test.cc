// Persistence battery for the disk-backed corpus (engine/snapshot.h,
// DocumentStore::SaveSnapshot/OpenSnapshot, spill-to-disk residency).
//
// Three pillars, mirroring the crash-consistency contract:
//   1. Round-trip differentials -- a reloaded corpus answers every query
//      byte-identically to the corpus that wrote it, with ZERO re-parses
//      and ZERO index rebuilds (the process-wide Tree counters prove it).
//   2. Corruption injection -- every truncation length, every byte flip,
//      reordered sections, and future format versions come back as typed
//      Status (kDataLoss / kInvalidArgument / kNotFound), never a crash;
//      the suites run under ASan/UBSan in CI.
//   3. Spill-to-disk residency -- cold documents leave RAM under a
//      budget, fault back in transparently, pinned documents never
//      spill, and Remove() of a spilled document leaves no orphaned
//      segment behind.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "engine/snapshot.h"
#include "tree/axes.h"
#include "tree/axis_cache.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace xpv {
namespace {

// ------------------------------------------------------------- utilities

/// Fresh empty directory under the test tmpdir, unique per call.
std::string MakeTempDir() {
  static int counter = 0;
  std::string path = ::testing::TempDir() + "xpv_snapshot_test_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(counter++);
  EXPECT_EQ(::mkdir(path.c_str(), 0755), 0) << path;
  return path;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// A small fuzzed document: shape rotates over the generator zoo so the
/// battery covers bibliography, restaurant, random, path, and star trees.
Tree FuzzTree(Rng& rng, std::size_t i) {
  switch (i % 5) {
    case 0:
      return BibliographyTree(rng, 2 + rng.Below(4));
    case 1:
      return RestaurantTree(rng, 2 + rng.Below(3), 2);
    case 2: {
      RandomTreeOptions options;
      options.num_nodes = 8 + rng.Below(40);
      return RandomTree(rng, options);
    }
    case 3:
      return PathTree(3 + rng.Below(12));
    default:
      return StarTree(4 + rng.Below(12));
  }
}

const char* kQueryMix[] = {
    "descendant::book/child::author",
    "child::*[descendant::title]",
    "descendant::* except descendant::book",
    "child::* except child::author[following_sibling::title]",
    "descendant::book[child::author]/$x",
    "$x/child::title",
};

/// Byte-identical result equality on the semantic payload (the planner's
/// routing may legitimately differ between a cold and a snapshot-warmed
/// corpus; the answers must not).
void ExpectResultsEqual(const std::vector<engine::QueryResult>& a,
                        const std::vector<engine::QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code()) << "job " << i;
    EXPECT_EQ(a[i].relation, b[i].relation) << "job " << i;
    EXPECT_EQ(a[i].from_root, b[i].from_root) << "job " << i;
    EXPECT_EQ(a[i].tuples, b[i].tuples) << "job " << i;
    EXPECT_EQ(a[i].boolean, b[i].boolean) << "job " << i;
    EXPECT_EQ(a[i].count, b[i].count) << "job " << i;
  }
}

// ------------------------------------------- segment-level round-trips

TEST(SnapshotSegmentTest, RoundTripPreservesTreeMetaAndWarmAxes) {
  Rng rng(11);
  const std::string dir = MakeTempDir();
  for (std::size_t i = 0; i < 10; ++i) {
    Tree tree = FuzzTree(rng, i);
    AxisCache cache(tree);
    // Warm a couple of axis relations so the segment carries them.
    cache.Matrix(Axis::kChild);
    cache.Matrix(Axis::kDescendant);

    const std::string path = dir + "/" + engine::SegmentFileName(i + 1);
    ASSERT_TRUE(engine::WriteDocumentSegment(path, i + 1,
                                             "doc" + std::to_string(i), tree,
                                             &cache, (i % 2) == 0)
                    .ok());

    auto loaded = engine::LoadDocumentSegment(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const engine::LoadedSegment& seg = loaded.value();
    EXPECT_EQ(seg.meta.document_id, i + 1);
    EXPECT_EQ(seg.meta.name, "doc" + std::to_string(i));
    EXPECT_EQ(seg.meta.interned, (i % 2) == 0);
    EXPECT_EQ(seg.tree, tree);
    EXPECT_GT(seg.mapped_bytes, 0u);

    // Exactly the warmed axes came back, in ascending order, and each
    // decodes to the relation the tree itself defines.
    ASSERT_EQ(seg.axes.size(), 2u);
    EXPECT_EQ(seg.axes[0].first, Axis::kChild);
    EXPECT_EQ(seg.axes[1].first, Axis::kDescendant);
    for (const auto& [axis, matrix] : seg.axes) {
      const IntervalMatrix truth = AxisIntervalMatrix(tree, axis);
      ASSERT_EQ(matrix.size(), truth.size());
      BitVector got, want;
      for (std::size_t row = 0; row < matrix.size(); ++row) {
        matrix.RowInto(row, got);
        truth.RowInto(row, want);
        EXPECT_EQ(got, want) << "axis " << AxisName(axis) << " row " << row;
      }
    }
  }
}

TEST(SnapshotSegmentTest, WriterIsByteDeterministic) {
  Rng rng(12);
  Tree tree = FuzzTree(rng, 0);
  AxisCache cache(tree);
  cache.Matrix(Axis::kChild);
  const std::string dir = MakeTempDir();
  const std::string p1 = dir + "/a.xpvseg";
  const std::string p2 = dir + "/b.xpvseg";
  ASSERT_TRUE(
      engine::WriteDocumentSegment(p1, 7, "n", tree, &cache, false).ok());
  ASSERT_TRUE(
      engine::WriteDocumentSegment(p2, 7, "n", tree, &cache, false).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

TEST(SnapshotSegmentTest, AxisMatrixForBackingMatchesFreshCacheBitForBit) {
  Rng rng(13);
  Tree tree = BibliographyTree(rng, 5);
  for (const Axis axis : kAllAxes) {
    // Dense backing must equal what a dense AxisCache builds.
    auto dense = engine::AxisMatrixForBacking(AxisIntervalMatrix(tree, axis),
                                              /*dense=*/true);
    AxisCache fresh(tree, AxisBacking::kDense);
    const BoolMatrix& want = fresh.Matrix(axis);
    ASSERT_EQ(dense->size(), want.size());
    BitVector got_row, want_row;
    for (std::size_t row = 0; row < want.size(); ++row) {
      dense->RowInto(row, got_row);
      want.RowInto(row, want_row);
      EXPECT_EQ(got_row, want_row) << AxisName(axis) << " row " << row;
    }
    EXPECT_NE(dense->AsDense(), nullptr);
    // Interval backing preserves the runs verbatim.
    auto sparse = engine::AxisMatrixForBacking(AxisIntervalMatrix(tree, axis),
                                               /*dense=*/false);
    EXPECT_NE(sparse->AsInterval(), nullptr);
  }
}

TEST(SnapshotManifestTest, RoundTripAndMissingDirectory) {
  const std::string dir = MakeTempDir();
  engine::SnapshotManifest manifest;
  manifest.next_document_id = 42;
  manifest.document_ids = {1, 3, 7, 41};
  ASSERT_TRUE(engine::WriteManifest(dir, manifest).ok());
  auto loaded = engine::LoadManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().next_document_id, 42u);
  EXPECT_EQ(loaded.value().document_ids, manifest.document_ids);

  auto missing = engine::LoadManifest(dir + "/nonexistent");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------- corruption battery

/// Writes one representative segment (meta + tree + axes sections) and
/// returns its bytes.
std::vector<std::uint8_t> GoldenSegmentBytes(const std::string& dir) {
  Rng rng(21);
  Tree tree = BibliographyTree(rng, 3);
  AxisCache cache(tree);
  cache.Matrix(Axis::kChild);
  cache.Matrix(Axis::kParent);
  const std::string path = dir + "/golden.xpvseg";
  EXPECT_TRUE(
      engine::WriteDocumentSegment(path, 9, "golden", tree, &cache, true)
          .ok());
  return ReadFileBytes(path);
}

/// A corrupted load must fail with a *typed* corruption code -- and must
/// not crash, which is what this battery really buys under ASan/UBSan.
void ExpectTypedCorruptionError(const Status& status) {
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
              status.code() == StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(SnapshotCorruptionTest, EveryTruncationLengthIsTypedError) {
  const std::string dir = MakeTempDir();
  const std::vector<std::uint8_t> golden = GoldenSegmentBytes(dir);
  ASSERT_GT(golden.size(), 28u);
  const std::string victim = dir + "/victim.xpvseg";
  for (std::size_t len = 0; len < golden.size(); ++len) {
    WriteFileBytes(victim, std::vector<std::uint8_t>(golden.begin(),
                                                     golden.begin() + len));
    auto loaded = engine::LoadDocumentSegment(victim);
    ASSERT_FALSE(loaded.ok()) << "truncation at " << len << " accepted";
    ExpectTypedCorruptionError(loaded.status());
  }
  // Trailing garbage is corruption too, not silently ignored slack.
  std::vector<std::uint8_t> padded = golden;
  padded.push_back(0xAB);
  WriteFileBytes(victim, padded);
  ExpectTypedCorruptionError(engine::LoadDocumentSegment(victim).status());
}

TEST(SnapshotCorruptionTest, EveryByteFlipIsTypedError) {
  const std::string dir = MakeTempDir();
  const std::vector<std::uint8_t> golden = GoldenSegmentBytes(dir);
  const std::string victim = dir + "/victim.xpvseg";
  // Every byte of the file sits under some CRC (payload CRCs cover the
  // payloads; the header CRCs cover the headers *including* the payload
  // CRC fields and themselves), so no single-byte flip may load.
  for (std::size_t pos = 0; pos < golden.size(); ++pos) {
    std::vector<std::uint8_t> mutated = golden;
    mutated[pos] ^= 0x01;
    WriteFileBytes(victim, mutated);
    auto loaded = engine::LoadDocumentSegment(victim);
    ASSERT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " accepted";
    ExpectTypedCorruptionError(loaded.status());
  }
}

/// Little-endian field readers for hand-carving segment bytes.
std::uint32_t ReadU32At(const std::vector<std::uint8_t>& b, std::size_t pos) {
  return static_cast<std::uint32_t>(b[pos]) |
         (static_cast<std::uint32_t>(b[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(b[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(b[pos + 3]) << 24);
}
std::uint64_t ReadU64At(const std::vector<std::uint8_t>& b, std::size_t pos) {
  return static_cast<std::uint64_t>(ReadU32At(b, pos)) |
         (static_cast<std::uint64_t>(ReadU32At(b, pos + 4)) << 32);
}
void WriteU32At(std::vector<std::uint8_t>& b, std::size_t pos,
                std::uint32_t v) {
  b[pos] = static_cast<std::uint8_t>(v);
  b[pos + 1] = static_cast<std::uint8_t>(v >> 8);
  b[pos + 2] = static_cast<std::uint8_t>(v >> 16);
  b[pos + 3] = static_cast<std::uint8_t>(v >> 24);
}

TEST(SnapshotCorruptionTest, SwappedSectionsAreDataLoss) {
  const std::string dir = MakeTempDir();
  const std::vector<std::uint8_t> golden = GoldenSegmentBytes(dir);
  // Walk the frame structure: header is 28 bytes, each section header is
  // 24 bytes with the payload length at offset +8.
  std::vector<std::pair<std::size_t, std::size_t>> sections;  // (pos, len)
  std::size_t pos = 28;
  while (pos < golden.size()) {
    const std::size_t payload =
        static_cast<std::size_t>(ReadU64At(golden, pos + 8));
    sections.emplace_back(pos, 24 + payload);
    pos += 24 + payload;
  }
  ASSERT_GE(sections.size(), 2u);
  // Swap the first two whole sections (meta <-> tree): framing and CRCs
  // stay individually valid, only the required ascending order breaks.
  std::vector<std::uint8_t> swapped(golden.begin(), golden.begin() + 28);
  auto [p1, l1] = sections[0];
  auto [p2, l2] = sections[1];
  swapped.insert(swapped.end(), golden.begin() + p2, golden.begin() + p2 + l2);
  swapped.insert(swapped.end(), golden.begin() + p1, golden.begin() + p1 + l1);
  for (std::size_t i = 2; i < sections.size(); ++i) {
    auto [p, l] = sections[i];
    swapped.insert(swapped.end(), golden.begin() + p, golden.begin() + p + l);
  }
  ASSERT_EQ(swapped.size(), golden.size());
  const std::string victim = dir + "/victim.xpvseg";
  WriteFileBytes(victim, swapped);
  auto loaded = engine::LoadDocumentSegment(victim);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotCorruptionTest, NewerFormatVersionIsInvalidArgument) {
  const std::string dir = MakeTempDir();
  std::vector<std::uint8_t> bytes = GoldenSegmentBytes(dir);
  // Bump the version field (offset 8) and re-seal the header CRC (offset
  // 24, covering the first 24 bytes) so ONLY the version is wrong.
  WriteU32At(bytes, 8, engine::kSnapshotFormatVersion + 1);
  WriteU32At(bytes, 24, Crc32(bytes.data(), 24));
  const std::string victim = dir + "/victim.xpvseg";
  WriteFileBytes(victim, bytes);
  auto loaded = engine::LoadDocumentSegment(victim);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruptionTest, MissingSegmentIsNotFound) {
  auto loaded = engine::LoadDocumentSegment(MakeTempDir() + "/absent.xpvseg");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotCorruptionTest, ManifestCorruptionIsTypedError) {
  const std::string dir = MakeTempDir();
  engine::SnapshotManifest manifest;
  manifest.next_document_id = 5;
  manifest.document_ids = {1, 2, 4};
  ASSERT_TRUE(engine::WriteManifest(dir, manifest).ok());
  const std::string path = dir + "/MANIFEST.xpv";
  const std::vector<std::uint8_t> golden = ReadFileBytes(path);
  for (std::size_t len = 0; len < golden.size(); ++len) {
    WriteFileBytes(path, std::vector<std::uint8_t>(golden.begin(),
                                                   golden.begin() + len));
    ExpectTypedCorruptionError(engine::LoadManifest(dir).status());
  }
  for (std::size_t pos = 0; pos < golden.size(); ++pos) {
    std::vector<std::uint8_t> mutated = golden;
    mutated[pos] ^= 0x10;
    WriteFileBytes(path, mutated);
    ExpectTypedCorruptionError(engine::LoadManifest(dir).status());
  }
}

// ----------------------------------------- store-level round-trip tests

TEST(SnapshotStoreTest, ReloadServesByteIdenticalResultsWithZeroRework) {
  Rng rng(31);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const std::string dir = MakeTempDir();
    engine::DocumentStore original({.num_shards = 3});
    std::vector<engine::DocumentId> ids;
    const std::size_t corpus = 5 + seed;
    for (std::size_t i = 0; i < corpus; ++i) {
      ids.push_back(original.Insert(FuzzTree(rng, i + seed),
                                    "d" + std::to_string(i)));
    }
    std::vector<engine::QueryJob> jobs;
    for (std::size_t i = 0; i < 4 * corpus; ++i) {
      engine::QueryJob job;
      job.document = ids[rng.Below(ids.size())];
      job.query = kQueryMix[rng.Below(std::size(kQueryMix))];
      jobs.push_back(std::move(job));
    }
    // Serve once before saving so warm axis relations get persisted.
    engine::QueryService svc_a({.num_threads = 2, .document_store = &original});
    const auto results_a = svc_a.EvaluateBatch(jobs);
    ASSERT_TRUE(original.SaveSnapshot(dir).ok());

    const std::uint64_t parses_before = Tree::GlobalParses();
    const std::uint64_t builds_before = Tree::GlobalIndexBuilds();
    auto reopened = engine::DocumentStore::OpenSnapshot(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    // The tentpole guarantee: reload is decode-only. No term parsing, no
    // BuildIndexes -- the persisted segments carry the indexed trees.
    EXPECT_EQ(Tree::GlobalParses(), parses_before);
    EXPECT_EQ(Tree::GlobalIndexBuilds(), builds_before);

    engine::DocumentStore& reloaded = *reopened.value();
    EXPECT_EQ(reloaded.size(), original.size());
    for (const engine::DocumentId id : ids) {
      auto fetched = reloaded.Fetch(id);
      ASSERT_TRUE(fetched.ok());
      const engine::DocumentPtr& doc = fetched.value();
      EXPECT_EQ(doc->tree(), original.Get(id)->tree()) << "doc " << id;
      EXPECT_EQ(doc->name(), original.Get(id)->name()) << "doc " << id;
      // Whatever axis relations were warm at save time were persisted and
      // reinstalled on reload, not rebuilt (documents the batch never
      // touched legitimately have none).
      auto original_cache = original.AxisCacheFor(id);
      auto cache = reloaded.AxisCacheFor(id);
      ASSERT_NE(original_cache, nullptr);
      ASSERT_NE(cache, nullptr);
      EXPECT_EQ(cache->matrices_installed(),
                original_cache->BuiltAxes().size())
          << "doc " << id;
    }
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      engine::QueryService svc_b(
          {.num_threads = threads, .document_store = &reloaded});
      ExpectResultsEqual(results_a, svc_b.EvaluateBatch(jobs));
    }
  }
}

TEST(SnapshotStoreTest, ReloadedInternedDocumentsStillDeduplicate) {
  Rng rng(41);
  const std::string dir = MakeTempDir();
  Tree tree = BibliographyTree(rng, 4);
  engine::DocumentStore original({.num_shards = 1});
  const engine::DocumentId id = original.Intern(Tree(tree), "shared");
  EXPECT_EQ(original.Intern(Tree(tree)), id);
  ASSERT_TRUE(original.SaveSnapshot(dir).ok());

  auto reopened = engine::DocumentStore::OpenSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The intern key is recomputed from the decoded tree: interning the
  // same tree into the reloaded store dedupes to the persisted id.
  EXPECT_EQ(reopened.value()->Intern(std::move(tree)), id);
  EXPECT_GE(reopened.value()->stats().intern_hits, 1u);
}

TEST(SnapshotStoreTest, OpenOnEmptyDirectoryIsNotFound) {
  auto reopened = engine::DocumentStore::OpenSnapshot(MakeTempDir());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, ManifestNamingMissingSegmentFailsToOpen) {
  const std::string dir = MakeTempDir();
  Rng rng(43);
  engine::DocumentStore store({.num_shards = 1});
  store.Insert(BibliographyTree(rng, 3));
  ASSERT_TRUE(store.SaveSnapshot(dir).ok());
  ASSERT_EQ(::unlink((dir + "/" + engine::SegmentFileName(1)).c_str()), 0);
  auto reopened = engine::DocumentStore::OpenSnapshot(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------- spill-to-disk tests

TEST(SpillTest, ColdDocumentsSpillAndFaultBackIn) {
  const std::string dir = MakeTempDir();
  Rng rng(51);
  engine::DocumentStore store({.num_shards = 1,
                               .spill_dir = dir,
                               .max_resident_docs = 2});
  std::vector<std::string> terms;
  std::vector<engine::DocumentId> ids;
  for (std::size_t i = 0; i < 8; ++i) {
    Tree tree = FuzzTree(rng, i);
    terms.push_back(tree.ToTerm());
    ids.push_back(store.Insert(std::move(tree), "s" + std::to_string(i)));
  }
  auto stats = store.stats();
  EXPECT_EQ(stats.documents, 8u);
  EXPECT_LE(stats.resident_docs, 2u);
  EXPECT_GE(stats.spilled_docs, 6u);
  EXPECT_GE(stats.doc_spills, 6u);
  // Spilled segments are on disk; resident bytes only count hot trees.
  EXPECT_TRUE(FileExists(dir + "/" + engine::SegmentFileName(ids[0])));
  EXPECT_GT(stats.resident_doc_bytes, 0u);

  // Fault every document back in (one at a time; the budget holds) and
  // check the decoded tree is the one that was spilled.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto fetched = store.Fetch(ids[i]);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    EXPECT_EQ(fetched.value()->tree().ToTerm(), terms[i]) << "doc " << ids[i];
  }
  stats = store.stats();
  EXPECT_GE(stats.doc_reloads, 6u);
  EXPECT_GT(stats.mmap_bytes, 0u);
  // The budget may be exceeded by exactly the document being faulted in,
  // never more.
  EXPECT_LE(stats.resident_docs, 3u);
}

TEST(SpillTest, PinnedDocumentsNeverSpill) {
  const std::string dir = MakeTempDir();
  Rng rng(52);
  engine::DocumentStore store({.num_shards = 1,
                               .spill_dir = dir,
                               .max_resident_docs = 1});
  const engine::DocumentId pinned_id = store.Insert(FuzzTree(rng, 0), "pin");
  auto pinned = store.Fetch(pinned_id);
  ASSERT_TRUE(pinned.ok());
  const engine::DocumentPtr held = pinned.value();  // external pin

  const std::uint64_t reloads_before = store.stats().doc_reloads;
  for (std::size_t i = 0; i < 6; ++i) {
    store.Insert(FuzzTree(rng, i + 1));
  }
  // The pinned document was never spilled: looking it up again needs no
  // disk round-trip and returns the very same object.
  const engine::DocumentPtr again = store.Get(pinned_id);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again.get(), held.get());
  EXPECT_EQ(store.stats().doc_reloads, reloads_before);
}

TEST(SpillTest, QueryLoadOverspillsCorpusStaysCorrectAndBounded) {
  const std::string dir = MakeTempDir();
  Rng rng(53);
  // Corpus is ~4x the residency budget; an unbounded twin provides the
  // ground truth for every answer.
  engine::DocumentStore bounded({.max_hot_caches = 2,
                                 .num_shards = 2,
                                 .spill_dir = dir,
                                 .max_resident_docs = 3});
  engine::DocumentStore unbounded({.num_shards = 2});
  std::vector<engine::DocumentId> ids;
  std::size_t total_tree_bytes = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    Tree tree = FuzzTree(rng, i);
    total_tree_bytes += tree.resident_bytes();
    const engine::DocumentId id = bounded.Insert(Tree(tree));
    ASSERT_EQ(unbounded.Insert(std::move(tree)), id);
    ids.push_back(id);
  }
  std::vector<engine::QueryJob> jobs;
  for (std::size_t i = 0; i < 60; ++i) {
    engine::QueryJob job;
    job.document = ids[rng.Below(ids.size())];
    job.query = kQueryMix[rng.Below(std::size(kQueryMix))];
    jobs.push_back(std::move(job));
  }
  {
    engine::QueryService svc_bounded(
        {.num_threads = 2, .document_store = &bounded});
    engine::QueryService svc_unbounded(
        {.num_threads = 2, .document_store = &unbounded});
    for (int round = 0; round < 3; ++round) {
      ExpectResultsEqual(svc_unbounded.EvaluateBatch(jobs),
                         svc_bounded.EvaluateBatch(jobs));
    }
    const auto stats = svc_bounded.stats();
    EXPECT_GT(stats.doc_spills, 0u);
    EXPECT_GT(stats.doc_reloads + stats.doc_reattaches, 0u);
  }
  // A finished batch may leave shards momentarily over budget (its
  // workers' pins blocked eviction, and a worker can still hold the batch
  // state briefly after EvaluateBatch returns -- hence the scope above,
  // which drains the pool). The next touch settles each shard back under
  // its budget, so the gauge sits well under the whole corpus.
  for (const engine::DocumentId id : {ids[0], ids[1]}) {
    ASSERT_TRUE(bounded.Fetch(id).ok());
  }
  EXPECT_LT(bounded.stats().resident_doc_bytes, total_tree_bytes);
}

TEST(SpillTest, RemoveOfSpilledDocumentDeletesItsSegment) {
  const std::string dir = MakeTempDir();
  Rng rng(54);
  engine::DocumentStore store({.num_shards = 1,
                               .spill_dir = dir,
                               .max_resident_docs = 1});
  const engine::DocumentId victim = store.Insert(FuzzTree(rng, 0));
  store.Insert(FuzzTree(rng, 1));  // pushes `victim` out to disk
  const std::string segment = dir + "/" + engine::SegmentFileName(victim);
  ASSERT_TRUE(FileExists(segment));
  EXPECT_TRUE(store.Remove(victim));
  // The regression this locks down: removing a spilled document must
  // delete its segment -- no orphaned files accumulating in spill_dir.
  EXPECT_FALSE(FileExists(segment));
  EXPECT_EQ(store.Get(victim), nullptr);

  // Removing a resident document with an on-disk segment cleans up too.
  const engine::DocumentId resident = store.Insert(FuzzTree(rng, 2));
  store.Insert(FuzzTree(rng, 3));               // spills `resident`
  ASSERT_TRUE(store.Fetch(resident).ok());      // faults it back in
  const std::string resident_seg =
      dir + "/" + engine::SegmentFileName(resident);
  ASSERT_TRUE(FileExists(resident_seg));
  EXPECT_TRUE(store.Remove(resident));
  EXPECT_FALSE(FileExists(resident_seg));
}

TEST(SpillTest, SaveSnapshotOfSpilledCorpusReloads) {
  // A store that is *already* partly on disk snapshots correctly: cold
  // documents' segments are reused in place, hot ones are written.
  const std::string dir = MakeTempDir();
  Rng rng(55);
  engine::DocumentStore store({.num_shards = 1,
                               .spill_dir = dir,
                               .max_resident_docs = 2});
  std::vector<std::string> terms;
  std::vector<engine::DocumentId> ids;
  for (std::size_t i = 0; i < 6; ++i) {
    Tree tree = FuzzTree(rng, i);
    terms.push_back(tree.ToTerm());
    ids.push_back(store.Insert(std::move(tree)));
  }
  ASSERT_TRUE(store.SaveSnapshot(dir).ok());
  auto reopened = engine::DocumentStore::OpenSnapshot(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto fetched = reopened.value()->Fetch(ids[i]);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value()->tree().ToTerm(), terms[i]);
  }
}

}  // namespace
}  // namespace xpv
