// Coverage for public APIs not exercised elsewhere: the standalone test
// parser entry point, the Status propagation macros, binary-tree printing,
// and assorted small utilities.
#include <gtest/gtest.h>

#include "common/status.h"
#include "ppl/gkp_engine.h"
#include "tree/binary_encoding.h"
#include "tree/generators.h"
#include "xpath/parser.h"

namespace xpv {
namespace {

TEST(ParseTestEntryPointTest, ParsesTestExpressions) {
  Result<xpath::TestPtr> t = xpath::ParseTest("child::a and not child::b");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t)->kind, xpath::TestKind::kAnd);
  EXPECT_EQ((*t)->b->kind, xpath::TestKind::kNot);

  t = xpath::ParseTest(". is $x");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind, xpath::TestKind::kIs);

  EXPECT_FALSE(xpath::ParseTest("").ok());
  EXPECT_FALSE(xpath::ParseTest("child::a and").ok());
  EXPECT_FALSE(xpath::ParseTest("child::a ]").ok());
}

TEST(ParseTestEntryPointTest, RoundTripsThroughToString) {
  for (const char* text :
       {"child::a", ". is $x", "not child::a", "child::a or . is .",
        "not (child::a and child::b)"}) {
    Result<xpath::TestPtr> t = xpath::ParseTest(text);
    ASSERT_TRUE(t.ok()) << text;
    Result<xpath::TestPtr> again = xpath::ParseTest((*t)->ToString());
    ASSERT_TRUE(again.ok()) << (*t)->ToString();
    EXPECT_TRUE((*again)->Equals(**t)) << text;
  }
}

Status FailingOperation() { return Status::NotFound("nope"); }
Status SucceedingOperation() { return Status::OK(); }
Result<int> FortyTwo() { return 42; }
Result<int> Failing() { return Status::OutOfRange("too big"); }

Status UseReturnIfError(bool fail) {
  if (fail) {
    XPV_RETURN_IF_ERROR(FailingOperation());
  } else {
    XPV_RETURN_IF_ERROR(SucceedingOperation());
  }
  return Status::Internal("fell through");
}

Result<int> UseAssignOrReturn(bool fail) {
  XPV_ASSIGN_OR_RETURN(int value, fail ? Failing() : FortyTwo());
  return value + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kNotFound);
  EXPECT_EQ(UseReturnIfError(false).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnBindsOrPropagates) {
  Result<int> ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 43);
  Result<int> bad = UseAssignOrReturn(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusCodeStringsTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFragmentViolation),
               "FRAGMENT_VIOLATION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(BinaryTreeToTermTest, MarksMissingChildren) {
  Result<Tree> u = Tree::ParseTerm("a(b,c)");
  ASSERT_TRUE(u.ok());
  BinaryTree b = EncodeFcns(*u, nullptr);
  // fcns of a(b,c): a --c1--> b --c2--> c; printed with '-' placeholders.
  EXPECT_EQ(b.ToTerm(), "a(b(-,c),-)");
  Result<Tree> leaf = Tree::ParseTerm("a");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(EncodeFcns(*leaf, nullptr).ToTerm(), "a");
}

TEST(RestaurantAttributeNameTest, NamedThenNumbered) {
  EXPECT_EQ(RestaurantAttributeName(0), "name");
  EXPECT_EQ(RestaurantAttributeName(9), "price");
  EXPECT_EQ(RestaurantAttributeName(12), "attr12");
}

TEST(GkpDomainTest, EmptyAndFullDomains) {
  Result<Tree> t = Tree::ParseTerm("a(b(c),d)");
  ASSERT_TRUE(t.ok());
  ppl::GkpEngine gkp(*t);
  // Domain of child::zzz is empty.
  Result<BitVector> none =
      gkp.Domain(*ppl::PplBinExpr::Step(Axis::kChild, "zzz"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->None());
  // Domain of self::* is everything.
  Result<BitVector> all = gkp.Domain(*ppl::PplBinExpr::Self());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->Count(), t->size());
}

TEST(BitVectorAssignTest, ConditionalSetReset) {
  BitVector v(10);
  v.Assign(3, true);
  EXPECT_TRUE(v.Get(3));
  v.Assign(3, false);
  EXPECT_FALSE(v.Get(3));
}

TEST(TreeBuilderTest, OpenDepthTracksNesting) {
  TreeBuilder b;
  EXPECT_EQ(b.open_depth(), 0u);
  b.Open("a");
  EXPECT_EQ(b.open_depth(), 1u);
  b.Open("b");
  EXPECT_EQ(b.open_depth(), 2u);
  b.Close();
  b.Close();
  EXPECT_EQ(b.open_depth(), 0u);
}

TEST(ResultMoveTest, MoveOutOfResult) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace xpv
