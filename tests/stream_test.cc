// The streaming result subsystem (engine/query_stream.h): differential
// equality against materialized ground truth across chunkings and thread
// counts, cursor resume, close-mid-stream, document pinning across
// Remove/re-Intern, in-stream deadline/cancel, admission integration,
// and the bounded-memory acceptance property -- first tuples of a
// >= 10^6-answer query with peak memory independent of the answer count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "tree/generators.h"

namespace xpv::engine {
namespace {

using xpath::NodeTuple;
using xpath::TupleSet;

/// Drains a stream in chunks of `chunk`; the sequence (order included)
/// is returned. EXPECTs no error.
std::vector<NodeTuple> DrainStream(QueryStream& stream, std::size_t chunk) {
  std::vector<NodeTuple> out;
  while (true) {
    Result<std::vector<NodeTuple>> batch = stream.NextBatch(chunk);
    EXPECT_TRUE(batch.ok()) << batch.status();
    if (!batch.ok() || batch->empty()) break;
    for (NodeTuple& t : *batch) out.push_back(std::move(t));
  }
  return out;
}

TupleSet AsSet(const std::vector<NodeTuple>& tuples) {
  return TupleSet(tuples.begin(), tuples.end());
}

/// Queries covering every stream backing: enumerable n-ary chains and
/// filters (kEnumerator), unions of n-ary queries (kMaterialized), and
/// variable-free queries (kNodeSet).
const char* const kStreamQueries[] = {
    "descendant::a/$x",
    "$x/descendant::b",
    "descendant::*[child::a]/$x/child::*",
    "$x/child::*/$y",
    "$x/descendant::*/$y",
    "(descendant::a union descendant::b)/$y",
    "descendant::a",
    "child::*/child::b",
};

TEST(StreamDifferentialTest, StreamedEqualsMaterializedAcrossChunkings) {
  // Small trees route enumerable drain-everything streams to the
  // materialized backing, large ones to the enumerator (planner.h);
  // both must match the batch path's ground truth.
  for (std::size_t num_nodes : {30u, 90u}) {
    Rng tree_rng(num_nodes);
    RandomTreeOptions opts;
    opts.num_nodes = num_nodes;
    Tree t = RandomTree(tree_rng, opts);
    QueryService service({.num_threads = 1});
    for (const char* query : kStreamQueries) {
      // Materialized ground truth through the batch path.
      QueryResult full = service.Evaluate(t, query);
      ASSERT_TRUE(full.status.ok()) << query << ": " << full.status;
      TupleSet expected;
      if (full.plan.engine == EnginePlan::kNaryAnswer) {
        expected = full.tuples;
      } else {
        full.from_root.ForEachSet([&](std::size_t v) {
          expected.insert({static_cast<NodeId>(v)});
        });
      }

      std::vector<NodeTuple> first_order;
      for (std::size_t chunk : {1u, 3u, 7u, 64u}) {
        Result<QueryStream> stream = service.OpenStream(t, query);
        ASSERT_TRUE(stream.ok()) << query << ": " << stream.status();
        std::vector<NodeTuple> got = DrainStream(*stream, chunk);
        EXPECT_EQ(AsSet(got), expected) << query << " chunk " << chunk;
        EXPECT_EQ(got.size(), expected.size())
            << query << ": stream emitted a duplicate";
        // Deterministic order across chunkings.
        if (first_order.empty()) {
          first_order = std::move(got);
        } else {
          EXPECT_EQ(got, first_order) << query << " chunk " << chunk;
        }
        EXPECT_TRUE(stream->done());
      }
    }
  }
}

TEST(StreamDifferentialTest, ThreadCountsAndStoreServingAgree) {
  Rng rng(55);
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  Tree t = RandomTree(rng, opts);
  DocumentStore store;
  const DocumentId id = store.Insert(Tree(t));

  for (const char* query : kStreamQueries) {
    std::vector<std::vector<NodeTuple>> drains;
    for (std::size_t threads : {1u, 2u, 8u}) {
      QueryService service(
          {.num_threads = threads, .document_store = &store,
           .max_inflight_batches = 4});
      // Raw-tree stream and stored-document stream must agree exactly.
      Result<QueryStream> by_tree = service.OpenStream(t, query);
      Result<QueryStream> by_doc = service.OpenStream(id, query);
      ASSERT_TRUE(by_tree.ok()) << by_tree.status();
      ASSERT_TRUE(by_doc.ok()) << by_doc.status();
      drains.push_back(DrainStream(*by_tree, 5));
      drains.push_back(DrainStream(*by_doc, 11));
    }
    for (std::size_t i = 1; i < drains.size(); ++i) {
      EXPECT_EQ(drains[i], drains[0]) << query << " drain " << i;
    }
  }
}

TEST(StreamTest, ConcurrentStreamsFromManyThreadsAgree) {
  Rng rng(77);
  RandomTreeOptions opts;
  opts.num_nodes = 32;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 8, .max_inflight_batches = 0});
  const char* query = "$x/descendant::*/$y";
  const std::vector<NodeTuple> expected = [&] {
    Result<QueryStream> s = service.OpenStream(t, query);
    return DrainStream(*s, 16);
  }();
  std::vector<std::vector<NodeTuple>> results(8);
  std::vector<std::thread> pullers;
  for (int i = 0; i < 8; ++i) {
    pullers.emplace_back([&, i] {
      Result<QueryStream> s = service.OpenStream(t, query);
      ASSERT_TRUE(s.ok()) << s.status();
      results[static_cast<std::size_t>(i)] =
          DrainStream(*s, 1 + static_cast<std::size_t>(i));
    });
  }
  for (std::thread& th : pullers) th.join();
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

TEST(StreamTest, LimitOffsetAndResumeAfterPartialRead) {
  Rng rng(12);
  RandomTreeOptions opts;
  opts.num_nodes = 48;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 1});
  const char* query = "$x/descendant::*/$y";

  Result<QueryStream> all = service.OpenStream(t, query);
  ASSERT_TRUE(all.ok());
  const std::vector<NodeTuple> full = DrainStream(*all, 17);
  ASSERT_GT(full.size(), 20u);

  // A bounded limit may route to a different backing (and order) than a
  // drain: build the bounded-regime reference once.
  StreamOptions whole;
  whole.limit = full.size();
  Result<QueryStream> ref_stream = service.OpenStream(t, query, whole);
  ASSERT_TRUE(ref_stream.ok());
  const std::vector<NodeTuple> ref = DrainStream(*ref_stream, 13);
  EXPECT_EQ(AsSet(ref), AsSet(full));

  // Partial read, then resume from the reported cursor.
  Result<QueryStream> head = service.OpenStream(t, query);
  ASSERT_TRUE(head.ok());
  Result<std::vector<NodeTuple>> first = head->NextBatch(9);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 9u);
  EXPECT_EQ(head->cursor(), 9u);
  EXPECT_EQ(head->stats().cursor, 9u);
  head->Close();

  StreamOptions resume;
  resume.offset = 9;
  Result<QueryStream> tail = service.OpenStream(t, query, resume);
  ASSERT_TRUE(tail.ok());
  std::vector<NodeTuple> rest = DrainStream(*tail, 13);
  std::vector<NodeTuple> stitched = *first;
  stitched.insert(stitched.end(), rest.begin(), rest.end());
  EXPECT_EQ(stitched, full);
  EXPECT_EQ(tail->cursor(), full.size());

  // Limit truncates and reports exhaustion; same bounded regime as
  // `ref`, so it is exactly ref's prefix.
  StreamOptions limited;
  limited.limit = 5;
  Result<QueryStream> five = service.OpenStream(t, query, limited);
  ASSERT_TRUE(five.ok());
  std::vector<NodeTuple> head5 = DrainStream(*five, 64);
  EXPECT_EQ(head5.size(), 5u);
  EXPECT_TRUE(five->done());
  EXPECT_EQ(head5, std::vector<NodeTuple>(ref.begin(), ref.begin() + 5));
}

TEST(StreamTest, CloseMidStreamReleasesSlotAndRejectsFurtherReads) {
  Rng rng(9);
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 1, .max_inflight_batches = 1});

  Result<QueryStream> first = service.OpenStream(t, "$x/descendant::*/$y");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->NextBatch(3).ok());

  // The single inflight slot is taken: a second stream is refused.
  Result<QueryStream> second = service.OpenStream(t, "descendant::a/$x");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(service.stats().streams_open, 1u);

  first->Close();
  EXPECT_TRUE(first->done());
  EXPECT_TRUE(first->stats().closed);
  EXPECT_EQ(service.stats().streams_open, 0u);
  Result<std::vector<NodeTuple>> after = first->NextBatch(1);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kInvalidArgument);

  // The freed slot admits a new stream.
  Result<QueryStream> third = service.OpenStream(t, "descendant::a/$x");
  ASSERT_TRUE(third.ok()) << third.status();
  const ServiceStats stats = service.stats();
  // Rejected opens never count as opened.
  EXPECT_EQ(stats.streams_opened, 2u);
  EXPECT_EQ(stats.streams_closed, 1u);
}

TEST(StreamTest, OpenStreamBlocksBatchAdmissionUntilClosed) {
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_nodes = 16;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 1, .max_inflight_batches = 1});

  Result<QueryStream> stream = service.OpenStream(t, "$x/child::*/$y");
  ASSERT_TRUE(stream.ok());

  std::vector<QueryJob> jobs(2);
  for (QueryJob& job : jobs) {
    job.tree = &t;
    job.query = "descendant::a";
  }
  Result<BatchHandle> handle = service.TrySubmit(jobs);
  ASSERT_TRUE(handle.ok()) << handle.status();
  // The stream holds the only inflight slot, so the batch stays queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(handle->done());
  EXPECT_EQ(service.stats().batches_queued, 1u);

  stream->Close();
  std::vector<QueryResult> results = handle->Wait();
  ASSERT_EQ(results.size(), 2u);
  for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok()) << r.status;
}

TEST(StreamTest, ServiceDestructionDrainsQueuedBatchDespiteOpenStream) {
  // A queued batch must complete through service destruction even when
  // an open stream holds the only inflight slot and is never closed
  // before the destructor runs (the caller cannot close it while
  // blocked in ~QueryService): during shutdown, streams stop counting
  // against the inflight bound.
  Rng rng(21);
  RandomTreeOptions opts;
  opts.num_nodes = 90;
  Tree t = RandomTree(rng, opts);
  QueryStream stream;
  Result<BatchHandle> handle = Status::Internal("unset");
  {
    QueryService service({.num_threads = 1, .max_inflight_batches = 1});
    Result<QueryStream> opened = service.OpenStream(t, "$x/descendant::*/$y");
    ASSERT_TRUE(opened.ok());
    stream = std::move(*opened);
    ASSERT_TRUE(stream.NextBatch(3).ok());
    QueryJob job;
    job.tree = &t;
    job.query = "descendant::a";
    handle = service.TrySubmit({job});
    ASSERT_TRUE(handle.ok()) << handle.status();
    // ~QueryService runs here with the stream still open and a batch
    // queued; it must not hang.
  }
  std::vector<QueryResult> results = handle->Wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status;
  // The stream keeps serving after the service is gone.
  Result<std::vector<NodeTuple>> more = stream.NextBatch(5);
  ASSERT_TRUE(more.ok()) << more.status();
  EXPECT_FALSE(more->empty());
  stream.Close();
}

TEST(StreamTest, StreamOutlivesRemoveAndReIntern) {
  Rng rng(64);
  RandomTreeOptions opts;
  opts.num_nodes = 80;  // > kTinyTree: the pinned enumerator backing
  Tree t = RandomTree(rng, opts);
  DocumentStore store({.num_shards = 4});
  const DocumentId id = store.Intern(Tree(t));
  QueryService service(
      {.num_threads = 2, .document_store = &store,
       .max_inflight_batches = 4});
  const char* query = "$x/descendant::*/$y";

  const std::vector<NodeTuple> expected = [&] {
    Result<QueryStream> s = service.OpenStream(id, query);
    return DrainStream(*s, 8);
  }();

  Result<QueryStream> stream = service.OpenStream(id, query);
  ASSERT_TRUE(stream.ok());
  Result<std::vector<NodeTuple>> head = stream->NextBatch(4);
  ASSERT_TRUE(head.ok());

  // Remove the document mid-stream and re-intern a structurally equal
  // tree (new id, possibly another shard) plus unrelated churn. The
  // stream's pin keeps the original tree and cache alive.
  ASSERT_TRUE(store.Remove(id));
  EXPECT_EQ(store.Get(id), nullptr);
  const DocumentId reinterned = store.Intern(Tree(t));
  EXPECT_NE(reinterned, id);
  for (int i = 0; i < 8; ++i) {
    RandomTreeOptions churn_opts;
    churn_opts.num_nodes = 10;
    store.Insert(RandomTree(rng, churn_opts));
  }

  std::vector<NodeTuple> got = *std::move(head);
  std::vector<NodeTuple> rest = DrainStream(*stream, 8);
  got.insert(got.end(), rest.begin(), rest.end());
  EXPECT_EQ(got, expected);

  // New streams on the removed id fail; on the re-interned id, succeed
  // with identical answers.
  EXPECT_EQ(service.OpenStream(id, query).status().code(),
            StatusCode::kNotFound);
  Result<QueryStream> fresh = service.OpenStream(reinterned, query);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(DrainStream(*fresh, 8), expected);
}

TEST(StreamTest, DeadlineIsObservedInsideTheStream) {
  Rng rng(42);
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 1});
  StreamOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Result<QueryStream> stream =
      service.OpenStream(t, "$x/descendant::*/$y", options);
  ASSERT_TRUE(stream.ok());  // opening is cheap and always succeeds
  Result<std::vector<NodeTuple>> batch = stream->NextBatch(10);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stream->done());
  EXPECT_EQ(stream->stats().status.code(), StatusCode::kDeadlineExceeded);
  // Sticky, and the slot was released on failure.
  EXPECT_EQ(stream->NextBatch(1).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().streams_open, 0u);
}

TEST(StreamTest, CancelIsObservedMidPull) {
  // A deep path makes the enumerable pair query huge (~n^2 tuples);
  // cancel from another thread must stop an in-flight NextBatch.
  Tree t = PathTree(2000);
  QueryService service({.num_threads = 1});
  Result<QueryStream> stream = service.OpenStream(t, "$x/descendant::*/$y");
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream->stats().plan.backing, StreamBacking::kEnumerator);
  ASSERT_TRUE(stream->NextBatch(10).ok());  // backing built, pulls work

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stream->Cancel();
  });
  // Pull far more tuples than can be produced before the cancel lands.
  Result<std::vector<NodeTuple>> rest = stream->NextBatch(100000000);
  canceller.join();
  ASSERT_FALSE(rest.ok());
  EXPECT_EQ(rest.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(stream->done());
}

TEST(StreamTest, EnumeratorDedupBudgetFailsStreamWithResourceExhausted) {
  Tree t = PathTree(600);
  QueryService service({.num_threads = 1});
  StreamOptions options;
  options.max_dedup_bytes = 512;  // projection dedup cannot fit
  // The two filters keep the projected anchor variable at degree 3, so
  // it survives elimination and the dedup engages over the huge
  // (x, y, z) output space.
  Result<QueryStream> stream = service.OpenStream(
      t, "descendant::*[child::*/$x][child::*/$y]/$z", options);
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_EQ(stream->stats().plan.backing, StreamBacking::kEnumerator);
  Status failure;
  while (true) {
    Result<std::vector<NodeTuple>> batch = stream->NextBatch(64);
    if (!batch.ok()) {
      failure = batch.status();
      break;
    }
    if (batch->empty()) break;
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted) << failure;
}

TEST(StreamTest, RejectsTupleStreamShapeOnBatchJobs) {
  Rng rng(5);
  RandomTreeOptions opts;
  opts.num_nodes = 8;
  Tree t = RandomTree(rng, opts);
  QueryService service({.num_threads = 1});
  QueryResult direct =
      service.Evaluate(t, "descendant::a/$x", ResultShape::kTupleStream);
  EXPECT_EQ(direct.status.code(), StatusCode::kInvalidArgument);
  QueryJob job;
  job.tree = &t;
  job.query = "descendant::a/$x";
  job.shape = ResultShape::kTupleStream;
  std::vector<QueryResult> results = service.EvaluateBatch({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(StreamTest, CompileErrorsAndUnknownIdsSurfaceAtOpen) {
  Rng rng(6);
  RandomTreeOptions opts;
  opts.num_nodes = 8;
  Tree t = RandomTree(rng, opts);
  DocumentStore store;
  QueryService service({.num_threads = 1, .document_store = &store});
  EXPECT_EQ(service.OpenStream(t, "$x/child::*/$x").status().code(),
            StatusCode::kFragmentViolation);
  EXPECT_EQ(service.OpenStream(t, "((").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.OpenStream(DocumentId{999}, "descendant::a/$x")
                .status()
                .code(),
            StatusCode::kNotFound);
  QueryService storeless({.num_threads = 1});
  EXPECT_EQ(storeless.OpenStream(DocumentId{1}, "descendant::a/$x")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- acceptance
//
// A query with >= 10^6 answers serves its first 100 tuples with peak
// memory independent of the answer count: the enumerator's
// answer-dependent state (DFS frames; after projection-variable
// elimination the projection is injective, so no dedup) must not grow
// between a ~3 * 10^5-answer and a ~10^6-answer instance of the same
// query shape, and must be orders of magnitude below the materialized
// footprint.

/// q("$x/descendant::*/$y/descendant::*/$z") on a path of n nodes: x
/// and y each need some strict descendant (the closure steps make the
/// rest of the document reachable from anywhere), z is unconstrained:
/// (n-1)^2 * n tuples -- verified against the Fig. 8 oracle by the
/// differential suite above and against this closed form below.
std::uint64_t PathChainAnswers(std::uint64_t n) {
  return (n - 1) * (n - 1) * n;
}

TEST(StreamAcceptanceTest, FirstTuplesOfMillionAnswerQueryStayBounded) {
  const char* query = "$x/descendant::*/$y/descendant::*/$z";
  const std::size_t big_n = 102, small_n = 70;  // 1.04M / 0.33M answers
  ASSERT_GE(PathChainAnswers(big_n), 1000000u);

  QueryService service({.num_threads = 1, .max_inflight_batches = 4});
  std::size_t backing_small = 0;
  for (const std::size_t n : {small_n, big_n}) {
    Tree t = PathTree(n);
    Result<QueryStream> stream = service.OpenStream(t, query);
    ASSERT_TRUE(stream.ok()) << stream.status();
    ASSERT_EQ(stream->stats().plan.backing, StreamBacking::kEnumerator);

    Result<std::vector<NodeTuple>> first = stream->NextBatch(100);
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_EQ(first->size(), 100u);
    for (const NodeTuple& tuple : *first) {
      ASSERT_EQ(tuple.size(), 3u);
      // x and y must have a strict descendant on the path.
      EXPECT_LT(tuple[0], n - 1);
      EXPECT_LT(tuple[1], n - 1);
    }

    const StreamStats stats = stream->stats();
    EXPECT_EQ(stats.produced, 100u);
    EXPECT_EQ(stats.cursor, 100u);
    EXPECT_EQ(stats.dedup_entries, 0u);  // injective after elimination
    // Answer-dependent state stays tiny: DFS frames are 3 bitvectors of
    // |t| bits plus cursors -- nowhere near the ~10^8 bytes a
    // materialized 1.04M-tuple set would take.
    EXPECT_LT(stats.backing_bytes, 64u * 1024);
    if (n == small_n) {
      backing_small = stats.backing_bytes;
    } else {
      // 3x more answers, same footprint up to the |t|-proportional
      // frame size -- independent of the answer count.
      EXPECT_LT(stats.backing_bytes, backing_small * 4);
    }
    stream->Close();
  }

  // The stream really is the only way to touch such a query cheaply:
  // draining the big instance fully must count exactly (n-1)^2 n tuples
  // (arithmetic check, no materialization anywhere, distinctness
  // guaranteed by the injective enumeration).
  Tree t = PathTree(big_n);
  Result<QueryStream> drain = service.OpenStream(t, query);
  ASSERT_TRUE(drain.ok());
  std::uint64_t count = 0;
  while (true) {
    Result<std::vector<NodeTuple>> batch = drain->NextBatch(8192);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch->empty()) break;
    count += batch->size();
  }
  EXPECT_EQ(count, PathChainAnswers(big_n));
  EXPECT_LT(drain->stats().backing_bytes, 64u * 1024);
}

}  // namespace
}  // namespace xpv::engine
