// Tests for the Proposition 3 SAT reduction: query non-emptiness for Core
// XPath 2.0 without for-loops and without variables below negation is
// NP-hard via variable sharing in compositions.
#include <gtest/gtest.h>

#include "fo/sat_reduction.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"

namespace xpv::fo {
namespace {

TEST(SatReductionTest, TreeShape) {
  CnfFormula cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{1, -2}, {2, 3}};
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  // r + 3 * (v, t, f).
  EXPECT_EQ(red.tree.size(), 10u);
  EXPECT_EQ(red.tree.label_name(0), "r");
  EXPECT_EQ(red.tree.NumChildren(0), 3u);
}

TEST(SatReductionTest, QueryShapeRespectsStatedRestrictions) {
  CnfFormula cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1, 2}, {-1, -2}};
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  // No for-loops, no variables below negation (there is no negation at
  // all), but NVS(/) is violated -- exactly Proposition 3's fragment.
  EXPECT_FALSE(xpath::ContainsFor(*red.query));
  Status ppl = xpath::CheckPpl(*red.query);
  ASSERT_FALSE(ppl.ok());
  EXPECT_NE(ppl.message().find("NVS(/)"), std::string::npos) << ppl;
}

TEST(SatReductionTest, SatisfiableFormulaYieldsNonEmptyQuery) {
  CnfFormula cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1}, {-1, 2}};
  ASSERT_TRUE(BruteForceSat(cnf));
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  xpath::DirectEvaluator eval(red.tree);
  xpath::TupleSet answers = eval.EvalNaryNaive(*red.query, red.tuple_vars);
  ASSERT_FALSE(answers.empty());
  // Every answer decodes to a satisfying assignment; v1=t, v2=t expected.
  for (const auto& tuple : answers) {
    std::vector<bool> assignment = DecodeAssignment(red, tuple);
    EXPECT_TRUE(assignment[0]);
    EXPECT_TRUE(assignment[1]);
  }
}

TEST(SatReductionTest, UnsatisfiableFormulaYieldsEmptyQuery) {
  CnfFormula cnf;
  cnf.num_vars = 1;
  cnf.clauses = {{1}, {-1}};
  ASSERT_FALSE(BruteForceSat(cnf));
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  xpath::DirectEvaluator eval(red.tree);
  EXPECT_TRUE(eval.EvalNaryNaive(*red.query, red.tuple_vars).empty());
}

TEST(SatReductionTest, EmptyClauseIsUnsatisfiable) {
  CnfFormula cnf;
  cnf.num_vars = 1;
  cnf.clauses = {{}};
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  xpath::DirectEvaluator eval(red.tree);
  EXPECT_TRUE(eval.EvalNaryNaive(*red.query, red.tuple_vars).empty());
}

TEST(SatReductionTest, NoClausesIsTriviallySatisfiable) {
  CnfFormula cnf;
  cnf.num_vars = 1;
  cnf.clauses = {};
  ASSERT_TRUE(BruteForceSat(cnf));
  SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
  xpath::DirectEvaluator eval(red.tree);
  EXPECT_FALSE(eval.EvalNaryNaive(*red.query, red.tuple_vars).empty());
}

TEST(BruteForceSatTest, KnownInstances) {
  CnfFormula sat;
  sat.num_vars = 3;
  sat.clauses = {{1, 2}, {-1, 3}, {-2, -3}};
  EXPECT_TRUE(BruteForceSat(sat));

  CnfFormula unsat;
  unsat.num_vars = 2;
  unsat.clauses = {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}};
  EXPECT_FALSE(BruteForceSat(unsat));
}

// The reduction is correct on random CNFs: query nonempty iff satisfiable,
// and answers decode to satisfying assignments.
class SatRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatRandomTest, ReductionAgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const int num_vars = 2 + static_cast<int>(rng.Below(2));  // 2..3
    const int num_clauses = 1 + static_cast<int>(rng.Below(5));
    CnfFormula cnf = RandomCnf(rng, num_vars, num_clauses, 3);
    SatReduction red = ReduceSatToQueryNonEmptiness(cnf);
    xpath::DirectEvaluator eval(red.tree);
    xpath::TupleSet answers = eval.EvalNaryNaive(*red.query, red.tuple_vars);
    EXPECT_EQ(!answers.empty(), BruteForceSat(cnf)) << cnf.ToString();
    // Verify each decoded assignment actually satisfies the formula.
    for (const auto& tuple : answers) {
      std::vector<bool> assignment = DecodeAssignment(red, tuple);
      for (const auto& clause : cnf.clauses) {
        bool clause_sat = false;
        for (int lit : clause) {
          if ((lit > 0) == assignment[std::abs(lit) - 1]) {
            clause_sat = true;
            break;
          }
        }
        EXPECT_TRUE(clause_sat) << cnf.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest,
                         ::testing::Values(41, 42, 43, 44));

TEST(RandomCnfTest, ShapeIsRespected) {
  Rng rng(1);
  CnfFormula cnf = RandomCnf(rng, 5, 7, 3);
  EXPECT_EQ(cnf.num_vars, 5);
  EXPECT_EQ(cnf.clauses.size(), 7u);
  for (const auto& clause : cnf.clauses) {
    EXPECT_EQ(clause.size(), 3u);
    for (int lit : clause) {
      EXPECT_NE(lit, 0);
      EXPECT_LE(std::abs(lit), 5);
    }
  }
}

}  // namespace
}  // namespace xpv::fo
