// Tests for the direct denotational semantics of Core XPath 2.0 (Fig. 2),
// including each semantic equation individually and the naive n-ary query
// evaluation q_{P,x}.
#include <gtest/gtest.h>

#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xpv::xpath {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

PathPtr MustPath(std::string_view text) {
  Result<PathPtr> p = ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

// Pairs selected by P on t under alpha, as a sorted list.
std::vector<std::pair<NodeId, NodeId>> Pairs(const Tree& t,
                                             std::string_view path,
                                             const Assignment& alpha = {}) {
  DirectEvaluator eval(t);
  BitMatrix m = eval.EvalPath(*MustPath(path), alpha);
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < t.size(); ++u) {
    m.ForEachInRow(u, [&](std::size_t v) {
      out.emplace_back(u, static_cast<NodeId>(v));
    });
  }
  return out;
}

using P = std::pair<NodeId, NodeId>;

TEST(EvalStepTest, ChildWithNameTest) {
  // a(b,c(b)) -- ids a=0 b=1 c=2 b=3.
  Tree t = MustTree("a(b,c(b))");
  EXPECT_EQ(Pairs(t, "child::b"), (std::vector<P>{{0, 1}, {2, 3}}));
  EXPECT_EQ(Pairs(t, "child::*"),
            (std::vector<P>{{0, 1}, {0, 2}, {2, 3}}));
  EXPECT_EQ(Pairs(t, "child::zzz"), (std::vector<P>{}));
}

TEST(EvalStepTest, SelfAxisFiltersLabel) {
  Tree t = MustTree("a(b,c)");
  EXPECT_EQ(Pairs(t, "self::b"), (std::vector<P>{{1, 1}}));
  EXPECT_EQ(Pairs(t, "self::*"),
            (std::vector<P>{{0, 0}, {1, 1}, {2, 2}}));
}

TEST(EvalDotTest, IsIdentity) {
  Tree t = MustTree("a(b,c)");
  EXPECT_EQ(Pairs(t, "."), (std::vector<P>{{0, 0}, {1, 1}, {2, 2}}));
}

TEST(EvalVarTest, JumpsToAssignedNode) {
  Tree t = MustTree("a(b,c)");
  EXPECT_EQ(Pairs(t, "$x", {{"x", 2}}),
            (std::vector<P>{{0, 2}, {1, 2}, {2, 2}}));
}

TEST(EvalComposeTest, RelationComposition) {
  Tree t = MustTree("a(b(c),d)");
  EXPECT_EQ(Pairs(t, "child::*/child::*"), (std::vector<P>{{0, 2}}));
}

TEST(EvalUnionIntersectExceptTest, SetOperations) {
  Tree t = MustTree("a(b,c)");
  EXPECT_EQ(Pairs(t, "child::b union child::c"),
            (std::vector<P>{{0, 1}, {0, 2}}));
  EXPECT_EQ(Pairs(t, "child::* intersect child::b"),
            (std::vector<P>{{0, 1}}));
  EXPECT_EQ(Pairs(t, "child::* except child::b"),
            (std::vector<P>{{0, 2}}));
}

TEST(EvalFilterTest, KeepsPairsWhoseTargetPasses) {
  // a(b(c),b) -- first b has a child, second does not.
  Tree t = MustTree("a(b(c),b)");
  EXPECT_EQ(Pairs(t, "child::b[child::c]"), (std::vector<P>{{0, 1}}));
  EXPECT_EQ(Pairs(t, "child::b[not child::c]"), (std::vector<P>{{0, 3}}));
}

TEST(EvalFilterTest, IsTests) {
  Tree t = MustTree("a(b,c)");
  EXPECT_EQ(Pairs(t, "child::*[. is $x]", {{"x", 2}}),
            (std::vector<P>{{0, 2}}));
  EXPECT_EQ(Pairs(t, "child::*[. is .]"),
            (std::vector<P>{{0, 1}, {0, 2}}));
  // $x is $y passes only at alpha(x) and only when alpha(x) == alpha(y).
  EXPECT_EQ(Pairs(t, "child::*[$x is $y]", {{"x", 1}, {"y", 1}}),
            (std::vector<P>{{0, 1}}));
  EXPECT_EQ(Pairs(t, "child::*[$x is $y]", {{"x", 1}, {"y", 2}}),
            (std::vector<P>{}));
}

TEST(EvalFilterTest, AndOrNot) {
  Tree t = MustTree("a(b(c,d),b(c),b)");
  // ids: a=0 b=1 c=2 d=3 b=4 c=5 b=6
  EXPECT_EQ(Pairs(t, "child::b[child::c and child::d]"),
            (std::vector<P>{{0, 1}}));
  EXPECT_EQ(Pairs(t, "child::b[child::c or child::d]"),
            (std::vector<P>{{0, 1}, {0, 4}}));
  EXPECT_EQ(Pairs(t, "child::b[not (child::c or child::d)]"),
            (std::vector<P>{{0, 6}}));
}

TEST(EvalForTest, PaperSemantics) {
  // for $x in P1 return P2: pairs (v1,v3) s.t. some v2 with (v1,v2) in P1
  // and (v1,v3) in P2 under [x -> v2].
  Tree t = MustTree("a(b,c)");
  // For every child v2 of the root, select pairs (v1, v2): the for-loop
  // re-binds x and $x jumps there from v1 = any node with a child.
  EXPECT_EQ(Pairs(t, "for $x in child::* return $x"),
            (std::vector<P>{{0, 1}, {0, 2}}));
}

TEST(EvalForTest, SequenceMustBeNonEmptyAtStart) {
  Tree t = MustTree("a(b(c))");
  // Nodes without children produce no binding, hence no pairs.
  EXPECT_EQ(Pairs(t, "for $x in child::* return ."),
            (std::vector<P>{{0, 0}, {1, 1}}));
}

TEST(EvalForTest, NestedQuantification) {
  Tree t = MustTree("a(b,c)");
  // Both children exist: pairs (0, v3) where v3 is any child.
  EXPECT_EQ(
      Pairs(t, "for $x in child::b return for $y in child::c return "
               "child::*"),
      (std::vector<P>{{0, 1}, {0, 2}}));
}

TEST(EvalNodesTest, NodesReachesAllPairs) {
  Tree t = MustTree("a(b(c),d(e))");
  EXPECT_EQ(Pairs(t, "(ancestor::* union .)/(descendant::* union .)").size(),
            t.size() * t.size());
}

TEST(EvalAnchorTest, RootAnchor) {
  Tree t = MustTree("a(b)");
  // .[. is $x and not parent::*] is nonempty iff alpha(x) is the root.
  EXPECT_EQ(Pairs(t, ".[. is $x and not parent::*]", {{"x", 0}}),
            (std::vector<P>{{0, 0}}));
  EXPECT_EQ(Pairs(t, ".[. is $x and not parent::*]", {{"x", 1}}),
            (std::vector<P>{}));
}

TEST(EvalNaryTest, IntroductionAuthorTitlePairs) {
  // bib(book(author,title), book(author,author,title))
  // ids: bib=0 book=1 author=2 title=3 book=4 author=5 author=6 title=7.
  Tree t = MustTree("bib(book(author,title),book(author,author,title))");
  PathPtr p = MustPath(
      "descendant::book[child::author[. is $y] and child::title[. is $z]]");
  DirectEvaluator eval(t);
  TupleSet answers = eval.EvalNaryNaive(*p, {"y", "z"});
  TupleSet expected = {{2, 3}, {5, 7}, {6, 7}};
  EXPECT_EQ(answers, expected);
}

TEST(EvalNaryTest, UnconstrainedVariableRangesOverAllNodes) {
  Tree t = MustTree("a(b)");
  PathPtr p = MustPath("child::b");  // no variables at all
  DirectEvaluator eval(t);
  TupleSet answers = eval.EvalNaryNaive(*p, {"w"});
  EXPECT_EQ(answers, (TupleSet{{0}, {1}}));
}

TEST(EvalNaryTest, EmptyWhenPathEmpty) {
  Tree t = MustTree("a(b)");
  PathPtr p = MustPath("child::zzz[. is $x]");
  DirectEvaluator eval(t);
  EXPECT_TRUE(eval.EvalNaryNaive(*p, {"x"}).empty());
}

TEST(EvalNaryTest, RepeatedVariableInTuple) {
  Tree t = MustTree("a(b)");
  PathPtr p = MustPath("child::b[. is $x]");
  DirectEvaluator eval(t);
  EXPECT_EQ(eval.EvalNaryNaive(*p, {"x", "x"}), (TupleSet{{1, 1}}));
}

TEST(EvalNaryTest, BooleanQueryIsEmptyTupleSet) {
  Tree t = MustTree("a(b)");
  DirectEvaluator eval(t);
  // Arity 0: answer is { () } iff the path is satisfiable.
  EXPECT_EQ(eval.EvalNaryNaive(*MustPath("child::b"), {}),
            (TupleSet{{}}));
  EXPECT_TRUE(eval.EvalNaryNaive(*MustPath("child::c"), {}).empty());
}

// Algebraic equivalences from Section 2 of the paper, checked on random
// trees: P1 intersect P2 == P1 except (nodes except P2).
class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, IntersectViaExcept) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(15);
  Tree t = RandomTree(rng, opts);
  DirectEvaluator eval(t);
  PathPtr lhs = MustPath("child::a intersect descendant::a");
  PathPtr rhs = MustPath(
      "child::a except ((ancestor::* union .)/(descendant::* union .) "
      "except descendant::a)");
  EXPECT_EQ(eval.EvalPath(*lhs, {}), eval.EvalPath(*rhs, {}))
      << t.ToTerm();
}

TEST_P(EquivalenceTest, FilterEqualsSelfIntersection) {
  // P[T] with path test == P intersect P/T-as-partial-identity: check the
  // simpler law [[P[P2]]] == [[P]] restricted to domain of P2.
  Rng rng(GetParam() + 100);
  RandomTreeOptions opts;
  opts.num_nodes = 1 + rng.Below(15);
  Tree t = RandomTree(rng, opts);
  DirectEvaluator eval(t);
  BitMatrix filtered =
      eval.EvalPath(*MustPath("descendant::*[child::a]"), {});
  BitMatrix plain = eval.EvalPath(*MustPath("descendant::*"), {});
  BitVector domain =
      eval.EvalPath(*MustPath("child::a"), {}).NonEmptyRows();
  EXPECT_EQ(filtered, plain.MaskColumns(domain)) << t.ToTerm();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xpv::xpath
