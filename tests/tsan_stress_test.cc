// ThreadSanitizer-targeted stress: real threads hammering the exact
// cross-shard surfaces the annotations in common/mutex.h protect.
//
// The other suites exercise concurrency through the QueryService's own
// pool with disjoint documents; this one deliberately *collides* --
// spill/fault-in, Remove + re-Intern, open streams, batch evaluation,
// and stats polling all race on a small document set so TSan (cmake
// -DXPV_SANITIZE=thread) observes every lock pairing the store, the
// admission front-end, and the per-document caches claim to have. The
// test also runs (fast) without TSan as an ordinary ctest entry; its
// assertions are deliberately weak -- the sanitizer is the oracle.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include "common/rng.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "engine/query_stream.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace xpv {
namespace {

std::string MakeTempDir() {
  static int counter = 0;
  std::string path = ::testing::TempDir() + "xpv_tsan_stress_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(counter++);
  EXPECT_EQ(::mkdir(path.c_str(), 0755), 0) << path;
  return path;
}

// Under TSan everything is ~10x slower and the point is interleaving
// coverage, not volume: keep iteration counts small.
#if defined(__SANITIZE_THREAD__)
constexpr int kIters = 30;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kIters = 30;
#else
constexpr int kIters = 120;
#endif
#else
constexpr int kIters = 120;
#endif

// Spill / fault-in / Remove / re-Intern racing open streams, batch
// evaluation, and stats readers on one deliberately tiny residency
// budget, so documents constantly cross the resident<->spilled boundary
// while other threads hold pins into them.
TEST(TsanStressTest, SpillRemoveStreamsAndBatchesCollide) {
  const std::string dir = MakeTempDir();
  engine::DocumentStore store({.max_hot_caches = 2,
                               .num_shards = 2,
                               .spill_dir = dir,
                               .max_resident_docs = 2});
  engine::QueryService service({.num_threads = 3,
                                .document_store = &store,
                                .max_inflight_batches = 4});

  // A fixed pool of structurally distinct documents; index -> id is
  // re-established by the churn thread as it removes and re-inserts.
  constexpr std::size_t kDocs = 6;
  std::vector<std::string> terms;
  std::vector<std::atomic<engine::DocumentId>> ids(kDocs);
  {
    Rng rng(7);
    for (std::size_t i = 0; i < kDocs; ++i) {
      Tree tree = BibliographyTree(rng, 2 + i);
      terms.push_back(tree.ToTerm());
      ids[i].store(store.Insert(std::move(tree), "d" + std::to_string(i)));
    }
  }
  const std::vector<std::string> queries = {
      "child::book", "descendant::author", "descendant::*/child::title"};

  std::atomic<bool> stop{false};
  std::atomic<int> ok_results{0};
  std::vector<std::thread> threads;

  // Churn: Remove a document mid-serve, then re-insert the same content
  // under a fresh id (ids are never reused, so racing readers see
  // kNotFound at worst, never a wrong document).
  threads.emplace_back([&] {
    Rng rng(11);
    for (int it = 0; it < kIters; ++it) {
      const std::size_t slot = rng.Below(kDocs);
      const engine::DocumentId old_id = ids[slot].load();
      Result<Tree> tree = Tree::ParseTerm(terms[slot]);
      ASSERT_TRUE(tree.ok());
      const engine::DocumentId fresh =
          store.Insert(std::move(tree).value(), "d" + std::to_string(slot));
      ids[slot].store(fresh);
      store.Remove(old_id);
    }
    stop.store(true);
  });

  // Fault-in hammer: Fetch random ids so spilled documents decode from
  // disk while the churn thread deletes segments under them.
  threads.emplace_back([&] {
    Rng rng(13);
    while (!stop.load()) {
      Result<engine::DocumentPtr> doc =
          store.Fetch(ids[rng.Below(kDocs)].load());
      if (doc.ok()) {
        // Touch the tree so a torn reload would be observable.
        ASSERT_GT(doc.value()->tree().size(), 0u);
      }
    }
  });

  // Streams: open, pull a few batches, close -- holding document pins
  // across Remove() and spill decisions.
  threads.emplace_back([&] {
    Rng rng(17);
    while (!stop.load()) {
      Result<engine::QueryStream> stream = service.OpenStream(
          ids[rng.Below(kDocs)].load(), queries[rng.Below(queries.size())]);
      if (!stream.ok()) continue;
      for (int pulls = 0; pulls < 3 && !stream.value().done(); ++pulls) {
        Result<std::vector<xpath::NodeTuple>> batch =
            stream.value().NextBatch(4);
        if (!batch.ok()) break;
        if (batch.value().empty()) break;
      }
    }
  });

  // Batches: cross-shard batch evaluation through the admission queue.
  threads.emplace_back([&] {
    Rng rng(19);
    while (!stop.load()) {
      std::vector<engine::QueryJob> jobs;
      for (std::size_t j = 0; j < 4; ++j) {
        engine::QueryJob job;
        job.document = ids[rng.Below(kDocs)].load();
        job.query = queries[rng.Below(queries.size())];
        job.shape = engine::ResultShape::kCount;
        jobs.push_back(std::move(job));
      }
      Result<engine::BatchHandle> handle = service.TrySubmit(std::move(jobs));
      if (!handle.ok()) continue;
      for (const engine::QueryResult& r : handle.value().Wait()) {
        if (r.status.ok()) ok_results.fetch_add(1);
      }
    }
  });

  // Stats readers: every snapshot path the monitoring surface exposes.
  threads.emplace_back([&] {
    while (!stop.load()) {
      (void)service.stats();
      (void)store.stats();
      (void)store.shard_stats();
    }
  });

  for (std::thread& t : threads) t.join();
  // Weak sanity only -- the sanitizer is the oracle: some batch jobs must
  // have found a live document and produced a real count.
  EXPECT_GT(ok_results.load(), 0);
  auto stats = store.stats();
  EXPECT_EQ(stats.documents, kDocs);
}

}  // namespace
}  // namespace xpv
