// Admission-control and shard-scheduling tests for the QueryService front
// end: bounded TrySubmit queue with kOverloaded backpressure, accepted
// batches that always complete exactly once, per-batch deadlines and
// cancellation, ServiceStats accounting, and a shard-rebalance stress test
// that removes documents while batches are in flight on their shard.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "tree/generators.h"

namespace xpv {
namespace {

using engine::BatchHandle;
using engine::BatchOptions;
using engine::DocumentId;
using engine::DocumentStore;
using engine::QueryJob;
using engine::QueryResult;
using engine::QueryService;
using engine::ServiceStats;

Tree MakeTree(std::uint64_t seed, std::size_t nodes) {
  Rng rng(seed);
  RandomTreeOptions opts;
  opts.num_nodes = nodes;
  opts.alphabet_size = 3;
  return RandomTree(rng, opts);
}

/// A batch of `n` jobs running `query` against `tree`.
std::vector<QueryJob> TreeBatch(const Tree& tree, const std::string& query,
                                std::size_t n) {
  std::vector<QueryJob> jobs(n);
  for (QueryJob& job : jobs) {
    job.tree = &tree;
    job.query = query;
  }
  return jobs;
}

// A general-PPLbin (complement) query keeps the matrix engine busy with
// full O(n^3/64) Boolean products, so a batch of them holds the service
// in flight long enough for the admission queue to fill behind it.
constexpr char kHeavyQuery[] = "descendant::* except descendant::a";
constexpr char kLightQuery[] = "child::a";

TEST(AdmissionTest, OverfilledQueueRejectsWithOverloaded) {
  Tree heavy_tree = MakeTree(1, 1200);
  Tree light_tree = MakeTree(2, 12);
  QueryService service({.num_threads = 2,
                        .max_queued_batches = 1,
                        .max_inflight_batches = 1});

  // Expected results, computed on an unrelated service so this service's
  // counters stay attributable to the submissions below.
  QueryService oracle({.num_threads = 1});
  const QueryResult heavy_expected =
      oracle.Evaluate(heavy_tree, kHeavyQuery);
  const QueryResult light_expected =
      oracle.Evaluate(light_tree, kLightQuery);
  ASSERT_TRUE(heavy_expected.status.ok());
  ASSERT_TRUE(light_expected.status.ok());

  // One slow batch occupies the single in-flight slot...
  auto heavy = service.TrySubmit(TreeBatch(heavy_tree, kHeavyQuery, 6));
  ASSERT_TRUE(heavy.ok()) << heavy.status();
  // ...so a burst of further submissions overfills the depth-1 queue.
  std::vector<BatchHandle> accepted = {*heavy};
  std::vector<std::size_t> accepted_sizes = {6};
  std::size_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    auto h = service.TrySubmit(TreeBatch(light_tree, kLightQuery, 2));
    if (h.ok()) {
      accepted.push_back(*h);
      accepted_sizes.push_back(2);
    } else {
      EXPECT_EQ(h.status().code(), StatusCode::kOverloaded) << h.status();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);

  // Every *accepted* batch still completes with correct results: the
  // rejections neither lost nor re-ran accepted jobs.
  std::size_t total_accepted_jobs = 0;
  for (std::size_t b = 0; b < accepted.size(); ++b) {
    std::vector<QueryResult> results = accepted[b].Wait();
    ASSERT_EQ(results.size(), accepted_sizes[b]);
    total_accepted_jobs += results.size();
    const QueryResult& expected = b == 0 ? heavy_expected : light_expected;
    for (const QueryResult& r : results) {
      ASSERT_TRUE(r.status.ok()) << r.status;
      EXPECT_EQ(r.relation, expected.relation);
      EXPECT_EQ(r.from_root, expected.from_root);
    }
  }

  // The counters add up at quiescence.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches_accepted, accepted.size());
  EXPECT_EQ(stats.batches_rejected, rejected);
  EXPECT_EQ(stats.batches_completed, accepted.size());
  EXPECT_EQ(stats.batches_queued, 0u);
  EXPECT_EQ(stats.batches_running, 0u);
  EXPECT_EQ(stats.jobs_completed, total_accepted_jobs);
  EXPECT_EQ(stats.jobs_cancelled, 0u);
  EXPECT_EQ(stats.jobs_deadline_exceeded, 0u);
}

TEST(AdmissionTest, AcceptedJobsRunExactlyOnceUnderChurn) {
  Tree tree = MakeTree(3, 40);
  QueryService service({.num_threads = 2,
                        .max_queued_batches = 4,
                        .max_inflight_batches = 2});
  std::vector<BatchHandle> accepted;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 100; ++i) {
    auto h = service.TrySubmit(TreeBatch(tree, "descendant::b", 3));
    if (h.ok()) {
      accepted.push_back(*h);
    } else {
      ASSERT_EQ(h.status().code(), StatusCode::kOverloaded);
      ++rejected;
    }
  }
  for (BatchHandle& h : accepted) {
    std::vector<QueryResult> results = h.Wait();
    ASSERT_EQ(results.size(), 3u);
    for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches_accepted, accepted.size());
  EXPECT_EQ(stats.batches_rejected, rejected);
  EXPECT_EQ(stats.batches_accepted + stats.batches_rejected, 100u);
  EXPECT_EQ(stats.batches_completed, accepted.size());
  // Exactly-once accounting: had any accepted job been lost, Wait() above
  // would have returned a short vector; had any been double-run, the
  // executed-job counter would exceed 3 per accepted batch.
  EXPECT_EQ(stats.jobs_completed, 3 * accepted.size());
}

TEST(AdmissionTest, DestructionDrainsAcceptedBatches) {
  Tree tree = MakeTree(4, 64);
  std::vector<BatchHandle> handles;
  {
    QueryService service({.num_threads = 2,
                          .max_queued_batches = 0,  // unbounded queue
                          .max_inflight_batches = 1});
    for (int i = 0; i < 8; ++i) {
      auto h = service.TrySubmit(TreeBatch(tree, "descendant::a", 4));
      ASSERT_TRUE(h.ok()) << h.status();
      handles.push_back(*h);
    }
    // Destructor runs here with most batches still queued.
  }
  for (BatchHandle& h : handles) {
    EXPECT_TRUE(h.done());
    std::vector<QueryResult> results = h.Wait();
    ASSERT_EQ(results.size(), 4u);
    for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok());
  }
}

TEST(AdmissionTest, ExpiredDeadlineSkipsJobsWithDeadlineExceeded) {
  DocumentStore store({.num_shards = 2});
  const DocumentId id = store.Insert(MakeTree(5, 30));
  QueryService service({.num_threads = 2, .document_store = &store});
  BatchOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  std::vector<QueryJob> jobs(5);
  for (QueryJob& job : jobs) {
    job.document = id;
    job.query = kLightQuery;
  }
  auto h = service.TrySubmit(std::move(jobs), options);
  ASSERT_TRUE(h.ok()) << h.status();
  std::vector<QueryResult> results = h->Wait();
  ASSERT_EQ(results.size(), 5u);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_deadline_exceeded, 5u);
  EXPECT_EQ(stats.jobs_completed, 0u);
  EXPECT_EQ(stats.batches_completed, 1u);  // skipped batches still complete
  // A doomed batch must not churn the corpus: no document was resolved,
  // no axis cache built, no LRU touched.
  EXPECT_EQ(store.stats().cache_builds, 0u);
  EXPECT_EQ(store.stats().cache_hits, 0u);
}

TEST(AdmissionTest, CancelSkipsUnstartedJobsAndAccountsExactly) {
  Tree tree = MakeTree(6, 900);
  QueryService service({.num_threads = 2, .max_inflight_batches = 1});
  auto h = service.TrySubmit(TreeBatch(tree, kHeavyQuery, 8));
  ASSERT_TRUE(h.ok()) << h.status();
  h->Cancel();
  std::vector<QueryResult> results = h->Wait();
  ASSERT_EQ(results.size(), 8u);
  std::size_t ran = 0, cancelled = 0;
  for (const QueryResult& r : results) {
    if (r.status.ok()) {
      ++ran;  // was already running when the cancel landed
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kCancelled) << r.status;
      ++cancelled;
    }
  }
  EXPECT_EQ(ran + cancelled, 8u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, ran);
  EXPECT_EQ(stats.jobs_cancelled, cancelled);
  EXPECT_EQ(stats.batches_completed, 1u);
}

// ------------------------------------------- shard rebalance under Remove
//
// Documents are removed (and fresh ones inserted) while batches are in
// flight on their shard. Resolved documents are pinned by shared_ptr at
// batch start, so an accepted job must either produce the correct result
// for its document's (immutable) content or report NotFound when the
// document was removed before its batch resolved it -- never crash, hang,
// or return a wrong payload.
TEST(AdmissionStressTest, ShardRebalanceUnderRemove) {
  // Every document is structurally identical, so any OK result must match
  // one precomputed expectation per query regardless of interleaving.
  const std::string term = "a(b(a,c),c(b(a),a),b)";
  Tree content = *Tree::ParseTerm(term);
  const std::vector<std::string> queries = {
      "descendant::a", "child::*[descendant::c]", kHeavyQuery};
  QueryService oracle({.num_threads = 1});
  std::vector<QueryResult> expected;
  for (const std::string& q : queries) {
    expected.push_back(oracle.Evaluate(content, q));
    ASSERT_TRUE(expected.back().status.ok());
  }

  DocumentStore store({.max_hot_caches = 4, .num_shards = 4});
  QueryService service({.num_threads = 4,
                        .document_store = &store,
                        .max_queued_batches = 0,
                        .max_inflight_batches = 2});
  constexpr std::size_t kDocs = 16;
  std::vector<std::atomic<DocumentId>> live(kDocs);
  for (std::size_t d = 0; d < kDocs; ++d) {
    live[d] = store.InsertTerm(term).value();
  }

  // Churn thread: keep removing documents and replacing them with fresh
  // ids (which land on rotating shards) while batches run.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t d = rng.Below(kDocs);
      const DocumentId old_id = live[d].load(std::memory_order_relaxed);
      const DocumentId new_id = store.InsertTerm(term).value();
      live[d].store(new_id, std::memory_order_relaxed);
      EXPECT_TRUE(store.Remove(old_id));
      std::this_thread::yield();
    }
  });

  Rng rng(7);
  std::vector<BatchHandle> handles;
  std::vector<std::vector<std::size_t>> query_of_job;
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<QueryJob> jobs;
    std::vector<std::size_t> qids;
    for (int j = 0; j < 12; ++j) {
      QueryJob job;
      job.document = live[rng.Below(kDocs)].load(std::memory_order_relaxed);
      const std::size_t qid = rng.Below(queries.size());
      job.query = queries[qid];
      jobs.push_back(std::move(job));
      qids.push_back(qid);
    }
    auto h = service.TrySubmit(std::move(jobs));
    ASSERT_TRUE(h.ok()) << h.status();  // queue is unbounded here
    handles.push_back(*h);
    query_of_job.push_back(std::move(qids));
  }

  std::size_t ok_jobs = 0, not_found_jobs = 0;
  for (std::size_t b = 0; b < handles.size(); ++b) {
    std::vector<QueryResult> results = handles[b].Wait();
    ASSERT_EQ(results.size(), query_of_job[b].size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      if (r.status.ok()) {
        const QueryResult& e = expected[query_of_job[b][i]];
        EXPECT_EQ(r.relation, e.relation) << "batch " << b << " job " << i;
        EXPECT_EQ(r.from_root, e.from_root);
        ++ok_jobs;
      } else {
        EXPECT_EQ(r.status.code(), StatusCode::kNotFound) << r.status;
        ++not_found_jobs;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();

  EXPECT_EQ(ok_jobs + not_found_jobs, 40u * 12u);
  EXPECT_GT(ok_jobs, 0u);
  EXPECT_EQ(store.size(), kDocs);  // every remove was paired with an insert
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches_completed, handles.size());
  EXPECT_EQ(stats.jobs_completed, 40u * 12u);
  ASSERT_EQ(stats.shard_stats.size(), 4u);
}

TEST(AdmissionTest, SingleJobAndEmptyBatchesComplete) {
  // Single-job batches are the natural RPC shape; they must flow through
  // the pool (not serialize on the dispatcher thread) and empty batches
  // must complete immediately instead of hanging their handle.
  Tree tree = MakeTree(8, 20);
  QueryService service({.num_threads = 2,
                        .max_queued_batches = 0,
                        .max_inflight_batches = 4});
  auto empty = service.TrySubmit({});
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->Wait().empty());
  std::vector<BatchHandle> handles;
  for (int i = 0; i < 20; ++i) {
    auto h = service.TrySubmit(TreeBatch(tree, kLightQuery, 1));
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(*h);
  }
  for (BatchHandle& h : handles) {
    std::vector<QueryResult> results = h.Wait();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].status.ok()) << results[0].status;
  }
  EXPECT_EQ(service.stats().batches_completed, 21u);
}

TEST(AdmissionTest, StatsSnapshotShapes) {
  DocumentStore store({.num_shards = 3});
  QueryService service({.num_threads = 1, .document_store = &store});
  ServiceStats fresh = service.stats();
  EXPECT_EQ(fresh.batches_accepted, 0u);
  EXPECT_EQ(fresh.jobs_completed, 0u);
  ASSERT_EQ(fresh.shard_stats.size(), 3u);

  Tree t = *Tree::ParseTerm("a(b,c)");
  const DocumentId id = store.Insert(std::move(t));
  std::vector<QueryJob> jobs(2);
  for (QueryJob& job : jobs) {
    job.document = id;
    job.query = kLightQuery;
  }
  auto results = service.EvaluateBatch(jobs);
  ASSERT_EQ(results.size(), 2u);
  // Synchronous batches bypass admission but still count executed jobs.
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.jobs_completed, 2u);
  EXPECT_EQ(after.batches_accepted, 0u);
  std::uint64_t shard_builds = 0;
  for (const auto& s : after.shard_stats) shard_builds += s.cache_builds;
  EXPECT_EQ(shard_builds, 1u);
}

}  // namespace
}  // namespace xpv
