// Differential suite for the pluggable axis-relation representations
// (common/bool_matrix.h): the succinct IntervalMatrix must agree
// bit-for-bit with the dense BitMatrix -- and with the walk-based
// naive::* oracles -- for every axis, every kernel, every engine
// (MatrixEngine, DirectEvaluator, HCL leaves, GKP), every result shape
// of the QueryService at 1/2/8 threads, whichever backing the AxisCache
// is forced to. Also covers the dense-only bugfixes that ride along:
// the fallible BitMatrix::Create guard, the planner's dense-ceiling
// refusal, representation-exact approx_resident_bytes(), the
// publication ordering of the cache's build counters under concurrency,
// and the large-tree (1M-node) flat-memory smoke.
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_matrix.h"
#include "common/bool_matrix.h"
#include "common/rng.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "hcl/binary_query.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"
#include "ppl/pplbin.h"
#include "tree/axes.h"
#include "tree/axis_cache.h"
#include "tree/generators.h"
#include "tree/naive_reference.h"
#include "xpath/eval.h"

namespace xpv {
namespace {

std::vector<Tree> Corpus(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tree> corpus;
  for (std::size_t nodes : {1u, 2u, 13u, 64u, 65u, 130u}) {
    RandomTreeOptions opts;
    opts.num_nodes = nodes;
    opts.alphabet_size = 1 + rng.Below(4);
    corpus.push_back(RandomTree(rng, opts));
  }
  corpus.push_back(PathTree(67));
  corpus.push_back(StarTree(66));
  corpus.push_back(PerfectBinaryTree(5));
  return corpus;
}

BitVector RandomNodeSet(Rng& rng, std::size_t n, std::size_t density_pct) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Below(100) < density_pct) v.Set(i);
  }
  return v;
}

class BoolMatrixPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

// ------------------------------------------- representation equivalence

TEST_P(BoolMatrixPropertyTest, IntervalMatrixMatchesNaiveOracle) {
  for (const Tree& t : Corpus(GetParam())) {
    for (Axis axis : kAllAxes) {
      const IntervalMatrix m = AxisIntervalMatrix(t, axis);
      const BitMatrix oracle = naive::AxisMatrix(t, axis);
      ASSERT_EQ(m.size(), t.size());
      Result<BitMatrix> dense = m.ToDense();
      ASSERT_TRUE(dense.ok()) << dense.status();
      EXPECT_EQ(*dense, oracle)
          << AxisName(axis) << "\ntree: " << t.ToTerm();
      EXPECT_EQ(m.Count(), oracle.Count()) << AxisName(axis);
      // Runs must be canonical: sorted, disjoint, maximal, nonempty.
      for (NodeId v = 0; v < t.size(); ++v) {
        auto [first, last] = m.RunsOf(v);
        for (auto it = first; it != last; ++it) {
          EXPECT_LT(it->begin, it->end);
          if (it + 1 != last) EXPECT_LT(it->end, (it + 1)->begin);
        }
      }
    }
  }
}

TEST_P(BoolMatrixPropertyTest, KernelsMatchDenseOnEveryAxis) {
  Rng rng(GetParam() * 977 + 5);
  for (const Tree& t : Corpus(GetParam())) {
    const std::size_t n = t.size();
    for (Axis axis : kAllAxes) {
      const IntervalMatrix interval = AxisIntervalMatrix(t, axis);
      const DenseBoolMatrix dense(AxisMatrix(t, axis));
      EXPECT_EQ(interval.NonEmptyRows(), dense.NonEmptyRows());
      for (std::size_t probe = 0; probe < 16; ++probe) {
        const auto r = static_cast<std::size_t>(rng.Below(n));
        const auto c = static_cast<std::size_t>(rng.Below(n));
        EXPECT_EQ(interval.Get(r, c), dense.Get(r, c))
            << AxisName(axis) << " (" << r << "," << c << ")";
      }
      BitVector scratch;  // pooled across rows on purpose
      std::vector<std::uint32_t> some_rows;
      for (NodeId v = 0; v < n; ++v) {
        interval.RowInto(v, scratch);
        EXPECT_EQ(scratch, dense.Row(v)) << AxisName(axis) << " row " << v;
        if (v % 3 == 0) some_rows.push_back(v);
      }
      const auto batch_i = interval.Rows(some_rows);
      const auto batch_d = dense.Rows(some_rows);
      ASSERT_EQ(batch_i.size(), batch_d.size());
      for (std::size_t i = 0; i < batch_i.size(); ++i) {
        EXPECT_EQ(batch_i[i], batch_d[i]);
      }
      for (std::size_t density : {0u, 3u, 40u, 100u}) {
        const BitVector sel = RandomNodeSet(rng, n, density);
        EXPECT_EQ(interval.ImageOf(sel), dense.ImageOf(sel))
            << AxisName(axis) << " density " << density;
        EXPECT_EQ(interval.AndOfRows(sel), dense.AndOfRows(sel))
            << AxisName(axis) << " density " << density;
        EXPECT_EQ(interval.RowsContaining(sel), dense.RowsContaining(sel))
            << AxisName(axis) << " density " << density;
      }
    }
  }
}

TEST(BitVectorRangeTest, ClearRangeAndAnyInRangeMatchBitLoops) {
  Rng rng(7);
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    for (int trial = 0; trial < 30; ++trial) {
      BitVector v = RandomNodeSet(rng, n, 50);
      const std::size_t a = rng.Below(n + 1);
      const std::size_t b = a + rng.Below(n + 1 - a);
      bool any = false;
      for (std::size_t i = a; i < b; ++i) any = any || v.Get(i);
      EXPECT_EQ(v.AnyInRange(a, b), any) << n << " [" << a << "," << b << ")";
      BitVector cleared = v;
      cleared.ClearRange(a, b);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(cleared.Get(i), v.Get(i) && (i < a || i >= b)) << i;
      }
    }
  }
}

// --------------------------------------------------- allocation guards

TEST(DenseCeilingTest, CreateRefusesOversizedDimensions) {
  Result<BitMatrix> small = BitMatrix::Create(17);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->size(), 17u);
  Result<BitMatrix> huge = BitMatrix::Create(BitMatrix::kMaxDenseNodes + 1);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);
  // ToDense on an interval matrix of an oversized tree fails the same way
  // instead of attempting the O(n^2)-bit allocation.
  Tree big = PathTree(BitMatrix::kMaxDenseNodes + 2);
  Result<BitMatrix> expanded =
      AxisIntervalMatrix(big, Axis::kDescendant).ToDense();
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kResourceExhausted);
}

TEST(DenseCeilingTest, ServiceCrossesOverToSparseOnOversizedTrees) {
  Tree t = PathTree(BitMatrix::kMaxDenseNodes + 10);
  const std::size_t n = t.size();
  engine::QueryService service({.num_threads = 1});
  // The full-relation answer of a path tree's descendant axis is the
  // strict upper triangle -- n runs, far under the sparse byte budget, so
  // the planner crosses over to the sparse engine instead of refusing.
  // Above the ceiling the payload arrives as the run-list relation.
  engine::QueryResult full =
      service.Evaluate(t, "descendant::a", engine::ResultShape::kFullRelation);
  ASSERT_TRUE(full.status.ok())
      << full.status << " " << full.plan.DebugString();
  EXPECT_EQ(full.plan.repr, MatrixRepr::kSparse) << full.plan.DebugString();
  ASSERT_NE(full.relation_sparse, nullptr);
  EXPECT_EQ(full.relation.size(), 0u);
  EXPECT_EQ(full.relation_sparse->Count(), n * (n - 1) / 2);
  EXPECT_TRUE(full.relation_sparse->Get(0, n - 1));
  EXPECT_FALSE(full.relation_sparse->Get(5, 3));
  BitVector root_only(n);
  root_only.Set(0);
  EXPECT_EQ(full.from_root, full.relation_sparse->ImageOf(root_only));
  // N-ary machinery is dense end-to-end: still refused for batch shapes
  // and streams alike.
  engine::QueryResult nary = service.Evaluate(t, "$x/descendant::*/$y",
                                              engine::ResultShape::kCount);
  EXPECT_EQ(nary.status.code(), StatusCode::kResourceExhausted);
  Result<engine::QueryStream> stream =
      service.OpenStream(t, "$x/descendant::*/$y");
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kResourceExhausted);
  // A monadic complement over a non-step subexpression materializes one
  // sub-matrix; the sparse kernels build it run-natively, so the old
  // refusal is gone. (Surface `except` compiles to except(except L union
  // R), so every set difference lands here.) On a path, descendants of
  // the root minus its children = nodes 2..n-1.
  engine::QueryResult cmpl =
      service.Evaluate(t, "descendant::a except child::a",
                       engine::ResultShape::kCount);
  ASSERT_TRUE(cmpl.status.ok())
      << cmpl.status << " " << cmpl.plan.DebugString();
  EXPECT_NE(cmpl.plan.repr, MatrixRepr::kDense) << cmpl.plan.DebugString();
  EXPECT_EQ(cmpl.count, n - 2);
  // Monadic shapes of positive queries -- the serving workload -- keep
  // working through interval axes.
  engine::QueryResult count =
      service.Evaluate(t, "descendant::a", engine::ResultShape::kCount);
  ASSERT_TRUE(count.status.ok()) << count.status;
  EXPECT_EQ(count.count, t.size() - 1);
  engine::QueryResult filtered = service.Evaluate(
      t, "descendant::a[child::a]", engine::ResultShape::kBoolean);
  ASSERT_TRUE(filtered.status.ok())
      << filtered.status << " " << filtered.plan.DebugString();
  EXPECT_TRUE(filtered.boolean);
  // And a bare complement-of-step stays dense-free on the same oversized
  // tree: for a single source node, image-of-complement is the complement
  // of the image, which pins down the fast path without any oracle.
  auto cache = std::make_shared<AxisCache>(t);
  ASSERT_TRUE(cache->interval_backed());
  ppl::MatrixEngine engine(cache);
  BitVector root(t.size());
  root.Set(0);
  ppl::PplBinPtr step = ppl::PplBinExpr::Step(Axis::kChild, "*");
  BitVector expected = engine.Image(*step, root).value();
  expected.Complement();
  EXPECT_EQ(engine
                .Image(*ppl::PplBinExpr::Complement(
                           ppl::PplBinExpr::Step(Axis::kChild, "*")),
                       root)
                .value(),
            expected);
}

// ------------------------------------------- engine differentials (forced)

ppl::PplBinPtr RandomPplBin(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    if (rng.Chance(1, 5)) return ppl::PplBinExpr::Self();
    return ppl::PplBinExpr::Step(
        kAllAxes[rng.Below(kAllAxes.size())],
        rng.Chance(1, 3) ? "*" : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(4u)) {
    case 0:
      return ppl::PplBinExpr::Compose(RandomPplBin(rng, depth - 1),
                                      RandomPplBin(rng, depth - 1));
    case 1:
      return ppl::PplBinExpr::Union(RandomPplBin(rng, depth - 1),
                                    RandomPplBin(rng, depth - 1));
    case 2:
      return ppl::PplBinExpr::Filter(RandomPplBin(rng, depth - 1));
    default:
      return ppl::PplBinExpr::Complement(RandomPplBin(rng, depth - 1));
  }
}

TEST_P(BoolMatrixPropertyTest, MatrixEngineAgreesAcrossBackings) {
  Rng rng(GetParam() * 31 + 1);
  for (const Tree& t : Corpus(GetParam())) {
    auto dense_cache = std::make_shared<AxisCache>(t, AxisBacking::kDense);
    auto interval_cache =
        std::make_shared<AxisCache>(t, AxisBacking::kInterval);
    ASSERT_FALSE(dense_cache->interval_backed());
    ASSERT_TRUE(interval_cache->interval_backed());
    ppl::MatrixEngine dense_engine(dense_cache);
    ppl::MatrixEngine interval_engine(interval_cache);
    for (int trial = 0; trial < 8; ++trial) {
      ppl::PplBinPtr p = RandomPplBin(rng, 3);
      EXPECT_EQ(dense_engine.Evaluate(*p), interval_engine.Evaluate(*p))
          << p->ToString() << "\ntree: " << t.ToTerm();
      EXPECT_EQ(dense_engine.EvaluateFromRoot(*p).value(),
                interval_engine.EvaluateFromRoot(*p).value())
          << p->ToString();
      EXPECT_EQ(dense_engine.Domain(*p).value(),
                interval_engine.Domain(*p).value())
          << p->ToString();
      const BitVector from = RandomNodeSet(rng, t.size(), 25);
      EXPECT_EQ(dense_engine.Image(*p, from).value(),
                interval_engine.Image(*p, from).value())
          << p->ToString();
      EXPECT_EQ(dense_engine.Preimage(*p, from).value(),
                interval_engine.Preimage(*p, from).value())
          << p->ToString();
    }
    // The complement-of-step fast path, explicitly, for every axis: both
    // the masked and the wildcard variant, against the dense oracle.
    for (Axis axis : kAllAxes) {
      for (const char* name : {"", "a"}) {
        ppl::PplBinPtr p =
            ppl::PplBinExpr::Complement(ppl::PplBinExpr::Step(axis, name));
        const BitVector from = RandomNodeSet(rng, t.size(), 30);
        EXPECT_EQ(dense_engine.Image(*p, from).value(),
                  interval_engine.Image(*p, from).value())
            << p->ToString();
        EXPECT_EQ(dense_engine.Preimage(*p, from).value(),
                  interval_engine.Preimage(*p, from).value())
            << p->ToString();
        const BitVector empty(t.size());
        EXPECT_EQ(dense_engine.Image(*p, empty).value(),
                  interval_engine.Image(*p, empty).value());
        EXPECT_EQ(dense_engine.Preimage(*p, empty).value(),
                  interval_engine.Preimage(*p, empty).value());
      }
    }
  }
}

TEST_P(BoolMatrixPropertyTest, DirectHclAndGkpAgreeAcrossBackings) {
  Rng rng(GetParam() * 67 + 2);
  for (const Tree& t : Corpus(GetParam())) {
    auto dense_cache = std::make_shared<AxisCache>(t, AxisBacking::kDense);
    auto interval_cache =
        std::make_shared<AxisCache>(t, AxisBacking::kInterval);
    // DirectEvaluator (Fig. 2 semantics).
    xpath::DirectEvaluator dense_eval(dense_cache);
    xpath::DirectEvaluator interval_eval(interval_cache);
    for (int trial = 0; trial < 4; ++trial) {
      ppl::PplBinPtr p = RandomPplBin(rng, 2);
      EXPECT_EQ(dense_eval.EvalPath(*ppl::ToXPath(*p), {}),
                interval_eval.EvalPath(*ppl::ToXPath(*p), {}))
          << p->ToString();
    }
    // HCL axis leaves.
    for (Axis axis : kAllAxes) {
      for (const char* name : {"", "a"}) {
        hcl::AxisQuery leaf(axis, name);
        EXPECT_EQ(leaf.EvaluateCached(dense_cache).value(),
                  leaf.EvaluateCached(interval_cache).value())
            << leaf.ToString();
        EXPECT_EQ(leaf.EvaluateCached(interval_cache).value(),
                  leaf.Evaluate(t))
            << leaf.ToString();
      }
    }
    // GKP (label sets come from the same cache object).
    ppl::GkpEngine dense_gkp(dense_cache);
    ppl::GkpEngine interval_gkp(interval_cache);
    ppl::PplBinPtr step = ppl::PplBinExpr::Step(Axis::kDescendant, "a");
    Result<BitMatrix> a = dense_gkp.Relation(*step);
    Result<BitMatrix> b = interval_gkp.Relation(*step);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST_P(BoolMatrixPropertyTest, ServiceShapesAgreeAcrossBackingsAndThreads) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::vector<engine::QueryResult>> per_backing;
    for (AxisBacking backing : {AxisBacking::kDense, AxisBacking::kInterval}) {
      engine::DocumentStoreOptions store_options;
      store_options.axis_backing = backing;
      engine::DocumentStore store(store_options);
      std::vector<engine::DocumentId> ids;
      for (Tree& t : Corpus(GetParam())) {
        ids.push_back(store.Insert(std::move(t)));
      }
      engine::QueryService service(
          {.num_threads = threads, .document_store = &store});
      const std::vector<std::string> queries = {
          "descendant::a",
          "child::*/following-sibling::a",
          "descendant::a except child::a",
          "ancestor::*",
          "preceding-sibling::a/parent::*",
          "self::a[descendant::b]",
      };
      std::vector<engine::QueryResult> results;
      for (engine::DocumentId id : ids) {
        for (const std::string& q : queries) {
          for (engine::ResultShape shape :
               {engine::ResultShape::kFullRelation,
                engine::ResultShape::kFromRootSet,
                engine::ResultShape::kBoolean, engine::ResultShape::kCount}) {
            results.push_back(service.Evaluate(id, q, shape));
          }
        }
      }
      per_backing.push_back(std::move(results));
    }
    ASSERT_EQ(per_backing[0].size(), per_backing[1].size());
    for (std::size_t i = 0; i < per_backing[0].size(); ++i) {
      const engine::QueryResult& d = per_backing[0][i];
      const engine::QueryResult& v = per_backing[1][i];
      EXPECT_EQ(d.status, v.status) << i;
      EXPECT_TRUE(d.plan == v.plan) << i;
      EXPECT_EQ(d.relation, v.relation) << i;
      EXPECT_EQ(d.from_root, v.from_root) << i;
      EXPECT_EQ(d.boolean, v.boolean) << i;
      EXPECT_EQ(d.count, v.count) << i;
    }
  }
}

// --------------------------------------------------- resident accounting

TEST(AxisCacheBytesTest, ResidentBytesMatchesChosenRepresentation) {
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_nodes = 300;
  opts.alphabet_size = 3;
  Tree t = RandomTree(rng, opts);
  for (AxisBacking backing : {AxisBacking::kDense, AxisBacking::kInterval}) {
    AxisCache cache(t, backing);
    EXPECT_EQ(cache.approx_resident_bytes(), 0u);
    std::size_t expected = 0;
    for (Axis axis : kAllAxes) {
      const BoolMatrix& m = cache.Matrix(axis);
      EXPECT_EQ(m.name(),
                backing == AxisBacking::kDense ? "dense" : "interval");
      expected += m.resident_bytes();
    }
    // Within 10% of the chosen representation's true footprint (labels not
    // built yet, so matrices are the whole story).
    const std::size_t got = cache.approx_resident_bytes();
    EXPECT_GE(got * 10, expected * 9) << got << " vs " << expected;
    EXPECT_LE(got * 10, expected * 11) << got << " vs " << expected;
    // Label sets add their payload plus the documented map-node overhead.
    const std::size_t before = cache.approx_resident_bytes();
    cache.Labels("a");
    cache.Labels("*");
    const std::size_t words = (t.size() + 63) / 64;
    EXPECT_GE(cache.approx_resident_bytes(),
              before + 2 * words * 8 + 2 * AxisCache::kLabelMapNodeBytes);
  }
  // The dense and interval footprints must actually differ (the old stat
  // reported the dense formula for both).
  AxisCache dense(t, AxisBacking::kDense);
  AxisCache interval(t, AxisBacking::kInterval);
  for (Axis axis : kAllAxes) {
    dense.Matrix(axis);
    interval.Matrix(axis);
  }
  EXPECT_NE(dense.approx_resident_bytes(), interval.approx_resident_bytes());
}

TEST(AxisCacheBytesTest, StatNeverReadsHalfBuiltState) {
  Rng rng(13);
  RandomTreeOptions opts;
  opts.num_nodes = 600;
  Tree t = RandomTree(rng, opts);
  for (int round = 0; round < 4; ++round) {
    AxisCache cache(t, round % 2 == 0 ? AxisBacking::kDense
                                      : AxisBacking::kInterval);
    std::vector<std::thread> workers;
    // Builders hammer all 7 axes concurrently...
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&cache, w] {
        for (std::size_t i = 0; i < kAllAxes.size(); ++i) {
          cache.Matrix(kAllAxes[(i + static_cast<std::size_t>(w)) %
                                kAllAxes.size()]);
        }
      });
    }
    // ...while readers watch the stats: bytes and counters must be
    // monotone, and a counter of k implies at least k readable entries'
    // bytes (publication precedes counting).
    std::vector<std::thread> readers;
    for (int w = 0; w < 2; ++w) {
      readers.emplace_back([&cache] {
        std::size_t last_bytes = 0;
        std::size_t last_built = 0;
        for (int i = 0; i < 2000; ++i) {
          const std::size_t built = cache.matrices_built();
          const std::size_t bytes = cache.approx_resident_bytes();
          EXPECT_GE(built, last_built);
          EXPECT_GE(bytes, last_bytes);
          EXPECT_LE(built, kAllAxes.size());
          if (built > 0) EXPECT_GT(bytes, 0u);
          last_built = built;
          last_bytes = bytes;
        }
      });
    }
    for (auto& th : workers) th.join();
    for (auto& th : readers) th.join();
    EXPECT_EQ(cache.matrices_built(), kAllAxes.size());
  }
}

// ------------------------------------------------- million-node smoke

TEST(MillionNodeSmokeTest, AxisRelationsStayNearLinear) {
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_nodes = 1u << 20;
  opts.alphabet_size = 3;
  struct Case {
    const char* name;
    Tree tree;
  };
  std::vector<Case> cases;
  cases.push_back({"path", PathTree(1u << 20)});
  cases.push_back({"star", StarTree(1u << 20)});
  cases.push_back({"random", RandomTree(rng, opts)});
  for (const Case& c : cases) {
    const std::size_t n = c.tree.size();
    // kAuto: interval above the dense threshold.
    auto cache = std::make_shared<AxisCache>(c.tree);
    ASSERT_TRUE(cache->interval_backed()) << c.name;
    for (Axis axis : kAllAxes) cache->Matrix(axis);
    const std::size_t bytes = cache->approx_resident_bytes();
    const std::size_t dense_formula =
        kAllAxes.size() * n * ((n + 63) / 64) * 8;
    // Flat memory: O(n log n) bytes, and >= 100x below the dense formula
    // (the ROADMAP acceptance; the real ratio is ~5 orders of magnitude).
    const double cap = 24.0 * static_cast<double>(n) *
                       std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(bytes), cap) << c.name;
    EXPECT_LT(bytes * 100, dense_formula) << c.name;
    // And the monadic serving path works end-to-end at this size.
    engine::QueryService service({.num_threads = 1});
    engine::QueryResult count = service.Evaluate(
        c.tree, "descendant::*", engine::ResultShape::kCount);
    ASSERT_TRUE(count.status.ok()) << c.name << ": " << count.status;
    EXPECT_EQ(count.count, n - 1) << c.name;
    // Complement-of-step stays consistent at this scale too: from a single
    // source node, image-of-complement == complement-of-image.
    ppl::MatrixEngine matrix(cache);
    BitVector root(n);
    root.Set(0);
    BitVector expected =
        matrix.Image(*ppl::PplBinExpr::Step(Axis::kChild, "*"), root).value();
    expected.Complement();
    EXPECT_EQ(matrix
                  .Image(*ppl::PplBinExpr::Complement(
                             ppl::PplBinExpr::Step(Axis::kChild, "*")),
                         root)
                  .value(),
              expected)
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoolMatrixPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace xpv
