// Tests for HCL(L) (Section 5): Fig. 6 semantics, NVS(/) checking, the
// Lemma 3 sharing normal form, the Prop. 10 MC table, and the Fig. 8
// vals() answer enumeration (Prop. 11), differentially against the naive
// evaluator.
#include <gtest/gtest.h>

#include "hcl/answer.h"
#include "hcl/ast.h"
#include "hcl/sharing.h"
#include "tree/generators.h"

namespace xpv::hcl {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

HclPtr Ax(Axis axis, std::string name = "*") {
  return HclExpr::Binary(MakeAxisQuery(axis, std::move(name)));
}

TEST(HclAstTest, ToStringShapes) {
  HclPtr c = HclExpr::Compose(
      Ax(Axis::kChild, "a"),
      HclExpr::Union(HclExpr::Var("x"),
                     HclExpr::Filter(Ax(Axis::kDescendant))));
  EXPECT_EQ(c->ToString(), "child::a/(x u [descendant::*])");
  EXPECT_EQ(c->Size(), 6u);
}

TEST(HclAstTest, FreeVars) {
  HclPtr c = HclExpr::Union(
      HclExpr::Compose(HclExpr::Var("x"), Ax(Axis::kChild)),
      HclExpr::Filter(HclExpr::Var("y")));
  EXPECT_EQ(FreeVars(*c), (std::set<std::string>{"x", "y"}));
}

TEST(HclAstTest, CheckNoSharedComposition) {
  // x/child::* is fine; x/x is not.
  EXPECT_TRUE(CheckNoSharedComposition(
                  *HclExpr::Compose(HclExpr::Var("x"), Ax(Axis::kChild)))
                  .ok());
  EXPECT_FALSE(CheckNoSharedComposition(
                   *HclExpr::Compose(HclExpr::Var("x"), HclExpr::Var("x")))
                   .ok());
  // Sharing inside unions is allowed.
  EXPECT_TRUE(CheckNoSharedComposition(
                  *HclExpr::Union(HclExpr::Var("x"), HclExpr::Var("x")))
                  .ok());
  // Filter prefixes compose too: [x]/x shares x.
  EXPECT_FALSE(
      CheckNoSharedComposition(
          *HclExpr::Compose(HclExpr::Filter(HclExpr::Var("x")),
                            HclExpr::Var("x")))
          .ok());
}

TEST(HclSemanticsTest, Fig6Equations) {
  // a(b,c): ids a=0 b=1 c=2.
  Tree t = MustTree("a(b,c)");
  std::map<const BinaryQuery*, BitMatrix> cache;

  // [[b]] = q_b(t).
  HclPtr step = Ax(Axis::kChild, "b");
  BitMatrix m = EvalHcl(t, *step, {}, &cache);
  EXPECT_EQ(m.Count(), 1u);
  EXPECT_TRUE(m.Get(0, 1));

  // [[x]] = {(alpha(x), alpha(x))}.
  HclPtr var = HclExpr::Var("x");
  m = EvalHcl(t, *var, {{"x", 2}}, &cache);
  EXPECT_EQ(m.Count(), 1u);
  EXPECT_TRUE(m.Get(2, 2));

  // [[ [C] ]] = domain diagonal.
  HclPtr filter = HclExpr::Filter(Ax(Axis::kChild));
  m = EvalHcl(t, *filter, {}, &cache);
  EXPECT_EQ(m.Count(), 1u);
  EXPECT_TRUE(m.Get(0, 0));

  // Composition and union.
  HclPtr compose = HclExpr::Compose(Ax(Axis::kChild, "b"), HclExpr::Var("x"));
  m = EvalHcl(t, *compose, {{"x", 1}}, &cache);
  EXPECT_TRUE(m.Get(0, 1));
  EXPECT_EQ(m.Count(), 1u);
  m = EvalHcl(t, *compose, {{"x", 2}}, &cache);
  EXPECT_EQ(m.Count(), 0u);
}

TEST(SharingFormTest, SimpleCompositionIsUnchangedModuloSelf) {
  // child::a/child::b -> child::a/child::b/self, no parameters.
  HclPtr c = HclExpr::Compose(Ax(Axis::kChild, "a"), Ax(Axis::kChild, "b"));
  SharingForm form = SharingForm::FromHcl(*c);
  EXPECT_EQ(form.num_params(), 0u);
  EXPECT_EQ(form.root().ToString(), "child::a/child::b/self");
}

TEST(SharingFormTest, UnionLeftOfCompositionIntroducesParameter) {
  // (a u b)/c => a/p u b/p with p -> c/self.
  HclPtr c = HclExpr::Compose(
      HclExpr::Union(Ax(Axis::kChild, "a"), Ax(Axis::kChild, "b")),
      Ax(Axis::kChild, "c"));
  SharingForm form = SharingForm::FromHcl(*c);
  EXPECT_EQ(form.num_params(), 1u);
  EXPECT_EQ(form.root().ToString(), "child::a/p0 u child::b/p0");
  EXPECT_EQ(form.Def(0).ToString(), "child::c/self");
}

TEST(SharingFormTest, NestedUnionsShareLinearly) {
  // ((a u b) u (c u d))/e: parameters prevent copying e.
  HclPtr c = HclExpr::Compose(
      HclExpr::Union(
          HclExpr::Union(Ax(Axis::kChild, "a"), Ax(Axis::kChild, "b")),
          HclExpr::Union(Ax(Axis::kChild, "c"), Ax(Axis::kChild, "d"))),
      Ax(Axis::kChild, "e"));
  SharingForm form = SharingForm::FromHcl(*c);
  // e is stored once; inner unions reuse the same parameter.
  EXPECT_EQ(form.num_params(), 1u);
}

// Lemma 3 size bound: |D| + |Delta| linear in |C| even for towers of
// unions on the left of compositions, where naive distribution would be
// exponential.
TEST(SharingFormTest, LinearSizeOnUnionTowers) {
  auto make_tower = [&](int depth) {
    HclPtr c = Ax(Axis::kChild, "a");
    for (int i = 0; i < depth; ++i) {
      c = HclExpr::Compose(
          HclExpr::Union(Ax(Axis::kChild, "a"), Ax(Axis::kChild, "b")),
          std::move(c));
    }
    return c;
  };
  std::size_t previous = 0;
  for (int depth : {2, 4, 8, 16}) {
    HclPtr c = make_tower(depth);
    SharingForm form = SharingForm::FromHcl(*c);
    std::size_t total = form.TotalSize();
    // Linear growth: roughly 5 nodes per level.
    EXPECT_LE(total, 8u * static_cast<std::size_t>(depth) + 8u);
    EXPECT_GT(total, previous);
    previous = total;
  }
}

// Lemma 3 semantics: D_Delta = C. Check by expanding the sharing form back
// and comparing naive n-ary answers.
TEST(SharingFormTest, ExpansionPreservesSemantics) {
  Tree t = MustTree("a(b(c),b,c(b))");
  HclPtr c = HclExpr::Compose(
      HclExpr::Union(
          HclExpr::Compose(Ax(Axis::kChild, "b"), HclExpr::Var("x")),
          Ax(Axis::kDescendant, "c")),
      HclExpr::Union(Ax(Axis::kChild), HclExpr::Var("y")));
  SharingForm form = SharingForm::FromHcl(*c);
  HclPtr expanded = form.Expand();
  EXPECT_EQ(EvalHclNaryNaive(t, *c, {"x", "y"}),
            EvalHclNaryNaive(t, *expanded, {"x", "y"}));
}

TEST(SharingFormTest, VarsOfFollowsParameters) {
  HclPtr c = HclExpr::Compose(
      HclExpr::Union(Ax(Axis::kChild, "a"), Ax(Axis::kChild, "b")),
      HclExpr::Var("z"));
  SharingForm form = SharingForm::FromHcl(*c);
  // The root union's expansion mentions z (through the parameter).
  EXPECT_TRUE(form.VarsOf(form.root().id).contains("z"));
}

TEST(McTableTest, MatchesSatisfiabilityDefinition) {
  // MC(D, u) = 1 iff exists alpha, u' with (u,u') in [[D_Delta]]^{t,alpha}.
  Tree t = MustTree("a(b(c),d)");
  HclPtr c = HclExpr::Compose(Ax(Axis::kChild, "b"),
                              HclExpr::Compose(Ax(Axis::kChild, "c"),
                                               HclExpr::Var("x")));
  QueryAnswerer answerer(t, *c, {"x"});
  ASSERT_TRUE(answerer.Prepare().ok());
  const int root_id = answerer.form().root().id;
  // Only the root node (0) has a b-child with a c-child.
  EXPECT_TRUE(answerer.Mc(root_id, 0));
  for (NodeId u = 1; u < t.size(); ++u) {
    EXPECT_FALSE(answerer.Mc(root_id, u)) << "node " << u;
  }
}

TEST(McTableTest, VariablesAreAlwaysSatisfiable) {
  // MC(x/D, u) = MC(D, u): a variable can bind to the current node.
  Tree t = MustTree("a(b)");
  HclPtr c = HclExpr::Compose(HclExpr::Var("x"), Ax(Axis::kChild, "b"));
  QueryAnswerer answerer(t, *c, {"x"});
  ASSERT_TRUE(answerer.Prepare().ok());
  const int root_id = answerer.form().root().id;
  EXPECT_TRUE(answerer.Mc(root_id, 0));   // root has a b child
  EXPECT_FALSE(answerer.Mc(root_id, 1));  // leaf does not
}

TEST(AnswerTest, RejectsSharedCompositions) {
  Tree t = MustTree("a(b)");
  HclPtr bad = HclExpr::Compose(HclExpr::Var("x"), HclExpr::Var("x"));
  QueryAnswerer answerer(t, *bad, {"x"});
  EXPECT_EQ(answerer.Prepare().code(), StatusCode::kFragmentViolation);
}

TEST(AnswerTest, SingleVariableSelectsMatchingNodes) {
  // child::b/x from anywhere: answers = b-children of any node.
  Tree t = MustTree("a(b(b),c)");
  HclPtr c = HclExpr::Compose(Ax(Axis::kChild, "b"), HclExpr::Var("x"));
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"x"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{1}, {2}}));
}

TEST(AnswerTest, PairSelection) {
  // Author-title pairs, HCL-style: desc::book/[child::author/y]/child::title/z
  Tree t = MustTree("bib(book(author,title),book(author,author,title))");
  HclPtr c = HclExpr::Compose(
      Ax(Axis::kDescendant, "book"),
      HclExpr::Compose(
          HclExpr::Filter(HclExpr::Compose(Ax(Axis::kChild, "author"),
                                           HclExpr::Var("y"))),
          HclExpr::Compose(Ax(Axis::kChild, "title"), HclExpr::Var("z"))));
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"y", "z"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{2, 3}, {5, 7}, {6, 7}}));
}

TEST(AnswerTest, UnionExtendsUnconstrainedVariables) {
  // x u child::b: if the b-branch holds, x ranges over all nodes.
  Tree t = MustTree("a(b)");
  HclPtr c = HclExpr::Union(
      HclExpr::Compose(Ax(Axis::kChild, "b"), HclExpr::Var("x")),
      Ax(Axis::kChild, "b"));
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"x"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0}, {1}}));
}

TEST(AnswerTest, VariableNotInQueryIsWildcard) {
  Tree t = MustTree("a(b)");
  HclPtr c = Ax(Axis::kChild, "b");
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"w"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0}, {1}}));
}

TEST(AnswerTest, EmptyWhenUnsatisfiable) {
  Tree t = MustTree("a(b)");
  HclPtr c = HclExpr::Compose(Ax(Axis::kChild, "zzz"), HclExpr::Var("x"));
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"x"});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST(AnswerTest, BooleanQuery) {
  Tree t = MustTree("a(b)");
  Result<xpath::TupleSet> answers =
      AnswerQuery(t, *Ax(Axis::kChild, "b"), {});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{}}));
  answers = AnswerQuery(t, *Ax(Axis::kChild, "zzz"), {});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST(AnswerTest, RepeatedTupleVariable) {
  Tree t = MustTree("a(b)");
  HclPtr c = HclExpr::Compose(Ax(Axis::kChild, "b"), HclExpr::Var("x"));
  Result<xpath::TupleSet> answers = AnswerQuery(t, *c, {"x", "x"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{1, 1}}));
}

// Randomized differential test: vals() vs the naive evaluator over random
// HCL-(L) expressions with up to 3 variables on random trees.
class RandomHclGen {
 public:
  RandomHclGen(Rng& rng, std::vector<std::string> vars)
      : rng_(rng), vars_(std::move(vars)) {}

  // Generates an HCL- expression; available_vars tracks which variables
  // may still be used in this subtree (composition splits them).
  HclPtr Gen(int depth, std::vector<std::string> available) {
    if (depth <= 0 || rng_.Chance(1, 4)) {
      if (!available.empty() && rng_.Chance(1, 2)) {
        return HclExpr::Var(available[rng_.Below(available.size())]);
      }
      return HclExpr::Binary(
          MakeAxisQuery(kAllAxes[rng_.Below(kAllAxes.size())],
                        rng_.Chance(1, 3) ? "*" : GeneratorLabel(rng_.Below(2))));
    }
    switch (rng_.Below(4)) {
      case 0: {  // composition: split variables
        std::vector<std::string> left_vars, right_vars;
        for (const auto& v : available) {
          (rng_.Chance(1, 2) ? left_vars : right_vars).push_back(v);
        }
        return HclExpr::Compose(Gen(depth - 1, left_vars),
                                Gen(depth - 1, right_vars));
      }
      case 1:  // union: variables may be shared
        return HclExpr::Union(Gen(depth - 1, available),
                              Gen(depth - 1, available));
      case 2:
        return HclExpr::Filter(Gen(depth - 1, available));
      default: {  // filter/rest composition also splits
        std::vector<std::string> left_vars, right_vars;
        for (const auto& v : available) {
          (rng_.Chance(1, 2) ? left_vars : right_vars).push_back(v);
        }
        return HclExpr::Compose(
            HclExpr::Filter(Gen(depth - 1, left_vars)),
            Gen(depth - 1, right_vars));
      }
    }
  }

 private:
  Rng& rng_;
  std::vector<std::string> vars_;
};

class ValsVsNaiveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValsVsNaiveTest, RandomQueriesAgree) {
  Rng rng(GetParam());
  const std::vector<std::string> vars = {"x", "y"};
  RandomHclGen gen(rng, vars);
  for (int trial = 0; trial < 15; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(8);
    Tree t = RandomTree(rng, opts);
    HclPtr c = gen.Gen(3, vars);
    ASSERT_TRUE(CheckNoSharedComposition(*c).ok()) << c->ToString();
    Result<xpath::TupleSet> fast = AnswerQuery(t, *c, vars);
    ASSERT_TRUE(fast.ok()) << fast.status();
    xpath::TupleSet naive = EvalHclNaryNaive(t, *c, vars);
    EXPECT_EQ(*fast, naive)
        << "expr: " << c->ToString() << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValsVsNaiveTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

TEST(ValsVsNaiveTest, ThreeVariables) {
  Rng rng(999);
  const std::vector<std::string> vars = {"x", "y", "z"};
  RandomHclGen gen(rng, vars);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(6);
    Tree t = RandomTree(rng, opts);
    HclPtr c = gen.Gen(3, vars);
    Result<xpath::TupleSet> fast = AnswerQuery(t, *c, vars);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, EvalHclNaryNaive(t, *c, vars))
        << "expr: " << c->ToString() << "\ntree: " << t.ToTerm();
  }
}

}  // namespace
}  // namespace xpv::hcl
