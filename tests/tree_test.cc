// Unit tests for the unranked-tree substrate: builder, parsers, serializers,
// structural queries, generators and the fcns binary encoding.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/binary_encoding.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace xpv {
namespace {

Tree MustParse(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(TreeBuilderTest, SingleNode) {
  TreeBuilder b;
  b.Leaf("a");
  Result<Tree> t = std::move(b).Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 1u);
  EXPECT_EQ(t->label_name(0), "a");
  EXPECT_TRUE(t->IsLeaf(0));
  EXPECT_TRUE(t->IsRoot(0));
}

TEST(TreeBuilderTest, PreOrderIds) {
  // a(b(c) d)
  TreeBuilder b;
  b.Open("a");
  b.Open("b");
  b.Leaf("c");
  b.Close();
  b.Leaf("d");
  b.Close();
  Result<Tree> t = std::move(b).Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->label_name(0), "a");
  EXPECT_EQ(t->label_name(1), "b");
  EXPECT_EQ(t->label_name(2), "c");
  EXPECT_EQ(t->label_name(3), "d");
  EXPECT_EQ(t->parent(1), 0u);
  EXPECT_EQ(t->parent(2), 1u);
  EXPECT_EQ(t->parent(3), 0u);
  EXPECT_EQ(t->first_child(0), 1u);
  EXPECT_EQ(t->last_child(0), 3u);
  EXPECT_EQ(t->next_sibling(1), 3u);
  EXPECT_EQ(t->prev_sibling(3), 1u);
}

TEST(TreeBuilderTest, UnclosedNodesFail) {
  TreeBuilder b;
  b.Open("a");
  Result<Tree> t = std::move(b).Finish();
  EXPECT_FALSE(t.ok());
}

TEST(TreeBuilderTest, EmptyBuilderFails) {
  TreeBuilder b;
  Result<Tree> t = std::move(b).Finish();
  EXPECT_FALSE(t.ok());
}

TEST(TreeBuilderTest, TwoRootsFail) {
  TreeBuilder b;
  b.Leaf("a");
  b.Leaf("b");
  Result<Tree> t = std::move(b).Finish();
  EXPECT_FALSE(t.ok());
}

TEST(TermParserTest, RoundTrip) {
  for (const char* term :
       {"a", "a(b)", "a(b,c)", "a(b(c),d)", "bib(book(author,title))",
        "a(a(a(a)))", "r(a,a,a,a,a)"}) {
    Tree t = MustParse(term);
    EXPECT_EQ(t.ToTerm(), term);
  }
}

TEST(TermParserTest, WhitespaceAndSpaceSeparators) {
  Tree t1 = MustParse("a( b , c(d) )");
  Tree t2 = MustParse("a(b c(d))");
  Tree t3 = MustParse("a(b,c(d))");
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t2, t3);
}

TEST(TermParserTest, Errors) {
  EXPECT_FALSE(Tree::ParseTerm("").ok());
  EXPECT_FALSE(Tree::ParseTerm("a(").ok());
  EXPECT_FALSE(Tree::ParseTerm("a()").ok());
  EXPECT_FALSE(Tree::ParseTerm("a(b))").ok());
  EXPECT_FALSE(Tree::ParseTerm("a b").ok());
  EXPECT_FALSE(Tree::ParseTerm("1a").ok());
}

TEST(XmlParserTest, RoundTrip) {
  Tree t = MustParse("bib(book(author,title),book(author,author,title))");
  std::string xml = t.ToXml();
  Result<Tree> parsed = Tree::ParseXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, t);
}

TEST(XmlParserTest, SelfClosingAndDeclaration) {
  Result<Tree> t =
      Tree::ParseXml("<?xml version=\"1.0\"?>\n<a>\n  <b/>\n  <c><d/></c>\n</a>");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->ToTerm(), "a(b,c(d))");
}

TEST(XmlParserTest, Comments) {
  Result<Tree> t = Tree::ParseXml("<a><!-- hi --><b/></a>");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->ToTerm(), "a(b)");
}

TEST(XmlParserTest, RejectsTextAndAttributes) {
  EXPECT_FALSE(Tree::ParseXml("<a>text</a>").ok());
  EXPECT_FALSE(Tree::ParseXml("<a x=\"1\"/>").ok());
}

TEST(XmlParserTest, RejectsMalformed) {
  EXPECT_FALSE(Tree::ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(Tree::ParseXml("<a>").ok());
  EXPECT_FALSE(Tree::ParseXml("<a/><b/>").ok());
}

TEST(TreeStructureTest, ChildrenAndCounts) {
  Tree t = MustParse("a(b(c,d),e)");
  EXPECT_EQ(t.NumChildren(0), 2u);
  EXPECT_EQ(t.NumChildren(1), 2u);
  EXPECT_EQ(t.NumChildren(2), 0u);
  EXPECT_EQ(t.Children(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(t.Children(1), (std::vector<NodeId>{2, 3}));
}

TEST(TreeStructureTest, DepthAndAncestry) {
  Tree t = MustParse("a(b(c(d)),e)");
  EXPECT_EQ(t.Depth(0), 0u);
  EXPECT_EQ(t.Depth(3), 3u);
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 3));
  EXPECT_TRUE(t.IsAncestorOrSelf(3, 3));
  EXPECT_FALSE(t.IsAncestorOrSelf(3, 0));
  EXPECT_FALSE(t.IsAncestorOrSelf(4, 3));
}

TEST(TreeStructureTest, SiblingOrder) {
  Tree t = MustParse("a(b,c,d)");
  EXPECT_TRUE(t.IsFollowingSiblingOrSelf(1, 3));
  EXPECT_TRUE(t.IsFollowingSiblingOrSelf(2, 2));
  EXPECT_FALSE(t.IsFollowingSiblingOrSelf(3, 1));
}

TEST(TreeStructureTest, LeastCommonAncestor) {
  Tree t = MustParse("a(b(c,d),e(f))");
  EXPECT_EQ(t.LeastCommonAncestor(2, 3), 1u);
  EXPECT_EQ(t.LeastCommonAncestor(2, 5), 0u);
  EXPECT_EQ(t.LeastCommonAncestor(2, 2), 2u);
  EXPECT_EQ(t.LeastCommonAncestor(1, 2), 1u);
  EXPECT_EQ(t.LeastCommonAncestor({2, 3, 5}), 0u);
  EXPECT_EQ(t.LeastCommonAncestor({2, 3}), 1u);
}

TEST(TreeStructureTest, Subtree) {
  Tree t = MustParse("a(b(c,d),e)");
  Tree sub = t.Subtree(1);
  EXPECT_EQ(sub.ToTerm(), "b(c,d)");
  Tree leaf = t.Subtree(4);
  EXPECT_EQ(leaf.ToTerm(), "e");
}

TEST(TreeStructureTest, LabelInterning) {
  Tree t = MustParse("a(b,a(b))");
  EXPECT_EQ(t.alphabet_size(), 2u);
  EXPECT_EQ(t.label(0), t.label(2));
  EXPECT_NE(t.label(0), t.label(1));
  EXPECT_EQ(t.FindLabel("a"), t.label(0));
  EXPECT_EQ(t.FindLabel("zzz"), kNoLabel);
}

TEST(GeneratorTest, RandomTreeHasRequestedSize) {
  Rng rng(42);
  for (std::size_t n : {1u, 2u, 10u, 100u}) {
    RandomTreeOptions opts;
    opts.num_nodes = n;
    Tree t = RandomTree(rng, opts);
    EXPECT_EQ(t.size(), n);
  }
}

TEST(GeneratorTest, RandomTreeRespectsMaxChildren) {
  Rng rng(42);
  RandomTreeOptions opts;
  opts.num_nodes = 200;
  opts.max_children = 2;
  Tree t = RandomTree(rng, opts);
  for (NodeId v = 0; v < t.size(); ++v) EXPECT_LE(t.NumChildren(v), 2u);
}

TEST(GeneratorTest, RandomTreeIsDeterministic) {
  Rng rng1(7);
  Rng rng2(7);
  RandomTreeOptions opts;
  opts.num_nodes = 50;
  EXPECT_EQ(RandomTree(rng1, opts), RandomTree(rng2, opts));
}

TEST(GeneratorTest, GeneratorLabels) {
  EXPECT_EQ(GeneratorLabel(0), "a");
  EXPECT_EQ(GeneratorLabel(25), "z");
  EXPECT_EQ(GeneratorLabel(26), "aa");
  EXPECT_EQ(GeneratorLabel(27), "ab");
}

TEST(GeneratorTest, BibliographyShape) {
  Rng rng(1);
  Tree t = BibliographyTree(rng, 10);
  EXPECT_EQ(t.label_name(t.root()), "bib");
  std::size_t books = 0;
  for (NodeId c = t.first_child(t.root()); c != kNoNode;
       c = t.next_sibling(c)) {
    EXPECT_EQ(t.label_name(c), "book");
    ++books;
    bool has_author = false;
    bool has_title = false;
    for (NodeId g = t.first_child(c); g != kNoNode; g = t.next_sibling(g)) {
      has_author |= t.label_name(g) == "author";
      has_title |= t.label_name(g) == "title";
    }
    EXPECT_TRUE(has_author);
    EXPECT_TRUE(has_title);
  }
  EXPECT_EQ(books, 10u);
}

TEST(GeneratorTest, RestaurantShape) {
  Rng rng(1);
  Tree t = RestaurantTree(rng, 5, 10);
  EXPECT_EQ(t.label_name(t.root()), "guide");
  EXPECT_EQ(t.NumChildren(t.root()), 5u);
}

TEST(GeneratorTest, PathAndStarShapes) {
  Tree path = PathTree(10);
  EXPECT_EQ(path.size(), 10u);
  for (NodeId v = 0; v + 1 < 10; ++v) EXPECT_EQ(path.NumChildren(v), 1u);
  Tree star = StarTree(9);
  EXPECT_EQ(star.size(), 10u);
  EXPECT_EQ(star.NumChildren(star.root()), 9u);
}

TEST(GeneratorTest, PerfectBinaryTreeSize) {
  EXPECT_EQ(PerfectBinaryTree(0).size(), 1u);
  EXPECT_EQ(PerfectBinaryTree(3).size(), 15u);
}

TEST(FcnsTest, EncodeDecodeRoundTripHandcrafted) {
  for (const char* term : {"a", "a(b)", "a(b,c,d)", "a(b(c),d(e,f))",
                           "bib(book(author,title),book(author))"}) {
    Tree t = MustParse(term);
    BinaryTree b = EncodeFcns(t, nullptr);
    EXPECT_EQ(b.size(), t.size());
    Result<Tree> back = DecodeFcns(b);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, t) << term;
  }
}

TEST(FcnsTest, EncodeDecodeRoundTripRandom) {
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(60);
    Tree t = RandomTree(rng, opts);
    Result<Tree> back = DecodeFcns(EncodeFcns(t, nullptr));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
}

TEST(FcnsTest, MappingPreservesLabels) {
  Tree t = MustParse("a(b(c),d)");
  std::vector<NodeId> mapping;
  BinaryTree b = EncodeFcns(t, &mapping);
  ASSERT_EQ(mapping.size(), t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(b.label(mapping[v]), t.label_name(v));
  }
}

TEST(FcnsTest, StructureOfEncoding) {
  Tree t = MustParse("a(b,c)");
  std::vector<NodeId> mapping;
  BinaryTree b = EncodeFcns(t, &mapping);
  // Binary: child1(enc(a)) = enc(b); child2(enc(b)) = enc(c).
  EXPECT_EQ(b.child1(mapping[0]), mapping[1]);
  EXPECT_EQ(b.child2(mapping[1]), mapping[2]);
  EXPECT_EQ(b.child2(mapping[0]), kNoNode);
  EXPECT_EQ(b.root(), mapping[0]);
}

TEST(BinaryTreeTest, AncestryAndLca) {
  Tree t = MustParse("a(b(c),d)");
  std::vector<NodeId> mapping;
  BinaryTree b = EncodeFcns(t, &mapping);
  EXPECT_TRUE(b.IsAncestorOrSelf(b.root(), mapping[2]));
  // In the fcns encoding, the sibling d hangs below b.
  EXPECT_TRUE(b.IsAncestorOrSelf(mapping[1], mapping[3]));
  EXPECT_EQ(b.LeastCommonAncestor(mapping[2], mapping[3]), mapping[1]);
}

TEST(BinaryTreeTest, SubtreeCopy) {
  Tree t = MustParse("a(b(c),d)");
  std::vector<NodeId> mapping;
  BinaryTree b = EncodeFcns(t, &mapping);
  BinaryTree sub = b.Subtree(mapping[1]);
  EXPECT_EQ(sub.size(), 3u);  // b, c, d (d is b's child2 in the encoding)
}

// ----------------------------------------- pathologically deep documents
//
// Regression tests for the iterative parsers/serializers: a recursive
// implementation overflows the call stack near depth ~10^4-10^5, so a
// 100k-deep chain must round-trip without crashing.

constexpr std::size_t kDeep = 100000;

TEST(DeepTreeTest, ParseTermAtDepth100k) {
  std::string term;
  term.reserve(kDeep * 3);
  for (std::size_t i = 0; i < kDeep - 1; ++i) term += "a(";
  term += 'a';
  term.append(kDeep - 1, ')');

  Result<Tree> t = Tree::ParseTerm(term);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->size(), kDeep);
  const NodeId deepest = static_cast<NodeId>(kDeep - 1);
  EXPECT_EQ(t->Depth(deepest), kDeep - 1);
  EXPECT_TRUE(t->IsAncestorOrSelf(t->root(), deepest));
  EXPECT_EQ(t->LeastCommonAncestor(deepest, static_cast<NodeId>(1)), 1u);

  // Serialization back out must be iterative too.
  EXPECT_EQ(t->ToTerm(), term);
}

TEST(DeepTreeTest, ParseXmlAtDepth100k) {
  std::string xml;
  xml.reserve(kDeep * 8);
  for (std::size_t i = 0; i < kDeep - 1; ++i) xml += "<a>";
  xml += "<a/>";
  for (std::size_t i = 0; i < kDeep - 1; ++i) xml += "</a>";

  Result<Tree> t = Tree::ParseXml(xml);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->size(), kDeep);
  EXPECT_EQ(t->Depth(static_cast<NodeId>(kDeep - 1)), kDeep - 1);
  EXPECT_EQ(t->ToXml(), xml);
}

TEST(DeepTreeTest, DeepSubtreeCopy) {
  Tree t = PathTree(kDeep);
  Tree sub = t.Subtree(1);
  EXPECT_EQ(sub.size(), kDeep - 1);
  EXPECT_EQ(sub.Depth(static_cast<NodeId>(sub.size() - 1)), kDeep - 2);
}

}  // namespace
}  // namespace xpv
