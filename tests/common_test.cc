// Unit tests for the common substrate: Status/Result, BitVector, BitMatrix.
#include <gtest/gtest.h>

#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace xpv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FragmentViolationCode) {
  Status s = Status::FragmentViolation("NVS(/)");
  EXPECT_EQ(s.code(), StatusCode::kFragmentViolation);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(13), 13u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.Between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(BitVectorTest, SetGetReset) {
  BitVector v(130);
  EXPECT_FALSE(v.Get(0));
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_FALSE(v.Get(1));
  v.Reset(64);
  EXPECT_FALSE(v.Get(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, FillRespectsSize) {
  BitVector v(70);
  v.Fill();
  EXPECT_EQ(v.Count(), 70u);
  v.Complement();
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.None());
}

TEST(BitVectorTest, SetRangeMatchesBitwiseLoop) {
  // Word-boundary edge cases: empty range, within one word, across words,
  // end exactly on a word boundary, full vector.
  const std::size_t n = 200;
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 0},   {5, 5},    {3, 17},   {60, 70},  {0, 64},
      {64, 128}, {63, 65}, {100, 200}, {0, 200},
  };
  for (auto [begin, end] : ranges) {
    BitVector fast(n);
    fast.SetRange(begin, end);
    BitVector slow(n);
    for (std::size_t i = begin; i < end; ++i) slow.Set(i);
    EXPECT_EQ(fast, slow) << "[" << begin << ", " << end << ")";
  }
  // Ranges accumulate (OR semantics).
  BitVector v(n);
  v.SetRange(0, 10);
  v.SetRange(5, 15);
  EXPECT_EQ(v.Count(), 15u);
}

TEST(BitMatrixTest, SetRowRangeMatchesBitwiseLoop) {
  const std::size_t n = 130;
  BitMatrix fast(n);
  BitMatrix slow(n);
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 0}, {3, 17}, {60, 70}, {63, 65}, {0, 128}, {5, 130},
  };
  std::size_t row = 0;
  for (auto [begin, end] : ranges) {
    fast.SetRowRange(row, begin, end);
    for (std::size_t c = begin; c < end; ++c) slow.Set(row, c);
    ++row;
  }
  EXPECT_EQ(fast, slow);
}

TEST(BitVectorTest, ComplementIsInvolutive) {
  Rng rng(5);
  BitVector v(100);
  for (int i = 0; i < 30; ++i) v.Set(rng.Below(100));
  BitVector w = v;
  w.Complement();
  w.Complement();
  EXPECT_EQ(v, w);
}

TEST(BitVectorTest, FirstAndNextSet) {
  BitVector v(200);
  EXPECT_EQ(v.FirstSet(), 200u);
  v.Set(5);
  v.Set(63);
  v.Set(64);
  v.Set(199);
  EXPECT_EQ(v.FirstSet(), 5u);
  EXPECT_EQ(v.NextSet(6), 63u);
  EXPECT_EQ(v.NextSet(64), 64u);
  EXPECT_EQ(v.NextSet(65), 199u);
  EXPECT_EQ(v.NextSet(200), 200u);
}

TEST(BitVectorTest, ForEachSetVisitsInOrder) {
  BitVector v(150);
  std::vector<std::size_t> expected = {0, 1, 63, 64, 65, 127, 128, 149};
  for (auto i : expected) v.Set(i);
  std::vector<std::size_t> seen;
  v.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitMatrixTest, IdentityAndFull) {
  BitMatrix id = BitMatrix::Identity(67);
  EXPECT_EQ(id.Count(), 67u);
  for (std::size_t i = 0; i < 67; ++i) EXPECT_TRUE(id.Get(i, i));
  BitMatrix full = BitMatrix::Full(67);
  EXPECT_EQ(full.Count(), 67u * 67u);
}

TEST(BitMatrixTest, ComplementRespectsPadding) {
  BitMatrix m(67);
  BitMatrix c = m.Complement();
  EXPECT_EQ(c.Count(), 67u * 67u);
  EXPECT_EQ(c.Complement().Count(), 0u);
}

TEST(BitMatrixTest, MultiplyMatchesNaiveOnRandom) {
  Rng rng(99);
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 100u}) {
    BitMatrix a(n);
    BitMatrix b(n);
    for (std::size_t k = 0; k < n * n / 3 + 1; ++k) {
      a.Set(rng.Below(n), rng.Below(n));
      b.Set(rng.Below(n), rng.Below(n));
    }
    EXPECT_EQ(a.Multiply(b), a.MultiplyNaive(b)) << "n=" << n;
  }
}

TEST(BitMatrixTest, MultiplyIdentityIsNeutral) {
  Rng rng(3);
  BitMatrix a(80);
  for (int k = 0; k < 500; ++k) a.Set(rng.Below(80), rng.Below(80));
  BitMatrix id = BitMatrix::Identity(80);
  EXPECT_EQ(a.Multiply(id), a);
  EXPECT_EQ(id.Multiply(a), a);
}

TEST(BitMatrixTest, FilterDiagonalSelectsNonEmptyRows) {
  BitMatrix m(10);
  m.Set(2, 7);
  m.Set(2, 8);
  m.Set(5, 0);
  BitMatrix d = m.FilterDiagonal();
  EXPECT_EQ(d.Count(), 2u);
  EXPECT_TRUE(d.Get(2, 2));
  EXPECT_TRUE(d.Get(5, 5));
  EXPECT_FALSE(d.Get(7, 7));
}

TEST(BitMatrixTest, TransposeIsInvolutive) {
  Rng rng(17);
  BitMatrix a(70);
  for (int k = 0; k < 300; ++k) a.Set(rng.Below(70), rng.Below(70));
  EXPECT_EQ(a.Transpose().Transpose(), a);
}

TEST(BitMatrixTest, TransposeSwapsCoordinates) {
  BitMatrix a(5);
  a.Set(1, 4);
  BitMatrix t = a.Transpose();
  EXPECT_TRUE(t.Get(4, 1));
  EXPECT_FALSE(t.Get(1, 4));
}

TEST(BitMatrixTest, MaskColumns) {
  BitMatrix a = BitMatrix::Full(6);
  BitVector cols(6);
  cols.Set(2);
  cols.Set(3);
  BitMatrix m = a.MaskColumns(cols);
  EXPECT_EQ(m.Count(), 12u);
  EXPECT_TRUE(m.Get(0, 2));
  EXPECT_FALSE(m.Get(0, 1));
}

TEST(BitMatrixTest, ImageOf) {
  BitMatrix a(6);
  a.Set(0, 1);
  a.Set(0, 2);
  a.Set(3, 4);
  BitVector from(6);
  from.Set(0);
  BitVector img = a.ImageOf(from);
  EXPECT_EQ(img.Count(), 2u);
  EXPECT_TRUE(img.Get(1));
  EXPECT_TRUE(img.Get(2));
  from.Set(3);
  img = a.ImageOf(from);
  EXPECT_EQ(img.Count(), 3u);
}

TEST(BitMatrixTest, NonEmptyRowsAndColumnUnion) {
  BitMatrix a(6);
  a.Set(1, 3);
  a.Set(4, 3);
  a.Set(4, 5);
  BitVector rows = a.NonEmptyRows();
  EXPECT_EQ(rows.ToIndices(), (std::vector<std::uint32_t>{1, 4}));
  BitVector cols = a.ColumnUnion();
  EXPECT_EQ(cols.ToIndices(), (std::vector<std::uint32_t>{3, 5}));
}

// De Morgan / Boolean-algebra laws used implicitly by the Fig. 4
// translation (intersect/except elimination).
TEST(BitMatrixTest, DeMorganLaws) {
  Rng rng(11);
  BitMatrix a(40);
  BitMatrix b(40);
  for (int k = 0; k < 200; ++k) {
    a.Set(rng.Below(40), rng.Below(40));
    b.Set(rng.Below(40), rng.Below(40));
  }
  // a AND b == NOT(NOT a OR NOT b)
  EXPECT_EQ(a.And(b), a.Complement().Or(b.Complement()).Complement());
  // a AND-NOT b == NOT(NOT a OR b)
  EXPECT_EQ(a.AndNot(b), a.Complement().Or(b).Complement());
}

TEST(BitMatrixTest, SelectRows) {
  BitMatrix a = BitMatrix::Full(5);
  BitVector rows(5);
  rows.Set(2);
  BitMatrix s = a.SelectRows(rows);
  EXPECT_EQ(s.Count(), 5u);
  EXPECT_TRUE(s.Get(2, 0));
  EXPECT_FALSE(s.Get(1, 0));
}

}  // namespace
}  // namespace xpv
