// Tests for the Core XPath 2.0 parser and pretty-printer (Fig. 1 grammar).
#include <gtest/gtest.h>

#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xpv::xpath {
namespace {

PathPtr MustParsePath(std::string_view text) {
  Result<PathPtr> p = ParsePath(text);
  EXPECT_TRUE(p.ok()) << "input: " << text << " -- " << p.status();
  return p.ok() ? std::move(p).value() : nullptr;
}

TEST(ParserTest, Steps) {
  PathPtr p = MustParsePath("child::book");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, PathKind::kStep);
  EXPECT_EQ(p->axis, Axis::kChild);
  EXPECT_EQ(p->name_test, "book");

  p = MustParsePath("descendant::*");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->axis, Axis::kDescendant);
  EXPECT_TRUE(p->name_test.empty());
}

TEST(ParserTest, AllAxes) {
  for (Axis axis : kAllAxes) {
    std::string text = std::string(AxisName(axis)) + "::x";
    PathPtr p = MustParsePath(text);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->axis, axis);
  }
}

TEST(ParserTest, DotAndVar) {
  EXPECT_EQ(MustParsePath(".")->kind, PathKind::kDot);
  PathPtr v = MustParsePath("$x");
  EXPECT_EQ(v->kind, PathKind::kVar);
  EXPECT_EQ(v->var, "x");
}

TEST(ParserTest, ComposeIsLeftAssociative) {
  PathPtr p = MustParsePath("child::a/child::b/child::c");
  ASSERT_EQ(p->kind, PathKind::kCompose);
  EXPECT_EQ(p->left->kind, PathKind::kCompose);
  EXPECT_EQ(p->right->kind, PathKind::kStep);
  EXPECT_EQ(p->right->name_test, "c");
}

TEST(ParserTest, PrecedenceUnionVsCompose) {
  // '/' binds tighter than 'union'.
  PathPtr p = MustParsePath("child::a/child::b union child::c");
  ASSERT_EQ(p->kind, PathKind::kUnion);
  EXPECT_EQ(p->left->kind, PathKind::kCompose);
  EXPECT_EQ(p->right->kind, PathKind::kStep);
}

TEST(ParserTest, PrecedenceIntersectVsUnion) {
  // 'intersect' binds tighter than 'union'.
  PathPtr p = MustParsePath("child::a union child::b intersect child::c");
  ASSERT_EQ(p->kind, PathKind::kUnion);
  EXPECT_EQ(p->right->kind, PathKind::kIntersect);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  PathPtr p = MustParsePath("(child::a union child::b)/child::c");
  ASSERT_EQ(p->kind, PathKind::kCompose);
  EXPECT_EQ(p->left->kind, PathKind::kUnion);
}

TEST(ParserTest, Filters) {
  PathPtr p = MustParsePath("child::book[child::author]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  EXPECT_EQ(p->left->name_test, "book");
  EXPECT_EQ(p->test->kind, TestKind::kPath);
}

TEST(ParserTest, StackedFilters) {
  PathPtr p = MustParsePath("child::a[child::b][child::c]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  EXPECT_EQ(p->left->kind, PathKind::kFilter);
}

TEST(ParserTest, CompTests) {
  PathPtr p = MustParsePath("child::a[. is $x]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  ASSERT_EQ(p->test->kind, TestKind::kIs);
  EXPECT_TRUE(p->test->lhs.is_dot);
  EXPECT_EQ(p->test->rhs.var, "x");

  p = MustParsePath("child::a[$x is $y]");
  ASSERT_EQ(p->test->kind, TestKind::kIs);
  EXPECT_EQ(p->test->lhs.var, "x");
  EXPECT_EQ(p->test->rhs.var, "y");

  p = MustParsePath("child::a[. is .]");
  ASSERT_EQ(p->test->kind, TestKind::kIs);
}

TEST(ParserTest, TestBooleans) {
  PathPtr p = MustParsePath(
      "child::a[child::b and child::c or not child::d]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  // 'and' binds tighter than 'or'.
  ASSERT_EQ(p->test->kind, TestKind::kOr);
  EXPECT_EQ(p->test->a->kind, TestKind::kAnd);
  EXPECT_EQ(p->test->b->kind, TestKind::kNot);
}

TEST(ParserTest, NotWithParens) {
  PathPtr p = MustParsePath("child::a[not (child::b or child::c)]");
  ASSERT_EQ(p->test->kind, TestKind::kNot);
  EXPECT_EQ(p->test->a->kind, TestKind::kOr);
}

TEST(ParserTest, ParenthesizedPathInsideTestContinues) {
  // The parenthesized expression is a path continued by '/'.
  PathPtr p = MustParsePath(
      "child::a[(child::b union child::c)/child::d]");
  ASSERT_EQ(p->test->kind, TestKind::kPath);
  EXPECT_EQ(p->test->path->kind, PathKind::kCompose);
  EXPECT_EQ(p->test->path->left->kind, PathKind::kUnion);
}

TEST(ParserTest, ForLoops) {
  PathPtr p = MustParsePath(
      "for $x in child::a return child::b[. is $x]");
  ASSERT_EQ(p->kind, PathKind::kFor);
  EXPECT_EQ(p->var, "x");
  EXPECT_EQ(p->left->kind, PathKind::kStep);
  EXPECT_EQ(p->right->kind, PathKind::kFilter);
}

TEST(ParserTest, NestedForBodiesExtendRight) {
  PathPtr p = MustParsePath(
      "for $x in child::a return for $y in child::b return $x");
  ASSERT_EQ(p->kind, PathKind::kFor);
  EXPECT_EQ(p->right->kind, PathKind::kFor);
}

TEST(ParserTest, PaperIntroductionExample) {
  PathPtr p = MustParsePath(
      "descendant::book[child::author[. is $y] and child::title[. is $z]]");
  ASSERT_TRUE(p);
  ASSERT_EQ(p->kind, PathKind::kFilter);
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"y", "z"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("child::").ok());
  EXPECT_FALSE(ParsePath("child:a").ok());
  EXPECT_FALSE(ParsePath("frobnicate::a").ok());
  EXPECT_FALSE(ParsePath("child::a/").ok());
  EXPECT_FALSE(ParsePath("child::a[").ok());
  EXPECT_FALSE(ParsePath("child::a]").ok());
  EXPECT_FALSE(ParsePath("(child::a").ok());
  EXPECT_FALSE(ParsePath("child::a child::b").ok());
  EXPECT_FALSE(ParsePath("$").ok());
  EXPECT_FALSE(ParsePath("for $x child::a").ok());
  EXPECT_FALSE(ParsePath("for $x in child::a").ok());
  EXPECT_FALSE(ParsePath("child::union").ok());
  EXPECT_FALSE(ParsePath("union::a").ok());
}

TEST(ParserTest, ReservedKeywordsRejectedAsNames) {
  for (const char* kw : {"union", "intersect", "except", "for", "in",
                         "return", "not", "and", "or", "is"}) {
    EXPECT_FALSE(ParsePath("child::" + std::string(kw)).ok()) << kw;
  }
}

// Print-parse round trip: parse, print, re-parse, compare ASTs.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParseIdentity) {
  PathPtr p1 = MustParsePath(GetParam());
  ASSERT_TRUE(p1);
  std::string printed = p1->ToString();
  PathPtr p2 = MustParsePath(printed);
  ASSERT_TRUE(p2) << "re-parse of: " << printed;
  EXPECT_TRUE(p1->Equals(*p2)) << "printed: " << printed;
  // Printing is a fixpoint.
  EXPECT_EQ(p2->ToString(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "child::a", "descendant::*", ".", "$x", "child::a/child::b",
        "child::a union child::b", "child::a intersect child::b",
        "child::a except child::b", "child::a[child::b]",
        "child::a[. is $x]", "child::a[$x is $y]", "child::a[. is .]",
        "child::a[not child::b]", "child::a[child::b and child::c]",
        "child::a[child::b or child::c]",
        "child::a[(child::b or child::c) and child::d]",
        "(child::a union child::b)/child::c",
        "child::a/(child::b union child::c)",
        "child::a except (child::b union child::c)",
        "(child::a union child::b) intersect child::c",
        "for $x in child::a return $x/child::b",
        "for $x in child::a return for $y in child::b return "
        "child::c[$x is $y]",
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        "(ancestor::* union .)/(descendant::* union .)",
        ".[. is $x and not parent::*]/descendant::a",
        "child::a[not not child::b]",
        "child::a[not (child::b and child::c)]",
        "$x/(following_sibling::* union .)/.[. is $y]"));

TEST(PrinterTest, PreservesRightAssociativeCompose) {
  PathPtr inner = PathExpr::Compose(PathExpr::Step(Axis::kChild, "b"),
                                    PathExpr::Step(Axis::kChild, "c"));
  PathPtr p = PathExpr::Compose(PathExpr::Step(Axis::kChild, "a"),
                                std::move(inner));
  EXPECT_EQ(p->ToString(), "child::a/(child::b/child::c)");
  PathPtr reparsed = MustParsePath(p->ToString());
  EXPECT_TRUE(reparsed->Equals(*p));
}

TEST(FreeVarsTest, ForBindsItsVariable) {
  PathPtr p = MustParsePath("for $x in $y return $x/child::a[. is $z]");
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"y", "z"}));
}

TEST(FreeVarsTest, ForDoesNotBindInSequence) {
  PathPtr p = MustParsePath("for $x in $x return child::a");
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"x"}));
}

TEST(FreeVarsTest, TestVariablesCount) {
  PathPtr p = MustParsePath("child::a[$x is $y]");
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"x", "y"}));
}

TEST(SizeTest, CountsAstNodes) {
  EXPECT_EQ(MustParsePath("child::a")->Size(), 1u);
  EXPECT_EQ(MustParsePath("child::a/child::b")->Size(), 3u);
  // filter + path + test(kPath) + inner step = 4
  EXPECT_EQ(MustParsePath("child::a[child::b]")->Size(), 4u);
}

TEST(CloneTest, DeepCopyIsEqualAndIndependent) {
  PathPtr p = MustParsePath(
      "for $x in child::a return child::b[. is $x and not child::c]");
  PathPtr q = p->Clone();
  EXPECT_TRUE(p->Equals(*q));
  q->var = "zzz";
  EXPECT_FALSE(p->Equals(*q));
}

TEST(MakeNodesExprTest, MatchesPaperDefinition) {
  EXPECT_EQ(MakeNodesExpr()->ToString(),
            "(ancestor::* union .)/(descendant::* union .)");
}

TEST(AnchorAtRootTest, MatchesPaperDefinition) {
  PathPtr p = AnchorAtRoot("x", MustParsePath("descendant::a"));
  EXPECT_EQ(p->ToString(), ".[. is $x and not parent::*]/descendant::a");
}

}  // namespace
}  // namespace xpv::xpath
