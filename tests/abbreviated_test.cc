// Tests for the abbreviated XPath surface syntax: every abbreviation
// desugars into the core Fig. 1 grammar and agrees with its explicit
// spelling both structurally and semantically.
#include <gtest/gtest.h>

#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xpv::xpath {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

PathPtr MustAbbrev(std::string_view text) {
  Result<PathPtr> p = ParseAbbreviatedPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

PathPtr MustCore(std::string_view text) {
  Result<PathPtr> p = ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

void ExpectDesugarsTo(std::string_view abbreviated, std::string_view core) {
  PathPtr a = MustAbbrev(abbreviated);
  PathPtr c = MustCore(core);
  EXPECT_TRUE(a->Equals(*c))
      << abbreviated << " desugared to " << a->ToString() << ", expected "
      << c->ToString();
}

TEST(AbbreviatedTest, BareNamesAreChildSteps) {
  ExpectDesugarsTo("book", "child::book");
  ExpectDesugarsTo("book/author", "child::book/child::author");
  ExpectDesugarsTo("*", "child::*");
  ExpectDesugarsTo("book/*", "child::book/child::*");
}

TEST(AbbreviatedTest, DotDotIsParent) {
  ExpectDesugarsTo("..", "parent::*");
  ExpectDesugarsTo("a/..", "child::a/parent::*");
}

TEST(AbbreviatedTest, DoubleSlashInsertsDescendantOrSelf) {
  ExpectDesugarsTo("a//b",
                   "child::a/(descendant::* union .)/child::b");
  ExpectDesugarsTo("a//b//c",
                   "child::a/(descendant::* union .)/child::b/"
                   "(descendant::* union .)/child::c");
}

TEST(AbbreviatedTest, LeadingSlashAnchorsAtRoot) {
  ExpectDesugarsTo("/a", ".[not parent::*]/child::a");
  ExpectDesugarsTo("/", ".[not parent::*]");
  ExpectDesugarsTo("//a",
                   ".[not parent::*]/(descendant::* union .)/child::a");
}

TEST(AbbreviatedTest, ExplicitAxesStillWork) {
  ExpectDesugarsTo("descendant::a[following_sibling::b]",
                   "descendant::a[following_sibling::b]");
  ExpectDesugarsTo("a[descendant::b]", "child::a[descendant::b]");
}

TEST(AbbreviatedTest, VariablesAndFiltersCompose) {
  ExpectDesugarsTo("book[author[. is $y]]",
                   "child::book[child::author[. is $y]]");
  ExpectDesugarsTo("$x//b", "$x/(descendant::* union .)/child::b");
}

TEST(AbbreviatedTest, UnionAndFor) {
  ExpectDesugarsTo("a union b", "child::a union child::b");
  ExpectDesugarsTo("for $x in a return $x/b",
                   "for $x in child::a return $x/child::b");
}

TEST(AbbreviatedTest, CoreParserRejectsAbbreviations) {
  EXPECT_FALSE(ParsePath("book").ok());
  EXPECT_FALSE(ParsePath("a//b").ok());
  EXPECT_FALSE(ParsePath("/a").ok());
  EXPECT_FALSE(ParsePath("..").ok());
  EXPECT_FALSE(ParsePath("*").ok());
}

TEST(AbbreviatedTest, Errors) {
  EXPECT_FALSE(ParseAbbreviatedPath("a//").ok());
  EXPECT_FALSE(ParseAbbreviatedPath("//").ok());
  EXPECT_FALSE(ParseAbbreviatedPath("a/").ok());
  EXPECT_FALSE(ParseAbbreviatedPath("child::").ok());
}

// Semantics: // reaches descendants at any depth; / anchors at the root
// regardless of start node.
TEST(AbbreviatedTest, SemanticsOnHandcraftedTree) {
  Tree t = MustTree("a(b(c(b)),b)");
  DirectEvaluator eval(t);
  BitMatrix m = eval.EvalPath(*MustAbbrev("//b"), {});
  // The root anchor is a PARTIAL IDENTITY: pairs exist only when the
  // start node IS the root (absolute paths navigate from the root), and
  // they reach every b at any depth.
  EXPECT_TRUE(m.Get(0, 1));
  EXPECT_TRUE(m.Get(0, 3));
  EXPECT_TRUE(m.Get(0, 4));
  EXPECT_FALSE(m.Get(0, 0));
  EXPECT_FALSE(m.Get(0, 2));
  for (NodeId v = 1; v < t.size(); ++v) {
    for (NodeId w = 0; w < t.size(); ++w) {
      EXPECT_FALSE(m.Get(v, w)) << v << "," << w;
    }
  }
  // Relative a//... does navigate from anywhere: c//b from node 2.
  BitMatrix rel = eval.EvalPath(*MustAbbrev("c//b"), {});
  EXPECT_TRUE(rel.Get(1, 3));   // b(c(b)): from b, child c, descendant b
  EXPECT_FALSE(rel.Get(0, 3));  // root's c-children: none
}

TEST(AbbreviatedTest, PaperIntroInAbbreviatedForm) {
  Tree t = MustTree("bib(book(author,title),book(author,author,title))");
  PathPtr abbreviated = MustAbbrev(
      "//book[author[. is $y] and title[. is $z]]");
  PathPtr core = MustCore(
      ".[not parent::*]/(descendant::* union .)/"
      "child::book[child::author[. is $y] and child::title[. is $z]]");
  ASSERT_TRUE(abbreviated->Equals(*core));
  DirectEvaluator eval(t);
  TupleSet answers = eval.EvalNaryNaive(*abbreviated, {"y", "z"});
  EXPECT_EQ(answers, (TupleSet{{2, 3}, {5, 7}, {6, 7}}));
}

}  // namespace
}  // namespace xpv::xpath
