// Tests for the FO substrate (Section 2): formulas, Tarskian model
// checking, the L.M translation to Core XPath 2.0 (Lemma 1), and the
// quantifier-free case (Lemma 2).
#include <gtest/gtest.h>

#include "fo/formula.h"
#include "fo/model_check.h"
#include "fo/to_xpath.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"

namespace xpv::fo {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(FormulaTest, PrintingAndSize) {
  FormulaPtr f = Formula::And(Formula::ChStar("x", "y"),
                              Formula::Not(Formula::Label("y", "a")));
  EXPECT_EQ(f->ToString(), "ch*(x,y) & ~lab_a(y)");
  EXPECT_EQ(f->Size(), 4u);
  EXPECT_TRUE(f->IsQuantifierFree());
  EXPECT_EQ(f->QuantifierRank(), 0u);
}

TEST(FormulaTest, QuantifierRank) {
  FormulaPtr f = Formula::Exists(
      "x", Formula::And(Formula::Label("x", "a"),
                        Formula::Exists("y", Formula::ChStar("x", "y"))));
  EXPECT_EQ(f->QuantifierRank(), 2u);
  EXPECT_FALSE(f->IsQuantifierFree());
}

TEST(FormulaTest, FreeVarsRespectBinding) {
  FormulaPtr f = Formula::Exists("x", Formula::ChStar("x", "y"));
  EXPECT_EQ(FreeVars(*f), (std::set<std::string>{"y"}));
  f = Formula::And(Formula::Label("x", "a"),
                   Formula::Exists("x", Formula::Label("x", "b")));
  EXPECT_EQ(FreeVars(*f), (std::set<std::string>{"x"}));
}

TEST(FormulaTest, CloneEquals) {
  FormulaPtr f = Formula::Or(Formula::Eq("x", "y"),
                             Formula::NsStar("x", "y"));
  FormulaPtr g = f->Clone();
  EXPECT_TRUE(f->Equals(*g));
  g->a->x = "zzz";
  EXPECT_FALSE(f->Equals(*g));
}

TEST(ModelCheckTest, Atoms) {
  // a(b(c),d): ids a=0 b=1 c=2 d=3.
  Tree t = MustTree("a(b(c),d)");
  EXPECT_TRUE(Models(t, *Formula::ChStar("x", "y"), {{"x", 0}, {"y", 2}}));
  EXPECT_TRUE(Models(t, *Formula::ChStar("x", "y"), {{"x", 1}, {"y", 1}}));
  EXPECT_FALSE(Models(t, *Formula::ChStar("x", "y"), {{"x", 2}, {"y", 0}}));
  EXPECT_TRUE(Models(t, *Formula::NsStar("x", "y"), {{"x", 1}, {"y", 3}}));
  EXPECT_FALSE(Models(t, *Formula::NsStar("x", "y"), {{"x", 3}, {"y", 1}}));
  EXPECT_TRUE(Models(t, *Formula::Label("x", "b"), {{"x", 1}}));
  EXPECT_FALSE(Models(t, *Formula::Label("x", "b"), {{"x", 0}}));
}

TEST(ModelCheckTest, Connectives) {
  Tree t = MustTree("a(b)");
  FormulaPtr f = Formula::And(Formula::Label("x", "a"),
                              Formula::Not(Formula::Label("x", "b")));
  EXPECT_TRUE(Models(t, *f, {{"x", 0}}));
  EXPECT_FALSE(Models(t, *f, {{"x", 1}}));
}

TEST(ModelCheckTest, Quantification) {
  Tree t = MustTree("a(b,c)");
  // Exists a b-labeled node.
  FormulaPtr f = Formula::Exists("x", Formula::Label("x", "b"));
  EXPECT_TRUE(Models(t, *f, {}));
  f = Formula::Exists("x", Formula::Label("x", "zzz"));
  EXPECT_FALSE(Models(t, *f, {}));
}

TEST(ModelCheckTest, DerivedEqAndChild) {
  Tree t = MustTree("a(b(c),d)");
  EXPECT_TRUE(Models(t, *Formula::Eq("x", "y"), {{"x", 2}, {"y", 2}}));
  EXPECT_FALSE(Models(t, *Formula::Eq("x", "y"), {{"x", 2}, {"y", 1}}));
  EXPECT_TRUE(Models(t, *Formula::Child("x", "y"), {{"x", 0}, {"y", 1}}));
  EXPECT_FALSE(Models(t, *Formula::Child("x", "y"), {{"x", 0}, {"y", 2}}));
  EXPECT_FALSE(Models(t, *Formula::Child("x", "y"), {{"x", 0}, {"y", 0}}));
}

TEST(EvalFoNaryTest, SelectsTuples) {
  Tree t = MustTree("a(b,b)");
  // All pairs (x,y) with x ancestor-or-self of y and y labeled b.
  FormulaPtr f = Formula::And(Formula::ChStar("x", "y"),
                              Formula::Label("y", "b"));
  xpath::TupleSet expected = {{0, 1}, {0, 2}, {1, 1}, {2, 2}};
  EXPECT_EQ(EvalFoNary(t, *f, {"x", "y"}), expected);
}

// Lemma 1: t, alpha |= phi iff [[LphiM]]^{t,alpha} != {}.
class Lemma1Test : public ::testing::TestWithParam<std::uint64_t> {};

FormulaPtr RandomFormula(Rng& rng, const std::vector<std::string>& vars,
                         int depth) {
  auto var = [&] { return vars[rng.Below(vars.size())]; };
  if (depth <= 0 || rng.Chance(1, 3)) {
    switch (rng.Below(3)) {
      case 0:
        return Formula::ChStar(var(), var());
      case 1:
        return Formula::NsStar(var(), var());
      default:
        return Formula::Label(var(), GeneratorLabel(rng.Below(2)));
    }
  }
  switch (rng.Below(3)) {
    case 0:
      return Formula::Not(RandomFormula(rng, vars, depth - 1));
    case 1:
      return Formula::And(RandomFormula(rng, vars, depth - 1),
                          RandomFormula(rng, vars, depth - 1));
    default: {
      // Quantify over one of the variables.
      std::string x = var();
      return Formula::Exists(x, RandomFormula(rng, vars, depth - 1));
    }
  }
}

TEST_P(Lemma1Test, TranslationPreservesSatisfaction) {
  Rng rng(GetParam());
  const std::vector<std::string> vars = {"x", "y"};
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(6);
    Tree t = RandomTree(rng, opts);
    FormulaPtr f = RandomFormula(rng, vars, 3);
    xpath::PathPtr p = ToCoreXPath(*f);
    ASSERT_TRUE(p);
    xpath::DirectEvaluator eval(t);

    // Check the Lemma 1 equivalence for every assignment of the free vars.
    std::set<std::string> free = FreeVars(*f);
    std::vector<std::string> fv(free.begin(), free.end());
    std::vector<NodeId> counters(fv.size(), 0);
    while (true) {
      xpath::Assignment alpha;
      for (std::size_t i = 0; i < fv.size(); ++i) alpha[fv[i]] = counters[i];
      // The XPath side may mention MORE free variables than phi (never
      // fewer); bind any extras arbitrarily -- they cannot affect
      // emptiness... they do! Bind exactly the XPath side's variables.
      xpath::Assignment beta = alpha;
      for (const auto& v : xpath::FreeVars(*p)) {
        if (!beta.contains(v)) beta[v] = 0;
      }
      EXPECT_EQ(Models(t, *f, alpha), !eval.EvalPath(*p, beta).None())
          << "phi: " << f->ToString() << "\npath: " << p->ToString()
          << "\ntree: " << t.ToTerm();
      std::size_t i = 0;
      for (; i < counters.size(); ++i) {
        if (++counters[i] < t.size()) break;
        counters[i] = 0;
      }
      if (i == counters.size() || fv.empty()) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// Lemma 1 corollary: the translation preserves n-ary queries.
TEST(Lemma1Test, PreservesNaryQueries) {
  Tree t = MustTree("a(b(c),b)");
  FormulaPtr f = Formula::And(Formula::ChStar("x", "y"),
                              Formula::Label("y", "b"));
  xpath::PathPtr p = ToCoreXPath(*f);
  xpath::DirectEvaluator eval(t);
  EXPECT_EQ(eval.EvalNaryNaive(*p, {"x", "y"}),
            EvalFoNary(t, *f, {"x", "y"}));
}

// Lemma 2: quantifier-free formulas translate to for-loop-free paths.
TEST(Lemma2Test, QuantifierFreeYieldsNoForLoops) {
  FormulaPtr f = Formula::And(
      Formula::Not(Formula::ChStar("x", "y")),
      Formula::Or(Formula::Label("x", "a"), Formula::NsStar("y", "x")));
  ASSERT_TRUE(f->IsQuantifierFree());
  xpath::PathPtr p = ToCoreXPath(*f);
  EXPECT_FALSE(xpath::ContainsFor(*p));
}

TEST(Lemma2Test, QuantifiedYieldsForLoops) {
  FormulaPtr f = Formula::Exists("x", Formula::Label("x", "a"));
  xpath::PathPtr p = ToCoreXPath(*f);
  EXPECT_TRUE(xpath::ContainsFor(*p));
}

// The paper's Section 3 counterexample formula phi_0(x,y): if x is an
// ancestor of y, no nextsibling step occurs on the path from x to y --
// expressible without for-loops as
// .[not ($x/descendant::*/nextsibling-ish/descendant::*[. is $y])].
// We verify the variant from the paper using following_sibling for the
// single ns step approximated by following_sibling composition, checking
// that the direct evaluator agrees with a hand-rolled characterization on
// a comb tree. (The point here is exercising deep negation with variables,
// which Core XPath 2.0 allows but PPL forbids.)
TEST(Section3Test, NegatedReachabilityWithVariables) {
  Tree t = MustTree("a(b(c(d)),e(f))");
  // phi: NOT exists z,z': ch*(x,z) & z' next-ish sibling of z & ch*(z',y).
  FormulaPtr phi = Formula::Not(Formula::Exists(
      "z", Formula::Exists(
               "zp", Formula::And(
                         Formula::And(Formula::ChStar("x", "z"),
                                      Formula::And(Formula::NsStar("z", "zp"),
                                                   Formula::Not(Formula::Eq(
                                                       "z", "zp")))),
                         Formula::ChStar("zp", "y")))));
  xpath::PathPtr p = ToCoreXPath(*phi);
  xpath::DirectEvaluator eval(t);
  for (NodeId x = 0; x < t.size(); ++x) {
    for (NodeId y = 0; y < t.size(); ++y) {
      xpath::Assignment alpha = {{"x", x}, {"y", y}};
      xpath::Assignment beta = alpha;
      for (const auto& v : xpath::FreeVars(*p)) {
        if (!beta.contains(v)) beta[v] = 0;
      }
      EXPECT_EQ(Models(t, *phi, alpha), !eval.EvalPath(*p, beta).None())
          << "x=" << x << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace xpv::fo
