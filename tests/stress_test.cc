// Broad randomized stress tests: the full PPL pipeline against the
// exponential oracle on adversarial tree shapes, wider tuple widths,
// serializer fuzzing, and evaluator determinism / reuse.
#include <gtest/gtest.h>

#include "hcl/answer.h"
#include "hcl/translate.h"
#include "ppl/matrix_engine.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"
#include "xpath/simplify.h"

namespace xpv {
namespace {

xpath::PathPtr RandomPpl(Rng& rng, std::vector<std::string> available,
                         int depth) {
  using xpath::PathExpr;
  using xpath::TestExpr;
  if (depth <= 0 || rng.Chance(1, 4)) {
    if (!available.empty() && rng.Chance(1, 2)) {
      const std::string& var = available[rng.Below(available.size())];
      if (rng.Chance(1, 2)) return PathExpr::Var(var);
      return PathExpr::Filter(
          PathExpr::Dot(),
          TestExpr::Is(xpath::NodeRef::Dot(), xpath::NodeRef::Var(var)));
    }
    if (rng.Chance(1, 6)) return PathExpr::Dot();
    return PathExpr::Step(kAllAxes[rng.Below(kAllAxes.size())],
                          rng.Chance(1, 3) ? "*"
                                           : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(4)) {
    case 0: {
      std::vector<std::string> left, right;
      for (auto& v : available) (rng.Chance(1, 2) ? left : right).push_back(v);
      return PathExpr::Compose(RandomPpl(rng, left, depth - 1),
                               RandomPpl(rng, right, depth - 1));
    }
    case 1:
      return PathExpr::Union(RandomPpl(rng, available, depth - 1),
                             RandomPpl(rng, available, depth - 1));
    case 2: {
      std::vector<std::string> left, right;
      for (auto& v : available) (rng.Chance(1, 2) ? left : right).push_back(v);
      return PathExpr::Filter(RandomPpl(rng, left, depth - 1),
                              TestExpr::Path(RandomPpl(rng, right, depth - 1)));
    }
    default:
      return PathExpr::Filter(
          RandomPpl(rng, available, depth - 1),
          TestExpr::Not(TestExpr::Path(RandomPpl(rng, {}, depth - 1))));
  }
}

void ExpectPipelineMatchesDirect(const Tree& t, const xpath::PathExpr& p) {
  std::set<std::string> var_set = xpath::FreeVars(p);
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  Result<hcl::HclPtr> c = hcl::PplToHcl(p);
  ASSERT_TRUE(c.ok()) << p.ToString() << ": " << c.status();
  Result<xpath::TupleSet> fast = hcl::AnswerQuery(t, **c, vars);
  ASSERT_TRUE(fast.ok()) << fast.status();
  xpath::DirectEvaluator direct(t);
  EXPECT_EQ(*fast, direct.EvalNaryNaive(p, vars))
      << "query: " << p.ToString() << "\ntree: " << t.ToTerm();
}

// Adversarial tree shapes: unary paths (dense ancestor chains), stars
// (dense sibling relations), perfect binary trees.
class ShapeStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapeStressTest, PathTree) {
  Rng rng(GetParam());
  Tree t = PathTree(2 + rng.Below(6), "a");
  for (int trial = 0; trial < 6; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
    ExpectPipelineMatchesDirect(t, *p);
  }
}

TEST_P(ShapeStressTest, StarTree) {
  Rng rng(GetParam() + 10);
  Tree t = StarTree(2 + rng.Below(6));
  for (int trial = 0; trial < 6; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
    ExpectPipelineMatchesDirect(t, *p);
  }
}

TEST_P(ShapeStressTest, BinaryTree) {
  Rng rng(GetParam() + 20);
  Tree t = PerfectBinaryTree(2, 3);  // 7 nodes
  for (int trial = 0; trial < 6; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
    ExpectPipelineMatchesDirect(t, *p);
  }
}

TEST_P(ShapeStressTest, SingleNodeTree) {
  Rng rng(GetParam() + 30);
  Tree t = PathTree(1);
  for (int trial = 0; trial < 8; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x"}, 3);
    ExpectPipelineMatchesDirect(t, *p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeStressTest,
                         ::testing::Values(301, 302, 303, 304));

// Three variables with deeper expressions (the oracle is |t|^3, so trees
// stay tiny).
TEST(WideStressTest, ThreeVariablesDeepExpressions) {
  Rng rng(555);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(5);
    Tree t = RandomTree(rng, opts);
    xpath::PathPtr p = RandomPpl(rng, {"x", "y", "z"}, 4);
    ExpectPipelineMatchesDirect(t, *p);
  }
}

// Simplification composed with the pipeline: simplify first, then answer;
// answers must match the unsimplified pipeline.
TEST(SimplifyPipelineTest, SimplifiedQueriesAgree) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(7);
    Tree t = RandomTree(rng, opts);
    xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
    xpath::PathPtr simplified = xpath::Simplify(p->Clone());
    ASSERT_TRUE(xpath::CheckPpl(*simplified).ok())
        << "simplification left PPL: " << simplified->ToString();
    std::set<std::string> var_set = xpath::FreeVars(*p);
    std::vector<std::string> vars(var_set.begin(), var_set.end());

    Result<hcl::HclPtr> c1 = hcl::PplToHcl(*p);
    Result<hcl::HclPtr> c2 = hcl::PplToHcl(*simplified);
    ASSERT_TRUE(c1.ok() && c2.ok());
    Result<xpath::TupleSet> a1 = hcl::AnswerQuery(t, **c1, vars);
    Result<xpath::TupleSet> a2 = hcl::AnswerQuery(t, **c2, vars);
    ASSERT_TRUE(a1.ok() && a2.ok());
    EXPECT_EQ(*a1, *a2) << p->ToString() << " vs " << simplified->ToString();
  }
}

// Wait: simplification can REMOVE a variable only if it removes whole
// subexpressions; the rules never do (idempotence requires equal
// operands, which bind the same variables). FreeVars preservation:
TEST(SimplifyPipelineTest, FreeVarsPreserved) {
  Rng rng(888);
  for (int trial = 0; trial < 20; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x", "y", "z"}, 4);
    xpath::PathPtr s = xpath::Simplify(p->Clone());
    EXPECT_EQ(xpath::FreeVars(*s), xpath::FreeVars(*p)) << p->ToString();
  }
}

// QueryAnswerer reuse: Answer() twice returns identical results (the
// memo tables are not corrupted by the first pass).
TEST(ReuseTest, AnswerTwiceIsIdentical) {
  Rng rng(1234);
  RandomTreeOptions opts;
  opts.num_nodes = 12;
  Tree t = RandomTree(rng, opts);
  xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
  Result<hcl::HclPtr> c = hcl::PplToHcl(*p);
  ASSERT_TRUE(c.ok());
  hcl::QueryAnswerer answerer(t, **c, {"x", "y"});
  ASSERT_TRUE(answerer.Prepare().ok());
  Result<xpath::TupleSet> first = answerer.Answer();
  Result<xpath::TupleSet> second = answerer.Answer();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);
}

// Serializer fuzzing: random tree -> term/XML -> parse -> equal.
TEST(SerializerFuzzTest, TermAndXmlRoundTrip) {
  Rng rng(4321);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(80);
    opts.alphabet_size = 1 + rng.Below(30);
    Tree t = RandomTree(rng, opts);
    Result<Tree> via_term = Tree::ParseTerm(t.ToTerm());
    ASSERT_TRUE(via_term.ok()) << t.ToTerm();
    EXPECT_EQ(*via_term, t);
    Result<Tree> via_xml = Tree::ParseXml(t.ToXml());
    ASSERT_TRUE(via_xml.ok()) << t.ToXml();
    EXPECT_EQ(*via_xml, t);
  }
}

// Matrix engine determinism across repeated evaluations with shared
// caches.
TEST(ReuseTest, MatrixEngineCachesAreStable) {
  Rng rng(5678);
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  Tree t = RandomTree(rng, opts);
  ppl::MatrixEngine engine(t);
  Result<xpath::PathPtr> p = xpath::ParsePath(
      "descendant::a[not child::b]/following_sibling::* union child::c");
  Result<ppl::PplBinPtr> bin = ppl::FromXPath(**p);
  ASSERT_TRUE(bin.ok());
  BitMatrix first = engine.Evaluate(**bin);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.Evaluate(**bin), first);
  }
}

// Deep recursion safety: a 2000-step unary path tree through the matrix
// engine and a 500-deep compose chain through parser and translator.
TEST(DepthTest, DeepComposeChain) {
  std::string text = "child::a";
  for (int i = 0; i < 500; ++i) text += "/child::a";
  Result<xpath::PathPtr> p = xpath::ParsePath(text);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->Size(), 1001u);
  Result<ppl::PplBinPtr> bin = ppl::FromXPath(**p);
  ASSERT_TRUE(bin.ok());
  Tree t = PathTree(600, "a");
  ppl::MatrixEngine engine(t);
  BitMatrix m = engine.Evaluate(**bin);
  // 501 child steps on a 600-node path: exactly the pairs (u, u+501).
  EXPECT_EQ(m.Count(), 99u);
  EXPECT_TRUE(m.Get(0, 501));
}

}  // namespace
}  // namespace xpv
