// Tests for the Proposition 5 language equivalence HCL-(PPLbin) = PPL:
// the Fig. 7 translation PPL -> HCL-(PPLbin), the inclusion back, and the
// Proposition 6 translations between HCL(L) and positive quantifier-free
// FO formulas.
#include <gtest/gtest.h>

#include "fo/positive.h"
#include "hcl/answer.h"
#include "hcl/translate.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"

namespace xpv {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

xpath::PathPtr MustPath(std::string_view text) {
  Result<xpath::PathPtr> p = xpath::ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

hcl::HclPtr MustFig7(std::string_view text) {
  Result<hcl::HclPtr> c = hcl::PplToHcl(*MustPath(text));
  EXPECT_TRUE(c.ok()) << text << ": " << c.status();
  return std::move(c).value();
}

std::vector<std::string> SortedVars(const xpath::PathExpr& p) {
  auto vars = xpath::FreeVars(p);
  return {vars.begin(), vars.end()};
}

TEST(Fig7Test, RejectsNonPpl) {
  EXPECT_FALSE(hcl::PplToHcl(*MustPath("$x/$x")).ok());
  EXPECT_FALSE(
      hcl::PplToHcl(*MustPath("for $x in child::a return $x")).ok());
  EXPECT_FALSE(hcl::PplToHcl(*MustPath("$x intersect child::a")).ok());
}

TEST(Fig7Test, OutputIsInHclMinus) {
  for (const char* text :
       {"child::a", "$x", "child::a[. is $x]/child::b[. is $y]",
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        "child::a[. is $x] union child::b[. is $x]",
        "child::a[$x is $y]", "child::a[not child::b][. is $x]",
        "child::a except child::b"}) {
    hcl::HclPtr c = MustFig7(text);
    EXPECT_TRUE(hcl::CheckNoSharedComposition(*c).ok())
        << text << " -> " << c->ToString();
  }
}

TEST(Fig7Test, VariableFreeSubexpressionsCollapseToLeaves) {
  hcl::HclPtr c = MustFig7("child::a intersect descendant::a");
  EXPECT_EQ(c->kind, hcl::HclKind::kBinary);
  c = MustFig7("child::a except child::b");
  EXPECT_EQ(c->kind, hcl::HclKind::kBinary);
}

TEST(Fig7Test, GotoVariableBecomesNodesThenVar) {
  hcl::HclPtr c = MustFig7("$x");
  ASSERT_EQ(c->kind, hcl::HclKind::kCompose);
  EXPECT_EQ(c->left->kind, hcl::HclKind::kBinary);
  EXPECT_EQ(c->right->kind, hcl::HclKind::kVar);
  EXPECT_EQ(c->right->var, "x");
}

// Semantic preservation of Fig. 7: q_{P,x} computed naively on the Core
// XPath 2.0 side equals q_{C,x} computed by the Section 7 algorithm on the
// HCL side.
class Fig7SemanticsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig7SemanticsTest, PreservesNaryQueries) {
  const char* text = GetParam();
  xpath::PathPtr p = MustPath(text);
  hcl::HclPtr c = MustFig7(text);
  std::vector<std::string> vars = SortedVars(*p);

  for (const char* term :
       {"a(b(c,a),c(a(b),b),b)", "a(a(a))", "b(a,a,c(a))"}) {
    Tree t = MustTree(term);
    xpath::DirectEvaluator direct(t);
    xpath::TupleSet expected = direct.EvalNaryNaive(*p, vars);
    Result<xpath::TupleSet> actual = hcl::AnswerQuery(t, *c, vars);
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(*actual, expected)
        << "expr: " << text << "\nhcl: " << c->ToString()
        << "\ntree: " << term;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Fig7SemanticsTest,
    ::testing::Values(
        "child::a", ".", "$x", "child::a[. is $x]",
        "child::a[. is $x]/child::b[. is $y]",
        "descendant::a[child::b[. is $x] or child::c[. is $x]]",
        "child::a[. is $x] union descendant::b[. is $x]",
        "child::a[$x is $y]", "child::a[. is .]",
        "child::a[not child::b][. is $x]",
        "child::a intersect descendant::*",
        "(child::a except child::b)[. is $x]",
        "descendant::*[child::a[. is $x] and child::b[. is $y]]",
        "$x/child::a[. is $y]",
        "descendant::a[. is $x or not child::b]"));

// Proposition 5 inclusion: HclToPpl output is PPL and preserves semantics.
TEST(Prop5InclusionTest, RoundTripPplToHclToPpl) {
  for (const char* text :
       {"child::a[. is $x]/child::b[. is $y]",
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        "child::a union child::b[. is $x]",
        "child::a[not child::b]"}) {
    xpath::PathPtr original = MustPath(text);
    hcl::HclPtr c = MustFig7(text);
    Result<xpath::PathPtr> back = hcl::HclToPpl(*c);
    ASSERT_TRUE(back.ok()) << back.status();
    // The back translation lands in PPL.
    EXPECT_TRUE(xpath::CheckPpl(**back).ok()) << (*back)->ToString();
    // And preserves the n-ary query.
    std::vector<std::string> vars = SortedVars(*original);
    Tree t = MustTree("a(book(author,title),b(a),c)");
    xpath::DirectEvaluator direct(t);
    EXPECT_EQ(direct.EvalNaryNaive(**back, vars),
              direct.EvalNaryNaive(*original, vars))
        << text << " -> " << (*back)->ToString();
  }
}

TEST(Prop5InclusionTest, VariableTranslation) {
  hcl::HclPtr c = hcl::HclExpr::Var("x");
  Result<xpath::PathPtr> p = hcl::HclToPpl(*c);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->ToString(), ".[. is $x]");
}

TEST(Prop5InclusionTest, FilterTranslation) {
  hcl::HclPtr c = hcl::HclExpr::Filter(
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "a")));
  Result<xpath::PathPtr> p = hcl::HclToPpl(*c);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->ToString(), ".[child::a]");
}

// Proposition 6: HCL -> positive FO.
TEST(Prop6Test, HclToPositiveCharacterizesPairs) {
  // (u,u') in [[C]]^{t,alpha} iff t, alpha[x->u,z->u'] |= LCM_{x,z}.
  Tree t = MustTree("a(b(c),d)");
  hcl::HclPtr c = hcl::HclExpr::Compose(
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild)),
      hcl::HclExpr::Compose(
          hcl::HclExpr::Var("v"),
          hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "c"))));
  fo::PositivePtr xi = fo::HclToPositive(*c, "s", "e");

  std::map<const hcl::BinaryQuery*, BitMatrix> cache;
  for (NodeId v = 0; v < t.size(); ++v) {
    xpath::Assignment alpha = {{"v", v}};
    BitMatrix pairs = hcl::EvalHcl(t, *c, alpha, &cache);
    for (NodeId u = 0; u < t.size(); ++u) {
      for (NodeId w = 0; w < t.size(); ++w) {
        // Quantify the fresh variables existentially: the formula holds
        // for SOME assignment of the fresh vars iff the pair is selected.
        xpath::Assignment nu = {{"v", v}, {"s", u}, {"e", w}};
        // Enumerate fresh vars (at most 2 compositions deep here).
        std::set<std::string> all = fo::FreeVars(*xi);
        std::vector<std::string> fresh;
        for (const auto& name : all) {
          if (!nu.contains(name)) fresh.push_back(name);
        }
        bool holds = false;
        std::vector<NodeId> counters(fresh.size(), 0);
        while (true) {
          for (std::size_t i = 0; i < fresh.size(); ++i) {
            nu[fresh[i]] = counters[i];
          }
          if (fo::ModelsPositive(t, *xi, nu, &cache)) {
            holds = true;
            break;
          }
          std::size_t i = 0;
          for (; i < counters.size(); ++i) {
            if (++counters[i] < t.size()) break;
            counters[i] = 0;
          }
          if (i == counters.size()) break;
        }
        EXPECT_EQ(holds, pairs.Get(u, w))
            << "alpha(v)=" << v << " u=" << u << " w=" << w;
      }
    }
  }
}

// Proposition 6 back translation: positive FO -> HCL preserves n-ary
// queries (evaluated naively on both sides).
TEST(Prop6Test, PositiveToHclPreservesQueries) {
  Tree t = MustTree("a(b(c),b,c)");
  auto chstar_atom = [&](std::string x, std::string y) {
    return fo::PositiveFormula::Atom(
        hcl::MakePplBinQuery(ppl::PplBinExpr::Union(
            ppl::PplBinExpr::Step(Axis::kDescendant, "*"),
            ppl::PplBinExpr::Self())),
        std::move(x), std::move(y));
  };
  auto child_atom = [&](std::string x, std::string y) {
    return fo::PositiveFormula::Atom(hcl::MakeAxisQuery(Axis::kChild),
                                     std::move(x), std::move(y));
  };

  std::vector<fo::PositivePtr> formulas;
  formulas.push_back(child_atom("x", "y"));
  formulas.push_back(fo::PositiveFormula::And(child_atom("x", "y"),
                                              chstar_atom("y", "z")));
  formulas.push_back(fo::PositiveFormula::Or(
      child_atom("x", "y"), fo::PositiveFormula::Eq("x", "y")));
  formulas.push_back(fo::PositiveFormula::And(
      fo::PositiveFormula::Eq("x", "y"), child_atom("y", "z")));

  for (const auto& xi : formulas) {
    std::set<std::string> var_set = fo::FreeVars(*xi);
    std::vector<std::string> vars(var_set.begin(), var_set.end());
    hcl::HclPtr c = fo::PositiveToHcl(*xi);
    xpath::TupleSet expected = fo::EvalPositiveNary(t, *xi, vars);
    xpath::TupleSet actual = hcl::EvalHclNaryNaive(t, *c, vars);
    EXPECT_EQ(actual, expected) << xi->ToString() << " -> " << c->ToString();
  }
}

}  // namespace
}  // namespace xpv
