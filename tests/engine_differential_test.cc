// Differential equivalence suite for the batch query-evaluation subsystem:
// on seeded random trees and random queries, the efficient engines
// (ppl::GkpEngine, ppl::MatrixEngine) and the batched QueryService at
// every thread count must agree with the literal Fig. 2 semantics
// (xpath::DirectEvaluator), and batch results must be byte-identical
// across thread counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"
#include "ppl/pplbin.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xpv {
namespace {

ppl::PplBinPtr RandomPplBin(Rng& rng, int depth, bool allow_complement) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    if (rng.Chance(1, 5)) return ppl::PplBinExpr::Self();
    return ppl::PplBinExpr::Step(
        kAllAxes[rng.Below(kAllAxes.size())],
        rng.Chance(1, 3) ? "*" : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(allow_complement ? 4u : 3u)) {
    case 0:
      return ppl::PplBinExpr::Compose(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 1:
      return ppl::PplBinExpr::Union(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 2:
      return ppl::PplBinExpr::Filter(
          RandomPplBin(rng, depth - 1, allow_complement));
    default:
      return ppl::PplBinExpr::Complement(
          RandomPplBin(rng, depth - 1, allow_complement));
  }
}

Tree MakeRandomTree(Rng& rng) {
  RandomTreeOptions opts;
  opts.num_nodes = 4 + rng.Below(28);
  opts.alphabet_size = 3;
  return RandomTree(rng, opts);
}

/// Ground truth: the Fig. 2 denotational semantics on the Core XPath 2.0
/// image of the PPLbin expression.
BitMatrix GroundTruth(const Tree& t, const ppl::PplBinExpr& p) {
  xpath::DirectEvaluator eval(t);
  return eval.EvalPath(*ppl::ToXPath(p), {});
}

// ------------------------------------------------------- engine agreement

class EngineDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EngineDifferentialTest, MatrixEngineMatchesDirectSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/true);
    ppl::MatrixEngine engine(t);
    EXPECT_EQ(engine.Evaluate(*p), GroundTruth(t, *p))
        << "query: " << p->ToString() << "\ntree: " << t.ToTerm();
  }
}

TEST_P(EngineDifferentialTest, GkpEngineMatchesDirectSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/false);
    ASSERT_TRUE(p->IsPositive());
    ppl::GkpEngine engine(t);
    Result<BitMatrix> rel = engine.Relation(*p);
    ASSERT_TRUE(rel.ok()) << rel.status();
    EXPECT_EQ(*rel, GroundTruth(t, *p))
        << "query: " << p->ToString() << "\ntree: " << t.ToTerm();
  }
}

// ----------------------------------------------- QueryService equivalence

struct Batch {
  std::vector<Tree> trees;
  std::vector<ppl::PplBinPtr> exprs;   // exprs[i] belongs to jobs[i]
  std::vector<engine::QueryJob> jobs;  // tree pointers into `trees`
};

/// A mixed batch over several trees; queries are submitted as Core XPath
/// 2.0 surface text, exercising the full parse -> plan -> execute path.
/// Tree pointers repeat so jobs share per-tree axis caches, and query
/// texts repeat so the compiled-query cache gets hits.
Batch MakeBatch(std::uint64_t seed, std::size_t num_jobs) {
  Batch b;
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) b.trees.push_back(MakeRandomTree(rng));
  for (std::size_t i = 0; i < num_jobs; ++i) {
    ppl::PplBinPtr p = i % 5 == 4 && i >= 5
                           ? b.exprs[i - 5]->Clone()  // repeat query text
                           : RandomPplBin(rng, 3, /*allow_complement=*/true);
    engine::QueryJob job;
    job.tree = &b.trees[rng.Below(b.trees.size())];
    job.query = ppl::ToXPath(*p)->ToString();
    b.jobs.push_back(std::move(job));
    b.exprs.push_back(std::move(p));
  }
  return b;
}

void ExpectResultsEqual(const std::vector<engine::QueryResult>& a,
                        const std::vector<engine::QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "job " << i;
    EXPECT_TRUE(a[i].plan == b[i].plan)
        << "job " << i << ": " << a[i].plan.DebugString() << " vs "
        << b[i].plan.DebugString();
    EXPECT_EQ(a[i].relation, b[i].relation) << "job " << i;
    EXPECT_EQ(a[i].from_root, b[i].from_root) << "job " << i;
    EXPECT_EQ(a[i].tuples, b[i].tuples) << "job " << i;
    EXPECT_EQ(a[i].boolean, b[i].boolean) << "job " << i;
    EXPECT_EQ(a[i].count, b[i].count) << "job " << i;
  }
}

class ServiceDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ServiceDifferentialTest, ServiceMatchesDirectSemanticsAllThreadCounts) {
  Batch batch = MakeBatch(GetParam(), 40);
  std::vector<std::vector<engine::QueryResult>> per_thread_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    engine::QueryService service({.num_threads = threads});
    per_thread_count.push_back(service.EvaluateBatch(batch.jobs));
    const auto& results = per_thread_count.back();
    ASSERT_EQ(results.size(), batch.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok())
          << "threads=" << threads << " job " << i << ": "
          << results[i].status << "\nquery: " << batch.jobs[i].query;
      BitMatrix truth = GroundTruth(*batch.jobs[i].tree, *batch.exprs[i]);
      EXPECT_EQ(results[i].relation, truth)
          << "threads=" << threads << " job " << i
          << "\nquery: " << batch.jobs[i].query;
      // The monadic restriction must be the root row of the relation.
      EXPECT_EQ(results[i].from_root,
                truth.Row(batch.jobs[i].tree->root()))
          << "threads=" << threads << " job " << i;
    }
  }
  // Determinism: same seed => byte-identical results at 1, 2, 8 threads.
  ExpectResultsEqual(per_thread_count[0], per_thread_count[1]);
  ExpectResultsEqual(per_thread_count[0], per_thread_count[2]);
}

TEST_P(ServiceDifferentialTest, RepeatedBatchesAreDeterministic) {
  Batch batch = MakeBatch(GetParam() ^ 0xabcdef, 20);
  engine::QueryService service({.num_threads = 8});
  auto first = service.EvaluateBatch(batch.jobs);
  auto second = service.EvaluateBatch(batch.jobs);
  ExpectResultsEqual(first, second);
  // Every distinct query compiled exactly once across both batches.
  EXPECT_EQ(service.cache().hits() + service.cache().misses(),
            2 * batch.jobs.size());
  EXPECT_LT(service.cache().misses(), service.cache().hits());
}

// --------------------------------------------- DocumentStore equivalence

/// The same batch addressed through a DocumentStore: jobs[i] targets the
/// stored copy of the tree jobs[i] used in the Tree* shim path.
std::vector<engine::QueryJob> ToStoreJobs(
    const Batch& batch, const std::vector<engine::DocumentId>& ids) {
  std::vector<engine::QueryJob> jobs;
  for (const engine::QueryJob& job : batch.jobs) {
    engine::QueryJob doc_job;
    for (std::size_t k = 0; k < batch.trees.size(); ++k) {
      if (job.tree == &batch.trees[k]) doc_job.document = ids[k];
    }
    EXPECT_NE(doc_job.document, engine::kNoDocument);
    doc_job.query = job.query;
    jobs.push_back(std::move(doc_job));
  }
  return jobs;
}

TEST_P(ServiceDifferentialTest, DocumentStorePathMatchesTreePath) {
  Batch batch = MakeBatch(GetParam() ^ 0x90c5, 40);
  engine::DocumentStore store;
  std::vector<engine::DocumentId> ids;
  for (const Tree& t : batch.trees) {
    Tree copy = t;  // the store owns its documents
    ids.push_back(store.Insert(std::move(copy)));
  }
  std::vector<engine::QueryJob> doc_jobs = ToStoreJobs(batch, ids);

  for (std::size_t threads : {1u, 2u, 8u}) {
    engine::QueryService tree_service({.num_threads = threads});
    engine::QueryService doc_service(
        {.num_threads = threads, .document_store = &store});
    auto tree_results = tree_service.EvaluateBatch(batch.jobs);
    auto doc_results = doc_service.EvaluateBatch(doc_jobs);
    for (const auto& r : tree_results) {
      ASSERT_TRUE(r.status.ok()) << r.status;
    }
    ExpectResultsEqual(tree_results, doc_results);
  }
}

TEST_P(ServiceDifferentialTest, ShardedStoreMatchesSingleStore) {
  // The sharded corpus must be invisible to results: the same batch
  // served from stores with 1 (the pre-sharding behavior), 4, and 16
  // shards is byte-identical at every thread count. Shard counts straddle
  // the document count (4), so some shards hold several documents and
  // some none.
  Batch batch = MakeBatch(GetParam() ^ 0x5a5a, 40);
  std::vector<std::vector<engine::QueryResult>> baselines;
  for (std::size_t threads : {1u, 2u, 8u}) {
    baselines.emplace_back();
    for (std::size_t shards : {1u, 4u, 16u}) {
      engine::DocumentStore store(
          {.max_hot_caches = 64, .num_shards = shards});
      std::vector<engine::DocumentId> ids;
      for (const Tree& t : batch.trees) {
        Tree copy = t;
        ids.push_back(store.Insert(std::move(copy)));
      }
      engine::QueryService service(
          {.num_threads = threads, .document_store = &store});
      auto results = service.EvaluateBatch(ToStoreJobs(batch, ids));
      for (const auto& r : results) ASSERT_TRUE(r.status.ok()) << r.status;
      if (baselines.back().empty()) {
        baselines.back() = std::move(results);
      } else {
        ExpectResultsEqual(baselines.back(), results);  // across shards
      }
    }
  }
  ExpectResultsEqual(baselines[0], baselines[1]);  // across thread counts
  ExpectResultsEqual(baselines[0], baselines[2]);
}

TEST_P(ServiceDifferentialTest, StoreCachesPersistAcrossBatches) {
  Batch batch = MakeBatch(GetParam() ^ 0xcafe, 30);
  engine::DocumentStore store;
  std::vector<engine::DocumentId> ids;
  for (const Tree& t : batch.trees) {
    Tree copy = t;
    ids.push_back(store.Insert(std::move(copy)));
  }
  std::vector<engine::QueryJob> doc_jobs = ToStoreJobs(batch, ids);

  engine::QueryService service(
      {.num_threads = 8, .document_store = &store});
  auto first = service.EvaluateBatch(doc_jobs);
  const engine::DocumentStoreStats after_first = store.stats();
  auto second = service.EvaluateBatch(doc_jobs);
  auto third = service.EvaluateBatch(doc_jobs);
  const engine::DocumentStoreStats after_third = store.stats();
  ExpectResultsEqual(first, second);
  ExpectResultsEqual(first, third);

  // Axis-cache reuse across batches: each document's cache was built at
  // most once (during the first batch), and the later batches only hit.
  EXPECT_LE(after_first.cache_builds, ids.size());
  EXPECT_EQ(after_third.cache_builds, after_first.cache_builds);
  EXPECT_GT(after_third.cache_hits, after_first.cache_hits);
  EXPECT_EQ(after_third.cache_retirements, 0u);
  // And the caches really are warm: no document's AxisCache materializes
  // any new relation during a repeated batch.
  std::vector<std::size_t> built;
  for (engine::DocumentId id : ids) {
    built.push_back(store.AxisCacheFor(id)->matrices_built());
  }
  auto fourth = service.EvaluateBatch(doc_jobs);
  ExpectResultsEqual(first, fourth);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(store.AxisCacheFor(ids[k])->matrices_built(), built[k])
        << "document " << ids[k];
  }
}

TEST(DocumentStoreTest, InternDeduplicatesByContent) {
  engine::DocumentStore store;
  Tree a = *Tree::ParseTerm("a(b,c(d))");
  Tree b = *Tree::ParseTerm("a(b,c(d))");
  Tree c = *Tree::ParseTerm("a(b,c(e))");
  engine::DocumentId id1 = store.Intern(std::move(a));
  engine::DocumentId id2 = store.Intern(std::move(b));
  engine::DocumentId id3 = store.Intern(std::move(c));
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().intern_hits, 1u);
}

TEST(DocumentStoreTest, InternKeyIsUnambiguousForAdversarialLabels) {
  // TreeBuilder accepts arbitrary label bytes; a single node labeled
  // "a(b)" must not collide with the two-node tree ParseTerm("a(b)").
  engine::DocumentStore store;
  TreeBuilder adversarial;
  adversarial.Leaf("a(b)");
  Tree one_node = *std::move(adversarial).Finish();
  Tree two_nodes = *Tree::ParseTerm("a(b)");
  engine::DocumentId id1 = store.Intern(std::move(one_node));
  engine::DocumentId id2 = store.Intern(std::move(two_nodes));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().intern_hits, 0u);
}

TEST(DocumentStoreTest, LruRetiresColdCaches) {
  // One shard so the four documents compete for one LRU budget.
  engine::DocumentStore store({.max_hot_caches = 2, .num_shards = 1});
  Rng rng(3);
  std::vector<engine::DocumentId> ids;
  for (int i = 0; i < 4; ++i) {
    RandomTreeOptions opts;
    opts.num_nodes = 12;
    ids.push_back(store.Insert(RandomTree(rng, opts)));
  }
  // Touch all four: only the last two stay hot.
  std::vector<std::shared_ptr<AxisCache>> held;
  for (engine::DocumentId id : ids) held.push_back(store.AxisCacheFor(id));
  engine::DocumentStoreStats stats = store.stats();
  EXPECT_EQ(stats.cache_builds, 4u);
  EXPECT_EQ(stats.hot_caches, 2u);
  EXPECT_EQ(stats.cache_retirements, 2u);
  // Retired caches stay usable through outstanding handles...
  EXPECT_EQ(held[0]->Matrix(Axis::kChild).size(), 12u);
  // ...and a cold document rebuilds on next access.
  std::shared_ptr<AxisCache> rebuilt = store.AxisCacheFor(ids[0]);
  EXPECT_NE(rebuilt.get(), held[0].get());
  EXPECT_EQ(store.stats().cache_builds, 5u);
}

TEST(DocumentStoreTest, PerShardLruBudgetsAreIndependent) {
  // 4 shards, budget 4 => one hot cache per shard. Two documents in the
  // same shard thrash that shard's budget; documents in other shards are
  // untouched.
  engine::DocumentStore store({.max_hot_caches = 4, .num_shards = 4});
  Rng rng(5);
  std::vector<engine::DocumentId> ids;
  for (int i = 0; i < 8; ++i) {
    RandomTreeOptions opts;
    opts.num_nodes = 10;
    ids.push_back(store.Insert(RandomTree(rng, opts)));
  }
  // Ids are allocated round-robin across shards: ids[0] and ids[4] share
  // a shard, ids[1] lives elsewhere.
  ASSERT_EQ(store.shard_of(ids[0]), store.shard_of(ids[4]));
  ASSERT_NE(store.shard_of(ids[0]), store.shard_of(ids[1]));
  store.AxisCacheFor(ids[0]);
  store.AxisCacheFor(ids[1])->Matrix(Axis::kChild);  // materialize bytes
  store.AxisCacheFor(ids[4]);  // evicts ids[0] from their shared shard
  const std::vector<engine::DocumentStoreStats> per_shard =
      store.shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  EXPECT_EQ(per_shard[store.shard_of(ids[0])].cache_retirements, 1u);
  EXPECT_EQ(per_shard[store.shard_of(ids[1])].cache_retirements, 0u);
  EXPECT_EQ(per_shard[store.shard_of(ids[1])].hot_caches, 1u);
  // The aggregate is the sum of the shards.
  const engine::DocumentStoreStats total = store.stats();
  EXPECT_EQ(total.documents, 8u);
  EXPECT_EQ(total.hot_caches, 2u);
  EXPECT_EQ(total.cache_builds, 3u);
  EXPECT_EQ(total.cache_retirements, 1u);
  EXPECT_GT(total.hot_cache_bytes, 0u);
}

TEST(DocumentStoreTest, ErrorsForUnknownOrAmbiguousAddressing) {
  engine::DocumentStore store;
  engine::QueryService service({.document_store = &store});
  // Unknown id.
  engine::QueryResult r = service.Evaluate(engine::DocumentId{42}, "child::a");
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  // No store configured.
  engine::QueryService storeless({.num_threads = 1});
  engine::QueryJob job;
  job.document = 1;
  job.query = "child::a";
  auto results = storeless.EvaluateBatch({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
  // Both tree and document set.
  Tree t = *Tree::ParseTerm("a(b)");
  engine::DocumentId id = store.Insert(std::move(t));
  engine::QueryJob both;
  both.document = id;
  both.tree = &store.Get(id)->tree();
  both.query = "child::a";
  auto both_results = service.EvaluateBatch({both});
  EXPECT_EQ(both_results[0].status.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- n-ary dispatch

TEST(ServiceNaryTest, VariableQueriesMatchNaiveEnumeration) {
  // PPL queries with free variables route to the Section 7 answer
  // machinery; ground truth is brute-force assignment enumeration.
  const std::vector<std::string> queries = {
      "descendant::a/$x",
      "$x/descendant::b",
      "descendant::*[child::a]/$x/child::*",
      "(descendant::a union descendant::b)/$y",
  };
  Rng rng(7);
  engine::QueryService service({.num_threads = 2});
  for (int trial = 0; trial < 4; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 4 + rng.Below(8);  // naive is |t|^k
    Tree t = RandomTree(rng, opts);
    for (const std::string& text : queries) {
      engine::QueryResult result = service.Evaluate(t, text);
      ASSERT_TRUE(result.status.ok()) << text << ": " << result.status;
      ASSERT_EQ(result.plan.engine, engine::EnginePlan::kNaryAnswer) << text;

      Result<xpath::PathPtr> path = xpath::ParsePath(text);
      ASSERT_TRUE(path.ok());
      const std::set<std::string> free_vars = xpath::FreeVars(**path);
      std::vector<std::string> tuple_vars(free_vars.begin(), free_vars.end());
      xpath::DirectEvaluator eval(t);
      EXPECT_EQ(result.tuples, eval.EvalNaryNaive(**path, tuple_vars))
          << text << "\ntree: " << t.ToTerm();
    }
  }
}

// --------------------------------------------------------- plan selection

TEST(CompileQueryTest, AdmissibleEnginesMatchFragments) {
  using engine::EnginePlan;
  auto admissible_of = [](std::string_view text) {
    auto q = engine::CompileQuery(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status();
    return (*q)->admissible;
  };
  const std::vector<EnginePlan> positive = {EnginePlan::kGkpPositive,
                                            EnginePlan::kMatrixGeneral};
  const std::vector<EnginePlan> general = {EnginePlan::kMatrixGeneral};
  const std::vector<EnginePlan> nary = {EnginePlan::kNaryAnswer};
  EXPECT_EQ(admissible_of("child::a/descendant::b"), positive);
  EXPECT_EQ(admissible_of("descendant::*[child::a]"), positive);
  EXPECT_EQ(admissible_of("child::* except child::a"), general);
  EXPECT_EQ(admissible_of("descendant::a/$x"), nary);

  // Abbreviated syntax is accepted and desugared.
  EXPECT_EQ(admissible_of("a//b"), positive);

  // Syntax errors and non-PPL queries are rejected.
  EXPECT_FALSE(engine::CompileQuery("child::").ok());
  // NVS(/): $x shared across a composition is outside PPL.
  EXPECT_EQ(engine::CompileQuery("$x/child::*/$x").status().code(),
            StatusCode::kFragmentViolation);
}

// -------------------------------------------- new BitMatrix kernel checks

TEST(BitMatrixKernelTest, BlockedMultiplyMatchesNaive) {
  Rng rng(11);
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u, 700u}) {
    BitMatrix a(n), b(n);
    for (std::size_t k = 0; k < n * n / 7 + 1; ++k) {
      a.Set(rng.Below(n), rng.Below(n));
      b.Set(rng.Below(n), rng.Below(n));
    }
    EXPECT_EQ(a.Multiply(b), a.MultiplyNaive(b)) << "n=" << n;
  }
}

TEST(BitMatrixKernelTest, BlockTransposeMatchesNaive) {
  Rng rng(13);
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u, 700u}) {
    BitMatrix m(n);
    for (std::size_t k = 0; k < n * n / 5 + 1; ++k) {
      m.Set(rng.Below(n), rng.Below(n));
    }
    BitMatrix t = m.Transpose();
    BitMatrix expected(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        if (m.Get(r, c)) expected.Set(c, r);
      }
    }
    EXPECT_EQ(t, expected) << "n=" << n;
    EXPECT_EQ(t.Transpose(), m) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5));
INSTANTIATE_TEST_SUITE_P(Seeds, ServiceDifferentialTest,
                         ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace xpv
