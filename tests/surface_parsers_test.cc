// Tests for the PPLbin and HCL surface parsers: unit cases plus
// print-parse round trips over randomized ASTs (printer and parser agree
// by construction on every expression the library can build).
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "hcl/parser.h"
#include "ppl/parser.h"
#include "tree/generators.h"

namespace xpv {
namespace {

TEST(PplBinParserTest, Atoms) {
  Result<ppl::PplBinPtr> p = ppl::ParsePplBin("child::a");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, ppl::PplBinKind::kStep);
  EXPECT_EQ((*p)->axis, Axis::kChild);

  p = ppl::ParsePplBin(".");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE((*p)->Equals(*ppl::PplBinExpr::Self()));

  p = ppl::ParsePplBin("descendant::*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE((*p)->name_test.empty());
}

TEST(PplBinParserTest, Precedence) {
  // '/' binds tighter than 'union'.
  Result<ppl::PplBinPtr> p =
      ppl::ParsePplBin("child::a/child::b union child::c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, ppl::PplBinKind::kUnion);
  EXPECT_EQ((*p)->left->kind, ppl::PplBinKind::kCompose);

  // prefix 'except' binds tighter than '/': a/except b = a/(except b).
  p = ppl::ParsePplBin("child::a/except child::b");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, ppl::PplBinKind::kCompose);
  EXPECT_EQ((*p)->right->kind, ppl::PplBinKind::kComplement);

  // 'except' over a composition needs parentheses.
  p = ppl::ParsePplBin("except (child::a/child::b)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, ppl::PplBinKind::kComplement);
  EXPECT_EQ((*p)->left->kind, ppl::PplBinKind::kCompose);
}

TEST(PplBinParserTest, FiltersAndNesting) {
  Result<ppl::PplBinPtr> p =
      ppl::ParsePplBin("[child::a union [descendant::b]]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->kind, ppl::PplBinKind::kFilter);
  EXPECT_EQ((*p)->left->kind, ppl::PplBinKind::kUnion);
}

TEST(PplBinParserTest, Errors) {
  EXPECT_FALSE(ppl::ParsePplBin("").ok());
  EXPECT_FALSE(ppl::ParsePplBin("child::").ok());
  EXPECT_FALSE(ppl::ParsePplBin("except").ok());
  EXPECT_FALSE(ppl::ParsePplBin("child::a union").ok());
  EXPECT_FALSE(ppl::ParsePplBin("[child::a").ok());
  EXPECT_FALSE(ppl::ParsePplBin("child::a)").ok());
  EXPECT_FALSE(ppl::ParsePplBin("$x").ok());
  EXPECT_FALSE(ppl::ParsePplBin("frob::a").ok());
}

ppl::PplBinPtr RandomPplBin(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    if (rng.Chance(1, 5)) return ppl::PplBinExpr::Self();
    return ppl::PplBinExpr::Step(kAllAxes[rng.Below(kAllAxes.size())],
                                 rng.Chance(1, 3)
                                     ? "*"
                                     : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(4)) {
    case 0:
      return ppl::PplBinExpr::Compose(RandomPplBin(rng, depth - 1),
                                      RandomPplBin(rng, depth - 1));
    case 1:
      return ppl::PplBinExpr::Union(RandomPplBin(rng, depth - 1),
                                    RandomPplBin(rng, depth - 1));
    case 2:
      return ppl::PplBinExpr::Complement(RandomPplBin(rng, depth - 1));
    default:
      return ppl::PplBinExpr::Filter(RandomPplBin(rng, depth - 1));
  }
}

class PplBinRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PplBinRoundTripTest, PrintParseIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    ppl::PplBinPtr p = RandomPplBin(rng, 4);
    std::string printed = p->ToString();
    Result<ppl::PplBinPtr> reparsed = ppl::ParsePplBin(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    EXPECT_TRUE((*reparsed)->Equals(*p)) << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PplBinRoundTripTest,
                         ::testing::Values(81, 82, 83, 84));

TEST(HclParserTest, Atoms) {
  Result<hcl::HclPtr> c = hcl::ParseHcl("x");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->kind, hcl::HclKind::kVar);

  c = hcl::ParseHcl("child::a");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->kind, hcl::HclKind::kBinary);

  c = hcl::ParseHcl("nodes");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->binary->ToString(), "nodes");

  c = hcl::ParseHcl("{except child::a}");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->binary->ToString(), "except child::a");
}

TEST(HclParserTest, Structure) {
  Result<hcl::HclPtr> c = hcl::ParseHcl(
      "descendant::book/([child::author/y]/[child::title/z])");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ((*c)->kind, hcl::HclKind::kCompose);
  EXPECT_EQ((*c)->right->kind, hcl::HclKind::kCompose);
  EXPECT_EQ((*c)->right->left->kind, hcl::HclKind::kFilter);
  EXPECT_EQ(hcl::FreeVars(**c), (std::set<std::string>{"y", "z"}));
}

TEST(HclParserTest, UnionKeyword) {
  Result<hcl::HclPtr> c = hcl::ParseHcl("x u child::a/y");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->kind, hcl::HclKind::kUnion);
  EXPECT_EQ((*c)->right->kind, hcl::HclKind::kCompose);
}

TEST(HclParserTest, Errors) {
  EXPECT_FALSE(hcl::ParseHcl("").ok());
  EXPECT_FALSE(hcl::ParseHcl("u").ok());
  EXPECT_FALSE(hcl::ParseHcl("x/").ok());
  EXPECT_FALSE(hcl::ParseHcl("{child::a").ok());
  EXPECT_FALSE(hcl::ParseHcl("{$bad}").ok());
  EXPECT_FALSE(hcl::ParseHcl("[x").ok());
}

hcl::HclPtr RandomHcl(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    switch (rng.Below(3)) {
      case 0:
        return hcl::HclExpr::Var(std::string(1, static_cast<char>(
                                                    'x' + rng.Below(3))));
      case 1:
        return hcl::HclExpr::Binary(
            hcl::MakePplBinQuery(RandomPplBin(rng, 2)));
      default:
        return hcl::HclExpr::Binary(hcl::MakeFullRelationQuery());
    }
  }
  switch (rng.Below(3)) {
    case 0:
      return hcl::HclExpr::Compose(RandomHcl(rng, depth - 1),
                                   RandomHcl(rng, depth - 1));
    case 1:
      return hcl::HclExpr::Union(RandomHcl(rng, depth - 1),
                                 RandomHcl(rng, depth - 1));
    default:
      return hcl::HclExpr::Filter(RandomHcl(rng, depth - 1));
  }
}

class HclRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HclRoundTripTest, PrintParseSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    hcl::HclPtr c = RandomHcl(rng, 3);
    std::string printed = c->ToString();
    Result<hcl::HclPtr> reparsed = hcl::ParseHcl(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    // Binary leaves may print single-step PPLbin without braces and
    // reparse as equivalent but distinct BinaryQuery objects, so compare
    // by printout and by semantics instead of pointer identity.
    EXPECT_EQ((*reparsed)->ToString(), printed);

    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(6);
    Tree t = RandomTree(rng, opts);
    std::set<std::string> var_set = hcl::FreeVars(*c);
    std::vector<std::string> vars(var_set.begin(), var_set.end());
    EXPECT_EQ(hcl::EvalHclNaryNaive(t, **reparsed, vars),
              hcl::EvalHclNaryNaive(t, *c, vars))
        << printed << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HclRoundTripTest,
                         ::testing::Values(91, 92, 93));

}  // namespace
}  // namespace xpv
