// End-to-end integration tests of the full PPL pipeline (the paper's
// Theorem 1 machinery):
//
//   XPath text --parse--> Core XPath 2.0 AST
//              --CheckPpl--> PPL membership
//              --Fig. 7--> HCL-(PPLbin)
//              --Lemma 3--> sharing normal form
//              --Prop. 10/11--> answer set
//
// differentially against the direct (exponential) Core XPath 2.0
// evaluator, on handcrafted queries, the paper's examples, and random
// PPL expressions over random trees.
#include <gtest/gtest.h>

#include "hcl/answer.h"
#include "hcl/translate.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"

namespace xpv {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

/// The full pipeline: answers q_{P,x}(t) for PPL expression text.
Result<xpath::TupleSet> AnswerPpl(const Tree& t, std::string_view text,
                                  const std::vector<std::string>& vars) {
  XPV_ASSIGN_OR_RETURN(xpath::PathPtr p, xpath::ParsePath(text));
  XPV_RETURN_IF_ERROR(xpath::CheckPpl(*p));
  XPV_ASSIGN_OR_RETURN(hcl::HclPtr c, hcl::PplToHcl(*p));
  return hcl::AnswerQuery(t, *c, vars);
}

void ExpectPipelineMatchesDirect(const Tree& t, std::string_view text) {
  Result<xpath::PathPtr> p = xpath::ParsePath(text);
  ASSERT_TRUE(p.ok()) << p.status();
  std::set<std::string> var_set = xpath::FreeVars(**p);
  std::vector<std::string> vars(var_set.begin(), var_set.end());

  Result<xpath::TupleSet> fast = AnswerPpl(t, text, vars);
  ASSERT_TRUE(fast.ok()) << text << ": " << fast.status();

  xpath::DirectEvaluator direct(t);
  xpath::TupleSet expected = direct.EvalNaryNaive(**p, vars);
  EXPECT_EQ(*fast, expected) << "query: " << text << "\ntree: " << t.ToTerm();
}

TEST(IntegrationTest, PaperIntroductionBibliographyExample) {
  // The motivating query of Section 1, on a bibliography document.
  Tree t = MustTree(
      "bib(book(author,title),book(author,author,title),paper(title))");
  Result<xpath::TupleSet> answers = AnswerPpl(
      t,
      "descendant::book[child::author[. is $y] and child::title[. is $z]]",
      {"y", "z"});
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(*answers, (xpath::TupleSet{{2, 3}, {5, 7}, {6, 7}}));
}

TEST(IntegrationTest, RootAnchoredQuery) {
  // Section 2's root-anchoring idiom.
  Tree t = MustTree("a(b(a),c)");
  Result<xpath::TupleSet> answers = AnswerPpl(
      t, ".[. is $x and not parent::*]/descendant::a[. is $y]", {"x", "y"});
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(*answers, (xpath::TupleSet{{0, 2}}));
}

TEST(IntegrationTest, NonPplQueriesAreRejected) {
  Tree t = MustTree("a(b)");
  EXPECT_FALSE(AnswerPpl(t, "$x/$x", {"x"}).ok());
  EXPECT_FALSE(
      AnswerPpl(t, "for $x in child::* return $x", {"x"}).ok());
}

class PipelineCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineCorpusTest, MatchesDirectEvaluator) {
  Tree t1 = MustTree("a(b(c,a),c(a(b),b),b)");
  Tree t2 = MustTree("a(a(a(a)))");
  Tree t3 = MustTree("c(b,b(b),a)");
  ExpectPipelineMatchesDirect(t1, GetParam());
  ExpectPipelineMatchesDirect(t2, GetParam());
  ExpectPipelineMatchesDirect(t3, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PipelineCorpusTest,
    ::testing::Values(
        "child::a[. is $x]",
        "child::a[. is $x]/child::b[. is $y]",
        "descendant::*[child::a[. is $x] and child::b[. is $y]]",
        "child::a[. is $x] union descendant::b[. is $x]",
        "child::a[$x is $y]",
        "$x/child::a[. is $y]",
        "descendant::a[. is $x or not child::b]",
        "(child::a except child::b)[. is $x]",
        "child::a[not child::b][. is $x]/following_sibling::*[. is $y]",
        "descendant::*[child::a[. is $x] or child::c[. is $x]]"
        "/child::b[. is $y]",
        "$x", ".", "child::*",
        "child::a[child::b[. is $u] and child::c[. is $v]]"
        "/descendant::b[. is $w]"));

// Random PPL expressions: generate HCL-(L)-style queries with disjoint
// variable partitions, translate into PPL via Prop. 5, run both pipelines.
class PipelineRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

xpath::PathPtr RandomPpl(Rng& rng, std::vector<std::string> available,
                         int depth) {
  using xpath::PathExpr;
  using xpath::TestExpr;
  if (depth <= 0 || rng.Chance(1, 4)) {
    if (!available.empty() && rng.Chance(1, 2)) {
      // .[. is $x] or $x
      const std::string& var = available[rng.Below(available.size())];
      if (rng.Chance(1, 2)) return PathExpr::Var(var);
      return PathExpr::Filter(
          PathExpr::Dot(),
          TestExpr::Is(xpath::NodeRef::Dot(), xpath::NodeRef::Var(var)));
    }
    if (rng.Chance(1, 6)) return PathExpr::Dot();
    return PathExpr::Step(kAllAxes[rng.Below(kAllAxes.size())],
                          rng.Chance(1, 3) ? "*"
                                           : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(4)) {
    case 0: {  // composition with split variables (NVS(/))
      std::vector<std::string> left, right;
      for (auto& v : available) (rng.Chance(1, 2) ? left : right).push_back(v);
      return PathExpr::Compose(RandomPpl(rng, left, depth - 1),
                               RandomPpl(rng, right, depth - 1));
    }
    case 1:  // union shares variables freely
      return PathExpr::Union(RandomPpl(rng, available, depth - 1),
                             RandomPpl(rng, available, depth - 1));
    case 2: {  // filter with split variables (NVS([]))
      std::vector<std::string> left, right;
      for (auto& v : available) (rng.Chance(1, 2) ? left : right).push_back(v);
      return PathExpr::Filter(
          RandomPpl(rng, left, depth - 1),
          TestExpr::Path(RandomPpl(rng, right, depth - 1)));
    }
    default:  // variable-free negated filter (NV(not))
      return PathExpr::Filter(
          RandomPpl(rng, available, depth - 1),
          TestExpr::Not(TestExpr::Path(RandomPpl(rng, {}, depth - 1))));
  }
}

TEST_P(PipelineRandomTest, RandomPplAgreesWithDirect) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(7);
    Tree t = RandomTree(rng, opts);
    xpath::PathPtr p = RandomPpl(rng, {"x", "y"}, 3);
    ASSERT_TRUE(xpath::CheckPpl(*p).ok()) << p->ToString();
    ExpectPipelineMatchesDirect(t, p->ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRandomTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// The parse -> print -> parse loop composed with the full pipeline:
// guards against printer/parser drift on machine-generated queries.
TEST(IntegrationTest, PrintedQueriesReparseAndAgree) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    xpath::PathPtr p = RandomPpl(rng, {"x"}, 3);
    Result<xpath::PathPtr> reparsed = xpath::ParsePath(p->ToString());
    ASSERT_TRUE(reparsed.ok()) << p->ToString() << ": " << reparsed.status();
    EXPECT_TRUE(p->Equals(**reparsed)) << p->ToString();
  }
}

// Output sensitivity sanity check: a selective query on a larger tree goes
// through the polynomial pipeline without touching |t|^n assignments.
// (The naive evaluator would need 90000 evaluations here; the pipeline is
// exercised standalone and validated on selectivity.)
TEST(IntegrationTest, SelectiveQueryOnLargerTree) {
  Rng rng(4242);
  Tree t = BibliographyTree(rng, 60);  // a few hundred nodes
  Result<xpath::TupleSet> answers = AnswerPpl(
      t,
      "descendant::book[child::author[. is $y] and child::title[. is $z]]",
      {"y", "z"});
  ASSERT_TRUE(answers.ok());
  // One (author,title) pair per author; 60 books with 1..3 authors.
  ASSERT_FALSE(answers->empty());
  EXPECT_GE(answers->size(), 60u);
  EXPECT_LE(answers->size(), 180u);
  // Every answer is an (author, title) node pair within one book.
  for (const auto& tuple : *answers) {
    ASSERT_EQ(tuple.size(), 2u);
    EXPECT_EQ(t.label_name(tuple[0]), "author");
    EXPECT_EQ(t.label_name(tuple[1]), "title");
    EXPECT_EQ(t.parent(tuple[0]), t.parent(tuple[1]));
  }
}

}  // namespace
}  // namespace xpv
