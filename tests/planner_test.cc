// Differential property suite for the cost-based, result-shape-aware
// query planner (engine/planner.h) and the monadic row-restricted engine
// entry points it dispatches to.
//
// The planner's contract: the cost model may pick *any* admissible
// engine, and a caller may request *any* result shape, without the answer
// changing. So for seeded random (tree, query, shape) triples, every
// admissible plan choice (forced via QueryJob::engine_override) and every
// shape must produce results consistent with the full-relation
// matrix-engine ground truth, byte-identical at 1, 2 and 8 threads.
#include <iterator>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/planner.h"
#include "engine/query_service.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"
#include "ppl/pplbin.h"
#include "tree/generators.h"

namespace xpv {
namespace {

using engine::EnginePlan;
using engine::ExecutionPlan;
using engine::ResultShape;

constexpr ResultShape kAllShapes[] = {
    ResultShape::kFullRelation,
    ResultShape::kFromRootSet,
    ResultShape::kBoolean,
    ResultShape::kCount,
};

ppl::PplBinPtr RandomPplBin(Rng& rng, int depth, bool allow_complement) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    if (rng.Chance(1, 5)) return ppl::PplBinExpr::Self();
    return ppl::PplBinExpr::Step(
        kAllAxes[rng.Below(kAllAxes.size())],
        rng.Chance(1, 3) ? "*" : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(allow_complement ? 4u : 3u)) {
    case 0:
      return ppl::PplBinExpr::Compose(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 1:
      return ppl::PplBinExpr::Union(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 2:
      return ppl::PplBinExpr::Filter(
          RandomPplBin(rng, depth - 1, allow_complement));
    default:
      return ppl::PplBinExpr::Complement(
          RandomPplBin(rng, depth - 1, allow_complement));
  }
}

Tree MakeRandomTree(Rng& rng) {
  RandomTreeOptions opts;
  opts.num_nodes = 4 + rng.Below(28);
  opts.alphabet_size = 3;
  return RandomTree(rng, opts);
}

/// Ground truth for every shape: the full relation from the matrix
/// engine's bottom-up Section 4 evaluation.
BitMatrix GroundTruth(const Tree& t, const ppl::PplBinExpr& p) {
  ppl::MatrixEngine eng(t);
  return eng.Evaluate(p);
}

/// Checks one QueryResult against the ground-truth relation under the
/// requested shape's payload contract.
void ExpectShapeConsistent(const engine::QueryResult& result,
                           ResultShape shape, const Tree& t,
                           const BitMatrix& truth, const std::string& ctx) {
  ASSERT_TRUE(result.status.ok()) << ctx << ": " << result.status;
  const BitVector root_row = truth.Row(t.root());
  switch (shape) {
    case ResultShape::kFullRelation:
      EXPECT_EQ(result.relation, truth) << ctx;
      EXPECT_EQ(result.from_root, root_row) << ctx;
      break;
    case ResultShape::kFromRootSet:
      EXPECT_EQ(result.from_root, root_row) << ctx;
      EXPECT_EQ(result.relation.size(), 0u) << ctx;
      break;
    case ResultShape::kBoolean:
      EXPECT_EQ(result.boolean, root_row.Any()) << ctx;
      break;
    case ResultShape::kCount:
      EXPECT_EQ(result.count, root_row.Count()) << ctx;
      break;
  }
}

// ----------------------------------------- engine-level monadic kernels

class PlannerDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerDifferentialTest, MatrixImagePreimageDomainMatchRelation) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/true);
    ppl::MatrixEngine eng(t);
    const BitMatrix truth = eng.Evaluate(*p);
    // A random node set, sometimes empty, sometimes full.
    BitVector from(t.size());
    for (NodeId v = 0; v < t.size(); ++v) {
      if (rng.Chance(1, 3)) from.Set(v);
    }
    if (rng.Chance(1, 10)) from.Clear();
    EXPECT_EQ(eng.Image(*p, from).value(), truth.ImageOf(from))
        << "query: " << p->ToString() << "\ntree: " << t.ToTerm();
    EXPECT_EQ(eng.Preimage(*p, from).value(), truth.Transpose().ImageOf(from))
        << "query: " << p->ToString() << "\ntree: " << t.ToTerm();
    EXPECT_EQ(eng.Domain(*p).value(), truth.NonEmptyRows())
        << "query: " << p->ToString() << "\ntree: " << t.ToTerm();
  }
}

TEST_P(PlannerDifferentialTest, GkpFromNodeMatchesRelationRows) {
  Rng rng(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/false);
    ASSERT_TRUE(p->IsPositive());
    ppl::GkpEngine gkp(t);
    const BitMatrix truth = GroundTruth(t, *p);
    Result<BitMatrix> rel = gkp.Relation(*p);
    ASSERT_TRUE(rel.ok()) << rel.status();
    EXPECT_EQ(*rel, truth) << "query: " << p->ToString();
    const NodeId u = static_cast<NodeId>(rng.Below(t.size()));
    Result<BitVector> image = gkp.EvaluateFromNode(*p, u);
    ASSERT_TRUE(image.ok()) << image.status();
    EXPECT_EQ(*image, truth.Row(u))
        << "query: " << p->ToString() << " node " << u;
    ppl::MatrixEngine matrix(t);
    EXPECT_EQ(matrix.EvaluateFromNode(*p, u).value(), truth.Row(u));
  }
}

// ------------------------- every admissible plan x shape x thread count

TEST_P(PlannerDifferentialTest, AllPlansAndShapesAgreeWithGroundTruth) {
  Rng rng(GetParam() ^ 0x91a);
  for (int trial = 0; trial < 8; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/true);
    const std::string text = ppl::ToXPath(*p)->ToString();
    const BitMatrix truth = GroundTruth(t, *p);

    auto compiled = engine::CompileQuery(text);
    ASSERT_TRUE(compiled.ok()) << text << ": " << compiled.status();

    // Jobs: planner's own choice plus every admissible engine forced,
    // crossed with every shape.
    std::vector<engine::QueryJob> jobs;
    std::vector<ResultShape> job_shapes;
    for (ResultShape shape : kAllShapes) {
      engine::QueryJob job;
      job.tree = &t;
      job.query = text;
      job.shape = shape;
      jobs.push_back(job);
      job_shapes.push_back(shape);
      for (EnginePlan forced : (*compiled)->admissible) {
        job.engine_override = forced;
        jobs.push_back(job);
        job_shapes.push_back(shape);
      }
    }

    std::vector<std::vector<engine::QueryResult>> per_thread_count;
    for (std::size_t threads : {1u, 2u, 8u}) {
      engine::QueryService service({.num_threads = threads});
      per_thread_count.push_back(service.EvaluateBatch(jobs));
      const auto& results = per_thread_count.back();
      ASSERT_EQ(results.size(), jobs.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        std::string ctx = "threads=" + std::to_string(threads) + " job " +
                          std::to_string(i) + " plan " +
                          results[i].plan.DebugString() + "\nquery: " + text +
                          "\ntree: " + t.ToTerm();
        ExpectShapeConsistent(results[i], job_shapes[i], t, truth, ctx);
        // A forced engine must actually be the one that ran.
        if (jobs[i].engine_override.has_value()) {
          EXPECT_EQ(results[i].plan.engine, *jobs[i].engine_override) << ctx;
        }
      }
    }
    // Byte-identical across thread counts.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      for (std::size_t tc = 1; tc < per_thread_count.size(); ++tc) {
        EXPECT_TRUE(per_thread_count[0][i].plan == per_thread_count[tc][i].plan);
        EXPECT_EQ(per_thread_count[0][i].relation,
                  per_thread_count[tc][i].relation);
        EXPECT_EQ(per_thread_count[0][i].from_root,
                  per_thread_count[tc][i].from_root);
        EXPECT_EQ(per_thread_count[0][i].boolean,
                  per_thread_count[tc][i].boolean);
        EXPECT_EQ(per_thread_count[0][i].count, per_thread_count[tc][i].count);
      }
    }
  }
}

// ------------------- every representation x engine x shape x threads

constexpr MatrixRepr kAllReprs[] = {
    MatrixRepr::kDense,
    MatrixRepr::kSparse,
    MatrixRepr::kAuto,
};

TEST_P(PlannerDifferentialTest, AllReprsAndShapesAgreeWithGroundTruth) {
  Rng rng(GetParam() ^ 0xc0de);
  for (int trial = 0; trial < 5; ++trial) {
    Tree t = MakeRandomTree(rng);
    ppl::PplBinPtr p = RandomPplBin(rng, 3, /*allow_complement=*/true);
    const std::string text = ppl::ToXPath(*p)->ToString();
    const BitMatrix truth = GroundTruth(t, *p);

    auto compiled = engine::CompileQuery(text);
    ASSERT_TRUE(compiled.ok()) << text << ": " << compiled.status();

    // Jobs: every forced representation, alone (which routes to the
    // matrix engine) and crossed with every admissible forced engine and
    // every shape. Results must be byte-identical to the dense ground
    // truth regardless of the representation the kernels composed in.
    std::vector<engine::QueryJob> jobs;
    std::vector<ResultShape> job_shapes;
    for (ResultShape shape : kAllShapes) {
      for (MatrixRepr repr : kAllReprs) {
        engine::QueryJob job;
        job.tree = &t;
        job.query = text;
        job.shape = shape;
        job.repr_override = repr;
        jobs.push_back(job);
        job_shapes.push_back(shape);
        for (engine::EnginePlan forced : (*compiled)->admissible) {
          job.engine_override = forced;
          jobs.push_back(job);
          job_shapes.push_back(shape);
        }
      }
    }

    std::vector<std::vector<engine::QueryResult>> per_thread_count;
    for (std::size_t threads : {1u, 2u, 8u}) {
      engine::QueryService service({.num_threads = threads});
      per_thread_count.push_back(service.EvaluateBatch(jobs));
      const auto& results = per_thread_count.back();
      ASSERT_EQ(results.size(), jobs.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        std::string ctx = "threads=" + std::to_string(threads) + " repr=" +
                          std::string(MatrixReprName(*jobs[i].repr_override)) +
                          " job " + std::to_string(i) + " plan " +
                          results[i].plan.DebugString() + "\nquery: " + text +
                          "\ntree: " + t.ToTerm();
        ExpectShapeConsistent(results[i], job_shapes[i], t, truth, ctx);
        // Small trees always densify the payload; the sparse handoff is
        // reserved for trees above the dense ceiling.
        EXPECT_EQ(results[i].relation_sparse, nullptr) << ctx;
        if (!jobs[i].engine_override.has_value()) {
          // A bare repr override must route to the matrix engine and pin
          // the representation it asked for.
          EXPECT_EQ(results[i].plan.engine, EnginePlan::kMatrixGeneral)
              << ctx;
          EXPECT_EQ(results[i].plan.repr, *jobs[i].repr_override) << ctx;
        }
      }
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      for (std::size_t tc = 1; tc < per_thread_count.size(); ++tc) {
        EXPECT_TRUE(per_thread_count[0][i].plan ==
                    per_thread_count[tc][i].plan);
        EXPECT_EQ(per_thread_count[0][i].relation,
                  per_thread_count[tc][i].relation);
        EXPECT_EQ(per_thread_count[0][i].from_root,
                  per_thread_count[tc][i].from_root);
        EXPECT_EQ(per_thread_count[0][i].boolean,
                  per_thread_count[tc][i].boolean);
        EXPECT_EQ(per_thread_count[0][i].count, per_thread_count[tc][i].count);
      }
    }
  }
}

// Forcing a representation on an n-ary query is meaningless: rejected.
TEST(PlannerReprOverrideTest, NaryQueriesRejectReprOverrides) {
  Tree t = *Tree::ParseTerm("a(b,c)");
  engine::QueryService service({.num_threads = 1});
  engine::QueryJob job;
  job.tree = &t;
  job.query = "descendant::b/$x";
  job.repr_override = MatrixRepr::kSparse;
  std::vector<engine::QueryResult> results = service.EvaluateBatch({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
}

// Full relations above the dense ceiling: the sparse crossover must hand
// back a run-list relation whose rows match an independent oracle -- the
// GKP engine's posting-list evaluation, which shares no matrix code.
TEST(SparseFullRelationTest, OversizedTreeMatchesSubsampledOracleRows) {
  Rng rng(404);
  RandomTreeOptions opts;
  opts.num_nodes = (1u << 16) + 123;  // 65659 nodes, 2x the dense ceiling
  opts.alphabet_size = 3;
  Tree t = RandomTree(rng, opts);
  ASSERT_GT(t.size(), 2 * BitMatrix::kMaxDenseNodes);
  engine::QueryService service({.num_threads = 1});

  const std::string text = "descendant::a/child::b";
  engine::QueryResult full =
      service.Evaluate(t, text, ResultShape::kFullRelation);
  ASSERT_TRUE(full.status.ok())
      << full.status << " " << full.plan.DebugString();
  ASSERT_NE(full.relation_sparse, nullptr) << full.plan.DebugString();
  EXPECT_EQ(full.plan.repr, MatrixRepr::kSparse);
  EXPECT_EQ(full.relation.size(), 0u);
  EXPECT_EQ(full.from_root, full.relation_sparse->Row(t.root()));

  auto compiled = engine::CompileQuery(text);
  ASSERT_TRUE(compiled.ok());
  ppl::GkpEngine gkp(t);
  for (int sample = 0; sample < 16; ++sample) {
    const NodeId u = static_cast<NodeId>(rng.Below(t.size()));
    Result<BitVector> row = gkp.EvaluateFromNode(*(*compiled)->pplbin, u);
    ASSERT_TRUE(row.ok()) << row.status();
    EXPECT_EQ(full.relation_sparse->Row(u), *row) << "row " << u;
  }

  // A set difference (general complement) above the ceiling: subsampled
  // rows must equal the positive oracle rows combined by hand.
  engine::QueryResult exc = service.Evaluate(
      t, "descendant::a except child::a", ResultShape::kFullRelation);
  ASSERT_TRUE(exc.status.ok()) << exc.status << " " << exc.plan.DebugString();
  ASSERT_NE(exc.relation_sparse, nullptr);
  auto desc = engine::CompileQuery("descendant::a");
  auto child = engine::CompileQuery("child::a");
  ASSERT_TRUE(desc.ok() && child.ok());
  for (int sample = 0; sample < 8; ++sample) {
    const NodeId u = static_cast<NodeId>(rng.Below(t.size()));
    Result<BitVector> d = gkp.EvaluateFromNode(*(*desc)->pplbin, u);
    Result<BitVector> c = gkp.EvaluateFromNode(*(*child)->pplbin, u);
    ASSERT_TRUE(d.ok() && c.ok());
    BitVector expected(t.size());
    for (std::size_t v = 0; v < t.size(); ++v) {
      if (d->Get(v) && !c->Get(v)) expected.Set(v);
    }
    EXPECT_EQ(exc.relation_sparse->Row(u), expected) << "row " << u;
  }
}

// The run-shape estimate is averages-only and predicts n runs per row
// for a composed step on a deep path (it cannot see that the gathered
// runs coalesce into one) -- the planner must still cross over above
// the ceiling and let the engine's run budget be the bound, not refuse
// on the estimate. Regression: this exact shape was refused once.
TEST(SparseFullRelationTest, DeepPathComposeCrossesOverDespiteEstimate) {
  Tree t = PathTree(BitMatrix::kMaxDenseNodes + 10);
  auto compiled = engine::CompileQuery("descendant::a/child::a");
  ASSERT_TRUE(compiled.ok());
  ExecutionPlan plan =
      engine::PlanQuery(**compiled, t, ResultShape::kFullRelation);
  EXPECT_EQ(plan.engine, EnginePlan::kMatrixGeneral) << plan.DebugString();
  EXPECT_EQ(plan.repr, MatrixRepr::kSparse) << plan.DebugString();
  EXPECT_FALSE(engine::PlanRequiresDenseRelation(**compiled, plan));

  // End to end: the relation is the second-superdiagonal triangle
  // {(u, v) : v >= u + 2} -- one run per row, despite the estimate.
  const std::size_t n = t.size();
  engine::QueryService service({.num_threads = 1});
  engine::QueryResult full =
      service.Evaluate(t, "descendant::a/child::a", ResultShape::kFullRelation);
  ASSERT_TRUE(full.status.ok())
      << full.status << " " << full.plan.DebugString();
  ASSERT_NE(full.relation_sparse, nullptr);
  EXPECT_EQ(full.relation_sparse->Count(), (n - 1) * (n - 2) / 2);
  EXPECT_EQ(full.relation_sparse->num_runs(), n - 2);
  EXPECT_TRUE(full.relation_sparse->Get(0, n - 1));
  EXPECT_FALSE(full.relation_sparse->Get(0, 1));
}

// N-ary queries: shapes derive from the tuple set.
TEST(PlannerNaryShapeTest, ShapesDeriveFromTupleSet) {
  Tree t = *Tree::ParseTerm("a(b(c),b,c(b(a)))");
  engine::QueryService service({.num_threads = 2});
  const std::string text = "descendant::b/$x";
  engine::QueryResult full =
      service.Evaluate(t, text, ResultShape::kFullRelation);
  ASSERT_TRUE(full.status.ok()) << full.status;
  ASSERT_EQ(full.plan.engine, EnginePlan::kNaryAnswer);
  ASSERT_FALSE(full.tuples.empty());

  engine::QueryResult from_root =
      service.Evaluate(t, text, ResultShape::kFromRootSet);
  EXPECT_EQ(from_root.tuples, full.tuples);

  engine::QueryResult boolean =
      service.Evaluate(t, text, ResultShape::kBoolean);
  EXPECT_TRUE(boolean.boolean);
  EXPECT_TRUE(boolean.tuples.empty());

  engine::QueryResult count = service.Evaluate(t, text, ResultShape::kCount);
  EXPECT_EQ(count.count, full.tuples.size());
}

// --------------------------------------------------- cost-model behavior

TEST(PlannerCostModelTest, SmallTreesRunOnMatrixLargeTreesOnGkp) {
  // A positive query admits both engines; the matrix engine wins while a
  // whole row fits in one 64-bit word, the GKP engine wins at scale.
  auto compiled = engine::CompileQuery("descendant::*/child::*");
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE((*compiled)->positive);

  Rng rng(99);
  RandomTreeOptions small_opts;
  small_opts.num_nodes = 16;
  Tree small = RandomTree(rng, small_opts);
  ExecutionPlan small_plan =
      engine::PlanQuery(**compiled, small, ResultShape::kFullRelation);
  EXPECT_EQ(small_plan.engine, EnginePlan::kMatrixGeneral)
      << small_plan.DebugString();

  RandomTreeOptions large_opts;
  large_opts.num_nodes = 1500;
  Tree large = RandomTree(rng, large_opts);
  ExecutionPlan large_plan =
      engine::PlanQuery(**compiled, large, ResultShape::kFullRelation);
  EXPECT_EQ(large_plan.engine, EnginePlan::kGkpPositive)
      << large_plan.DebugString();
  EXPECT_GT(large_plan.alternative_cost, large_plan.cost);

  // Monadic shapes always take the row-restricted fast path.
  ExecutionPlan monadic =
      engine::PlanQuery(**compiled, large, ResultShape::kFromRootSet);
  EXPECT_TRUE(monadic.row_restricted);
  EXPECT_EQ(monadic.engine, EnginePlan::kGkpPositive);
  EXPECT_LT(monadic.cost, large_plan.cost);
}

TEST(PlannerCostModelTest, SelectiveLabelsShrinkTheGkpDomainEstimate) {
  // One rare label vs a wildcard: the domain bound -- hence the estimated
  // full-relation cost -- must shrink with the posting list.
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_nodes = 400;
  opts.alphabet_size = 3;
  Tree t = RandomTree(rng, opts);

  auto rare = engine::CompileQuery("child::zzz/descendant::*");
  auto wild = engine::CompileQuery("child::*/descendant::*");
  ASSERT_TRUE(rare.ok());
  ASSERT_TRUE(wild.ok());
  ExecutionPlan rare_plan =
      engine::PlanQuery(**rare, t, ResultShape::kFullRelation);
  ExecutionPlan wild_plan =
      engine::PlanQuery(**wild, t, ResultShape::kFullRelation);
  ASSERT_EQ(t.LabelFrequency("zzz"), 0u);
  EXPECT_LT(rare_plan.cost, wild_plan.cost)
      << rare_plan.DebugString() << " vs " << wild_plan.DebugString();
}

TEST(PlannerCostModelTest, TreeStatsArePrecomputed) {
  Tree t = *Tree::ParseTerm("a(b(c,c,c),b,a(b))");
  const TreeStats& s = t.Stats();
  EXPECT_EQ(s.node_count, 8u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.max_fanout, 3u);
  EXPECT_EQ(s.alphabet_size, 3u);
  EXPECT_EQ(s.max_label_posting, 3u);  // three b's (and three c's)
  EXPECT_EQ(s.min_label_posting, 2u);  // two a's
  EXPECT_EQ(t.LabelFrequency("b"), 3u);
  EXPECT_EQ(t.LabelFrequency("nope"), 0u);
}

// ----------------------------------------------------------- plan memo

TEST(PlanMemoTest, DocumentStoreMemoizesPlansPerShape) {
  engine::DocumentStore store;
  Rng rng(5);
  RandomTreeOptions opts;
  opts.num_nodes = 64;
  engine::DocumentId id = store.Insert(RandomTree(rng, opts));
  engine::QueryService service({.num_threads = 2, .document_store = &store});

  std::shared_ptr<engine::PlanMemo> memo = store.PlanMemoFor(id);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->size(), 0u);

  const std::string text = "descendant::a[child::b]";
  ASSERT_TRUE(service.Evaluate(id, text).status.ok());
  EXPECT_EQ(memo->size(), 1u);
  // Same (text, shape) again: a memo hit, no new entry.
  ASSERT_TRUE(service.Evaluate(id, text).status.ok());
  EXPECT_EQ(memo->size(), 1u);
  EXPECT_GE(memo->hits(), 1u);
  // A different shape is a distinct plan.
  ASSERT_TRUE(
      service.Evaluate(id, text, ResultShape::kFromRootSet).status.ok());
  EXPECT_EQ(memo->size(), 2u);
  // Unknown documents have no memo.
  EXPECT_EQ(store.PlanMemoFor(engine::DocumentId{999}), nullptr);
}

TEST(PlanMemoTest, BoundedInsertion) {
  engine::PlanMemo memo(/*max_entries=*/2);
  ExecutionPlan plan;
  memo.Insert("a", ResultShape::kBoolean, plan);
  memo.Insert("b", ResultShape::kBoolean, plan);
  memo.Insert("c", ResultShape::kBoolean, plan);  // over the bound: dropped
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_TRUE(memo.Lookup("a", ResultShape::kBoolean).has_value());
  EXPECT_FALSE(memo.Lookup("c", ResultShape::kBoolean).has_value());
  // Shape is part of the key.
  EXPECT_FALSE(memo.Lookup("a", ResultShape::kCount).has_value());
}

// ------------------------------------------------- regression: null store

TEST(NullStoreRegressionTest, DocumentJobsWithoutStoreAreInvalidArgument) {
  // A service with no DocumentStore must reject DocumentId jobs with a
  // clear InvalidArgument on both the single-query and the batch paths
  // (regression: must not crash or silently fail).
  engine::QueryService service({.num_threads = 1});
  engine::QueryResult single = service.Evaluate(engine::DocumentId{7}, "a");
  EXPECT_EQ(single.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(single.status.message().find("no DocumentStore"),
            std::string::npos)
      << single.status;

  engine::QueryJob job;
  job.document = 7;
  job.query = "child::a";
  std::vector<engine::QueryResult> batch = service.EvaluateBatch({job, job});
  ASSERT_EQ(batch.size(), 2u);
  for (const engine::QueryResult& r : batch) {
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status.message().find("no DocumentStore"), std::string::npos);
  }
}

TEST(NullStoreRegressionTest, OverrideMustBeAdmissible) {
  Tree t = *Tree::ParseTerm("a(b)");
  engine::QueryService service({.num_threads = 1});
  engine::QueryJob job;
  job.tree = &t;
  job.query = "child::* except child::a";  // general: GKP inadmissible
  job.engine_override = EnginePlan::kGkpPositive;
  std::vector<engine::QueryResult> results = service.EvaluateBatch({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------- name-helper hygiene

TEST(NameHelperTest, EveryEnumeratorHasADistinctName) {
  const EnginePlan engines[] = {EnginePlan::kGkpPositive,
                                EnginePlan::kMatrixGeneral,
                                EnginePlan::kNaryAnswer};
  std::set<std::string_view> engine_names;
  for (EnginePlan e : engines) {
    std::string_view name = engine::EnginePlanName(e);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    engine_names.insert(name);
  }
  EXPECT_EQ(engine_names.size(), std::size(engines));

  std::set<std::string_view> shape_names;
  for (ResultShape s : kAllShapes) {
    std::string_view name = engine::ResultShapeName(s);
    EXPECT_FALSE(name.empty());
    shape_names.insert(name);
  }
  EXPECT_EQ(shape_names.size(), std::size(kAllShapes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xpv
