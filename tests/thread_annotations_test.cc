// Pins the portability contract of common/thread_annotations.h: on any
// compiler without clang's thread-safety attributes, every XPV_* macro
// must expand to *nothing* -- annotated code compiles identically to
// unannotated code, costs nothing at runtime, and stays legal in every
// declaration position the codebase uses the macros in.
//
// The positive half of the contract (clang actually rejecting a
// violated lock discipline) cannot run under GTest -- it is a
// compile-time failure by design. The thread-safety-analysis CI job
// covers it by compiling all of src/ with clang -Wthread-safety
// -Werror; the commented exemplar at the bottom of this file documents
// exactly what that job would reject.
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gtest/gtest.h"

namespace xpv {
namespace {

// Every macro, used in every position the codebase uses it. The test is
// that this file compiles on GCC (where all of these must vanish) and
// under clang -Wthread-safety (where they must all be *consistent*).
class AnnotatedCounter {
 public:
  void Add(int delta) XPV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += delta;
  }

  int Value() const XPV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

  void AddLocked(int delta) XPV_REQUIRES(mu_) { value_ += delta; }

  Mutex& mutex() XPV_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable Mutex mu_;
  int value_ XPV_GUARDED_BY(mu_) = 0;
  std::string* note_ XPV_PT_GUARDED_BY(mu_) = nullptr;
};

inline LockOrderToken kTestOrderToken;

class OrderedPair {
 public:
  void Touch() XPV_EXCLUDES(first_, second_) {
    MutexLock a(first_);
    MutexLock b(second_);
    ++generation_;
    ++payload_;
  }

 private:
  Mutex first_ XPV_ACQUIRED_BEFORE(kTestOrderToken);
  Mutex second_ XPV_ACQUIRED_AFTER(kTestOrderToken);
  int generation_ XPV_GUARDED_BY(first_) = 0;
  int payload_ XPV_GUARDED_BY(second_) = 0;
};

// Expands macro arguments before stringifying, so a macro that expands
// to nothing stringifies to "".
#define XPV_TEST_STR_INNER(...) #__VA_ARGS__
#define XPV_TEST_STR(...) XPV_TEST_STR_INNER(__VA_ARGS__)

TEST(ThreadAnnotationsTest, MacrosExpandToNothingWithoutClangAnalysis) {
#if !defined(__clang__)
  // The no-op branch must leave nothing behind: a macro that expanded to
  // any token at all would have broken the declarations above, so
  // getting here IS most of the test. Pin the emptiness explicitly
  // anyway -- stringification catches a future edit that makes the
  // no-op branch expand to a stray attribute.
  EXPECT_STREQ("", XPV_TEST_STR(XPV_GUARDED_BY(mu_)));
  EXPECT_STREQ("", XPV_TEST_STR(XPV_REQUIRES(mu_)));
  EXPECT_STREQ("", XPV_TEST_STR(XPV_CAPABILITY("mutex")));
  EXPECT_STREQ("", XPV_TEST_STR(XPV_ACQUIRED_BEFORE(kTestOrderToken)));
  EXPECT_STREQ("", XPV_TEST_STR(XPV_NO_THREAD_SAFETY_ANALYSIS));
#endif
  SUCCEED();
}

TEST(ThreadAnnotationsTest, AnnotatedCodeBehavesIdentically) {
  AnnotatedCounter counter;
  counter.Add(3);
  {
    MutexLock lock(counter.mutex());
    counter.AddLocked(4);
  }
  EXPECT_EQ(counter.Value(), 7);

  OrderedPair pair;
  pair.Touch();
}

// Negative exemplar -- what the thread-safety-analysis CI job rejects.
// Uncommenting this function and compiling with
//
//   clang++ -Wthread-safety -Werror=thread-safety -Isrc -fsyntax-only \
//       tests/thread_annotations_test.cc
//
// fails with "writing variable 'value_' requires holding mutex 'mu_'
// exclusively": AddLocked's XPV_REQUIRES contract is violated because
// no lock is held at the call site. Kept commented (not #ifdef'd out)
// so the file never gates a build on a deliberately broken function.
//
// void BrokenUnlockedAccess(AnnotatedCounter& counter) {
//   counter.AddLocked(1);  // error: requires holding counter.mu_
// }

}  // namespace
}  // namespace xpv
