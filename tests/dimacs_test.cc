// Tests for the DIMACS CNF parser/serializer used by the Proposition 3
// tooling.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fo/sat_reduction.h"

namespace xpv::fo {
namespace {

TEST(DimacsTest, ParsesBasicFile) {
  Result<CnfFormula> cnf = ParseDimacs(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  ASSERT_TRUE(cnf.ok()) << cnf.status();
  EXPECT_EQ(cnf->num_vars, 3);
  ASSERT_EQ(cnf->clauses.size(), 2u);
  EXPECT_EQ(cnf->clauses[0], (std::vector<int>{1, -2}));
  EXPECT_EQ(cnf->clauses[1], (std::vector<int>{2, 3}));
}

TEST(DimacsTest, MultipleClausesPerLine) {
  Result<CnfFormula> cnf = ParseDimacs("p cnf 2 2\n1 0 -1 2 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->clauses[0], (std::vector<int>{1}));
  EXPECT_EQ(cnf->clauses[1], (std::vector<int>{-1, 2}));
}

TEST(DimacsTest, EmptyClause) {
  Result<CnfFormula> cnf = ParseDimacs("p cnf 1 1\n0\n");
  ASSERT_TRUE(cnf.ok());
  ASSERT_EQ(cnf->clauses.size(), 1u);
  EXPECT_TRUE(cnf->clauses[0].empty());
  EXPECT_FALSE(BruteForceSat(*cnf));
}

TEST(DimacsTest, Errors) {
  EXPECT_FALSE(ParseDimacs("").ok());                       // no header
  EXPECT_FALSE(ParseDimacs("1 0\n").ok());                  // clause first
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n1\n").ok());         // missing 0
  EXPECT_FALSE(ParseDimacs("p cnf 1 2\n1 0\n").ok());       // count mismatch
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n5 0\n").ok());       // var overflow
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\nx 0\n").ok());       // bad literal
  EXPECT_FALSE(ParseDimacs("p dnf 1 1\n1 0\n").ok());       // wrong format
}

TEST(DimacsTest, RoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula cnf = RandomCnf(rng, 2 + static_cast<int>(rng.Below(8)),
                               1 + static_cast<int>(rng.Below(10)), 3);
    Result<CnfFormula> back = ParseDimacs(ToDimacs(cnf));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->num_vars, cnf.num_vars);
    EXPECT_EQ(back->clauses, cnf.clauses);
  }
}

TEST(DimacsTest, ParsedFormulaFeedsReduction) {
  Result<CnfFormula> cnf = ParseDimacs("p cnf 2 2\n1 2 0\n-1 -2 0\n");
  ASSERT_TRUE(cnf.ok());
  SatReduction red = ReduceSatToQueryNonEmptiness(*cnf);
  EXPECT_EQ(red.tree.size(), 7u);
  EXPECT_EQ(red.tuple_vars.size(), 2u);
}

}  // namespace
}  // namespace xpv::fo
