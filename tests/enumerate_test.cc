// Tests for the answer enumerator (the paper's closing open question on
// enumeration algorithms) and for the E11 ablation switches of the Fig. 8
// algorithm (MC filtering / memoization off preserve correctness).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fo/acq.h"
#include "fo/enumerate.h"
#include "hcl/answer.h"
#include "tree/generators.h"

namespace xpv::fo {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

CqAtom Atom(Axis axis, std::string name, std::string x, std::string y) {
  return {hcl::MakeAxisQuery(axis, std::move(name)), std::move(x),
          std::move(y)};
}

xpath::TupleSet Drain(AcqEnumerator& e) {
  xpath::TupleSet out;
  while (auto tuple = e.Next()) out.insert(*tuple);
  return out;
}

TEST(AcqEnumeratorTest, MatchesBatchAnswerOnChain) {
  Tree t = MustTree("a(b(c),b(c,c),d)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "c", "y", "z"));
  q.output_vars = {"x", "y", "z"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(Drain(*e), *AnswerAcqYannakakis(t, q));
  EXPECT_EQ(e->produced(), 3u);
}

TEST(AcqEnumeratorTest, ProjectionDeduplicates) {
  Tree t = MustTree("a(b,b,b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.output_vars = {"x"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(Drain(*e), (xpath::TupleSet{{0}}));
  EXPECT_EQ(e->produced(), 1u);
}

TEST(AcqEnumeratorTest, EmptyQueryYieldsEmptyTupleOnce) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;  // no atoms, no outputs: trivially true once
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  auto first = e->Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->empty());
  EXPECT_FALSE(e->Next().has_value());
}

TEST(AcqEnumeratorTest, UnsatisfiableYieldsNothing) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "zzz", "x", "y"));
  q.output_vars = {"x"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->Next().has_value());
  EXPECT_FALSE(e->Next().has_value());  // stays exhausted
}

TEST(AcqEnumeratorTest, RejectsCyclicQueries) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "z"));
  EXPECT_FALSE(AcqEnumerator::Create(t, q).ok());
}

class AcqEnumeratorRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcqEnumeratorRandomTest, AgreesWithYannakakis) {
  Rng rng(GetParam());
  const std::vector<std::string> var_names = {"x", "y", "z", "w"};
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(10);
    Tree t = RandomTree(rng, opts);
    ConjunctiveQuery q;
    std::size_t num_vars = 2 + rng.Below(3);
    for (std::size_t i = 1; i < num_vars; ++i) {
      q.atoms.push_back(Atom(kAllAxes[rng.Below(kAllAxes.size())],
                             rng.Chance(1, 3) ? "*"
                                              : GeneratorLabel(rng.Below(2)),
                             var_names[rng.Below(i)], var_names[i]));
    }
    for (std::size_t i = 0; i < num_vars; ++i) {
      if (rng.Chance(2, 3)) q.output_vars.push_back(var_names[i]);
    }
    if (q.output_vars.empty()) q.output_vars.push_back("x");

    Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
    ASSERT_TRUE(e.ok()) << e.status();
    Result<xpath::TupleSet> batch = AnswerAcqYannakakis(t, q);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(Drain(*e), *batch)
        << q.ToString() << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcqEnumeratorRandomTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

// When every variable is an output variable, the underlying DFS produces
// each answer exactly once: the dedup set never rejects.
TEST(AcqEnumeratorTest, FullOutputHasNoDuplicateWork) {
  Rng rng(99);
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(rng, opts);
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.output_vars = {"x", "y", "z"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  std::size_t count = 0;
  while (e->Next()) ++count;
  EXPECT_EQ(count, e->produced());
  EXPECT_EQ(count, AnswerAcqYannakakis(t, q)->size());
}

// E11 ablation correctness: disabling the MC filter and/or memoization
// must not change answers, only performance.
class AblationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AblationTest, AllConfigurationsAgree) {
  Rng rng(GetParam());
  using hcl::HclExpr;
  for (int trial = 0; trial < 6; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(8);
    Tree t = RandomTree(rng, opts);
    // A query with unions and filters: exercises both the MC pruning and
    // the memo sharing.
    hcl::HclPtr c = HclExpr::Compose(
        HclExpr::Union(
            HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "a")),
            HclExpr::Binary(hcl::MakeAxisQuery(Axis::kDescendant, "b"))),
        HclExpr::Compose(
            HclExpr::Filter(HclExpr::Compose(
                HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild)),
                HclExpr::Var("x"))),
            HclExpr::Union(HclExpr::Var("y"),
                           HclExpr::Binary(hcl::MakeAxisQuery(Axis::kSelf)))));
    const std::vector<std::string> vars = {"x", "y"};

    xpath::TupleSet reference;
    bool have_reference = false;
    for (bool mc : {true, false}) {
      for (bool memo : {true, false}) {
        hcl::AnswerOptions options;
        options.use_mc_filter = mc;
        options.memoize_vals = memo;
        hcl::QueryAnswerer answerer(t, *c, vars, options);
        ASSERT_TRUE(answerer.Prepare().ok());
        xpath::TupleSet answers = answerer.Answer();
        if (!have_reference) {
          reference = answers;
          have_reference = true;
        } else {
          EXPECT_EQ(answers, reference)
              << "mc=" << mc << " memo=" << memo
              << " tree=" << t.ToTerm();
        }
      }
    }
    EXPECT_EQ(reference, hcl::EvalHclNaryNaive(t, *c, vars));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationTest,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace xpv::fo
