// Tests for the answer enumerator (the paper's closing open question on
// enumeration algorithms) and for the E11 ablation switches of the Fig. 8
// algorithm (MC filtering / memoization off preserve correctness).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <utility>

#include "common/cancel.h"
#include "common/rng.h"
#include "fo/acq.h"
#include "fo/enumerate.h"
#include "fo/tuple_dedup.h"
#include "hcl/answer.h"
#include "tree/generators.h"

namespace xpv::fo {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

CqAtom Atom(Axis axis, std::string name, std::string x, std::string y) {
  return {hcl::MakeAxisQuery(axis, std::move(name)), std::move(x),
          std::move(y)};
}

xpath::TupleSet Drain(AcqEnumerator& e) {
  xpath::TupleSet out;
  while (true) {
    Result<std::optional<xpath::NodeTuple>> next = e.Next();
    EXPECT_TRUE(next.ok()) << next.status();
    if (!next.ok() || !next->has_value()) break;
    out.insert(std::move(**next));
  }
  return out;
}

TEST(AcqEnumeratorTest, MatchesBatchAnswerOnChain) {
  Tree t = MustTree("a(b(c),b(c,c),d)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "c", "y", "z"));
  q.output_vars = {"x", "y", "z"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(Drain(*e), *AnswerAcqYannakakis(t, q));
  EXPECT_EQ(e->produced(), 3u);
}

TEST(AcqEnumeratorTest, ProjectionDeduplicates) {
  Tree t = MustTree("a(b,b,b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.output_vars = {"x"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(Drain(*e), (xpath::TupleSet{{0}}));
  EXPECT_EQ(e->produced(), 1u);
}

TEST(AcqEnumeratorTest, EmptyQueryYieldsEmptyTupleOnce) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;  // no atoms, no outputs: trivially true once
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  Result<std::optional<xpath::NodeTuple>> first = e->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_TRUE((*first)->empty());
  Result<std::optional<xpath::NodeTuple>> second = e->Next();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->has_value());
}

TEST(AcqEnumeratorTest, UnsatisfiableYieldsNothing) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "zzz", "x", "y"));
  q.output_vars = {"x"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->Next()->has_value());
  EXPECT_FALSE(e->Next()->has_value());  // stays exhausted
}

TEST(AcqEnumeratorTest, RejectsCyclicQueries) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "z"));
  EXPECT_FALSE(AcqEnumerator::Create(t, q).ok());
}

class AcqEnumeratorRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcqEnumeratorRandomTest, AgreesWithYannakakis) {
  Rng rng(GetParam());
  const std::vector<std::string> var_names = {"x", "y", "z", "w"};
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(10);
    Tree t = RandomTree(rng, opts);
    ConjunctiveQuery q;
    std::size_t num_vars = 2 + rng.Below(3);
    for (std::size_t i = 1; i < num_vars; ++i) {
      q.atoms.push_back(Atom(kAllAxes[rng.Below(kAllAxes.size())],
                             rng.Chance(1, 3) ? "*"
                                              : GeneratorLabel(rng.Below(2)),
                             var_names[rng.Below(i)], var_names[i]));
    }
    for (std::size_t i = 0; i < num_vars; ++i) {
      if (rng.Chance(2, 3)) q.output_vars.push_back(var_names[i]);
    }
    if (q.output_vars.empty()) q.output_vars.push_back("x");

    Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
    ASSERT_TRUE(e.ok()) << e.status();
    Result<xpath::TupleSet> batch = AnswerAcqYannakakis(t, q);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(Drain(*e), *batch)
        << q.ToString() << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcqEnumeratorRandomTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

// When every variable is an output variable, the underlying DFS produces
// each answer exactly once: the dedup set never rejects.
TEST(AcqEnumeratorTest, FullOutputHasNoDuplicateWork) {
  Rng rng(99);
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(rng, opts);
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.output_vars = {"x", "y", "z"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  // Injective projection: the enumerator keeps no dedup state at all.
  EXPECT_FALSE(e->dedup_active());
  EXPECT_EQ(e->dedup_entries(), 0u);
  std::size_t count = 0;
  while ((*e->Next()).has_value()) ++count;
  EXPECT_EQ(count, e->produced());
  EXPECT_EQ(count, AnswerAcqYannakakis(t, q)->size());
  EXPECT_EQ(e->dedup_entries(), 0u);
}

// E11 ablation correctness: disabling the MC filter and/or memoization
// must not change answers, only performance.
class AblationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AblationTest, AllConfigurationsAgree) {
  Rng rng(GetParam());
  using hcl::HclExpr;
  for (int trial = 0; trial < 6; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(8);
    Tree t = RandomTree(rng, opts);
    // A query with unions and filters: exercises both the MC pruning and
    // the memo sharing.
    hcl::HclPtr c = HclExpr::Compose(
        HclExpr::Union(
            HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "a")),
            HclExpr::Binary(hcl::MakeAxisQuery(Axis::kDescendant, "b"))),
        HclExpr::Compose(
            HclExpr::Filter(HclExpr::Compose(
                HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild)),
                HclExpr::Var("x"))),
            HclExpr::Union(HclExpr::Var("y"),
                           HclExpr::Binary(hcl::MakeAxisQuery(Axis::kSelf)))));
    const std::vector<std::string> vars = {"x", "y"};

    xpath::TupleSet reference;
    bool have_reference = false;
    for (bool mc : {true, false}) {
      for (bool memo : {true, false}) {
        hcl::AnswerOptions options;
        options.use_mc_filter = mc;
        options.memoize_vals = memo;
        hcl::QueryAnswerer answerer(t, *c, vars, options);
        ASSERT_TRUE(answerer.Prepare().ok());
        Result<xpath::TupleSet> answered = answerer.Answer();
        ASSERT_TRUE(answered.ok());
        xpath::TupleSet answers = std::move(answered).value();
        if (!have_reference) {
          reference = answers;
          have_reference = true;
        } else {
          EXPECT_EQ(answers, reference)
              << "mc=" << mc << " memo=" << memo
              << " tree=" << t.ToTerm();
        }
      }
    }
    EXPECT_EQ(reference, hcl::EvalHclNaryNaive(t, *c, vars));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationTest,
                         ::testing::Values(61, 62, 63, 64));

// ----------------------------------------------------------- TupleDedup

TEST(TupleDedupTest, DistinctAndDuplicateInserts) {
  TupleDedup dedup(2);
  EXPECT_TRUE(*dedup.Insert({1, 2}));
  EXPECT_TRUE(*dedup.Insert({2, 1}));
  EXPECT_FALSE(*dedup.Insert({1, 2}));
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(TupleDedupTest, ZeroArityRemembersOneTuple) {
  TupleDedup dedup(0);
  EXPECT_TRUE(*dedup.Insert({}));
  EXPECT_FALSE(*dedup.Insert({}));
  EXPECT_EQ(dedup.size(), 1u);
}

// The hashed structure must agree with an ordered-set oracle through
// growth and spills: same accepted/rejected verdict for every insert.
TEST(TupleDedupTest, AgreesWithSetOracleAcrossSpills) {
  Rng rng(77);
  TupleDedupOptions options;
  options.max_bytes = 1u << 13;  // 8 KiB: forces several spills
  options.overflow = TupleDedupOptions::Overflow::kSpill;
  TupleDedup dedup(3, options);
  std::set<xpath::NodeTuple> oracle;
  std::size_t admitted = 0;
  for (int i = 0; i < 4000; ++i) {
    xpath::NodeTuple t = {static_cast<NodeId>(rng.Below(8)),
                          static_cast<NodeId>(rng.Below(8)),
                          static_cast<NodeId>(rng.Below(8))};
    Result<bool> fresh = dedup.Insert(t);
    // 8^3 distinct tuples = 6 KiB of raw data: always within budget.
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    EXPECT_EQ(*fresh, oracle.insert(t).second) << "insert " << i;
    if (*fresh) ++admitted;
  }
  EXPECT_EQ(dedup.size(), oracle.size());
  EXPECT_EQ(admitted, oracle.size());
  EXPECT_GT(dedup.spills(), 0u);
  EXPECT_LE(dedup.memory_bytes(), options.max_bytes);
}

TEST(TupleDedupTest, FailPolicyReportsResourceExhausted) {
  TupleDedupOptions options;
  options.max_bytes = 512;
  options.overflow = TupleDedupOptions::Overflow::kFail;
  TupleDedup dedup(2, options);
  Status failure;
  for (NodeId i = 0; i < 10000; ++i) {
    Result<bool> fresh = dedup.Insert({i, i + 1});
    if (!fresh.ok()) {
      failure = fresh.status();
      break;
    }
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted) << failure;
  EXPECT_EQ(dedup.spills(), 0u);
}

TEST(TupleDedupTest, SpillPolicyHoldsMoreThenReportsResourceExhausted) {
  auto fill = [](TupleDedupOptions::Overflow overflow) {
    TupleDedupOptions options;
    options.max_bytes = 2048;
    options.overflow = overflow;
    TupleDedup dedup(2, options);
    for (NodeId i = 0;; ++i) {
      Result<bool> fresh = dedup.Insert({i, i + 1});
      if (!fresh.ok()) {
        EXPECT_EQ(fresh.status().code(), StatusCode::kResourceExhausted);
        return dedup.size();
      }
    }
  };
  const std::size_t fail_capacity =
      fill(TupleDedupOptions::Overflow::kFail);
  const std::size_t spill_capacity =
      fill(TupleDedupOptions::Overflow::kSpill);
  // Compaction packs tuples ~raw-density, so the same budget holds more.
  EXPECT_GT(spill_capacity, fail_capacity);
}

// --------------------------------------- bounded dedup in the enumerator

// A projected variable of degree >= 3 survives the elimination pass (it
// cannot be composed away), so the dedup structure engages: a star tree
// makes the projected common-ancestor variable collapse many
// assignments onto each output triple. A tiny budget must fail with
// kResourceExhausted, stickily.
TEST(AcqEnumeratorTest, ProjectionDedupBudgetSurfacesResourceExhausted) {
  Tree t = *Tree::ParseTerm("r(" + [] {
    std::string kids = "a";
    for (int i = 0; i < 60; ++i) kids += ",a";
    return kids;
  }() + ")");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "a", "v", "x"));
  q.atoms.push_back(Atom(Axis::kChild, "a", "v", "y"));
  q.atoms.push_back(Atom(Axis::kDescendant, "a", "v", "z"));
  q.output_vars = {"x", "y", "z"};
  AcqEnumeratorOptions options;
  options.dedup.max_bytes = 256;
  options.dedup.overflow = TupleDedupOptions::Overflow::kFail;
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q, std::move(options));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->dedup_active());
  Status failure;
  while (true) {
    Result<std::optional<xpath::NodeTuple>> next = e->Next();
    if (!next.ok()) {
      failure = next.status();
      break;
    }
    if (!next->has_value()) break;
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted) << failure;
  EXPECT_EQ(e->Next().status().code(), StatusCode::kResourceExhausted);
}

TEST(AcqEnumeratorTest, ProjectionWithinBudgetMatchesBatchAnswer) {
  // Common-ancestor triples: the projected v ranges over every common
  // ancestor, so each output tuple is reached many times and only the
  // dedup keeps the stream distinct.
  Rng rng(123);
  RandomTreeOptions opts;
  opts.num_nodes = 12;
  Tree t = RandomTree(rng, opts);
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "v", "x"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "v", "y"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "v", "z"));
  q.output_vars = {"x", "y", "z"};
  AcqEnumeratorOptions options;
  options.dedup.max_bytes = 1u << 16;
  options.dedup.overflow = TupleDedupOptions::Overflow::kSpill;
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q, std::move(options));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->dedup_active());
  EXPECT_EQ(Drain(*e), *AnswerAcqYannakakis(t, q));
  EXPECT_EQ(e->dedup_entries(), e->produced());
}

// The elimination pass strips projected chain variables entirely: a
// two-atom chain with one output variable enumerates over exactly that
// variable, no dedup state, still matching the batch oracle.
TEST(AcqEnumeratorTest, ChainProjectionEliminatesToInjective) {
  Rng rng(124);
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  Tree t = RandomTree(rng, opts);
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.output_vars = {"y"};
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->dedup_active());
  EXPECT_EQ(Drain(*e), *AnswerAcqYannakakis(t, q));
  EXPECT_EQ(e->dedup_entries(), 0u);
}

// ------------------------------------------------ cooperative cancellation

TEST(AcqEnumeratorTest, ObservesCancelFlagBetweenSteps) {
  Rng rng(321);
  RandomTreeOptions opts;
  opts.num_nodes = 25;
  Tree t = RandomTree(rng, opts);
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "y"));
  q.output_vars = {"x", "y"};
  std::atomic<bool> cancelled{false};
  AcqEnumeratorOptions options;
  options.cancel = CancelToken(&cancelled);
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q, std::move(options));
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->Next().ok());  // runs while the flag is clear
  cancelled.store(true);
  Result<std::optional<xpath::NodeTuple>> next = e->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
  // Sticky even if the flag were cleared.
  cancelled.store(false);
  EXPECT_EQ(e->Next().status().code(), StatusCode::kCancelled);
}

TEST(AcqEnumeratorTest, ExpiredDeadlineFailsPreprocessing) {
  Tree t = *Tree::ParseTerm("a(b(c),b(c,c))");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.output_vars = {"x", "y"};
  AcqEnumeratorOptions options;
  options.cancel = CancelToken(
      nullptr, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  Result<AcqEnumerator> e = AcqEnumerator::Create(t, q, std::move(options));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryAnswererTest, ObservesPreSetCancelInsidePrepareOrAnswer) {
  Rng rng(99);
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(rng, opts);
  hcl::HclPtr c = hcl::HclExpr::Compose(
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kDescendant)),
      hcl::HclExpr::Compose(hcl::HclExpr::Var("x"),
                            hcl::HclExpr::Binary(hcl::MakeAxisQuery(
                                Axis::kChild))));
  std::atomic<bool> cancelled{true};
  hcl::AnswerOptions options;
  options.cancel = CancelToken(&cancelled);
  hcl::QueryAnswerer answerer(t, *c, {"x"}, options);
  Status prepared = answerer.Prepare();
  if (prepared.ok()) {
    Result<xpath::TupleSet> answers = answerer.Answer();
    ASSERT_FALSE(answers.ok());
    EXPECT_EQ(answers.status().code(), StatusCode::kCancelled);
  } else {
    EXPECT_EQ(prepared.code(), StatusCode::kCancelled);
  }
}

}  // namespace
}  // namespace xpv::fo
