// Unit and differential tests for the sparse boolean composition kernels
// (common/sparse_matrix.h): CSR construction, dense round-trips, and every
// composition kernel -- Multiply (including the SpGEMM dense-accumulator
// fallback and its run budget), MultiplyDense / MultiplyDenseLeft, Or,
// Complement, FilterDiagonal -- checked cell-for-cell against the dense
// BitMatrix kernels on seeded random and adversarial operands.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "common/sparse_matrix.h"
#include "common/status.h"
#include "tree/axis_cache.h"
#include "tree/generators.h"

namespace xpv {
namespace {

BitMatrix RandomDense(Rng& rng, std::size_t n, std::uint64_t density_pct) {
  BitMatrix m(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (rng.Below(100) < density_pct) m.Set(r, c);
    }
  }
  return m;
}

/// Every row alternates single set bits -- the worst case for run storage
/// (n/2 runs per row), which drives the SpGEMM kernel into its dense
/// accumulator fallback and exhausts small run budgets.
BitMatrix Checkerboard(std::size_t n) {
  BitMatrix m(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r % 2; c < n; c += 2) m.Set(r, c);
  }
  return m;
}

void ExpectSameCells(const SparseBoolMatrix& sparse, const BitMatrix& dense,
                     const char* ctx) {
  ASSERT_EQ(sparse.size(), dense.size()) << ctx;
  EXPECT_EQ(sparse.Count(), dense.Count()) << ctx;
  for (std::size_t r = 0; r < dense.size(); ++r) {
    for (std::size_t c = 0; c < dense.size(); ++c) {
      ASSERT_EQ(sparse.Get(r, c), dense.Get(r, c))
          << ctx << " at (" << r << "," << c << ")";
    }
  }
  Result<BitMatrix> round_trip = sparse.ToDense();
  ASSERT_TRUE(round_trip.ok()) << ctx;
  EXPECT_EQ(*round_trip, dense) << ctx;
}

TEST(SparseMatrixTest, FromDenseRoundTrips) {
  Rng rng(11);
  for (std::size_t n : {0u, 1u, 5u, 63u, 64u, 65u, 130u}) {
    for (std::uint64_t density : {0u, 5u, 50u, 100u}) {
      BitMatrix d = RandomDense(rng, n, density);
      SparseBoolMatrix s = SparseBoolMatrix::FromDense(d);
      EXPECT_EQ(s.name(), "sparse");
      ExpectSameCells(s, d, "FromDense");
    }
  }
}

TEST(SparseMatrixTest, BuilderCoalescesAdjacentAndOverlappingRuns) {
  SparseBoolMatrix::Builder b(10);
  EXPECT_TRUE(b.Append(0, 2, 4));
  EXPECT_TRUE(b.Append(0, 4, 6));   // adjacent: coalesces into [2,6)
  EXPECT_TRUE(b.Append(0, 5, 7));   // overlapping: extends to [2,7)
  EXPECT_TRUE(b.Append(0, 8, 8));   // empty: ignored
  EXPECT_TRUE(b.Append(3, 0, 1));   // skips rows 1-2 (sealed empty)
  EXPECT_EQ(b.num_runs(), 2u);
  Result<SparseBoolMatrix> m = b.Finish();
  ASSERT_TRUE(m.ok());
  BitMatrix expected(10);
  expected.SetRowRange(0, 2, 7);
  expected.Set(3, 0);
  ExpectSameCells(*m, expected, "Builder");
}

TEST(SparseMatrixTest, BuilderAppendBitsExtractsMaximalRuns) {
  Rng rng(13);
  const std::size_t n = 129;
  BitMatrix d = RandomDense(rng, n, 30);
  SparseBoolMatrix::Builder b(n);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_TRUE(b.AppendBits(static_cast<std::uint32_t>(r), d.Row(r)));
  }
  Result<SparseBoolMatrix> m = b.Finish();
  ASSERT_TRUE(m.ok());
  ExpectSameCells(*m, d, "AppendBits");
}

TEST(SparseMatrixTest, BuilderBudgetOverflowPoisonsTheBuild) {
  SparseBoolMatrix::Builder b(100, /*max_runs=*/2);
  EXPECT_TRUE(b.Append(0, 0, 2));
  EXPECT_TRUE(b.Append(0, 4, 6));
  EXPECT_FALSE(b.Append(0, 8, 10));  // third disjoint run: over budget
  Result<SparseBoolMatrix> m = b.Finish();
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST(SparseMatrixTest, FromBoolBorrowsIntervalBackedAxes) {
  Tree t = *Tree::ParseTerm("a(b(c,a),c(a,b(a)))");
  AxisCache cache(t, AxisBacking::kInterval);
  for (Axis axis : kAllAxes) {
    const BoolMatrix& m = cache.Matrix(axis);
    Result<SparseBoolMatrix> s = SparseBoolMatrix::FromBool(m);
    ASSERT_TRUE(s.ok());
    Result<BitMatrix> d = m.ToDense();
    ASSERT_TRUE(d.ok());
    ExpectSameCells(*s, *d, AxisName(axis).data());
  }
}

TEST(SparseMatrixTest, MultiplyMatchesDenseProduct) {
  Rng rng(17);
  for (std::size_t n : {1u, 7u, 64u, 100u}) {
    for (int trial = 0; trial < 4; ++trial) {
      BitMatrix a = RandomDense(rng, n, 1 + rng.Below(40));
      BitMatrix b = RandomDense(rng, n, 1 + rng.Below(40));
      const BitMatrix truth = a.Multiply(b);
      SparseBoolMatrix sa = SparseBoolMatrix::FromDense(a);
      SparseBoolMatrix sb = SparseBoolMatrix::FromDense(b);
      Result<SparseBoolMatrix> product = sa.Multiply(sb);
      ASSERT_TRUE(product.ok());
      ExpectSameCells(*product, truth, "sparse x sparse");
      EXPECT_EQ(sa.MultiplyDense(b), truth);
      EXPECT_EQ(sb.MultiplyDenseLeft(a), truth);
    }
  }
}

TEST(SparseMatrixTest, MultiplyDenseAccumulatorFallbackIsExact) {
  // Checkerboard rows carry n/2 runs each, far past the per-row gather
  // threshold max(kDenseAccumMinRuns, n / kDenseAccumRunFactor): every
  // output row takes the dense-accumulator path and must still match the
  // dense product bit for bit.
  const std::size_t n = 256;
  BitMatrix a = Checkerboard(n);
  BitMatrix b = Checkerboard(n);
  SparseBoolMatrix sa = SparseBoolMatrix::FromDense(a);
  SparseBoolMatrix sb = SparseBoolMatrix::FromDense(b);
  ASSERT_GT(sa.num_runs() / n,
            SparseBoolMatrix::kDenseAccumMinRuns / 2);  // fallback territory
  Result<SparseBoolMatrix> product = sa.Multiply(sb);
  ASSERT_TRUE(product.ok());
  ExpectSameCells(*product, a.Multiply(b), "fallback product");
}

TEST(SparseMatrixTest, MultiplyRespectsTheRunBudget) {
  const std::size_t n = 128;
  SparseBoolMatrix a = SparseBoolMatrix::FromDense(Checkerboard(n));
  // The checkerboard is idempotent under boolean product, so the result
  // carries n/2 runs per row (n^2/2 total). A budget of n/2 must trip
  // kResourceExhausted, not truncate.
  Result<SparseBoolMatrix> over = a.Multiply(a, /*max_runs=*/n / 2);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  Result<SparseBoolMatrix> under = a.Multiply(a, /*max_runs=*/n * n);
  ASSERT_TRUE(under.ok());
  ExpectSameCells(*under, Checkerboard(n).Multiply(Checkerboard(n)),
                  "budgeted product");
}

TEST(SparseMatrixTest, OrComplementFilterDiagonalMatchDense) {
  Rng rng(23);
  for (std::size_t n : {1u, 65u, 100u}) {
    for (int trial = 0; trial < 4; ++trial) {
      BitMatrix a = RandomDense(rng, n, rng.Below(60));
      BitMatrix b = RandomDense(rng, n, rng.Below(60));
      SparseBoolMatrix sa = SparseBoolMatrix::FromDense(a);
      SparseBoolMatrix sb = SparseBoolMatrix::FromDense(b);
      Result<SparseBoolMatrix> united = sa.Or(sb);
      ASSERT_TRUE(united.ok());
      ExpectSameCells(*united, a.Or(b), "Or");
      ExpectSameCells(sa.Complement(), a.Complement(), "Complement");
      ExpectSameCells(sa.FilterDiagonal(), a.FilterDiagonal(),
                      "FilterDiagonal");
      BitMatrix acc = b;
      sa.OrInto(acc);
      EXPECT_EQ(acc, a.Or(b));
    }
  }
  // Gap inversion edges: complement of empty is full, and involution.
  SparseBoolMatrix empty = SparseBoolMatrix::FromDense(BitMatrix(65));
  ExpectSameCells(empty.Complement(), BitMatrix::Full(65), "empty^c");
  ExpectSameCells(empty.Complement().Complement(), BitMatrix(65), "(m^c)^c");
}

TEST(SparseMatrixTest, ReadKernelsAgreeWithDense) {
  Rng rng(29);
  const std::size_t n = 90;
  BitMatrix d = RandomDense(rng, n, 20);
  SparseBoolMatrix s = SparseBoolMatrix::FromDense(d);
  BitVector from(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Chance(1, 3)) from.Set(i);
  }
  EXPECT_EQ(s.ImageOf(from), d.ImageOf(from));
  EXPECT_EQ(s.NonEmptyRows(), d.NonEmptyRows());
  EXPECT_EQ(s.AndOfRows(from), d.AndOfRows(from));
  EXPECT_EQ(s.RowsContaining(from), d.RowsContaining(from));
  EXPECT_EQ(s.resident_bytes() > 0, d.Count() > 0);
}

}  // namespace
}  // namespace xpv
