// Tests for the fragment checkers: Definition 1 (PPL), N($x), and the
// Fig. 3 PPLbin surface grammar.
#include <gtest/gtest.h>

#include "xpath/fragment.h"
#include "xpath/parser.h"

namespace xpv::xpath {
namespace {

PathPtr MustPath(std::string_view text) {
  Result<PathPtr> p = ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

void ExpectPpl(std::string_view text) {
  Status s = CheckPpl(*MustPath(text));
  EXPECT_TRUE(s.ok()) << text << ": " << s;
}

void ExpectNotPpl(std::string_view text, std::string_view condition) {
  Status s = CheckPpl(*MustPath(text));
  ASSERT_FALSE(s.ok()) << text << " should violate " << condition;
  EXPECT_EQ(s.code(), StatusCode::kFragmentViolation);
  EXPECT_NE(s.message().find(condition), std::string::npos)
      << "message '" << s.message() << "' should name " << condition;
}

TEST(PplCheckerTest, AcceptsVariableFreeCore) {
  ExpectPpl("child::a");
  ExpectPpl("descendant::a/child::b[child::c]");
  ExpectPpl("child::a union child::b");
  ExpectPpl("child::a intersect child::b");
  ExpectPpl("child::a except child::b");
  ExpectPpl("child::a[not child::b]");
  ExpectPpl("child::a[child::b and child::c]");
}

TEST(PplCheckerTest, AcceptsPaperIntroductionQuery) {
  // The motivating example from Section 1 satisfies all conditions.
  ExpectPpl(
      "descendant::book[child::author[. is $y] and child::title[. is $z]]");
}

TEST(PplCheckerTest, AcceptsVariablesInUnionsAndOr) {
  // No restriction on union / or: variables may be shared there.
  ExpectPpl("child::a[. is $x] union child::b[. is $x]");
  ExpectPpl("child::a[. is $x or . is $x]");
}

TEST(PplCheckerTest, AcceptsDisjointCompositionVariables) {
  ExpectPpl("child::a[. is $x]/child::b[. is $y]");
}

TEST(PplCheckerTest, RejectsForLoops) {
  ExpectNotPpl("for $x in child::a return $x", "N(for)");
}

TEST(PplCheckerTest, RejectsVariablesInIntersect) {
  ExpectNotPpl("$x intersect child::a", "NV(intersect)");
  ExpectNotPpl("child::a intersect child::b[. is $x]", "NV(intersect)");
}

TEST(PplCheckerTest, RejectsVariablesInExcept) {
  ExpectNotPpl("$x except child::a", "NV(except)");
  ExpectNotPpl("child::a except $x", "NV(except)");
}

TEST(PplCheckerTest, RejectsVariablesBelowNegation) {
  ExpectNotPpl("child::a[not (child::b[. is $x])]", "NV(not)");
  ExpectNotPpl("child::a[not ($x is $y)]", "NV(not)");
}

TEST(PplCheckerTest, RejectsVariableSharingInComposition) {
  ExpectNotPpl("child::a[. is $x]/child::b[. is $x]", "NVS(/)");
  ExpectNotPpl("$x/$x", "NVS(/)");
}

TEST(PplCheckerTest, RejectsVariableSharingInFilters) {
  ExpectNotPpl("child::a[. is $x][$x is $y]", "NVS([])");
  ExpectNotPpl("$x[. is $x]", "NVS([])");
}

TEST(PplCheckerTest, RejectsVariableSharingInConjunction) {
  ExpectNotPpl("child::a[child::b[. is $x] and child::c[. is $x]]",
               "NVS(and)");
}

TEST(PplCheckerTest, NestedViolationsAreFound) {
  ExpectNotPpl("child::a union (child::b[$x is $x]/child::c[. is $x])",
               "NVS(/)");
  ExpectNotPpl("child::a[child::b or ($x/$x)]", "NVS(/)");
}

TEST(NoVariablesTest, AcceptsAndRejects) {
  EXPECT_TRUE(CheckNoVariables(*MustPath("child::a[not child::b]")).ok());
  EXPECT_TRUE(CheckNoVariables(*MustPath("child::a[. is .]")).ok());
  EXPECT_FALSE(CheckNoVariables(*MustPath("$x")).ok());
  EXPECT_FALSE(CheckNoVariables(*MustPath("child::a[. is $x]")).ok());
  EXPECT_FALSE(
      CheckNoVariables(*MustPath("for $x in child::a return child::b")).ok());
  // Even a bound variable disqualifies N($x): "no variables, no for loops".
  EXPECT_FALSE(
      CheckNoVariables(*MustPath("for $x in child::a return $x")).ok());
}

TEST(PplBinSyntaxTest, AcceptsFig3Grammar) {
  EXPECT_TRUE(CheckPplBinSyntax(*MustPath("child::a")).ok());
  EXPECT_TRUE(CheckPplBinSyntax(*MustPath("child::a/child::b")).ok());
  EXPECT_TRUE(CheckPplBinSyntax(*MustPath("child::a union child::b")).ok());
  EXPECT_TRUE(CheckPplBinSyntax(*MustPath("child::a[child::b]")).ok());
  EXPECT_TRUE(CheckPplBinSyntax(*MustPath(".")).ok());
}

TEST(PplBinSyntaxTest, RejectsOutsideFig3) {
  EXPECT_FALSE(CheckPplBinSyntax(*MustPath("$x")).ok());
  EXPECT_FALSE(CheckPplBinSyntax(*MustPath("child::a intersect child::b")).ok());
  EXPECT_FALSE(CheckPplBinSyntax(*MustPath("child::a except child::b")).ok());
  EXPECT_FALSE(CheckPplBinSyntax(*MustPath("child::a[not child::b]")).ok());
  EXPECT_FALSE(CheckPplBinSyntax(*MustPath("child::a[. is .]")).ok());
}

TEST(ContainsForTest, DetectsNestedForLoops) {
  EXPECT_TRUE(ContainsFor(*MustPath("for $x in child::a return child::b")));
  EXPECT_TRUE(ContainsFor(
      *MustPath("child::a[for $x in child::b return $x]")));
  EXPECT_TRUE(ContainsFor(*MustPath(
      "child::a union (child::b/(for $x in child::c return $x))")));
  EXPECT_FALSE(ContainsFor(*MustPath("child::a[child::b and child::c]")));
}

// PPL is closed under subexpressions of accepted operators; spot-check that
// the checker is monotone: any subexpression of a PPL expression is PPL.
TEST(PplCheckerTest, SubexpressionsOfPplArePpl) {
  PathPtr p = MustPath(
      "descendant::book[child::author[. is $y] and child::title[. is $z]]"
      "/child::a[. is $w] union child::b");
  ASSERT_TRUE(CheckPpl(*p).ok());
  // Walk all path subexpressions and re-check.
  std::vector<const PathExpr*> stack = {p.get()};
  while (!stack.empty()) {
    const PathExpr* cur = stack.back();
    stack.pop_back();
    EXPECT_TRUE(CheckPpl(*cur).ok()) << cur->ToString();
    if (cur->left) stack.push_back(cur->left.get());
    if (cur->right) stack.push_back(cur->right.get());
  }
}

}  // namespace
}  // namespace xpv::xpath
