// Tests for the Section 8 proof machinery: Ehrenfeucht-Fraisse game
// equivalence on binary trees, and an empirical validation of the
// Decomposition Lemma (Lemma 4).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fo/ef_game.h"
#include "tree/binary_encoding.h"
#include "tree/generators.h"

namespace xpv::fo {
namespace {

/// Builds a binary tree via the fcns encoding of an unranked term.
BinaryTree FromTerm(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return EncodeFcns(*t, nullptr);
}

TEST(AtomicEquivalenceTest, IdenticalStructures) {
  BinaryTree t = FromTerm("a(b,c)");
  ExtendedBinaryTree e1{&t, {0, 1}};
  ExtendedBinaryTree e2{&t, {0, 1}};
  EXPECT_TRUE(AtomicEquivalent(e1, e2));
}

TEST(AtomicEquivalenceTest, LabelMismatch) {
  BinaryTree t1 = FromTerm("a(b)");
  BinaryTree t2 = FromTerm("a(c)");
  // In the fcns encoding, node ids are post-order of (first-child,
  // next-sibling); find the b/c nodes by label.
  NodeId b1 = t1.label(0) == "b" ? 0 : 1;
  NodeId c2 = t2.label(0) == "c" ? 0 : 1;
  EXPECT_FALSE(AtomicEquivalent({&t1, {b1}}, {&t2, {c2}}));
}

TEST(AtomicEquivalenceTest, RelationMismatch) {
  BinaryTree t = FromTerm("a(b(c))");
  // (root, leaf) vs (root, root): equality pattern differs.
  EXPECT_FALSE(AtomicEquivalent({&t, {t.root(), 0}},
                                {&t, {t.root(), t.root()}}));
}

TEST(EfGameTest, ZeroRoundsIsAtomic) {
  BinaryTree t1 = FromTerm("a(b)");
  BinaryTree t2 = FromTerm("a(b,b)");
  // Roots have the same label and trivially matching tuples.
  EXPECT_TRUE(EfEquivalent({&t1, {t1.root()}}, {&t2, {t2.root()}}, 0));
}

TEST(EfGameTest, OneRoundSeparatesDifferentAlphabets) {
  BinaryTree t1 = FromTerm("a(b)");
  BinaryTree t2 = FromTerm("a(c)");
  // Spoiler picks the b node; no c-labeled reply matches.
  EXPECT_FALSE(EfEquivalent({&t1, {}}, {&t2, {}}, 1));
}

TEST(EfGameTest, OneRoundCannotCountBeyondExistence) {
  // One b-child vs two b-children: indistinguishable with ONE variable
  // only... actually one round CAN pick the second child in the fcns
  // encoding only if a node with its atomic type exists; here t2's first
  // b has a child2 (the sibling) while t1's b has none -- but with a
  // single pebble no binary relation to the picked node is visible except
  // loops, so the structures agree.
  BinaryTree t1 = FromTerm("a(b)");
  BinaryTree t2 = FromTerm("a(b,b)");
  // With zero distinguished nodes, one round compares single-node types
  // only: both have an a-node and a b-node.
  EXPECT_TRUE(EfEquivalent({&t1, {}}, {&t2, {}}, 1));
  // Two rounds expose the extra sibling edge.
  EXPECT_FALSE(EfEquivalent({&t1, {}}, {&t2, {}}, 2));
}

TEST(EfGameTest, EquivalenceIsReflexiveAndSymmetric) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(5);
    Tree u1 = RandomTree(rng, opts);
    Tree u2 = RandomTree(rng, opts);
    BinaryTree t1 = EncodeFcns(u1, nullptr);
    BinaryTree t2 = EncodeFcns(u2, nullptr);
    EXPECT_TRUE(EfEquivalent({&t1, {}}, {&t1, {}}, 2));
    EXPECT_EQ(EfEquivalent({&t1, {}}, {&t2, {}}, 2),
              EfEquivalent({&t2, {}}, {&t1, {}}, 2));
  }
}

TEST(EfGameTest, MoreRoundsRefine) {
  // ==_{n+1} implies ==_n.
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(5);
    opts.alphabet_size = 2;
    Tree u1 = RandomTree(rng, opts);
    Tree u2 = RandomTree(rng, opts);
    BinaryTree t1 = EncodeFcns(u1, nullptr);
    BinaryTree t2 = EncodeFcns(u2, nullptr);
    if (EfEquivalent({&t1, {}}, {&t2, {}}, 2)) {
      EXPECT_TRUE(EfEquivalent({&t1, {}}, {&t2, {}}, 1));
    }
  }
}

TEST(Lemma4DecomposeTest, SplitsByLca) {
  // a(b(c),d) in fcns: a-c1->b, b-c1->c, b-c2->d.
  Result<Tree> u = Tree::ParseTerm("a(b(c),d)");
  ASSERT_TRUE(u.ok());
  std::vector<NodeId> map;
  BinaryTree t = EncodeFcns(*u, &map);
  // Tuple (c, d): lca in the BINARY tree is b (d hangs below b via child2).
  Lemma4Split split;
  ASSERT_TRUE(Lemma4Decompose(t, {map[2], map[3]}, &split));
  EXPECT_EQ(split.lca, map[1]);
  EXPECT_TRUE(split.e_indices.empty());
  EXPECT_EQ(split.l_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(split.r_indices, (std::vector<std::size_t>{1}));
}

TEST(Lemma4DecomposeTest, LcaInTupleGoesToE) {
  Result<Tree> u = Tree::ParseTerm("a(b(c),d)");
  ASSERT_TRUE(u.ok());
  std::vector<NodeId> map;
  BinaryTree t = EncodeFcns(*u, &map);
  Lemma4Split split;
  ASSERT_TRUE(Lemma4Decompose(t, {map[1], map[2]}, &split));
  EXPECT_EQ(split.lca, map[1]);
  EXPECT_EQ(split.e_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(split.l_indices, (std::vector<std::size_t>{1}));
}

TEST(Lemma4DecomposeTest, RequiresTwoDistinctNodes) {
  BinaryTree t = FromTerm("a(b)");
  Lemma4Split split;
  EXPECT_FALSE(Lemma4Decompose(t, {t.root(), t.root()}, &split));
  EXPECT_FALSE(Lemma4Decompose(t, {t.root()}, &split));
}

// Empirical Lemma 4: whenever the three hypothesis equivalences hold for
// the E/L/R decomposition of random (t,v), (t',u), the full structures
// are n-equivalent. Small trees, n = 1 (the checker is exponential).
TEST(Lemma4Test, HypothesesImplyConclusionOnRandomInstances) {
  Rng rng(2025);
  const int n = 1;
  int hypothesis_hits = 0;
  // Hypothesis-satisfying pairs are rare for rich alphabets; tiny trees
  // over a single label make them common enough to test the implication
  // while the ch1/ch2/ch* structure still varies freely.
  for (int trial = 0; trial < 800; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 2 + rng.Below(5);
    opts.alphabet_size = 1;
    Tree u1 = RandomTree(rng, opts);
    Tree u2 = RandomTree(rng, opts);
    BinaryTree t1 = EncodeFcns(u1, nullptr);
    BinaryTree t2 = EncodeFcns(u2, nullptr);

    const std::size_t m = 2;
    std::vector<NodeId> v(m), u(m);
    for (auto& node : v) node = static_cast<NodeId>(rng.Below(t1.size()));
    for (auto& node : u) node = static_cast<NodeId>(rng.Below(t2.size()));

    Lemma4Split s1, s2;
    if (!Lemma4Decompose(t1, v, &s1) || !Lemma4Decompose(t2, u, &s2)) {
      continue;
    }
    // The lemma's hypotheses compare tuples componentwise: the splits
    // must agree on which indices land where.
    if (s1.e_indices != s2.e_indices || s1.l_indices != s2.l_indices ||
        s1.r_indices != s2.r_indices) {
      continue;
    }
    // Hypothesis 1: (t, va, (ve)) ==_n (t', ua, (ue)).
    std::vector<NodeId> va_tuple = {s1.lca}, ua_tuple = {s2.lca};
    for (auto i : s1.e_indices) va_tuple.push_back(v[i]);
    for (auto i : s2.e_indices) ua_tuple.push_back(u[i]);
    if (!EfEquivalent({&t1, va_tuple}, {&t2, ua_tuple}, n)) continue;

    // Hypotheses 2 and 3: subtree components. Extract subtrees and remap
    // the tuple nodes (subtree copies are post-order; recompute by
    // searching for the same relative position via a parallel walk).
    auto subtree_points = [](const BinaryTree& t, NodeId root,
                             const std::vector<NodeId>& nodes)
        -> std::pair<BinaryTree, std::vector<NodeId>> {
      // Rebuild with an explicit mapping.
      BinaryTree out;
      std::vector<NodeId> mapping(t.size(), kNoNode);
      std::function<NodeId(NodeId)> copy = [&](NodeId x) -> NodeId {
        if (x == kNoNode) return kNoNode;
        NodeId c1 = copy(t.child1(x));
        NodeId c2 = copy(t.child2(x));
        NodeId fresh = out.AddNode(t.label(x), c1, c2);
        mapping[x] = fresh;
        return fresh;
      };
      out.set_root(copy(root));
      std::vector<NodeId> remapped;
      for (NodeId x : nodes) remapped.push_back(mapping[x]);
      return {std::move(out), std::move(remapped)};
    };

    bool hypotheses = true;
    for (int side = 0; side < 2 && hypotheses; ++side) {
      const auto& indices = side == 0 ? s1.l_indices : s1.r_indices;
      NodeId c1 = side == 0 ? t1.child1(s1.lca) : t1.child2(s1.lca);
      NodeId c2 = side == 0 ? t2.child1(s2.lca) : t2.child2(s2.lca);
      if (c1 == kNoNode && c2 == kNoNode) {
        // Both subtrees are the empty structure: trivially equivalent.
        continue;
      }
      if (c1 == kNoNode || c2 == kNoNode) {
        // Empty vs non-empty subtree: not n-equivalent for n >= 1.
        hypotheses = false;
        break;
      }
      // Even an empty component compares the SUBTREES (with empty
      // tuples); skipping it would weaken the lemma's hypotheses.
      std::vector<NodeId> sub_v, sub_u;
      for (auto i : indices) sub_v.push_back(v[i]);
      for (auto i : indices) sub_u.push_back(u[i]);
      auto [st1, pv] = subtree_points(t1, c1, sub_v);
      auto [st2, pu] = subtree_points(t2, c2, sub_u);
      if (!EfEquivalent({&st1, pv}, {&st2, pu}, n)) hypotheses = false;
    }
    if (!hypotheses) continue;

    ++hypothesis_hits;
    // Conclusion: (t, v) ==_n (t', u).
    EXPECT_TRUE(EfEquivalent({&t1, v}, {&t2, u}, n))
        << "t1=" << t1.ToTerm() << " t2=" << t2.ToTerm();
  }
  // The test must not be vacuous.
  EXPECT_GT(hypothesis_hits, 5);
}

}  // namespace
}  // namespace xpv::fo
