// Tests for acyclic conjunctive queries over binary relations (Section 6):
// GYO-style acyclicity, Yannakakis evaluation vs naive enumeration, and
// the Proposition 8 correspondence with union-free HCL-(L).
#include <gtest/gtest.h>

#include "fo/acq.h"
#include "tree/generators.h"

namespace xpv::fo {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

CqAtom Atom(Axis axis, std::string name, std::string x, std::string y) {
  return {hcl::MakeAxisQuery(axis, std::move(name)), std::move(x),
          std::move(y)};
}

TEST(AcyclicityTest, PathsAndStarsAreAcyclic) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "y", "w"));
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(AcyclicityTest, TriangleIsCyclic) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "z"));
  EXPECT_FALSE(IsAcyclic(q));
}

TEST(AcyclicityTest, ParallelEdgesCollapse) {
  // Two atoms over the same pair are one hyperedge: still acyclic.
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "y"));
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(AcyclicityTest, SelfLoopsIgnored) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kSelf, "a", "x", "x"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(AcyclicityTest, EqualityMergingCanCreateCycles) {
  // child(x,y) & child(y,z) & x=z is cyclic after merging? Merging x,z
  // gives edges {x,y} twice -> still a single hyperedge, acyclic.
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.equalities.push_back({"x", "z"});
  EXPECT_TRUE(IsAcyclic(q));
  // Triangle via equalities.
  ConjunctiveQuery q2;
  q2.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q2.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q2.atoms.push_back(Atom(Axis::kDescendant, "*", "w", "z"));
  q2.equalities.push_back({"w", "x"});
  EXPECT_FALSE(IsAcyclic(q2));
}

TEST(YannakakisTest, RejectsCyclicQueries) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.atoms.push_back(Atom(Axis::kDescendant, "*", "x", "z"));
  q.output_vars = {"x"};
  EXPECT_FALSE(AnswerAcqYannakakis(t, q).ok());
}

TEST(YannakakisTest, SimpleChain) {
  // a(b(c),d): child(x,y) & child(y,z) has only (0,1,2).
  Tree t = MustTree("a(b(c),d)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "y", "z"));
  q.output_vars = {"x", "y", "z"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0, 1, 2}}));
}

TEST(YannakakisTest, ProjectionDeduplicates) {
  // Many (x,y) pairs project to few x.
  Tree t = MustTree("a(b,b,b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.output_vars = {"x"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0}}));
}

TEST(YannakakisTest, UnconstrainedOutputVariable) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "b", "x", "y"));
  q.output_vars = {"w"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0}, {1}}));
}

TEST(YannakakisTest, EmptyOnUnsatisfiable) {
  Tree t = MustTree("a(b)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "zzz", "x", "y"));
  q.output_vars = {"x"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST(YannakakisTest, SelfLoopFiltersCandidates) {
  // self::a(x,x) pins x to a-labeled nodes.
  Tree t = MustTree("a(b,a)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kSelf, "a", "x", "x"));
  q.output_vars = {"x"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0}, {2}}));
}

TEST(YannakakisTest, EqualitiesMergeVariables) {
  Tree t = MustTree("a(b(c),d)");
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(Axis::kChild, "*", "x", "y"));
  q.atoms.push_back(Atom(Axis::kChild, "*", "w", "z"));
  q.equalities.push_back({"y", "w"});
  q.output_vars = {"x", "z"};
  Result<xpath::TupleSet> answers = AnswerAcqYannakakis(t, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (xpath::TupleSet{{0, 2}}));
}

// Randomized differential test: Yannakakis vs naive enumeration on random
// acyclic queries (random forests over up to 4 variables).
class YannakakisRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YannakakisRandomTest, MatchesNaive) {
  Rng rng(GetParam());
  const std::vector<std::string> var_names = {"x", "y", "z", "w"};
  for (int trial = 0; trial < 12; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(9);
    Tree t = RandomTree(rng, opts);

    // Random forest: attach each variable i>0 to a random earlier one.
    ConjunctiveQuery q;
    std::size_t num_vars = 2 + rng.Below(3);
    for (std::size_t i = 1; i < num_vars; ++i) {
      Axis axis = kAllAxes[rng.Below(kAllAxes.size())];
      std::string name = rng.Chance(1, 3) ? "*" : GeneratorLabel(rng.Below(2));
      q.atoms.push_back(
          Atom(axis, name, var_names[rng.Below(i)], var_names[i]));
    }
    // Occasional self-loop and output projection.
    if (rng.Chance(1, 3)) {
      q.atoms.push_back(Atom(Axis::kSelf, GeneratorLabel(rng.Below(2)),
                             var_names[rng.Below(num_vars)],
                             var_names[rng.Below(num_vars)]));
    }
    for (std::size_t i = 0; i < num_vars; ++i) {
      if (rng.Chance(2, 3)) q.output_vars.push_back(var_names[i]);
    }
    if (q.output_vars.empty()) q.output_vars.push_back("x");

    if (!IsAcyclic(q)) continue;  // random self-loops stay acyclic anyway
    Result<xpath::TupleSet> fast = AnswerAcqYannakakis(t, q);
    ASSERT_TRUE(fast.ok()) << fast.status() << " " << q.ToString();
    EXPECT_EQ(*fast, AnswerCqNaive(t, q))
        << q.ToString() << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisRandomTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

// Proposition 8: union-free HCL- formulas convert to ACQs with the same
// answers.
TEST(HclToConjunctiveTest, ConversionPreservesAnswers) {
  Tree t = MustTree("a(b(c),b,c)");
  hcl::HclPtr c = hcl::HclExpr::Compose(
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "b")),
      hcl::HclExpr::Compose(
          hcl::HclExpr::Var("x"),
          hcl::HclExpr::Compose(
              hcl::HclExpr::Filter(hcl::HclExpr::Compose(
                  hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild, "c")),
                  hcl::HclExpr::Var("y"))),
              hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kSelf)))));
  std::vector<std::string> vars = {"x", "y"};
  Result<ConjunctiveQuery> q = HclToConjunctive(*c, vars);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(IsAcyclic(*q)) << q->ToString();
  Result<xpath::TupleSet> yannakakis = AnswerAcqYannakakis(t, *q);
  ASSERT_TRUE(yannakakis.ok());
  EXPECT_EQ(*yannakakis, hcl::EvalHclNaryNaive(t, *c, vars));
}

TEST(HclToConjunctiveTest, RejectsUnions) {
  hcl::HclPtr c = hcl::HclExpr::Union(
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kChild)),
      hcl::HclExpr::Binary(hcl::MakeAxisQuery(Axis::kParent)));
  EXPECT_FALSE(HclToConjunctive(*c, {}).ok());
}

TEST(HclToConjunctiveTest, RandomUnionFreeAgree) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(7);
    Tree t = RandomTree(rng, opts);
    // Union-free random HCL-: chain of steps/vars/filters.
    std::vector<std::string> available = {"x", "y"};
    std::function<hcl::HclPtr(int, std::vector<std::string>)> gen =
        [&](int depth, std::vector<std::string> vars) -> hcl::HclPtr {
      if (depth <= 0 || rng.Chance(1, 4)) {
        if (!vars.empty() && rng.Chance(1, 2)) {
          return hcl::HclExpr::Var(vars[rng.Below(vars.size())]);
        }
        return hcl::HclExpr::Binary(hcl::MakeAxisQuery(
            kAllAxes[rng.Below(kAllAxes.size())],
            rng.Chance(1, 2) ? "*" : GeneratorLabel(rng.Below(2))));
      }
      std::vector<std::string> left, right;
      for (const auto& v : vars) {
        (rng.Chance(1, 2) ? left : right).push_back(v);
      }
      if (rng.Chance(1, 3)) {
        return hcl::HclExpr::Compose(
            hcl::HclExpr::Filter(gen(depth - 1, left)),
            gen(depth - 1, right));
      }
      return hcl::HclExpr::Compose(gen(depth - 1, left),
                                   gen(depth - 1, right));
    };
    hcl::HclPtr c = gen(3, available);
    Result<ConjunctiveQuery> q = HclToConjunctive(*c, available);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(IsAcyclic(*q)) << q->ToString();
    Result<xpath::TupleSet> fast = AnswerAcqYannakakis(t, *q);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, hcl::EvalHclNaryNaive(t, *c, available))
        << c->ToString() << "\ncq: " << q->ToString()
        << "\ntree: " << t.ToTerm();
  }
}

}  // namespace
}  // namespace xpv::fo
