// Tests for the algebraic simplifier: each rewrite preserves the Fig. 2 /
// Section 4 semantics (checked differentially) and never grows the
// expression.
#include <gtest/gtest.h>

#include "ppl/matrix_engine.h"
#include "ppl/simplify.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/parser.h"
#include "xpath/simplify.h"

namespace xpv {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

xpath::PathPtr MustPath(std::string_view text) {
  Result<xpath::PathPtr> p = xpath::ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

TEST(XPathSimplifyTest, IdentityComposition) {
  EXPECT_EQ(xpath::Simplify(MustPath("child::a/."))->ToString(), "child::a");
  EXPECT_EQ(xpath::Simplify(MustPath("./child::a"))->ToString(), "child::a");
  EXPECT_EQ(xpath::Simplify(MustPath("./././child::a/./."))->ToString(),
            "child::a");
}

TEST(XPathSimplifyTest, IdempotentUnionAndIntersect) {
  EXPECT_EQ(xpath::Simplify(MustPath("child::a union child::a"))->ToString(),
            "child::a");
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a intersect child::a"))->ToString(),
      "child::a");
  // Different operands survive.
  EXPECT_EQ(xpath::Simplify(MustPath("child::a union child::b"))->ToString(),
            "child::a union child::b");
}

TEST(XPathSimplifyTest, TrivialTests) {
  EXPECT_EQ(xpath::Simplify(MustPath("child::a[. is .]"))->ToString(),
            "child::a");
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[child::b and . is .]"))->ToString(),
      "child::a[child::b]");
  // `. is .` is absorbing for `or`, and the resulting trivial filter drops.
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[child::b or . is .]"))->ToString(),
      "child::a");
}

TEST(XPathSimplifyTest, DoubleNegation) {
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[not not child::b]"))->ToString(),
      "child::a[child::b]");
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[not not not child::b]"))->ToString(),
      "child::a[not child::b]");
}

TEST(XPathSimplifyTest, IdempotentTests) {
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[child::b and child::b]"))->ToString(),
      "child::a[child::b]");
  EXPECT_EQ(
      xpath::Simplify(MustPath("child::a[child::b or child::b]"))->ToString(),
      "child::a[child::b]");
}

TEST(XPathSimplifyTest, NeverGrows) {
  Rng rng(7);
  for (const char* text :
       {"child::a/./child::b union child::a/./child::b",
        "for $x in ./child::a return $x/.",
        "child::a[not not (child::b and child::b)]",
        "(. union .)/child::a[. is .]"}) {
    xpath::PathPtr p = MustPath(text);
    std::size_t before = p->Size();
    xpath::PathPtr s = xpath::Simplify(std::move(p));
    EXPECT_LE(s->Size(), before) << text;
  }
}

// Semantic preservation on random trees, including for-loops and
// variables.
class XPathSimplifySemanticsTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(XPathSimplifySemanticsTest, PreservesQueries) {
  xpath::PathPtr original = MustPath(GetParam());
  xpath::PathPtr simplified = xpath::Simplify(original->Clone());
  std::set<std::string> var_set = xpath::FreeVars(*original);
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  // Simplification must not change free variables.
  EXPECT_EQ(xpath::FreeVars(*simplified), var_set);
  for (const char* term : {"a(b(c),b)", "a(a(a))", "c(b,a,b)"}) {
    Tree t = MustTree(term);
    xpath::DirectEvaluator eval(t);
    EXPECT_EQ(eval.EvalNaryNaive(*simplified, vars),
              eval.EvalNaryNaive(*original, vars))
        << GetParam() << " simplified to " << simplified->ToString()
        << " on " << term;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, XPathSimplifySemanticsTest,
    ::testing::Values(
        "child::a/./child::b", "./child::a[. is .]",
        "child::a[. is $x]/.", "child::a union child::a",
        "child::a[not not child::b]",
        "child::a[child::b and . is .][. is $x]",
        "for $x in ./child::a return $x/.",
        "(child::a intersect child::a)[not not (. is .)]",
        "descendant::*[. is $x or . is $x]"));

TEST(PplBinSimplifyTest, DoubleComplement) {
  auto p = ppl::PplBinExpr::Complement(ppl::PplBinExpr::Complement(
      ppl::PplBinExpr::Step(Axis::kChild, "a")));
  EXPECT_EQ(ppl::Simplify(std::move(p))->ToString(), "child::a");
}

TEST(PplBinSimplifyTest, SelfComposition) {
  auto p = ppl::PplBinExpr::Compose(ppl::PplBinExpr::Self(),
                                    ppl::PplBinExpr::Step(Axis::kChild, "a"));
  EXPECT_EQ(ppl::Simplify(std::move(p))->ToString(), "child::a");
  auto q = ppl::PplBinExpr::Compose(ppl::PplBinExpr::Step(Axis::kChild, "a"),
                                    ppl::PplBinExpr::Self());
  EXPECT_EQ(ppl::Simplify(std::move(q))->ToString(), "child::a");
}

TEST(PplBinSimplifyTest, NestedFilter) {
  auto p = ppl::PplBinExpr::Filter(
      ppl::PplBinExpr::Filter(ppl::PplBinExpr::Step(Axis::kChild, "a")));
  EXPECT_EQ(ppl::Simplify(std::move(p))->ToString(), "[child::a]");
}

// Fig. 4 output benefits from simplification and stays semantically
// equivalent: the double complements from intersect elimination collapse.
TEST(PplBinSimplifyTest, Fig4OutputShrinksAndAgrees) {
  Rng rng(13);
  for (const char* text :
       {"child::a intersect child::a",
        "child::a intersect (child::b intersect child::b)",
        "child::a[not not child::b]",
        "(child::a union child::a) except child::b"}) {
    Result<xpath::PathPtr> parsed = xpath::ParsePath(text);
    ASSERT_TRUE(parsed.ok());
    Result<ppl::PplBinPtr> bin = ppl::FromXPath(**parsed);
    ASSERT_TRUE(bin.ok());
    std::size_t before = (*bin)->Size();
    ppl::PplBinPtr before_copy = (*bin)->Clone();
    ppl::PplBinPtr simplified = ppl::Simplify(std::move(*bin));
    EXPECT_LE(simplified->Size(), before) << text;

    RandomTreeOptions opts;
    opts.num_nodes = 15;
    Tree t = RandomTree(rng, opts);
    ppl::MatrixEngine engine(t);
    EXPECT_EQ(engine.Evaluate(*simplified), engine.Evaluate(*before_copy))
        << text << " simplified to " << simplified->ToString();
  }
}

class PplBinSimplifyRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PplBinSimplifyRandomTest, PreservesSemantics) {
  Rng rng(GetParam());
  // Random PPLbin built directly from the constructors.
  std::function<ppl::PplBinPtr(int)> gen = [&](int depth) -> ppl::PplBinPtr {
    if (depth <= 0 || rng.Chance(1, 3)) {
      if (rng.Chance(1, 4)) return ppl::PplBinExpr::Self();
      return ppl::PplBinExpr::Step(kAllAxes[rng.Below(kAllAxes.size())],
                                   GeneratorLabel(rng.Below(2)));
    }
    switch (rng.Below(4)) {
      case 0:
        return ppl::PplBinExpr::Compose(gen(depth - 1), gen(depth - 1));
      case 1:
        return ppl::PplBinExpr::Union(gen(depth - 1), gen(depth - 1));
      case 2:
        return ppl::PplBinExpr::Complement(gen(depth - 1));
      default:
        return ppl::PplBinExpr::Filter(gen(depth - 1));
    }
  };
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(15);
    Tree t = RandomTree(rng, opts);
    ppl::PplBinPtr p = gen(4);
    ppl::PplBinPtr copy = p->Clone();
    std::size_t before = p->Size();
    ppl::PplBinPtr simplified = ppl::Simplify(std::move(p));
    EXPECT_LE(simplified->Size(), before);
    ppl::MatrixEngine engine(t);
    EXPECT_EQ(engine.Evaluate(*simplified), engine.Evaluate(*copy))
        << copy->ToString() << " => " << simplified->ToString()
        << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PplBinSimplifyRandomTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

}  // namespace
}  // namespace xpv
