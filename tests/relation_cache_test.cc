// Correctness suite for the algebraic plan optimizer: the per-document
// subrelation cache (ppl/relation_cache.h), the planner's composition
// reassociation DP (engine/planner.h), intra-query hash-consing in the
// matrix engine, and canonical query-cache keying. The load-bearing
// property throughout: results are byte-identical with and without every
// optimization layer, at every thread count, so each layer is pure
// performance and the differentials here are its safety net.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/query_cache.h"
#include "engine/query_service.h"
#include "ppl/matrix_engine.h"
#include "ppl/pplbin.h"
#include "ppl/relation_cache.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace xpv {
namespace {

// ---------------------------------------------- RelationCache unit tests

/// A dense n x n payload with one bit set (distinct bits keep the
/// matrices distinguishable after cache round-trips).
ppl::AnyMatrix OneBit(std::size_t n, std::size_t r, std::size_t c) {
  BitMatrix m(n);
  m.Set(r, c);
  return ppl::AnyMatrix(std::move(m));
}

/// Resident bytes one cached entry costs, measured on a throwaway cache
/// (the accounting constant is an implementation detail the tests must
/// not hardcode).
std::size_t MeasuredEntryBytes(const std::string& key, std::size_t n) {
  ppl::RelationCache probe(1u << 30);
  probe.Put(key, std::make_shared<const ppl::AnyMatrix>(OneBit(n, 0, 0)));
  return probe.stats().resident_bytes;
}

TEST(RelationCacheTest, LruEvictsToBudgetAndPinnedEntriesSurvive) {
  const std::size_t n = 256;
  const std::size_t entry = MeasuredEntryBytes("k1", n);
  // Room for three entries, not four.
  ppl::RelationCache cache(3 * entry + entry / 2);
  cache.Put("k1", std::make_shared<const ppl::AnyMatrix>(OneBit(n, 1, 1)));
  cache.Put("k2", std::make_shared<const ppl::AnyMatrix>(OneBit(n, 2, 2)));
  cache.Put("k3", std::make_shared<const ppl::AnyMatrix>(OneBit(n, 3, 3)));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch k1 so k2 becomes the LRU tail, and keep the handle: eviction
  // must only drop the cache's reference, not the matrix.
  std::shared_ptr<const ppl::AnyMatrix> pinned = cache.Get("k2");
  ASSERT_NE(pinned, nullptr);
  ASSERT_NE(cache.Get("k1"), nullptr);
  cache.Put("k4", std::make_shared<const ppl::AnyMatrix>(OneBit(n, 4, 4)));

  const ppl::RelationCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, cache.max_bytes());
  EXPECT_EQ(cache.Get("k3"), nullptr);  // LRU tail at insertion time
  EXPECT_NE(cache.Get("k1"), nullptr);
  EXPECT_NE(cache.Get("k4"), nullptr);
  // The pinned value is still the exact matrix that was evicted.
  EXPECT_TRUE(pinned->Get(2, 2));
  EXPECT_EQ(pinned->Count(), 1u);
}

TEST(RelationCacheTest, OversizeValueIsNotInserted) {
  const std::size_t n = 256;
  const std::size_t entry = MeasuredEntryBytes("big", n);
  ppl::RelationCache cache(entry / 2);
  cache.Put("big", std::make_shared<const ppl::AnyMatrix>(OneBit(n, 0, 0)));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(RelationCacheTest, ResidentBytesTrackPayloadWithinTenPercent) {
  // With multi-KiB payloads the fixed per-entry index overhead must stay
  // inside 10% of the payload bytes -- the budget tracks real memory.
  ppl::RelationCache cache(1u << 30);
  std::size_t payload = 0;
  for (int i = 0; i < 8; ++i) {
    ppl::AnyMatrix m = OneBit(256, static_cast<std::size_t>(i), 0);
    payload += m.resident_bytes();
    cache.Put("key-" + std::to_string(i),
              std::make_shared<const ppl::AnyMatrix>(std::move(m)));
  }
  const std::size_t resident = cache.stats().resident_bytes;
  EXPECT_GE(resident, payload);
  EXPECT_LE(resident, payload + payload / 10);
}

// ------------------------------------- cache-on/off differential batches

ppl::PplBinPtr RandomPplBin(Rng& rng, int depth, bool allow_complement) {
  if (depth <= 0 || rng.Chance(1, 3)) {
    if (rng.Chance(1, 5)) return ppl::PplBinExpr::Self();
    return ppl::PplBinExpr::Step(
        kAllAxes[rng.Below(kAllAxes.size())],
        rng.Chance(1, 3) ? "*" : GeneratorLabel(rng.Below(3)));
  }
  switch (rng.Below(allow_complement ? 4u : 3u)) {
    case 0:
      return ppl::PplBinExpr::Compose(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 1:
      return ppl::PplBinExpr::Union(
          RandomPplBin(rng, depth - 1, allow_complement),
          RandomPplBin(rng, depth - 1, allow_complement));
    case 2:
      return ppl::PplBinExpr::Filter(
          RandomPplBin(rng, depth - 1, allow_complement));
    default:
      return ppl::PplBinExpr::Complement(
          RandomPplBin(rng, depth - 1, allow_complement));
  }
}

void ExpectPayloadsEqual(const std::vector<engine::QueryResult>& a,
                         const std::vector<engine::QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "job " << i;
    EXPECT_EQ(a[i].relation, b[i].relation) << "job " << i;
    EXPECT_EQ(a[i].from_root, b[i].from_root) << "job " << i;
    EXPECT_EQ(a[i].tuples, b[i].tuples) << "job " << i;
    EXPECT_EQ(a[i].boolean, b[i].boolean) << "job " << i;
    EXPECT_EQ(a[i].count, b[i].count) << "job " << i;
  }
}

/// One evaluation-mode configuration of the on/off differential.
struct ModeConfig {
  const char* name;
  bool positive_only;  // GKP needs positive queries
  std::optional<engine::EnginePlan> engine_override;
  std::optional<MatrixRepr> repr_override;
};

TEST(RelationCacheDifferentialTest, CacheOnOffByteIdenticalEverywhere) {
  const std::vector<ModeConfig> modes = {
      {"gkp", true, engine::EnginePlan::kGkpPositive, std::nullopt},
      {"matrix-dense", false, std::nullopt, MatrixRepr::kDense},
      {"matrix-sparse", false, std::nullopt, MatrixRepr::kSparse},
  };
  const std::vector<engine::ResultShape> shapes = {
      engine::ResultShape::kFullRelation, engine::ResultShape::kFromRootSet,
      engine::ResultShape::kBoolean, engine::ResultShape::kCount};
  for (const ModeConfig& mode : modes) {
    Rng rng(0x5eed);
    // Two documents per store; jobs repeat queries so steady-state
    // batches are all cache hits on the enabled side.
    std::vector<Tree> trees;
    for (int i = 0; i < 2; ++i) {
      RandomTreeOptions opts;
      opts.num_nodes = 8 + rng.Below(20);
      opts.alphabet_size = 3;
      trees.push_back(RandomTree(rng, opts));
    }
    std::vector<std::string> texts;
    for (int i = 0; i < 10; ++i) {
      texts.push_back(
          ppl::ToXPath(*RandomPplBin(rng, 3, !mode.positive_only))
              ->ToString());
    }
    engine::DocumentStore store_on;  // default budget: cache enabled
    engine::DocumentStoreOptions off;
    off.relation_cache_bytes = 0;
    engine::DocumentStore store_off(off);
    std::vector<engine::DocumentId> ids_on, ids_off;
    for (const Tree& t : trees) {
      Tree copy_on = t, copy_off = t;
      ids_on.push_back(store_on.Insert(std::move(copy_on)));
      ids_off.push_back(store_off.Insert(std::move(copy_off)));
    }
    std::vector<engine::QueryJob> jobs;
    for (int rep = 0; rep < 2; ++rep) {
      for (std::size_t i = 0; i < texts.size(); ++i) {
        engine::QueryJob job;
        job.document = ids_on[i % ids_on.size()];  // same ids in both stores
        job.query = texts[i];
        job.shape = shapes[(i + static_cast<std::size_t>(rep)) % shapes.size()];
        job.engine_override = mode.engine_override;
        job.repr_override = mode.repr_override;
        jobs.push_back(std::move(job));
      }
    }
    ASSERT_EQ(ids_on, ids_off);
    for (std::size_t threads : {1u, 2u, 8u}) {
      engine::QueryService on(
          {.num_threads = threads, .document_store = &store_on});
      engine::QueryService off_service(
          {.num_threads = threads, .document_store = &store_off});
      // Two rounds each: the second round on the enabled store is served
      // from the now-warm subrelation cache and must still match.
      auto on_cold = on.EvaluateBatch(jobs);
      auto on_warm = on.EvaluateBatch(jobs);
      auto off_cold = off_service.EvaluateBatch(jobs);
      for (const auto& r : on_cold) {
        ASSERT_TRUE(r.status.ok()) << mode.name << ": " << r.status;
      }
      ExpectPayloadsEqual(on_cold, on_warm);
      ExpectPayloadsEqual(on_cold, off_cold);
    }
  }
}

TEST(RelationCacheDifferentialTest, TinyBudgetEvictsButStaysByteIdentical) {
  // A budget far below one relation forces constant eviction churn; the
  // results must not notice, and the resident gauge must respect it.
  Rng rng(0xcac4e);
  RandomTreeOptions opts;
  opts.num_nodes = 24;
  opts.alphabet_size = 3;
  Tree t = RandomTree(rng, opts);
  engine::DocumentStoreOptions tiny;
  tiny.relation_cache_bytes = 2048;
  engine::DocumentStore store_tiny(tiny);
  engine::DocumentStoreOptions off;
  off.relation_cache_bytes = 0;
  engine::DocumentStore store_off(off);
  Tree copy_a = t, copy_b = t;
  const engine::DocumentId id_tiny = store_tiny.Insert(std::move(copy_a));
  const engine::DocumentId id_off = store_off.Insert(std::move(copy_b));
  ASSERT_EQ(id_tiny, id_off);
  std::vector<engine::QueryJob> jobs;
  for (int i = 0; i < 12; ++i) {
    engine::QueryJob job;
    job.document = id_tiny;
    job.query =
        ppl::ToXPath(*RandomPplBin(rng, 3, /*allow_complement=*/true))
            ->ToString();
    job.engine_override = engine::EnginePlan::kMatrixGeneral;
    jobs.push_back(std::move(job));
  }
  engine::QueryService tiny_service(
      {.num_threads = 2, .document_store = &store_tiny});
  engine::QueryService off_service(
      {.num_threads = 2, .document_store = &store_off});
  auto a = tiny_service.EvaluateBatch(jobs);
  auto b = tiny_service.EvaluateBatch(jobs);
  auto c = off_service.EvaluateBatch(jobs);
  ExpectPayloadsEqual(a, b);
  ExpectPayloadsEqual(a, c);
  EXPECT_LE(store_tiny.stats().relation_cache_bytes, 2048u);
}

// ----------------------------------------- reassociation differentials

/// A path tree whose every 128th node is labeled "rare": the selective
/// last factor the reassociation DP should compose first.
Tree SkewPathTree(std::size_t nodes) {
  TreeBuilder builder;
  for (std::size_t i = 0; i < nodes; ++i) {
    builder.Open(i % 128 == 127 ? "rare" : "a");
  }
  for (std::size_t i = 0; i < nodes; ++i) builder.Close();
  return std::move(builder).Finish().value();
}

TEST(ReassociationTest, ForcedParseOrderDifferential) {
  // "descendant::*/child::*/child::rare" parses left-associated, so the
  // wide descendant-times-child product runs first; the DP must prefer
  // composing the selective child::rare factor first -- and both
  // associations must produce the same bytes.
  const std::string query = "descendant::*/child::*/child::rare";
  engine::DocumentStore store;
  const engine::DocumentId id = store.Insert(SkewPathTree(512));
  engine::QueryService service(
      {.num_threads = 1, .document_store = &store});

  engine::QueryJob optimized;
  optimized.document = id;
  optimized.query = query;
  optimized.shape = engine::ResultShape::kFullRelation;
  optimized.engine_override = engine::EnginePlan::kMatrixGeneral;
  engine::QueryJob forced = optimized;
  forced.force_parse_order = true;

  auto results = service.EvaluateBatch({optimized, forced});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  ASSERT_TRUE(results[1].status.ok()) << results[1].status;

  // The optimized plan actually changed the association...
  EXPECT_GT(results[0].plan.chains_reassociated, 0u);
  ASSERT_NE(results[0].plan.reassociated, nullptr);
  auto compiled = engine::CompileQuery(query);
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(results[0].plan.reassociated->ToString(),
            (*compiled)->pplbin->ToString());
  // ...the forced plan did not...
  EXPECT_EQ(results[1].plan.chains_reassociated, 0u);
  EXPECT_EQ(results[1].plan.reassociated, nullptr);
  // ...and the payloads are byte-identical anyway.
  EXPECT_EQ(results[0].relation, results[1].relation);
  EXPECT_EQ(results[0].from_root, results[1].from_root);
}

TEST(ReassociationTest, RandomChainsMatchParseOrderEvaluation) {
  // Fuzz the DP: on random trees, every random compose-heavy query must
  // produce identical payloads with and without force_parse_order.
  Rng rng(0xa550c);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 8 + rng.Below(24);
    opts.alphabet_size = 3;
    Tree t = RandomTree(rng, opts);
    engine::DocumentStore store;
    const engine::DocumentId id = store.Insert(std::move(t));
    engine::QueryService service(
        {.num_threads = 1, .document_store = &store});
    engine::QueryJob job;
    job.document = id;
    job.query =
        ppl::ToXPath(*RandomPplBin(rng, 4, /*allow_complement=*/true))
            ->ToString();
    job.engine_override = engine::EnginePlan::kMatrixGeneral;
    engine::QueryJob forced = job;
    forced.force_parse_order = true;
    auto results = service.EvaluateBatch({job, forced});
    ASSERT_TRUE(results[0].status.ok())
        << job.query << ": " << results[0].status;
    ASSERT_TRUE(results[1].status.ok())
        << job.query << ": " << results[1].status;
    EXPECT_EQ(results[0].relation, results[1].relation) << job.query;
    EXPECT_EQ(results[0].from_root, results[1].from_root) << job.query;
  }
}

// --------------------------------------------------- stats consistency

TEST(RelationCacheStatsTest, ServiceAndStoreCountersAgree) {
  Rng rng(0x57a75);
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  opts.alphabet_size = 3;
  engine::DocumentStore store;
  std::vector<engine::DocumentId> ids;
  for (int i = 0; i < 2; ++i) {
    ids.push_back(store.Insert(RandomTree(rng, opts)));
  }
  std::vector<engine::QueryJob> jobs;
  for (int i = 0; i < 16; ++i) {
    engine::QueryJob job;
    job.document = ids[static_cast<std::size_t>(i) % ids.size()];
    // Repeat 4 distinct queries so later consults hit.
    Rng qrng(static_cast<std::uint64_t>(i % 4) + 1);
    job.query =
        ppl::ToXPath(*RandomPplBin(qrng, 3, /*allow_complement=*/true))
            ->ToString();
    job.shape = engine::ResultShape::kFullRelation;
    job.engine_override = engine::EnginePlan::kMatrixGeneral;
    jobs.push_back(std::move(job));
  }
  engine::QueryService service(
      {.num_threads = 8, .document_store = &store});
  for (const auto& r : service.EvaluateBatch(jobs)) {
    ASSERT_TRUE(r.status.ok()) << r.status;
  }
  for (const auto& r : service.EvaluateBatch(jobs)) {
    ASSERT_TRUE(r.status.ok()) << r.status;
  }
  const engine::ServiceStats svc = service.stats();
  const engine::DocumentStoreStats doc = store.stats();
  // Every consult in this workload came from a store-served job, so the
  // service's per-job counters and the store's per-cache counters are
  // two views of the same events.
  EXPECT_GT(svc.subrel_misses, 0u);
  EXPECT_GT(svc.subrel_hits, 0u);  // warm second batch
  EXPECT_EQ(svc.subrel_hits, doc.relation_hits);
  EXPECT_EQ(svc.subrel_misses, doc.relation_misses);
  EXPECT_GT(svc.subrel_bytes, 0u);
  EXPECT_EQ(svc.subrel_bytes, doc.relation_cache_bytes);

  // Stream consults land in the store's counters only (documented on
  // StreamState::relations): the service's job counters must not move.
  auto stream =
      service.OpenStream(ids[0], "descendant::* except child::a");
  ASSERT_TRUE(stream.ok()) << stream.status();
  while (!stream->done()) {
    auto batch = stream->NextBatch(64);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch->empty()) break;
  }
  const engine::ServiceStats svc_after = service.stats();
  const engine::DocumentStoreStats doc_after = store.stats();
  EXPECT_EQ(svc_after.subrel_hits, svc.subrel_hits);
  EXPECT_EQ(svc_after.subrel_misses, svc.subrel_misses);
  EXPECT_GE(doc_after.relation_hits + doc_after.relation_misses,
            doc.relation_hits + doc.relation_misses);
}

// ------------------------------------------- intra-query hash-consing

TEST(HashConsingTest, DuplicateSubtreesEvaluateOnce) {
  // (a/b) | ((a/b)/c): without hash-consing the engine runs 3 Boolean
  // products; with it, the duplicated a/b costs one, for 2 total.
  Tree t = *Tree::ParseTerm("a(b(c),a(b(c(a))),c(a(b)))");
  using ppl::PplBinExpr;
  ppl::PplBinPtr ab = PplBinExpr::Compose(
      PplBinExpr::Step(Axis::kChild, "a"), PplBinExpr::Step(Axis::kChild, "b"));
  ppl::PplBinPtr p = PplBinExpr::Union(
      ab->Clone(), PplBinExpr::Compose(
                       ab->Clone(), PplBinExpr::Step(Axis::kDescendant, "c")));
  ppl::MatrixEngine engine(t);
  Result<ppl::AnyMatrix> rel = engine.EvaluateAny(*p);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(engine.stats().dense_products + engine.stats().sparse_products,
            2u);
}

// -------------------------------------------- canonical query caching

TEST(QueryCacheTest, SyntacticVariantsShareOneEntry) {
  engine::QueryCache cache;
  auto a = cache.GetOrCompile("descendant::a/child::b");
  auto b = cache.GetOrCompile("  descendant::a  /  child::b  ");
  auto c = cache.GetOrCompile("(descendant::a)/child::b");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ((*a)->canonical_text, (*b)->canonical_text);
  EXPECT_EQ((*a)->canonical_text, (*c)->canonical_text);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.aliases(), 2u);
  // First sighting of each raw variant compiles (misses = compilations);
  // repeats are served through the alias index without recompiling.
  EXPECT_EQ(cache.misses(), 3u);
  cache.GetOrCompile("  descendant::a  /  child::b  ");
  cache.GetOrCompile("(descendant::a)/child::b");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(QueryCacheTest, CommutedUnionsShareOneEntry) {
  engine::QueryCache cache;
  auto a = cache.GetOrCompile("child::a union child::b");
  auto b = cache.GetOrCompile("child::b union child::a");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->canonical_text, (*b)->canonical_text);
  EXPECT_EQ(cache.size(), 1u);
  // The commuted spelling aliases onto the same canonical entry: its
  // repeat is a hit, not a third compilation.
  cache.GetOrCompile("child::b union child::a");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace xpv
