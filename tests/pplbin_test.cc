// Tests for PPLbin (Section 4): the Fig. 3 AST, the Fig. 4 translation
// from variable-free Core XPath 2.0, the Boolean-matrix engine (Theorem 2),
// and the GKP successor-set engine for the positive fragment.
#include <gtest/gtest.h>

#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"
#include "ppl/pplbin.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"

namespace xpv::ppl {
namespace {

Tree MustTree(std::string_view term) {
  Result<Tree> t = Tree::ParseTerm(term);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

xpath::PathPtr MustPath(std::string_view text) {
  Result<xpath::PathPtr> p = xpath::ParsePath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

PplBinPtr MustTranslate(std::string_view text) {
  Result<PplBinPtr> p = FromXPath(*MustPath(text));
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return std::move(p).value();
}

TEST(PplBinAstTest, FactoriesAndPrinting) {
  PplBinPtr p = PplBinExpr::Compose(
      PplBinExpr::Step(Axis::kChild, "a"),
      PplBinExpr::Union(PplBinExpr::Step(Axis::kDescendant, "*"),
                        PplBinExpr::Self()));
  EXPECT_EQ(p->ToString(), "child::a/(descendant::* union self::*)");
  EXPECT_EQ(p->Size(), 5u);
  EXPECT_TRUE(p->IsPositive());
}

TEST(PplBinAstTest, ComplementPrinting) {
  PplBinPtr p = PplBinExpr::Complement(PplBinExpr::Step(Axis::kChild, "a"));
  EXPECT_EQ(p->ToString(), "except child::a");
  EXPECT_FALSE(p->IsPositive());
  PplBinPtr q = PplBinExpr::Compose(PplBinExpr::Self(), p->Clone());
  EXPECT_EQ(q->ToString(), "self::*/except child::a");
  PplBinPtr r = PplBinExpr::Complement(
      PplBinExpr::Union(PplBinExpr::Self(), PplBinExpr::Self()));
  EXPECT_EQ(r->ToString(), "except (self::* union self::*)");
}

TEST(PplBinAstTest, FilterPrinting) {
  PplBinPtr p = PplBinExpr::Filter(PplBinExpr::Step(Axis::kChild, "b"));
  EXPECT_EQ(p->ToString(), "[child::b]");
}

TEST(PplBinAstTest, CloneAndEquals) {
  PplBinPtr p = MustTranslate("child::a[not child::b] union descendant::c");
  PplBinPtr q = p->Clone();
  EXPECT_TRUE(p->Equals(*q));
  q->kind = PplBinKind::kFilter;
  EXPECT_FALSE(p->Equals(*q));
}

TEST(Fig4Test, RejectsVariables) {
  EXPECT_FALSE(FromXPath(*MustPath("$x")).ok());
  EXPECT_FALSE(FromXPath(*MustPath("child::a[. is $x]")).ok());
  EXPECT_FALSE(
      FromXPath(*MustPath("for $x in child::a return child::b")).ok());
}

// The Fig. 4 translation preserves semantics: compare the PPLbin matrix
// engine result with the direct Core XPath 2.0 evaluator, on handcrafted
// and random inputs.
void ExpectSameSemantics(const Tree& t, std::string_view xpath_text) {
  xpath::PathPtr original = MustPath(xpath_text);
  ASSERT_TRUE(xpath::CheckNoVariables(*original).ok()) << xpath_text;
  Result<PplBinPtr> translated = FromXPath(*original);
  ASSERT_TRUE(translated.ok()) << translated.status();

  xpath::DirectEvaluator direct(t);
  MatrixEngine engine(t);
  EXPECT_EQ(engine.Evaluate(**translated), direct.EvalPath(*original, {}))
      << "expr: " << xpath_text << "\ntranslated: "
      << (*translated)->ToString() << "\ntree: " << t.ToTerm();
}

class Fig4SemanticsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig4SemanticsTest, AgreesWithDirectEvaluator) {
  // A tree exercising labels a/b/c at assorted depths and sibling layouts.
  Tree t1 = MustTree("a(b(c,a),c(a(b),b),b)");
  Tree t2 = MustTree("a(a(a(a)))");
  Tree t3 = MustTree("c(b,b,b,a)");
  ExpectSameSemantics(t1, GetParam());
  ExpectSameSemantics(t2, GetParam());
  ExpectSameSemantics(t3, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Fig4SemanticsTest,
    ::testing::Values(
        "child::a", ".", "self::b", "child::a/descendant::b",
        "child::* union descendant::c",
        "child::a intersect child::*",
        "descendant::* except descendant::a",
        "child::a[child::b]", "child::a[not child::b]",
        "child::a[child::b and child::c]",
        "child::a[child::b or not child::c]",
        "child::a[not (child::b and child::c)]",
        "child::a[not (child::b or child::c)]",
        "child::a[not not child::b]",
        "child::a[. is .]", "child::a[not (. is .)]",
        "(child::a union child::b)/child::*",
        "descendant::*[following_sibling::b]",
        "ancestor::* union preceding_sibling::*",
        "child::a[descendant::b[child::c]]",
        "(descendant::* except child::*)[child::a]",
        "parent::*/child::a except self::*"));

// Randomized differential testing: random variable-free expressions on
// random trees.
class RandomExprGen {
 public:
  explicit RandomExprGen(Rng& rng) : rng_(rng) {}

  xpath::PathPtr GenPath(int depth) {
    using xpath::PathExpr;
    if (depth <= 0 || rng_.Chance(1, 3)) {
      if (rng_.Chance(1, 6)) return PathExpr::Dot();
      return PathExpr::Step(RandomAxis(), RandomName());
    }
    switch (rng_.Below(5)) {
      case 0:
        return PathExpr::Compose(GenPath(depth - 1), GenPath(depth - 1));
      case 1:
        return PathExpr::Union(GenPath(depth - 1), GenPath(depth - 1));
      case 2:
        return PathExpr::Intersect(GenPath(depth - 1), GenPath(depth - 1));
      case 3:
        return PathExpr::Except(GenPath(depth - 1), GenPath(depth - 1));
      default:
        return PathExpr::Filter(GenPath(depth - 1), GenTest(depth - 1));
    }
  }

  xpath::TestPtr GenTest(int depth) {
    using xpath::TestExpr;
    if (depth <= 0 || rng_.Chance(1, 3)) {
      return TestExpr::Path(GenPath(0));
    }
    switch (rng_.Below(3)) {
      case 0:
        return TestExpr::Not(GenTest(depth - 1));
      case 1:
        return TestExpr::And(GenTest(depth - 1), GenTest(depth - 1));
      default:
        return TestExpr::Or(GenTest(depth - 1), GenTest(depth - 1));
    }
  }

 private:
  Axis RandomAxis() { return kAllAxes[rng_.Below(kAllAxes.size())]; }
  std::string RandomName() {
    if (rng_.Chance(1, 4)) return "*";
    return GeneratorLabel(rng_.Below(3));
  }

  Rng& rng_;
};

class Fig4RandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig4RandomTest, RandomExpressionsAgree) {
  Rng rng(GetParam());
  RandomExprGen gen(rng);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(20);
    Tree t = RandomTree(rng, opts);
    xpath::PathPtr p = gen.GenPath(3);
    Result<PplBinPtr> translated = FromXPath(*p);
    ASSERT_TRUE(translated.ok()) << translated.status();
    xpath::DirectEvaluator direct(t);
    MatrixEngine engine(t);
    EXPECT_EQ(engine.Evaluate(**translated), direct.EvalPath(*p, {}))
        << "expr: " << p->ToString() << "\ntree: " << t.ToTerm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig4RandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(MatrixEngineTest, NodesRelationIsFull) {
  Tree t = MustTree("a(b(c),d(e,f))");
  MatrixEngine engine(t);
  EXPECT_EQ(engine.Evaluate(*MakeNodesRelation()),
            BitMatrix::Full(t.size()));
}

TEST(MatrixEngineTest, NaiveModeAgrees) {
  Rng rng(5);
  RandomTreeOptions opts;
  opts.num_nodes = 25;
  Tree t = RandomTree(rng, opts);
  PplBinPtr p = MustTranslate(
      "descendant::a[not child::b]/following_sibling::* union child::c");
  MatrixEngine packed(t, MultiplyMode::kBitPacked);
  MatrixEngine naive(t, MultiplyMode::kNaive);
  EXPECT_EQ(packed.Evaluate(*p), naive.Evaluate(*p));
}

TEST(MatrixEngineTest, EvaluateFromRoot) {
  Tree t = MustTree("a(b(c),d)");
  MatrixEngine engine(t);
  BitVector reachable =
      engine.EvaluateFromRoot(*MustTranslate("child::*/child::*")).value();
  EXPECT_EQ(reachable.ToIndices(), (std::vector<std::uint32_t>{2}));
}

TEST(MatrixEngineTest, ToXPathRoundTripSemantics) {
  // ToXPath o FromXPath preserves the denotation.
  Tree t = MustTree("a(b(c,a),c(a,b))");
  xpath::DirectEvaluator direct(t);
  for (const char* text :
       {"child::a[not child::b]", "descendant::* except child::a",
        "child::a intersect descendant::a"}) {
    PplBinPtr bin = MustTranslate(text);
    xpath::PathPtr back = ToXPath(*bin);
    ASSERT_TRUE(back);
    // The xpath printout of the back-translation must be PPL (it is
    // variable-free, hence trivially in PPL).
    EXPECT_TRUE(xpath::CheckPpl(*back).ok()) << back->ToString();
    EXPECT_EQ(direct.EvalPath(*back, {}),
              direct.EvalPath(*MustPath(text), {}))
        << text;
  }
}

TEST(GkpEngineTest, RejectsComplement) {
  Tree t = MustTree("a(b)");
  GkpEngine gkp(t);
  PplBinPtr p = PplBinExpr::Complement(PplBinExpr::Self());
  BitVector from(t.size());
  EXPECT_FALSE(gkp.Image(*p, from).ok());
  EXPECT_FALSE(gkp.Relation(*p).ok());
  EXPECT_FALSE(gkp.Domain(*p).ok());
}

class GkpRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

// GKP engine agrees with the matrix engine on positive expressions.
TEST_P(GkpRandomTest, RelationMatchesMatrixEngine) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeOptions opts;
    opts.num_nodes = 1 + rng.Below(25);
    Tree t = RandomTree(rng, opts);
    RandomExprGen gen(rng);
    // Regenerate until positive (complement comes only from
    // intersect/except/not, so just filter).
    xpath::PathPtr p;
    PplBinPtr bin;
    do {
      p = gen.GenPath(3);
      Result<PplBinPtr> translated = FromXPath(*p);
      ASSERT_TRUE(translated.ok());
      bin = std::move(translated).value();
    } while (!bin->IsPositive());

    MatrixEngine matrix(t);
    GkpEngine gkp(t);
    Result<BitMatrix> relation = gkp.Relation(*bin);
    ASSERT_TRUE(relation.ok());
    EXPECT_EQ(*relation, matrix.Evaluate(*bin))
        << bin->ToString() << "\ntree: " << t.ToTerm();
  }
}

TEST_P(GkpRandomTest, DomainMatchesNonEmptyRows) {
  Rng rng(GetParam() + 500);
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(rng, opts);
  MatrixEngine matrix(t);
  GkpEngine gkp(t);
  for (const char* text :
       {"child::a", "descendant::b/child::*", "child::a[child::b]",
        "following_sibling::*[descendant::c]",
        "parent::*/child::a union self::b"}) {
    PplBinPtr bin = MustTranslate(text);
    ASSERT_TRUE(bin->IsPositive()) << text;
    Result<BitVector> domain = gkp.Domain(*bin);
    ASSERT_TRUE(domain.ok());
    EXPECT_EQ(*domain, matrix.Evaluate(*bin).NonEmptyRows()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GkpRandomTest,
                         ::testing::Values(7, 8, 9, 10));

TEST(GkpEngineTest, ImageOnPathTree) {
  Tree t = PathTree(30);
  GkpEngine gkp(t);
  BitVector from(t.size());
  from.Set(0);
  Result<BitVector> image =
      gkp.Image(*MustTranslate("descendant::*"), from);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->Count(), 29u);
}

TEST(MakeNodesRelationTest, IsPositiveAndFull) {
  PplBinPtr nodes = MakeNodesRelation();
  EXPECT_TRUE(nodes->IsPositive());
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_nodes = 17;
  Tree t = RandomTree(rng, opts);
  GkpEngine gkp(t);
  Result<BitMatrix> relation = gkp.Relation(*nodes);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, BitMatrix::Full(t.size()));
}

}  // namespace
}  // namespace xpv::ppl
