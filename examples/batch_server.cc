// Demo of the batched query-evaluation subsystem: documents are loaded
// into a sharded DocumentStore corpus once, then batches of
// (document-id, query) jobs are evaluated across a thread pool, printing
// per-plan routing, cache effectiveness (query cache and per-document
// axis caches, per shard), and throughput. A second identical batch shows
// the cross-batch axis-cache reuse the corpus layer buys, and a final
// burst goes through the admission-controlled TrySubmit front door,
// demonstrating kOverloaded backpressure and the ServiceStats snapshot.
//
//   ./batch_server [num_threads] [tree_nodes] [batch_size]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "tree/generators.h"

namespace {

using namespace xpv;

const char* kQueryMix[] = {
    // Positive PPLbin -> GkpEngine (linear-time set images).
    "descendant::book/child::author",
    "child::*[descendant::title]",
    "descendant::*[child::author]/following_sibling::*",
    // General PPLbin (complement) -> MatrixEngine (Boolean matrices).
    "descendant::* except descendant::book",
    "child::* except child::author[following_sibling::title]",
    // N-ary PPL (free variables) -> Section 7 answer machinery.
    "descendant::book[child::author]/$x",
    "$x/child::title",
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_threads =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t tree_nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 120;
  const std::size_t batch_size =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 200;

  // Corpus: a few bibliography-shaped documents, stored once and addressed
  // by DocumentId from then on. Four shards so the shard-aware batch
  // scheduler has independent lock domains to group jobs by.
  Rng rng(1);
  engine::DocumentStore store({.max_hot_caches = 64, .num_shards = 4});
  std::vector<engine::DocumentId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(store.Insert(BibliographyTree(rng, tree_nodes / 6)));
  }

  std::vector<engine::QueryJob> jobs;
  for (std::size_t i = 0; i < batch_size; ++i) {
    engine::QueryJob job;
    job.document = ids[rng.Below(ids.size())];
    job.query = kQueryMix[rng.Below(std::size(kQueryMix))];
    jobs.push_back(std::move(job));
  }

  engine::QueryService service({.num_threads = num_threads,
                                .document_store = &store,
                                .max_queued_batches = 2,
                                .max_inflight_batches = 1});
  std::printf(
      "batch_server: %zu jobs over %zu stored documents, %zu worker "
      "thread(s)\n",
      jobs.size(), store.size(), service.num_threads());

  Timer timer;
  std::vector<engine::QueryResult> results = service.EvaluateBatch(jobs);
  const double seconds = timer.ElapsedSeconds();

  // A repeated batch reuses the per-document axis caches built above.
  Timer warm_timer;
  std::vector<engine::QueryResult> warm_results = service.EvaluateBatch(jobs);
  const double warm_seconds = warm_timer.ElapsedSeconds();

  std::size_t by_plan[3] = {0, 0, 0};
  std::size_t failed = 0;
  for (const engine::QueryResult& r : warm_results) {
    if (!r.status.ok()) ++failed;
  }
  std::size_t selected_cells = 0;
  std::size_t tuples = 0;
  for (const engine::QueryResult& r : results) {
    if (!r.status.ok()) {
      ++failed;
      continue;
    }
    ++by_plan[static_cast<int>(r.plan.engine)];
    selected_cells += r.relation.Count();
    tuples += r.tuples.size();
  }

  std::printf("  gkp-positive:   %zu jobs\n", by_plan[0]);
  std::printf("  matrix-general: %zu jobs\n", by_plan[1]);
  std::printf("  nary-answer:    %zu jobs (%zu answer tuples)\n", by_plan[2],
              tuples);
  std::printf("  failed:         %zu jobs\n", failed);
  std::printf("  selected pairs: %zu\n", selected_cells);
  std::printf("  query cache:    %zu distinct compiled, %zu hits / %zu misses\n",
              service.cache().size(), service.cache().hits(),
              service.cache().misses());
  const engine::ServiceStats kernel_stats = service.stats();
  std::printf(
      "  matrix kernels: %llu dense / %llu sparse products, %llu repr "
      "crossovers\n",
      static_cast<unsigned long long>(kernel_stats.dense_products),
      static_cast<unsigned long long>(kernel_stats.sparse_products),
      static_cast<unsigned long long>(kernel_stats.repr_crossovers));
  std::printf(
      "  subrelations:   %llu hits / %llu misses (%zu KiB resident), "
      "%llu chains reassociated\n",
      static_cast<unsigned long long>(kernel_stats.subrel_hits),
      static_cast<unsigned long long>(kernel_stats.subrel_misses),
      kernel_stats.subrel_bytes / 1024,
      static_cast<unsigned long long>(kernel_stats.chains_reassociated));
  const engine::DocumentStoreStats stats = store.stats();
  std::printf(
      "  axis caches:    %llu built, %llu hits, %llu retired (%zu hot, "
      "%zu KiB)\n",
      static_cast<unsigned long long>(stats.cache_builds),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_retirements),
      stats.hot_caches, stats.hot_cache_bytes / 1024);
  const std::vector<engine::DocumentStoreStats> per_shard =
      store.shard_stats();
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const auto& ss = per_shard[s];
    const std::uint64_t lookups = ss.cache_hits + ss.cache_builds;
    std::printf(
        "    shard %zu:      %zu docs, %llu/%llu cache hits (%.0f%%), "
        "%zu hot\n",
        s, ss.documents, static_cast<unsigned long long>(ss.cache_hits),
        static_cast<unsigned long long>(lookups),
        lookups == 0 ? 0.0 : 100.0 * static_cast<double>(ss.cache_hits) /
                                 static_cast<double>(lookups),
        ss.hot_caches);
  }
  std::printf("  wall time:      %.3f s cold  (%.0f jobs/s)\n", seconds,
              static_cast<double>(jobs.size()) / seconds);
  std::printf("  wall time:      %.3f s warm  (%.0f jobs/s)\n", warm_seconds,
              static_cast<double>(jobs.size()) / warm_seconds);

  // The same batch again, declaring that callers only consume the
  // from-root node set: the planner routes every binary query through
  // the monadic row-restricted fast path (no O(n^2) relation).
  std::vector<engine::QueryJob> monadic_jobs = jobs;
  for (engine::QueryJob& job : monadic_jobs) {
    job.shape = engine::ResultShape::kFromRootSet;
  }
  Timer monadic_timer;
  std::vector<engine::QueryResult> monadic_results =
      service.EvaluateBatch(monadic_jobs);
  const double monadic_seconds = monadic_timer.ElapsedSeconds();
  std::size_t from_root_nodes = 0;
  for (const engine::QueryResult& r : monadic_results) {
    if (r.status.ok()) from_root_nodes += r.from_root.Count();
  }
  std::printf(
      "  wall time:      %.3f s from-root shape (%.0f jobs/s, %zu nodes)\n",
      monadic_seconds,
      static_cast<double>(monadic_jobs.size()) / monadic_seconds,
      from_root_nodes);

  // Admission-controlled front door: a burst of async submissions against
  // a depth-2 queue. Overflow is rejected with kOverloaded (explicit
  // backpressure -- the caller retries or sheds load); every accepted
  // batch completes.
  std::vector<engine::BatchHandle> handles;
  std::size_t rejected = 0;
  for (int burst = 0; burst < 8; ++burst) {
    auto handle = service.TrySubmit(jobs);
    if (handle.ok()) {
      handles.push_back(*handle);
    } else {
      ++rejected;
    }
  }
  std::size_t async_ok = 0;
  for (engine::BatchHandle& handle : handles) {
    for (const engine::QueryResult& r : handle.Wait()) {
      if (r.status.ok()) ++async_ok;
    }
  }
  const engine::ServiceStats service_stats = service.stats();
  std::printf("  admission:      burst of 8 batches -> %zu accepted, %zu "
              "rejected (kOverloaded)\n",
              handles.size(), rejected);
  std::printf("  service stats:  %llu accepted / %llu rejected / %llu "
              "completed batches; %llu jobs run, %llu cancelled, %llu past "
              "deadline\n",
              static_cast<unsigned long long>(service_stats.batches_accepted),
              static_cast<unsigned long long>(service_stats.batches_rejected),
              static_cast<unsigned long long>(service_stats.batches_completed),
              static_cast<unsigned long long>(service_stats.jobs_completed),
              static_cast<unsigned long long>(service_stats.jobs_cancelled),
              static_cast<unsigned long long>(
                  service_stats.jobs_deadline_exceeded));
  const bool admission_sane =
      handles.size() + rejected == 8 &&
      service_stats.batches_completed == service_stats.batches_accepted &&
      async_ok == handles.size() * jobs.size();
  if (!admission_sane) std::printf("  admission state INCONSISTENT\n");

  // Streaming front door: page through an n-ary answer set with a cursor
  // instead of materializing it. The stream pins its document, counts
  // against the inflight budget while open, and reports how much
  // answer-dependent memory the backing actually holds.
  bool stream_sane = true;
  {
    const std::size_t page_size = batch_size > 0 ? batch_size : 64;
    engine::StreamOptions stream_options;
    stream_options.limit = 3 * page_size;
    auto stream =
        service.OpenStream(ids[0], "$x/descendant::*/$y", stream_options);
    if (!stream.ok()) {
      std::printf("  stream:         open failed: %s\n",
                  stream.status().ToString().c_str());
      stream_sane = false;
    } else {
      std::size_t pages = 0, tuples = 0;
      // Snapshot the backing footprint while the stream is live -- once
      // drained it releases the backing and would report 0 bytes.
      std::size_t live_backing_bytes = 0;
      while (true) {
        auto page = stream->NextBatch(page_size);
        if (!page.ok()) {
          std::printf("  stream:         failed: %s\n",
                      page.status().ToString().c_str());
          stream_sane = false;
          break;
        }
        if (page->empty()) break;
        ++pages;
        tuples += page->size();
        live_backing_bytes =
            std::max(live_backing_bytes, stream->stats().backing_bytes);
      }
      const engine::StreamStats stream_stats = stream->stats();
      std::printf(
          "  stream:         %zu tuples in %zu pages via %s backing "
          "(cursor %llu, peak backing %zu bytes)\n",
          tuples, pages,
          std::string(engine::StreamBackingName(stream_stats.plan.backing))
              .c_str(),
          static_cast<unsigned long long>(stream_stats.cursor),
          live_backing_bytes);
      stream_sane = stream_sane && tuples == stream_stats.produced &&
                    service.stats().stream_tuples >= tuples;
    }
  }
  const engine::ServiceStats final_stats = service.stats();
  std::printf("  stream stats:   %llu opened / %llu closed, %zu open now, "
              "%llu tuples streamed\n",
              static_cast<unsigned long long>(final_stats.streams_opened),
              static_cast<unsigned long long>(final_stats.streams_closed),
              final_stats.streams_open,
              static_cast<unsigned long long>(final_stats.stream_tuples));
  stream_sane = stream_sane && final_stats.streams_open == 0 &&
                final_stats.streams_opened == final_stats.streams_closed;
  if (!stream_sane) std::printf("  stream state INCONSISTENT\n");
  return failed == 0 && admission_sane && stream_sane ? 0 : 1;
}
