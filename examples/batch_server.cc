// Demo of the batched query-evaluation subsystem: documents are loaded
// into a sharded DocumentStore corpus once, then batches of
// (document-id, query) jobs are evaluated across a thread pool, printing
// per-plan routing, cache effectiveness (query cache and per-document
// axis caches, per shard), and throughput. A second identical batch shows
// the cross-batch axis-cache reuse the corpus layer buys, and a final
// burst goes through the admission-controlled TrySubmit front door,
// demonstrating kOverloaded backpressure and the ServiceStats snapshot.
//
//   ./batch_server [num_threads] [tree_nodes] [batch_size] \
//       [--snapshot_dir=DIR] [--repeat=N]
//
// With --snapshot_dir, the corpus is reloaded from DIR when it holds a
// valid snapshot (zero parses, zero index builds -- the "corpus" line and
// the process-wide Tree counters prove it) and built-then-saved there
// otherwise, so a kill -9 + restart serves byte-identical answers without
// re-parsing (tools/restart_harness.py drives exactly that and compares
// the printed result digest). --repeat re-runs the cold batch N times to
// widen the window a harness has for killing the process mid-serve.
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "engine/document_store.h"
#include "engine/query_service.h"
#include "tree/generators.h"

namespace {

using namespace xpv;

const char* kQueryMix[] = {
    // Positive PPLbin -> GkpEngine (linear-time set images).
    "descendant::book/child::author",
    "child::*[descendant::title]",
    "descendant::*[child::author]/following_sibling::*",
    // General PPLbin (complement) -> MatrixEngine (Boolean matrices).
    "descendant::* except descendant::book",
    "child::* except child::author[following_sibling::title]",
    // N-ary PPL (free variables) -> Section 7 answer machinery.
    "descendant::book[child::author]/$x",
    "$x/child::title",
};

/// FNV-1a over every byte of every result: status, plan, the full
/// relation bits, the from-root set, answer tuples, and scalar payloads.
/// Two runs print the same digest iff they produced byte-identical
/// results in the same order -- the restart harness's equality oracle.
std::uint64_t DigestResults(const std::vector<engine::QueryResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const engine::QueryResult& r : results) {
    mix(static_cast<std::uint64_t>(r.status.code()));
    if (!r.status.ok()) continue;
    // Deliberately NOT digested: r.plan. Engine routing may differ run
    // to run (the cost model sees whatever cache state concurrent jobs
    // left behind) while the answers stay identical -- which is exactly
    // the equality the harness is after.
    mix(r.relation.size());
    for (std::size_t row = 0; row < r.relation.size(); ++row) {
      // Row() returns the BitVector by value; name it so its words stay
      // alive for the loop (a temporary would die before the body runs).
      const BitVector row_bits = r.relation.Row(row);
      for (std::uint64_t w : row_bits.words()) mix(w);
    }
    if (r.relation_sparse != nullptr) {
      mix(r.relation_sparse->num_runs());
      for (std::size_t row = 0; row < r.relation_sparse->size(); ++row) {
        auto [first, last] = r.relation_sparse->RunsOf(row);
        for (auto it = first; it != last; ++it) {
          mix(it->begin);
          mix(it->end);
        }
      }
    }
    for (std::uint64_t w : r.from_root.words()) mix(w);
    for (const xpath::NodeTuple& tuple : r.tuples) {
      mix(tuple.size());
      for (NodeId v : tuple) mix(v);
    }
    mix(r.boolean ? 1 : 0);
    mix(r.count);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> positional;
  std::string snapshot_dir;
  std::size_t repeat = 1;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--snapshot_dir=", 15) == 0) {
      snapshot_dir = argv[a] + 15;
    } else if (std::strncmp(argv[a], "--repeat=", 9) == 0) {
      repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoi(argv[a] + 9)));
    } else {
      positional.push_back(static_cast<std::size_t>(std::atoi(argv[a])));
    }
  }
  const std::size_t num_threads = positional.size() > 0 ? positional[0] : 4;
  const std::size_t tree_nodes = positional.size() > 1 ? positional[1] : 120;
  const std::size_t batch_size = positional.size() > 2 ? positional[2] : 200;

  // Corpus: a few bibliography-shaped documents, stored once and addressed
  // by DocumentId from then on. Four shards so the shard-aware batch
  // scheduler has independent lock domains to group jobs by. With a
  // snapshot directory, a prior run's corpus reloads with zero parses and
  // zero index builds; otherwise the documents go in through the term
  // *parser* (not Insert) so the parse counter proves which path ran.
  const engine::DocumentStoreOptions store_options{.max_hot_caches = 64,
                                                   .num_shards = 4};
  std::unique_ptr<engine::DocumentStore> owned_store;
  bool reloaded = false;
  if (!snapshot_dir.empty()) {
    auto opened = engine::DocumentStore::OpenSnapshot(snapshot_dir,
                                                      store_options);
    if (opened.ok()) {
      owned_store = std::move(opened).value();
      reloaded = true;
    } else if (opened.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "batch_server: snapshot load failed: %s\n",
                   opened.status().ToString().c_str());
      return 2;
    }
  }
  if (owned_store == nullptr) {
    owned_store = std::make_unique<engine::DocumentStore>(store_options);
  }
  engine::DocumentStore& store = *owned_store;

  std::vector<engine::DocumentId> ids;
  if (reloaded) {
    // Fresh inserts below would have received ids 1..4; the snapshot
    // preserves ids, so the reloaded corpus answers to the same ones.
    for (engine::DocumentId id = 1; id <= store.size(); ++id) {
      ids.push_back(id);
    }
  } else {
    Rng corpus_rng(1);
    for (int i = 0; i < 4; ++i) {
      const Tree generated = BibliographyTree(corpus_rng, tree_nodes / 6);
      auto inserted = store.InsertTerm(generated.ToTerm(),
                                       "bib-" + std::to_string(i));
      if (!inserted.ok()) {
        std::fprintf(stderr, "batch_server: corpus build failed: %s\n",
                     inserted.status().ToString().c_str());
        return 2;
      }
      ids.push_back(inserted.value());
    }
    if (!snapshot_dir.empty()) {
      ::mkdir(snapshot_dir.c_str(), 0755);  // EEXIST is fine
      const Status saved = store.SaveSnapshot(snapshot_dir);
      if (!saved.ok()) {
        std::fprintf(stderr, "batch_server: snapshot save failed: %s\n",
                     saved.ToString().c_str());
        return 2;
      }
    }
  }
  std::printf(
      "  corpus:         %s; parses=%llu, index_builds=%llu\n",
      reloaded ? "snapshot reload" : "fresh build",
      static_cast<unsigned long long>(Tree::GlobalParses()),
      static_cast<unsigned long long>(Tree::GlobalIndexBuilds()));

  // Deterministic job mix, independent of how the corpus came to be.
  Rng job_rng(7);
  std::vector<engine::QueryJob> jobs;
  for (std::size_t i = 0; i < batch_size; ++i) {
    engine::QueryJob job;
    job.document = ids[job_rng.Below(ids.size())];
    job.query = kQueryMix[job_rng.Below(std::size(kQueryMix))];
    jobs.push_back(std::move(job));
  }

  engine::QueryService service({.num_threads = num_threads,
                                .document_store = &store,
                                .max_queued_batches = 2,
                                .max_inflight_batches = 1});
  std::printf(
      "batch_server: %zu jobs over %zu stored documents, %zu worker "
      "thread(s)\n",
      jobs.size(), store.size(), service.num_threads());

  Timer timer;
  std::vector<engine::QueryResult> results = service.EvaluateBatch(jobs);
  const double seconds = timer.ElapsedSeconds();

  // The digest commits to every byte of every result; the restart
  // harness compares it across kill -9 boundaries. --repeat re-serves
  // the same batch (checking the digest each time) to widen the window
  // in which a harness can kill the process mid-serve.
  const std::uint64_t digest = DigestResults(results);
  bool digest_sane = true;
  for (std::size_t run = 1; run < repeat; ++run) {
    if (DigestResults(service.EvaluateBatch(jobs)) != digest) {
      digest_sane = false;
    }
  }
  std::printf("  result digest:  %016llx%s\n",
              static_cast<unsigned long long>(digest),
              digest_sane ? "" : " (INCONSISTENT ACROSS REPEATS)");

  // A repeated batch reuses the per-document axis caches built above.
  Timer warm_timer;
  std::vector<engine::QueryResult> warm_results = service.EvaluateBatch(jobs);
  const double warm_seconds = warm_timer.ElapsedSeconds();

  std::size_t by_plan[3] = {0, 0, 0};
  std::size_t failed = 0;
  for (const engine::QueryResult& r : warm_results) {
    if (!r.status.ok()) ++failed;
  }
  std::size_t selected_cells = 0;
  std::size_t tuples = 0;
  for (const engine::QueryResult& r : results) {
    if (!r.status.ok()) {
      ++failed;
      continue;
    }
    ++by_plan[static_cast<int>(r.plan.engine)];
    selected_cells += r.relation.Count();
    tuples += r.tuples.size();
  }

  std::printf("  gkp-positive:   %zu jobs\n", by_plan[0]);
  std::printf("  matrix-general: %zu jobs\n", by_plan[1]);
  std::printf("  nary-answer:    %zu jobs (%zu answer tuples)\n", by_plan[2],
              tuples);
  std::printf("  failed:         %zu jobs\n", failed);
  std::printf("  selected pairs: %zu\n", selected_cells);
  std::printf("  query cache:    %zu distinct compiled, %zu hits / %zu misses\n",
              service.cache().size(), service.cache().hits(),
              service.cache().misses());
  const engine::ServiceStats kernel_stats = service.stats();
  std::printf(
      "  matrix kernels: %llu dense / %llu sparse products, %llu repr "
      "crossovers\n",
      static_cast<unsigned long long>(kernel_stats.dense_products),
      static_cast<unsigned long long>(kernel_stats.sparse_products),
      static_cast<unsigned long long>(kernel_stats.repr_crossovers));
  std::printf(
      "  subrelations:   %llu hits / %llu misses (%zu KiB resident), "
      "%llu chains reassociated\n",
      static_cast<unsigned long long>(kernel_stats.subrel_hits),
      static_cast<unsigned long long>(kernel_stats.subrel_misses),
      kernel_stats.subrel_bytes / 1024,
      static_cast<unsigned long long>(kernel_stats.chains_reassociated));
  const engine::DocumentStoreStats stats = store.stats();
  std::printf(
      "  axis caches:    %llu built, %llu hits, %llu retired (%zu hot, "
      "%zu KiB)\n",
      static_cast<unsigned long long>(stats.cache_builds),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_retirements),
      stats.hot_caches, stats.hot_cache_bytes / 1024);
  const std::vector<engine::DocumentStoreStats> per_shard =
      store.shard_stats();
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const auto& ss = per_shard[s];
    const std::uint64_t lookups = ss.cache_hits + ss.cache_builds;
    std::printf(
        "    shard %zu:      %zu docs, %llu/%llu cache hits (%.0f%%), "
        "%zu hot\n",
        s, ss.documents, static_cast<unsigned long long>(ss.cache_hits),
        static_cast<unsigned long long>(lookups),
        lookups == 0 ? 0.0 : 100.0 * static_cast<double>(ss.cache_hits) /
                                 static_cast<double>(lookups),
        ss.hot_caches);
  }
  std::printf("  wall time:      %.3f s cold  (%.0f jobs/s)\n", seconds,
              static_cast<double>(jobs.size()) / seconds);
  std::printf("  wall time:      %.3f s warm  (%.0f jobs/s)\n", warm_seconds,
              static_cast<double>(jobs.size()) / warm_seconds);

  // The same batch again, declaring that callers only consume the
  // from-root node set: the planner routes every binary query through
  // the monadic row-restricted fast path (no O(n^2) relation).
  std::vector<engine::QueryJob> monadic_jobs = jobs;
  for (engine::QueryJob& job : monadic_jobs) {
    job.shape = engine::ResultShape::kFromRootSet;
  }
  Timer monadic_timer;
  std::vector<engine::QueryResult> monadic_results =
      service.EvaluateBatch(monadic_jobs);
  const double monadic_seconds = monadic_timer.ElapsedSeconds();
  std::size_t from_root_nodes = 0;
  for (const engine::QueryResult& r : monadic_results) {
    if (r.status.ok()) from_root_nodes += r.from_root.Count();
  }
  std::printf(
      "  wall time:      %.3f s from-root shape (%.0f jobs/s, %zu nodes)\n",
      monadic_seconds,
      static_cast<double>(monadic_jobs.size()) / monadic_seconds,
      from_root_nodes);

  // Admission-controlled front door: a burst of async submissions against
  // a depth-2 queue. Overflow is rejected with kOverloaded (explicit
  // backpressure -- the caller retries or sheds load); every accepted
  // batch completes.
  std::vector<engine::BatchHandle> handles;
  std::size_t rejected = 0;
  for (int burst = 0; burst < 8; ++burst) {
    auto handle = service.TrySubmit(jobs);
    if (handle.ok()) {
      handles.push_back(*handle);
    } else {
      ++rejected;
    }
  }
  std::size_t async_ok = 0;
  for (engine::BatchHandle& handle : handles) {
    for (const engine::QueryResult& r : handle.Wait()) {
      if (r.status.ok()) ++async_ok;
    }
  }
  const engine::ServiceStats service_stats = service.stats();
  std::printf("  admission:      burst of 8 batches -> %zu accepted, %zu "
              "rejected (kOverloaded)\n",
              handles.size(), rejected);
  std::printf("  service stats:  %llu accepted / %llu rejected / %llu "
              "completed batches; %llu jobs run, %llu cancelled, %llu past "
              "deadline\n",
              static_cast<unsigned long long>(service_stats.batches_accepted),
              static_cast<unsigned long long>(service_stats.batches_rejected),
              static_cast<unsigned long long>(service_stats.batches_completed),
              static_cast<unsigned long long>(service_stats.jobs_completed),
              static_cast<unsigned long long>(service_stats.jobs_cancelled),
              static_cast<unsigned long long>(
                  service_stats.jobs_deadline_exceeded));
  const bool admission_sane =
      handles.size() + rejected == 8 &&
      service_stats.batches_completed == service_stats.batches_accepted &&
      async_ok == handles.size() * jobs.size();
  if (!admission_sane) std::printf("  admission state INCONSISTENT\n");

  // Streaming front door: page through an n-ary answer set with a cursor
  // instead of materializing it. The stream pins its document, counts
  // against the inflight budget while open, and reports how much
  // answer-dependent memory the backing actually holds.
  bool stream_sane = true;
  {
    const std::size_t page_size = batch_size > 0 ? batch_size : 64;
    engine::StreamOptions stream_options;
    stream_options.limit = 3 * page_size;
    auto stream =
        service.OpenStream(ids[0], "$x/descendant::*/$y", stream_options);
    if (!stream.ok()) {
      std::printf("  stream:         open failed: %s\n",
                  stream.status().ToString().c_str());
      stream_sane = false;
    } else {
      std::size_t pages = 0, tuples = 0;
      // Snapshot the backing footprint while the stream is live -- once
      // drained it releases the backing and would report 0 bytes.
      std::size_t live_backing_bytes = 0;
      while (true) {
        auto page = stream->NextBatch(page_size);
        if (!page.ok()) {
          std::printf("  stream:         failed: %s\n",
                      page.status().ToString().c_str());
          stream_sane = false;
          break;
        }
        if (page->empty()) break;
        ++pages;
        tuples += page->size();
        live_backing_bytes =
            std::max(live_backing_bytes, stream->stats().backing_bytes);
      }
      const engine::StreamStats stream_stats = stream->stats();
      std::printf(
          "  stream:         %zu tuples in %zu pages via %s backing "
          "(cursor %llu, peak backing %zu bytes)\n",
          tuples, pages,
          std::string(engine::StreamBackingName(stream_stats.plan.backing))
              .c_str(),
          static_cast<unsigned long long>(stream_stats.cursor),
          live_backing_bytes);
      stream_sane = stream_sane && tuples == stream_stats.produced &&
                    service.stats().stream_tuples >= tuples;
    }
  }
  const engine::ServiceStats final_stats = service.stats();
  std::printf("  stream stats:   %llu opened / %llu closed, %zu open now, "
              "%llu tuples streamed\n",
              static_cast<unsigned long long>(final_stats.streams_opened),
              static_cast<unsigned long long>(final_stats.streams_closed),
              final_stats.streams_open,
              static_cast<unsigned long long>(final_stats.stream_tuples));
  stream_sane = stream_sane && final_stats.streams_open == 0 &&
                final_stats.streams_opened == final_stats.streams_closed;
  if (!stream_sane) std::printf("  stream state INCONSISTENT\n");
  return failed == 0 && admission_sane && stream_sane && digest_sane ? 0 : 1;
}
