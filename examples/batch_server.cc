// Demo of the batched query-evaluation subsystem: a mock "server" loop
// that compiles a mixed query workload once, then evaluates batches of
// (tree, query) jobs across a thread pool, printing per-plan routing,
// cache effectiveness, and throughput.
//
//   ./batch_server [num_threads] [tree_nodes] [batch_size]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "engine/query_service.h"
#include "tree/generators.h"

namespace {

using namespace xpv;

const char* kQueryMix[] = {
    // Positive PPLbin -> GkpEngine (linear-time set images).
    "descendant::book/child::author",
    "child::*[descendant::title]",
    "descendant::*[child::author]/following_sibling::*",
    // General PPLbin (complement) -> MatrixEngine (Boolean matrices).
    "descendant::* except descendant::book",
    "child::* except child::author[following_sibling::title]",
    // N-ary PPL (free variables) -> Section 7 answer machinery.
    "descendant::book[child::author]/$x",
    "$x/child::title",
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_threads =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t tree_nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 120;
  const std::size_t batch_size =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 200;

  // Corpus: a few bibliography-shaped documents.
  Rng rng(1);
  std::vector<Tree> corpus;
  for (int i = 0; i < 4; ++i) {
    corpus.push_back(BibliographyTree(rng, tree_nodes / 6));
  }

  std::vector<engine::QueryJob> jobs;
  for (std::size_t i = 0; i < batch_size; ++i) {
    engine::QueryJob job;
    job.tree = &corpus[rng.Below(corpus.size())];
    job.query = kQueryMix[rng.Below(std::size(kQueryMix))];
    jobs.push_back(std::move(job));
  }

  engine::QueryService service({.num_threads = num_threads});
  std::printf("batch_server: %zu jobs over %zu trees, %zu worker thread(s)\n",
              jobs.size(), corpus.size(), service.num_threads());

  Timer timer;
  std::vector<engine::QueryResult> results = service.EvaluateBatch(jobs);
  const double seconds = timer.ElapsedSeconds();

  std::size_t by_plan[3] = {0, 0, 0};
  std::size_t failed = 0;
  std::size_t selected_cells = 0;
  std::size_t tuples = 0;
  for (const engine::QueryResult& r : results) {
    if (!r.status.ok()) {
      ++failed;
      continue;
    }
    ++by_plan[static_cast<int>(r.plan)];
    selected_cells += r.relation.Count();
    tuples += r.tuples.size();
  }

  std::printf("  gkp-positive:   %zu jobs\n", by_plan[0]);
  std::printf("  matrix-general: %zu jobs\n", by_plan[1]);
  std::printf("  nary-answer:    %zu jobs (%zu answer tuples)\n", by_plan[2],
              tuples);
  std::printf("  failed:         %zu jobs\n", failed);
  std::printf("  selected pairs: %zu\n", selected_cells);
  std::printf("  query cache:    %zu distinct compiled, %zu hits / %zu misses\n",
              service.cache().size(), service.cache().hits(),
              service.cache().misses());
  std::printf("  wall time:      %.3f s  (%.0f jobs/s)\n", seconds,
              static_cast<double>(jobs.size()) / seconds);
  return failed == 0 ? 0 : 1;
}
