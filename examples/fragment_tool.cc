// Fragment checker / translator tool: reads a Core XPath 2.0 expression
// (from argv or stdin), reports which fragments it belongs to (Core XPath
// 2.0, PPL per Definition 1, PPLbin / N($x)), and prints the translations
// the paper constructs (Fig. 4 to PPLbin, Fig. 7 to HCL-(PPLbin), Lemma 3
// sharing normal form).
//
//   build/examples/fragment_tool 'descendant::book[child::author[. is $y]]'
//   echo 'child::a[$x is $x]' | build/examples/fragment_tool
#include <cstdio>
#include <iostream>
#include <string>

#include "hcl/sharing.h"
#include "hcl/translate.h"
#include "ppl/pplbin.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"

int main(int argc, char** argv) {
  using namespace xpv;

  bool abbreviated = false;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "-a" || std::string(argv[i]) == "--abbrev") {
      abbreviated = true;
    } else {
      input = argv[i];
    }
  }
  if (input.empty() && argc <= 1) {
    std::getline(std::cin, input);
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: fragment_tool [-a] '<core xpath 2.0 expression>'\n"
                 "  -a  accept abbreviated syntax (book, a//b, /a, ..)\n");
    return 2;
  }

  Result<xpath::PathPtr> path = abbreviated
                                    ? xpath::ParseAbbreviatedPath(input)
                                    : xpath::ParsePath(input);
  if (!path.ok()) {
    std::printf("syntax:        REJECTED -- %s\n",
                path.status().ToString().c_str());
    return 1;
  }
  const xpath::PathExpr& p = **path;
  std::printf("parsed:        %s\n", p.ToString().c_str());
  std::printf("size |P|:      %zu\n", p.Size());

  auto vars = xpath::FreeVars(p);
  std::string var_list;
  for (const auto& v : vars) {
    if (!var_list.empty()) var_list += ", ";
    var_list += "$" + v;
  }
  std::printf("free vars:     {%s}\n", var_list.c_str());

  Status n_dollar = xpath::CheckNoVariables(p);
  std::printf("N($x):         %s\n",
              n_dollar.ok() ? "yes (variable-free)" : n_dollar.message().c_str());

  Status ppl = xpath::CheckPpl(p);
  std::printf("PPL (Def. 1):  %s\n", ppl.ok() ? "yes" : ppl.message().c_str());

  if (n_dollar.ok()) {
    Result<ppl::PplBinPtr> bin = ppl::FromXPath(p);
    if (bin.ok()) {
      std::printf("PPLbin (Fig.4): %s\n", (*bin)->ToString().c_str());
    }
  }

  if (ppl.ok()) {
    Result<hcl::HclPtr> c = hcl::PplToHcl(p);
    if (!c.ok()) {
      std::fprintf(stderr, "fig. 7 translation failed: %s\n",
                   c.status().ToString().c_str());
      return 1;
    }
    std::printf("HCL- (Fig.7):  %s\n", (*c)->ToString().c_str());
    hcl::SharingForm form = hcl::SharingForm::FromHcl(**c);
    std::printf("sharing form (Lemma 3, |D|+|Delta| = %zu):\n  %s\n",
                form.TotalSize(), form.ToString().c_str());
    std::printf(
        "=> answerable in O((|D|+|Delta|) |t|^2 n |A|) by Theorem 1.\n");
  } else {
    std::printf(
        "=> outside PPL; only the exponential Core XPath 2.0 evaluator "
        "applies (Prop. 3 / Cor. 1).\n");
  }
  return 0;
}
