// Quickstart: parse an XML document, run the paper's motivating
// author-title query through the polynomial-time PPL pipeline, and print
// the selected node pairs.
//
//   build/examples/quickstart
#include <cstdio>

#include "hcl/answer.h"
#include "hcl/translate.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"

int main() {
  using namespace xpv;

  // The bib.xml document from the paper's introduction (navigational
  // structure only -- the data model abstracts text content away).
  const char* kBibXml = R"(
    <bib>
      <book><author/><title/><year/></book>
      <book><author/><author/><title/></book>
      <paper><title/></paper>
    </bib>
  )";
  Result<Tree> tree = Tree::ParseXml(kBibXml);
  if (!tree.ok()) {
    std::fprintf(stderr, "parse error: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("document: %s  (%zu nodes)\n", tree->ToTerm().c_str(),
              tree->size());

  // The XPath 2.0 query of Section 1: select (author, title) pairs.
  const char* kQuery =
      "descendant::book[child::author[. is $y] and child::title[. is $z]]";
  Result<xpath::PathPtr> path = xpath::ParsePath(kQuery);
  if (!path.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }

  // 1. Check PPL membership (Definition 1).
  Status ppl = xpath::CheckPpl(**path);
  std::printf("PPL membership: %s\n", ppl.ToString().c_str());
  if (!ppl.ok()) return 1;

  // 2. Translate into HCL-(PPLbin) (Fig. 7 / Proposition 5).
  Result<hcl::HclPtr> hcl_query = hcl::PplToHcl(**path);
  if (!hcl_query.ok()) {
    std::fprintf(stderr, "translation error: %s\n",
                 hcl_query.status().ToString().c_str());
    return 1;
  }
  std::printf("HCL-(PPLbin) form: %s\n", (*hcl_query)->ToString().c_str());

  // 3. Answer the binary query (y, z) in polynomial time (Section 7).
  Result<xpath::TupleSet> answers =
      hcl::AnswerQuery(*tree, **hcl_query, {"y", "z"});
  if (!answers.ok()) {
    std::fprintf(stderr, "answering error: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu (author, title) pairs:\n", answers->size());
  for (const auto& tuple : *answers) {
    std::printf("  (node %u <%s>, node %u <%s>)\n", tuple[0],
                tree->label_name(tuple[0]).c_str(), tuple[1],
                tree->label_name(tuple[1]).c_str());
  }
  return 0;
}
