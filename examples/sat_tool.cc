// SAT via XPath (Proposition 3, made concrete): reads a DIMACS CNF file
// (or uses a built-in demo formula), builds the paper's reduction to
// Core XPath 2.0 query non-emptiness, answers the query with the
// exponential evaluator, and decodes the answers back into satisfying
// assignments.
//
// This is, deliberately, a terrible SAT solver -- that is the point of
// Proposition 3: variable sharing across compositions makes query
// non-emptiness NP-hard, which is exactly why PPL forbids it (NVS(/)).
//
//   build/examples/sat_tool [file.cnf]
//   echo 'p cnf 2 2\n1 2 0\n-1 -2 0' | build/examples/sat_tool /dev/stdin
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/timer.h"
#include "fo/sat_reduction.h"
#include "xpath/eval.h"
#include "xpath/fragment.h"

int main(int argc, char** argv) {
  using namespace xpv;

  fo::CnfFormula cnf;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<fo::CnfFormula> parsed = fo::ParseDimacs(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "DIMACS parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    cnf = std::move(parsed).value();
  } else {
    // (v1 | v2) & (~v1 | v3) & (~v2 | ~v3): satisfiable.
    cnf.num_vars = 3;
    cnf.clauses = {{1, 2}, {-1, 3}, {-2, -3}};
    std::printf("no input file; using the demo formula %s\n",
                cnf.ToString().c_str());
  }
  if (cnf.num_vars > 8) {
    std::fprintf(stderr,
                 "refusing formulas with more than 8 variables: the "
                 "reduction is answered by the |t|^k evaluator "
                 "(that exponential cost is Proposition 3's message)\n");
    return 2;
  }

  fo::SatReduction red = fo::ReduceSatToQueryNonEmptiness(cnf);
  std::printf("\nreduction tree (%zu nodes): %s\n", red.tree.size(),
              red.tree.ToTerm().c_str());
  std::printf("reduction query: %s\n", red.query->ToString().c_str());
  Status ppl = xpath::CheckPpl(*red.query);
  std::printf("PPL membership:  %s\n",
              ppl.ok() ? "yes (?!)" : ppl.message().c_str());

  Timer timer;
  xpath::DirectEvaluator eval(red.tree);
  xpath::TupleSet answers = eval.EvalNaryNaive(*red.query, red.tuple_vars);
  std::printf("\nnon-emptiness check took %.2f ms (exponential evaluator)\n",
              timer.ElapsedMillis());

  if (answers.empty()) {
    std::printf("UNSATISFIABLE\n");
    return 1;
  }
  std::printf("SATISFIABLE -- %zu satisfying assignment(s):\n",
              answers.size());
  for (const auto& tuple : answers) {
    std::vector<bool> assignment = fo::DecodeAssignment(red, tuple);
    std::string line = "  ";
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      line += "v" + std::to_string(i + 1) + "=" +
              (assignment[i] ? "1" : "0") + " ";
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}
