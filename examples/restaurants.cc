// The paper's n-ary motivation (Section 1): "n can easily get up to 10 or
// more, for instance, when querying for attributes of restaurants such as
// name, address, phone number, ...". This example extracts n-tuples of
// attribute nodes per restaurant for growing n and shows the
// output-sensitive polynomial pipeline staying fast while the naive
// |t|^n evaluator becomes unusable (it is run only for tiny n as a
// cross-check).
//
//   build/examples/restaurants
#include <cstdio>
#include <string>

#include "common/timer.h"
#include "hcl/answer.h"
#include "hcl/translate.h"
#include "tree/generators.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace {

/// descendant::restaurant[child::name[. is $x1] and child::address[...]
/// ... ] -- one conjunct per requested attribute.
std::string BuildQuery(std::size_t n) {
  std::string test;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) test += " and ";
    test += "child::" + xpv::RestaurantAttributeName(i) + "[. is $x" +
            std::to_string(i) + "]";
  }
  return "descendant::restaurant[" + test + "]";
}

std::vector<std::string> TupleVars(std::size_t n) {
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < n; ++i) vars.push_back("x" + std::to_string(i));
  return vars;
}

}  // namespace

int main() {
  using namespace xpv;

  Rng rng(2024);
  Tree guide = RestaurantTree(rng, 100, 12);
  std::printf("restaurant guide: %zu nodes, 100 restaurants\n\n",
              guide.size());
  std::printf("%4s  %10s  %12s  %14s\n", "n", "answers", "pipeline_ms",
              "naive_ms");

  for (std::size_t n = 1; n <= 10; ++n) {
    const std::string query = BuildQuery(n);
    Result<xpath::PathPtr> path = xpath::ParsePath(query);
    if (!path.ok()) {
      std::fprintf(stderr, "parse: %s\n", path.status().ToString().c_str());
      return 1;
    }
    Result<hcl::HclPtr> c = hcl::PplToHcl(**path);
    if (!c.ok()) {
      std::fprintf(stderr, "fig7: %s\n", c.status().ToString().c_str());
      return 1;
    }

    Timer timer;
    Result<xpath::TupleSet> answers =
        hcl::AnswerQuery(guide, **c, TupleVars(n));
    const double pipeline_ms = timer.ElapsedMillis();
    if (!answers.ok()) {
      std::fprintf(stderr, "answer: %s\n",
                   answers.status().ToString().c_str());
      return 1;
    }

    // The naive evaluator is |t|^n full-path evaluations; on a ~1000 node
    // tree even n = 2 means ~10^6 matrix evaluations, so the cross-check
    // runs only for n = 1.
    std::string naive_ms = "skipped";
    if (n <= 1) {
      timer.Reset();
      xpath::DirectEvaluator direct(guide);
      xpath::TupleSet expected = direct.EvalNaryNaive(**path, TupleVars(n));
      naive_ms = std::to_string(timer.ElapsedMillis());
      if (expected != *answers) {
        std::fprintf(stderr, "MISMATCH at n=%zu\n", n);
        return 1;
      }
    }
    std::printf("%4zu  %10zu  %12.2f  %14s\n", n, answers->size(),
                pipeline_ms, naive_ms.c_str());
  }
  std::printf(
      "\nThe pipeline time scales with n * |answers| (Theorem 1), not with "
      "|t|^n.\n");
  return 0;
}
