// Binary-query engines on a bibliography document (Section 4 of the
// paper): evaluate variable-free queries -- including one that needs the
// `except` complement, Core XPath 1.0 cannot express it -- with the
// Boolean-matrix engine (Theorem 2), and cross-check the positive ones
// with the linear-time Gottlob-Koch-Pichler successor-set engine.
//
//   build/examples/bibliography
#include <cstdio>

#include "common/timer.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"
#include "tree/generators.h"
#include "xpath/parser.h"

int main() {
  using namespace xpv;

  Rng rng(7);
  Tree bib = BibliographyTree(rng, 200);
  std::printf("bibliography: %zu nodes, 200 books\n\n", bib.size());

  struct NamedQuery {
    const char* description;
    const char* xpath;
  };
  const NamedQuery kQueries[] = {
      {"books", "descendant::book"},
      {"authors of books", "descendant::book/child::author"},
      {"books with a year", "descendant::book[child::year]"},
      {"books WITHOUT a year (needs except)",
       "descendant::book[not child::year]"},
      {"books minus books-with-publisher (binary except)",
       "descendant::book except descendant::book[child::publisher]"},
  };

  ppl::MatrixEngine matrix(bib);
  ppl::GkpEngine gkp(bib);

  std::printf("%-48s %9s %12s %12s\n", "query", "answers", "matrix_ms",
              "gkp_ms");
  for (const auto& q : kQueries) {
    Result<xpath::PathPtr> path = xpath::ParsePath(q.xpath);
    if (!path.ok()) {
      std::fprintf(stderr, "parse: %s\n", path.status().ToString().c_str());
      return 1;
    }
    Result<ppl::PplBinPtr> bin = ppl::FromXPath(**path);
    if (!bin.ok()) {
      std::fprintf(stderr, "fig4: %s\n", bin.status().ToString().c_str());
      return 1;
    }

    // Monadic query from the root, like an XPath 1.0 engine would run it.
    Timer timer;
    BitVector from_root = matrix.EvaluateFromRoot(**bin).value();
    const double matrix_ms = timer.ElapsedMillis();

    std::string gkp_ms = "n/a (except)";
    if ((*bin)->IsPositive()) {
      timer.Reset();
      Result<BitVector> gkp_result = gkp.FromRoot(**bin);
      gkp_ms = std::to_string(timer.ElapsedMillis());
      if (!gkp_result.ok() || !(*gkp_result == from_root)) {
        std::fprintf(stderr, "ENGINE MISMATCH on %s\n", q.xpath);
        return 1;
      }
    }
    std::printf("%-48s %9zu %12.2f %12s\n", q.description, from_root.Count(),
                matrix_ms, gkp_ms.c_str());
  }

  std::printf(
      "\nThe paper's point (Section 4): the GKP successor-set trick gives "
      "linear-time\nevaluation for Core XPath 1.0, but `except` can occur "
      "anywhere in PPLbin, so\nthe matrix algorithm handles the full "
      "language at O(|P||t|^3/64).\n");
  return 0;
}
