#!/usr/bin/env python3
"""Run clang-tidy over src/ using the repo .clang-tidy profile.

Usage:
    tools/run_clang_tidy.py [--build-dir BUILD] [--jobs N] [PATH ...]

BUILD must have been configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
(the CI clang-tidy job does; locally add it to any cmake invocation).
PATH arguments restrict the run to matching translation units (substring
match on the source path); the default is every src/*.cc in the compile
database. Exits non-zero when clang-tidy reports anything -- the profile
sets WarningsAsErrors: '*', so CI treats all findings as failures.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_clang_tidy() -> str:
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    sys.exit("run_clang_tidy: no clang-tidy binary on PATH")


def sources_from_db(build_dir: str, filters: list[str]) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"run_clang_tidy: {db_path} not found -- configure the build "
            "dir with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    sources = []
    for entry in entries:
        src = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel = os.path.relpath(src, REPO_ROOT)
        # Only first-party code: skip tests, vendored GoogleTest, and
        # generated files pulled into the database.
        if not rel.startswith("src" + os.sep):
            continue
        if filters and not any(f in rel for f in filters):
            continue
        sources.append(src)
    return sorted(set(sources))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args()

    clang_tidy = find_clang_tidy()
    sources = sources_from_db(args.build_dir, args.paths)
    if not sources:
        sys.exit("run_clang_tidy: no matching src/ translation units")

    print(f"run_clang_tidy: {len(sources)} translation unit(s) "
          f"with {clang_tidy}")

    failures = []

    def run_one(src: str) -> None:
        proc = subprocess.run(
            [clang_tidy, "-p", args.build_dir, "--quiet", src],
            capture_output=True, text=True, check=False)
        rel = os.path.relpath(src, REPO_ROOT)
        if proc.returncode != 0 or proc.stdout.strip():
            failures.append(rel)
            sys.stdout.write(f"--- {rel}\n{proc.stdout}")
            if proc.stderr.strip():
                sys.stderr.write(proc.stderr)

    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        list(pool.map(run_one, sources))

    if failures:
        print(f"run_clang_tidy: findings in {len(failures)} file(s)")
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
