#!/usr/bin/env python3
"""Benchmark regression gate (run by the release CI job).

Compares two BENCH_batch_service.json files -- a committed baseline and
a fresh candidate run -- and fails when any *flagged section* (the bench
families that carry a ROADMAP acceptance claim) regresses by more than
--threshold (default 10%).

Method: for every benchmark name present in both files, compute the
real_time ratio candidate/baseline. Because baseline and candidate
usually come from different machines, every ratio is first divided by
the median ratio across the whole suite (--no-normalize disables this),
so what is detected is a section slowing down *relative to the rest of
the suite*, not the hardware. A section's score is the geometric mean of
its normalized ratios; score > 1 + threshold fails. A flagged benchmark
name that exists in the baseline but not in the candidate also fails:
silently losing a measured config is itself a regression.

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
"""

import argparse
import json
import math
import sys

# One entry per flagged section: the benchmark families whose perf the
# ROADMAP acceptance bars reference. Names match up to the first '/'.
FLAGGED_SECTIONS = [
    "BM_ShapeFullRelation",
    "BM_ShapeFromRootSet",
    "BM_ShapeBoolean",
    "BM_Batch100StoreSharded",
    "BM_StreamFirstK",
    "BM_AxisBuildDense",
    "BM_AxisBuildInterval",
    "BM_SparseCompose",
    "BM_CrossoverFullRelation",
    "BM_SubrelationReuse",
    "BM_ChainReassociation",
    "BM_SnapshotSaveLoad",
    "BM_SpillThrash",
]

# Absolute acceptance bars on measured counters, independent of the
# baseline: (benchmark name prefix, counter, minimum value). The ROADMAP
# claims snapshot reload beats parse+reindex(+axis warmup) by >= 5x at
# 2048 nodes; if the counter sinks below that, the persistence layer's
# reason to exist has regressed no matter what the baseline says.
#
# Counters are read from --counters FILE when given, else from the
# candidate. reload_speedup models cold startup, so CI produces the
# counters file with a dedicated fresh-process run of the snapshot
# section (a warm allocator halves parse cost and understates the
# ratio -- see the comment above BM_SnapshotSaveLoad).
COUNTER_BOUNDS = [
    ("BM_SnapshotSaveLoad/2048", "reload_speedup", 5.0),
]

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in ns, for plain (non-aggregate) iterations."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        scale = UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        times[name] = float(bench["real_time"]) * scale
    return times


def check_counter_bounds(path):
    """COUNTER_BOUNDS violations in a benchmark JSON, as error strings.

    Counters live as plain numeric fields on each benchmark object in
    google-benchmark's JSON. A bound with no matching benchmark is an
    error too: losing the measured config silently would un-gate the
    acceptance claim.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    errors = []
    for prefix, counter, minimum in COUNTER_BOUNDS:
        matched = False
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            if not bench["name"].startswith(prefix):
                continue
            matched = True
            value = bench.get(counter)
            if value is None:
                errors.append(f"{bench['name']}: counter '{counter}' missing")
            elif float(value) < minimum:
                errors.append(f"{bench['name']}: {counter}={float(value):.2f} "
                              f"below required {minimum:g}")
        if not matched:
            errors.append(f"counter bound '{prefix}' matched no candidate "
                          f"benchmark")
    return errors


def section_of(name):
    return name.split("/", 1)[0]


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed per-section geomean slowdown "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw times (same-machine runs only)")
    parser.add_argument("--counters", default=None, metavar="FILE",
                        help="benchmark JSON to check COUNTER_BOUNDS "
                             "against (default: the candidate file)")
    args = parser.parse_args()

    base = load_times(args.baseline)
    cand = load_times(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("FAIL: no benchmark names in common")
        return 1

    ratios = {n: cand[n] / base[n] for n in common if base[n] > 0}
    norm = 1.0
    if not args.no_normalize:
        ordered = sorted(ratios.values())
        norm = ordered[len(ordered) // 2]  # median: machine-speed proxy
        if norm <= 0:
            norm = 1.0

    errors = []
    for section in FLAGGED_SECTIONS:
        in_base = [n for n in base if section_of(n) == section]
        in_cand = [n for n in cand if section_of(n) == section]
        if not in_base:
            continue  # baseline predates this section: nothing to gate
        missing = sorted(set(in_base) - set(in_cand))
        for name in missing:
            errors.append(f"{section}: '{name}' missing from candidate")
        section_ratios = [ratios[n] / norm for n in in_base
                          if n in ratios]
        if not section_ratios:
            continue
        score = geomean(section_ratios)
        verdict = "FAIL" if score > 1.0 + args.threshold else "ok"
        print(f"{verdict:4} {section}: x{score:.3f} relative "
              f"({len(section_ratios)} configs)")
        if score > 1.0 + args.threshold:
            errors.append(
                f"{section}: geomean slowdown x{score:.3f} exceeds "
                f"1 + {args.threshold:.2f}")

    errors.extend(check_counter_bounds(args.counters or args.candidate))

    for error in errors:
        print(f"FAIL: {error}")
    print(f"bench_compare: {len(common)} common benchmarks, "
          f"median ratio {norm:.3f}, {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
