#!/usr/bin/env python3
"""Kill/restart persistence harness for batch_server.

Drives the snapshot subsystem end to end, across real process
boundaries, the way an operator would experience a crash:

  phase A  run batch_server with --snapshot_dir against an empty
           directory.  The corpus is built through the term parser
           (``fresh build; parses>0``), saved to disk, and the batch is
           served to completion.  The printed result digest is the
           ground truth for every later phase.

  phase B  restart against the now-populated directory with a long
           --repeat, and SIGKILL the process mid-serve (no warning, no
           flush -- the snapshot layer's atomic-write discipline is what
           keeps the directory coherent).  If the process finishes
           before the kill lands, that run just became another phase-C
           check; the harness still passes.

  phase C  restart once more and let it finish.  Assert:
             * ``corpus: snapshot reload`` -- the manifest was found,
             * ``parses=0, index_builds=0`` -- nothing was re-parsed or
               re-indexed (the whole point of persisting the indexes),
             * the result digest equals phase A's -- byte-identical
               answers across a kill -9 boundary.

Usage:  restart_harness.py /path/to/batch_server [workdir]

Exit status 0 on success; nonzero with a diagnostic on any violation.
Registered as the ``restart_harness`` ctest entry.
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SERVER_ARGS = ["2", "120", "60"]  # threads, tree nodes, batch size
DIGEST_RE = re.compile(r"result digest:\s+([0-9a-f]{16})")
CORPUS_RE = re.compile(r"corpus:\s+(fresh build|snapshot reload);"
                       r" parses=(\d+), index_builds=(\d+)")


def fail(msg, output=None):
    sys.stderr.write("restart_harness: FAIL: %s\n" % msg)
    if output:
        sys.stderr.write("---- server output ----\n%s\n" % output)
    sys.exit(1)


def parse_run(output):
    """Extract (corpus_kind, parses, index_builds, digest) or fail."""
    corpus = CORPUS_RE.search(output)
    digest = DIGEST_RE.search(output)
    if not corpus or not digest:
        fail("server output missing corpus/digest lines", output)
    if "INCONSISTENT" in output:
        fail("digest inconsistent across --repeat within one process", output)
    return corpus.group(1), int(corpus.group(2)), int(corpus.group(3)), \
        digest.group(1)


def run_to_completion(server, snapshot_dir, repeat=1):
    cmd = [server] + SERVER_ARGS + ["--snapshot_dir=" + snapshot_dir,
                                    "--repeat=%d" % repeat]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True, timeout=300)
    if proc.returncode != 0:
        fail("server exited with %d" % proc.returncode, proc.stdout)
    return parse_run(proc.stdout)


def kill_mid_serve(server, snapshot_dir):
    """Start a long run and SIGKILL it once serving has begun.

    Returns True if the kill landed while the process was alive.
    """
    cmd = [server] + SERVER_ARGS + ["--snapshot_dir=" + snapshot_dir,
                                    "--repeat=200"]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # Give it a moment to get past startup and into the serve loop. The
    # exact instant does not matter: any point after the manifest exists
    # exercises "die without flushing anything".
    deadline = time.time() + 10.0
    time.sleep(0.3)
    while time.time() < deadline:
        if proc.poll() is not None:
            return False  # finished 200 repeats before we could kill it
        proc.send_signal(signal.SIGKILL)
        break
    proc.wait(timeout=60)
    return True


def main():
    if len(sys.argv) < 2:
        fail("usage: restart_harness.py /path/to/batch_server [workdir]")
    server = sys.argv[1]
    if not os.access(server, os.X_OK):
        fail("server binary not executable: %s" % server)

    workdir = sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
        prefix="xpv_restart_")
    os.makedirs(workdir, exist_ok=True)
    snapshot_dir = os.path.join(workdir, "snap")
    shutil.rmtree(snapshot_dir, ignore_errors=True)

    # Phase A: cold start, build + save + serve.
    kind, parses, builds, digest_a = run_to_completion(server, snapshot_dir)
    if kind != "fresh build":
        fail("phase A expected a fresh build, got %r" % kind)
    if parses == 0:
        fail("phase A should have parsed the corpus (parses=0)")
    if not os.path.exists(os.path.join(snapshot_dir, "MANIFEST.xpv")):
        fail("phase A left no MANIFEST.xpv in %s" % snapshot_dir)
    print("restart_harness: phase A ok (digest %s, parses=%d, "
          "index_builds=%d)" % (digest_a, parses, builds))

    # Phase B: restart and kill -9 mid-serve.
    killed = kill_mid_serve(server, snapshot_dir)
    print("restart_harness: phase B %s" %
          ("killed mid-serve" if killed else "finished before kill (ok)"))

    # Phase C: restart after the crash; identical answers, zero re-work.
    kind, parses, builds, digest_c = run_to_completion(server, snapshot_dir,
                                                       repeat=2)
    if kind != "snapshot reload":
        fail("phase C expected a snapshot reload, got %r" % kind)
    if parses != 0 or builds != 0:
        fail("phase C re-did work: parses=%d index_builds=%d"
             % (parses, builds))
    if digest_c != digest_a:
        fail("digest changed across kill -9: %s -> %s" % (digest_a, digest_c))
    print("restart_harness: phase C ok (digest %s, zero parses, zero "
          "index builds)" % digest_c)

    shutil.rmtree(workdir, ignore_errors=True)
    print("restart_harness: PASS")


if __name__ == "__main__":
    main()
