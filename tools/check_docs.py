#!/usr/bin/env python3
"""Documentation consistency checker (run by the CI docs job and ctest).

Two checks, so the docs/ subsystem cannot rot silently:

1. Every intra-repository markdown link in tracked *.md files resolves:
   the target file exists, and a #fragment (same-file or cross-file)
   matches a heading slug in the target.
2. Every public class/struct declared at namespace scope in the scanned
   public headers (src/engine/*.h, plus the representation-plane headers
   src/common/bool_matrix.h, src/common/sparse_matrix.h, the tree-plane
   headers src/tree/axis_cache.h and src/tree/tree_io.h, and the
   plan-optimizer headers src/ppl/canonical.h and
   src/ppl/relation_cache.h) is mentioned in docs/ARCHITECTURE.md, so
   new public API cannot ship undocumented.

Exit code 0 iff both checks pass; failures are listed one per line.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def tracked_markdown_files():
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True).stdout
        files = sorted({REPO / line for line in out.splitlines() if line})
        if files:
            return files
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    # Fallback outside a git checkout: walk, skipping build trees.
    skip = {".git"}
    return sorted(
        p for p in REPO.rglob("*.md")
        if not any(part in skip or part.startswith("build")
                   for part in p.relative_to(REPO).parts))


def heading_slug(heading):
    """GitHub-style anchor slug for a markdown heading."""
    slug = re.sub(r"[^\w\- ]", "", heading.strip().lower())
    return slug.replace(" ", "-")


def heading_slugs(md_path):
    slugs = set()
    seen = {}
    in_code = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if not in_code and (match := re.match(r"#{1,6}\s+(.*)", line)):
            slug = heading_slug(match.group(1))
            # GitHub de-duplicates repeated headings as slug, slug-1, ...
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")


def markdown_links(md_path):
    """Intra-repo link targets, with code blocks stripped."""
    links = []
    in_code = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for target in LINK_RE.findall(line):
            if re.match(r"[a-z]+:", target):  # http:, https:, mailto:
                continue
            links.append(target)
    return links


def check_links(md_files):
    errors = []
    for md in md_files:
        for target in markdown_links(md):
            path_part, _, fragment = target.partition("#")
            if path_part.startswith("/"):  # GitHub: repo-root-relative
                resolved = (REPO / path_part.lstrip("/")).resolve()
            elif path_part:
                resolved = (md.parent / path_part).resolve()
            else:
                resolved = md
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link target "
                              f"'{target}' ({path_part} does not exist)")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_slugs(resolved):
                    errors.append(
                        f"{md.relative_to(REPO)}: link '{target}' names "
                        f"anchor '#{fragment}' not found in "
                        f"{resolved.relative_to(REPO)}")
    return errors


DECL_RE = re.compile(
    r"^(?:class|struct|enum class)\s+([A-Za-z_]\w*)(?:\s+final)?"
    r"\s*(?:\{|$|:[^:])")


def scanned_headers():
    headers = sorted((REPO / "src" / "engine").glob("*.h"))
    headers.append(REPO / "src" / "common" / "bool_matrix.h")
    headers.append(REPO / "src" / "common" / "sparse_matrix.h")
    headers.append(REPO / "src" / "tree" / "axis_cache.h")
    headers.append(REPO / "src" / "tree" / "tree_io.h")
    headers.append(REPO / "src" / "ppl" / "canonical.h")
    headers.append(REPO / "src" / "ppl" / "relation_cache.h")
    # Concurrency primitives: every public type here must appear in the
    # ARCHITECTURE.md "Concurrency contracts" section.
    headers.append(REPO / "src" / "common" / "mutex.h")
    headers.append(REPO / "src" / "common" / "thread_annotations.h")
    # Fuzzing subsystem: the harness contract header is documentation
    # too -- its types must be described alongside the rest.
    headers.append(REPO / "fuzz" / "fuzz_driver.h")
    return [h for h in headers if h.exists()]


def engine_public_types():
    names = {}
    for header in scanned_headers():
        for line in header.read_text(encoding="utf-8").splitlines():
            if match := DECL_RE.match(line):
                names.setdefault(match.group(1),
                                 header.relative_to(REPO).as_posix())
    return names


def check_architecture_coverage():
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md does not exist"]
    text = arch.read_text(encoding="utf-8")
    types = engine_public_types()
    return [
        f"docs/ARCHITECTURE.md: public type '{name}' ({origin}) is "
        "never mentioned"
        for name, origin in sorted(types.items())
        if not re.search(rf"\b{re.escape(name)}\b", text)
    ]


def main():
    md_files = tracked_markdown_files()
    errors = check_links(md_files) + check_architecture_coverage()
    for error in errors:
        print(f"FAIL: {error}")
    print(f"check_docs: {len(md_files)} markdown files, "
          f"{len(engine_public_types())} engine types, "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
