// Recursive-descent parser for the Core XPath 2.0 surface syntax of Fig. 1.
//
// Operator precedence, loosest to tightest:
//
//   for $x in .. return ..   <   union   <   intersect / except   <   /
//   <   postfix filters [T]
//
// Test expressions:  or  <  and  <  not  <  atoms. A parenthesized
// expression inside a test is disambiguated by what follows it: if a path
// continuation ('/', '[', 'union', 'intersect', 'except') follows the
// closing parenthesis, the parenthesized expression must be a path and
// parsing continues as a path.
//
// The keywords union/intersect/except/for/in/return/not/and/or/is are
// reserved and cannot be used as QNames.
#ifndef XPV_XPATH_PARSER_H_
#define XPV_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace xpv::xpath {

/// Parses a Core XPath 2.0 path expression.
Result<PathPtr> ParsePath(std::string_view text);

/// Parses a Core XPath 2.0 test expression (the bracket-interior syntax).
Result<TestPtr> ParseTest(std::string_view text);

/// Parses a path in ABBREVIATED XPath syntax and desugars into the core
/// grammar:
///
///   name       => child::name          *     => child::*
///   ..         => parent::*            a//b  => a/(descendant::* union .)/b
///   //a        => (descendant::* union .)/a   (from the context node)
///   /a         => .[not parent::*]/a    /     alone => .[not parent::*]
///
/// Everything from the core grammar (axes, filters, variables, for,
/// union/intersect/except) remains available.
Result<PathPtr> ParseAbbreviatedPath(std::string_view text);

}  // namespace xpv::xpath

#endif  // XPV_XPATH_PARSER_H_
