#include "xpath/fragment.h"

#include <string>

namespace xpv::xpath {

namespace {

std::string JoinVars(const std::set<std::string>& vars) {
  std::string out = "{";
  bool first = true;
  for (const auto& v : vars) {
    if (!first) out += ", ";
    first = false;
    out += v;
  }
  out += "}";
  return out;
}

std::set<std::string> Intersection(const std::set<std::string>& a,
                                   const std::set<std::string>& b) {
  std::set<std::string> out;
  for (const auto& v : a) {
    if (b.contains(v)) out.insert(v);
  }
  return out;
}

Status CheckPplTest(const TestExpr& t);

Status CheckPplPath(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kStep:
    case PathKind::kDot:
    case PathKind::kVar:
      return Status::OK();
    case PathKind::kFor:
      return Status::FragmentViolation("N(for): for-loop in '" +
                                       p.ToString() + "'");
    case PathKind::kIntersect: {
      if (!FreeVars(*p.left).empty() || !FreeVars(*p.right).empty()) {
        return Status::FragmentViolation(
            "NV(intersect): variables occur in 'P1 intersect P2' "
            "subexpression '" +
            p.ToString() + "'");
      }
      XPV_RETURN_IF_ERROR(CheckPplPath(*p.left));
      return CheckPplPath(*p.right);
    }
    case PathKind::kExcept: {
      if (!FreeVars(*p.left).empty() || !FreeVars(*p.right).empty()) {
        return Status::FragmentViolation(
            "NV(except): variables occur in 'P1 except P2' subexpression '" +
            p.ToString() + "'");
      }
      XPV_RETURN_IF_ERROR(CheckPplPath(*p.left));
      return CheckPplPath(*p.right);
    }
    case PathKind::kCompose: {
      const auto shared =
          Intersection(FreeVars(*p.left), FreeVars(*p.right));
      if (!shared.empty()) {
        return Status::FragmentViolation(
            "NVS(/): variables " + JoinVars(shared) +
            " shared across composition '" + p.ToString() + "'");
      }
      XPV_RETURN_IF_ERROR(CheckPplPath(*p.left));
      return CheckPplPath(*p.right);
    }
    case PathKind::kUnion:
      // No restriction on union (variables may be shared).
      XPV_RETURN_IF_ERROR(CheckPplPath(*p.left));
      return CheckPplPath(*p.right);
    case PathKind::kFilter: {
      const auto shared = Intersection(FreeVars(*p.left), FreeVars(*p.test));
      if (!shared.empty()) {
        return Status::FragmentViolation(
            "NVS([]): variables " + JoinVars(shared) +
            " shared between path and filter in '" + p.ToString() + "'");
      }
      XPV_RETURN_IF_ERROR(CheckPplPath(*p.left));
      return CheckPplTest(*p.test);
    }
  }
  return Status::OK();
}

Status CheckPplTest(const TestExpr& t) {
  switch (t.kind) {
    case TestKind::kPath:
      return CheckPplPath(*t.path);
    case TestKind::kIs:
      return Status::OK();
    case TestKind::kNot: {
      if (!FreeVars(*t.a).empty()) {
        return Status::FragmentViolation(
            "NV(not): variables " + JoinVars(FreeVars(*t.a)) +
            " below negation in 'not " + t.a->ToString() + "'");
      }
      return CheckPplTest(*t.a);
    }
    case TestKind::kAnd: {
      const auto shared = Intersection(FreeVars(*t.a), FreeVars(*t.b));
      if (!shared.empty()) {
        return Status::FragmentViolation(
            "NVS(and): variables " + JoinVars(shared) +
            " shared across conjunction '" + t.ToString() + "'");
      }
      XPV_RETURN_IF_ERROR(CheckPplTest(*t.a));
      return CheckPplTest(*t.b);
    }
    case TestKind::kOr:
      // No restriction on or.
      XPV_RETURN_IF_ERROR(CheckPplTest(*t.a));
      return CheckPplTest(*t.b);
  }
  return Status::OK();
}

}  // namespace

Status CheckNoVariables(const TestExpr& t) {
  switch (t.kind) {
    case TestKind::kPath:
      return CheckNoVariables(*t.path);
    case TestKind::kIs:
      if (!t.lhs.is_dot || !t.rhs.is_dot) {
        return Status::FragmentViolation(
            "N($x): node comparison '" + t.ToString() + "' uses a variable");
      }
      return Status::OK();
    case TestKind::kNot:
      return CheckNoVariables(*t.a);
    case TestKind::kAnd:
    case TestKind::kOr:
      XPV_RETURN_IF_ERROR(CheckNoVariables(*t.a));
      return CheckNoVariables(*t.b);
  }
  return Status::OK();
}

Status CheckNoVariables(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kStep:
    case PathKind::kDot:
      return Status::OK();
    case PathKind::kVar:
      return Status::FragmentViolation("N($x): variable $" + p.var +
                                       " occurs");
    case PathKind::kFor:
      return Status::FragmentViolation("N($x): for-loop occurs");
    case PathKind::kCompose:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kExcept:
      XPV_RETURN_IF_ERROR(CheckNoVariables(*p.left));
      return CheckNoVariables(*p.right);
    case PathKind::kFilter:
      XPV_RETURN_IF_ERROR(CheckNoVariables(*p.left));
      return CheckNoVariables(*p.test);
  }
  return Status::OK();
}

Status CheckPpl(const PathExpr& p) { return CheckPplPath(p); }

Status CheckPplBinSyntax(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kStep:
    case PathKind::kDot:
      return Status::OK();
    case PathKind::kVar:
      return Status::FragmentViolation("PPLbin: variable $" + p.var +
                                       " not allowed");
    case PathKind::kFor:
      return Status::FragmentViolation("PPLbin: for-loop not allowed");
    case PathKind::kIntersect:
      return Status::FragmentViolation(
          "PPLbin: 'intersect' not in the Fig. 3 grammar (use the Prop. 4 "
          "translation)");
    case PathKind::kExcept:
      // Fig. 3 has unary `except P`, encoded here as `nodes except P` with
      // a wildcard full-relation left operand produced by ppl::FromXPath.
      return Status::FragmentViolation(
          "PPLbin: binary 'except' not in the Fig. 3 grammar (use the "
          "Prop. 4 translation)");
    case PathKind::kCompose:
    case PathKind::kUnion:
      XPV_RETURN_IF_ERROR(CheckPplBinSyntax(*p.left));
      return CheckPplBinSyntax(*p.right);
    case PathKind::kFilter:
      XPV_RETURN_IF_ERROR(CheckPplBinSyntax(*p.left));
      if (p.test->kind != TestKind::kPath) {
        return Status::FragmentViolation(
            "PPLbin: filter test must be a path, got '" +
            p.test->ToString() + "'");
      }
      return CheckPplBinSyntax(*p.test->path);
  }
  return Status::OK();
}

bool ContainsFor(const PathExpr& p) {
  if (p.kind == PathKind::kFor) return true;
  if (p.left && ContainsFor(*p.left)) return true;
  if (p.right && ContainsFor(*p.right)) return true;
  if (p.test) {
    const TestExpr& t = *p.test;
    if (t.path && ContainsFor(*t.path)) return true;
    // Tests contain paths only through kPath and nested tests.
    std::vector<const TestExpr*> stack = {&t};
    while (!stack.empty()) {
      const TestExpr* cur = stack.back();
      stack.pop_back();
      if (cur->path && ContainsFor(*cur->path)) return true;
      if (cur->a) stack.push_back(cur->a.get());
      if (cur->b) stack.push_back(cur->b.get());
    }
  }
  return false;
}

}  // namespace xpv::xpath
