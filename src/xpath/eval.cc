#include "xpath/eval.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace xpv::xpath {

Result<BitMatrix> DirectEvaluator::TryEvalPath(const PathExpr& p,
                                               const Assignment& alpha) {
  const std::size_t n = tree_.size();
  switch (p.kind) {
    case PathKind::kStep: {
      // [[A::N]] = {(v1,v2) in A(t) | v2 in lab_N(t)}.
      const BoolMatrix& axis = cache_->Matrix(p.axis);
      if (const BitMatrix* dense = axis.AsDense()) {
        if (p.name_test.empty()) return *dense;
        return dense->MaskColumns(cache_->Labels(p.name_test));
      }
      // This evaluator is inherently dense (every node materializes a
      // |t| x |t| matrix), so expand an interval-backed axis leaf; above
      // the dense ceiling that fails with kResourceExhausted, which
      // serving callers report as a job error.
      XPV_ASSIGN_OR_RETURN(BitMatrix m, axis.ToDense());
      if (!p.name_test.empty()) m.MaskColumnsInPlace(cache_->Labels(p.name_test));
      return m;
    }
    case PathKind::kDot:
      // [[.]] = {(v,v)}.
      return BitMatrix::Identity(n);
    case PathKind::kVar: {
      // [[$x]] = {(v, alpha(x)) | v in nodes(t)}.
      auto it = alpha.find(p.var);
      assert(it != alpha.end() && "unbound variable in path evaluation");
      BitMatrix m(n);
      for (NodeId v = 0; v < n; ++v) m.Set(v, it->second);
      return m;
    }
    case PathKind::kCompose: {
      // [[P1/P2]] = [[P1]] o [[P2]].
      XPV_ASSIGN_OR_RETURN(BitMatrix a, TryEvalPath(*p.left, alpha));
      XPV_ASSIGN_OR_RETURN(BitMatrix b, TryEvalPath(*p.right, alpha));
      return a.Multiply(b);
    }
    case PathKind::kUnion: {
      XPV_ASSIGN_OR_RETURN(BitMatrix a, TryEvalPath(*p.left, alpha));
      XPV_ASSIGN_OR_RETURN(BitMatrix b, TryEvalPath(*p.right, alpha));
      return a.Or(b);
    }
    case PathKind::kIntersect: {
      XPV_ASSIGN_OR_RETURN(BitMatrix a, TryEvalPath(*p.left, alpha));
      XPV_ASSIGN_OR_RETURN(BitMatrix b, TryEvalPath(*p.right, alpha));
      return a.And(b);
    }
    case PathKind::kExcept: {
      // [[P1 except P2]] = [[P1]] - [[P2]].
      XPV_ASSIGN_OR_RETURN(BitMatrix a, TryEvalPath(*p.left, alpha));
      XPV_ASSIGN_OR_RETURN(BitMatrix b, TryEvalPath(*p.right, alpha));
      return a.AndNot(b);
    }
    case PathKind::kFilter: {
      // [[P[T]]] = {(v1,v2) in [[P]] | v2 in [[T]]_test}.
      XPV_ASSIGN_OR_RETURN(BitMatrix a, TryEvalPath(*p.left, alpha));
      XPV_ASSIGN_OR_RETURN(BitVector test, TryEvalTest(*p.test, alpha));
      return a.MaskColumns(test);
    }
    case PathKind::kFor: {
      // [[for $x in P1 return P2]] =
      //   {(v1,v3) | ex. v2: (v1,v2) in [[P1]]^alpha
      //              and (v1,v3) in [[P2]]^{alpha[x->v2]}}.
      XPV_ASSIGN_OR_RETURN(BitMatrix seq, TryEvalPath(*p.left, alpha));
      BitMatrix out(n);
      for (NodeId v2 = 0; v2 < n; ++v2) {
        // Rows v1 for which (v1, v2) in [[P1]].
        BitVector rows(n);
        for (NodeId v1 = 0; v1 < n; ++v1) {
          if (seq.Get(v1, v2)) rows.Set(v1);
        }
        if (rows.None()) continue;
        Assignment alpha2 = alpha;
        alpha2[p.var] = v2;
        XPV_ASSIGN_OR_RETURN(BitMatrix body, TryEvalPath(*p.right, alpha2));
        rows.ForEachSet([&](std::size_t v1) {
          out.OrIntoRow(v1, body.Row(v1));
        });
      }
      return out;
    }
  }
  std::abort();  // unreachable: the switch above covers every PathKind
}

Result<BitVector> DirectEvaluator::TryEvalTest(const TestExpr& t,
                                               const Assignment& alpha) {
  const std::size_t n = tree_.size();
  switch (t.kind) {
    case TestKind::kPath: {
      // [[P]]_test = {v | (v, v') in [[P]]}.
      XPV_ASSIGN_OR_RETURN(BitMatrix m, TryEvalPath(*t.path, alpha));
      return m.NonEmptyRows();
    }
    case TestKind::kIs: {
      BitVector out(n);
      if (t.lhs.is_dot && t.rhs.is_dot) {
        // [[. is .]] = nodes(t).
        out.Fill();
        return out;
      }
      if (t.lhs.is_dot != t.rhs.is_dot) {
        // [[. is $x]] = {alpha(x)} (and symmetrically).
        const std::string& var = t.lhs.is_dot ? t.rhs.var : t.lhs.var;
        auto it = alpha.find(var);
        assert(it != alpha.end() && "unbound variable in comparison test");
        out.Set(it->second);
        return out;
      }
      // [[$x is $y]] = {alpha(x)} when alpha(x) = alpha(y), else {}.
      auto ix = alpha.find(t.lhs.var);
      auto iy = alpha.find(t.rhs.var);
      assert(ix != alpha.end() && iy != alpha.end());
      if (ix->second == iy->second) out.Set(ix->second);
      return out;
    }
    case TestKind::kNot: {
      XPV_ASSIGN_OR_RETURN(BitVector out, TryEvalTest(*t.a, alpha));
      out.Complement();
      return out;
    }
    case TestKind::kAnd: {
      XPV_ASSIGN_OR_RETURN(BitVector out, TryEvalTest(*t.a, alpha));
      XPV_ASSIGN_OR_RETURN(BitVector b, TryEvalTest(*t.b, alpha));
      out.AndWith(b);
      return out;
    }
    case TestKind::kOr: {
      XPV_ASSIGN_OR_RETURN(BitVector out, TryEvalTest(*t.a, alpha));
      XPV_ASSIGN_OR_RETURN(BitVector b, TryEvalTest(*t.b, alpha));
      out.OrWith(b);
      return out;
    }
  }
  std::abort();  // unreachable: the switch above covers every TestKind
}

BitMatrix DirectEvaluator::EvalPath(const PathExpr& p,
                                    const Assignment& alpha) {
  Result<BitMatrix> m = TryEvalPath(p, alpha);
  if (!m.ok()) {
    std::fprintf(stderr, "DirectEvaluator::EvalPath: %s\n",
                 m.status().ToString().c_str());
    std::abort();  // unchecked entry point: small-tree callers only
  }
  return std::move(m).value();
}

BitVector DirectEvaluator::EvalTest(const TestExpr& t,
                                    const Assignment& alpha) {
  Result<BitVector> v = TryEvalTest(t, alpha);
  if (!v.ok()) {
    std::fprintf(stderr, "DirectEvaluator::EvalTest: %s\n",
                 v.status().ToString().c_str());
    std::abort();  // unchecked entry point: small-tree callers only
  }
  return std::move(v).value();
}

TupleSet ExpandWildcardPositions(const TupleSet& tuples,
                                 const std::vector<std::size_t>& free_positions,
                                 std::size_t num_nodes) {
  if (free_positions.empty()) return tuples;
  TupleSet out;
  for (const NodeTuple& base : tuples) {
    // Odometer over the free positions.
    NodeTuple tuple = base;
    std::vector<NodeId> counters(free_positions.size(), 0);
    while (true) {
      for (std::size_t i = 0; i < free_positions.size(); ++i) {
        tuple[free_positions[i]] = counters[i];
      }
      out.insert(tuple);
      std::size_t i = 0;
      for (; i < counters.size(); ++i) {
        if (++counters[i] < num_nodes) break;
        counters[i] = 0;
      }
      if (i == counters.size()) break;
    }
  }
  return out;
}

TupleSet DirectEvaluator::EvalNaryNaive(
    const PathExpr& p, const std::vector<std::string>& tuple_vars) {
  const std::size_t n = tree_.size();
  const std::set<std::string> free_vars = FreeVars(p);
  const std::vector<std::string> vars(free_vars.begin(), free_vars.end());

  // Tuple positions whose variable is not constrained by P.
  std::vector<std::size_t> wildcard_positions;
  for (std::size_t i = 0; i < tuple_vars.size(); ++i) {
    if (!free_vars.contains(tuple_vars[i])) wildcard_positions.push_back(i);
  }

  TupleSet constrained;
  Assignment alpha;
  // Odometer over assignments to Var(P).
  std::vector<NodeId> counters(vars.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < vars.size(); ++i) alpha[vars[i]] = counters[i];
    if (!EvalPath(p, alpha).None()) {
      NodeTuple tuple(tuple_vars.size(), 0);
      for (std::size_t i = 0; i < tuple_vars.size(); ++i) {
        auto it = alpha.find(tuple_vars[i]);
        if (it != alpha.end()) tuple[i] = it->second;
      }
      constrained.insert(tuple);
    }
    std::size_t i = 0;
    for (; i < counters.size(); ++i) {
      if (++counters[i] < n) break;
      counters[i] = 0;
    }
    if (i == counters.size() || vars.empty()) break;
  }
  return ExpandWildcardPositions(constrained, wildcard_positions, n);
}

}  // namespace xpv::xpath
