// Algebraic simplification of Core XPath 2.0 and PPLbin expressions.
//
// The translations of the paper (Fig. 4, Fig. 7, Section 2 L.M) are
// defined for clarity, not economy: they emit identity compositions
// (P/., ./P, P/self::*), double complements (from intersect elimination)
// and duplicated union branches. This pass applies a small set of
// semantics-preserving rewrites, bottom-up to a fixpoint:
//
//   Core XPath 2.0:  P/. => P        ./P => P        P union P => P
//                    P intersect P => P              P[. is .] => P
//                    not not T => T                  T and T => T
//                    T or T => T
//
//   PPLbin:          P/self::* => P  self::*/P => P  P union P => P
//                    except except P => P            [[P]] => [P]
//
// Every rule is justified by the Fig. 2 / Section 4 semantics and checked
// differentially in simplify_test.cc.
#ifndef XPV_XPATH_SIMPLIFY_H_
#define XPV_XPATH_SIMPLIFY_H_

#include "xpath/ast.h"

namespace xpv::xpath {

/// Simplifies a path expression; returns the (possibly smaller)
/// replacement. Never grows the expression.
PathPtr Simplify(PathPtr p);
TestPtr Simplify(TestPtr t);

}  // namespace xpv::xpath

#endif  // XPV_XPATH_SIMPLIFY_H_
