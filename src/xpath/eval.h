// Direct denotational semantics of Core XPath 2.0 (Fig. 2 of the paper).
//
// A path expression P denotes a set of node pairs [[P]]^{t,alpha} (here a
// BitMatrix with rows = start nodes), a test expression T a set of nodes
// [[T]]_test^{t,alpha} (a BitVector), both relative to a tree t and a
// variable assignment alpha : Var -> nodes(t).
//
// This evaluator is the semantic ground truth of the library: it follows
// the paper's equations literally with no algorithmic shortcuts, and the
// efficient engines (ppl::MatrixEngine, hcl::AnswerQuery) are differentially
// tested against it. For-loops cost a factor |t| per nesting level and
// naive n-ary answering enumerates |t|^k assignments, mirroring the
// PSPACE/NP lower bounds of Section 2 and 3; use it on small inputs only.
#ifndef XPV_XPATH_EVAL_H_
#define XPV_XPATH_EVAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"
#include "xpath/ast.h"

namespace xpv::xpath {

/// Variable assignment alpha : Var -> nodes(t). Must be total on the free
/// variables of the expression being evaluated.
using Assignment = std::map<std::string, NodeId>;

/// An n-tuple of selected nodes.
using NodeTuple = std::vector<NodeId>;
/// An n-ary answer set, ordered lexicographically.
using TupleSet = std::set<NodeTuple>;

/// Evaluates Core XPath 2.0 expressions on one fixed tree, caching axis
/// relation matrices and label sets across calls (in a private AxisCache,
/// or a shared per-tree one when supplied).
class DirectEvaluator {
 public:
  explicit DirectEvaluator(const Tree& tree)
      : DirectEvaluator(std::make_shared<AxisCache>(tree)) {}
  explicit DirectEvaluator(std::shared_ptr<AxisCache> cache)
      : tree_(cache->tree()), cache_(std::move(cache)) {}

  /// [[P]]^{t,alpha}: matrix M with M[v1][v2] = 1 iff (v1,v2) selected.
  /// Fails with kResourceExhausted when an interval-backed axis leaf
  /// cannot densify (this evaluator is inherently dense) -- serving paths
  /// surface that as a job error instead of crashing.
  Result<BitMatrix> TryEvalPath(const PathExpr& p, const Assignment& alpha);
  /// [[T]]_test^{t,alpha}; same failure modes as TryEvalPath.
  Result<BitVector> TryEvalTest(const TestExpr& t, const Assignment& alpha);

  /// Unchecked conveniences for tests and small-tree callers: the Try*
  /// variants or std::abort() with the status on stderr (trees beyond the
  /// dense ceiling never legitimately reach this evaluator).
  BitMatrix EvalPath(const PathExpr& p, const Assignment& alpha);
  BitVector EvalTest(const TestExpr& t, const Assignment& alpha);

  /// The n-ary query q_{P,x}(t) = { alpha(x1..xn) | [[P]]^{t,alpha} != {} },
  /// computed by brute-force enumeration of assignments to Var(P). Tuple
  /// positions whose variable does not occur in P range over all nodes.
  /// Cost: |t|^|Var(P)| path evaluations -- ground truth for small inputs.
  TupleSet EvalNaryNaive(const PathExpr& p,
                         const std::vector<std::string>& tuple_vars);

  const Tree& tree() const { return tree_; }

 private:
  const Tree& tree_;
  std::shared_ptr<AxisCache> cache_;
};

/// Expands a set of tuples with wildcard positions: every tuple position
/// whose index is in `free_positions` is replaced by all |t| node choices.
/// Shared helper for the naive n-ary evaluators.
TupleSet ExpandWildcardPositions(const TupleSet& tuples,
                                 const std::vector<std::size_t>& free_positions,
                                 std::size_t num_nodes);

}  // namespace xpv::xpath

#endif  // XPV_XPATH_EVAL_H_
