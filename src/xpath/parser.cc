#include "xpath/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace xpv::xpath {

namespace {

enum class TokKind {
  kName,    // identifier or keyword
  kVar,     // $name
  kDot,     // .
  kSlash,   // /
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kAxisSep,  // ::
  kStar,     // *
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // kName/kVar payload
  std::size_t offset = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    std::size_t start = pos;
    if (IsNameStart(c)) {
      ++pos;
      // A trailing '.' is ambiguous with the context-item dot only at the
      // very end; XPath QNames here are letters/digits/_/-.
      while (pos < text.size() && IsNameChar(text[pos]) &&
             text[pos] != '.') {
        ++pos;
      }
      out.push_back(
          {TokKind::kName, std::string(text.substr(start, pos - start)),
           start});
      continue;
    }
    if (c == '$') {
      ++pos;
      if (pos >= text.size() || !IsNameStart(text[pos])) {
        return Status::InvalidArgument("expected variable name after '$' at " +
                                       std::to_string(start));
      }
      std::size_t name_start = pos;
      ++pos;
      while (pos < text.size() && IsNameChar(text[pos]) && text[pos] != '.') {
        ++pos;
      }
      out.push_back({TokKind::kVar,
                     std::string(text.substr(name_start, pos - name_start)),
                     start});
      continue;
    }
    switch (c) {
      case '.':
        out.push_back({TokKind::kDot, ".", start});
        ++pos;
        break;
      case '/':
        out.push_back({TokKind::kSlash, "/", start});
        ++pos;
        break;
      case '[':
        out.push_back({TokKind::kLBracket, "[", start});
        ++pos;
        break;
      case ']':
        out.push_back({TokKind::kRBracket, "]", start});
        ++pos;
        break;
      case '(':
        out.push_back({TokKind::kLParen, "(", start});
        ++pos;
        break;
      case ')':
        out.push_back({TokKind::kRParen, ")", start});
        ++pos;
        break;
      case '*':
        out.push_back({TokKind::kStar, "*", start});
        ++pos;
        break;
      case ':':
        if (pos + 1 < text.size() && text[pos + 1] == ':') {
          out.push_back({TokKind::kAxisSep, "::", start});
          pos += 2;
          break;
        }
        return Status::InvalidArgument("stray ':' at offset " +
                                       std::to_string(start));
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(start));
    }
  }
  out.push_back({TokKind::kEnd, "", text.size()});
  return out;
}

bool IsKeyword(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kName && t.text == kw;
}

bool IsReserved(std::string_view name) {
  return name == "union" || name == "intersect" || name == "except" ||
         name == "for" || name == "in" || name == "return" || name == "not" ||
         name == "and" || name == "or" || name == "is";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, bool abbreviated = false)
      : tokens_(std::move(tokens)), abbreviated_(abbreviated) {}

  Result<PathPtr> ParseFullPath() {
    XPV_ASSIGN_OR_RETURN(PathPtr p, ParsePathExpr());
    XPV_RETURN_IF_ERROR(ExpectEnd());
    return p;
  }

  Result<TestPtr> ParseFullTest() {
    XPV_ASSIGN_OR_RETURN(TestPtr t, ParseTestExpr());
    XPV_RETURN_IF_ERROR(ExpectEnd());
    return t;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[index_ < tokens_.size() - 1 ? index_++ : index_]; }
  bool TryTake(TokKind kind) {
    if (Peek().kind == kind) {
      Take();
      return true;
    }
    return false;
  }
  bool TryTakeKeyword(std::string_view kw) {
    if (IsKeyword(Peek(), kw)) {
      Take();
      return true;
    }
    return false;
  }
  Status ErrorHere(std::string msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }
  Status ExpectEnd() const {
    if (Peek().kind != TokKind::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }

  /// Nesting bound shared by the two mutually recursive entry points:
  /// inputs like "((((..." or "not(not(not(..." otherwise recurse once
  /// per character and overflow the stack (found by fuzz_xpath_parser;
  /// fuzz/corpus/ keeps the reproducers). Deep *iterative* chains
  /// (a/b/c/..., unions) are unaffected -- they loop, not recurse.
  static constexpr int kMaxNestingDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int& d) : depth(d) { ++depth; }
    ~DepthGuard() { --depth; }
    int& depth;
  };

  // PathExpr := for-expr | union-expr
  Result<PathPtr> ParsePathExpr() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxNestingDepth) {
      return ErrorHere("expression nests too deeply");
    }
    if (IsKeyword(Peek(), "for")) return ParseForExpr();
    return ParseUnionExpr();
  }

  Result<PathPtr> ParseForExpr() {
    Take();  // 'for'
    if (Peek().kind != TokKind::kVar) {
      return ErrorHere("expected $variable after 'for'");
    }
    std::string var = Take().text;
    if (!TryTakeKeyword("in")) return ErrorHere("expected 'in'");
    XPV_ASSIGN_OR_RETURN(PathPtr seq, ParseUnionExpr());
    if (!TryTakeKeyword("return")) return ErrorHere("expected 'return'");
    XPV_ASSIGN_OR_RETURN(PathPtr body, ParsePathExpr());
    return PathExpr::For(var, std::move(seq), std::move(body));
  }

  Result<PathPtr> ParseUnionExpr() {
    XPV_ASSIGN_OR_RETURN(PathPtr left, ParseIntersectExpr());
    return ParseUnionRest(std::move(left));
  }

  Result<PathPtr> ParseUnionRest(PathPtr left) {
    while (TryTakeKeyword("union")) {
      XPV_ASSIGN_OR_RETURN(PathPtr right, ParseIntersectExpr());
      left = PathExpr::Union(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PathPtr> ParseIntersectExpr() {
    XPV_ASSIGN_OR_RETURN(PathPtr left, ParseRelativePath());
    return ParseIntersectRest(std::move(left));
  }

  Result<PathPtr> ParseIntersectRest(PathPtr left) {
    while (true) {
      if (TryTakeKeyword("intersect")) {
        XPV_ASSIGN_OR_RETURN(PathPtr right, ParseRelativePath());
        left = PathExpr::Intersect(std::move(left), std::move(right));
      } else if (TryTakeKeyword("except")) {
        XPV_ASSIGN_OR_RETURN(PathPtr right, ParseRelativePath());
        left = PathExpr::Except(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  /// (descendant::* union .) -- the abbreviated `//` connective.
  static PathPtr DescendantOrSelf() {
    return PathExpr::Union(PathExpr::Step(Axis::kDescendant, "*"),
                           PathExpr::Dot());
  }
  /// .[not parent::*] -- the abbreviated leading-`/` root anchor.
  static PathPtr RootAnchor() {
    return PathExpr::Filter(
        PathExpr::Dot(),
        TestExpr::Not(TestExpr::Path(PathExpr::Step(Axis::kParent, "*"))));
  }

  bool StartsPrimary() const {
    switch (Peek().kind) {
      case TokKind::kDot:
      case TokKind::kVar:
      case TokKind::kLParen:
        return true;
      case TokKind::kName:
        return !IsReserved(Peek().text);
      case TokKind::kStar:
        return abbreviated_;
      default:
        return false;
    }
  }

  Result<PathPtr> ParseRelativePath() {
    PathPtr left;
    if (abbreviated_ && Peek().kind == TokKind::kSlash) {
      // Absolute path: / or //: jump to the root first.
      Take();
      left = RootAnchor();
      if (TryTake(TokKind::kSlash)) {
        left = PathExpr::Compose(std::move(left), DescendantOrSelf());
        // `//` must be followed by a step.
        XPV_ASSIGN_OR_RETURN(PathPtr right, ParsePostfixExpr());
        left = PathExpr::Compose(std::move(left), std::move(right));
      } else if (StartsPrimary()) {
        XPV_ASSIGN_OR_RETURN(PathPtr right, ParsePostfixExpr());
        left = PathExpr::Compose(std::move(left), std::move(right));
      }
      // bare "/" selects just the root anchor.
    } else {
      XPV_ASSIGN_OR_RETURN(PathPtr first, ParsePostfixExpr());
      left = std::move(first);
    }
    return ParseRelativePathRest(std::move(left));
  }

  Result<PathPtr> ParseRelativePathRest(PathPtr left) {
    while (TryTake(TokKind::kSlash)) {
      if (abbreviated_ && TryTake(TokKind::kSlash)) {
        // a//b = a/(descendant::* union .)/b.
        left = PathExpr::Compose(std::move(left), DescendantOrSelf());
      }
      XPV_ASSIGN_OR_RETURN(PathPtr right, ParsePostfixExpr());
      left = PathExpr::Compose(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PathPtr> ParsePostfixExpr() {
    XPV_ASSIGN_OR_RETURN(PathPtr primary, ParsePrimary());
    return ParsePostfixRest(std::move(primary));
  }

  Result<PathPtr> ParsePostfixRest(PathPtr primary) {
    while (TryTake(TokKind::kLBracket)) {
      XPV_ASSIGN_OR_RETURN(TestPtr test, ParseTestExpr());
      if (!TryTake(TokKind::kRBracket)) return ErrorHere("expected ']'");
      primary = PathExpr::Filter(std::move(primary), std::move(test));
    }
    return primary;
  }

  Result<PathPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kDot:
        // Abbreviated `..` lexes as two adjacent dots.
        if (abbreviated_ && Peek(1).kind == TokKind::kDot &&
            Peek(1).offset == tok.offset + 1) {
          Take();
          Take();
          return PathExpr::Step(Axis::kParent, "*");
        }
        Take();
        return PathExpr::Dot();
      case TokKind::kVar:
        return PathExpr::Var(Take().text);
      case TokKind::kStar:
        if (abbreviated_) {
          Take();
          return PathExpr::Step(Axis::kChild, "*");
        }
        return ErrorHere("expected a path expression");
      case TokKind::kLParen: {
        Take();
        XPV_ASSIGN_OR_RETURN(PathPtr p, ParsePathExpr());
        if (!TryTake(TokKind::kRParen)) return ErrorHere("expected ')'");
        return p;
      }
      case TokKind::kName: {
        if (IsReserved(tok.text)) {
          return ErrorHere("reserved keyword '" + tok.text +
                           "' cannot start a path");
        }
        // Abbreviated: a bare name (no `::` following) is a child step.
        if (abbreviated_ && Peek(1).kind != TokKind::kAxisSep) {
          return PathExpr::Step(Axis::kChild, Take().text);
        }
        Result<Axis> axis = xpv::ParseAxis(tok.text);
        if (!axis.ok()) {
          return ErrorHere("unknown axis '" + tok.text + "'");
        }
        Take();
        if (!TryTake(TokKind::kAxisSep)) return ErrorHere("expected '::'");
        const Token& nt = Peek();
        if (nt.kind == TokKind::kStar) {
          Take();
          return PathExpr::Step(*axis, "*");
        }
        if (nt.kind == TokKind::kName) {
          if (IsReserved(nt.text)) {
            return ErrorHere("reserved keyword '" + nt.text +
                             "' cannot be a name test");
          }
          return PathExpr::Step(*axis, Take().text);
        }
        return ErrorHere("expected a name test or '*'");
      }
      default:
        return ErrorHere("expected a path expression");
    }
  }

  // TestExpr := or-test
  Result<TestPtr> ParseTestExpr() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxNestingDepth) {
      return ErrorHere("expression nests too deeply");
    }
    XPV_ASSIGN_OR_RETURN(TestPtr left, ParseAndTest());
    while (TryTakeKeyword("or")) {
      XPV_ASSIGN_OR_RETURN(TestPtr right, ParseAndTest());
      left = TestExpr::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<TestPtr> ParseAndTest() {
    XPV_ASSIGN_OR_RETURN(TestPtr left, ParseUnaryTest());
    while (TryTakeKeyword("and")) {
      XPV_ASSIGN_OR_RETURN(TestPtr right, ParseUnaryTest());
      left = TestExpr::And(std::move(left), std::move(right));
    }
    return Result<TestPtr>(std::move(left));
  }

  Result<TestPtr> ParseUnaryTest() {
    if (TryTakeKeyword("not")) {
      XPV_ASSIGN_OR_RETURN(TestPtr inner, ParseUnaryTest());
      return TestExpr::Not(std::move(inner));
    }
    return ParseTestAtom();
  }

  // A test atom is a CompTest (NodeRef is NodeRef), a parenthesized test,
  // or a path expression. Both '(' and NodeRefs are prefix-ambiguous with
  // paths, so each case resolves by lookahead / continuation.
  Result<TestPtr> ParseTestAtom() {
    const Token& tok = Peek();
    // CompTest lookahead: NodeRef 'is'.
    if ((tok.kind == TokKind::kDot || tok.kind == TokKind::kVar) &&
        IsKeyword(Peek(1), "is")) {
      NodeRef lhs = tok.kind == TokKind::kDot ? NodeRef::Dot()
                                              : NodeRef::Var(tok.text);
      Take();
      Take();  // 'is'
      const Token& rt = Peek();
      if (rt.kind == TokKind::kDot) {
        Take();
        return TestExpr::Is(lhs, NodeRef::Dot());
      }
      if (rt.kind == TokKind::kVar) {
        return TestExpr::Is(lhs, NodeRef::Var(Take().text));
      }
      return ErrorHere("expected '.' or '$var' after 'is'");
    }
    if (tok.kind == TokKind::kLParen) {
      Take();
      XPV_ASSIGN_OR_RETURN(TestPtr inner, ParseTestExpr());
      if (!TryTake(TokKind::kRParen)) return ErrorHere("expected ')'");
      // If a path continuation follows, the parenthesized expression must
      // itself be a path; resume path parsing with it as the left operand.
      if (inner->kind == TestKind::kPath && IsPathContinuation()) {
        XPV_ASSIGN_OR_RETURN(PathPtr p,
                             ContinuePath(std::move(inner->path)));
        return TestExpr::Path(std::move(p));
      }
      return Result<TestPtr>(std::move(inner));
    }
    XPV_ASSIGN_OR_RETURN(PathPtr p, ParsePathExpr());
    return TestExpr::Path(std::move(p));
  }

  bool IsPathContinuation() const {
    const Token& t = Peek();
    return t.kind == TokKind::kSlash || t.kind == TokKind::kLBracket ||
           IsKeyword(t, "union") || IsKeyword(t, "intersect") ||
           IsKeyword(t, "except");
  }

  // Continues parsing a path whose leftmost constituent has already been
  // parsed (it came out of parentheses inside a test).
  Result<PathPtr> ContinuePath(PathPtr left) {
    XPV_ASSIGN_OR_RETURN(PathPtr p1, ParsePostfixRest(std::move(left)));
    XPV_ASSIGN_OR_RETURN(PathPtr p2, ParseRelativePathRest(std::move(p1)));
    XPV_ASSIGN_OR_RETURN(PathPtr p3, ParseIntersectRest(std::move(p2)));
    return ParseUnionRest(std::move(p3));
  }

  std::vector<Token> tokens_;
  bool abbreviated_ = false;
  std::size_t index_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<PathPtr> ParsePath(std::string_view text) {
  XPV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseFullPath();
}

Result<TestPtr> ParseTest(std::string_view text) {
  XPV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseFullTest();
}

Result<PathPtr> ParseAbbreviatedPath(std::string_view text) {
  XPV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), /*abbreviated=*/true);
  return parser.ParseFullPath();
}

}  // namespace xpv::xpath
