// Abstract syntax of Core XPath 2.0, exactly the grammar of Fig. 1 of the
// paper:
//
//   PathExpr := Step | NodeRef | PathExpr / PathExpr
//             | PathExpr union PathExpr | PathExpr intersect PathExpr
//             | PathExpr except PathExpr | PathExpr [ TestExpr ]
//             | for $x in PathExpr return PathExpr
//   TestExpr := PathExpr | CompTest | not TestExpr
//             | TestExpr and TestExpr | TestExpr or TestExpr
//   CompTest := NodeRef is NodeRef
//   NodeRef  := . | $x
//   Step     := Axis :: (QName | *)
//
// The AST is an owning tree of unique_ptrs. Expressions are immutable after
// construction; Clone() produces deep copies. `|P|`, the paper's expression
// size, is the number of AST nodes (Size()).
#ifndef XPV_XPATH_AST_H_
#define XPV_XPATH_AST_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "tree/axes.h"

namespace xpv::xpath {

enum class PathKind {
  kStep,       // Axis::NameTest
  kDot,        // .
  kVar,        // $x
  kCompose,    // P1 / P2
  kUnion,      // P1 union P2
  kIntersect,  // P1 intersect P2
  kExcept,     // P1 except P2
  kFilter,     // P [ T ]
  kFor,        // for $x in P1 return P2
};

enum class TestKind {
  kPath,  // PathExpr used as a test
  kIs,    // NodeRef is NodeRef
  kNot,   // not T
  kAnd,   // T1 and T2
  kOr,    // T1 or T2
};

/// `.` or `$x` -- the operands of a CompTest.
struct NodeRef {
  bool is_dot = true;
  std::string var;  // meaningful when !is_dot

  static NodeRef Dot() { return NodeRef{true, {}}; }
  static NodeRef Var(std::string_view name) {
    return NodeRef{false, std::string(name)};
  }
  bool operator==(const NodeRef& other) const {
    return is_dot == other.is_dot && (is_dot || var == other.var);
  }
  std::string ToString() const { return is_dot ? "." : "$" + var; }
};

struct TestExpr;
using PathPtr = std::unique_ptr<struct PathExpr>;
using TestPtr = std::unique_ptr<TestExpr>;

/// A Core XPath 2.0 path expression (Fig. 1).
struct PathExpr {
  PathKind kind;

  // kStep fields. An empty name_test denotes the wildcard `*`.
  Axis axis = Axis::kChild;
  std::string name_test;

  // kVar: the referenced variable; kFor: the bound loop variable.
  std::string var;

  // Binary operators use left/right. kFilter uses left + test.
  // kFor uses left (the sequence P1) and right (the body P2).
  PathPtr left;
  PathPtr right;
  TestPtr test;

  static PathPtr Step(Axis axis, std::string_view name_test);
  static PathPtr Dot();
  static PathPtr Var(std::string_view name);
  static PathPtr Compose(PathPtr l, PathPtr r);
  static PathPtr Union(PathPtr l, PathPtr r);
  static PathPtr Intersect(PathPtr l, PathPtr r);
  static PathPtr Except(PathPtr l, PathPtr r);
  static PathPtr Filter(PathPtr p, TestPtr t);
  static PathPtr For(std::string_view var, PathPtr seq, PathPtr body);

  PathPtr Clone() const;
  bool Equals(const PathExpr& other) const;
  /// Number of AST nodes (the paper's |P|).
  std::size_t Size() const;
  /// Round-trippable surface syntax.
  std::string ToString() const;
};

/// A Core XPath 2.0 test expression (Fig. 1).
struct TestExpr {
  TestKind kind;

  PathPtr path;      // kPath
  NodeRef lhs, rhs;  // kIs
  TestPtr a;         // kNot (operand), kAnd/kOr (left)
  TestPtr b;         // kAnd/kOr (right)

  static TestPtr Path(PathPtr p);
  static TestPtr Is(NodeRef l, NodeRef r);
  static TestPtr Not(TestPtr t);
  static TestPtr And(TestPtr l, TestPtr r);
  static TestPtr Or(TestPtr l, TestPtr r);

  TestPtr Clone() const;
  bool Equals(const TestExpr& other) const;
  std::size_t Size() const;
  std::string ToString() const;
};

/// Free variables Var(P) of a path expression; `for $x in P1 return P2`
/// binds x within P2.
std::set<std::string> FreeVars(const PathExpr& p);
/// Free variables Var(T) of a test expression.
std::set<std::string> FreeVars(const TestExpr& t);

/// The paper's auxiliary expression reaching every node of a tree from
/// every node:  (ancestor::* union .)/(descendant::* union .).
PathPtr MakeNodesExpr();

/// Prefixes P with the paper's root anchor
/// `.[. is $x and not(parent::*)]/P`, fixing the start of navigation to
/// the root and naming it $x (Section 2).
PathPtr AnchorAtRoot(std::string_view var, PathPtr p);

}  // namespace xpv::xpath

#endif  // XPV_XPATH_AST_H_
