#include "xpath/ast.h"

#include <cassert>

namespace xpv::xpath {

namespace {

PathPtr MakePath(PathKind kind) {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  return p;
}

TestPtr MakeTest(TestKind kind) {
  auto t = std::make_unique<TestExpr>();
  t->kind = kind;
  return t;
}

/// Printing precedence levels, loosest to tightest:
///   for(0) < union(1) < intersect/except(2) < compose(3) < postfix(4).
int PathLevel(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kFor:
      return 0;
    case PathKind::kUnion:
      return 1;
    case PathKind::kIntersect:
    case PathKind::kExcept:
      return 2;
    case PathKind::kCompose:
      return 3;
    case PathKind::kFilter:
      return 4;
    default:
      return 5;
  }
}

void PrintPath(const PathExpr& p, int min_level, std::string* out);

void PrintChild(const PathExpr& child, int required, std::string* out) {
  const bool parens = PathLevel(child) < required;
  if (parens) *out += '(';
  PrintPath(child, 0, out);
  if (parens) *out += ')';
}

/// Test precedence: or(0) < and(1) < not(2) < atoms(3).
int TestLevel(const TestExpr& t) {
  switch (t.kind) {
    case TestKind::kOr:
      return 0;
    case TestKind::kAnd:
      return 1;
    case TestKind::kNot:
      return 2;
    default:
      return 3;
  }
}

void PrintTest(const TestExpr& t, std::string* out);

void PrintTestChild(const TestExpr& child, int required, std::string* out) {
  const bool parens = TestLevel(child) < required;
  if (parens) *out += '(';
  PrintTest(child, out);
  if (parens) *out += ')';
}

void PrintTest(const TestExpr& t, std::string* out) {
  switch (t.kind) {
    case TestKind::kPath:
      PrintPath(*t.path, 0, out);
      return;
    case TestKind::kIs:
      *out += t.lhs.ToString();
      *out += " is ";
      *out += t.rhs.ToString();
      return;
    case TestKind::kNot:
      *out += "not ";
      PrintTestChild(*t.a, 2, out);
      return;
    case TestKind::kAnd:
      PrintTestChild(*t.a, 1, out);
      *out += " and ";
      PrintTestChild(*t.b, 2, out);
      return;
    case TestKind::kOr:
      PrintTestChild(*t.a, 0, out);
      *out += " or ";
      PrintTestChild(*t.b, 1, out);
      return;
  }
}

void PrintPath(const PathExpr& p, int min_level, std::string* out) {
  (void)min_level;
  switch (p.kind) {
    case PathKind::kStep:
      *out += AxisName(p.axis);
      *out += "::";
      *out += p.name_test.empty() ? "*" : p.name_test;
      return;
    case PathKind::kDot:
      *out += '.';
      return;
    case PathKind::kVar:
      *out += '$';
      *out += p.var;
      return;
    case PathKind::kCompose:
      PrintChild(*p.left, 3, out);
      *out += '/';
      PrintChild(*p.right, 4, out);
      return;
    case PathKind::kUnion:
      PrintChild(*p.left, 1, out);
      *out += " union ";
      PrintChild(*p.right, 2, out);
      return;
    case PathKind::kIntersect:
      PrintChild(*p.left, 2, out);
      *out += " intersect ";
      PrintChild(*p.right, 3, out);
      return;
    case PathKind::kExcept:
      PrintChild(*p.left, 2, out);
      *out += " except ";
      PrintChild(*p.right, 3, out);
      return;
    case PathKind::kFilter:
      PrintChild(*p.left, 4, out);
      *out += '[';
      PrintTest(*p.test, out);
      *out += ']';
      return;
    case PathKind::kFor:
      *out += "for $";
      *out += p.var;
      *out += " in ";
      PrintChild(*p.left, 1, out);
      *out += " return ";
      PrintChild(*p.right, 0, out);
      return;
  }
}

void CollectPathVars(const PathExpr& p, const std::set<std::string>& bound,
                     std::set<std::string>* out);

void CollectTestVars(const TestExpr& t, const std::set<std::string>& bound,
                     std::set<std::string>* out) {
  switch (t.kind) {
    case TestKind::kPath:
      CollectPathVars(*t.path, bound, out);
      return;
    case TestKind::kIs:
      if (!t.lhs.is_dot && !bound.contains(t.lhs.var)) out->insert(t.lhs.var);
      if (!t.rhs.is_dot && !bound.contains(t.rhs.var)) out->insert(t.rhs.var);
      return;
    case TestKind::kNot:
      CollectTestVars(*t.a, bound, out);
      return;
    case TestKind::kAnd:
    case TestKind::kOr:
      CollectTestVars(*t.a, bound, out);
      CollectTestVars(*t.b, bound, out);
      return;
  }
}

void CollectPathVars(const PathExpr& p, const std::set<std::string>& bound,
                     std::set<std::string>* out) {
  switch (p.kind) {
    case PathKind::kStep:
    case PathKind::kDot:
      return;
    case PathKind::kVar:
      if (!bound.contains(p.var)) out->insert(p.var);
      return;
    case PathKind::kCompose:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kExcept:
      CollectPathVars(*p.left, bound, out);
      CollectPathVars(*p.right, bound, out);
      return;
    case PathKind::kFilter:
      CollectPathVars(*p.left, bound, out);
      CollectTestVars(*p.test, bound, out);
      return;
    case PathKind::kFor: {
      CollectPathVars(*p.left, bound, out);
      std::set<std::string> bound2 = bound;
      bound2.insert(p.var);
      CollectPathVars(*p.right, bound2, out);
      return;
    }
  }
}

}  // namespace

PathPtr PathExpr::Step(Axis axis, std::string_view name_test) {
  auto p = MakePath(PathKind::kStep);
  p->axis = axis;
  p->name_test = (name_test == "*") ? "" : std::string(name_test);
  return p;
}

PathPtr PathExpr::Dot() { return MakePath(PathKind::kDot); }

PathPtr PathExpr::Var(std::string_view name) {
  auto p = MakePath(PathKind::kVar);
  p->var = std::string(name);
  return p;
}

PathPtr PathExpr::Compose(PathPtr l, PathPtr r) {
  auto p = MakePath(PathKind::kCompose);
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

PathPtr PathExpr::Union(PathPtr l, PathPtr r) {
  auto p = MakePath(PathKind::kUnion);
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

PathPtr PathExpr::Intersect(PathPtr l, PathPtr r) {
  auto p = MakePath(PathKind::kIntersect);
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

PathPtr PathExpr::Except(PathPtr l, PathPtr r) {
  auto p = MakePath(PathKind::kExcept);
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

PathPtr PathExpr::Filter(PathPtr p, TestPtr t) {
  auto f = MakePath(PathKind::kFilter);
  f->left = std::move(p);
  f->test = std::move(t);
  return f;
}

PathPtr PathExpr::For(std::string_view var, PathPtr seq, PathPtr body) {
  auto p = MakePath(PathKind::kFor);
  p->var = std::string(var);
  p->left = std::move(seq);
  p->right = std::move(body);
  return p;
}

PathPtr PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  p->axis = axis;
  p->name_test = name_test;
  p->var = var;
  if (left) p->left = left->Clone();
  if (right) p->right = right->Clone();
  if (test) p->test = test->Clone();
  return p;
}

bool PathExpr::Equals(const PathExpr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case PathKind::kStep:
      return axis == other.axis && name_test == other.name_test;
    case PathKind::kDot:
      return true;
    case PathKind::kVar:
      return var == other.var;
    case PathKind::kCompose:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kExcept:
      return left->Equals(*other.left) && right->Equals(*other.right);
    case PathKind::kFilter:
      return left->Equals(*other.left) && test->Equals(*other.test);
    case PathKind::kFor:
      return var == other.var && left->Equals(*other.left) &&
             right->Equals(*other.right);
  }
  return false;
}

std::size_t PathExpr::Size() const {
  std::size_t size = 1;
  if (left) size += left->Size();
  if (right) size += right->Size();
  if (test) size += test->Size();
  return size;
}

std::string PathExpr::ToString() const {
  std::string out;
  PrintPath(*this, 0, &out);
  return out;
}

TestPtr TestExpr::Path(PathPtr p) {
  auto t = MakeTest(TestKind::kPath);
  t->path = std::move(p);
  return t;
}

TestPtr TestExpr::Is(NodeRef l, NodeRef r) {
  auto t = MakeTest(TestKind::kIs);
  t->lhs = std::move(l);
  t->rhs = std::move(r);
  return t;
}

TestPtr TestExpr::Not(TestPtr inner) {
  auto t = MakeTest(TestKind::kNot);
  t->a = std::move(inner);
  return t;
}

TestPtr TestExpr::And(TestPtr l, TestPtr r) {
  auto t = MakeTest(TestKind::kAnd);
  t->a = std::move(l);
  t->b = std::move(r);
  return t;
}

TestPtr TestExpr::Or(TestPtr l, TestPtr r) {
  auto t = MakeTest(TestKind::kOr);
  t->a = std::move(l);
  t->b = std::move(r);
  return t;
}

TestPtr TestExpr::Clone() const {
  auto t = std::make_unique<TestExpr>();
  t->kind = kind;
  t->lhs = lhs;
  t->rhs = rhs;
  if (path) t->path = path->Clone();
  if (a) t->a = a->Clone();
  if (b) t->b = b->Clone();
  return t;
}

bool TestExpr::Equals(const TestExpr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case TestKind::kPath:
      return path->Equals(*other.path);
    case TestKind::kIs:
      return lhs == other.lhs && rhs == other.rhs;
    case TestKind::kNot:
      return a->Equals(*other.a);
    case TestKind::kAnd:
    case TestKind::kOr:
      return a->Equals(*other.a) && b->Equals(*other.b);
  }
  return false;
}

std::size_t TestExpr::Size() const {
  std::size_t size = 1;
  if (path) size += path->Size();
  if (a) size += a->Size();
  if (b) size += b->Size();
  return size;
}

std::string TestExpr::ToString() const {
  std::string out;
  PrintTest(*this, &out);
  return out;
}

std::set<std::string> FreeVars(const PathExpr& p) {
  std::set<std::string> out;
  CollectPathVars(p, {}, &out);
  return out;
}

std::set<std::string> FreeVars(const TestExpr& t) {
  std::set<std::string> out;
  CollectTestVars(t, {}, &out);
  return out;
}

PathPtr MakeNodesExpr() {
  return PathExpr::Compose(
      PathExpr::Union(PathExpr::Step(Axis::kAncestor, "*"), PathExpr::Dot()),
      PathExpr::Union(PathExpr::Step(Axis::kDescendant, "*"),
                      PathExpr::Dot()));
}

PathPtr AnchorAtRoot(std::string_view var, PathPtr p) {
  TestPtr anchor = TestExpr::And(
      TestExpr::Is(NodeRef::Dot(), NodeRef::Var(var)),
      TestExpr::Not(
          TestExpr::Path(PathExpr::Step(Axis::kParent, "*"))));
  return PathExpr::Compose(
      PathExpr::Filter(PathExpr::Dot(), std::move(anchor)), std::move(p));
}

}  // namespace xpv::xpath
