#include "xpath/simplify.h"

namespace xpv::xpath {

namespace {

bool IsDot(const PathExpr& p) { return p.kind == PathKind::kDot; }

bool IsTriviallyTrueTest(const TestExpr& t) {
  // [. is .] denotes all nodes (Fig. 2).
  return t.kind == TestKind::kIs && t.lhs.is_dot && t.rhs.is_dot;
}

}  // namespace

TestPtr Simplify(TestPtr t) {
  switch (t->kind) {
    case TestKind::kPath:
      t->path = Simplify(std::move(t->path));
      return t;
    case TestKind::kIs:
      return t;
    case TestKind::kNot: {
      t->a = Simplify(std::move(t->a));
      // not not T => T.
      if (t->a->kind == TestKind::kNot) return std::move(t->a->a);
      return t;
    }
    case TestKind::kAnd:
    case TestKind::kOr: {
      t->a = Simplify(std::move(t->a));
      t->b = Simplify(std::move(t->b));
      // T and T => T;  T or T => T (idempotence).
      if (t->a->Equals(*t->b)) return std::move(t->a);
      // [. is .] is neutral for and, absorbing for or.
      if (t->kind == TestKind::kAnd) {
        if (IsTriviallyTrueTest(*t->a)) return std::move(t->b);
        if (IsTriviallyTrueTest(*t->b)) return std::move(t->a);
      } else {
        if (IsTriviallyTrueTest(*t->a)) return std::move(t->a);
        if (IsTriviallyTrueTest(*t->b)) return std::move(t->b);
      }
      return t;
    }
  }
  return t;
}

PathPtr Simplify(PathPtr p) {
  switch (p->kind) {
    case PathKind::kStep:
    case PathKind::kDot:
    case PathKind::kVar:
      return p;
    case PathKind::kCompose: {
      p->left = Simplify(std::move(p->left));
      p->right = Simplify(std::move(p->right));
      // P/. => P and ./P => P ([[.]] is the identity relation).
      if (IsDot(*p->right)) return std::move(p->left);
      if (IsDot(*p->left)) return std::move(p->right);
      return p;
    }
    case PathKind::kUnion:
    case PathKind::kIntersect: {
      p->left = Simplify(std::move(p->left));
      p->right = Simplify(std::move(p->right));
      // Idempotence.
      if (p->left->Equals(*p->right)) return std::move(p->left);
      return p;
    }
    case PathKind::kExcept: {
      p->left = Simplify(std::move(p->left));
      p->right = Simplify(std::move(p->right));
      return p;
    }
    case PathKind::kFilter: {
      p->left = Simplify(std::move(p->left));
      p->test = Simplify(std::move(p->test));
      // P[. is .] => P (the test passes at every node).
      if (IsTriviallyTrueTest(*p->test)) return std::move(p->left);
      return p;
    }
    case PathKind::kFor: {
      p->left = Simplify(std::move(p->left));
      p->right = Simplify(std::move(p->right));
      return p;
    }
  }
  return p;
}

}  // namespace xpv::xpath
