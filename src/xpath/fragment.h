// Syntactic fragment checkers for the languages distinguished by the paper.
//
//   * N($x)      -- no variables, no for-loops, no node comparisons
//                   (Section 4). Core XPath 2.0 restricted to N($x) equals
//                   PPLbin modulo the Fig. 4 translation (Proposition 4).
//   * PPL        -- Definition 1: the polynomial-time path language. The
//                   checker reports the first violated condition using the
//                   paper's condition names (N(for), NV(intersect),
//                   NV(except), NV(not), NVS(/), NVS([]), NVS(and)).
//   * PPLbin     -- the exact grammar of Fig. 3 (plus `.`/self steps):
//                   steps, composition, union, unary `except`, filters
//                   whose test is itself a PPLbin path.
#ifndef XPV_XPATH_FRAGMENT_H_
#define XPV_XPATH_FRAGMENT_H_

#include "common/status.h"
#include "xpath/ast.h"

namespace xpv::xpath {

/// Checks the N($x) condition: no variables, no for-loops, no node
/// comparison tests anywhere in P.
Status CheckNoVariables(const PathExpr& p);
Status CheckNoVariables(const TestExpr& t);

/// Checks membership in PPL (Definition 1). On violation, the error message
/// names the failed condition, e.g. "NVS(/): variables {x} shared ...".
Status CheckPpl(const PathExpr& p);

/// Checks the stricter Fig. 3 PPLbin surface grammar: Axis::NameTest,
/// P/P, P union P, unary `except P` (written `P1 except P2` is NOT in this
/// grammar; see ppl::FromXPath for the Prop. 4 translation), and [P]
/// filters with path tests. `.` is accepted as sugar for self::*.
Status CheckPplBinSyntax(const PathExpr& p);

/// True iff P contains a for-loop.
bool ContainsFor(const PathExpr& p);

}  // namespace xpv::xpath

#endif  // XPV_XPATH_FRAGMENT_H_
