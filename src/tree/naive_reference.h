// Walk-based reference implementations of the structural predicates and
// axis-relation builders, exactly as the pre-indexed tree core computed
// them (parent/sibling chain walks, per-node scans).
//
// These are NOT used on any serving path: they exist as oracles for the
// property tests (the indexed O(1) predicates and interval-built axis
// matrices in tree.h / axes.h must agree with them bit for bit) and as the
// baseline side of the axis-materialization benchmark.
#ifndef XPV_TREE_NAIVE_REFERENCE_H_
#define XPV_TREE_NAIVE_REFERENCE_H_

#include <string_view>
#include <vector>

#include "common/bit_matrix.h"
#include "tree/axes.h"
#include "tree/tree.h"

namespace xpv::naive {

/// Depth by walking the parent chain.
std::size_t Depth(const Tree& t, NodeId v);

/// ch*: walks the parent chain from v looking for u.
bool IsAncestorOrSelf(const Tree& t, NodeId u, NodeId v);

/// ns*: walks the next-sibling chain from u looking for v.
bool IsFollowingSiblingOrSelf(const Tree& t, NodeId u, NodeId v);

/// LCA by equalizing depths and walking both parent chains in lockstep.
NodeId LeastCommonAncestor(const Tree& t, NodeId u, NodeId v);

/// Post-order number by explicit iterative traversal.
std::vector<NodeId> PostOrder(const Tree& t);

/// The seed's walk-based AxisMatrix builder (per-child/per-sibling row
/// unions with temporary row copies; transposes for the reverse axes).
BitMatrix AxisMatrix(const Tree& t, Axis axis);

/// The seed's LabelSet builder (full per-node label scan).
BitVector LabelSet(const Tree& t, std::string_view label);

}  // namespace xpv::naive

#endif  // XPV_TREE_NAIVE_REFERENCE_H_
