#include "tree/tree_io.h"

#include <bit>
#include <cstring>

namespace xpv {

namespace {

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("tree payload corrupt: ") + what);
}

}  // namespace

// ---------------------------------------------------------------- writer

void ByteWriter::U32(std::uint32_t v) {
  char buf[4];
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(buf, &v, 4);
  } else {
    buf[0] = static_cast<char>(v);
    buf[1] = static_cast<char>(v >> 8);
    buf[2] = static_cast<char>(v >> 16);
    buf[3] = static_cast<char>(v >> 24);
  }
  out_->append(buf, 4);
}

void ByteWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v));
  U32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_->append(s);
}

void ByteWriter::U32Array(const std::vector<std::uint32_t>& values) {
  if (values.empty()) return;  // .data() may be null; append(null, 0) is UB
  if constexpr (std::endian::native == std::endian::little) {
    out_->append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(std::uint32_t));
  } else {
    for (std::uint32_t v : values) U32(v);
  }
}

// ---------------------------------------------------------------- reader

Result<std::uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Corrupt("unexpected end of payload");
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::U32() {
  if (remaining() < 4) return Corrupt("unexpected end of payload");
  std::uint32_t v;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, data_ + pos_, 4);
  } else {
    v = std::uint32_t{data_[pos_]} | std::uint32_t{data_[pos_ + 1]} << 8 |
        std::uint32_t{data_[pos_ + 2]} << 16 |
        std::uint32_t{data_[pos_ + 3]} << 24;
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::U64() {
  XPV_ASSIGN_OR_RETURN(const std::uint32_t lo, U32());
  XPV_ASSIGN_OR_RETURN(const std::uint32_t hi, U32());
  return std::uint64_t{lo} | (std::uint64_t{hi} << 32);
}

Result<std::string> ByteReader::Str(std::size_t max_len) {
  XPV_ASSIGN_OR_RETURN(const std::uint32_t len, U32());
  if (len > max_len) return Corrupt("string length out of range");
  if (remaining() < len) return Corrupt("unexpected end of payload");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status ByteReader::U32Array(std::size_t count,
                            std::vector<std::uint32_t>& out) {
  if (count > remaining() / sizeof(std::uint32_t)) {
    return Corrupt("array length out of range");
  }
  out.clear();
  if (count == 0) return Status::OK();  // memcpy(null, ..., 0) is UB
  out.resize(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_ + pos_, count * sizeof(std::uint32_t));
    pos_ += count * sizeof(std::uint32_t);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      XPV_ASSIGN_OR_RETURN(out[i], U32());
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------------ tree

void TreeIo::EncodeTree(const Tree& tree, ByteWriter& w) {
  const std::size_t n = tree.parent_.size();
  w.U64(n);
  w.U32(static_cast<std::uint32_t>(tree.labels_.size()));
  for (const std::string& label : tree.labels_) w.Str(label);
  w.U32Array(tree.label_);
  w.U32Array(tree.parent_);
  w.U32Array(tree.first_child_);
  w.U32Array(tree.last_child_);
  w.U32Array(tree.next_sibling_);
  w.U32Array(tree.prev_sibling_);
  w.U32Array(tree.depth_);
  w.U32Array(tree.subtree_size_);
  w.U32Array(tree.post_);
  w.U32(static_cast<std::uint32_t>(tree.up_.size()));
  for (const std::vector<NodeId>& level : tree.up_) w.U32Array(level);
  for (const std::vector<NodeId>& postings : tree.label_postings_) {
    w.U32(static_cast<std::uint32_t>(postings.size()));
    w.U32Array(postings);
  }
  w.U64(tree.stats_.node_count);
  w.U64(tree.stats_.max_depth);
  w.U64(tree.stats_.max_fanout);
  w.U64(tree.stats_.alphabet_size);
  w.U64(tree.stats_.max_label_posting);
  w.U64(tree.stats_.min_label_posting);
}

Result<Tree> TreeIo::DecodeTree(ByteReader& r) {
  Tree tree;
  XPV_ASSIGN_OR_RETURN(const std::uint64_t n64, r.U64());
  if (n64 > kMaxNodes) return Corrupt("node count out of range");
  // Each node contributes at least the 9 mandatory u32 arrays below, so a
  // claimed count beyond the remaining payload is corrupt -- reject it
  // BEFORE the alphabet reserve, or a 16-byte input claiming 2^31 nodes
  // provokes a multi-gigabyte allocation (found by fuzz_tree_decode).
  if (n64 > r.remaining()) return Corrupt("node count exceeds payload");
  const std::size_t n = static_cast<std::size_t>(n64);
  XPV_ASSIGN_OR_RETURN(const std::uint32_t alphabet, r.U32());
  // Every label occurs at least once, so the alphabet never exceeds n.
  if (alphabet > n) return Corrupt("alphabet larger than node count");
  tree.labels_.reserve(alphabet);
  for (std::uint32_t i = 0; i < alphabet; ++i) {
    XPV_ASSIGN_OR_RETURN(std::string label, r.Str());
    tree.labels_.push_back(std::move(label));
  }
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.label_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.parent_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.first_child_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.last_child_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.next_sibling_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.prev_sibling_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.depth_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.subtree_size_));
  XPV_RETURN_IF_ERROR(r.U32Array(n, tree.post_));
  XPV_ASSIGN_OR_RETURN(const std::uint32_t levels, r.U32());
  if (levels > 64) return Corrupt("lifting-table level count out of range");
  tree.up_.resize(levels);
  for (std::uint32_t k = 0; k < levels; ++k) {
    XPV_RETURN_IF_ERROR(r.U32Array(n, tree.up_[k]));
  }
  tree.label_postings_.resize(alphabet);
  std::uint64_t postings_total = 0;
  for (std::uint32_t i = 0; i < alphabet; ++i) {
    XPV_ASSIGN_OR_RETURN(const std::uint32_t count, r.U32());
    postings_total += count;
    if (postings_total > n) return Corrupt("posting lists exceed node count");
    XPV_RETURN_IF_ERROR(r.U32Array(count, tree.label_postings_[i]));
  }
  if (postings_total != n) return Corrupt("posting lists do not cover tree");
  XPV_ASSIGN_OR_RETURN(tree.stats_.node_count, r.U64());
  XPV_ASSIGN_OR_RETURN(tree.stats_.max_depth, r.U64());
  XPV_ASSIGN_OR_RETURN(tree.stats_.max_fanout, r.U64());
  XPV_ASSIGN_OR_RETURN(tree.stats_.alphabet_size, r.U64());
  XPV_ASSIGN_OR_RETURN(tree.stats_.max_label_posting, r.U64());
  XPV_ASSIGN_OR_RETURN(tree.stats_.min_label_posting, r.U64());

  // Structural validation: every decoded id must be in range before any
  // consumer indexes an array with it, and the pre-order invariants the
  // O(1) predicates rely on must hold. O(n) total -- far below a rebuild.
  if (tree.stats_.node_count != n) return Corrupt("stats disagree with arrays");
  const NodeId nn = static_cast<NodeId>(n);
  auto in_range = [nn](NodeId v) { return v < nn || v == kNoNode; };
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.label_[v] >= alphabet) return Corrupt("label id out of range");
    const NodeId p = tree.parent_[v];
    // Pre-order numbering: a parent strictly precedes its children, and
    // only the root (id 0) has no parent.
    if (v == 0 ? p != kNoNode : p >= v) return Corrupt("parent link order");
    if (!in_range(tree.first_child_[v]) || !in_range(tree.last_child_[v]) ||
        !in_range(tree.next_sibling_[v]) || !in_range(tree.prev_sibling_[v])) {
      return Corrupt("sibling/child link out of range");
    }
    const std::uint32_t size = tree.subtree_size_[v];
    if (size == 0 || v + size > n) return Corrupt("subtree size out of range");
    if (tree.depth_[v] >= n || tree.post_[v] >= nn) {
      return Corrupt("depth/post out of range");
    }
  }
  for (const std::vector<NodeId>& level : tree.up_) {
    for (NodeId v : level) {
      if (!in_range(v)) return Corrupt("lifting-table entry out of range");
    }
  }
  for (const std::vector<NodeId>& postings : tree.label_postings_) {
    NodeId prev = kNoNode;
    for (NodeId v : postings) {
      if (v >= nn || (prev != kNoNode && v <= prev)) {
        return Corrupt("posting list not in document order");
      }
      prev = v;
    }
  }
  // The label intern map is derived state, rebuilt directly from the
  // alphabet (not an index rebuild: no tree traversal happens here).
  tree.label_ids_.reserve(alphabet);
  for (std::uint32_t i = 0; i < alphabet; ++i) {
    auto [it, inserted] = tree.label_ids_.emplace(tree.labels_[i], i);
    (void)it;
    if (!inserted) return Corrupt("duplicate label in alphabet");
  }
  return tree;
}

// -------------------------------------------------------------- interval

void TreeIo::EncodeIntervalMatrix(const IntervalMatrix& m, ByteWriter& w) {
  w.U64(m.size());
  w.U64(m.num_runs());
  std::vector<std::uint32_t> flat;
  flat.reserve(m.size() + 1 + 2 * m.num_runs());
  // CSR offsets, then runs flattened as begin,end pairs.
  std::uint32_t offset = 0;
  flat.push_back(0);
  for (std::size_t row = 0; row < m.size(); ++row) {
    auto [begin, end] = m.RunsOf(row);
    offset += static_cast<std::uint32_t>(end - begin);
    flat.push_back(offset);
  }
  for (std::size_t row = 0; row < m.size(); ++row) {
    auto [begin, end] = m.RunsOf(row);
    for (const IntervalRun* run = begin; run != end; ++run) {
      flat.push_back(run->begin);
      flat.push_back(run->end);
    }
  }
  w.U32Array(flat);
}

Result<IntervalMatrix> TreeIo::DecodeIntervalMatrix(ByteReader& r) {
  XPV_ASSIGN_OR_RETURN(const std::uint64_t n64, r.U64());
  XPV_ASSIGN_OR_RETURN(const std::uint64_t runs64, r.U64());
  if (n64 > kMaxNodes || runs64 > kMaxNodes) {
    return Corrupt("interval matrix dimensions out of range");
  }
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t num_runs = static_cast<std::size_t>(runs64);
  std::vector<std::uint32_t> offsets;
  XPV_RETURN_IF_ERROR(r.U32Array(n + 1, offsets));
  std::vector<std::uint32_t> flat_runs;
  XPV_RETURN_IF_ERROR(r.U32Array(2 * num_runs, flat_runs));
  if (offsets[0] != 0 || offsets[n] != num_runs) {
    return Corrupt("interval CSR offsets do not frame the run list");
  }
  for (std::size_t row = 0; row < n; ++row) {
    if (offsets[row] > offsets[row + 1]) {
      return Corrupt("interval CSR offsets decrease");
    }
  }
  std::vector<IntervalRun> runs;
  runs.reserve(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i) {
    runs.push_back(IntervalRun{flat_runs[2 * i], flat_runs[2 * i + 1]});
  }
  // Runs must be sorted, disjoint, non-adjacent (maximal) and in-bounds
  // within each row -- consumers' run-native kernels assume canonicality.
  for (std::size_t row = 0; row < n; ++row) {
    std::uint32_t prev_end = 0;
    bool first = true;
    for (std::uint32_t i = offsets[row]; i < offsets[row + 1]; ++i) {
      const IntervalRun& run = runs[i];
      if (run.begin >= run.end || run.end > n ||
          (!first && run.begin <= prev_end)) {
        return Corrupt("interval run list not canonical");
      }
      prev_end = run.end;
      first = false;
    }
  }
  return IntervalMatrix(n, std::move(offsets), std::move(runs));
}

}  // namespace xpv
