// Unranked sibling-ordered labeled trees -- the data model of the paper
// (Section 2): "an unranked tree t in T_Sigma is a pair a(t1 ... tn)
// consisting of a label a in Sigma and a possibly empty sequence of trees".
//
// Nodes are stored in a flat arena indexed by NodeId; a tree built through
// TreeBuilder (and hence by the parsers and generators) always numbers its
// nodes in document order (pre-order), with the root at id 0. Several axis
// algorithms in axes.h rely on this numbering.
//
// A finished tree is immutable and index-rich: TreeBuilder::Finish()
// precomputes per-node depth, subtree size (hence the pre-order interval
// [v, v + SubtreeSize(v)) covering v's subtree), post-order numbers, a
// binary-lifting ancestor table, and per-label posting lists. These turn
// the structural predicates into array arithmetic:
//
//   IsAncestorOrSelf(u, v)         <=>  v in [u, u + SubtreeSize(u))   O(1)
//   IsFollowingSiblingOrSelf(u,v)  <=>  u == v, or same parent & v > u O(1)
//   Depth(v)                       precomputed                         O(1)
//   LeastCommonAncestor(u, v)      binary lifting + interval tests  O(log n)
//
// and let axes.h build axis relations by interval sweeps and label sets
// from posting lists instead of per-node walks.
#ifndef XPV_TREE_TREE_H_
#define XPV_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace xpv {

/// Index of a node within a Tree; document (pre-)order for built trees.
using NodeId = std::uint32_t;
/// Interned label identifier.
using LabelId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr LabelId kNoLabel = static_cast<LabelId>(-1);

/// Summary statistics of a built tree, precomputed by TreeBuilder::
/// Finish() alongside the other document-order indexes. These are the
/// inputs of the query planner's cost model (engine/planner.h): node
/// count bounds the matrix-engine work, posting-list sizes bound the
/// domain of label-selective queries, depth and fanout bound how far a
/// single label can "spread" along vertical / horizontal axes.
struct TreeStats {
  std::size_t node_count = 0;
  /// Depth of the deepest node (root = 0).
  std::size_t max_depth = 0;
  /// Largest number of children of any node.
  std::size_t max_fanout = 0;
  std::size_t alphabet_size = 0;
  /// Size of the largest / smallest per-label posting list. Every label
  /// in the alphabet occurs at least once, so min_label_posting >= 1 on
  /// nonempty trees.
  std::size_t max_label_posting = 0;
  std::size_t min_label_posting = 0;
};

/// An unranked sibling-ordered tree over an interned label alphabet.
class Tree {
 public:
  Tree() = default;

  std::size_t size() const { return parent_.size(); }
  bool empty() const { return parent_.empty(); }
  NodeId root() const { return 0; }

  NodeId parent(NodeId v) const { return parent_[v]; }
  NodeId first_child(NodeId v) const { return first_child_[v]; }
  NodeId last_child(NodeId v) const { return last_child_[v]; }
  NodeId next_sibling(NodeId v) const { return next_sibling_[v]; }
  NodeId prev_sibling(NodeId v) const { return prev_sibling_[v]; }

  LabelId label(NodeId v) const { return label_[v]; }
  const std::string& label_name(NodeId v) const { return labels_[label_[v]]; }

  bool IsLeaf(NodeId v) const { return first_child_[v] == kNoNode; }
  bool IsRoot(NodeId v) const { return parent_[v] == kNoNode; }

  /// Number of children of v.
  std::size_t NumChildren(NodeId v) const;
  /// Children of v in sibling order.
  std::vector<NodeId> Children(NodeId v) const;

  // ------------------------------------------------------------------
  // Precomputed document-order indexes (built once by Finish()).

  /// Pre-order (document-order) number of v. The identity for built trees;
  /// kept explicit so callers can state interval arguments in terms of it.
  NodeId PreOrder(NodeId v) const { return v; }
  /// Post-order number of v.
  NodeId PostOrder(NodeId v) const { return post_[v]; }
  /// Number of nodes in the subtree rooted at v (including v). The subtree
  /// occupies exactly the pre-order interval [v, v + SubtreeSize(v)).
  std::size_t SubtreeSize(NodeId v) const { return subtree_size_[v]; }
  /// Depth of v (root has depth 0). O(1).
  std::size_t Depth(NodeId v) const { return depth_[v]; }
  /// All nodes labeled `id`, in document order (empty for kNoLabel /
  /// out-of-alphabet ids).
  const std::vector<NodeId>& LabelPostings(LabelId id) const;
  /// Number of nodes labeled `name` (0 when absent from the alphabet).
  std::size_t LabelFrequency(std::string_view name) const;
  /// Precomputed summary statistics (the planner's cost-model inputs).
  const TreeStats& Stats() const { return stats_; }

  /// True iff u is an ancestor of v or u == v (the paper's ch*). O(1) by
  /// the pre-order interval containment test.
  bool IsAncestorOrSelf(NodeId u, NodeId v) const {
    return v >= u && v < u + static_cast<NodeId>(subtree_size_[u]);
  }
  /// True iff v is a following sibling of u or u == v (the paper's ns*).
  /// O(1): later siblings always have larger pre-order ids.
  bool IsFollowingSiblingOrSelf(NodeId u, NodeId v) const {
    return u == v || (v > u && parent_[u] == parent_[v]);
  }
  /// Least common ancestor of u and v; O(log n) via binary lifting.
  NodeId LeastCommonAncestor(NodeId u, NodeId v) const;
  /// Least common ancestor of a nonempty node set.
  NodeId LeastCommonAncestor(const std::vector<NodeId>& nodes) const;

  /// Number of distinct labels interned in this tree's alphabet.
  std::size_t alphabet_size() const { return labels_.size(); }
  const std::string& label_string(LabelId id) const { return labels_[id]; }
  /// Id of `name` in the alphabet, or kNoLabel when absent.
  LabelId FindLabel(std::string_view name) const;

  /// Copy of the subtree rooted at u, as a fresh tree (Section 8's t|u).
  Tree Subtree(NodeId u) const;

  /// Structural + label equality.
  bool operator==(const Tree& other) const;

  /// Approximate heap bytes held by this tree: node arrays, document-order
  /// indexes (including the binary-lifting table and posting lists), label
  /// strings, and the intern map's node overhead. Drives the
  /// DocumentStore's resident-document accounting for spill-to-disk: a
  /// spilled document's bytes leave this gauge because the Tree itself is
  /// released, so cold on-disk (or mmap'd) bytes are never counted as hot.
  std::size_t resident_bytes() const;

  // ------------------------------------------------------------------
  // Process-wide construction counters (monotone, relaxed atomics).
  // The persistence layer's contract is that reloading a snapshot does
  // NOT re-parse or re-index; these counters are how tests and the
  // restart harness observe that. They count calls, not nodes.

  /// Number of BuildIndexes() runs (every TreeBuilder::Finish) so far in
  /// this process.
  static std::uint64_t GlobalIndexBuilds();
  /// Number of ParseTerm() + ParseXml() calls so far in this process.
  static std::uint64_t GlobalParses();

  /// Compact term syntax: a(b,c(d)). Round-trips through ParseTerm().
  std::string ToTerm() const;
  /// XML serialization: <a><b/><c><d/></c></a>.
  std::string ToXml() const;

  /// Parses the compact term syntax: `a(b, c(d))`. Whitespace and the commas
  /// between siblings are optional: `a(b c(d))` is accepted too. Labels are
  /// XML-style names.
  static Result<Tree> ParseTerm(std::string_view text);
  /// Parses an XML subset: elements and whitespace only -- matching the
  /// paper's data model, which abstracts from attributes and data values.
  /// Attributes and text content are rejected with an explanatory error.
  static Result<Tree> ParseXml(std::string_view text);

 private:
  friend class TreeBuilder;
  /// Serialization (tree/tree_io.h) reads and reconstitutes the private
  /// arrays directly so a decoded tree never re-runs BuildIndexes().
  friend class TreeIo;

  /// Computes the document-order indexes (depth, subtree size, post-order,
  /// binary-lifting table, posting lists). Called once from Finish().
  void BuildIndexes();

  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
  std::vector<LabelId> label_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId> label_ids_;

  // Document-order indexes, immutable after BuildIndexes().
  std::vector<NodeId> post_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> subtree_size_;
  /// up_[k][v] = 2^k-th proper ancestor of v, or kNoNode past the root.
  std::vector<std::vector<NodeId>> up_;
  /// label_postings_[label] = nodes with that label, in document order.
  std::vector<std::vector<NodeId>> label_postings_;
  TreeStats stats_;
};

/// Incremental pre-order tree construction:
///
///   TreeBuilder b;
///   b.Open("a"); b.Open("b"); b.Close(); b.Close();
///   Tree t = std::move(b).Finish();
///
/// Nodes receive ids in the order they are opened, so ids are document order.
class TreeBuilder {
 public:
  TreeBuilder() = default;

  /// Starts a new node labeled `label` as the next child of the currently
  /// open node (or as root if none is open). Returns its id.
  NodeId Open(std::string_view label);
  /// Closes the most recently opened unclosed node.
  void Close();
  /// Open + Close in one step.
  NodeId Leaf(std::string_view label) {
    NodeId id = Open(label);
    Close();
    return id;
  }

  /// Number of currently open (unclosed) nodes.
  std::size_t open_depth() const { return stack_.size(); }

  /// Finalizes the tree. All opened nodes must be closed and exactly one
  /// root must have been created.
  Result<Tree> Finish() &&;

 private:
  LabelId Intern(std::string_view label);

  Tree tree_;
  std::vector<NodeId> stack_;
  bool saw_root_ = false;
};

}  // namespace xpv

#endif  // XPV_TREE_TREE_H_
