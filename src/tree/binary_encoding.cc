#include "tree/binary_encoding.h"

#include <cassert>
#include <functional>

namespace xpv {

NodeId BinaryTree::AddNode(std::string_view label, NodeId child1,
                           NodeId child2) {
  NodeId id = static_cast<NodeId>(label_.size());
  label_.emplace_back(label);
  child1_.push_back(child1);
  child2_.push_back(child2);
  parent_.push_back(kNoNode);
  if (child1 != kNoNode) {
    assert(child1 < id && parent_[child1] == kNoNode);
    parent_[child1] = id;
  }
  if (child2 != kNoNode) {
    assert(child2 < id && parent_[child2] == kNoNode);
    parent_[child2] = id;
  }
  return id;
}

NodeId BinaryTree::root() const {
  if (root_ != kNoNode) return root_;
  for (NodeId v = 0; v < size(); ++v) {
    if (parent_[v] == kNoNode) return v;
  }
  return kNoNode;
}

bool BinaryTree::IsAncestorOrSelf(NodeId u, NodeId v) const {
  for (NodeId w = v; w != kNoNode; w = parent_[w]) {
    if (w == u) return true;
  }
  return false;
}

NodeId BinaryTree::LeastCommonAncestor(NodeId u, NodeId v) const {
  std::size_t du = Depth(u);
  std::size_t dv = Depth(v);
  while (du > dv) {
    u = parent_[u];
    --du;
  }
  while (dv > du) {
    v = parent_[v];
    --dv;
  }
  while (u != v) {
    u = parent_[u];
    v = parent_[v];
  }
  return u;
}

std::size_t BinaryTree::Depth(NodeId v) const {
  std::size_t depth = 0;
  for (NodeId p = parent_[v]; p != kNoNode; p = parent_[p]) ++depth;
  return depth;
}

BinaryTree BinaryTree::Subtree(NodeId u) const {
  BinaryTree out;
  std::function<NodeId(NodeId)> copy = [&](NodeId v) -> NodeId {
    if (v == kNoNode) return kNoNode;
    NodeId c1 = copy(child1_[v]);
    NodeId c2 = copy(child2_[v]);
    return out.AddNode(label_[v], c1, c2);
  };
  NodeId new_root = copy(u);
  out.set_root(new_root);
  return out;
}

std::string BinaryTree::ToTerm() const {
  std::string out;
  std::function<void(NodeId)> emit = [&](NodeId v) {
    if (v == kNoNode) {
      out += '-';
      return;
    }
    out += label_[v];
    if (child1_[v] != kNoNode || child2_[v] != kNoNode) {
      out += '(';
      emit(child1_[v]);
      out += ',';
      emit(child2_[v]);
      out += ')';
    }
  };
  if (root_ != kNoNode) emit(root_);
  return out;
}

BinaryTree EncodeFcns(const Tree& t, std::vector<NodeId>* unranked_to_binary) {
  BinaryTree out;
  std::vector<NodeId> mapping(t.size(), kNoNode);
  // Post-order over a node's (first child, next sibling) pair: children of
  // a BinaryTree node must exist before the node itself.
  std::function<NodeId(NodeId)> encode = [&](NodeId u) -> NodeId {
    if (u == kNoNode) return kNoNode;
    NodeId c1 = encode(t.first_child(u));
    NodeId c2 = encode(t.next_sibling(u));
    NodeId b = out.AddNode(t.label_name(u), c1, c2);
    mapping[u] = b;
    return b;
  };
  NodeId broot = encode(t.empty() ? kNoNode : t.root());
  out.set_root(broot);
  if (unranked_to_binary != nullptr) *unranked_to_binary = std::move(mapping);
  return out;
}

Result<Tree> DecodeFcns(const BinaryTree& b) {
  if (b.size() == 0) {
    return Status::InvalidArgument("cannot decode an empty binary tree");
  }
  if (b.child2(b.root()) != kNoNode) {
    return Status::InvalidArgument(
        "binary root has a next-sibling (child2); not an fcns encoding");
  }
  TreeBuilder builder;
  // child1 = first child, child2 = next sibling.
  std::function<void(NodeId)> decode = [&](NodeId v) {
    builder.Open(b.label(v));
    if (b.child1(v) != kNoNode) {
      for (NodeId c = b.child1(v); c != kNoNode; c = b.child2(c)) {
        decode(c);
      }
    }
    builder.Close();
  };
  decode(b.root());
  return std::move(builder).Finish();
}

}  // namespace xpv
