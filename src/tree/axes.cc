#include "tree/axes.h"

#include <cassert>

namespace xpv {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kFollowingSibling:
      return "following_sibling";
    case Axis::kPrecedingSibling:
      return "preceding_sibling";
  }
  return "?";
}

Result<Axis> ParseAxis(std::string_view name) {
  if (name == "self") return Axis::kSelf;
  if (name == "child") return Axis::kChild;
  if (name == "parent") return Axis::kParent;
  if (name == "descendant") return Axis::kDescendant;
  if (name == "ancestor") return Axis::kAncestor;
  if (name == "following_sibling" || name == "following-sibling") {
    return Axis::kFollowingSibling;
  }
  if (name == "preceding_sibling" || name == "preceding-sibling") {
    return Axis::kPrecedingSibling;
  }
  return Status::InvalidArgument("unknown axis '" + std::string(name) + "'");
}

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
  }
  return axis;
}

bool AxisHolds(const Tree& t, Axis axis, NodeId u, NodeId v) {
  switch (axis) {
    case Axis::kSelf:
      return u == v;
    case Axis::kChild:
      return t.parent(v) == u;
    case Axis::kParent:
      return t.parent(u) == v;
    case Axis::kDescendant:
      return u != v && t.IsAncestorOrSelf(u, v);
    case Axis::kAncestor:
      return u != v && t.IsAncestorOrSelf(v, u);
    case Axis::kFollowingSibling:
      return u != v && t.IsFollowingSiblingOrSelf(u, v);
    case Axis::kPrecedingSibling:
      return u != v && t.IsFollowingSiblingOrSelf(v, u);
  }
  return false;
}

BitMatrix AxisMatrix(const Tree& t, Axis axis) {
  // All builders are interval sweeps over the pre-order numbering: a
  // subtree is the contiguous id range [v, v + SubtreeSize(v)), so
  // descendant rows are single word-filled ranges and the sibling/ancestor
  // relations propagate by in-place row ORs -- no per-node walks and no
  // temporary row copies (the walk-based originals survive as
  // naive::AxisMatrix, the test oracle).
  const std::size_t n = t.size();
  BitMatrix m(n);
  switch (axis) {
    case Axis::kSelf:
      return BitMatrix::Identity(n);
    case Axis::kChild:
      for (NodeId v = 1; v < n; ++v) m.Set(t.parent(v), v);
      return m;
    case Axis::kParent:
      for (NodeId v = 1; v < n; ++v) m.Set(v, t.parent(v));
      return m;
    case Axis::kDescendant:
      // Row v = the proper subtree interval (v, v + SubtreeSize(v)).
      for (NodeId v = 0; v < n; ++v) {
        m.SetRowRange(v, v + 1, v + t.SubtreeSize(v));
      }
      return m;
    case Axis::kAncestor:
      // Row v = row of its parent plus the parent itself; parents precede
      // children in pre-order, so one forward sweep of in-place row ORs.
      for (NodeId v = 1; v < n; ++v) {
        m.OrRowIntoRow(v, t.parent(v));
        m.Set(v, t.parent(v));
      }
      return m;
    case Axis::kFollowingSibling:
      // Row v = row of its next sibling plus that sibling; next siblings
      // have larger ids, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        NodeId ns = t.next_sibling(v);
        if (ns != kNoNode) {
          m.OrRowIntoRow(v, ns);
          m.Set(v, ns);
        }
      }
      return m;
    case Axis::kPrecedingSibling:
      // Mirror of following_sibling: previous siblings have smaller ids.
      for (NodeId v = 1; v < n; ++v) {
        NodeId ps = t.prev_sibling(v);
        if (ps != kNoNode) {
          m.OrRowIntoRow(v, ps);
          m.Set(v, ps);
        }
      }
      return m;
  }
  return m;
}

BitVector AxisImage(const Tree& t, Axis axis, const BitVector& from) {
  const std::size_t n = t.size();
  assert(from.size() == n);
  BitVector out(n);
  switch (axis) {
    case Axis::kSelf:
      out = from;
      return out;
    case Axis::kChild:
      for (NodeId v = 0; v < n; ++v) {
        NodeId p = t.parent(v);
        if (p != kNoNode && from.Get(p)) out.Set(v);
      }
      return out;
    case Axis::kParent:
      from.ForEachSet([&](std::size_t v) {
        NodeId p = t.parent(static_cast<NodeId>(v));
        if (p != kNoNode) out.Set(p);
      });
      return out;
    case Axis::kDescendant:
      // out[v] = from[parent] or out[parent]; parents precede children in
      // pre-order, so a single forward sweep suffices.
      for (NodeId v = 1; v < n; ++v) {
        NodeId p = t.parent(v);
        if (from.Get(p) || out.Get(p)) out.Set(v);
      }
      return out;
    case Axis::kAncestor:
      // out[p] = from[child] or out[child] for any child; children follow
      // parents in pre-order, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 1;) {
        NodeId p = t.parent(v);
        if (from.Get(v) || out.Get(v)) out.Set(p);
      }
      return out;
    case Axis::kFollowingSibling:
      // out[v] = from[prev_sibling] or out[prev_sibling]; previous siblings
      // have smaller pre-order ids.
      for (NodeId v = 1; v < n; ++v) {
        NodeId ps = t.prev_sibling(v);
        if (ps != kNoNode && (from.Get(ps) || out.Get(ps))) out.Set(v);
      }
      return out;
    case Axis::kPrecedingSibling:
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        NodeId ns = t.next_sibling(v);
        if (ns != kNoNode && (from.Get(ns) || out.Get(ns))) out.Set(v);
      }
      return out;
  }
  return out;
}

BitVector LabelSet(const Tree& t, std::string_view label) {
  BitVector out(t.size());
  if (label.empty()) {
    out.Fill();
    return out;
  }
  LabelId id = t.FindLabel(label);
  if (id == kNoLabel) return out;
  // Posting lists make this O(occurrences), not O(|t|).
  for (NodeId v : t.LabelPostings(id)) out.Set(v);
  return out;
}

}  // namespace xpv
