#include "tree/axes.h"

#include <cassert>

namespace xpv {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kFollowingSibling:
      return "following_sibling";
    case Axis::kPrecedingSibling:
      return "preceding_sibling";
  }
  return "?";
}

Result<Axis> ParseAxis(std::string_view name) {
  if (name == "self") return Axis::kSelf;
  if (name == "child") return Axis::kChild;
  if (name == "parent") return Axis::kParent;
  if (name == "descendant") return Axis::kDescendant;
  if (name == "ancestor") return Axis::kAncestor;
  if (name == "following_sibling" || name == "following-sibling") {
    return Axis::kFollowingSibling;
  }
  if (name == "preceding_sibling" || name == "preceding-sibling") {
    return Axis::kPrecedingSibling;
  }
  return Status::InvalidArgument("unknown axis '" + std::string(name) + "'");
}

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
  }
  return axis;
}

bool AxisHolds(const Tree& t, Axis axis, NodeId u, NodeId v) {
  switch (axis) {
    case Axis::kSelf:
      return u == v;
    case Axis::kChild:
      return t.parent(v) == u;
    case Axis::kParent:
      return t.parent(u) == v;
    case Axis::kDescendant:
      return u != v && t.IsAncestorOrSelf(u, v);
    case Axis::kAncestor:
      return u != v && t.IsAncestorOrSelf(v, u);
    case Axis::kFollowingSibling:
      return u != v && t.IsFollowingSiblingOrSelf(u, v);
    case Axis::kPrecedingSibling:
      return u != v && t.IsFollowingSiblingOrSelf(v, u);
  }
  return false;
}

BitMatrix AxisMatrix(const Tree& t, Axis axis) {
  // All builders are interval sweeps over the pre-order numbering: a
  // subtree is the contiguous id range [v, v + SubtreeSize(v)), so
  // descendant rows are single word-filled ranges and the sibling/ancestor
  // relations propagate by in-place row ORs -- no per-node walks and no
  // temporary row copies (the walk-based originals survive as
  // naive::AxisMatrix, the test oracle).
  const std::size_t n = t.size();
  BitMatrix m(n);
  switch (axis) {
    case Axis::kSelf:
      return BitMatrix::Identity(n);
    case Axis::kChild:
      for (NodeId v = 1; v < n; ++v) m.Set(t.parent(v), v);
      return m;
    case Axis::kParent:
      for (NodeId v = 1; v < n; ++v) m.Set(v, t.parent(v));
      return m;
    case Axis::kDescendant:
      // Row v = the proper subtree interval (v, v + SubtreeSize(v)).
      for (NodeId v = 0; v < n; ++v) {
        m.SetRowRange(v, v + 1, v + t.SubtreeSize(v));
      }
      return m;
    case Axis::kAncestor:
      // Row v = row of its parent plus the parent itself; parents precede
      // children in pre-order, so one forward sweep of in-place row ORs.
      for (NodeId v = 1; v < n; ++v) {
        m.OrRowIntoRow(v, t.parent(v));
        m.Set(v, t.parent(v));
      }
      return m;
    case Axis::kFollowingSibling:
      // Row v = row of its next sibling plus that sibling; next siblings
      // have larger ids, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        NodeId ns = t.next_sibling(v);
        if (ns != kNoNode) {
          m.OrRowIntoRow(v, ns);
          m.Set(v, ns);
        }
      }
      return m;
    case Axis::kPrecedingSibling:
      // Mirror of following_sibling: previous siblings have smaller ids.
      for (NodeId v = 1; v < n; ++v) {
        NodeId ps = t.prev_sibling(v);
        if (ps != kNoNode) {
          m.OrRowIntoRow(v, ps);
          m.Set(v, ps);
        }
      }
      return m;
  }
  return m;
}

IntervalMatrix AxisIntervalMatrix(const Tree& t, Axis axis) {
  // Runs come straight from the pre-order numbering: a subtree is the
  // contiguous id range [v, v + SubtreeSize(v)), so descendant rows are
  // single runs, and the ancestor / sibling relations extend an already
  // emitted neighbor row by one id (merging when the ids are adjacent).
  // Rows processed in increasing id order append into the CSR directly;
  // only following_sibling needs a counting pass, because it copies from
  // higher-id rows.
  const std::size_t n = t.size();
  std::vector<std::uint32_t> offsets(n + 1, 0);
  std::vector<IntervalRun> runs;
  // Appends runs[from_begin, from_end) (indices, not iterators: push_back
  // may reallocate) and then merges in the single id `extra` > all copied
  // column ids.
  const auto copy_then_append = [&runs](std::size_t from_begin,
                                        std::size_t from_end,
                                        std::uint32_t extra) {
    for (std::size_t i = from_begin; i < from_end; ++i) {
      const IntervalRun run = runs[i];
      runs.push_back(run);
    }
    if (!runs.empty() && from_begin < from_end && runs.back().end == extra) {
      runs.back().end = extra + 1;
    } else {
      runs.push_back({extra, extra + 1});
    }
  };
  switch (axis) {
    case Axis::kSelf:
      runs.reserve(n);
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        runs.push_back({v, v + 1});
      }
      break;
    case Axis::kChild:
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        // Children in increasing id order; child c is adjacent to its next
        // sibling iff its subtree is the single node c.
        for (NodeId c = t.first_child(v); c != kNoNode;) {
          NodeId next = t.next_sibling(c);
          std::uint32_t run_end = c + 1;
          while (next != kNoNode && next == run_end) {
            run_end = next + 1;
            next = t.next_sibling(next);
          }
          runs.push_back({c, run_end});
          c = next;
        }
      }
      break;
    case Axis::kParent:
      runs.reserve(n > 0 ? n - 1 : 0);
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        const NodeId p = t.parent(v);
        if (p != kNoNode) runs.push_back({p, p + 1});
      }
      break;
    case Axis::kDescendant:
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        const auto sub = static_cast<std::uint32_t>(t.SubtreeSize(v));
        if (sub > 1) runs.push_back({v + 1, v + sub});
      }
      break;
    case Axis::kAncestor:
      // Row v = row of its parent plus the parent itself; parents precede
      // children in pre-order and every ancestor id is < p, so one forward
      // sweep copying the (already emitted) parent row.
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        const NodeId p = t.parent(v);
        if (p != kNoNode) copy_then_append(offsets[p], offsets[p + 1], p);
      }
      break;
    case Axis::kPrecedingSibling:
      // Row v = row of its previous sibling plus that sibling; previous
      // siblings have smaller ids, so again a forward sweep.
      for (NodeId v = 0; v < n; ++v) {
        offsets[v] = static_cast<std::uint32_t>(runs.size());
        const NodeId ps = t.prev_sibling(v);
        if (ps != kNoNode) copy_then_append(offsets[ps], offsets[ps + 1], ps);
      }
      break;
    case Axis::kFollowingSibling: {
      // Row v = {ns} plus row of ns, where ns = next_sibling(v) has a
      // LARGER id -- so count runs first, prefix-sum the offsets, then
      // fill backwards into the finished layout. {ns} merges with the
      // first run of row ns iff that run starts at ns + 1, i.e. iff ns's
      // subtree is the single node ns.
      std::vector<std::uint32_t> counts(n, 0);
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        const NodeId ns = t.next_sibling(v);
        if (ns == kNoNode) continue;
        const bool merges = counts[ns] > 0 && t.SubtreeSize(ns) == 1;
        counts[v] = counts[ns] + (merges ? 0 : 1);
      }
      for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + counts[v];
      runs.resize(offsets[n]);
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        const NodeId ns = t.next_sibling(v);
        if (ns == kNoNode) continue;
        std::uint32_t w = offsets[v];
        std::uint32_t src = offsets[ns];
        if (counts[ns] > 0 && t.SubtreeSize(ns) == 1) {
          runs[w++] = {ns, runs[src].end};
          ++src;
        } else {
          runs[w++] = {ns, ns + 1};
        }
        for (; src < offsets[ns + 1]; ++src) runs[w++] = runs[src];
      }
      return IntervalMatrix(n, std::move(offsets), std::move(runs));
    }
  }
  offsets[n] = static_cast<std::uint32_t>(runs.size());
  return IntervalMatrix(n, std::move(offsets), std::move(runs));
}

BitVector AxisImage(const Tree& t, Axis axis, const BitVector& from) {
  const std::size_t n = t.size();
  assert(from.size() == n);
  BitVector out(n);
  switch (axis) {
    case Axis::kSelf:
      out = from;
      return out;
    case Axis::kChild:
      for (NodeId v = 0; v < n; ++v) {
        NodeId p = t.parent(v);
        if (p != kNoNode && from.Get(p)) out.Set(v);
      }
      return out;
    case Axis::kParent:
      from.ForEachSet([&](std::size_t v) {
        NodeId p = t.parent(static_cast<NodeId>(v));
        if (p != kNoNode) out.Set(p);
      });
      return out;
    case Axis::kDescendant:
      // out[v] = from[parent] or out[parent]; parents precede children in
      // pre-order, so a single forward sweep suffices.
      for (NodeId v = 1; v < n; ++v) {
        NodeId p = t.parent(v);
        if (from.Get(p) || out.Get(p)) out.Set(v);
      }
      return out;
    case Axis::kAncestor:
      // out[p] = from[child] or out[child] for any child; children follow
      // parents in pre-order, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 1;) {
        NodeId p = t.parent(v);
        if (from.Get(v) || out.Get(v)) out.Set(p);
      }
      return out;
    case Axis::kFollowingSibling:
      // out[v] = from[prev_sibling] or out[prev_sibling]; previous siblings
      // have smaller pre-order ids.
      for (NodeId v = 1; v < n; ++v) {
        NodeId ps = t.prev_sibling(v);
        if (ps != kNoNode && (from.Get(ps) || out.Get(ps))) out.Set(v);
      }
      return out;
    case Axis::kPrecedingSibling:
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        NodeId ns = t.next_sibling(v);
        if (ns != kNoNode && (from.Get(ns) || out.Get(ns))) out.Set(v);
      }
      return out;
  }
  return out;
}

BitVector LabelSet(const Tree& t, std::string_view label) {
  BitVector out(t.size());
  if (label.empty()) {
    out.Fill();
    return out;
  }
  LabelId id = t.FindLabel(label);
  if (id == kNoLabel) return out;
  // Posting lists make this O(occurrences), not O(|t|).
  for (NodeId v : t.LabelPostings(id)) out.Set(v);
  return out;
}

}  // namespace xpv
