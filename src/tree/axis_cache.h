// Thread-safe per-tree cache of axis relation matrices and label sets.
//
// Every matrix-based evaluator (ppl::MatrixEngine, xpath::DirectEvaluator,
// the HCL binary-query leaves) needs the same axis relations A(t) and the
// same label sets lab_N(t). Historically each engine instance kept a
// private copy; an AxisCache lifts that state to the tree itself so that
// many engines -- and many concurrent jobs of the batch QueryService in
// engine/ -- evaluating over one tree compute each relation exactly once
// and share the result.
//
// Each cached relation is a BoolMatrix (common/bool_matrix.h): dense on
// small trees, interval-backed on large ones (or forced either way by the
// AxisBacking policy), so a 1M-node document costs O(n log n) bits of
// axis state instead of the dense O(n^2).
//
// Thread safety: Matrix() uses one std::once_flag per axis and publishes
// the built relation with a release store into an atomic slot; Labels() a
// mutex around a node-stable std::map. Returned references stay valid for
// the lifetime of the cache and concurrent callers never observe a
// partially built relation -- approx_resident_bytes() reads only the
// published slots (acquire), never the build counters, so the stat cannot
// see a half-built entry.
#ifndef XPV_TREE_AXIS_CACHE_H_
#define XPV_TREE_AXIS_CACHE_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/bool_matrix.h"
#include "common/sparse_matrix.h"
#include "common/status.h"
#include "tree/axes.h"
#include "tree/tree.h"

namespace xpv {

/// Which representation AxisCache::Matrix() builds. kAuto picks dense on
/// trees up to kAutoDenseMaxNodes (a row is a handful of words there and
/// the word-parallel kernels win) and interval runs beyond.
enum class AxisBacking {
  kAuto,
  kDense,
  kInterval,
};

/// Lazily materialized, thread-safe per-tree cache of axis relations and
/// LabelSet() results. The referenced tree must outlive the cache.
class AxisCache {
 public:
  /// kAuto switches from dense to interval backing above this node count:
  /// at 4096 nodes the 7 dense relations cost 7 * 2 MiB, past which the
  /// O(n^2) bits dominate every other per-document cost.
  static constexpr std::size_t kAutoDenseMaxNodes = 4096;

  explicit AxisCache(const Tree& tree, AxisBacking backing = AxisBacking::kAuto)
      : tree_(tree), backing_(backing) {
    for (auto& slot : axis_) slot.store(nullptr, std::memory_order_relaxed);
  }

  AxisCache(const AxisCache&) = delete;
  AxisCache& operator=(const AxisCache&) = delete;

  const Tree& tree() const { return tree_; }
  AxisBacking backing() const { return backing_; }
  /// True iff Matrix() builds IntervalMatrix entries for this tree.
  bool interval_backed() const {
    return backing_ == AxisBacking::kInterval ||
           (backing_ == AxisBacking::kAuto &&
            tree_.size() > kAutoDenseMaxNodes);
  }

  /// A(t) for the given axis, computed on first use.
  const BoolMatrix& Matrix(Axis axis);

  /// Installs a snapshot-decoded relation for `axis` instead of building
  /// it from the tree (engine/snapshot.h reload path). Returns true when
  /// the slot was empty and the relation was adopted; false when the
  /// axis was already materialized (the prebuilt copy is dropped -- the
  /// published entry stays authoritative). The matrix must have the
  /// tree's dimension; installed entries count toward matrices_built()
  /// and, separately, matrices_installed().
  bool InstallPrebuilt(Axis axis, std::unique_ptr<const BoolMatrix> m);

  /// Axes whose relation is materialized right now, in kAllAxes order
  /// (the snapshot save path serializes exactly these).
  std::vector<Axis> BuiltAxes() const;

  /// Number of matrices adopted through InstallPrebuilt() -- snapshot
  /// reloads -- as opposed to built from the tree. The round-trip tests
  /// assert installed == persisted axes and that subsequent queries
  /// build nothing (matrices_built() stays at matrices_installed()).
  std::size_t matrices_installed() const {
    return matrices_installed_.load(std::memory_order_acquire);
  }

  /// lab_N(t) for the given name test (empty or "*" = all nodes), computed
  /// on first use. The returned reference is node-stable and immutable
  /// once published, so reading it after the lock is dropped is safe.
  const BitVector& Labels(const std::string& name_test)
      XPV_EXCLUDES(label_mu_);

  /// The masked step relation M_{axis::name_test} as a CSR run list,
  /// built directly from the cached axis relation's rows intersected with
  /// the label posting set -- run-native on interval backing, so no dense
  /// |t| x |t| materialization happens at any tree size. Uncached (the
  /// result is query-specific, unlike the 7 axis relations); fails with
  /// kResourceExhausted when the run list would exceed `max_runs` (0 =
  /// unbounded).
  Result<SparseBoolMatrix> SparseStep(Axis axis, const std::string& name_test,
                                      std::size_t max_runs = 0);

  /// Number of axis matrices materialized so far (monotone; at most 7).
  /// Lets callers -- and the DocumentStore reuse tests -- observe whether a
  /// relation was rebuilt or served from this cache. Incremented only
  /// after the entry is published, so the count never exceeds the number
  /// of readable entries.
  std::size_t matrices_built() const {
    return matrices_built_.load(std::memory_order_acquire);
  }
  /// Number of distinct label sets materialized so far.
  std::size_t label_sets_built() const {
    return label_sets_built_.load(std::memory_order_acquire);
  }

  /// Bytes resident in materialized relations and label sets: the sum of
  /// each published entry's BoolMatrix::resident_bytes() -- exact for
  /// whichever representation each entry chose -- plus label-set payload
  /// and an estimate of the std::map node overhead (kLabelMapNodeBytes
  /// per entry; the red-black node's three pointers + color and the key
  /// string header). Lock-free: reads only release-published state, so
  /// it may lag a concurrent build by one entry but never reads a
  /// half-built one. The DocumentStore aggregates this per shard to run
  /// its hot-cache LRU budget.
  std::size_t approx_resident_bytes() const {
    std::size_t bytes = 0;
    for (const auto& slot : axis_) {
      if (const BoolMatrix* m = slot.load(std::memory_order_acquire)) {
        bytes += m->resident_bytes();
      }
    }
    return bytes + label_bytes_.load(std::memory_order_acquire);
  }

  /// Per-entry allocator overhead charged for a labels_ map node: three
  /// child/parent pointers plus color in the red-black node, and the
  /// std::string key header (its heap characters are counted separately).
  static constexpr std::size_t kLabelMapNodeBytes =
      4 * sizeof(void*) + sizeof(std::string);

 private:
  const Tree& tree_;
  const AxisBacking backing_;
  std::atomic<std::size_t> matrices_built_{0};
  std::atomic<std::size_t> matrices_installed_{0};
  std::atomic<std::size_t> label_sets_built_{0};
  std::atomic<std::size_t> label_bytes_{0};
  /// The per-axis slots are not mutex-guarded: axis_storage_ is written
  /// exactly once inside the call_once below, then published into axis_
  /// with release semantics -- std::once_flag is the synchronization.
  std::array<std::once_flag, kAllAxes.size()> axis_once_;
  /// Owning storage, written once inside the call_once...
  std::array<std::unique_ptr<const BoolMatrix>, kAllAxes.size()> axis_storage_;
  /// ...then published here with release semantics; readers (Matrix and
  /// the stats) only ever see fully built entries.
  std::array<std::atomic<const BoolMatrix*>, kAllAxes.size()> axis_;
  Mutex label_mu_;
  /// Node-stable addresses; entries are write-once, so references handed
  /// out by Labels() stay valid and immutable after the lock is dropped.
  std::map<std::string, BitVector> labels_ XPV_GUARDED_BY(label_mu_);
};

}  // namespace xpv

#endif  // XPV_TREE_AXIS_CACHE_H_
