// Thread-safe per-tree cache of axis relation matrices and label sets.
//
// Every matrix-based evaluator (ppl::MatrixEngine, xpath::DirectEvaluator,
// the HCL binary-query leaves) needs the same |t| x |t| axis relations
// A(t) and the same label sets lab_N(t). Historically each engine instance
// kept a private copy; an AxisCache lifts that state to the tree itself so
// that many engines -- and many concurrent jobs of the batch QueryService
// in engine/ -- evaluating over one tree compute each relation exactly
// once and share the result.
//
// Thread safety: Matrix() uses one std::once_flag per axis, Labels() a
// mutex around a node-stable std::map, so returned references stay valid
// for the lifetime of the cache and concurrent callers never observe a
// partially built relation.
#ifndef XPV_TREE_AXIS_CACHE_H_
#define XPV_TREE_AXIS_CACHE_H_

#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bit_matrix.h"
#include "tree/axes.h"
#include "tree/tree.h"

namespace xpv {

/// Lazily materialized, thread-safe per-tree cache of AxisMatrix() and
/// LabelSet() results. The referenced tree must outlive the cache.
class AxisCache {
 public:
  explicit AxisCache(const Tree& tree) : tree_(tree) {}

  AxisCache(const AxisCache&) = delete;
  AxisCache& operator=(const AxisCache&) = delete;

  const Tree& tree() const { return tree_; }

  /// A(t) for the given axis, computed on first use.
  const BitMatrix& Matrix(Axis axis);

  /// lab_N(t) for the given name test (empty or "*" = all nodes), computed
  /// on first use.
  const BitVector& Labels(const std::string& name_test);

  /// Number of axis matrices materialized so far (monotone; at most 7).
  /// Lets callers -- and the DocumentStore reuse tests -- observe whether a
  /// relation was rebuilt or served from this cache.
  std::size_t matrices_built() const {
    return matrices_built_.load(std::memory_order_relaxed);
  }
  /// Number of distinct label sets materialized so far.
  std::size_t label_sets_built() const {
    return label_sets_built_.load(std::memory_order_relaxed);
  }

  /// Approximate bytes resident in materialized relations and label sets
  /// (derived from the build counters, so it is lock-free and may lag a
  /// concurrent build by one entry). The DocumentStore aggregates this
  /// per shard so operators can see what the hot-cache LRU budget holds.
  std::size_t approx_resident_bytes() const {
    const std::size_t words_per_row = (tree_.size() + 63) / 64;
    return matrices_built() * tree_.size() * words_per_row * 8 +
           label_sets_built() * words_per_row * 8;
  }

 private:
  const Tree& tree_;
  std::atomic<std::size_t> matrices_built_{0};
  std::atomic<std::size_t> label_sets_built_{0};
  std::array<std::once_flag, kAllAxes.size()> axis_once_;
  std::array<std::optional<BitMatrix>, kAllAxes.size()> axis_;
  std::mutex label_mu_;
  std::map<std::string, BitVector> labels_;  // node-stable addresses
};

}  // namespace xpv

#endif  // XPV_TREE_AXIS_CACHE_H_
