#include "tree/axis_cache.h"

#include <algorithm>
#include <utility>

namespace xpv {

const BoolMatrix& AxisCache::Matrix(Axis axis) {
  const auto i = static_cast<std::size_t>(axis);
  std::call_once(axis_once_[i], [&] {
    std::unique_ptr<const BoolMatrix> built;
    if (interval_backed()) {
      built = std::make_unique<IntervalMatrix>(AxisIntervalMatrix(tree_, axis));
    } else {
      built = std::make_unique<DenseBoolMatrix>(AxisMatrix(tree_, axis));
    }
    axis_storage_[i] = std::move(built);
    // Publish before counting: a reader that observes the incremented
    // counter (acquire) is guaranteed to also see the entry, so the
    // byte stat can never attribute bytes to a half-built slot.
    axis_[i].store(axis_storage_[i].get(), std::memory_order_release);
    matrices_built_.fetch_add(1, std::memory_order_release);
  });
  return *axis_[i].load(std::memory_order_acquire);
}

bool AxisCache::InstallPrebuilt(Axis axis,
                                std::unique_ptr<const BoolMatrix> m) {
  const auto i = static_cast<std::size_t>(axis);
  bool installed = false;
  std::call_once(axis_once_[i], [&] {
    axis_storage_[i] = std::move(m);
    axis_[i].store(axis_storage_[i].get(), std::memory_order_release);
    matrices_built_.fetch_add(1, std::memory_order_release);
    matrices_installed_.fetch_add(1, std::memory_order_release);
    installed = true;
  });
  return installed;
}

std::vector<Axis> AxisCache::BuiltAxes() const {
  std::vector<Axis> built;
  for (Axis axis : kAllAxes) {
    const auto i = static_cast<std::size_t>(axis);
    if (axis_[i].load(std::memory_order_acquire) != nullptr) {
      built.push_back(axis);
    }
  }
  return built;
}

Result<SparseBoolMatrix> AxisCache::SparseStep(Axis axis,
                                               const std::string& name_test,
                                               std::size_t max_runs) {
  const BoolMatrix& m = Matrix(axis);
  if (name_test.empty() || name_test == "*") {
    return SparseBoolMatrix::FromBool(m, max_runs);
  }
  const BitVector& labels = Labels(name_test);
  const std::size_t n = m.size();
  SparseBoolMatrix::Builder builder(n, max_runs);
  if (const IntervalMatrix* runs = m.AsInterval()) {
    // Run-native masking: intersect each axis run with the label set's
    // maximal set-bit runs (NextSet / NextUnset walk words, not bits).
    for (std::size_t r = 0; r < n; ++r) {
      auto [first, last] = runs->RunsOf(r);
      for (auto it = first; it != last; ++it) {
        std::size_t s = labels.Get(it->begin) ? it->begin
                                              : labels.NextSet(it->begin);
        while (s < it->end) {
          const std::size_t e =
              std::min<std::size_t>(it->end, labels.NextUnset(s));
          if (!builder.Append(static_cast<std::uint32_t>(r),
                              static_cast<std::uint32_t>(s),
                              static_cast<std::uint32_t>(e))) {
            return builder.Finish();  // budget overflow -> error status
          }
          s = labels.NextSet(e);
        }
      }
    }
  } else {
    BitVector scratch;
    for (std::size_t r = 0; r < n; ++r) {
      m.RowInto(r, scratch);
      scratch.AndWith(labels);
      if (!builder.AppendBits(static_cast<std::uint32_t>(r), scratch)) {
        return builder.Finish();
      }
    }
  }
  return builder.Finish();
}

const BitVector& AxisCache::Labels(const std::string& name_test) {
  const std::string key = name_test == "*" ? std::string() : name_test;
  MutexLock lock(label_mu_);
  auto it = labels_.find(key);
  if (it == labels_.end()) {
    it = labels_.emplace(key, LabelSet(tree_, key)).first;
    label_bytes_.fetch_add(
        it->second.words().size() * sizeof(std::uint64_t) +
            it->first.capacity() + kLabelMapNodeBytes,
        std::memory_order_release);
    label_sets_built_.fetch_add(1, std::memory_order_release);
  }
  return it->second;
}

}  // namespace xpv
