#include "tree/axis_cache.h"

namespace xpv {

const BitMatrix& AxisCache::Matrix(Axis axis) {
  const auto i = static_cast<std::size_t>(axis);
  std::call_once(axis_once_[i], [&] {
    axis_[i].emplace(AxisMatrix(tree_, axis));
    matrices_built_.fetch_add(1, std::memory_order_relaxed);
  });
  return *axis_[i];
}

const BitVector& AxisCache::Labels(const std::string& name_test) {
  const std::string key = name_test == "*" ? std::string() : name_test;
  std::lock_guard<std::mutex> lock(label_mu_);
  auto it = labels_.find(key);
  if (it == labels_.end()) {
    it = labels_.emplace(key, LabelSet(tree_, key)).first;
    label_sets_built_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

}  // namespace xpv
