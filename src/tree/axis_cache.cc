#include "tree/axis_cache.h"

#include <utility>

namespace xpv {

const BoolMatrix& AxisCache::Matrix(Axis axis) {
  const auto i = static_cast<std::size_t>(axis);
  std::call_once(axis_once_[i], [&] {
    std::unique_ptr<const BoolMatrix> built;
    if (interval_backed()) {
      built = std::make_unique<IntervalMatrix>(AxisIntervalMatrix(tree_, axis));
    } else {
      built = std::make_unique<DenseBoolMatrix>(AxisMatrix(tree_, axis));
    }
    axis_storage_[i] = std::move(built);
    // Publish before counting: a reader that observes the incremented
    // counter (acquire) is guaranteed to also see the entry, so the
    // byte stat can never attribute bytes to a half-built slot.
    axis_[i].store(axis_storage_[i].get(), std::memory_order_release);
    matrices_built_.fetch_add(1, std::memory_order_release);
  });
  return *axis_[i].load(std::memory_order_acquire);
}

const BitVector& AxisCache::Labels(const std::string& name_test) {
  const std::string key = name_test == "*" ? std::string() : name_test;
  std::lock_guard<std::mutex> lock(label_mu_);
  auto it = labels_.find(key);
  if (it == labels_.end()) {
    it = labels_.emplace(key, LabelSet(tree_, key)).first;
    label_bytes_.fetch_add(
        it->second.words().size() * sizeof(std::uint64_t) +
            it->first.capacity() + kLabelMapNodeBytes,
        std::memory_order_release);
    label_sets_built_.fetch_add(1, std::memory_order_release);
  }
  return it->second;
}

}  // namespace xpv
