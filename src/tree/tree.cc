#include "tree/tree.h"

#include <algorithm>
#include <cassert>
#include <cctype>

namespace xpv {

std::size_t Tree::NumChildren(NodeId v) const {
  std::size_t count = 0;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) ++count;
  return count;
}

std::vector<NodeId> Tree::Children(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

std::size_t Tree::Depth(NodeId v) const {
  std::size_t depth = 0;
  for (NodeId p = parent_[v]; p != kNoNode; p = parent_[p]) ++depth;
  return depth;
}

bool Tree::IsAncestorOrSelf(NodeId u, NodeId v) const {
  for (NodeId w = v; w != kNoNode; w = parent_[w]) {
    if (w == u) return true;
  }
  return false;
}

bool Tree::IsFollowingSiblingOrSelf(NodeId u, NodeId v) const {
  for (NodeId w = u; w != kNoNode; w = next_sibling_[w]) {
    if (w == v) return true;
  }
  return false;
}

NodeId Tree::LeastCommonAncestor(NodeId u, NodeId v) const {
  std::size_t du = Depth(u);
  std::size_t dv = Depth(v);
  while (du > dv) {
    u = parent_[u];
    --du;
  }
  while (dv > du) {
    v = parent_[v];
    --dv;
  }
  while (u != v) {
    u = parent_[u];
    v = parent_[v];
  }
  return u;
}

NodeId Tree::LeastCommonAncestor(const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  NodeId acc = nodes[0];
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    acc = LeastCommonAncestor(acc, nodes[i]);
  }
  return acc;
}

LabelId Tree::FindLabel(std::string_view name) const {
  auto it = label_ids_.find(std::string(name));
  return it == label_ids_.end() ? kNoLabel : it->second;
}

namespace {

void CopySubtree(const Tree& t, NodeId v, TreeBuilder* builder) {
  builder->Open(t.label_name(v));
  for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
    CopySubtree(t, c, builder);
  }
  builder->Close();
}

}  // namespace

Tree Tree::Subtree(NodeId u) const {
  TreeBuilder builder;
  CopySubtree(*this, u, &builder);
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

bool Tree::operator==(const Tree& other) const {
  if (size() != other.size()) return false;
  for (NodeId v = 0; v < size(); ++v) {
    if (parent_[v] != other.parent_[v] ||
        first_child_[v] != other.first_child_[v] ||
        next_sibling_[v] != other.next_sibling_[v] ||
        label_name(v) != other.label_name(v)) {
      return false;
    }
  }
  return true;
}

namespace {

void AppendTerm(const Tree& t, NodeId v, std::string* out) {
  *out += t.label_name(v);
  if (!t.IsLeaf(v)) {
    *out += '(';
    bool first = true;
    for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
      if (!first) *out += ',';
      first = false;
      AppendTerm(t, c, out);
    }
    *out += ')';
  }
}

void AppendXml(const Tree& t, NodeId v, std::string* out) {
  *out += '<';
  *out += t.label_name(v);
  if (t.IsLeaf(v)) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
    AppendXml(t, c, out);
  }
  *out += "</";
  *out += t.label_name(v);
  *out += '>';
}

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

std::string Tree::ToTerm() const {
  std::string out;
  if (!empty()) AppendTerm(*this, root(), &out);
  return out;
}

std::string Tree::ToXml() const {
  std::string out;
  if (!empty()) AppendXml(*this, root(), &out);
  return out;
}

Result<Tree> Tree::ParseTerm(std::string_view text) {
  std::size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto parse_name = [&]() -> std::string {
    std::size_t start = pos;
    if (pos < text.size() && IsNameStart(text[pos])) {
      ++pos;
      while (pos < text.size() && IsNameChar(text[pos])) ++pos;
    }
    return std::string(text.substr(start, pos - start));
  };

  TreeBuilder builder;
  // Recursive-descent on the term grammar: node := name [ '(' node
  // ((','|ws) node)* ')' ].
  struct Parser {
    std::string_view text;
    std::size_t& pos;
    TreeBuilder& builder;
    decltype(skip_ws)& skip;
    decltype(parse_name)& name;

    Status ParseNode() {
      skip();
      std::string label = name();
      if (label.empty()) {
        return Status::InvalidArgument(
            "expected a label at offset " + std::to_string(pos));
      }
      builder.Open(label);
      skip();
      if (pos < text.size() && text[pos] == '(') {
        ++pos;
        skip();
        if (pos < text.size() && text[pos] == ')') {
          return Status::InvalidArgument("empty child list at offset " +
                                         std::to_string(pos));
        }
        while (true) {
          XPV_RETURN_IF_ERROR(ParseNode());
          skip();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == ')') {
            ++pos;
            break;
          }
          if (pos < text.size() && IsNameStart(text[pos])) continue;
          return Status::InvalidArgument(
              "expected ',', ')' or a label at offset " + std::to_string(pos));
        }
      }
      builder.Close();
      return Status::OK();
    }
  };

  Parser parser{text, pos, builder, skip_ws, parse_name};
  XPV_RETURN_IF_ERROR(parser.ParseNode());
  skip_ws();
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters at offset " +
                                   std::to_string(pos));
  }
  return std::move(builder).Finish();
}

Result<Tree> Tree::ParseXml(std::string_view text) {
  std::size_t pos = 0;
  TreeBuilder builder;
  std::vector<std::string> open_tags;

  auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto parse_name = [&]() -> std::string {
    std::size_t start = pos;
    if (pos < text.size() && IsNameStart(text[pos])) {
      ++pos;
      while (pos < text.size() && (IsNameChar(text[pos]) || text[pos] == ':')) {
        ++pos;
      }
    }
    return std::string(text.substr(start, pos - start));
  };

  skip_ws();
  // Optional XML declaration / processing instructions and comments.
  while (pos + 1 < text.size() && text[pos] == '<' &&
         (text[pos + 1] == '?' || text[pos + 1] == '!')) {
    std::size_t end = text.find('>', pos);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("unterminated declaration");
    }
    pos = end + 1;
    skip_ws();
  }

  while (pos < text.size()) {
    skip_ws();
    if (pos >= text.size()) break;
    if (text[pos] != '<') {
      return Status::InvalidArgument(
          "text content is not supported by the navigational data model "
          "(offset " +
          std::to_string(pos) + ")");
    }
    ++pos;
    if (pos < text.size() && text[pos] == '/') {
      ++pos;
      std::string name = parse_name();
      skip_ws();
      if (pos >= text.size() || text[pos] != '>') {
        return Status::InvalidArgument("malformed closing tag");
      }
      ++pos;
      if (open_tags.empty() || open_tags.back() != name) {
        return Status::InvalidArgument("mismatched closing tag </" + name +
                                       ">");
      }
      open_tags.pop_back();
      builder.Close();
      if (open_tags.empty()) break;
      continue;
    }
    if (pos + 2 < text.size() && text[pos] == '!') {
      // Comment: <!-- ... -->
      std::size_t end = text.find("-->", pos);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated comment");
      }
      pos = end + 3;
      continue;
    }
    std::string name = parse_name();
    if (name.empty()) {
      return Status::InvalidArgument("expected element name at offset " +
                                     std::to_string(pos));
    }
    skip_ws();
    if (pos < text.size() && IsNameStart(text[pos])) {
      return Status::InvalidArgument(
          "attributes are not supported by the navigational data model "
          "(element <" +
          name + ">)");
    }
    builder.Open(name);
    if (pos + 1 < text.size() && text[pos] == '/' && text[pos + 1] == '>') {
      pos += 2;
      builder.Close();
      if (open_tags.empty()) break;
      continue;
    }
    if (pos < text.size() && text[pos] == '>') {
      ++pos;
      open_tags.push_back(name);
      continue;
    }
    return Status::InvalidArgument("malformed start tag <" + name + ">");
  }

  skip_ws();
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters after root element");
  }
  if (!open_tags.empty()) {
    return Status::InvalidArgument("unclosed element <" + open_tags.back() +
                                   ">");
  }
  return std::move(builder).Finish();
}

NodeId TreeBuilder::Open(std::string_view label) {
  NodeId id = static_cast<NodeId>(tree_.parent_.size());
  NodeId parent = stack_.empty() ? kNoNode : stack_.back();
  tree_.parent_.push_back(parent);
  tree_.first_child_.push_back(kNoNode);
  tree_.last_child_.push_back(kNoNode);
  tree_.next_sibling_.push_back(kNoNode);
  tree_.prev_sibling_.push_back(kNoNode);
  tree_.label_.push_back(Intern(label));
  if (parent != kNoNode) {
    NodeId prev = tree_.last_child_[parent];
    if (prev == kNoNode) {
      tree_.first_child_[parent] = id;
    } else {
      tree_.next_sibling_[prev] = id;
      tree_.prev_sibling_[id] = prev;
    }
    tree_.last_child_[parent] = id;
  } else {
    saw_root_ = true;
  }
  stack_.push_back(id);
  return id;
}

void TreeBuilder::Close() {
  assert(!stack_.empty() && "Close() without matching Open()");
  stack_.pop_back();
}

Result<Tree> TreeBuilder::Finish() && {
  if (!stack_.empty()) {
    return Status::InvalidArgument("Finish() with " +
                                   std::to_string(stack_.size()) +
                                   " unclosed nodes");
  }
  if (!saw_root_) {
    return Status::InvalidArgument("Finish() on an empty builder");
  }
  // Exactly one root: the first node opened at depth 0. A second depth-0
  // Open would have parent kNoNode as well; detect it.
  std::size_t roots = 0;
  for (NodeId p : tree_.parent_) {
    if (p == kNoNode) ++roots;
  }
  if (roots != 1) {
    return Status::InvalidArgument("tree must have exactly one root, got " +
                                   std::to_string(roots));
  }
  return std::move(tree_);
}

LabelId TreeBuilder::Intern(std::string_view label) {
  auto [it, inserted] =
      tree_.label_ids_.emplace(std::string(label), tree_.labels_.size());
  if (inserted) tree_.labels_.emplace_back(label);
  return it->second;
}

}  // namespace xpv
