#include "tree/tree.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>

namespace xpv {

namespace {
// Process-wide construction counters; see the header. Relaxed is enough:
// tests read them only at quiescent points (before/after an operation).
std::atomic<std::uint64_t> g_index_builds{0};
std::atomic<std::uint64_t> g_parses{0};
}  // namespace

std::uint64_t Tree::GlobalIndexBuilds() {
  return g_index_builds.load(std::memory_order_relaxed);
}

std::uint64_t Tree::GlobalParses() {
  return g_parses.load(std::memory_order_relaxed);
}

std::size_t Tree::NumChildren(NodeId v) const {
  std::size_t count = 0;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) ++count;
  return count;
}

std::vector<NodeId> Tree::Children(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

const std::vector<NodeId>& Tree::LabelPostings(LabelId id) const {
  static const std::vector<NodeId> kEmpty;
  if (id >= label_postings_.size()) return kEmpty;
  return label_postings_[id];
}

std::size_t Tree::LabelFrequency(std::string_view name) const {
  return LabelPostings(FindLabel(name)).size();
}

void Tree::BuildIndexes() {
  g_index_builds.fetch_add(1, std::memory_order_relaxed);
  const NodeId n = static_cast<NodeId>(parent_.size());
  depth_.assign(n, 0);
  subtree_size_.assign(n, 1);
  post_.assign(n, 0);
  // Pre-order ids mean parents precede children: one forward sweep fills
  // depths, one backward sweep accumulates subtree sizes bottom-up.
  for (NodeId v = 1; v < n; ++v) depth_[v] = depth_[parent_[v]] + 1;
  for (NodeId v = n; v-- > 1;) subtree_size_[parent_[v]] += subtree_size_[v];
  // post(v) = pre(v) + SubtreeSize(v) - 1 - Depth(v): v closes after its
  // whole subtree (pre + size - 1) but before its open ancestors (depth).
  for (NodeId v = 0; v < n; ++v) {
    post_[v] = v + static_cast<NodeId>(subtree_size_[v]) - 1 - depth_[v];
  }
  label_postings_.assign(labels_.size(), {});
  for (NodeId v = 0; v < n; ++v) label_postings_[label_[v]].push_back(v);
  // Binary-lifting ancestor table, sized to the maximum depth.
  std::uint32_t max_depth = 0;
  for (NodeId v = 0; v < n; ++v) max_depth = std::max(max_depth, depth_[v]);
  std::size_t levels = 0;
  while ((std::uint64_t{1} << levels) < std::uint64_t{max_depth} + 1) ++levels;
  up_.assign(levels, std::vector<NodeId>(n, kNoNode));
  if (levels > 0) up_[0] = parent_;
  for (std::size_t k = 1; k < levels; ++k) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId half = up_[k - 1][v];
      up_[k][v] = half == kNoNode ? kNoNode : up_[k - 1][half];
    }
  }
  // Summary statistics for the query planner's cost model.
  stats_.node_count = n;
  stats_.max_depth = max_depth;
  stats_.alphabet_size = labels_.size();
  std::vector<std::size_t> fanout(n, 0);
  for (NodeId v = 1; v < n; ++v) ++fanout[parent_[v]];
  stats_.max_fanout = 0;
  for (NodeId v = 0; v < n; ++v) {
    stats_.max_fanout = std::max(stats_.max_fanout, fanout[v]);
  }
  stats_.max_label_posting = 0;
  stats_.min_label_posting = n;
  for (const std::vector<NodeId>& postings : label_postings_) {
    stats_.max_label_posting =
        std::max(stats_.max_label_posting, postings.size());
    stats_.min_label_posting =
        std::min(stats_.min_label_posting, postings.size());
  }
  if (label_postings_.empty()) stats_.min_label_posting = 0;
}

NodeId Tree::LeastCommonAncestor(NodeId u, NodeId v) const {
  if (IsAncestorOrSelf(u, v)) return u;
  if (IsAncestorOrSelf(v, u)) return v;
  // Lift u to its highest ancestor that is still NOT an ancestor of v;
  // that node's parent is the LCA.
  for (std::size_t k = up_.size(); k-- > 0;) {
    NodeId w = up_[k][u];
    if (w != kNoNode && !IsAncestorOrSelf(w, v)) u = w;
  }
  return parent_[u];
}

NodeId Tree::LeastCommonAncestor(const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  NodeId acc = nodes[0];
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    acc = LeastCommonAncestor(acc, nodes[i]);
  }
  return acc;
}

LabelId Tree::FindLabel(std::string_view name) const {
  auto it = label_ids_.find(std::string(name));
  return it == label_ids_.end() ? kNoLabel : it->second;
}

Tree Tree::Subtree(NodeId u) const {
  // Iterative pre-order copy (trees may be pathologically deep). The
  // subtree is the contiguous pre-order interval [u, u + SubtreeSize(u)),
  // so a single id sweep visits it in document order; closes are emitted
  // when the depth drops.
  TreeBuilder builder;
  const NodeId end = u + static_cast<NodeId>(subtree_size_[u]);
  const std::uint32_t base_depth = depth_[u];
  std::uint32_t open = 0;  // nodes currently open in the builder
  for (NodeId v = u; v < end; ++v) {
    const std::uint32_t rel_depth = depth_[v] - base_depth;
    while (open > rel_depth) {
      builder.Close();
      --open;
    }
    builder.Open(label_name(v));
    ++open;
  }
  while (open > 0) {
    builder.Close();
    --open;
  }
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

std::size_t Tree::resident_bytes() const {
  const std::size_t n = parent_.size();
  // Five structure arrays + labels + post/depth/subtree, all n entries.
  std::size_t bytes = n * (6 * sizeof(NodeId) + sizeof(LabelId) +
                           2 * sizeof(std::uint32_t));
  for (const std::vector<NodeId>& level : up_) {
    bytes += level.size() * sizeof(NodeId);
  }
  // Posting lists hold each node exactly once.
  bytes += n * sizeof(NodeId) +
           label_postings_.size() * sizeof(std::vector<NodeId>);
  for (const std::string& label : labels_) {
    bytes += sizeof(std::string) + label.capacity();
  }
  // label_ids_ nodes: hash bucket pointer + node header + key string
  // header (characters counted via labels_ already share small-string
  // storage; charge capacity again only for heap-allocated keys).
  for (const auto& [key, id] : label_ids_) {
    (void)id;
    bytes += 4 * sizeof(void*) + sizeof(std::string) + key.capacity();
  }
  return bytes;
}

bool Tree::operator==(const Tree& other) const {
  if (size() != other.size()) return false;
  for (NodeId v = 0; v < size(); ++v) {
    if (parent_[v] != other.parent_[v] ||
        first_child_[v] != other.first_child_[v] ||
        next_sibling_[v] != other.next_sibling_[v] ||
        label_name(v) != other.label_name(v)) {
      return false;
    }
  }
  return true;
}

namespace {

// Both serializers are iterative sweeps over the pre-order interval of
// the serialized subtree (like Tree::Subtree), so pathologically deep
// trees serialize without call-stack recursion and without per-node
// temporary allocations: structure is recovered from the depth deltas.

void AppendTerm(const Tree& t, NodeId v, std::string* out) {
  const NodeId end = v + static_cast<NodeId>(t.SubtreeSize(v));
  const std::size_t base_depth = t.Depth(v);
  std::size_t prev = 0;  // relative depth of the previously emitted node
  *out += t.label_name(v);
  for (NodeId w = v + 1; w < end; ++w) {
    const std::size_t d = t.Depth(w) - base_depth;
    if (d > prev) {  // first child: descend exactly one level
      *out += '(';
    } else {  // next sibling of an ancestor (or of the previous node)
      out->append(prev - d, ')');
      *out += ',';
    }
    *out += t.label_name(w);
    prev = d;
  }
  out->append(prev, ')');
}

void AppendXml(const Tree& t, NodeId v, std::string* out) {
  const NodeId end = v + static_cast<NodeId>(t.SubtreeSize(v));
  const std::size_t base_depth = t.Depth(v);
  std::vector<NodeId> open;  // non-leaf nodes whose tag is still open
  for (NodeId w = v; w < end; ++w) {
    const std::size_t d = t.Depth(w) - base_depth;
    while (open.size() > d) {
      *out += "</";
      *out += t.label_name(open.back());
      *out += '>';
      open.pop_back();
    }
    *out += '<';
    *out += t.label_name(w);
    if (t.IsLeaf(w)) {
      *out += "/>";
    } else {
      *out += '>';
      open.push_back(w);
    }
  }
  while (!open.empty()) {
    *out += "</";
    *out += t.label_name(open.back());
    *out += '>';
    open.pop_back();
  }
}

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

std::string Tree::ToTerm() const {
  std::string out;
  if (!empty()) AppendTerm(*this, root(), &out);
  return out;
}

std::string Tree::ToXml() const {
  std::string out;
  if (!empty()) AppendXml(*this, root(), &out);
  return out;
}

Result<Tree> Tree::ParseTerm(std::string_view text) {
  g_parses.fetch_add(1, std::memory_order_relaxed);
  std::size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto parse_name = [&]() -> std::string {
    std::size_t start = pos;
    if (pos < text.size() && IsNameStart(text[pos])) {
      ++pos;
      while (pos < text.size() && IsNameChar(text[pos])) ++pos;
    }
    return std::string(text.substr(start, pos - start));
  };

  TreeBuilder builder;
  // Iterative parse of the term grammar: node := name [ '(' node
  // ((','|ws) node)* ')' ]. The builder's open stack doubles as the parse
  // stack, so arbitrarily deep inputs (e.g. a 100k-deep chain) cannot
  // overflow the call stack.
  auto open_node = [&]() -> Status {
    skip_ws();
    std::string label = parse_name();
    if (label.empty()) {
      return Status::InvalidArgument("expected a label at offset " +
                                     std::to_string(pos));
    }
    builder.Open(label);
    return Status::OK();
  };
  XPV_RETURN_IF_ERROR(open_node());
  for (bool done = false; !done;) {
    skip_ws();
    if (pos < text.size() && text[pos] == '(') {
      // The just-opened node has children: descend into the first one.
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == ')') {
        return Status::InvalidArgument("empty child list at offset " +
                                       std::to_string(pos));
      }
      XPV_RETURN_IF_ERROR(open_node());
      continue;
    }
    // The just-opened node is a leaf: close it, then ascend until a next
    // sibling starts or the root closes.
    builder.Close();
    while (true) {
      skip_ws();
      if (builder.open_depth() == 0) {
        done = true;
        break;
      }
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        XPV_RETURN_IF_ERROR(open_node());
        break;
      }
      if (pos < text.size() && text[pos] == ')') {
        ++pos;
        builder.Close();  // the parent's child list ends here
        continue;
      }
      if (pos < text.size() && IsNameStart(text[pos])) {
        XPV_RETURN_IF_ERROR(open_node());
        break;
      }
      return Status::InvalidArgument("expected ',', ')' or a label at offset " +
                                     std::to_string(pos));
    }
  }
  skip_ws();
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters at offset " +
                                   std::to_string(pos));
  }
  return std::move(builder).Finish();
}

Result<Tree> Tree::ParseXml(std::string_view text) {
  g_parses.fetch_add(1, std::memory_order_relaxed);
  std::size_t pos = 0;
  TreeBuilder builder;
  std::vector<std::string> open_tags;

  auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto parse_name = [&]() -> std::string {
    std::size_t start = pos;
    if (pos < text.size() && IsNameStart(text[pos])) {
      ++pos;
      while (pos < text.size() && (IsNameChar(text[pos]) || text[pos] == ':')) {
        ++pos;
      }
    }
    return std::string(text.substr(start, pos - start));
  };

  skip_ws();
  // Optional XML declaration / processing instructions and comments.
  while (pos + 1 < text.size() && text[pos] == '<' &&
         (text[pos + 1] == '?' || text[pos + 1] == '!')) {
    std::size_t end = text.find('>', pos);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("unterminated declaration");
    }
    pos = end + 1;
    skip_ws();
  }

  while (pos < text.size()) {
    skip_ws();
    if (pos >= text.size()) break;
    if (text[pos] != '<') {
      return Status::InvalidArgument(
          "text content is not supported by the navigational data model "
          "(offset " +
          std::to_string(pos) + ")");
    }
    ++pos;
    if (pos < text.size() && text[pos] == '/') {
      ++pos;
      std::string name = parse_name();
      skip_ws();
      if (pos >= text.size() || text[pos] != '>') {
        return Status::InvalidArgument("malformed closing tag");
      }
      ++pos;
      if (open_tags.empty() || open_tags.back() != name) {
        return Status::InvalidArgument("mismatched closing tag </" + name +
                                       ">");
      }
      open_tags.pop_back();
      builder.Close();
      if (open_tags.empty()) break;
      continue;
    }
    if (pos + 2 < text.size() && text[pos] == '!') {
      // Comment: <!-- ... -->
      std::size_t end = text.find("-->", pos);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated comment");
      }
      pos = end + 3;
      continue;
    }
    std::string name = parse_name();
    if (name.empty()) {
      return Status::InvalidArgument("expected element name at offset " +
                                     std::to_string(pos));
    }
    skip_ws();
    if (pos < text.size() && IsNameStart(text[pos])) {
      return Status::InvalidArgument(
          "attributes are not supported by the navigational data model "
          "(element <" +
          name + ">)");
    }
    builder.Open(name);
    if (pos + 1 < text.size() && text[pos] == '/' && text[pos + 1] == '>') {
      pos += 2;
      builder.Close();
      if (open_tags.empty()) break;
      continue;
    }
    if (pos < text.size() && text[pos] == '>') {
      ++pos;
      open_tags.push_back(name);
      continue;
    }
    return Status::InvalidArgument("malformed start tag <" + name + ">");
  }

  skip_ws();
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters after root element");
  }
  if (!open_tags.empty()) {
    return Status::InvalidArgument("unclosed element <" + open_tags.back() +
                                   ">");
  }
  return std::move(builder).Finish();
}

NodeId TreeBuilder::Open(std::string_view label) {
  NodeId id = static_cast<NodeId>(tree_.parent_.size());
  NodeId parent = stack_.empty() ? kNoNode : stack_.back();
  tree_.parent_.push_back(parent);
  tree_.first_child_.push_back(kNoNode);
  tree_.last_child_.push_back(kNoNode);
  tree_.next_sibling_.push_back(kNoNode);
  tree_.prev_sibling_.push_back(kNoNode);
  tree_.label_.push_back(Intern(label));
  if (parent != kNoNode) {
    NodeId prev = tree_.last_child_[parent];
    if (prev == kNoNode) {
      tree_.first_child_[parent] = id;
    } else {
      tree_.next_sibling_[prev] = id;
      tree_.prev_sibling_[id] = prev;
    }
    tree_.last_child_[parent] = id;
  } else {
    saw_root_ = true;
  }
  stack_.push_back(id);
  return id;
}

void TreeBuilder::Close() {
  assert(!stack_.empty() && "Close() without matching Open()");
  stack_.pop_back();
}

Result<Tree> TreeBuilder::Finish() && {
  if (!stack_.empty()) {
    return Status::InvalidArgument("Finish() with " +
                                   std::to_string(stack_.size()) +
                                   " unclosed nodes");
  }
  if (!saw_root_) {
    return Status::InvalidArgument("Finish() on an empty builder");
  }
  // Exactly one root: the first node opened at depth 0. A second depth-0
  // Open would have parent kNoNode as well; detect it.
  std::size_t roots = 0;
  for (NodeId p : tree_.parent_) {
    if (p == kNoNode) ++roots;
  }
  if (roots != 1) {
    return Status::InvalidArgument("tree must have exactly one root, got " +
                                   std::to_string(roots));
  }
  tree_.BuildIndexes();
  return std::move(tree_);
}

LabelId TreeBuilder::Intern(std::string_view label) {
  auto [it, inserted] =
      tree_.label_ids_.emplace(std::string(label), tree_.labels_.size());
  if (inserted) tree_.labels_.emplace_back(label);
  return it->second;
}

}  // namespace xpv
