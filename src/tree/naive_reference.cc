#include "tree/naive_reference.h"

#include <cassert>

namespace xpv::naive {

std::size_t Depth(const Tree& t, NodeId v) {
  std::size_t depth = 0;
  for (NodeId p = t.parent(v); p != kNoNode; p = t.parent(p)) ++depth;
  return depth;
}

bool IsAncestorOrSelf(const Tree& t, NodeId u, NodeId v) {
  for (NodeId w = v; w != kNoNode; w = t.parent(w)) {
    if (w == u) return true;
  }
  return false;
}

bool IsFollowingSiblingOrSelf(const Tree& t, NodeId u, NodeId v) {
  for (NodeId w = u; w != kNoNode; w = t.next_sibling(w)) {
    if (w == v) return true;
  }
  return false;
}

NodeId LeastCommonAncestor(const Tree& t, NodeId u, NodeId v) {
  std::size_t du = Depth(t, u);
  std::size_t dv = Depth(t, v);
  while (du > dv) {
    u = t.parent(u);
    --du;
  }
  while (dv > du) {
    v = t.parent(v);
    --dv;
  }
  while (u != v) {
    u = t.parent(u);
    v = t.parent(v);
  }
  return u;
}

std::vector<NodeId> PostOrder(const Tree& t) {
  std::vector<NodeId> post(t.size(), kNoNode);
  NodeId counter = 0;
  // Iterative post-order: (node, visited-children?) entries.
  std::vector<std::pair<NodeId, bool>> stack = {{t.root(), false}};
  while (!stack.empty()) {
    auto [v, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      post[v] = counter++;
      continue;
    }
    stack.push_back({v, true});
    std::vector<NodeId> children = t.Children(v);
    for (std::size_t i = children.size(); i-- > 0;) {
      stack.push_back({children[i], false});
    }
  }
  return post;
}

BitMatrix AxisMatrix(const Tree& t, Axis axis) {
  const std::size_t n = t.size();
  BitMatrix m(n);
  switch (axis) {
    case Axis::kSelf:
      return BitMatrix::Identity(n);
    case Axis::kChild:
      for (NodeId v = 0; v < n; ++v) {
        if (t.parent(v) != kNoNode) m.Set(t.parent(v), v);
      }
      return m;
    case Axis::kParent:
      for (NodeId v = 0; v < n; ++v) {
        if (t.parent(v) != kNoNode) m.Set(v, t.parent(v));
      }
      return m;
    case Axis::kDescendant:
      // Row of a node = union of rows of its children plus the children
      // themselves. Children have larger pre-order ids, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        for (NodeId c = t.first_child(v); c != kNoNode; c = t.next_sibling(c)) {
          BitVector row = m.Row(c);
          row.Set(c);
          m.OrIntoRow(v, row);
        }
      }
      return m;
    case Axis::kAncestor:
      return naive::AxisMatrix(t, Axis::kDescendant).Transpose();
    case Axis::kFollowingSibling:
      // Row of a node = row of its next sibling plus that sibling; next
      // siblings have larger ids, so sweep backwards.
      for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
        NodeId ns = t.next_sibling(v);
        if (ns != kNoNode) {
          BitVector row = m.Row(ns);
          row.Set(ns);
          m.OrIntoRow(v, row);
        }
      }
      return m;
    case Axis::kPrecedingSibling:
      return naive::AxisMatrix(t, Axis::kFollowingSibling).Transpose();
  }
  return m;
}

BitVector LabelSet(const Tree& t, std::string_view label) {
  BitVector out(t.size());
  if (label.empty()) {
    out.Fill();
    return out;
  }
  LabelId id = t.FindLabel(label);
  if (id == kNoLabel) return out;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) == id) out.Set(v);
  }
  return out;
}

}  // namespace xpv::naive
