// The navigational axes of Core XPath 2.0 (Fig. 1 of the paper):
// self, child, parent, descendant, ancestor, following_sibling,
// preceding_sibling -- all proper (non-reflexive) except self.
//
// Three views of an axis relation A(t) are provided:
//   * AxisMatrix        -- the full |t| x |t| Boolean relation (for the
//                          PPLbin matrix engine of Section 4),
//   * AxisImage         -- S_A(N) = { u' | exists u in N, A(u, u') } in
//                          O(|t|) time (the Gottlob-Koch-Pichler evaluation
//                          trick recalled in Section 4),
//   * AxisHolds         -- a single pair membership test (test oracle).
#ifndef XPV_TREE_AXES_H_
#define XPV_TREE_AXES_H_

#include <array>
#include <string_view>

#include "common/bit_matrix.h"
#include "common/bool_matrix.h"
#include "common/status.h"
#include "tree/tree.h"

namespace xpv {

/// The axes of Core XPath 2.0 (Fig. 1).
enum class Axis {
  kSelf,
  kChild,
  kParent,
  kDescendant,
  kAncestor,
  kFollowingSibling,
  kPrecedingSibling,
};

inline constexpr std::array<Axis, 7> kAllAxes = {
    Axis::kSelf,           Axis::kChild,
    Axis::kParent,         Axis::kDescendant,
    Axis::kAncestor,       Axis::kFollowingSibling,
    Axis::kPrecedingSibling,
};

/// XPath surface syntax name, e.g. "following_sibling".
std::string_view AxisName(Axis axis);
/// Parses an axis name; accepts both `following_sibling` and the XPath
/// spelling `following-sibling`.
Result<Axis> ParseAxis(std::string_view name);

/// The inverse relation's axis: child <-> parent, descendant <-> ancestor,
/// following_sibling <-> preceding_sibling, self <-> self.
Axis InverseAxis(Axis axis);

/// True iff (u, v) is in A(t), i.e. navigating axis A from u reaches v.
bool AxisHolds(const Tree& t, Axis axis, NodeId u, NodeId v);

/// The full relation A(t) as a Boolean matrix (rows = start nodes).
BitMatrix AxisMatrix(const Tree& t, Axis axis);

/// The full relation A(t) as a succinct IntervalMatrix: per-row sorted run
/// lists built directly from the pre-order index intervals in
/// O(|t| + total runs) time, never touching O(|t|^2) bits. Total runs are
/// O(|t|) for self/child/parent/descendant and bounded by the ancestor
/// chain length resp. non-leaf sibling count for the remaining axes --
/// O(|t| log |t|) on balanced or random trees.
IntervalMatrix AxisIntervalMatrix(const Tree& t, Axis axis);

/// Computes S_A(N) = image of node set N under A(t) in O(|t|) time,
/// relying on the pre-order numbering of built trees.
BitVector AxisImage(const Tree& t, Axis axis, const BitVector& from);

/// Node set { v | label(v) == label } as a BitVector; all nodes when
/// `label` is empty (the wildcard name test `*`).
BitVector LabelSet(const Tree& t, std::string_view label);

}  // namespace xpv

#endif  // XPV_TREE_AXES_H_
