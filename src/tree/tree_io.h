// Binary serialization of indexed trees and interval-run axis relations.
//
// A Tree is index-rich after TreeBuilder::Finish(): depth, subtree size,
// post-order, the binary-lifting ancestor table, posting lists, and the
// planner's TreeStats. TreeIo serializes the node arrays *and* all of
// those indexes, so a decoded tree is immediately servable -- Decode()
// never calls BuildIndexes() and never re-parses surface syntax. That is
// the whole point of the persistence layer: reload cost is a bounded
// number of bounds-checked memcpys, not O(n log n) index construction
// (the restart harness asserts this via Tree::GlobalIndexBuilds()).
//
// The byte format is little-endian and position-independent; framing,
// versioning, and checksums live one layer up in engine/snapshot.h --
// TreeIo assumes its input range was already CRC-validated but still
// bounds-checks every read and range-checks every node id, so a corrupt
// payload that slips past the CRC yields a typed kDataLoss error, never
// an out-of-bounds access.
#ifndef XPV_TREE_TREE_IO_H_
#define XPV_TREE_TREE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bool_matrix.h"
#include "common/status.h"
#include "tree/tree.h"

namespace xpv {

/// Append-only little-endian byte sink over a std::string buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// u32 length prefix + raw bytes.
  void Str(const std::string& s);
  /// Raw little-endian dump of a u32 array (no length prefix; callers
  /// write the count separately when it is not implied by context).
  void U32Array(const std::vector<std::uint32_t>& values);

  std::size_t bytes_written() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian reader over a byte range. Every read
/// fails with kDataLoss instead of running past the end, so truncated or
/// bit-flipped payloads surface as typed errors.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> U8();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  /// Reads a u32 length prefix + that many raw bytes.
  Result<std::string> Str(std::size_t max_len = kMaxStringLen);
  /// Reads exactly `count` little-endian u32s into `out`.
  Status U32Array(std::size_t count, std::vector<std::uint32_t>& out);

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  /// Longest label / name accepted by Str() by default: a corrupted
  /// length prefix must not trigger a multi-gigabyte allocation.
  static constexpr std::size_t kMaxStringLen = std::size_t{1} << 20;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Codec for Tree and IntervalMatrix payloads. Stateless; the class
/// exists only to be befriended by Tree so decoding can reconstitute the
/// private index arrays directly.
class TreeIo {
 public:
  /// Serializes `tree` (node arrays + every precomputed index) into `w`.
  static void EncodeTree(const Tree& tree, ByteWriter& w);
  /// Reconstitutes a tree without parsing or re-indexing. Validates
  /// structural invariants (pre-order parent links, id ranges, posting
  /// coverage) and fails with kDataLoss on any violation.
  static Result<Tree> DecodeTree(ByteReader& r);

  /// Serializes the CSR run list of an interval-backed axis relation.
  static void EncodeIntervalMatrix(const IntervalMatrix& m, ByteWriter& w);
  /// Decodes a CSR run list; validates offsets are nondecreasing and runs
  /// are sorted, disjoint, non-adjacent, and within [0, n).
  static Result<IntervalMatrix> DecodeIntervalMatrix(ByteReader& r);

  /// Hard ceiling on the decoded node count (and run count), so a
  /// corrupted size field cannot trigger an absurd allocation before
  /// validation gets a chance to reject the payload.
  static constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 31;
};

}  // namespace xpv

#endif  // XPV_TREE_TREE_IO_H_
