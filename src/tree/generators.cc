#include "tree/generators.h"

#include <cassert>
#include <functional>
#include <vector>

namespace xpv {

std::string GeneratorLabel(std::size_t i) {
  std::string out;
  out.push_back(static_cast<char>('a' + i % 26));
  if (i >= 26) out.insert(out.begin(), static_cast<char>('a' + (i / 26 - 1) % 26));
  return out;
}

Tree RandomTree(Rng& rng, const RandomTreeOptions& options) {
  assert(options.num_nodes > 0);
  // Phase 1: choose a random parent (uniform over earlier nodes) for each
  // node, respecting max_children.
  std::vector<std::size_t> parent(options.num_nodes, 0);
  std::vector<std::size_t> child_count(options.num_nodes, 0);
  for (std::size_t v = 1; v < options.num_nodes; ++v) {
    std::size_t p;
    do {
      p = rng.Below(v);
    } while (options.max_children != 0 &&
             child_count[p] >= options.max_children);
    parent[v] = p;
    ++child_count[p];
  }
  // Phase 2: collect child lists (attachment order = sibling order) and
  // emit in pre-order through a builder so node ids are document order.
  std::vector<std::vector<std::size_t>> children(options.num_nodes);
  for (std::size_t v = 1; v < options.num_nodes; ++v) {
    children[parent[v]].push_back(v);
  }
  std::vector<std::string> labels(options.num_nodes);
  for (auto& l : labels) {
    l = GeneratorLabel(rng.Below(options.alphabet_size));
  }
  TreeBuilder builder;
  std::function<void(std::size_t)> emit = [&](std::size_t v) {
    builder.Open(labels[v]);
    for (std::size_t c : children[v]) emit(c);
    builder.Close();
  };
  emit(0);
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

Tree BibliographyTree(Rng& rng, std::size_t num_books) {
  TreeBuilder builder;
  builder.Open("bib");
  for (std::size_t i = 0; i < num_books; ++i) {
    builder.Open("book");
    const std::size_t num_authors = 1 + rng.Below(3);
    for (std::size_t a = 0; a < num_authors; ++a) builder.Leaf("author");
    builder.Leaf("title");
    if (rng.Chance(1, 2)) builder.Leaf("year");
    if (rng.Chance(1, 2)) builder.Leaf("publisher");
    builder.Close();
  }
  builder.Close();
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

std::string RestaurantAttributeName(std::size_t i) {
  static const char* kNames[] = {
      "name",     "address",  "phone",    "fax",   "street", "streetnumber",
      "district", "city",     "country",  "price", "style",  "rating",
  };
  constexpr std::size_t kNumNames = sizeof(kNames) / sizeof(kNames[0]);
  if (i < kNumNames) return kNames[i];
  return "attr" + std::to_string(i);
}

Tree RestaurantTree(Rng& rng, std::size_t num_restaurants,
                    std::size_t num_attributes) {
  TreeBuilder builder;
  builder.Open("guide");
  for (std::size_t r = 0; r < num_restaurants; ++r) {
    builder.Open("restaurant");
    for (std::size_t a = 0; a < num_attributes; ++a) {
      // Attributes occasionally missing, so answer sets vary in size.
      if (a < 2 || !rng.Chance(1, 8)) {
        builder.Leaf(RestaurantAttributeName(a));
      }
    }
    builder.Close();
  }
  builder.Close();
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

Tree PathTree(std::size_t num_nodes, std::string_view label) {
  assert(num_nodes > 0);
  TreeBuilder builder;
  for (std::size_t i = 0; i < num_nodes; ++i) builder.Open(label);
  for (std::size_t i = 0; i < num_nodes; ++i) builder.Close();
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

Tree StarTree(std::size_t num_leaves, std::string_view root_label,
              std::string_view leaf_label) {
  TreeBuilder builder;
  builder.Open(root_label);
  for (std::size_t i = 0; i < num_leaves; ++i) builder.Leaf(leaf_label);
  builder.Close();
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

Tree PerfectBinaryTree(std::size_t height, std::size_t alphabet_size) {
  TreeBuilder builder;
  std::function<void(std::size_t, std::size_t)> emit =
      [&](std::size_t level, std::size_t index) {
        builder.Open(GeneratorLabel((level + index) % alphabet_size));
        if (level < height) {
          emit(level + 1, 2 * index);
          emit(level + 1, 2 * index + 1);
        }
        builder.Close();
      };
  emit(0, 0);
  Result<Tree> result = std::move(builder).Finish();
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace xpv
