// Synthetic tree generators for tests, examples and benchmarks.
//
// The paper has no experimental section; these workloads stand in for the
// XML documents its examples reference (the `bib.xml` bibliography of the
// introduction, the restaurant-attribute motivation of Section 1) plus
// shape-extreme trees (paths, stars) and uniformly random trees used to
// probe the complexity bounds.
#ifndef XPV_TREE_GENERATORS_H_
#define XPV_TREE_GENERATORS_H_

#include <cstddef>

#include "common/rng.h"
#include "tree/tree.h"

namespace xpv {

/// Options for RandomTree.
struct RandomTreeOptions {
  std::size_t num_nodes = 16;
  /// Number of distinct labels; labels are "a", "b", ..., cycling through
  /// letter pairs past 26.
  std::size_t alphabet_size = 3;
  /// Maximum number of children per node (0 = unbounded).
  std::size_t max_children = 0;
};

/// Uniformly-shaped random tree: each new node attaches beneath a random
/// existing node; nodes are renumbered to pre-order.
Tree RandomTree(Rng& rng, const RandomTreeOptions& options);

/// Label string used by the random generators for index i: "a".."z",
/// then "aa", "ab", ...
std::string GeneratorLabel(std::size_t i);

/// Bibliography-shaped document mirroring the paper's introduction:
///   bib ( book ( author+ title year? publisher? )* )
/// Each book has 1..3 authors; year/publisher appear with probability 1/2.
Tree BibliographyTree(Rng& rng, std::size_t num_books);

/// Restaurant guide with `num_attributes` attribute children per restaurant
/// (name, address, phone, ...), modeling the paper's "n can easily get up
/// to 10 or more" motivation for n-ary queries.
Tree RestaurantTree(Rng& rng, std::size_t num_restaurants,
                    std::size_t num_attributes);
/// Attribute label used at position i of a restaurant entry.
std::string RestaurantAttributeName(std::size_t i);

/// Unary chain a(a(...a)) with `num_nodes` nodes -- worst case for
/// ancestor/descendant density.
Tree PathTree(std::size_t num_nodes, std::string_view label = "a");

/// Root with `num_leaves` leaf children -- worst case for sibling axes.
Tree StarTree(std::size_t num_leaves, std::string_view root_label = "r",
              std::string_view leaf_label = "a");

/// Perfect binary tree of the given height (height 0 = single node).
Tree PerfectBinaryTree(std::size_t height, std::size_t alphabet_size = 2);

}  // namespace xpv

#endif  // XPV_TREE_GENERATORS_H_
