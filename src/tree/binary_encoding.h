// Binary trees and the firstchild-nextsibling (fcns) encoding of unranked
// trees, used by Section 8 of the paper to lift FO-completeness results
// from binary to unranked trees.
//
// The encoding maps an unranked tree node to a binary tree node whose
// first child (child1) is the node's first child in the unranked tree and
// whose second child (child2) is its next sibling. Missing children are
// filled with a distinguished nil label so the binary tree is "full enough"
// to decode unambiguously -- we instead keep missing children as kNoNode
// and track presence explicitly.
#ifndef XPV_TREE_BINARY_ENCODING_H_
#define XPV_TREE_BINARY_ENCODING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tree/tree.h"

namespace xpv {

/// A binary tree: every node has an optional first child (child1) and an
/// optional second child (child2). Signature of Section 8's FO logic:
/// lab_a, ch1, ch2, ch*.
class BinaryTree {
 public:
  BinaryTree() = default;

  /// Adds a node; children may be kNoNode. Children must already exist.
  NodeId AddNode(std::string_view label, NodeId child1, NodeId child2);

  std::size_t size() const { return label_.size(); }
  /// The designated root (set_root), or the unique parentless node.
  NodeId root() const;
  void set_root(NodeId r) { root_ = r; }

  NodeId child1(NodeId v) const { return child1_[v]; }
  NodeId child2(NodeId v) const { return child2_[v]; }
  NodeId parent(NodeId v) const { return parent_[v]; }
  const std::string& label(NodeId v) const { return label_[v]; }

  /// True iff u = v or v is reachable from u via child1/child2 steps
  /// (the ch* relation of Section 8).
  bool IsAncestorOrSelf(NodeId u, NodeId v) const;
  /// Least common ancestor of u and v.
  NodeId LeastCommonAncestor(NodeId u, NodeId v) const;
  /// Subtree rooted at u as a fresh binary tree (Section 8's t|u).
  BinaryTree Subtree(NodeId u) const;
  std::size_t Depth(NodeId v) const;

  /// Term dump: a(b,-) with '-' marking absent children (omitted when both
  /// children are absent).
  std::string ToTerm() const;

 private:
  std::vector<std::string> label_;
  std::vector<NodeId> child1_;
  std::vector<NodeId> child2_;
  std::vector<NodeId> parent_;
  NodeId root_ = kNoNode;
};

/// Encodes an unranked tree via firstchild-nextsibling. The returned mapping
/// `unranked_to_binary[u]` gives the binary node corresponding to unranked
/// node u (node counts are equal; the encoding is a bijection on nodes).
BinaryTree EncodeFcns(const Tree& t, std::vector<NodeId>* unranked_to_binary);

/// Decodes an fcns-encoded binary tree back to the unranked original.
/// Fails if the binary root has a child2 (the unranked root has no sibling).
Result<Tree> DecodeFcns(const BinaryTree& b);

}  // namespace xpv

#endif  // XPV_TREE_BINARY_ENCODING_H_
