// Query compilation for the batch evaluation service: parse once, simplify,
// classify into the cheapest applicable engine of the paper's hierarchy.
//
// The plan mirrors the complexity landscape of FiliotNTT07:
//
//   kGkpPositive   -- variable-free (N($x)) queries whose Fig. 4 image is a
//                     positive PPLbin expression: the Gottlob-Koch-Pichler
//                     successor-set engine, O(|P| |t|) per start node.
//   kMatrixGeneral -- variable-free queries with complement: the Section 4
//                     Boolean-matrix engine, O(|P| |t|^3 / 64).
//   kNaryAnswer    -- queries with free variables inside PPL: translated to
//                     HCL-(PPLbin) (Fig. 7) and answered by the
//                     output-sensitive Section 7 machinery.
//
// Queries outside PPL (e.g. shared variables across compositions, for-loops
// violating N(for)) are rejected at compile time -- by Theorems in Sections
// 2-3 they are NP-/PSPACE-hard, so the service refuses rather than risking
// exponential work on the serving path.
#ifndef XPV_ENGINE_COMPILED_QUERY_H_
#define XPV_ENGINE_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hcl/ast.h"
#include "ppl/pplbin.h"
#include "xpath/ast.h"

namespace xpv::engine {

/// Which engine a compiled query is dispatched to.
enum class EnginePlan {
  kGkpPositive,
  kMatrixGeneral,
  kNaryAnswer,
};

std::string_view EnginePlanName(EnginePlan plan);

/// A query compiled once and shared (immutably) by every job that uses it,
/// across trees and threads.
struct CompiledQuery {
  /// Original query text (the cache key).
  std::string text;
  /// Parsed + simplified Core XPath 2.0 form.
  xpath::PathPtr path;
  EnginePlan plan;

  /// Plan kGkpPositive / kMatrixGeneral: the Fig. 4 translation image.
  ppl::PplBinPtr pplbin;

  /// Plan kNaryAnswer: the Fig. 7 HCL-(PPLbin) translation and the output
  /// variable tuple (free variables of the query, sorted).
  hcl::HclPtr hcl;
  std::vector<std::string> tuple_vars;
};

/// Parses (abbreviated or core syntax), simplifies, classifies. Fails with
/// InvalidArgument on syntax errors and FragmentViolation outside PPL.
Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    std::string_view text);

}  // namespace xpv::engine

#endif  // XPV_ENGINE_COMPILED_QUERY_H_
