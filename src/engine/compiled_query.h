// Query compilation for the batch evaluation service: the tree-independent
// front end of the compile -> plan -> execute pipeline. CompileQuery
// parses once, simplifies, and classifies into the set of *admissible*
// engines of the paper's complexity hierarchy; choosing among them per
// (query, tree, result shape) is the planner's job (engine/planner.h),
// which has the Tree::Stats cost-model inputs that compilation, by
// design, never sees.
//
// The engines mirror the complexity landscape of FiliotNTT07:
//
//   kGkpPositive   -- variable-free (N($x)) queries whose Fig. 4 image is a
//                     positive PPLbin expression: the Gottlob-Koch-Pichler
//                     successor-set engine, O(|P| |t|) per start node.
//   kMatrixGeneral -- any variable-free query (complement included): the
//                     Section 4 Boolean-matrix engine, O(|P| |t|^3 / 64).
//   kNaryAnswer    -- queries with free variables inside PPL: translated to
//                     HCL-(PPLbin) (Fig. 7) and answered by the
//                     output-sensitive Section 7 machinery.
//
// A positive PPLbin query admits both kGkpPositive and kMatrixGeneral; a
// general one only kMatrixGeneral; an n-ary one only kNaryAnswer.
//
// Queries outside PPL (e.g. shared variables across compositions, for-loops
// violating N(for)) are rejected at compile time -- by Theorems in Sections
// 2-3 they are NP-/PSPACE-hard, so the service refuses rather than risking
// exponential work on the serving path.
#ifndef XPV_ENGINE_COMPILED_QUERY_H_
#define XPV_ENGINE_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fo/acq.h"
#include "hcl/ast.h"
#include "ppl/pplbin.h"
#include "xpath/ast.h"

namespace xpv::engine {

/// An engine a compiled query can be dispatched to.
enum class EnginePlan {
  kGkpPositive,
  kMatrixGeneral,
  kNaryAnswer,
};

std::string_view EnginePlanName(EnginePlan plan);

/// A query compiled once and shared (immutably) by every job that uses it,
/// across trees and threads. Deliberately tree-independent: everything
/// per-(tree, shape) lives in the planner's ExecutionPlan.
struct CompiledQuery {
  /// Original query text, as first submitted.
  std::string text;
  /// Round-tripped canonical surface text: the parsed + simplified form
  /// printed back (binary queries additionally union-normalized via
  /// ppl::Canonicalize), so whitespace / parenthesization / abbreviation
  /// variants of one query share it. This is the QueryCache's primary
  /// key and the PlanMemo key, keeping one cache entry, one plan, and
  /// one RelationCache key family per equivalence class.
  std::string canonical_text;
  /// Parsed + simplified Core XPath 2.0 form.
  xpath::PathPtr path;
  /// Every engine that can evaluate this query, in the order of the
  /// paper's hierarchy (cheapest asymptotics first). Never empty.
  std::vector<EnginePlan> admissible;

  /// Binary queries (kGkpPositive / kMatrixGeneral admissible): the
  /// Fig. 4 translation image, simplified and canonicalized
  /// (ppl/canonical.h) -- so every subtree's surface text is canonical,
  /// which is what the engines key their subrelation lookups on.
  /// Whether it is complement-free is `positive`.
  ppl::PplBinPtr pplbin;
  bool positive = false;
  /// |P| of the pplbin image (0 for n-ary queries), precomputed for the
  /// planner's cost model.
  std::size_t pplbin_size = 0;

  /// kNaryAnswer: the Fig. 7 HCL-(PPLbin) translation and the output
  /// variable tuple (free variables of the query, sorted).
  hcl::HclPtr hcl;
  std::vector<std::string> tuple_vars;
  /// |C| of the HCL image (0 for binary queries), precomputed for the
  /// planner's cost model.
  std::size_t hcl_size = 0;
  /// The Proposition 8 ACQ form of the HCL image, when it is union-free
  /// and alpha-acyclic -- the class the streaming subsystem can serve by
  /// polynomial-delay enumeration (fo/enumerate.h) instead of
  /// materializing the answer set. Null when not enumerable (unions);
  /// tree-independent, so computed once at compile time.
  std::shared_ptr<const fo::ConjunctiveQuery> acq;

  bool Admits(EnginePlan engine) const;
};

/// Parses (abbreviated or core syntax), simplifies, classifies. Fails with
/// InvalidArgument on syntax errors and FragmentViolation outside PPL.
Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    std::string_view text);

}  // namespace xpv::engine

#endif  // XPV_ENGINE_COMPILED_QUERY_H_
