// Batched parallel query evaluation -- the serving layer over the paper's
// engines.
//
// A QueryService accepts batches of (document, query-text, result-shape)
// jobs and:
//
//   1. compiles each distinct query text once (QueryCache) into a
//      tree-independent CompiledQuery recording every admissible engine,
//   2. plans each job per (compiled query, tree, result shape) with the
//      cost-based planner (engine/planner.h), choosing GkpEngine,
//      MatrixEngine, or the Section 7 answer machinery from Tree::Stats
//      and taking the monadic row-restricted fast path when the caller
//      only consumes a node set / boolean / count,
//   3. executes jobs across a fixed thread pool with a *shard-aware*
//      scheduler: jobs are grouped by the DocumentStore shard their
//      document resides in, each worker drains "its" shard group first
//      (maximizing axis-cache and plan-memo affinity within a shard) and
//      then work-steals from the remaining groups so no worker idles
//      while another shard still has jobs.
//
// Jobs address their document either by raw `Tree*` (caller-owned, cache
// shared for the duration of one batch) or -- preferably -- by DocumentId
// into a DocumentStore, whose per-document AxisCache persists across
// batches: a document queried by many batches materializes each axis
// relation once in its lifetime, not once per batch.
//
// Admission control. In front of the synchronous EvaluateBatch path the
// service offers a bounded asynchronous front door: TrySubmit() enqueues a
// batch if the submission queue has room and returns kOverloaded
// otherwise, giving callers explicit backpressure instead of unbounded
// memory growth. A dispatcher thread admits queued batches while fewer
// than `max_inflight_batches` are running -- open streams (below) count
// against the same bound. Each batch may carry a deadline and can be
// cancelled through its BatchHandle; both are checked between jobs -- a
// job observed after the deadline/cancellation reports
// kDeadlineExceeded/kCancelled without running -- AND inside long-running
// n-ary jobs, whose evaluation observes the batch's CancelToken between
// recursion steps and stops cooperatively with the same statuses. An
// accepted batch is never dropped: even service destruction drains the
// queue first. ServiceStats snapshots the queued/running/completed/
// rejected counters plus the store's per-shard cache hit rates for
// monitoring (see examples/batch_server.cc).
//
// Streaming. OpenStream() returns a QueryStream cursor
// (engine/query_stream.h) that serves a query's answers incrementally --
// n-ary answers by polynomial-delay enumeration where the query admits
// it -- instead of materializing the tuple set into a QueryResult. A
// stream pins its document (correct across concurrent Remove/re-Intern),
// occupies one inflight slot until closed or drained, and honors its
// deadline and Cancel() between tuples. Batch jobs requesting
// ResultShape::kTupleStream are rejected: the streaming shape is only
// reachable through OpenStream.
//
// Results are deterministic: each job writes only its own result slot and
// every engine is a pure function of (tree, compiled query), so the output
// vector is byte-identical across thread counts, shard counts, and
// scheduling orders.
#ifndef XPV_ENGINE_QUERY_SERVICE_H_
#define XPV_ENGINE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bit_matrix.h"
#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/planner.h"
#include "engine/query_cache.h"
#include "engine/query_stream.h"
#include "engine/thread_pool.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"
#include "xpath/eval.h"

namespace xpv::ppl {
struct MatrixEngineStats;
}  // namespace xpv::ppl

namespace xpv::engine {

/// One unit of work: evaluate `query` on one document, addressed either by
/// id into the service's DocumentStore (preferred: per-document caches
/// persist across batches and the scheduler groups jobs by shard) or by
/// raw tree pointer (shim for caller-owned trees; the tree must stay alive
/// until the batch returns). Setting both is an error.
struct QueryJob {
  const Tree* tree = nullptr;
  DocumentId document = kNoDocument;
  std::string query;
  /// What this job's caller consumes (see engine/planner.h). Shapes other
  /// than kFullRelation unlock the monadic row-restricted fast path.
  ResultShape shape = ResultShape::kFullRelation;
  /// Tests and ablations only: force a specific engine instead of the
  /// planner's cost-based choice. Must be admissible for the query
  /// (InvalidArgument otherwise). Bypasses the per-document plan memo.
  std::optional<EnginePlan> engine_override;
  /// Tests and ablations only: force the matrix representation (dense /
  /// sparse / auto) instead of the planner's crossover decision. Only
  /// meaningful for binary (PPLbin) queries (InvalidArgument otherwise);
  /// without an engine_override it routes the job to the matrix engine.
  /// Bypasses the per-document plan memo.
  std::optional<MatrixRepr> repr_override;
  /// Tests and ablations only: disable the planner's composition-chain
  /// reassociation DP so the job evaluates the query exactly as parsed --
  /// the baseline side of association-order differentials. Bypasses the
  /// per-document plan memo.
  bool force_parse_order = false;
};

/// Outcome of one job. Which payload fields are populated follows the
/// job's requested shape (the table in engine/planner.h):
///
///   kFullRelation  binary: relation + from_root     n-ary: tuples
///   kFromRootSet   binary: from_root                n-ary: tuples
///   kBoolean       boolean (from-root set / tuple set nonempty)
///   kCount         count (|from-root set| / |tuple set|)
struct QueryResult {
  /// Non-OK when the query failed to compile (syntax / fragment), the job
  /// was malformed, or the job was skipped by admission control:
  /// kDeadlineExceeded / kCancelled mark jobs whose batch deadline passed
  /// or was cancelled before the job started (such jobs never run; jobs
  /// already running always finish with their real result). Engine fields
  /// are empty whenever status is non-OK.
  Status status;
  /// The planner's decision that produced this result (valid when status
  /// is OK): engine, shape, row restriction, estimated costs.
  ExecutionPlan plan;

  /// Binary engines: the full relation q^bin_P(t) (kFullRelation only)
  /// and its monadic from-the-root restriction. Matrix-engine results
  /// that evaluated sparsely densify into `relation` while the tree is
  /// under the dense ceiling (so the payload is byte-identical across
  /// representations); above it -- trees where no dense n x n form can
  /// exist -- the run-list result is returned in `relation_sparse`
  /// instead and `relation` stays empty.
  BitMatrix relation;
  std::shared_ptr<const SparseBoolMatrix> relation_sparse;
  BitVector from_root;

  /// kNaryAnswer: the answer set q_{C,x}(t).
  xpath::TupleSet tuples;

  /// kBoolean / kCount payloads.
  bool boolean = false;
  std::uint64_t count = 0;
};

struct QueryServiceOptions {
  /// Worker threads for batch evaluation. 0 = hardware concurrency;
  /// 1 = evaluate inline on the calling thread (no pool).
  std::size_t num_threads = 0;
  /// Corpus for jobs addressed by DocumentId. Not owned; must outlive the
  /// service. Null = only Tree* jobs are accepted.
  DocumentStore* document_store = nullptr;
  /// Admission control: maximum batches waiting in the TrySubmit queue
  /// before new submissions are rejected with kOverloaded. 0 = unbounded.
  std::size_t max_queued_batches = 64;
  /// Maximum admitted batches executing concurrently (they share the one
  /// thread pool; bounding this bounds the service's transient result
  /// memory). 0 = unbounded.
  std::size_t max_inflight_batches = 2;
};

/// Per-batch submission options for the asynchronous TrySubmit path.
struct BatchOptions {
  /// Jobs not yet started when this instant passes report
  /// kDeadlineExceeded instead of running. Unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

namespace internal {
struct BatchState;
}  // namespace internal

/// Handle to a batch accepted by QueryService::TrySubmit. Cheap to copy;
/// all copies refer to the same batch.
///
/// Thread safety: Wait/Cancel/done may be called concurrently from any
/// thread. Wait() blocks until the batch finishes and moves the results
/// out -- call it once per batch (later calls return an empty vector).
/// The handle may outlive the service; a batch accepted before the
/// service's destructor began is always completed by it.
class BatchHandle {
 public:
  BatchHandle() = default;

  /// False for default-constructed handles.
  bool valid() const { return state_ != nullptr; }
  /// Non-blocking: has the batch finished?
  bool done() const;
  /// Blocks until the batch finishes; results[i] corresponds to the
  /// submitted jobs[i]. Moves the results out of the handle.
  std::vector<QueryResult> Wait();
  /// Requests cancellation: jobs not yet started report kCancelled; jobs
  /// already running finish normally. Idempotent; never blocks.
  void Cancel();

 private:
  friend class QueryService;
  explicit BatchHandle(std::shared_ptr<internal::BatchState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::BatchState> state_;
};

/// Snapshot of the admission front-end and execution counters. Batch
/// counters cover the TrySubmit path; job counters cover every executed
/// job (TrySubmit and synchronous EvaluateBatch/Evaluate alike). The
/// invariant `batches_accepted == batches_completed + batches_queued +
/// batches_running` holds at every quiescent point.
struct ServiceStats {
  std::uint64_t batches_accepted = 0;   // TrySubmit returned a handle
  std::uint64_t batches_rejected = 0;   // TrySubmit returned kOverloaded
  std::uint64_t batches_completed = 0;  // accepted batches finished
  std::size_t batches_queued = 0;       // waiting for admission now
  std::size_t batches_running = 0;      // admitted, executing now
  /// Job slots finalized with a real result -- including jobs that
  /// finished with an error status (malformed addressing, unknown id,
  /// compile failure). Excludes jobs skipped by admission control and
  /// jobs interrupted mid-run by cooperative cancellation, so for every
  /// batch: slots == completed + cancelled + expired.
  std::uint64_t jobs_completed = 0;
  /// Jobs skipped before starting OR stopped mid-run because their
  /// batch was cancelled.
  std::uint64_t jobs_cancelled = 0;
  /// Jobs skipped before starting OR stopped mid-run because their
  /// batch deadline passed.
  std::uint64_t jobs_deadline_exceeded = 0;
  /// Streams: opened ever, closed/drained/failed ever, and the gauge of
  /// streams currently holding an inflight slot.
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::size_t streams_open = 0;
  /// Tuples delivered across all streams.
  std::uint64_t stream_tuples = 0;
  /// Matrix-engine kernel counters aggregated across every executed job
  /// (ppl::MatrixEngineStats semantics: a product counts dense when any
  /// operand forced a packed-row kernel, sparse only for pure run-merge
  /// SpGEMM; a crossover is a mid-evaluation re-encoding between the
  /// representations).
  std::uint64_t dense_products = 0;
  std::uint64_t sparse_products = 0;
  std::uint64_t repr_crossovers = 0;
  /// Subrelation-cache consults by executed jobs (ppl/relation_cache.h):
  /// hits served a materialized interior subexpression without
  /// recomputing it; misses evaluated and (budget permitting) inserted
  /// it. GKP jobs consult at whole-relation granularity, matrix jobs per
  /// interior node. Stream-served consults are visible in the store's
  /// relation_hits/relation_misses, not here (same split as the kernel
  /// counters above).
  std::uint64_t subrel_hits = 0;
  std::uint64_t subrel_misses = 0;
  /// Gauge: resident bytes across every document's subrelation cache.
  std::size_t subrel_bytes = 0;
  /// Composition chains whose association the planner's DP changed,
  /// summed over executed matrix plans (a memoized plan counts each time
  /// a job runs it).
  std::uint64_t chains_reassociated = 0;
  /// Spill-to-disk residency, aggregated over the store's shards
  /// (DocumentStoreStats semantics): documents written out / decoded back
  /// / re-adopted while still alive, total segment bytes memory-mapped,
  /// and the gauges of in-RAM vs on-disk-only documents. All zero when
  /// the store has no spill_dir.
  std::uint64_t doc_spills = 0;
  std::uint64_t doc_reloads = 0;
  std::uint64_t doc_reattaches = 0;
  std::uint64_t mmap_bytes = 0;
  std::size_t resident_docs = 0;
  std::size_t spilled_docs = 0;
  std::size_t resident_doc_bytes = 0;
  /// Per-shard corpus counters (empty when the service has no store).
  std::vector<DocumentStoreStats> shard_stats;
};

/// Compile-plan-execute service over the three engines. Thread-safe:
/// concurrent EvaluateBatch / TrySubmit calls share the query cache, the
/// admission queue, and the pool.
///
/// Blocking behavior: Evaluate and EvaluateBatch block the calling thread
/// until their results are complete (EvaluateBatch bypasses the admission
/// queue). TrySubmit never blocks beyond a mutex; stats() never blocks
/// beyond the mutexes it snapshots. The destructor blocks until every
/// accepted batch has completed.
class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates one query immediately on the calling thread.
  QueryResult Evaluate(const Tree& tree, std::string_view query,
                       ResultShape shape = ResultShape::kFullRelation);
  /// Evaluates one query on a stored document (uses its persistent axis
  /// cache and plan memo). NotFound for unknown ids; InvalidArgument when
  /// the service has no store.
  QueryResult Evaluate(DocumentId document, std::string_view query,
                       ResultShape shape = ResultShape::kFullRelation);

  /// Evaluates a batch synchronously; results[i] corresponds to jobs[i].
  /// Jobs on the same Tree pointer share one AxisCache for the duration of
  /// the batch; jobs on the same DocumentId share the store's persistent
  /// per-document cache, across batches. Jobs are scheduled by resident
  /// shard with cross-shard work stealing.
  std::vector<QueryResult> EvaluateBatch(const std::vector<QueryJob>& jobs);

  /// Admission-controlled asynchronous submission. Returns a handle whose
  /// Wait() yields the results, or kOverloaded when `max_queued_batches`
  /// batches are already waiting -- the rejected batch is not retained and
  /// none of its jobs run. Accepted batches always complete (rejections
  /// never lose accepted work; see ServiceStats).
  Result<BatchHandle> TrySubmit(std::vector<QueryJob> jobs,
                                BatchOptions options = {});

  /// Opens a streaming cursor over the query's answers on a stored
  /// document (pinning it for the stream's lifetime) or a caller-owned
  /// tree (which must outlive the stream). Never blocks: kOverloaded
  /// when all `max_inflight_batches` slots are taken (by batches or
  /// other open streams) or the service is shutting down; compile
  /// errors and unknown ids surface as on Evaluate. The stream may
  /// outlive the service -- during destruction, open streams stop
  /// counting against the inflight bound so accepted batches always
  /// drain. See engine/query_stream.h for semantics.
  Result<QueryStream> OpenStream(DocumentId document, std::string_view query,
                                 StreamOptions options = {});
  Result<QueryStream> OpenStream(const Tree& tree, std::string_view query,
                                 StreamOptions options = {});

  /// Snapshot of admission/execution counters and per-shard store stats.
  ServiceStats stats() const;

  /// Compiled-query cache (hit/miss stats for monitoring and tests).
  const QueryCache& cache() const { return cache_; }

  /// Effective worker count (>= 1).
  std::size_t num_threads() const { return num_threads_; }

  /// The corpus this service serves from (may be null).
  DocumentStore* document_store() const { return store_; }

 private:
  /// `precompiled` (optional) is the batch-prepare pass's QueryCache
  /// result for this job's text; when set, RunJob skips its own cache
  /// lookup so each job costs exactly one lookup per batch.
  QueryResult RunJob(
      const Tree* tree, const std::string& query, ResultShape shape,
      const std::optional<EnginePlan>& engine_override,
      const std::optional<MatrixRepr>& repr_override, bool force_parse_order,
      const std::shared_ptr<AxisCache>& tree_cache,
      const std::shared_ptr<PlanMemo>& plan_memo,
      const std::shared_ptr<ppl::RelationCache>& relations,
      const Result<std::shared_ptr<const CompiledQuery>>* precompiled =
          nullptr,
      CancelToken cancel = {});
  /// Shared tail of the OpenStream overloads: compiles, plans, takes an
  /// inflight slot, and builds the stream state.
  Result<QueryStream> OpenStreamImpl(
      DocumentPtr doc, const Tree* tree, std::shared_ptr<AxisCache> cache,
      std::shared_ptr<ppl::RelationCache> relations, std::string_view query,
      StreamOptions options);

  /// Resolves documents/caches and builds the per-shard job groups.
  void PrepareRun(internal::BatchState& run);
  /// Runs one claimed job (admission checks, then RunJob).
  void RunOne(internal::BatchState& run, std::size_t job_index);
  /// Drains the worker's own shard group, then steals from the others.
  void RunBatchWorker(internal::BatchState& run, std::size_t worker_index);
  /// Executes a prepared run inline or across the pool; marks the batch
  /// done (and updates admission counters for admitted batches) when the
  /// last worker finishes. Returns immediately when the pool is used.
  void ExecuteRun(std::shared_ptr<internal::BatchState> run);
  /// Marks `run` complete and wakes waiters / the dispatcher.
  void FinishRun(internal::BatchState& run);
  /// Dispatcher thread: admits queued batches while capacity allows.
  void DispatcherLoop();
  /// Folds one matrix-engine run's kernel counters into the service-wide
  /// atomics snapshotted by stats().
  void AccumulateEngineStats(const ppl::MatrixEngineStats& s);

  std::size_t num_threads_;
  QueryCache cache_;
  DocumentStore* store_;  // not owned

  // Admission front-end. adm_->mu guards the queue, the batch counters,
  // and the inflight/stream gauges (the mutex/cv/gauges live in the
  // shared AdmissionShared so streams outliving the service can still
  // release their slot); job counters are atomics written from workers.
  const std::size_t max_queued_batches_;
  const std::size_t max_inflight_batches_;
  const std::shared_ptr<internal::AdmissionShared> adm_ =
      std::make_shared<internal::AdmissionShared>();
  std::deque<std::shared_ptr<internal::BatchState>> adm_queue_
      XPV_GUARDED_BY(adm_->mu);
  bool stopping_ XPV_GUARDED_BY(adm_->mu) = false;
  std::uint64_t batches_accepted_ XPV_GUARDED_BY(adm_->mu) = 0;
  std::uint64_t batches_rejected_ XPV_GUARDED_BY(adm_->mu) = 0;
  std::uint64_t batches_completed_ XPV_GUARDED_BY(adm_->mu) = 0;
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};
  std::atomic<std::uint64_t> jobs_deadline_exceeded_{0};
  // Matrix-engine kernel counters (ServiceStats), accumulated per job
  // from the engine's MatrixEngineStats after each matrix-plan execution.
  std::atomic<std::uint64_t> dense_products_{0};
  std::atomic<std::uint64_t> sparse_products_{0};
  std::atomic<std::uint64_t> repr_crossovers_{0};
  // Subrelation-cache consults and DP-changed chains (ServiceStats),
  // accumulated per executed job.
  std::atomic<std::uint64_t> subrel_hits_{0};
  std::atomic<std::uint64_t> subrel_misses_{0};
  std::atomic<std::uint64_t> chains_reassociated_{0};
  std::thread dispatcher_;

  // Declared last: destroyed first, joining workers (and thus finishing
  // every in-flight batch) before the admission state above goes away.
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_SERVICE_H_
