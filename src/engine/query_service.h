// Batched parallel query evaluation -- the serving layer over the paper's
// engines.
//
// A QueryService accepts batches of (tree, query-text, result-shape) jobs
// and:
//
//   1. compiles each distinct query text once (QueryCache) into a
//      tree-independent CompiledQuery recording every admissible engine,
//   2. plans each job per (compiled query, tree, result shape) with the
//      cost-based planner (engine/planner.h), choosing GkpEngine,
//      MatrixEngine, or the Section 7 answer machinery from Tree::Stats
//      and taking the monadic row-restricted fast path when the caller
//      only consumes a node set / boolean / count,
//   3. executes jobs across a fixed thread pool, sharing one AxisCache per
//      distinct tree in the batch so concurrent jobs on the same tree
//      materialize each axis relation matrix exactly once; jobs on stored
//      documents additionally share the store's per-document plan memo.
//
// Jobs address their document either by raw `Tree*` (caller-owned, cache
// shared for the duration of one batch) or -- preferably -- by DocumentId
// into a DocumentStore, whose per-document AxisCache persists across
// batches: a document queried by many batches materializes each axis
// relation once in its lifetime, not once per batch.
//
// Results are deterministic: each job writes only its own result slot and
// every engine is a pure function of (tree, compiled query), so the output
// vector is byte-identical across thread counts and scheduling orders.
#ifndef XPV_ENGINE_QUERY_SERVICE_H_
#define XPV_ENGINE_QUERY_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/planner.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"
#include "xpath/eval.h"

namespace xpv::engine {

/// One unit of work: evaluate `query` on one document, addressed either by
/// id into the service's DocumentStore (preferred: per-document caches
/// persist across batches) or by raw tree pointer (shim for caller-owned
/// trees; the tree must stay alive until the batch returns). Setting both
/// is an error.
struct QueryJob {
  const Tree* tree = nullptr;
  DocumentId document = kNoDocument;
  std::string query;
  /// What this job's caller consumes (see engine/planner.h). Shapes other
  /// than kFullRelation unlock the monadic row-restricted fast path.
  ResultShape shape = ResultShape::kFullRelation;
  /// Tests and ablations only: force a specific engine instead of the
  /// planner's cost-based choice. Must be admissible for the query
  /// (InvalidArgument otherwise). Bypasses the per-document plan memo.
  std::optional<EnginePlan> engine_override;
};

/// Outcome of one job. Which payload fields are populated follows the
/// job's requested shape (the table in engine/planner.h):
///
///   kFullRelation  binary: relation + from_root     n-ary: tuples
///   kFromRootSet   binary: from_root                n-ary: tuples
///   kBoolean       boolean (from-root set / tuple set nonempty)
///   kCount         count (|from-root set| / |tuple set|)
struct QueryResult {
  /// Non-OK when the query failed to compile (syntax / fragment) or the
  /// job was malformed; engine fields are then empty.
  Status status;
  /// The planner's decision that produced this result (valid when status
  /// is OK): engine, shape, row restriction, estimated costs.
  ExecutionPlan plan;

  /// Binary engines: the full relation q^bin_P(t) (kFullRelation only)
  /// and its monadic from-the-root restriction.
  BitMatrix relation;
  BitVector from_root;

  /// kNaryAnswer: the answer set q_{C,x}(t).
  xpath::TupleSet tuples;

  /// kBoolean / kCount payloads.
  bool boolean = false;
  std::uint64_t count = 0;
};

struct QueryServiceOptions {
  /// Worker threads for batch evaluation. 0 = hardware concurrency;
  /// 1 = evaluate inline on the calling thread (no pool).
  std::size_t num_threads = 0;
  /// Corpus for jobs addressed by DocumentId. Not owned; must outlive the
  /// service. Null = only Tree* jobs are accepted.
  DocumentStore* document_store = nullptr;
};

/// Compile-plan-execute service over the three engines. Thread-safe:
/// concurrent EvaluateBatch calls share the query cache and the pool.
class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates one query immediately on the calling thread.
  QueryResult Evaluate(const Tree& tree, std::string_view query,
                       ResultShape shape = ResultShape::kFullRelation);
  /// Evaluates one query on a stored document (uses its persistent axis
  /// cache and plan memo).
  QueryResult Evaluate(DocumentId document, std::string_view query,
                       ResultShape shape = ResultShape::kFullRelation);

  /// Evaluates a batch; results[i] corresponds to jobs[i]. Jobs on the
  /// same Tree pointer share one AxisCache for the duration of the batch;
  /// jobs on the same DocumentId share the store's persistent per-document
  /// cache, across batches.
  std::vector<QueryResult> EvaluateBatch(const std::vector<QueryJob>& jobs);

  /// Compiled-query cache (hit/miss stats for monitoring and tests).
  const QueryCache& cache() const { return cache_; }

  /// Effective worker count (>= 1).
  std::size_t num_threads() const { return num_threads_; }

  /// The corpus this service serves from (may be null).
  DocumentStore* document_store() const { return store_; }

 private:
  QueryResult RunJob(const Tree* tree, const std::string& query,
                     ResultShape shape,
                     const std::optional<EnginePlan>& engine_override,
                     const std::shared_ptr<AxisCache>& tree_cache,
                     const std::shared_ptr<PlanMemo>& plan_memo);

  std::size_t num_threads_;
  QueryCache cache_;
  DocumentStore* store_;              // not owned
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_SERVICE_H_
