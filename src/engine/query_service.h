// Batched parallel query evaluation -- the serving layer over the paper's
// engines.
//
// A QueryService accepts batches of (tree, query-text) jobs and:
//
//   1. compiles each distinct query text once (QueryCache),
//   2. plans it onto the cheapest applicable engine (CompileQuery):
//      positive PPLbin -> ppl::GkpEngine, general PPLbin ->
//      ppl::MatrixEngine, n-ary PPL -> the Section 7 answer machinery,
//   3. executes jobs across a fixed thread pool, sharing one AxisCache per
//      distinct tree in the batch so concurrent jobs on the same tree
//      materialize each axis relation matrix exactly once.
//
// Jobs address their document either by raw `Tree*` (caller-owned, cache
// shared for the duration of one batch) or -- preferably -- by DocumentId
// into a DocumentStore, whose per-document AxisCache persists across
// batches: a document queried by many batches materializes each axis
// relation once in its lifetime, not once per batch.
//
// Results are deterministic: each job writes only its own result slot and
// every engine is a pure function of (tree, compiled query), so the output
// vector is byte-identical across thread counts and scheduling orders.
#ifndef XPV_ENGINE_QUERY_SERVICE_H_
#define XPV_ENGINE_QUERY_SERVICE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"
#include "xpath/eval.h"

namespace xpv::engine {

/// One unit of work: evaluate `query` on one document, addressed either by
/// id into the service's DocumentStore (preferred: per-document caches
/// persist across batches) or by raw tree pointer (shim for caller-owned
/// trees; the tree must stay alive until the batch returns). Setting both
/// is an error.
struct QueryJob {
  const Tree* tree = nullptr;
  DocumentId document = kNoDocument;
  std::string query;
};

/// Outcome of one job.
struct QueryResult {
  /// Non-OK when the query failed to compile (syntax / fragment) or the
  /// job was malformed; engine fields are then empty.
  Status status;
  /// Which engine produced the result (valid when status is OK).
  EnginePlan plan = EnginePlan::kMatrixGeneral;

  /// Binary plans (kGkpPositive, kMatrixGeneral): the full relation
  /// q^bin_P(t) and its monadic from-the-root restriction.
  BitMatrix relation;
  BitVector from_root;

  /// N-ary plan (kNaryAnswer): the answer set q_{C,x}(t).
  xpath::TupleSet tuples;
};

struct QueryServiceOptions {
  /// Worker threads for batch evaluation. 0 = hardware concurrency;
  /// 1 = evaluate inline on the calling thread (no pool).
  std::size_t num_threads = 0;
  /// Corpus for jobs addressed by DocumentId. Not owned; must outlive the
  /// service. Null = only Tree* jobs are accepted.
  DocumentStore* document_store = nullptr;
};

/// Compile-plan-execute service over the three engines. Thread-safe:
/// concurrent EvaluateBatch calls share the query cache and the pool.
class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates one query immediately on the calling thread.
  QueryResult Evaluate(const Tree& tree, std::string_view query);
  /// Evaluates one query on a stored document (uses its persistent cache).
  QueryResult Evaluate(DocumentId document, std::string_view query);

  /// Evaluates a batch; results[i] corresponds to jobs[i]. Jobs on the
  /// same Tree pointer share one AxisCache for the duration of the batch;
  /// jobs on the same DocumentId share the store's persistent per-document
  /// cache, across batches.
  std::vector<QueryResult> EvaluateBatch(const std::vector<QueryJob>& jobs);

  /// Compiled-query cache (hit/miss stats for monitoring and tests).
  const QueryCache& cache() const { return cache_; }

  /// Effective worker count (>= 1).
  std::size_t num_threads() const { return num_threads_; }

  /// The corpus this service serves from (may be null).
  DocumentStore* document_store() const { return store_; }

 private:
  QueryResult RunJob(const Tree* tree, const std::string& query,
                     const std::shared_ptr<AxisCache>& tree_cache);

  std::size_t num_threads_;
  QueryCache cache_;
  DocumentStore* store_;              // not owned
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_SERVICE_H_
