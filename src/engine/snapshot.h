// Versioned, checksummed on-disk segments for the document corpus.
//
// One segment file (`doc-<id>.xpvseg`) holds one document: its identity,
// its fully *indexed* tree (tree/tree_io.h -- reload never re-parses and
// never re-runs BuildIndexes), and optionally the interval-run forms of
// whichever axis relations were materialized when the segment was
// written, so a reloaded document's AxisCache starts warm. A snapshot
// directory additionally carries a `MANIFEST.xpv` naming the id set and
// the next fresh id, written last so a directory is either a complete
// snapshot or not a snapshot at all.
//
// Segment layout (all integers little-endian):
//
//   file header   magic "XPVSNAP1" | u32 version | u32 section count
//                 | u64 total file bytes | u32 CRC32(header)
//   section * N   u32 'SECT' | u32 type | u64 payload bytes
//                 | u32 CRC32(payload) | u32 CRC32(section header)
//                 | payload...
//
// Sections appear in ascending type order (meta, tree, axes) with no
// duplicates; the axes section is optional. Every failure mode is a
// typed Status, never UB or abort: torn/truncated/bit-flipped bytes and
// reordered sections are kDataLoss (message naming the bad section),
// a newer format version is kInvalidArgument, a missing file is
// kNotFound, and ENOSPC on write is kResourceExhausted. Loads go
// through a read-only MappedFile, so the page cache -- not a userspace
// copy -- backs the bytes while they are decoded, and CRC verification
// is one streaming pass over the map.
//
// This layer is deliberately store-agnostic: it speaks u64 document ids,
// Tree, and AxisCache. Residency policy (spill, fault-in, LRU) lives in
// engine/document_store.h.
#ifndef XPV_ENGINE_SNAPSHOT_H_
#define XPV_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bool_matrix.h"
#include "common/status.h"
#include "tree/axes.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"

namespace xpv::engine {

/// Read-only memory map of a whole file. Pages fault in lazily as the
/// decoder touches them; the map is released on destruction. Move-only.
class MappedFile {
 public:
  /// kNotFound when the path does not exist; kInternal for other OS
  /// errors. Empty files map to {nullptr, 0} successfully.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Current segment / manifest format version. Loaders accept this
/// version only; a higher value on disk (written by a future build)
/// fails with kInvalidArgument rather than a misdecoded payload.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Section types, in their required file order.
enum class SectionType : std::uint32_t {
  kMeta = 1,
  kTree = 2,
  kAxes = 3,
};

/// Human-readable section name for error messages ("meta", "tree",
/// "axes", or "unknown").
std::string_view SectionTypeName(std::uint32_t type);

/// Identity carried inside a segment's meta section.
struct SegmentMeta {
  std::uint64_t document_id = 0;
  std::string name;
  /// True when the document was created by DocumentStore::Intern(); the
  /// loader re-derives the intern key from the decoded tree.
  bool interned = false;
};

/// A fully decoded segment.
struct LoadedSegment {
  SegmentMeta meta;
  Tree tree;
  /// Persisted axis relations in ascending Axis order (may be empty).
  std::vector<std::pair<Axis, IntervalMatrix>> axes;
  /// Bytes of the segment file that were memory-mapped for the load
  /// (feeds the store's mmap_bytes counter).
  std::size_t mapped_bytes = 0;
};

/// Segment file name for a document id: "doc-<id>.xpvseg".
std::string SegmentFileName(std::uint64_t document_id);

/// Serializes one document into `path` atomically (tmp file + fsync +
/// rename): a reader never observes a half-written segment, and a crash
/// mid-write leaves the previous segment (or no file) behind. `cache`
/// may be null; when present, every currently materialized axis relation
/// is persisted in interval-run form so reload starts warm.
Status WriteDocumentSegment(const std::string& path, std::uint64_t document_id,
                            const std::string& name, const Tree& tree,
                            const AxisCache* cache, bool interned);

/// Maps and decodes one segment, verifying the header, section framing,
/// and every section CRC before any payload is interpreted.
Result<LoadedSegment> LoadDocumentSegment(const std::string& path);

/// Converts a decoded axis relation into the representation a reloaded
/// cache would have built itself: dense below the cache's auto ceiling
/// (or when forced dense), interval runs otherwise -- so a reloaded
/// AxisCache is bit-for-bit the cache a fresh build would produce.
std::unique_ptr<const BoolMatrix> AxisMatrixForBacking(IntervalMatrix m,
                                                       bool dense);

/// Snapshot directory manifest: the id set and the allocator watermark.
struct SnapshotManifest {
  std::uint64_t next_document_id = 1;
  std::vector<std::uint64_t> document_ids;
};

/// Writes `MANIFEST.xpv` into `dir` atomically. Called last by
/// DocumentStore::SaveSnapshot: a directory without a valid manifest is
/// not a snapshot.
Status WriteManifest(const std::string& dir, const SnapshotManifest& manifest);

/// Loads and validates `dir`'s manifest. kNotFound when absent.
Result<SnapshotManifest> LoadManifest(const std::string& dir);

}  // namespace xpv::engine

#endif  // XPV_ENGINE_SNAPSHOT_H_
