#include "engine/query_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "hcl/answer.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"

namespace xpv::engine {

namespace internal {

/// A document resolved once per distinct id per batch; the cache/memo are
/// the store's persistent ones, so repeats across batches hit.
struct ResolvedDoc {
  DocumentPtr doc;
  std::shared_ptr<AxisCache> cache;
  std::shared_ptr<PlanMemo> plans;
  std::shared_ptr<ppl::RelationCache> relations;
  /// Why resolution failed when doc == nullptr: the store Fetch's typed
  /// status (kNotFound, or kDataLoss when a spilled segment is corrupt).
  Status fetch_status;
};

/// Everything one batch needs from submission to completion. Shared by
/// the submitting caller (through BatchHandle), the dispatcher, and the
/// pool workers; the last finisher marks it done.
struct BatchState {
  // Submission.
  std::vector<QueryJob> owned_jobs;        // TrySubmit path owns its jobs
  const std::vector<QueryJob>* jobs = nullptr;  // always valid during run
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::atomic<bool> cancelled{false};
  bool admitted = false;  // went through TrySubmit (admission counters)

  // Prepared run state (PrepareRun).
  std::vector<QueryResult> results;
  std::unordered_map<const Tree*, std::shared_ptr<AxisCache>> tree_caches;
  /// Tree*-addressed jobs get a per-batch subrelation cache per distinct
  /// tree (the store's persistent per-document caches cover id-addressed
  /// jobs): jobs of one batch sharing a caller-owned tree still evaluate
  /// each distinct subrelation once.
  std::unordered_map<const Tree*, std::shared_ptr<ppl::RelationCache>>
      tree_relations;
  /// Per-job compiled queries, filled by PrepareRun's CSE pass (empty
  /// for doomed or single-job batches): workers reuse them instead of
  /// re-consulting the QueryCache, so each job costs one cache lookup
  /// per batch no matter which path resolved it.
  std::vector<std::optional<Result<std::shared_ptr<const CompiledQuery>>>>
      compiled;
  std::unordered_map<DocumentId, ResolvedDoc> docs;
  /// Job indices grouped by resident store shard; the last group holds
  /// Tree*-addressed and malformed jobs (no shard affinity).
  std::vector<std::vector<std::size_t>> groups;
  /// One claim cursor per group; workers fetch_add to claim job slots.
  std::unique_ptr<std::atomic<std::size_t>[]> cursors;
  std::atomic<std::size_t> remaining_workers{0};

  // Completion.
  Mutex mu;
  CondVar cv;
  bool done XPV_GUARDED_BY(mu) = false;
};

}  // namespace internal

using internal::BatchState;
using internal::ResolvedDoc;

namespace {

/// Derives the monadic payload from a from-root node set.
void FinishMonadic(QueryResult& result, ResultShape shape, BitVector image) {
  switch (shape) {
    case ResultShape::kFullRelation:
    case ResultShape::kFromRootSet:
    case ResultShape::kTupleStream:  // unreachable: rejected in RunJob
      result.from_root = std::move(image);
      return;
    case ResultShape::kBoolean:
      result.boolean = image.Any();
      return;
    case ResultShape::kCount:
      result.count = image.Count();
      return;
  }
}

}  // namespace

// ----------------------------------------------------------- BatchHandle

bool BatchHandle::done() const {
  if (state_ == nullptr) return false;
  MutexLock lock(state_->mu);
  return state_->done;
}

std::vector<QueryResult> BatchHandle::Wait() {
  if (state_ == nullptr) return {};
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  return std::move(state_->results);
}

void BatchHandle::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------- QueryService

QueryService::QueryService(QueryServiceOptions options)
    : num_threads_(options.num_threads),
      store_(options.document_store),
      max_queued_batches_(options.max_queued_batches),
      max_inflight_batches_(options.max_inflight_batches) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
    if (num_threads_ == 0) num_threads_ = 1;
  }
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() {
  {
    MutexLock lock(adm_->mu);
    stopping_ = true;
  }
  adm_->cv.NotifyAll();
  // The dispatcher drains the queue before exiting (accepted batches are
  // never lost); pool_'s destructor then joins the workers, finishing any
  // batch still in flight before the admission state is destroyed.
  dispatcher_.join();
}

QueryResult QueryService::Evaluate(const Tree& tree, std::string_view query,
                                   ResultShape shape) {
  QueryResult result = RunJob(&tree, std::string(query), shape, std::nullopt,
                              std::nullopt, /*force_parse_order=*/false,
                              std::make_shared<AxisCache>(tree), nullptr,
                              nullptr);
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

QueryResult QueryService::Evaluate(DocumentId document, std::string_view query,
                                   ResultShape shape) {
  QueryResult result;
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  if (store_ == nullptr) {
    result.status = Status::InvalidArgument(
        "job addresses a DocumentId but the service has no DocumentStore");
    return result;
  }
  // Fetch (not Get): a spilled document faults back in transparently, and
  // a genuinely failed fault-in (corrupt or vanished segment) surfaces
  // its typed kDataLoss / kNotFound instead of a generic "unknown id".
  Result<DocumentPtr> fetched = store_->Fetch(document);
  if (!fetched.ok()) {
    result.status = fetched.status();
    return result;
  }
  DocumentPtr doc = std::move(fetched).value();
  return RunJob(&doc->tree(), std::string(query), shape, std::nullopt,
                std::nullopt, /*force_parse_order=*/false,
                store_->AxisCacheFor(document),
                store_->PlanMemoFor(document),
                store_->RelationCacheFor(document));
}

QueryResult QueryService::RunJob(
    const Tree* tree, const std::string& query, ResultShape shape,
    const std::optional<EnginePlan>& engine_override,
    const std::optional<MatrixRepr>& repr_override, bool force_parse_order,
    const std::shared_ptr<AxisCache>& tree_cache,
    const std::shared_ptr<PlanMemo>& plan_memo,
    const std::shared_ptr<ppl::RelationCache>& relations,
    const Result<std::shared_ptr<const CompiledQuery>>* precompiled,
    CancelToken cancel) {
  QueryResult result;
  if (shape == ResultShape::kTupleStream) {
    result.status = Status::InvalidArgument(
        "the tuple-stream shape is served by OpenStream, not batch jobs");
    return result;
  }
  if (tree == nullptr || tree->empty()) {
    result.status = Status::InvalidArgument("job has no tree");
    return result;
  }
  std::optional<Result<std::shared_ptr<const CompiledQuery>>> own_compiled;
  if (precompiled == nullptr) {
    own_compiled.emplace(cache_.GetOrCompile(query));
    precompiled = &*own_compiled;
  }
  const Result<std::shared_ptr<const CompiledQuery>>& compiled = *precompiled;
  if (!compiled.ok()) {
    result.status = compiled.status();
    return result;
  }
  const CompiledQuery& q = **compiled;
  const Tree& t = *tree;

  // Plan stage: per (compiled query, tree, shape), memoized per document.
  // Forced engines and forced representations (tests, ablations) bypass
  // the memo so a forced run never pollutes the planner's cache.
  if (repr_override.has_value() && q.pplbin == nullptr) {
    result.status = Status::InvalidArgument(
        "representation override applies only to binary (PPLbin) queries: " +
        q.text);
    return result;
  }
  ExecutionPlan plan;
  if (engine_override.has_value()) {
    if (!q.Admits(*engine_override)) {
      result.status = Status::InvalidArgument(
          "engine override '" +
          std::string(EnginePlanName(*engine_override)) +
          "' is not admissible for query: " + q.text);
      return result;
    }
    plan = PlanQuery(q, t, shape, engine_override, 0, repr_override,
                     force_parse_order);
  } else if (repr_override.has_value() || force_parse_order) {
    plan = PlanQuery(q, t, shape, {}, 0, repr_override, force_parse_order);
  } else if (plan_memo != nullptr) {
    // Memoized under the canonical text: syntactic variants of one query
    // share one plan entry (mirroring the QueryCache's canonical keying).
    plan = plan_memo->GetOrCompute(
        q.canonical_text, shape, [&] { return PlanQuery(q, t, shape); });
  } else {
    plan = PlanQuery(q, t, shape);
  }
  result.plan = plan;

  // Dense ceiling: a plan that must materialize an n x n BitMatrix is
  // refused on oversized trees -- a clean error instead of an O(n^2)-bit
  // allocation (~125 GB at 1M nodes). Monadic shapes on such trees keep
  // working through interval-backed axis relations.
  if (t.size() > BitMatrix::kMaxDenseNodes &&
      PlanRequiresDenseRelation(q, plan)) {
    result.status = Status::ResourceExhausted(
        "plan " + plan.DebugString() + " requires a dense relation on a " +
        std::to_string(t.size()) + "-node tree (dense ceiling " +
        std::to_string(BitMatrix::kMaxDenseNodes) +
        " nodes); request a monadic result shape instead");
    return result;
  }

  const std::shared_ptr<AxisCache> cache =
      tree_cache != nullptr ? tree_cache : std::make_shared<AxisCache>(t);

  // Executed matrix plans whose chains the DP re-parenthesized evaluate
  // the reassociated form -- same factor order, cheapest association.
  const ppl::PplBinExpr* pplbin = q.pplbin.get();
  if (plan.engine == EnginePlan::kMatrixGeneral &&
      plan.reassociated != nullptr) {
    pplbin = plan.reassociated.get();
    chains_reassociated_.fetch_add(plan.chains_reassociated,
                                   std::memory_order_relaxed);
  }

  // Execute stage: dispatch through the plan.
  switch (plan.engine) {
    case EnginePlan::kGkpPositive: {
      ppl::GkpEngine engine(cache);
      engine.set_relation_cache(relations);
      if (plan.row_restricted) {
        Result<BitVector> image = engine.FromRoot(*q.pplbin);
        if (!image.ok()) {
          result.status = image.status();
          return result;
        }
        FinishMonadic(result, plan.shape, std::move(image).value());
        return result;
      }
      Result<BitMatrix> rel = engine.Relation(*q.pplbin);
      if (engine.subrel_hits() != 0) {
        subrel_hits_.fetch_add(engine.subrel_hits(),
                               std::memory_order_relaxed);
      }
      if (engine.subrel_misses() != 0) {
        subrel_misses_.fetch_add(engine.subrel_misses(),
                                 std::memory_order_relaxed);
      }
      if (!rel.ok()) {
        result.status = rel.status();
        return result;
      }
      result.relation = std::move(rel).value();
      break;
    }
    case EnginePlan::kMatrixGeneral: {
      ppl::MatrixEngine engine(cache, ppl::MultiplyMode::kBitPacked,
                               plan.repr);
      engine.set_relation_cache(relations);
      if (plan.row_restricted) {
        Result<BitVector> image = engine.EvaluateFromRoot(*pplbin);
        AccumulateEngineStats(engine.stats());
        if (!image.ok()) {
          result.status = image.status();
          return result;
        }
        FinishMonadic(result, plan.shape, std::move(image).value());
        return result;
      }
      Result<ppl::AnyMatrix> rel = engine.EvaluateAny(*pplbin);
      AccumulateEngineStats(engine.stats());
      if (!rel.ok()) {
        result.status = rel.status();
        return result;
      }
      ppl::AnyMatrix m = std::move(rel).value();
      if (m.is_dense()) {
        result.relation = std::move(m).TakeDense();
        break;
      }
      if (t.size() <= BitMatrix::kMaxDenseNodes) {
        // Under the dense ceiling the payload contract is a dense
        // BitMatrix regardless of the representation the engine composed
        // in -- keeping results byte-identical across repr overrides. The
        // densification cannot exceed the ceiling we just checked.
        Result<BitMatrix> dense = m.ToDense();
        if (!dense.ok()) {
          result.status = dense.status();
          return result;
        }
        result.relation = std::move(dense).value();
        break;
      }
      // Above the ceiling no dense n x n form can exist: hand the caller
      // the run-list relation and derive from_root from it directly.
      BitVector root_only(t.size());
      root_only.Set(t.root());
      result.from_root = m.ImageOf(root_only);
      result.relation_sparse = std::make_shared<const SparseBoolMatrix>(
          std::move(m).TakeSparse());
      return result;
    }
    case EnginePlan::kNaryAnswer: {
      // The one potentially long-running engine: thread the batch's
      // cancel token into it so an in-flight n-ary evaluation observes
      // BatchHandle::Cancel and expired deadlines mid-run.
      hcl::AnswerOptions answer_options;
      answer_options.cancel = cancel;
      hcl::QueryAnswerer answerer(t, *q.hcl, q.tuple_vars, answer_options,
                                  cache);
      Status prepared = answerer.Prepare();
      if (!prepared.ok()) {
        result.status = prepared;
        return result;
      }
      Result<xpath::TupleSet> answered = answerer.Answer();
      if (!answered.ok()) {
        result.status = answered.status();
        return result;
      }
      xpath::TupleSet tuples = std::move(answered).value();
      switch (plan.shape) {
        case ResultShape::kFullRelation:
        case ResultShape::kFromRootSet:
        case ResultShape::kTupleStream:  // unreachable: rejected above
          result.tuples = std::move(tuples);
          break;
        case ResultShape::kBoolean:
          result.boolean = !tuples.empty();
          break;
        case ResultShape::kCount:
          result.count = tuples.size();
          break;
      }
      return result;
    }
  }

  // Full binary relation computed; plan.shape is kFullRelation here --
  // every monadic binary plan is row-restricted and returned inside the
  // switch above.
  BitVector root_only(t.size());
  root_only.Set(t.root());
  result.from_root = result.relation.ImageOf(root_only);
  return result;
}

// ------------------------------------------------- batch run machinery

void QueryService::PrepareRun(BatchState& run) {
  const std::vector<QueryJob>& jobs = *run.jobs;
  run.results.resize(jobs.size());

  // A batch already cancelled or past its deadline will skip every job
  // (cancellation is sticky and deadlines are monotone, so RunOne is
  // guaranteed to observe the same condition): don't resolve documents or
  // build axis caches for it -- resolution would churn the store's LRU
  // and could retire hot caches that live batches are using.
  const bool doomed =
      run.cancelled.load(std::memory_order_relaxed) ||
      (run.deadline.has_value() &&
       std::chrono::steady_clock::now() > *run.deadline);

  // Resolve every distinct document once (touching the store's LRU once
  // per batch, not once per job) and build one shared axis cache per
  // distinct raw tree.
  if (!doomed) {
    for (const QueryJob& job : jobs) {
      if (job.document != kNoDocument && job.tree != nullptr) {
        continue;  // malformed; rejected per-job below without touching
                   // the store (resolution would churn its LRU)
      }
      if (job.document != kNoDocument) {
        if (store_ != nullptr && !run.docs.contains(job.document)) {
          ResolvedDoc resolved;
          Result<DocumentPtr> fetched = store_->Fetch(job.document);
          if (fetched.ok()) {
            resolved.doc = std::move(fetched).value();
            resolved.cache = store_->AxisCacheFor(job.document);
            resolved.plans = store_->PlanMemoFor(job.document);
            resolved.relations = store_->RelationCacheFor(job.document);
          } else {
            // Every job addressing this document reports the fault-in's
            // typed status (kDataLoss on corruption) instead of a generic
            // not-found.
            resolved.fetch_status = fetched.status();
          }
          run.docs.emplace(job.document, std::move(resolved));
        }
      } else if (job.tree != nullptr &&
                 !run.tree_caches.contains(job.tree)) {
        run.tree_caches.emplace(job.tree,
                                std::make_shared<AxisCache>(*job.tree));
        run.tree_relations.emplace(job.tree,
                                   std::make_shared<ppl::RelationCache>());
      }
    }
  }

  // Shard-affine grouping: jobs resident on one store shard share that
  // shard's hot caches, so a worker draining one group touches one
  // shard's working set. The extra tail group collects Tree*-addressed
  // and malformed jobs.
  const std::size_t num_shard_groups =
      store_ != nullptr ? store_->num_shards() : 0;
  run.groups.assign(num_shard_groups + 1, {});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const QueryJob& job = jobs[i];
    const bool sharded = store_ != nullptr &&
                         job.document != kNoDocument && job.tree == nullptr;
    const std::size_t g =
        sharded ? store_->shard_of(job.document) : num_shard_groups;
    run.groups[g].push_back(i);
  }
  // Batch-level common-subexpression ordering: within each group, jobs
  // on one document sharing one canonical query run back to back, so the
  // first evaluates each distinct subrelation and the rest hit the
  // document's RelationCache while the entries are hottest (LRU eviction
  // between distant duplicates can otherwise lose the reuse under a
  // tight byte budget). Warming the compile cache here also makes the
  // canonical text available for the sort; workers then hit it. Results
  // are order-independent (each job writes only its own slot), so this
  // reordering never changes output, only reuse.
  if (!doomed && jobs.size() > 1) {
    run.compiled.reserve(jobs.size());
    std::vector<std::string> keys(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const QueryJob& job = jobs[i];
      run.compiled.emplace_back(cache_.GetOrCompile(job.query));
      const auto& compiled = *run.compiled.back();
      keys[i] = std::to_string(job.document);
      keys[i].push_back('\x1f');
      keys[i] += compiled.ok() ? (*compiled)->canonical_text : job.query;
    }
    for (std::vector<std::size_t>& group : run.groups) {
      std::stable_sort(group.begin(), group.end(),
                       [&](std::size_t a, std::size_t b) {
                         return keys[a] < keys[b];
                       });
    }
  }

  run.cursors =
      std::make_unique<std::atomic<std::size_t>[]>(run.groups.size());
  for (std::size_t g = 0; g < run.groups.size(); ++g) {
    run.cursors[g].store(0, std::memory_order_relaxed);
  }
}

void QueryService::RunOne(BatchState& run, std::size_t i) {
  const QueryJob& job = (*run.jobs)[i];
  // Admission checks between jobs: a cancelled or expired batch stops
  // starting new jobs but never abandons its results vector -- skipped
  // slots carry an explanatory status.
  if (run.cancelled.load(std::memory_order_relaxed)) {
    run.results[i].status =
        Status::Cancelled("batch cancelled before this job started");
    jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (run.deadline.has_value() &&
      std::chrono::steady_clock::now() > *run.deadline) {
    run.results[i].status = Status::DeadlineExceeded(
        "batch deadline passed before this job started");
    jobs_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Started jobs carry the batch's cancel token into the engine, so a
  // long-running n-ary job stops mid-run instead of running to
  // completion; attribute the slot to the counter matching its outcome.
  const CancelToken token(&run.cancelled, run.deadline);
  const Result<std::shared_ptr<const CompiledQuery>>* precompiled =
      i < run.compiled.size() && run.compiled[i].has_value()
          ? &*run.compiled[i]
          : nullptr;
  if (job.document != kNoDocument && job.tree != nullptr) {
    run.results[i].status = Status::InvalidArgument(
        "job addresses both a DocumentId and a raw tree");
  } else if (job.document != kNoDocument) {
    if (store_ == nullptr) {
      run.results[i].status = Status::InvalidArgument(
          "job addresses a DocumentId but the service has no DocumentStore");
    } else {
      const ResolvedDoc& resolved = run.docs.at(job.document);
      if (resolved.doc == nullptr) {
        run.results[i].status = resolved.fetch_status;
      } else {
        run.results[i] =
            RunJob(&resolved.doc->tree(), job.query, job.shape,
                   job.engine_override, job.repr_override,
                   job.force_parse_order, resolved.cache, resolved.plans,
                   resolved.relations, precompiled, token);
      }
    }
  } else {
    auto it = run.tree_caches.find(job.tree);
    auto rel_it = run.tree_relations.find(job.tree);
    run.results[i] =
        RunJob(job.tree, job.query, job.shape, job.engine_override,
               job.repr_override, job.force_parse_order,
               it == run.tree_caches.end() ? nullptr : it->second, nullptr,
               rel_it == run.tree_relations.end() ? nullptr : rel_it->second,
               precompiled, token);
  }
  switch (run.results[i].status.code()) {
    case StatusCode::kCancelled:
      jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      jobs_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      jobs_completed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void QueryService::RunBatchWorker(BatchState& run, std::size_t worker_index) {
  // Affinity first, stealing second: worker w starts on shard group
  // w mod G and claims its jobs via the group cursor; once that group is
  // drained it moves on to the next, so stragglers on one shard are
  // finished by otherwise-idle workers. Each job writes only its own
  // result slot, so the steal order never affects results.
  const std::size_t num_groups = run.groups.size();
  for (std::size_t offset = 0; offset < num_groups; ++offset) {
    const std::size_t g = (worker_index + offset) % num_groups;
    const std::vector<std::size_t>& group = run.groups[g];
    std::atomic<std::size_t>& cursor = run.cursors[g];
    for (std::size_t k = cursor.fetch_add(1); k < group.size();
         k = cursor.fetch_add(1)) {
      RunOne(run, group[k]);
    }
  }
}

void QueryService::FinishRun(BatchState& run) {
  // Admission counters are retired BEFORE waiters are woken, so a caller
  // returning from Wait() observes stats() with this batch completed.
  if (run.admitted) {
    {
      MutexLock lock(adm_->mu);
      --adm_->inflight_batches;
      ++batches_completed_;
    }
    adm_->cv.NotifyAll();
  }
  {
    MutexLock lock(run.mu);
    run.done = true;
  }
  run.cv.NotifyAll();
}

void QueryService::ExecuteRun(std::shared_ptr<BatchState> run) {
  const std::size_t num_jobs = run->jobs->size();
  // Inline only when there is no pool or nothing to do. A single-job
  // batch still goes through the pool: on the TrySubmit path the caller
  // here is the dispatcher thread, and running the job inline would
  // serialize admission behind every batch's execution.
  if (pool_ == nullptr || num_jobs == 0) {
    RunBatchWorker(*run, 0);
    FinishRun(*run);
    return;
  }
  const std::size_t live_workers = std::min(num_threads_, num_jobs);
  run->remaining_workers.store(live_workers, std::memory_order_relaxed);
  for (std::size_t w = 0; w < live_workers; ++w) {
    pool_->Submit([this, run, w] {
      RunBatchWorker(*run, w);
      if (run->remaining_workers.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        FinishRun(*run);
      }
    });
  }
}

std::vector<QueryResult> QueryService::EvaluateBatch(
    const std::vector<QueryJob>& jobs) {
  if (jobs.empty()) return {};
  auto run = std::make_shared<BatchState>();
  run->jobs = &jobs;  // caller-owned; we block below until the run is done
  PrepareRun(*run);
  ExecuteRun(run);
  MutexLock lock(run->mu);
  while (!run->done) run->cv.Wait(lock);
  return std::move(run->results);
}

Result<BatchHandle> QueryService::TrySubmit(std::vector<QueryJob> jobs,
                                            BatchOptions options) {
  auto state = std::make_shared<BatchState>();
  state->owned_jobs = std::move(jobs);
  state->jobs = &state->owned_jobs;
  state->deadline = options.deadline;
  state->admitted = true;
  {
    MutexLock lock(adm_->mu);
    if (stopping_) {
      ++batches_rejected_;
      return Status::Overloaded("service is shutting down");
    }
    if (max_queued_batches_ != 0 &&
        adm_queue_.size() >= max_queued_batches_) {
      ++batches_rejected_;
      return Status::Overloaded(
          "admission queue full (" + std::to_string(adm_queue_.size()) +
          " batches queued, limit " + std::to_string(max_queued_batches_) +
          ")");
    }
    adm_queue_.push_back(state);
    ++batches_accepted_;
  }
  adm_->cv.NotifyAll();
  return BatchHandle(std::move(state));
}

Result<QueryStream> QueryService::OpenStream(DocumentId document,
                                             std::string_view query,
                                             StreamOptions options) {
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "stream addresses a DocumentId but the service has no DocumentStore");
  }
  XPV_ASSIGN_OR_RETURN(DocumentPtr doc, store_->Fetch(document));
  // The stream holds both the DocumentPtr and the AxisCache shared_ptr:
  // a concurrent Remove(document) only forgets the id -- the pinned tree
  // and cache outlive it, so an open stream keeps serving identical
  // answers (see the stream-outlives-Remove tests).
  std::shared_ptr<AxisCache> cache = store_->AxisCacheFor(document);
  const Tree* tree = &doc->tree();
  return OpenStreamImpl(std::move(doc), tree, std::move(cache),
                        store_->RelationCacheFor(document), query, options);
}

Result<QueryStream> QueryService::OpenStream(const Tree& tree,
                                             std::string_view query,
                                             StreamOptions options) {
  return OpenStreamImpl(nullptr, &tree, std::make_shared<AxisCache>(tree),
                        nullptr, query, options);
}

Result<QueryStream> QueryService::OpenStreamImpl(
    DocumentPtr doc, const Tree* tree, std::shared_ptr<AxisCache> cache,
    std::shared_ptr<ppl::RelationCache> relations, std::string_view query,
    StreamOptions options) {
  if (tree == nullptr || tree->empty()) {
    return Status::InvalidArgument("stream has no tree");
  }
  if (cache == nullptr) {
    // A Remove() racing between Get() and AxisCacheFor() loses the
    // store's persistent cache (AxisCacheFor returns null for ids it no
    // longer knows); the pinned tree is still valid, so fall back to a
    // private cache exactly like the batch path does.
    cache = std::make_shared<AxisCache>(*tree);
  }
  Result<std::shared_ptr<const CompiledQuery>> compiled =
      cache_.GetOrCompile(std::string(query));
  if (!compiled.ok()) return compiled.status();

  // Plan with the caller's tuple budget (offset tuples are produced and
  // discarded, so they count). Stream plans are cheap and depend on the
  // limit, so they bypass the per-document PlanMemo.
  const std::size_t budget =
      options.limit == 0 ? 0 : options.offset + options.limit;
  ExecutionPlan plan = PlanQuery(**compiled, *tree,
                                 ResultShape::kTupleStream, {}, budget);

  // Same dense ceiling as RunJob: n-ary stream backings (enumerator
  // preprocessing and Fig. 8 materialization alike) build n x n
  // relations, so refuse them on oversized trees up front.
  if (tree->size() > BitMatrix::kMaxDenseNodes &&
      PlanRequiresDenseRelation(**compiled, plan)) {
    return Status::ResourceExhausted(
        "stream plan " + plan.DebugString() +
        " requires a dense relation on a " + std::to_string(tree->size()) +
        "-node tree (dense ceiling " +
        std::to_string(BitMatrix::kMaxDenseNodes) + " nodes)");
  }

  // Take one inflight slot; never block. An open stream is admitted load
  // exactly like a running batch.
  {
    MutexLock lock(adm_->mu);
    if (stopping_) {
      return Status::Overloaded("service is shutting down");
    }
    if (max_inflight_batches_ != 0 &&
        adm_->inflight_batches + adm_->open_streams >=
            max_inflight_batches_) {
      return Status::Overloaded(
          "all " + std::to_string(max_inflight_batches_) +
          " inflight slots are taken (" +
          std::to_string(adm_->open_streams) + " open streams)");
    }
    ++adm_->open_streams;
    ++adm_->streams_opened;
  }

  auto state = std::make_unique<internal::StreamState>();
  state->adm = adm_;
  state->doc = std::move(doc);
  state->tree = tree;
  state->cache = std::move(cache);
  state->relations = std::move(relations);
  state->compiled = std::move(compiled).value();
  state->plan = plan;
  state->options = options;
  state->arity = state->compiled->pplbin != nullptr
                     ? 1
                     : state->compiled->tuple_vars.size();
  state->token = CancelToken(&state->cancelled, options.deadline);
  return QueryStream(std::move(state));
}

void QueryService::DispatcherLoop() {
  MutexLock lock(adm_->mu);
  while (true) {
    // Open streams count against the inflight bound -- except during
    // shutdown: a stream the caller still holds may never close (it
    // cannot while the caller is blocked in ~QueryService), and the
    // destructor's "accepted batches always drain" contract must win
    // over the stream's slot, so stopping admission ignores streams.
    // (Explicit wait loop rather than the predicate overload: the
    // thread-safety analysis cannot see guarded reads inside a lambda.)
    while (true) {
      const std::size_t occupied =
          adm_->inflight_batches + (stopping_ ? 0 : adm_->open_streams);
      const bool can_admit =
          !adm_queue_.empty() &&
          (max_inflight_batches_ == 0 || occupied < max_inflight_batches_);
      if (can_admit || (stopping_ && adm_queue_.empty())) break;
      adm_->cv.Wait(lock);
    }
    if (adm_queue_.empty()) return;  // only reachable when stopping
    std::shared_ptr<BatchState> state = std::move(adm_queue_.front());
    adm_queue_.pop_front();
    ++adm_->inflight_batches;
    lock.Unlock();
    // Preparation (store lookups, cache resolution) happens outside
    // adm_mu_ so TrySubmit callers are never blocked behind it. With no
    // pool this runs the whole batch inline on the dispatcher thread.
    PrepareRun(*state);
    ExecuteRun(std::move(state));
    lock.Relock();
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  {
    MutexLock lock(adm_->mu);
    s.batches_accepted = batches_accepted_;
    s.batches_rejected = batches_rejected_;
    s.batches_completed = batches_completed_;
    s.batches_queued = adm_queue_.size();
    s.batches_running = adm_->inflight_batches;
    s.streams_opened = adm_->streams_opened;
    s.streams_closed = adm_->streams_closed;
    s.streams_open = adm_->open_streams;
  }
  s.stream_tuples = adm_->stream_tuples.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  s.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  s.jobs_deadline_exceeded =
      jobs_deadline_exceeded_.load(std::memory_order_relaxed);
  s.dense_products = dense_products_.load(std::memory_order_relaxed);
  s.sparse_products = sparse_products_.load(std::memory_order_relaxed);
  s.repr_crossovers = repr_crossovers_.load(std::memory_order_relaxed);
  s.subrel_hits = subrel_hits_.load(std::memory_order_relaxed);
  s.subrel_misses = subrel_misses_.load(std::memory_order_relaxed);
  s.chains_reassociated =
      chains_reassociated_.load(std::memory_order_relaxed);
  if (store_ != nullptr) {
    s.shard_stats = store_->shard_stats();
    for (const DocumentStoreStats& shard : s.shard_stats) {
      s.subrel_bytes += shard.relation_cache_bytes;
      s.doc_spills += shard.doc_spills;
      s.doc_reloads += shard.doc_reloads;
      s.doc_reattaches += shard.doc_reattaches;
      s.mmap_bytes += shard.mmap_bytes;
      s.resident_docs += shard.resident_docs;
      s.spilled_docs += shard.spilled_docs;
      s.resident_doc_bytes += shard.resident_doc_bytes;
    }
  }
  return s;
}

void QueryService::AccumulateEngineStats(const ppl::MatrixEngineStats& s) {
  if (s.dense_products != 0) {
    dense_products_.fetch_add(s.dense_products, std::memory_order_relaxed);
  }
  if (s.sparse_products != 0) {
    sparse_products_.fetch_add(s.sparse_products, std::memory_order_relaxed);
  }
  if (s.repr_crossovers != 0) {
    repr_crossovers_.fetch_add(s.repr_crossovers, std::memory_order_relaxed);
  }
  if (s.subrel_hits != 0) {
    subrel_hits_.fetch_add(s.subrel_hits, std::memory_order_relaxed);
  }
  if (s.subrel_misses != 0) {
    subrel_misses_.fetch_add(s.subrel_misses, std::memory_order_relaxed);
  }
}

}  // namespace xpv::engine
