#include "engine/query_service.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "hcl/answer.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"

namespace xpv::engine {

namespace {

/// Derives the monadic payload from a from-root node set.
void FinishMonadic(QueryResult& result, ResultShape shape, BitVector image) {
  switch (shape) {
    case ResultShape::kFullRelation:
    case ResultShape::kFromRootSet:
      result.from_root = std::move(image);
      return;
    case ResultShape::kBoolean:
      result.boolean = image.Any();
      return;
    case ResultShape::kCount:
      result.count = image.Count();
      return;
  }
}

}  // namespace

QueryService::QueryService(QueryServiceOptions options)
    : num_threads_(options.num_threads), store_(options.document_store) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
    if (num_threads_ == 0) num_threads_ = 1;
  }
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

QueryService::~QueryService() = default;

QueryResult QueryService::Evaluate(const Tree& tree, std::string_view query,
                                   ResultShape shape) {
  return RunJob(&tree, std::string(query), shape, std::nullopt,
                std::make_shared<AxisCache>(tree), nullptr);
}

QueryResult QueryService::Evaluate(DocumentId document, std::string_view query,
                                   ResultShape shape) {
  QueryResult result;
  if (store_ == nullptr) {
    result.status = Status::InvalidArgument(
        "job addresses a DocumentId but the service has no DocumentStore");
    return result;
  }
  DocumentPtr doc = store_->Get(document);
  if (doc == nullptr) {
    result.status =
        Status::NotFound("unknown document id " + std::to_string(document));
    return result;
  }
  return RunJob(&doc->tree(), std::string(query), shape, std::nullopt,
                store_->AxisCacheFor(document), store_->PlanMemoFor(document));
}

QueryResult QueryService::RunJob(
    const Tree* tree, const std::string& query, ResultShape shape,
    const std::optional<EnginePlan>& engine_override,
    const std::shared_ptr<AxisCache>& tree_cache,
    const std::shared_ptr<PlanMemo>& plan_memo) {
  QueryResult result;
  if (tree == nullptr || tree->empty()) {
    result.status = Status::InvalidArgument("job has no tree");
    return result;
  }
  Result<std::shared_ptr<const CompiledQuery>> compiled =
      cache_.GetOrCompile(query);
  if (!compiled.ok()) {
    result.status = compiled.status();
    return result;
  }
  const CompiledQuery& q = **compiled;
  const Tree& t = *tree;

  // Plan stage: per (compiled query, tree, shape), memoized per document.
  // Forced engines (tests, ablations) bypass the memo so a forced run
  // never pollutes the planner's cache.
  ExecutionPlan plan;
  if (engine_override.has_value()) {
    if (!q.Admits(*engine_override)) {
      result.status = Status::InvalidArgument(
          "engine override '" +
          std::string(EnginePlanName(*engine_override)) +
          "' is not admissible for query: " + q.text);
      return result;
    }
    plan = PlanQuery(q, t, shape, engine_override);
  } else if (plan_memo != nullptr) {
    plan = plan_memo->GetOrCompute(
        q.text, shape, [&] { return PlanQuery(q, t, shape); });
  } else {
    plan = PlanQuery(q, t, shape);
  }
  result.plan = plan;

  const std::shared_ptr<AxisCache> cache =
      tree_cache != nullptr ? tree_cache : std::make_shared<AxisCache>(t);

  // Execute stage: dispatch through the plan.
  switch (plan.engine) {
    case EnginePlan::kGkpPositive: {
      ppl::GkpEngine engine(cache);
      if (plan.row_restricted) {
        Result<BitVector> image = engine.FromRoot(*q.pplbin);
        if (!image.ok()) {
          result.status = image.status();
          return result;
        }
        FinishMonadic(result, plan.shape, std::move(image).value());
        return result;
      }
      Result<BitMatrix> rel = engine.Relation(*q.pplbin);
      if (!rel.ok()) {
        result.status = rel.status();
        return result;
      }
      result.relation = std::move(rel).value();
      break;
    }
    case EnginePlan::kMatrixGeneral: {
      ppl::MatrixEngine engine(cache);
      if (plan.row_restricted) {
        FinishMonadic(result, plan.shape,
                      engine.EvaluateFromRoot(*q.pplbin));
        return result;
      }
      result.relation = engine.Evaluate(*q.pplbin);
      break;
    }
    case EnginePlan::kNaryAnswer: {
      hcl::QueryAnswerer answerer(t, *q.hcl, q.tuple_vars, {}, cache);
      Status prepared = answerer.Prepare();
      if (!prepared.ok()) {
        result.status = prepared;
        return result;
      }
      xpath::TupleSet tuples = answerer.Answer();
      switch (plan.shape) {
        case ResultShape::kFullRelation:
        case ResultShape::kFromRootSet:
          result.tuples = std::move(tuples);
          break;
        case ResultShape::kBoolean:
          result.boolean = !tuples.empty();
          break;
        case ResultShape::kCount:
          result.count = tuples.size();
          break;
      }
      return result;
    }
  }

  // Full binary relation computed; plan.shape is kFullRelation here --
  // every monadic binary plan is row-restricted and returned inside the
  // switch above.
  BitVector root_only(t.size());
  root_only.Set(t.root());
  result.from_root = result.relation.ImageOf(root_only);
  return result;
}

std::vector<QueryResult> QueryService::EvaluateBatch(
    const std::vector<QueryJob>& jobs) {
  std::vector<QueryResult> results(jobs.size());
  if (jobs.empty()) return results;

  // One shared axis cache per distinct tree in the batch (Tree* shim path).
  std::unordered_map<const Tree*, std::shared_ptr<AxisCache>> tree_caches;
  // Store documents are resolved once per distinct id per batch; their
  // caches are the store's persistent ones, so repeats across batches hit.
  struct ResolvedDoc {
    DocumentPtr doc;
    std::shared_ptr<AxisCache> cache;
    std::shared_ptr<PlanMemo> plans;
  };
  std::unordered_map<DocumentId, ResolvedDoc> docs;
  for (const QueryJob& job : jobs) {
    if (job.document != kNoDocument && job.tree != nullptr) {
      continue;  // malformed; rejected per-job below without touching the
                 // store (resolution would churn its LRU)
    }
    if (job.document != kNoDocument) {
      if (store_ != nullptr && !docs.contains(job.document)) {
        ResolvedDoc resolved;
        resolved.doc = store_->Get(job.document);
        if (resolved.doc != nullptr) {
          resolved.cache = store_->AxisCacheFor(job.document);
          resolved.plans = store_->PlanMemoFor(job.document);
        }
        docs.emplace(job.document, std::move(resolved));
      }
    } else if (job.tree != nullptr && !tree_caches.contains(job.tree)) {
      tree_caches.emplace(job.tree, std::make_shared<AxisCache>(*job.tree));
    }
  }

  auto run_one = [&](std::size_t i) {
    const QueryJob& job = jobs[i];
    if (job.document != kNoDocument && job.tree != nullptr) {
      results[i].status = Status::InvalidArgument(
          "job addresses both a DocumentId and a raw tree");
      return;
    }
    if (job.document != kNoDocument) {
      if (store_ == nullptr) {
        results[i].status = Status::InvalidArgument(
            "job addresses a DocumentId but the service has no "
            "DocumentStore");
        return;
      }
      const ResolvedDoc& resolved = docs.at(job.document);
      if (resolved.doc == nullptr) {
        results[i].status = Status::NotFound("unknown document id " +
                                             std::to_string(job.document));
        return;
      }
      results[i] = RunJob(&resolved.doc->tree(), job.query, job.shape,
                          job.engine_override, resolved.cache, resolved.plans);
      return;
    }
    auto it = tree_caches.find(job.tree);
    results[i] = RunJob(job.tree, job.query, job.shape, job.engine_override,
                        it == tree_caches.end() ? nullptr : it->second,
                        nullptr);
  };

  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
    return results;
  }

  // Work-stealing by atomic counter: every worker claims the next
  // unclaimed job index. Each job writes only results[i], so the output
  // is independent of which worker ran it.
  std::atomic<std::size_t> next{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t live_workers = std::min(num_threads_, jobs.size());
  std::size_t remaining = live_workers;
  for (std::size_t w = 0; w < live_workers; ++w) {
    pool_->Submit([&] {
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        run_one(i);
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return results;
}

}  // namespace xpv::engine
