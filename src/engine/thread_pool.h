// Fixed-size worker pool for the batch query-evaluation service.
//
// Deliberately minimal: a locked deque of std::function jobs drained by N
// long-lived workers. The QueryService keeps result determinism by giving
// every job its own output slot, so scheduling order never affects
// results -- the pool therefore needs no ordering guarantees beyond
// running every submitted job exactly once.
#ifndef XPV_ENGINE_THREAD_POOL_H_
#define XPV_ENGINE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xpv::engine {

/// N worker threads draining a shared job queue. Destruction drains the
/// queue (all submitted jobs run) and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a job; runs on some worker thread.
  void Submit(std::function<void()> job) XPV_EXCLUDES(mu_);

 private:
  void WorkerLoop() XPV_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ XPV_GUARDED_BY(mu_);
  bool stopping_ XPV_GUARDED_BY(mu_) = false;
  /// Started in the constructor, joined by the destructor; never
  /// mutated in between, so no lock guards it.
  std::vector<std::thread> workers_;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_THREAD_POOL_H_
