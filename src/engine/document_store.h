// The corpus layer of the serving stack: a thread-safe, *sharded* store of
// long-lived immutable documents, addressed by DocumentId.
//
// A Document owns its Tree (index-rich and immutable after TreeBuilder::
// Finish()). The store additionally manages one persistent AxisCache per
// document, so that jobs from *different* batches -- not just jobs within
// one batch -- reuse the same materialized axis relations for a document's
// whole lifetime. Because fully materialized |t| x |t| relations are the
// expensive part, the store keeps only a bounded number of caches "hot":
// cold per-document caches are retired in LRU order (the cache object is
// dropped; in-flight jobs holding a shared_ptr keep it alive until they
// finish, and the next access rebuilds lazily).
//
// Sharding. The store is split into `num_shards` independent shards, each
// with its own mutex, document map, AxisCache LRU budget, and statistics.
// A document's shard is a pure function of its id (`shard_of(id)`);
// structurally equal interned trees share one id and hence one shard.
// Operations on documents in different
// shards therefore never contend on a lock or compete for one LRU budget,
// which is what lets cross-document batches scale: the QueryService's
// batch scheduler groups jobs by resident shard (see query_service.h).
// With `num_shards = 1` the store degenerates to the previous single-mutex
// behavior; results are identical at any shard count (only lock spread and
// LRU-retirement order change, and retirement never changes results).
//
// Insert() always creates a fresh document; Intern() deduplicates by
// structural content (two structurally equal trees intern to one id), so
// template-driven workloads that re-submit the same document text share
// one tree and one cache.
//
// Persistence (engine/snapshot.h). SaveSnapshot() writes every document
// -- tree, indexes, and materialized axis relations -- as one segment
// file per document plus a manifest; OpenSnapshot() reconstitutes the
// store without re-parsing or re-indexing anything. Independently, a
// spill_dir + max_resident_docs configuration turns the store into a
// bounded-memory cache over its own disk segments: cold documents are
// written out and their trees released, and a later access faults them
// back in transparently. Documents that are pinned -- a hot AxisCache
// references the tree, or a DocumentPtr is held outside the store (an
// open stream, an in-flight job) -- are never spilled.
//
// Thread safety: every public method is safe to call concurrently with
// every other. No method blocks beyond a shard mutex critical section
// (plus one intern-index mutex for Intern/Remove); none of them waits
// for in-flight queries. Spill-enabled stores may perform segment I/O
// inside a shard's critical section (spill on insert, fault-in on
// access), which serializes that shard -- not the store -- for the
// duration. Lock ordering is intern-index mutex -> shard mutex (Intern
// and Remove both nest in that order, so a document and its intern key
// appear and disappear atomically); no method ever holds two shard
// mutexes at once.
#ifndef XPV_ENGINE_DOCUMENT_STORE_H_
#define XPV_ENGINE_DOCUMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/planner.h"
#include "ppl/relation_cache.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"

namespace xpv::engine {

/// Corpus-wide document identifier. Ids start at 1; 0 means "no document"
/// (a QueryJob addressing a raw Tree* instead).
using DocumentId = std::uint64_t;
inline constexpr DocumentId kNoDocument = 0;

/// Lock-order anchor for the store's documented global acquisition
/// order: the intern-index mutex is ACQUIRED_BEFORE this token, every
/// shard mutex ACQUIRED_AFTER it (per-shard mutexes live behind
/// unique_ptrs, so the two sides cannot name each other directly --
/// see common/mutex.h). Machine-readable form of "intern -> shard".
inline LockOrderToken kInternBeforeShardOrder;

/// An immutable named tree in the corpus. Always held behind
/// shared_ptr<const Document>; the tree address is stable for the
/// document's lifetime, so AxisCaches may reference it.
class Document {
 public:
  Document(DocumentId id, std::string name, Tree tree)
      : id_(id), name_(std::move(name)), tree_(std::move(tree)) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  DocumentId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Tree& tree() const { return tree_; }

 private:
  DocumentId id_;
  std::string name_;
  Tree tree_;
};

using DocumentPtr = std::shared_ptr<const Document>;

struct DocumentStoreOptions {
  /// Maximum number of documents with a live ("hot") AxisCache, across the
  /// whole store; the budget is divided evenly across shards. Beyond a
  /// shard's budget, its least-recently-used document's cache is retired.
  /// This is a hard memory bound: when it is smaller than num_shards, the
  /// shard count is clamped down so every shard still keeps at least one
  /// cache hot. 0 = unbounded.
  std::size_t max_hot_caches = 64;
  /// Number of independent shards (>= 1; 0 is treated as 1, and values
  /// above a nonzero max_hot_caches are clamped to it -- see above).
  /// Shards trade a little fixed memory for lock- and LRU-independence;
  /// the default suits a handful of worker threads.
  std::size_t num_shards = 8;
  /// Representation policy for the per-document AxisCaches this store
  /// creates (tree/axis_cache.h): kAuto picks dense below
  /// AxisCache::kAutoDenseMaxNodes and interval runs above; kDense /
  /// kInterval force one (tests, ablations). hot_cache_bytes reflects
  /// whichever representation each cache actually built.
  AxisBacking axis_backing = AxisBacking::kAuto;
  /// Byte budget of each document's subrelation cache
  /// (ppl/relation_cache.h): materialized interior subexpressions,
  /// shared by every engine and batch evaluating that document. Unlike
  /// the AxisCache the RelationCache is never LRU-retired as a whole --
  /// its own byte budget already bounds it, and it holds shared_ptrs, so
  /// in-flight consumers pin evicted values safely. 0 disables
  /// cross-job subrelation memoization entirely (per-evaluation
  /// hash-consing inside MatrixEngine still runs).
  std::size_t relation_cache_bytes = ppl::RelationCache::kDefaultMaxBytes;
  /// Directory for spilled document segments (engine/snapshot.h format).
  /// Empty disables spill-to-disk entirely; max_resident_docs is then
  /// ignored. OpenSnapshot() defaults this to the snapshot directory, so
  /// reloaded-then-evicted documents spill for free (their segment is
  /// already on disk).
  std::string spill_dir;
  /// Maximum number of documents whose Tree is resident in memory, across
  /// the whole store (divided over shards like max_hot_caches; remainder
  /// on the first shards). Beyond a shard's budget the least recently
  /// touched *unpinned* document is spilled: its segment is written to
  /// spill_dir (if not already there) and its Tree released. A document
  /// is pinned -- never spilled -- while its AxisCache is hot or any
  /// DocumentPtr outside the store (a stream, an in-flight job) still
  /// holds it. 0 = unbounded. Requires a nonempty spill_dir.
  std::size_t max_resident_docs = 0;
};

/// Monitoring counters (monotone except documents/hot_caches/
/// hot_cache_bytes). Returned both per shard (shard_stats()) and
/// aggregated over all shards (stats()).
struct DocumentStoreStats {
  std::size_t documents = 0;   // currently stored documents
  std::size_t hot_caches = 0;  // documents with a live AxisCache
  std::size_t hot_cache_bytes = 0;  // approx. resident bytes of hot caches
  std::uint64_t cache_builds = 0;     // AxisCache objects created
  std::uint64_t cache_hits = 0;       // AxisCacheFor served an existing cache
  std::uint64_t cache_retirements = 0;  // caches dropped by the LRU bound
  std::uint64_t intern_hits = 0;      // Intern() found an existing document
  std::uint64_t relation_hits = 0;    // subrelation-cache hits (all docs)
  std::uint64_t relation_misses = 0;  // subrelation-cache misses
  std::size_t relation_cache_bytes = 0;  // gauge: resident subrelation bytes
  // -- spill / snapshot counters (engine/snapshot.h) --
  std::size_t resident_docs = 0;      // gauge: documents with a Tree in RAM
  std::size_t spilled_docs = 0;       // gauge: documents living only on disk
  /// Gauge: heap bytes of resident documents' trees (Tree::resident_bytes).
  /// Spilled documents contribute 0 -- cold mmap'd bytes are never counted
  /// as hot.
  std::size_t resident_doc_bytes = 0;
  std::uint64_t doc_spills = 0;       // documents written out + released
  std::uint64_t doc_reloads = 0;      // spilled documents decoded from disk
  /// Fault-ins served by re-adopting a still-alive Document (an external
  /// DocumentPtr kept it in memory) instead of touching the disk.
  std::uint64_t doc_reattaches = 0;
  std::uint64_t mmap_bytes = 0;       // total segment bytes memory-mapped
};

/// Thread-safe sharded DocumentId -> Document corpus with per-document
/// persistent AxisCaches under bounded per-shard LRU retirement.
///
/// Error contracts: Fetch returns typed Status (kNotFound for unknown
/// ids; the segment loader's kDataLoss / kNotFound when a spilled
/// document's fault-in fails); the nullable lookups (Get, AxisCacheFor,
/// PlanMemoFor) return null in all of those cases; Remove returns false
/// for unknown ids; InsertTerm/InsertXml surface the parser's Status
/// verbatim; SaveSnapshot/OpenSnapshot surface the snapshot layer's
/// typed Status (engine/snapshot.h).
class DocumentStore {
 public:
  explicit DocumentStore(DocumentStoreOptions options = {});

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Stores a new document; returns its fresh id. Never fails.
  DocumentId Insert(Tree tree, std::string name = {});
  /// Parses + stores; the error is the parser's on malformed input.
  Result<DocumentId> InsertTerm(std::string_view term, std::string name = {});
  Result<DocumentId> InsertXml(std::string_view xml, std::string name = {});

  /// Returns the id of a stored document structurally equal to `tree`,
  /// inserting it first if absent ("interning" by content). Two racing
  /// Intern() calls with equal trees return the same id.
  DocumentId Intern(Tree tree, std::string name = {});

  /// The document with typed errors: kNotFound for unknown ids, and on
  /// the spill path whatever LoadDocumentSegment reports (kDataLoss for a
  /// corrupt segment, kNotFound for a vanished one). A spilled document
  /// is faulted back in transparently -- first by re-adopting the live
  /// Document if some holder still pins it, else by decoding its segment.
  Result<DocumentPtr> Fetch(DocumentId id);

  /// Nullable wrapper over Fetch(): the document, or null both for
  /// unknown ids and for spilled documents whose reload failed (callers
  /// that need to distinguish use Fetch).
  DocumentPtr Get(DocumentId id);

  /// Removes a document (its id is never reused). In-flight holders of the
  /// DocumentPtr or its AxisCache stay valid; only future lookups of the
  /// id fail. The document's spill segment, if one was written, is deleted
  /// too -- Remove never leaves an orphaned segment file behind. Returns
  /// false if unknown.
  bool Remove(DocumentId id);

  /// Writes every document (and its materialized axis relations) into
  /// `dir` as one segment per document, then the manifest last -- so `dir`
  /// holds a complete snapshot exactly when a valid MANIFEST.xpv exists.
  /// Spilled documents whose segment already lives in `dir` are not
  /// rewritten. Shards are walked one at a time under their own mutex;
  /// documents inserted concurrently into an already-visited shard are
  /// simply absent from this snapshot.
  Status SaveSnapshot(const std::string& dir);

  /// Opens the snapshot in `dir` as a fresh store: every manifest id is
  /// decoded from its segment (no parsing, no BuildIndexes -- see
  /// tree/tree_io.h), interned documents rejoin the intern index, and
  /// persisted axis relations are installed into hot AxisCaches, so the
  /// reloaded store answers exactly like the one that saved. When
  /// `options.spill_dir` is empty it defaults to `dir`, making reloaded
  /// documents spillable for free. Residency and hot-cache budgets are
  /// enforced during the load, so peak memory is the configured budget
  /// plus one document. Fails with the loader's typed Status on any
  /// corrupt, truncated, or missing segment.
  static Result<std::unique_ptr<DocumentStore>> OpenSnapshot(
      const std::string& dir, DocumentStoreOptions options = {});

  /// The document's persistent AxisCache, created lazily. Touches the
  /// owning shard's LRU and may retire another document's cache when that
  /// shard's hot budget is exceeded. The returned shared_ptr keeps the
  /// underlying Document alive even across Remove(). Null for unknown ids.
  std::shared_ptr<AxisCache> AxisCacheFor(DocumentId id);

  /// The document's persistent query-plan memo (engine/planner.h), living
  /// beside its AxisCache: repeated query templates on a long-lived
  /// document plan once per (text, shape). Unlike the AxisCache it holds
  /// only small ExecutionPlan records (bounded entry count), so it is
  /// never LRU-retired. Null for unknown ids.
  std::shared_ptr<PlanMemo> PlanMemoFor(DocumentId id) const;

  /// The document's persistent subrelation cache (ppl/relation_cache.h),
  /// created with the document when relation_cache_bytes > 0. Like the
  /// PlanMemo it is never LRU-retired (its own byte budget bounds it).
  /// Null for unknown ids and when the store disables relation caching.
  std::shared_ptr<ppl::RelationCache> RelationCacheFor(DocumentId id) const;

  /// Number of shards (>= 1, fixed at construction).
  std::size_t num_shards() const { return shards_.size(); }
  /// The shard owning `id` -- a pure function of the id, so callers (the
  /// QueryService batch scheduler) can group work by resident shard
  /// without taking any store lock.
  std::size_t shard_of(DocumentId id) const { return id % shards_.size(); }

  std::size_t size() const;
  /// Counters aggregated over all shards.
  DocumentStoreStats stats() const;
  /// Per-shard counters, indexed by shard number.
  std::vector<DocumentStoreStats> shard_stats() const;

 private:
  struct Entry {
    DocumentPtr doc;  // null while spilled to disk
    /// Reattach handle across spill: if an external DocumentPtr still
    /// pins the document, fault-in re-adopts it without touching disk.
    std::weak_ptr<const Document> spilled;
    /// True once this document's segment exists in spill_dir (segments of
    /// immutable documents never go stale, so spilling again is free).
    bool on_disk = false;
    std::shared_ptr<AxisCache> cache;       // null when cold / retired
    std::shared_ptr<PlanMemo> plans;         // created with the document
    /// Subrelation cache, created with the document; null iff disabled.
    std::shared_ptr<ppl::RelationCache> relations;
    std::list<DocumentId>::iterator lru_it;  // valid iff cache != null
    std::list<DocumentId>::iterator res_it;  // valid iff doc != null
    std::string intern_key;  // nonempty iff created by Intern()
  };

  /// One independent slice of the corpus: its own mutex, documents, hot
  /// LRU budget, and counters. Never holds another shard's mutex; nests
  /// inside intern_mu_ when both are taken (kInternBeforeShardOrder).
  struct Shard {
    mutable Mutex mu XPV_ACQUIRED_AFTER(kInternBeforeShardOrder);
    std::unordered_map<DocumentId, Entry> entries XPV_GUARDED_BY(mu);
    /// Documents with a hot cache, most recently used first.
    std::list<DocumentId> lru XPV_GUARDED_BY(mu);
    /// Documents with a resident Tree, most recently touched first.
    std::list<DocumentId> resident XPV_GUARDED_BY(mu);
    /// This shard's slice of max_hot_caches (remainder spread over the
    /// first shards so the whole configured budget is usable). 0 =
    /// unbounded. Set before the store is published, then read-only --
    /// not guarded (the constructor writes it without the lock).
    std::size_t hot_budget = 0;
    /// This shard's slice of max_resident_docs; 0 = unbounded. Same
    /// const-after-construction contract as hot_budget.
    std::size_t resident_budget = 0;
    /// Counters only; gauges derived on read.
    DocumentStoreStats stats XPV_GUARDED_BY(mu);
  };

  /// Builds an Entry and stores it into `id`'s shard under its mutex.
  void Store(DocumentId id, std::string name, Tree tree,
             std::string intern_key);
  /// Drops LRU-tail caches until the shard's hot budget holds.
  void EnforceHotBoundLocked(Shard& shard) XPV_REQUIRES(shard.mu);
  /// Spills resident-LRU-tail documents (skipping pinned ones) until the
  /// shard's residency budget holds or no document is spillable.
  void EnforceResidencyLocked(Shard& shard) XPV_REQUIRES(shard.mu);
  /// Marks `id`'s Tree resident / recently used in its shard's LRU.
  void TouchResidentLocked(Shard& shard, DocumentId id, Entry& entry)
      XPV_REQUIRES(shard.mu);
  /// Fault-in of a possibly spilled entry; `shard.mu` must be held.
  Result<DocumentPtr> FaultInLocked(Shard& shard, DocumentId id, Entry& entry)
      XPV_REQUIRES(shard.mu);
  /// Path of `id`'s segment inside spill_dir.
  std::string SpillPath(DocumentId id) const;
  /// Gauge-completed snapshot of one shard's stats.
  DocumentStoreStats SnapshotShardStats(const Shard& shard) const
      XPV_REQUIRES(shard.mu);

  const DocumentStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Globally monotone id allocator; fresh documents round-robin across
  /// shards because shard_of(id) is id % num_shards.
  std::atomic<DocumentId> next_id_{1};
  /// Guards the intern index; ordered before any shard mutex (Intern and
  /// Remove both nest shard.mu inside it).
  mutable Mutex intern_mu_ XPV_ACQUIRED_BEFORE(kInternBeforeShardOrder);
  /// Structural key (pre-order depth + length-prefixed labels) -> id.
  std::unordered_map<std::string, DocumentId> intern_index_
      XPV_GUARDED_BY(intern_mu_);
  std::uint64_t intern_hits_ XPV_GUARDED_BY(intern_mu_) = 0;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_DOCUMENT_STORE_H_
