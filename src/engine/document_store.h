// The corpus layer of the serving stack: a thread-safe store of long-lived
// immutable documents, addressed by DocumentId.
//
// A Document owns its Tree (index-rich and immutable after TreeBuilder::
// Finish()). The store additionally manages one persistent AxisCache per
// document, so that jobs from *different* batches -- not just jobs within
// one batch -- reuse the same materialized axis relations for a document's
// whole lifetime. Because fully materialized |t| x |t| relations are the
// expensive part, the store keeps only a bounded number of caches "hot":
// cold per-document caches are retired in LRU order (the cache object is
// dropped; in-flight jobs holding a shared_ptr keep it alive until they
// finish, and the next access rebuilds lazily).
//
// Insert() always creates a fresh document; Intern() deduplicates by
// structural content (two structurally equal trees intern to one id), so
// template-driven workloads that re-submit the same document text share
// one tree and one cache.
#ifndef XPV_ENGINE_DOCUMENT_STORE_H_
#define XPV_ENGINE_DOCUMENT_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "engine/planner.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"

namespace xpv::engine {

/// Corpus-wide document identifier. Ids start at 1; 0 means "no document"
/// (a QueryJob addressing a raw Tree* instead).
using DocumentId = std::uint64_t;
inline constexpr DocumentId kNoDocument = 0;

/// An immutable named tree in the corpus. Always held behind
/// shared_ptr<const Document>; the tree address is stable for the
/// document's lifetime, so AxisCaches may reference it.
class Document {
 public:
  Document(DocumentId id, std::string name, Tree tree)
      : id_(id), name_(std::move(name)), tree_(std::move(tree)) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  DocumentId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Tree& tree() const { return tree_; }

 private:
  DocumentId id_;
  std::string name_;
  Tree tree_;
};

using DocumentPtr = std::shared_ptr<const Document>;

struct DocumentStoreOptions {
  /// Maximum number of documents with a live ("hot") AxisCache; beyond it,
  /// the least-recently-used document's cache is retired. 0 = unbounded.
  std::size_t max_hot_caches = 64;
};

/// Monitoring counters (monotone except documents/hot_caches).
struct DocumentStoreStats {
  std::size_t documents = 0;   // currently stored documents
  std::size_t hot_caches = 0;  // documents with a live AxisCache
  std::uint64_t cache_builds = 0;     // AxisCache objects created
  std::uint64_t cache_hits = 0;       // AxisCacheFor served an existing cache
  std::uint64_t cache_retirements = 0;  // caches dropped by the LRU bound
  std::uint64_t intern_hits = 0;      // Intern() found an existing document
};

/// Thread-safe DocumentId -> Document corpus with per-document persistent
/// AxisCaches under bounded LRU retirement.
class DocumentStore {
 public:
  explicit DocumentStore(DocumentStoreOptions options = {});

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  /// Stores a new document; returns its fresh id.
  DocumentId Insert(Tree tree, std::string name = {});
  /// Parses + stores; the error is the parser's on malformed input.
  Result<DocumentId> InsertTerm(std::string_view term, std::string name = {});
  Result<DocumentId> InsertXml(std::string_view xml, std::string name = {});

  /// Returns the id of a stored document structurally equal to `tree`,
  /// inserting it first if absent ("interning" by content).
  DocumentId Intern(Tree tree, std::string name = {});

  /// The document, or null for unknown ids.
  DocumentPtr Get(DocumentId id) const;

  /// Removes a document (its id is never reused). In-flight holders of the
  /// DocumentPtr or its AxisCache stay valid. Returns false if unknown.
  bool Remove(DocumentId id);

  /// The document's persistent AxisCache, created lazily. Touches the LRU
  /// and may retire another document's cache when the hot bound is
  /// exceeded. The returned shared_ptr keeps the underlying Document alive
  /// even across Remove(). Null for unknown ids.
  std::shared_ptr<AxisCache> AxisCacheFor(DocumentId id);

  /// The document's persistent query-plan memo (engine/planner.h), living
  /// beside its AxisCache: repeated query templates on a long-lived
  /// document plan once per (text, shape). Unlike the AxisCache it holds
  /// only small ExecutionPlan records (bounded entry count), so it is
  /// never LRU-retired. Null for unknown ids.
  std::shared_ptr<PlanMemo> PlanMemoFor(DocumentId id) const;

  std::size_t size() const;
  DocumentStoreStats stats() const;

 private:
  struct Entry {
    DocumentPtr doc;
    std::shared_ptr<AxisCache> cache;       // null when cold / retired
    std::shared_ptr<PlanMemo> plans;         // created with the document
    std::list<DocumentId>::iterator lru_it;  // valid iff cache != null
    std::string intern_key;  // nonempty iff created by Intern()
  };

  /// Drops LRU-tail caches until the hot bound holds. Requires mu_.
  void EnforceHotBoundLocked();

  const DocumentStoreOptions options_;
  mutable std::mutex mu_;
  DocumentId next_id_ = 1;
  std::unordered_map<DocumentId, Entry> entries_;
  /// Documents with a hot cache, most recently used first.
  std::list<DocumentId> lru_;
  /// Structural key (pre-order depth + length-prefixed labels) -> id.
  std::unordered_map<std::string, DocumentId> intern_index_;
  DocumentStoreStats stats_;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_DOCUMENT_STORE_H_
