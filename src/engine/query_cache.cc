#include "engine/query_cache.h"

#include <utility>

namespace xpv::engine {

Result<std::shared_ptr<const CompiledQuery>> QueryCache::GetOrCompile(
    std::string_view text) {
  {
    MutexLock lock(mu_);
    std::string key(text);
    auto alias = aliases_.find(key);
    auto it = entries_.find(alias == aliases_.end() ? key : alias->second);
    if (it != entries_.end()) {
      ++hits_;
      if (it->second.query != nullptr) return it->second.query;
      return it->second.error;
    }
  }
  // Compile outside the lock; concurrent first sightings may compile the
  // same text twice, but both produce equivalent immutable results and the
  // first insert wins.
  Result<std::shared_ptr<const CompiledQuery>> compiled = CompileQuery(text);
  MutexLock lock(mu_);
  ++misses_;
  // Successes are stored under the canonical text so every raw variant
  // shares one entry; failures have no canonical form and key by raw.
  const std::string key = compiled.ok() ? (*compiled)->canonical_text
                                        : std::string(text);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= max_entries_) return compiled;  // full: uncached
    it = entries_.try_emplace(key).first;
    if (compiled.ok()) {
      it->second.query = *compiled;
    } else {
      it->second.error = compiled.status();
    }
  }
  if (key != text && aliases_.size() < max_entries_) {
    aliases_.emplace(std::string(text), key);
  }
  if (it->second.query != nullptr) return it->second.query;
  return it->second.error;
}

std::size_t QueryCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::size_t QueryCache::aliases() const {
  MutexLock lock(mu_);
  return aliases_.size();
}

std::size_t QueryCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::size_t QueryCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace xpv::engine
