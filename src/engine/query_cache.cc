#include "engine/query_cache.h"

namespace xpv::engine {

Result<std::shared_ptr<const CompiledQuery>> QueryCache::GetOrCompile(
    std::string_view text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(std::string(text));
    if (it != entries_.end()) {
      ++hits_;
      if (it->second.query != nullptr) return it->second.query;
      return it->second.error;
    }
  }
  // Compile outside the lock; concurrent first sightings may compile the
  // same text twice, but both produce equivalent immutable results and the
  // first insert wins.
  Result<std::shared_ptr<const CompiledQuery>> compiled = CompileQuery(text);
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  if (entries_.size() >= max_entries_ &&
      !entries_.contains(std::string(text))) {
    return compiled;  // full: serve uncached
  }
  auto [it, inserted] = entries_.try_emplace(std::string(text));
  if (inserted) {
    if (compiled.ok()) {
      it->second.query = *compiled;
    } else {
      it->second.error = compiled.status();
    }
  }
  if (it->second.query != nullptr) return it->second.query;
  return it->second.error;
}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t QueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t QueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace xpv::engine
