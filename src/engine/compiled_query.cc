#include "engine/compiled_query.h"

#include <utility>

#include "hcl/translate.h"
#include "ppl/simplify.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"
#include "xpath/simplify.h"

namespace xpv::engine {

std::string_view EnginePlanName(EnginePlan plan) {
  switch (plan) {
    case EnginePlan::kGkpPositive:
      return "gkp-positive";
    case EnginePlan::kMatrixGeneral:
      return "matrix-general";
    case EnginePlan::kNaryAnswer:
      return "nary-answer";
  }
  return "unknown";
}

Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    std::string_view text) {
  // The abbreviated parser is a superset of the core grammar (bare names,
  // //, .. desugar; every core construct still parses).
  XPV_ASSIGN_OR_RETURN(xpath::PathPtr path, xpath::ParseAbbreviatedPath(text));
  path = xpath::Simplify(std::move(path));

  auto q = std::make_shared<CompiledQuery>();
  q->text = std::string(text);

  if (xpath::CheckNoVariables(*path).ok()) {
    // Variable-free: Fig. 4 into PPLbin, then pick the cheapest engine.
    XPV_ASSIGN_OR_RETURN(ppl::PplBinPtr bin, ppl::FromXPath(*path));
    q->pplbin = ppl::Simplify(std::move(bin));
    q->plan = q->pplbin->IsPositive() ? EnginePlan::kGkpPositive
                                      : EnginePlan::kMatrixGeneral;
  } else {
    // Variables present: must be PPL; Fig. 7 into HCL-(PPLbin) for the
    // output-sensitive n-ary answering machinery.
    XPV_RETURN_IF_ERROR(xpath::CheckPpl(*path));
    XPV_ASSIGN_OR_RETURN(hcl::HclPtr c, hcl::PplToHcl(*path));
    q->hcl = std::move(c);
    for (const std::string& v : xpath::FreeVars(*path)) {
      q->tuple_vars.push_back(v);  // std::set iterates sorted
    }
    q->plan = EnginePlan::kNaryAnswer;
  }
  q->path = std::move(path);
  return std::shared_ptr<const CompiledQuery>(std::move(q));
}

}  // namespace xpv::engine
