#include "engine/compiled_query.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "hcl/translate.h"
#include "ppl/canonical.h"
#include "ppl/simplify.h"
#include "xpath/fragment.h"
#include "xpath/parser.h"
#include "xpath/simplify.h"

namespace xpv::engine {

std::string_view EnginePlanName(EnginePlan plan) {
  // Exhaustive on purpose: a new engine without a name is a compile
  // warning (-Wswitch) rather than a silent "unknown" at runtime.
  switch (plan) {
    case EnginePlan::kGkpPositive:
      return "gkp-positive";
    case EnginePlan::kMatrixGeneral:
      return "matrix-general";
    case EnginePlan::kNaryAnswer:
      return "nary-answer";
  }
  std::abort();  // unreachable: the switch above covers every enumerator
}

bool CompiledQuery::Admits(EnginePlan engine) const {
  return std::find(admissible.begin(), admissible.end(), engine) !=
         admissible.end();
}

Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    std::string_view text) {
  // The abbreviated parser is a superset of the core grammar (bare names,
  // //, .. desugar; every core construct still parses).
  XPV_ASSIGN_OR_RETURN(xpath::PathPtr path, xpath::ParseAbbreviatedPath(text));
  path = xpath::Simplify(std::move(path));

  auto q = std::make_shared<CompiledQuery>();
  q->text = std::string(text);

  if (xpath::CheckNoVariables(*path).ok()) {
    // Variable-free: Fig. 4 into PPLbin. Which engine actually runs is
    // the planner's per-(tree, shape) decision; compilation only records
    // what is admissible.
    XPV_ASSIGN_OR_RETURN(ppl::PplBinPtr bin, ppl::FromXPath(*path));
    // Canonicalize after simplification (ppl/canonical.h): every subtree
    // of the compiled form then carries canonical surface text, which
    // unifies plan-memo and subrelation-cache keys across syntactic
    // variants of one query.
    q->pplbin = ppl::Canonicalize(ppl::Simplify(std::move(bin)));
    q->positive = q->pplbin->IsPositive();
    q->pplbin_size = q->pplbin->Size();
    q->canonical_text = q->pplbin->ToString();
    if (q->positive) q->admissible.push_back(EnginePlan::kGkpPositive);
    q->admissible.push_back(EnginePlan::kMatrixGeneral);
  } else {
    // Variables present: must be PPL; Fig. 7 into HCL-(PPLbin) for the
    // output-sensitive n-ary answering machinery.
    XPV_RETURN_IF_ERROR(xpath::CheckPpl(*path));
    XPV_ASSIGN_OR_RETURN(hcl::HclPtr c, hcl::PplToHcl(*path));
    q->hcl = std::move(c);
    q->hcl_size = q->hcl->Size();
    for (const std::string& v : xpath::FreeVars(*path)) {
      q->tuple_vars.push_back(v);  // std::set iterates sorted
    }
    q->admissible.push_back(EnginePlan::kNaryAnswer);
    // N-ary canonical text: the simplified path printed back. Variables
    // keep these disjoint from every binary canonical text (PPLbin
    // surface syntax has no '$').
    q->canonical_text = path->ToString();
    // Enumerability (Prop. 8): a union-free image converts to an ACQ; if
    // that ACQ is alpha-acyclic, streams can enumerate it with
    // polynomial delay. Both facts are tree-independent.
    Result<fo::ConjunctiveQuery> cq =
        fo::HclToConjunctive(*q->hcl, q->tuple_vars);
    if (cq.ok() && fo::IsAcyclic(*cq)) {
      q->acq = std::make_shared<const fo::ConjunctiveQuery>(
          std::move(cq).value());
    }
  }
  q->path = std::move(path);
  return std::shared_ptr<const CompiledQuery>(std::move(q));
}

}  // namespace xpv::engine
