#include "engine/query_stream.h"

#include <algorithm>
#include <utility>

#include "hcl/answer.h"
#include "ppl/gkp_engine.h"
#include "ppl/matrix_engine.h"

namespace xpv::engine {

namespace internal {

void StreamState::ReleaseResources() {
  enumerator.reset();
  materialized.reset();
  node_set.reset();
  backing_built = false;
  cache.reset();
  relations.reset();
  doc.reset();
  tree = nullptr;
  if (!slot_released && adm != nullptr) {
    {
      MutexLock lock(adm->mu);
      --adm->open_streams;
      ++adm->streams_closed;
    }
    // The dispatcher may now admit a queued batch into the freed slot.
    adm->cv.NotifyAll();
  }
  slot_released = true;
}

namespace {

/// Rough resident estimate of a materialized TupleSet: per tuple, one
/// red-black node + the NodeTuple vector header + its elements.
std::size_t MaterializedBytes(const xpath::TupleSet& tuples,
                              std::size_t arity) {
  constexpr std::size_t kSetNodeOverhead = 64;   // rb-node + color + padding
  constexpr std::size_t kVectorOverhead = 24;    // NodeTuple header
  return tuples.size() *
         (kSetNodeOverhead + kVectorOverhead + arity * sizeof(NodeId));
}

/// Builds the stream's backing; returns non-OK (without marking state)
/// when evaluation fails or the token fires mid-build.
Status BuildBacking(StreamState& s) {
  const CompiledQuery& q = *s.compiled;
  switch (s.plan.backing) {
    case StreamBacking::kNone:
      return Status::Internal("stream plan has no backing");
    case StreamBacking::kEnumerator: {
      fo::AcqEnumeratorOptions options;
      options.cancel = CancelToken(&s.cancelled, s.options.deadline);
      options.dedup.max_bytes = s.options.max_dedup_bytes;
      options.axis_cache = s.cache;
      Result<fo::AcqEnumerator> e =
          fo::AcqEnumerator::Create(*s.tree, *q.acq, std::move(options));
      if (!e.ok()) return e.status();
      s.enumerator.emplace(std::move(e).value());
      break;
    }
    case StreamBacking::kMaterialized: {
      hcl::AnswerOptions options;
      options.cancel = CancelToken(&s.cancelled, s.options.deadline);
      hcl::QueryAnswerer answerer(*s.tree, *q.hcl, q.tuple_vars, options,
                                  s.cache);
      XPV_RETURN_IF_ERROR(answerer.Prepare());
      Result<xpath::TupleSet> answers = answerer.Answer();
      if (!answers.ok()) return answers.status();
      s.materialized.emplace(std::move(answers).value());
      s.mat_it = s.materialized->begin();
      s.mat_bytes = MaterializedBytes(*s.materialized, s.arity);
      break;
    }
    case StreamBacking::kNodeSet: {
      // The monadic from-root path of the planned binary engine.
      if (s.plan.engine == EnginePlan::kGkpPositive) {
        ppl::GkpEngine engine(s.cache);
        engine.set_relation_cache(s.relations);
        Result<BitVector> image = engine.FromRoot(*q.pplbin);
        if (!image.ok()) return image.status();
        s.node_set.emplace(std::move(image).value());
      } else {
        ppl::MatrixEngine engine(s.cache, ppl::MultiplyMode::kBitPacked,
                                 s.plan.repr);
        engine.set_relation_cache(s.relations);
        const ppl::PplBinExpr& px = s.plan.reassociated != nullptr
                                        ? *s.plan.reassociated
                                        : *q.pplbin;
        Result<BitVector> image = engine.EvaluateFromRoot(px);
        if (!image.ok()) return image.status();
        s.node_set.emplace(std::move(image).value());
      }
      s.node_pos = 0;
      break;
    }
  }
  s.backing_built = true;
  return Status::OK();
}

/// Advances past `offset` tuples without materializing them where the
/// backing allows it: the materialized cursor and the node-set scan
/// skip by iterator/bit advance (no NodeTuple allocations); the
/// enumerator must produce to skip, so it is left to the pull loop.
void FastSkip(StreamState& s) {
  switch (s.plan.backing) {
    case StreamBacking::kNone:
    case StreamBacking::kEnumerator:
      return;
    case StreamBacking::kMaterialized:
      while (s.skipped < s.options.offset &&
             s.mat_it != s.materialized->end()) {
        ++s.mat_it;
        ++s.skipped;
      }
      return;
    case StreamBacking::kNodeSet:
      while (s.skipped < s.options.offset) {
        const std::size_t pos = s.node_set->NextSet(s.node_pos);
        if (pos >= s.node_set->size()) return;  // pull loop sees the end
        s.node_pos = pos + 1;
        ++s.skipped;
      }
      return;
  }
}

/// Pulls the next tuple out of the built backing. OK + nullopt =
/// exhausted.
Result<std::optional<xpath::NodeTuple>> PullOne(StreamState& s) {
  switch (s.plan.backing) {
    case StreamBacking::kNone:
      return Status::Internal("stream plan has no backing");
    case StreamBacking::kEnumerator:
      return s.enumerator->Next();
    case StreamBacking::kMaterialized: {
      if (s.mat_it == s.materialized->end()) {
        return std::optional<xpath::NodeTuple>();
      }
      return std::optional<xpath::NodeTuple>(*s.mat_it++);
    }
    case StreamBacking::kNodeSet: {
      const std::size_t pos = s.node_set->NextSet(s.node_pos);
      if (pos >= s.node_set->size()) {
        return std::optional<xpath::NodeTuple>();
      }
      s.node_pos = pos + 1;
      return std::optional<xpath::NodeTuple>(
          xpath::NodeTuple{static_cast<NodeId>(pos)});
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

}  // namespace internal

using internal::StreamState;

QueryStream::QueryStream(std::unique_ptr<StreamState> state)
    : state_(std::move(state)) {}

QueryStream::QueryStream(QueryStream&&) noexcept = default;
QueryStream& QueryStream::operator=(QueryStream&&) noexcept = default;

QueryStream::~QueryStream() {
  if (state_ != nullptr) state_->ReleaseResources();
}

Result<std::vector<xpath::NodeTuple>> QueryStream::NextBatch(
    std::size_t max_tuples) {
  if (state_ == nullptr) {
    return Status::InvalidArgument("invalid (default-constructed) stream");
  }
  StreamState& s = *state_;
  if (!s.failed.ok()) return s.failed;  // sticky
  if (s.closed) {
    return Status::InvalidArgument("stream is closed");
  }
  if (max_tuples == 0) {
    return Status::InvalidArgument("NextBatch needs max_tuples >= 1");
  }
  ++s.batches;
  std::vector<xpath::NodeTuple> out;
  if (s.exhausted) return out;

  auto fail = [&](Status status) -> Result<std::vector<xpath::NodeTuple>> {
    s.failed = std::move(status);
    s.ReleaseResources();
    return s.failed;
  };

  // Phase boundary: an expired deadline / cancel is observed even before
  // any backing work starts.
  if (Status live = s.token.CheckNow(); !live.ok()) return fail(live);

  if (!s.backing_built) {
    if (Status built = internal::BuildBacking(s); !built.ok()) {
      return fail(built);
    }
  }
  if (s.skipped < s.options.offset) internal::FastSkip(s);

  while (out.size() < max_tuples) {
    if (Status live = s.token.Check(); !live.ok()) return fail(live);
    Result<std::optional<xpath::NodeTuple>> next = internal::PullOne(s);
    if (!next.ok()) return fail(next.status());
    if (!next->has_value()) {
      s.exhausted = true;
      break;
    }
    if (s.skipped < s.options.offset) {
      ++s.skipped;
      continue;
    }
    out.push_back(std::move(**next));
    ++s.produced;
    if (s.options.limit != 0 && s.produced >= s.options.limit) {
      s.exhausted = true;
      break;
    }
  }

  if (s.adm != nullptr) {
    s.adm->stream_tuples.fetch_add(out.size(), std::memory_order_relaxed);
  }
  if (s.exhausted) {
    // A drained stream stops counting against the inflight budget; the
    // handle stays valid for stats()/cursor().
    s.ReleaseResources();
  }
  return out;
}

Result<std::optional<xpath::NodeTuple>> QueryStream::Next() {
  Result<std::vector<xpath::NodeTuple>> batch = NextBatch(1);
  if (!batch.ok()) return batch.status();
  if (batch->empty()) return std::optional<xpath::NodeTuple>();
  return std::optional<xpath::NodeTuple>(std::move(batch->front()));
}

bool QueryStream::done() const {
  return state_ == nullptr || state_->exhausted || state_->closed ||
         !state_->failed.ok();
}

std::uint64_t QueryStream::cursor() const {
  if (state_ == nullptr) return 0;
  return state_->options.offset + state_->produced;
}

void QueryStream::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

void QueryStream::Close() {
  if (state_ == nullptr || state_->closed) return;
  state_->closed = true;
  state_->ReleaseResources();
}

StreamStats QueryStream::stats() const {
  StreamStats stats;
  if (state_ == nullptr) return stats;
  const StreamState& s = *state_;
  stats.produced = s.produced;
  stats.cursor = s.options.offset + s.produced;
  stats.batches = s.batches;
  stats.arity = s.arity;
  stats.exhausted = s.exhausted;
  stats.closed = s.closed;
  stats.status = s.failed;
  stats.plan = s.plan;
  if (s.enumerator.has_value()) {
    stats.backing_bytes = s.enumerator->resident_bytes();
    stats.dedup_entries = s.enumerator->dedup_entries();
  } else if (s.materialized.has_value()) {
    stats.backing_bytes = s.mat_bytes;
  } else if (s.node_set.has_value()) {
    stats.backing_bytes =
        s.node_set->words().capacity() * sizeof(std::uint64_t);
  }
  return stats;
}

}  // namespace xpv::engine
