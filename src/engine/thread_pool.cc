#include "engine/thread_pool.h"

namespace xpv::engine {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace xpv::engine
