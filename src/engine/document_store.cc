#include "engine/document_store.h"

#include <utility>

namespace xpv::engine {

namespace {

/// Unambiguous structural key for Intern(): the pre-order sweep of
/// (depth, length-prefixed label) determines the tree uniquely. ToTerm()
/// would not -- TreeBuilder accepts arbitrary label bytes (only the
/// parsers restrict names), so a label containing term metacharacters
/// could collide with a structurally different tree's serialization.
std::string InternKey(const Tree& tree) {
  std::string key;
  key.reserve(tree.size() * 8);
  for (NodeId v = 0; v < tree.size(); ++v) {
    const std::string& label = tree.label_name(v);
    key += std::to_string(tree.Depth(v));
    key += ':';
    key += std::to_string(label.size());
    key += ':';
    key += label;
    key += ';';
  }
  return key;
}

}  // namespace

DocumentStore::DocumentStore(DocumentStoreOptions options)
    : options_(options) {}

DocumentId DocumentStore::Insert(Tree tree, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  const DocumentId id = next_id_++;
  Entry entry;
  entry.doc =
      std::make_shared<const Document>(id, std::move(name), std::move(tree));
  entry.plans = std::make_shared<PlanMemo>();
  entry.lru_it = lru_.end();
  entries_.emplace(id, std::move(entry));
  return id;
}

Result<DocumentId> DocumentStore::InsertTerm(std::string_view term,
                                             std::string name) {
  Result<Tree> tree = Tree::ParseTerm(term);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

Result<DocumentId> DocumentStore::InsertXml(std::string_view xml,
                                            std::string name) {
  Result<Tree> tree = Tree::ParseXml(xml);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

DocumentId DocumentStore::Intern(Tree tree, std::string name) {
  std::string key = InternKey(tree);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = intern_index_.find(key);
  if (it != intern_index_.end()) {
    ++stats_.intern_hits;
    return it->second;
  }
  const DocumentId id = next_id_++;
  Entry entry;
  entry.doc =
      std::make_shared<const Document>(id, std::move(name), std::move(tree));
  entry.plans = std::make_shared<PlanMemo>();
  entry.lru_it = lru_.end();
  entry.intern_key = key;
  entries_.emplace(id, std::move(entry));
  intern_index_.emplace(std::move(key), id);
  return id;
}

DocumentPtr DocumentStore::Get(DocumentId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.doc;
}

bool DocumentStore::Remove(DocumentId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.cache != nullptr) {
    lru_.erase(it->second.lru_it);
  }
  // Drop the intern-index entry (if this id came from Intern()) so the key
  // can intern to a new document later.
  if (!it->second.intern_key.empty()) {
    intern_index_.erase(it->second.intern_key);
  }
  entries_.erase(it);
  return true;
}

std::shared_ptr<AxisCache> DocumentStore::AxisCacheFor(DocumentId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.cache != nullptr) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, entry.lru_it);  // move to front
    return entry.cache;
  }
  // The deleter captures the DocumentPtr so the tree the cache references
  // outlives every holder of the cache, even past Remove().
  DocumentPtr doc = entry.doc;
  entry.cache = std::shared_ptr<AxisCache>(
      new AxisCache(doc->tree()), [doc](AxisCache* c) { delete c; });
  ++stats_.cache_builds;
  lru_.push_front(id);
  entry.lru_it = lru_.begin();
  EnforceHotBoundLocked();
  return entry.cache;
}

std::shared_ptr<PlanMemo> DocumentStore::PlanMemoFor(DocumentId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.plans;
}

void DocumentStore::EnforceHotBoundLocked() {
  if (options_.max_hot_caches == 0) return;
  while (lru_.size() > options_.max_hot_caches) {
    const DocumentId victim = lru_.back();
    lru_.pop_back();
    Entry& entry = entries_.at(victim);
    entry.cache = nullptr;  // in-flight shared_ptrs keep it alive
    entry.lru_it = lru_.end();
    ++stats_.cache_retirements;
  }
}

std::size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

DocumentStoreStats DocumentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DocumentStoreStats stats = stats_;
  // Derived live, not hand-maintained at every mutation site.
  stats.documents = entries_.size();
  stats.hot_caches = lru_.size();
  return stats;
}

}  // namespace xpv::engine
