#include "engine/document_store.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "engine/snapshot.h"

namespace xpv::engine {

namespace {

/// Unambiguous structural key for Intern(): the pre-order sweep of
/// (depth, length-prefixed label) determines the tree uniquely. ToTerm()
/// would not -- TreeBuilder accepts arbitrary label bytes (only the
/// parsers restrict names), so a label containing term metacharacters
/// could collide with a structurally different tree's serialization.
std::string InternKey(const Tree& tree) {
  std::string key;
  key.reserve(tree.size() * 8);
  for (NodeId v = 0; v < tree.size(); ++v) {
    const std::string& label = tree.label_name(v);
    key += std::to_string(tree.Depth(v));
    key += ':';
    key += std::to_string(label.size());
    key += ':';
    key += label;
    key += ';';
  }
  return key;
}

}  // namespace

DocumentStore::DocumentStore(DocumentStoreOptions options)
    : options_(std::move(options)) {
  std::size_t num_shards = options_.num_shards == 0 ? 1 : options_.num_shards;
  // Every shard keeps at least one cache hot (a zero-budget shard would
  // rebuild on every access), so a hot bound tighter than the shard count
  // clamps the shard count instead of silently loosening the configured
  // memory cap: max_hot_caches is a hard bound. The residency budget
  // clamps the same way: a per-shard budget of 0 would mean "unbounded".
  if (options_.max_hot_caches != 0) {
    num_shards = std::min(num_shards, options_.max_hot_caches);
  }
  const bool spill = !options_.spill_dir.empty() &&
                     options_.max_resident_docs != 0;
  if (spill) {
    num_shards = std::min(num_shards, options_.max_resident_docs);
  }
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    if (options_.max_hot_caches != 0) {
      // Spread the budget's remainder over the first shards so the whole
      // configured bound is usable (e.g. 12 over 8 shards = 4x2 + 4x1).
      shards_.back()->hot_budget =
          options_.max_hot_caches / num_shards +
          (s < options_.max_hot_caches % num_shards ? 1 : 0);
    }
    if (spill) {
      shards_.back()->resident_budget =
          options_.max_resident_docs / num_shards +
          (s < options_.max_resident_docs % num_shards ? 1 : 0);
    }
  }
}

std::string DocumentStore::SpillPath(DocumentId id) const {
  return options_.spill_dir + "/" + SegmentFileName(id);
}

void DocumentStore::Store(DocumentId id, std::string name, Tree tree,
                          std::string intern_key) {
  Entry entry;
  entry.doc =
      std::make_shared<const Document>(id, std::move(name), std::move(tree));
  entry.plans = std::make_shared<PlanMemo>();
  if (options_.relation_cache_bytes > 0) {
    entry.relations =
        std::make_shared<ppl::RelationCache>(options_.relation_cache_bytes);
  }
  entry.intern_key = std::move(intern_key);
  Shard& shard = *shards_[shard_of(id)];
  MutexLock lock(shard.mu);
  entry.lru_it = shard.lru.end();
  entry.res_it = shard.resident.end();
  auto [it, inserted] = shard.entries.emplace(id, std::move(entry));
  (void)inserted;
  TouchResidentLocked(shard, id, it->second);
  EnforceResidencyLocked(shard);
}

void DocumentStore::TouchResidentLocked(Shard& shard, DocumentId id,
                                        Entry& entry) {
  if (entry.doc == nullptr) return;
  if (entry.res_it != shard.resident.end()) {
    shard.resident.splice(shard.resident.begin(), shard.resident,
                          entry.res_it);
  } else {
    shard.resident.push_front(id);
    entry.res_it = shard.resident.begin();
  }
}

void DocumentStore::EnforceResidencyLocked(Shard& shard) {
  if (shard.resident_budget == 0) return;
  while (shard.resident.size() > shard.resident_budget) {
    // The victim is the least recently touched *spillable* document: no
    // hot AxisCache references its tree, and nothing outside the store
    // holds a DocumentPtr (use_count 1 = only our own strong ref), so
    // streams and in-flight jobs are never pulled out from under.
    auto victim = shard.resident.end();
    for (auto rit = shard.resident.rbegin(); rit != shard.resident.rend();
         ++rit) {
      const Entry& e = shard.entries.at(*rit);
      if (e.cache == nullptr && e.doc.use_count() == 1) {
        victim = std::prev(rit.base());
        break;
      }
    }
    if (victim == shard.resident.end()) return;  // everything is pinned
    const DocumentId id = *victim;
    Entry& entry = shard.entries.at(id);
    if (!entry.on_disk) {
      // Keep the document resident rather than risk losing it when the
      // disk misbehaves (ENOSPC and friends); the budget is best-effort
      // in exactly this one case.
      if (!WriteDocumentSegment(SpillPath(id), id, entry.doc->name(),
                                entry.doc->tree(), /*cache=*/nullptr,
                                !entry.intern_key.empty())
               .ok()) {
        return;
      }
      entry.on_disk = true;
    }
    entry.spilled = entry.doc;  // reattach handle for racing holders
    entry.doc = nullptr;
    shard.resident.erase(victim);
    entry.res_it = shard.resident.end();
    ++shard.stats.doc_spills;
  }
}

Result<DocumentPtr> DocumentStore::FaultInLocked(Shard& shard, DocumentId id,
                                                 Entry& entry) {
  if (entry.doc != nullptr) {
    // Pin before enforcing: a batch that just finished may have left the
    // shard over budget (its jobs' pins blocked eviction), and this touch
    // is the next chance to settle back under it.
    DocumentPtr doc = entry.doc;
    TouchResidentLocked(shard, id, entry);
    EnforceResidencyLocked(shard);
    return doc;
  }
  if (DocumentPtr live = entry.spilled.lock()) {
    // Some holder acquired the DocumentPtr before the spill and still has
    // it: the Document never left memory, so adopt it back for free.
    entry.doc = std::move(live);
    ++shard.stats.doc_reattaches;
    DocumentPtr doc = entry.doc;  // pin: see the resident path above
    TouchResidentLocked(shard, id, entry);
    EnforceResidencyLocked(shard);  // reattaching grows the resident set
    return doc;
  }
  XPV_ASSIGN_OR_RETURN(LoadedSegment segment,
                       LoadDocumentSegment(SpillPath(id)));
  ++shard.stats.doc_reloads;
  shard.stats.mmap_bytes += segment.mapped_bytes;
  entry.doc = std::make_shared<const Document>(
      id, std::move(segment.meta.name), std::move(segment.tree));
  // The local copy makes use_count 2, so the enforcement pass below can
  // spill *other* documents but never the one being handed out.
  DocumentPtr doc = entry.doc;
  TouchResidentLocked(shard, id, entry);
  EnforceResidencyLocked(shard);  // faulting one in may push one out
  return doc;
}

DocumentId DocumentStore::Insert(Tree tree, std::string name) {
  const DocumentId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Store(id, std::move(name), std::move(tree), {});
  return id;
}

Result<DocumentId> DocumentStore::InsertTerm(std::string_view term,
                                             std::string name) {
  Result<Tree> tree = Tree::ParseTerm(term);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

Result<DocumentId> DocumentStore::InsertXml(std::string_view xml,
                                            std::string name) {
  Result<Tree> tree = Tree::ParseXml(xml);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

DocumentId DocumentStore::Intern(Tree tree, std::string name) {
  std::string key = InternKey(tree);
  // intern_mu_ is held across the shard insertion (intern -> shard lock
  // order) so a racing Intern of the same key cannot observe the index
  // entry before the document is resolvable.
  MutexLock intern_lock(intern_mu_);
  auto it = intern_index_.find(key);
  if (it != intern_index_.end()) {
    ++intern_hits_;
    return it->second;
  }
  const DocumentId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Store(id, std::move(name), std::move(tree), key);
  intern_index_.emplace(std::move(key), id);
  return id;
}

Result<DocumentPtr> DocumentStore::Fetch(DocumentId id) {
  Shard& shard = *shards_[shard_of(id)];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  return FaultInLocked(shard, id, it->second);
}

DocumentPtr DocumentStore::Get(DocumentId id) {
  Result<DocumentPtr> doc = Fetch(id);
  return doc.ok() ? std::move(doc).value() : nullptr;
}

bool DocumentStore::Remove(DocumentId id) {
  // intern_mu_ is held across the whole removal (intern -> shard lock
  // order, same as Intern) so entry and intern-index key disappear
  // atomically: a racing Intern of an equal tree either sees the key and
  // returns this id while its entry still exists, or sees neither and
  // interns a fresh document -- never a key pointing at an erased entry.
  MutexLock intern_lock(intern_mu_);
  std::string intern_key;
  bool segment_on_disk = false;
  {
    Shard& shard = *shards_[shard_of(id)];
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    if (it->second.cache != nullptr) {
      shard.lru.erase(it->second.lru_it);
    }
    if (it->second.doc != nullptr) {
      shard.resident.erase(it->second.res_it);
    }
    segment_on_disk = it->second.on_disk;
    intern_key = std::move(it->second.intern_key);
    shard.entries.erase(it);
  }
  // Delete the spill segment with the entry: a removed document must not
  // leave an orphaned doc-<id>.xpvseg behind (ids are never reused, so
  // nothing can ever want this file again).
  if (segment_on_disk) {
    std::remove(SpillPath(id).c_str());
  }
  // Drop the intern-index entry (if this id came from Intern()) so the
  // key can intern to a new document later.
  if (!intern_key.empty()) {
    intern_index_.erase(intern_key);
  }
  return true;
}

std::shared_ptr<AxisCache> DocumentStore::AxisCacheFor(DocumentId id) {
  Shard& shard = *shards_[shard_of(id)];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.cache != nullptr) {
    ++shard.stats.cache_hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
    TouchResidentLocked(shard, id, entry);
    return entry.cache;
  }
  // A spilled document's tree must come back before a cache can
  // reference it; a failed fault-in degrades to the nullable contract.
  Result<DocumentPtr> faulted = FaultInLocked(shard, id, entry);
  if (!faulted.ok()) return nullptr;
  // The deleter captures the DocumentPtr so the tree the cache references
  // outlives every holder of the cache, even past Remove().
  DocumentPtr doc = std::move(faulted).value();
  entry.cache = std::shared_ptr<AxisCache>(
      new AxisCache(doc->tree(), options_.axis_backing),
      [doc](AxisCache* c) { delete c; });
  ++shard.stats.cache_builds;
  shard.lru.push_front(id);
  entry.lru_it = shard.lru.begin();
  EnforceHotBoundLocked(shard);
  return entry.cache;
}

std::shared_ptr<PlanMemo> DocumentStore::PlanMemoFor(DocumentId id) const {
  const Shard& shard = *shards_[shard_of(id)];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.plans;
}

std::shared_ptr<ppl::RelationCache> DocumentStore::RelationCacheFor(
    DocumentId id) const {
  const Shard& shard = *shards_[shard_of(id)];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.relations;
}

void DocumentStore::EnforceHotBoundLocked(Shard& shard) {
  if (shard.hot_budget == 0) return;
  while (shard.lru.size() > shard.hot_budget) {
    const DocumentId victim = shard.lru.back();
    shard.lru.pop_back();
    Entry& entry = shard.entries.at(victim);
    entry.cache = nullptr;  // in-flight shared_ptrs keep it alive
    entry.lru_it = shard.lru.end();
    ++shard.stats.cache_retirements;
  }
}

std::size_t DocumentStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

DocumentStoreStats DocumentStore::SnapshotShardStats(
    const Shard& shard) const {
  // Gauges derived live, not hand-maintained at every mutation site.
  DocumentStoreStats stats = shard.stats;
  stats.documents = shard.entries.size();
  stats.hot_caches = shard.lru.size();
  stats.hot_cache_bytes = 0;
  for (DocumentId id : shard.lru) {
    stats.hot_cache_bytes +=
        shard.entries.at(id).cache->approx_resident_bytes();
  }
  for (const auto& [id, entry] : shard.entries) {
    if (entry.doc != nullptr) {
      ++stats.resident_docs;
      // Tree::resident_bytes of the in-memory trees only: a spilled
      // document's (possibly mmap'd) cold bytes never count as hot.
      stats.resident_doc_bytes += entry.doc->tree().resident_bytes();
    } else {
      ++stats.spilled_docs;
    }
    if (entry.relations == nullptr) continue;
    const ppl::RelationCacheStats rel = entry.relations->stats();
    stats.relation_hits += rel.hits;
    stats.relation_misses += rel.misses;
    stats.relation_cache_bytes += rel.resident_bytes;
  }
  return stats;
}

std::vector<DocumentStoreStats> DocumentStore::shard_stats() const {
  std::vector<DocumentStoreStats> all;
  all.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    all.push_back(SnapshotShardStats(*shard));
  }
  // Intern hits are store-wide (the index is not sharded); report them on
  // shard 0 so the aggregate sum matches stats().
  {
    MutexLock intern_lock(intern_mu_);
    all[0].intern_hits = intern_hits_;
  }
  return all;
}

DocumentStoreStats DocumentStore::stats() const {
  DocumentStoreStats total;
  for (const DocumentStoreStats& s : shard_stats()) {
    total.documents += s.documents;
    total.hot_caches += s.hot_caches;
    total.hot_cache_bytes += s.hot_cache_bytes;
    total.cache_builds += s.cache_builds;
    total.cache_hits += s.cache_hits;
    total.cache_retirements += s.cache_retirements;
    total.intern_hits += s.intern_hits;
    total.relation_hits += s.relation_hits;
    total.relation_misses += s.relation_misses;
    total.relation_cache_bytes += s.relation_cache_bytes;
    total.resident_docs += s.resident_docs;
    total.spilled_docs += s.spilled_docs;
    total.resident_doc_bytes += s.resident_doc_bytes;
    total.doc_spills += s.doc_spills;
    total.doc_reloads += s.doc_reloads;
    total.doc_reattaches += s.doc_reattaches;
    total.mmap_bytes += s.mmap_bytes;
  }
  return total;
}

Status DocumentStore::SaveSnapshot(const std::string& dir) {
  SnapshotManifest manifest;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto& [id, entry] : shard.entries) {
      if (entry.doc == nullptr && entry.on_disk &&
          dir == options_.spill_dir) {
        // Cold document whose segment already lives in the target
        // directory: nothing to rewrite (segments of immutable documents
        // never go stale).
        manifest.document_ids.push_back(id);
        continue;
      }
      XPV_ASSIGN_OR_RETURN(DocumentPtr doc, FaultInLocked(shard, id, entry));
      XPV_RETURN_IF_ERROR(WriteDocumentSegment(
          dir + "/" + SegmentFileName(id), id, doc->name(), doc->tree(),
          entry.cache.get(), !entry.intern_key.empty()));
      manifest.document_ids.push_back(id);
      if (dir == options_.spill_dir) entry.on_disk = true;
      // `doc` pins the just-written document, so this can only push
      // *earlier* documents back out -- peak residency is budget + 1.
      EnforceResidencyLocked(shard);
    }
  }
  std::sort(manifest.document_ids.begin(), manifest.document_ids.end());
  manifest.next_document_id = next_id_.load(std::memory_order_relaxed);
  // The manifest is written last: a crash anywhere above leaves either
  // the previous manifest (a complete old snapshot) or none at all.
  return WriteManifest(dir, manifest);
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::OpenSnapshot(
    const std::string& dir, DocumentStoreOptions options) {
  XPV_ASSIGN_OR_RETURN(SnapshotManifest manifest, LoadManifest(dir));
  if (options.spill_dir.empty()) options.spill_dir = dir;
  std::unique_ptr<DocumentStore> store(new DocumentStore(std::move(options)));
  store->next_id_.store(manifest.next_document_id, std::memory_order_relaxed);
  for (DocumentId id : manifest.document_ids) {
    XPV_ASSIGN_OR_RETURN(
        LoadedSegment segment,
        LoadDocumentSegment(dir + "/" + SegmentFileName(id)));
    if (segment.meta.document_id != id) {
      return Status::DataLoss("segment for document " + std::to_string(id) +
                              " carries id " +
                              std::to_string(segment.meta.document_id));
    }
    Shard& shard = *store->shards_[store->shard_of(id)];
    Entry entry;
    entry.doc = std::make_shared<const Document>(
        id, std::move(segment.meta.name), std::move(segment.tree));
    entry.plans = std::make_shared<PlanMemo>();
    if (store->options_.relation_cache_bytes > 0) {
      entry.relations = std::make_shared<ppl::RelationCache>(
          store->options_.relation_cache_bytes);
    }
    entry.on_disk = dir == store->options_.spill_dir;
    if (segment.meta.interned) {
      // The intern key is a pure function of the tree, so recomputing it
      // beats persisting it (it can be nearly as large as the tree).
      entry.intern_key = InternKey(entry.doc->tree());
    }
    MutexLock intern_lock(store->intern_mu_);
    if (!entry.intern_key.empty()) {
      auto [it, inserted] =
          store->intern_index_.emplace(entry.intern_key, id);
      (void)it;
      if (!inserted) {
        return Status::DataLoss("two interned segments decode to the same "
                                "tree (document " +
                                std::to_string(id) + ")");
      }
    }
    MutexLock lock(shard.mu);
    entry.lru_it = shard.lru.end();
    entry.res_it = shard.resident.end();
    auto [it, inserted] = shard.entries.emplace(id, std::move(entry));
    if (!inserted) {
      return Status::DataLoss("manifest lists document " +
                              std::to_string(id) + " twice");
    }
    Entry& stored = it->second;
    shard.stats.mmap_bytes += segment.mapped_bytes;
    store->TouchResidentLocked(shard, id, stored);
    if (!segment.axes.empty()) {
      // Reinstate the warm AxisCache exactly as a fresh build would have
      // produced it: same backing policy, same bits, zero rebuild work.
      DocumentPtr doc = stored.doc;
      stored.cache = std::shared_ptr<AxisCache>(
          new AxisCache(doc->tree(), store->options_.axis_backing),
          [doc](AxisCache* c) { delete c; });
      const bool dense = !stored.cache->interval_backed();
      for (auto& [axis, runs] : segment.axes) {
        stored.cache->InstallPrebuilt(
            axis, AxisMatrixForBacking(std::move(runs), dense));
      }
      ++shard.stats.cache_builds;
      shard.lru.push_front(id);
      stored.lru_it = shard.lru.begin();
      store->EnforceHotBoundLocked(shard);
    }
    // Keep the load itself inside the memory budget: documents beyond it
    // spill right away (for free -- their segment is already on disk), so
    // peak residency during a reload is budget + the document in hand.
    store->EnforceResidencyLocked(shard);
  }
  return store;
}

}  // namespace xpv::engine
