#include "engine/document_store.h"

#include <algorithm>
#include <utility>

namespace xpv::engine {

namespace {

/// Unambiguous structural key for Intern(): the pre-order sweep of
/// (depth, length-prefixed label) determines the tree uniquely. ToTerm()
/// would not -- TreeBuilder accepts arbitrary label bytes (only the
/// parsers restrict names), so a label containing term metacharacters
/// could collide with a structurally different tree's serialization.
std::string InternKey(const Tree& tree) {
  std::string key;
  key.reserve(tree.size() * 8);
  for (NodeId v = 0; v < tree.size(); ++v) {
    const std::string& label = tree.label_name(v);
    key += std::to_string(tree.Depth(v));
    key += ':';
    key += std::to_string(label.size());
    key += ':';
    key += label;
    key += ';';
  }
  return key;
}

}  // namespace

DocumentStore::DocumentStore(DocumentStoreOptions options)
    : options_(options) {
  std::size_t num_shards = options_.num_shards == 0 ? 1 : options_.num_shards;
  // Every shard keeps at least one cache hot (a zero-budget shard would
  // rebuild on every access), so a hot bound tighter than the shard count
  // clamps the shard count instead of silently loosening the configured
  // memory cap: max_hot_caches is a hard bound.
  if (options_.max_hot_caches != 0) {
    num_shards = std::min(num_shards, options_.max_hot_caches);
  }
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    if (options_.max_hot_caches != 0) {
      // Spread the budget's remainder over the first shards so the whole
      // configured bound is usable (e.g. 12 over 8 shards = 4x2 + 4x1).
      shards_.back()->hot_budget =
          options_.max_hot_caches / num_shards +
          (s < options_.max_hot_caches % num_shards ? 1 : 0);
    }
  }
}

void DocumentStore::Store(DocumentId id, std::string name, Tree tree,
                          std::string intern_key) {
  Entry entry;
  entry.doc =
      std::make_shared<const Document>(id, std::move(name), std::move(tree));
  entry.plans = std::make_shared<PlanMemo>();
  if (options_.relation_cache_bytes > 0) {
    entry.relations =
        std::make_shared<ppl::RelationCache>(options_.relation_cache_bytes);
  }
  entry.intern_key = std::move(intern_key);
  Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  entry.lru_it = shard.lru.end();
  shard.entries.emplace(id, std::move(entry));
}

DocumentId DocumentStore::Insert(Tree tree, std::string name) {
  const DocumentId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Store(id, std::move(name), std::move(tree), {});
  return id;
}

Result<DocumentId> DocumentStore::InsertTerm(std::string_view term,
                                             std::string name) {
  Result<Tree> tree = Tree::ParseTerm(term);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

Result<DocumentId> DocumentStore::InsertXml(std::string_view xml,
                                            std::string name) {
  Result<Tree> tree = Tree::ParseXml(xml);
  if (!tree.ok()) return tree.status();
  return Insert(std::move(tree).value(), std::move(name));
}

DocumentId DocumentStore::Intern(Tree tree, std::string name) {
  std::string key = InternKey(tree);
  // intern_mu_ is held across the shard insertion (intern -> shard lock
  // order) so a racing Intern of the same key cannot observe the index
  // entry before the document is resolvable.
  std::lock_guard<std::mutex> intern_lock(intern_mu_);
  auto it = intern_index_.find(key);
  if (it != intern_index_.end()) {
    ++intern_hits_;
    return it->second;
  }
  const DocumentId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Store(id, std::move(name), std::move(tree), key);
  intern_index_.emplace(std::move(key), id);
  return id;
}

DocumentPtr DocumentStore::Get(DocumentId id) const {
  const Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.doc;
}

bool DocumentStore::Remove(DocumentId id) {
  // intern_mu_ is held across the whole removal (intern -> shard lock
  // order, same as Intern) so entry and intern-index key disappear
  // atomically: a racing Intern of an equal tree either sees the key and
  // returns this id while its entry still exists, or sees neither and
  // interns a fresh document -- never a key pointing at an erased entry.
  std::lock_guard<std::mutex> intern_lock(intern_mu_);
  std::string intern_key;
  {
    Shard& shard = *shards_[shard_of(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    if (it->second.cache != nullptr) {
      shard.lru.erase(it->second.lru_it);
    }
    intern_key = std::move(it->second.intern_key);
    shard.entries.erase(it);
  }
  // Drop the intern-index entry (if this id came from Intern()) so the
  // key can intern to a new document later.
  if (!intern_key.empty()) {
    intern_index_.erase(intern_key);
  }
  return true;
}

std::shared_ptr<AxisCache> DocumentStore::AxisCacheFor(DocumentId id) {
  Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.cache != nullptr) {
    ++shard.stats.cache_hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
    return entry.cache;
  }
  // The deleter captures the DocumentPtr so the tree the cache references
  // outlives every holder of the cache, even past Remove().
  DocumentPtr doc = entry.doc;
  entry.cache = std::shared_ptr<AxisCache>(
      new AxisCache(doc->tree(), options_.axis_backing),
      [doc](AxisCache* c) { delete c; });
  ++shard.stats.cache_builds;
  shard.lru.push_front(id);
  entry.lru_it = shard.lru.begin();
  EnforceHotBoundLocked(shard);
  return entry.cache;
}

std::shared_ptr<PlanMemo> DocumentStore::PlanMemoFor(DocumentId id) const {
  const Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.plans;
}

std::shared_ptr<ppl::RelationCache> DocumentStore::RelationCacheFor(
    DocumentId id) const {
  const Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.relations;
}

void DocumentStore::EnforceHotBoundLocked(Shard& shard) {
  if (shard.hot_budget == 0) return;
  while (shard.lru.size() > shard.hot_budget) {
    const DocumentId victim = shard.lru.back();
    shard.lru.pop_back();
    Entry& entry = shard.entries.at(victim);
    entry.cache = nullptr;  // in-flight shared_ptrs keep it alive
    entry.lru_it = shard.lru.end();
    ++shard.stats.cache_retirements;
  }
}

std::size_t DocumentStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

DocumentStoreStats DocumentStore::SnapshotShardStats(
    const Shard& shard) const {
  // Gauges derived live, not hand-maintained at every mutation site.
  DocumentStoreStats stats = shard.stats;
  stats.documents = shard.entries.size();
  stats.hot_caches = shard.lru.size();
  stats.hot_cache_bytes = 0;
  for (DocumentId id : shard.lru) {
    stats.hot_cache_bytes +=
        shard.entries.at(id).cache->approx_resident_bytes();
  }
  for (const auto& [id, entry] : shard.entries) {
    if (entry.relations == nullptr) continue;
    const ppl::RelationCacheStats rel = entry.relations->stats();
    stats.relation_hits += rel.hits;
    stats.relation_misses += rel.misses;
    stats.relation_cache_bytes += rel.resident_bytes;
  }
  return stats;
}

std::vector<DocumentStoreStats> DocumentStore::shard_stats() const {
  std::vector<DocumentStoreStats> all;
  all.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    all.push_back(SnapshotShardStats(*shard));
  }
  // Intern hits are store-wide (the index is not sharded); report them on
  // shard 0 so the aggregate sum matches stats().
  {
    std::lock_guard<std::mutex> intern_lock(intern_mu_);
    all[0].intern_hits = intern_hits_;
  }
  return all;
}

DocumentStoreStats DocumentStore::stats() const {
  DocumentStoreStats total;
  for (const DocumentStoreStats& s : shard_stats()) {
    total.documents += s.documents;
    total.hot_caches += s.hot_caches;
    total.hot_cache_bytes += s.hot_cache_bytes;
    total.cache_builds += s.cache_builds;
    total.cache_hits += s.cache_hits;
    total.cache_retirements += s.cache_retirements;
    total.intern_hits += s.intern_hits;
    total.relation_hits += s.relation_hits;
    total.relation_misses += s.relation_misses;
    total.relation_cache_bytes += s.relation_cache_bytes;
  }
  return total;
}

}  // namespace xpv::engine
