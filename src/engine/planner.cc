#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "common/bit_matrix.h"
#include "ppl/pplbin.h"
#include "tree/axes.h"
#include "tree/axis_cache.h"

namespace xpv::engine {

namespace {

double WordsPerRow(double n) {
  return std::max(1.0, std::ceil(n / 64.0));
}

/// Heuristic upper bound on |domain(P)| from the tree's posting lists.
/// domain(A::N) is the inverse-axis image of N's posting list, so it is
/// bounded by the posting size times how far one target can "spread"
/// backwards along A: one parent per node (child), at most max_fanout
/// siblings / children (siblings, parent), at most max_depth ancestors
/// (descendant). Only cost estimates depend on this -- every admissible
/// plan computes identical answers (enforced by tests/planner_test.cc).
double DomainBound(const ppl::PplBinExpr& p, const Tree& tree) {
  const TreeStats& s = tree.Stats();
  const double n = static_cast<double>(s.node_count);
  switch (p.kind) {
    case ppl::PplBinKind::kStep: {
      // PplBinExpr::Step normalizes the "*" wildcard to "".
      if (p.name_test.empty()) return n;
      const double f = static_cast<double>(tree.LabelFrequency(p.name_test));
      const double fanout = static_cast<double>(std::max<std::size_t>(
          s.max_fanout, 1));
      switch (p.axis) {
        case Axis::kSelf:
          return f;
        case Axis::kChild:
          return std::min(n, f);  // each labeled child has one parent
        case Axis::kParent:
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          return std::min(n, f * fanout);
        case Axis::kDescendant:
          return std::min(n, f * static_cast<double>(s.max_depth + 1));
        case Axis::kAncestor:
          return n;  // a labeled ancestor admits its whole subtree
      }
      return n;
    }
    case ppl::PplBinKind::kCompose:
      // domain(P1/P2) is contained in domain(P1).
      return DomainBound(*p.left, tree);
    case ppl::PplBinKind::kUnion:
      return std::min(
          n, DomainBound(*p.left, tree) + DomainBound(*p.right, tree));
    case ppl::PplBinKind::kFilter:
      // domain([Q]) = domain(Q).
      return DomainBound(*p.left, tree);
    case ppl::PplBinKind::kComplement:
      return n;
  }
  return n;
}

/// Cost (word ops) of the full matrix evaluation: |P| Boolean products.
double MatrixFullCost(std::size_t pplbin_size, double n) {
  return static_cast<double>(pplbin_size) * n * n * WordsPerRow(n);
}

/// Estimated cost of accessing one row of a cached axis relation, in
/// word-op equivalents, per representation. Dense rows are ceil(n/64)
/// contiguous words; interval rows are a handful of runs -- O(log n) on
/// balanced and random trees (tree/axes.h) -- each touched in O(1) by
/// the run-native kernels. The planner mirrors AxisCache's kAuto policy
/// (the backing QueryService actually uses), keeping plans deterministic
/// functions of (query, tree stats, shape).
double AxisRowAccessCost(double n) {
  const bool interval =
      n > static_cast<double>(AxisCache::kAutoDenseMaxNodes);
  return interval ? std::max(1.0, std::log2(std::max(2.0, n)))
                  : WordsPerRow(n);
}

/// Cost of the row-restricted matrix path: positive operators propagate
/// one BitVector (O(|t|) each); a complement over a plain step runs one
/// kernel pass over the cached axis relation (per-row access cost depends
/// on its representation); any other complement falls back to the full
/// matrix evaluation of its subexpression.
double MatrixMonadicCost(const ppl::PplBinExpr& p, double n) {
  switch (p.kind) {
    case ppl::PplBinKind::kStep:
      return n;
    case ppl::PplBinKind::kCompose:
    case ppl::PplBinKind::kUnion:
      return MatrixMonadicCost(*p.left, n) + MatrixMonadicCost(*p.right, n) +
             WordsPerRow(n);
    case ppl::PplBinKind::kFilter:
      // The domain resolves by a preimage walk of the same shape.
      return MatrixMonadicCost(*p.left, n) + WordsPerRow(n);
    case ppl::PplBinKind::kComplement:
      if (p.left->kind == ppl::PplBinKind::kStep) {
        return n * AxisRowAccessCost(n) + n + WordsPerRow(n);
      }
      return MatrixFullCost(p.left->Size(), n) + n * WordsPerRow(n);
  }
  return n;
}

/// Per-row shape estimate for one sparse (CSR run-list) evaluation of a
/// PPLbin expression: average set cells and runs per result row, the cost
/// in word-op equivalents, and the peak total run count live at any node
/// of the bottom-up evaluation (operands plus result). All averages; the
/// engine's run budget is the hard backstop when an adversarial instance
/// beats the estimate.
struct SparseEst {
  double cost = 0.0;
  double nnz = 0.0;        // avg set cells per result row
  double runs = 0.0;       // avg runs per result row
  double peak_runs = 0.0;  // max total runs live at once
};

/// Shape and cost of one sparse composition a/b, given the operand
/// estimates. Per output row the SpGEMM gathers a run from b for every
/// (set cell of a's row, run of the selected b row) pair, then either
/// sort-merges them or blits a dense accumulator row -- whichever the
/// kernel's own per-row fallback would pick. Factored out so the
/// reassociation DP can estimate subchain shapes with the same
/// arithmetic the crossover uses.
SparseEst ComposeEstimates(const SparseEst& a, const SparseEst& b,
                           double n) {
  SparseEst out;
  const double k = std::max(1.0, a.nnz * b.runs);
  const double merge = std::min(k * std::log2(k + 2.0), k + n / 32.0);
  out.cost = a.cost + b.cost + n * merge;
  out.nnz = std::min(n, a.nnz * b.nnz);
  out.runs = std::max(1.0, std::min(k, out.nnz));
  out.peak_runs = std::max({a.peak_runs, b.peak_runs,
                            n * (a.runs + b.runs + out.runs)});
  return out;
}

SparseEst SparseCost(const ppl::PplBinExpr& p, const Tree& tree) {
  const TreeStats& s = tree.Stats();
  const double n =
      static_cast<double>(std::max<std::size_t>(s.node_count, 1));
  SparseEst out;
  switch (p.kind) {
    case ppl::PplBinKind::kStep: {
      const double depth = static_cast<double>(s.max_depth + 1);
      const double fanout =
          static_cast<double>(std::max<std::size_t>(s.max_fanout, 1));
      double nnz = 1.0;
      double runs = 1.0;
      switch (p.axis) {
        case Axis::kSelf:
        case Axis::kParent:
          nnz = runs = 1.0;
          break;
        case Axis::kChild:
          // Children head disjoint subtrees: scattered preorder ids.
          nnz = runs = std::min(n, fanout);
          break;
        case Axis::kDescendant:
          // A subtree is one contiguous preorder range: a single run.
          nnz = std::min(n, depth);
          runs = 1.0;
          break;
        case Axis::kAncestor:
          nnz = runs = std::min(n, depth);
          break;
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          nnz = runs = std::min(n, fanout);
          break;
      }
      if (!p.name_test.empty()) {
        const double sel = std::min(
            1.0, static_cast<double>(tree.LabelFrequency(p.name_test)) / n);
        const double masked = nnz * sel;
        // Masking splits runs: each surviving cell can end a run, so the
        // run count moves from the axis's toward one-run-per-cell as the
        // label gets rarer.
        runs = std::min(std::max(1.0, masked), runs + masked * (1.0 - sel));
        nnz = masked;
      }
      out.nnz = nnz;
      out.runs = runs;
      out.cost = n * std::max(1.0, runs);  // AxisCache::SparseStep build
      out.peak_runs = n * runs;
      return out;
    }
    case ppl::PplBinKind::kCompose:
      return ComposeEstimates(SparseCost(*p.left, tree),
                              SparseCost(*p.right, tree), n);
    case ppl::PplBinKind::kUnion: {
      const SparseEst a = SparseCost(*p.left, tree);
      const SparseEst b = SparseCost(*p.right, tree);
      out.cost = a.cost + b.cost + n * (a.runs + b.runs);
      out.nnz = std::min(n, a.nnz + b.nnz);
      out.runs = std::max(1.0, std::min(a.runs + b.runs, out.nnz));
      out.peak_runs = std::max({a.peak_runs, b.peak_runs,
                                n * (a.runs + b.runs + out.runs)});
      return out;
    }
    case ppl::PplBinKind::kComplement: {
      const SparseEst a = SparseCost(*p.left, tree);
      // Gap inversion: at most one more run per row, but the population
      // flips -- a sparse relation's complement is dense in cells even
      // though it stays cheap in runs.
      out.cost = a.cost + n * (a.runs + 1.0);
      out.nnz = std::max(0.0, n - a.nnz);
      out.runs = a.runs + 1.0;
      out.peak_runs =
          std::max(a.peak_runs, n * (a.runs + out.runs));
      return out;
    }
    case ppl::PplBinKind::kFilter: {
      const SparseEst a = SparseCost(*p.left, tree);
      out.cost = a.cost + n;
      out.nnz = 1.0;  // diagonal: at most one cell per row
      out.runs = 1.0;
      out.peak_runs = std::max(a.peak_runs, n * (a.runs + 1.0));
      return out;
    }
  }
  std::abort();  // unreachable: the switch above covers every PplBinKind
}

/// Estimated peak heap bytes of one sparse evaluation: the live runs plus
/// CSR row-offset arrays for the (at most three) matrices alive at the
/// widest node.
double SparsePeakBytes(const SparseEst& est, double n) {
  return est.peak_runs * static_cast<double>(sizeof(IntervalRun)) +
         3.0 * n * static_cast<double>(sizeof(std::uint32_t));
}

/// True iff the monadic matrix path must materialize a dense sub-matrix:
/// some complement's operand is not a plain step (complement-of-step runs
/// on the cached axis relation directly, whatever its representation).
bool HasNonStepComplement(const ppl::PplBinExpr& p) {
  switch (p.kind) {
    case ppl::PplBinKind::kStep:
      return false;
    case ppl::PplBinKind::kCompose:
    case ppl::PplBinKind::kUnion:
      return HasNonStepComplement(*p.left) || HasNonStepComplement(*p.right);
    case ppl::PplBinKind::kFilter:
      return HasNonStepComplement(*p.left);
    case ppl::PplBinKind::kComplement:
      return p.left->kind != ppl::PplBinKind::kStep;
  }
  return false;
}

/// Cost of the single Boolean product a/b, EXCLUDING the cost of
/// building the operands (each factor of a chain is built exactly once
/// whatever the association, so only the product costs differ between
/// parenthesizations). Dense: the row-OR kernel walks the set bits of
/// each of a's n rows and ORs one ceil(n/64)-word row of b per bit, plus
/// initializing the result. Sparse: the per-row run merge from
/// ComposeEstimates.
double ComposeStepCost(const SparseEst& a, const SparseEst& b, double n,
                       bool dense) {
  if (dense) return (n + n * a.nnz) * WordsPerRow(n);
  const double k = std::max(1.0, a.nnz * b.runs);
  const double merge = std::min(k * std::log2(k + 2.0), k + n / 32.0);
  return n * merge;
}

/// Collects the maximal composition chain rooted at `p` left to right:
/// a/(b/c) and (a/b)/c both flatten to [a, b, c].
void FlattenCompose(const ppl::PplBinExpr& p,
                    std::vector<const ppl::PplBinExpr*>* out) {
  if (p.kind == ppl::PplBinKind::kCompose) {
    FlattenCompose(*p.left, out);
    FlattenCompose(*p.right, out);
    return;
  }
  out->push_back(&p);
}

/// Rebuilds `node`'s composition skeleton, consuming `factors` left to
/// right at the leaves -- the as-parsed association over the (already
/// reassociated) factors, used to detect whether the DP changed anything.
ppl::PplBinPtr CloneSkeleton(const ppl::PplBinExpr& node,
                             const std::vector<ppl::PplBinPtr>& factors,
                             std::size_t* next) {
  if (node.kind == ppl::PplBinKind::kCompose) {
    ppl::PplBinPtr l = CloneSkeleton(*node.left, factors, next);
    ppl::PplBinPtr r = CloneSkeleton(*node.right, factors, next);
    return ppl::PplBinExpr::Compose(std::move(l), std::move(r));
  }
  return factors[(*next)++]->Clone();
}

/// Builds the DP-optimal association over factors[i..j] from the split
/// table, moving the factor subtrees into place.
struct ChainBuilder {
  const std::vector<std::vector<std::size_t>>& split;
  std::vector<ppl::PplBinPtr>& factors;

  ppl::PplBinPtr Build(std::size_t i, std::size_t j) {
    if (i == j) return std::move(factors[i]);
    const std::size_t s = split[i][j];
    return ppl::PplBinExpr::Compose(Build(i, s), Build(s + 1, j));
  }
};

/// The matrix-chain reassociation DP. Returns `p` rewritten so every
/// maximal composition chain of >= 3 factors carries the association the
/// cost model estimates cheapest; factor order -- and hence the denoted
/// relation (Boolean matrix product is associative) -- is unchanged.
/// `*chains` counts the chains whose association actually changed.
ppl::PplBinPtr Reassociate(const ppl::PplBinExpr& p, const Tree& tree,
                           bool dense, std::size_t* chains) {
  switch (p.kind) {
    case ppl::PplBinKind::kStep:
      return p.Clone();
    case ppl::PplBinKind::kComplement:
      return ppl::PplBinExpr::Complement(
          Reassociate(*p.left, tree, dense, chains));
    case ppl::PplBinKind::kFilter:
      return ppl::PplBinExpr::Filter(
          Reassociate(*p.left, tree, dense, chains));
    case ppl::PplBinKind::kUnion:
      return ppl::PplBinExpr::Union(
          Reassociate(*p.left, tree, dense, chains),
          Reassociate(*p.right, tree, dense, chains));
    case ppl::PplBinKind::kCompose:
      break;
  }

  std::vector<const ppl::PplBinExpr*> raw;
  FlattenCompose(p, &raw);
  std::vector<ppl::PplBinPtr> factors;
  factors.reserve(raw.size());
  for (const ppl::PplBinExpr* f : raw) {
    factors.push_back(Reassociate(*f, tree, dense, chains));
  }
  const std::size_t k = factors.size();
  if (k < 3) {
    // One association exists; rebuild as parsed.
    ppl::PplBinPtr out = std::move(factors[0]);
    for (std::size_t i = 1; i < k; ++i) {
      out = ppl::PplBinExpr::Compose(std::move(out), std::move(factors[i]));
    }
    return out;
  }

  const double n =
      static_cast<double>(std::max<std::size_t>(tree.Stats().node_count, 1));
  // est[i][j]: run-shape estimate of the product of factors i..j; the
  // factor estimates come from the same SparseCost arithmetic the
  // dense/sparse crossover uses (shape estimates are representation-
  // independent; only the per-product cost formula differs).
  std::vector<std::vector<SparseEst>> est(k, std::vector<SparseEst>(k));
  std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
  std::vector<std::vector<std::size_t>> split(
      k, std::vector<std::size_t>(k, 0));
  for (std::size_t i = 0; i < k; ++i) est[i][i] = SparseCost(*raw[i], tree);
  for (std::size_t len = 2; len <= k; ++len) {
    for (std::size_t i = 0; i + len <= k; ++i) {
      const std::size_t j = i + len - 1;
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_s = i;
      for (std::size_t s = i; s < j; ++s) {
        const double c = cost[i][s] + cost[s + 1][j] +
                         ComposeStepCost(est[i][s], est[s + 1][j], n, dense);
        if (c < best) {
          best = c;
          best_s = s;
        }
      }
      cost[i][j] = best;
      split[i][j] = best_s;
      est[i][j] = ComposeEstimates(est[i][best_s], est[best_s + 1][j], n);
    }
  }

  std::size_t next = 0;
  const ppl::PplBinPtr parsed = CloneSkeleton(p, factors, &next);
  ChainBuilder builder{split, factors};
  ppl::PplBinPtr optimized = builder.Build(0, k - 1);
  if (!optimized->Equals(*parsed)) ++*chains;
  return optimized;
}

}  // namespace

std::string_view ResultShapeName(ResultShape shape) {
  // Exhaustive on purpose (no default return): a new shape without a
  // name is a -Wswitch compile warning, not a silent wrong string.
  switch (shape) {
    case ResultShape::kFullRelation:
      return "full-relation";
    case ResultShape::kFromRootSet:
      return "from-root-set";
    case ResultShape::kBoolean:
      return "boolean";
    case ResultShape::kCount:
      return "count";
    case ResultShape::kTupleStream:
      return "tuple-stream";
  }
  std::abort();  // unreachable: the switch above covers every enumerator
}

std::string_view StreamBackingName(StreamBacking backing) {
  switch (backing) {
    case StreamBacking::kNone:
      return "none";
    case StreamBacking::kNodeSet:
      return "node-set";
    case StreamBacking::kEnumerator:
      return "enumerator";
    case StreamBacking::kMaterialized:
      return "materialized";
  }
  std::abort();  // unreachable: the switch above covers every enumerator
}

bool ExecutionPlan::operator==(const ExecutionPlan& other) const {
  if (engine != other.engine || shape != other.shape ||
      row_restricted != other.row_restricted || backing != other.backing ||
      repr != other.repr || cost != other.cost ||
      alternative_cost != other.alternative_cost ||
      chains_reassociated != other.chains_reassociated) {
    return false;
  }
  if ((reassociated == nullptr) != (other.reassociated == nullptr)) {
    return false;
  }
  return reassociated == nullptr || reassociated->Equals(*other.reassociated);
}

std::string ExecutionPlan::DebugString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s/%s%s%s%s%s%s cost=%.3g alt=%.3g",
                std::string(EnginePlanName(engine)).c_str(),
                std::string(ResultShapeName(shape)).c_str(),
                row_restricted ? " row-restricted" : "",
                backing != StreamBacking::kNone ? " backing=" : "",
                backing != StreamBacking::kNone
                    ? std::string(StreamBackingName(backing)).c_str()
                    : "",
                repr != MatrixRepr::kDense ? " repr=" : "",
                repr != MatrixRepr::kDense
                    ? std::string(MatrixReprName(repr)).c_str()
                    : "",
                cost, alternative_cost);
  std::string out = buf;
  if (chains_reassociated > 0) {
    std::snprintf(buf, sizeof(buf), " reassoc=%u", chains_reassociated);
    out += buf;
  }
  return out;
}

ExecutionPlan PlanQuery(const CompiledQuery& q, const Tree& tree,
                        ResultShape shape,
                        std::optional<EnginePlan> force_engine,
                        std::size_t stream_limit,
                        std::optional<MatrixRepr> force_repr,
                        bool force_parse_order) {
  ExecutionPlan plan;
  plan.shape = shape;
  const double n =
      static_cast<double>(std::max<std::size_t>(tree.Stats().node_count, 1));

  if (q.pplbin == nullptr) {
    // N-ary queries have exactly one engine; the shape selects the
    // payload derived from the answer set -- except kTupleStream, where
    // the planner additionally picks the stream backing.
    plan.engine = EnginePlan::kNaryAnswer;
    plan.cost = n * n;
    if (shape != ResultShape::kTupleStream) return plan;
    if (q.acq == nullptr) {
      // Unions are outside the enumerable (Prop. 8) class: the stream
      // serves a cursor over the materialized Fig. 8 answer set.
      plan.backing = StreamBacking::kMaterialized;
      plan.cost = n * n * static_cast<double>(std::max<std::size_t>(
                              q.hcl_size, 1));
      return plan;
    }
    // Enumeration vs materialization. Enumeration pays, in word ops,
    //   preprocessing: materializing one n x n relation per atom plus
    //   the two semijoin passes, ~3 |atoms| n wpr(n), then
    //   delay: ~|vars| wpr(n) per emitted tuple;
    // materialization pays the Fig. 8 machinery, ~n^2 |C| word ops for
    // the MC table -- but also O(|answers|) MEMORY, up to n^arity.
    //
    // With a bounded limit the op costs are comparable and decide: a
    // small limit amortizes preprocessing over few tuples (enumerator),
    // a huge limit on a tiny tree materializes outright. With limit 0
    // (drain everything) the answer-set memory is the binding
    // constraint, so every tree beyond kTinyTree enumerates whenever it
    // can -- only trees whose whole n^2 universe is trivially small
    // materialize.
    const double atoms = static_cast<double>(
        std::max<std::size_t>(q.acq->atoms.size(), 1));
    const double vars = atoms + 1.0;
    const double enum_preproc = 3.0 * atoms * n * WordsPerRow(n);
    const double enum_delay = vars * WordsPerRow(n);
    const double mat_cost =
        n * n * static_cast<double>(std::max<std::size_t>(q.hcl_size, 1)) +
        n * n;
    constexpr double kTinyTree = 64;
    bool enumerate;
    double enum_cost;
    if (stream_limit == 0) {
      enum_cost = enum_preproc + n * n * enum_delay;
      enumerate = n > kTinyTree;
    } else {
      enum_cost =
          enum_preproc + static_cast<double>(stream_limit) * enum_delay;
      enumerate = enum_cost <= mat_cost;
    }
    if (enumerate) {
      plan.backing = StreamBacking::kEnumerator;
      plan.cost = enum_cost;
      plan.alternative_cost = mat_cost;
    } else {
      plan.backing = StreamBacking::kMaterialized;
      plan.cost = mat_cost;
      plan.alternative_cost = enum_cost;
    }
    return plan;
  }

  // Binary queries: monadic shapes take the row-restricted entry points
  // of whichever engine wins the cost comparison. A kTupleStream plan on
  // a binary query streams the monadic from-root node set as 1-tuples.
  if (shape == ResultShape::kTupleStream) {
    plan.backing = StreamBacking::kNodeSet;
  }
  const bool monadic = shape != ResultShape::kFullRelation;
  const double matrix_cost = monadic
                                 ? MatrixMonadicCost(*q.pplbin, n)
                                 : MatrixFullCost(q.pplbin_size, n);
  double gkp_cost = std::numeric_limits<double>::infinity();
  if (q.positive) {
    // Monadic: both engines run the identical BitVector propagation on a
    // positive query, so the costs tie and the tie-break below prefers
    // GKP (it shares the filter-domain cache across calls).
    gkp_cost = monadic ? matrix_cost
                       : static_cast<double>(q.pplbin_size) * n *
                             (1.0 + DomainBound(*q.pplbin, tree));
  }

  EnginePlan chosen = gkp_cost <= matrix_cost ? EnginePlan::kGkpPositive
                                              : EnginePlan::kMatrixGeneral;

  // Dense/sparse crossover. Representation matters only where the matrix
  // engine materializes relations: full-relation shapes, and monadic
  // plans whose complement structure forces sub-matrices. Under the
  // ceiling the decision compares the dense word-op cost against the
  // run-merge estimate. Above the dense ceiling, where the dense route
  // does not exist at all, the planner always routes such work onto the
  // sparse matrix engine (lifting the old unconditional refusal): the
  // run-shape estimate is averages-only and cannot see run coalescing
  // (a composed step on a deep path produces one run per row where the
  // estimate predicts n), so refusing on it would deny instances that
  // evaluate fine. The engine's own run budget is the enforceable bound
  // -- a genuinely dense instance trips kResourceExhausted at the first
  // over-budget merge instead of allocating past the budget.
  const bool materializes =
      !monadic || HasNonStepComplement(*q.pplbin);
  const bool over_ceiling =
      n > static_cast<double>(BitMatrix::kMaxDenseNodes);
  double sparse_cost = std::numeric_limits<double>::infinity();
  MatrixRepr repr = MatrixRepr::kDense;
  if (materializes) {
    const SparseEst est = SparseCost(*q.pplbin, tree);
    const bool fits =
        SparsePeakBytes(est, n) <=
        static_cast<double>(kSparseEvalByteBudget);
    if (fits) sparse_cost = est.cost;
    if (over_ceiling) {
      repr = MatrixRepr::kSparse;
      if (!monadic && !force_engine.has_value()) {
        // Only the matrix engine has sparse full-relation kernels.
        chosen = EnginePlan::kMatrixGeneral;
      }
    } else if (sparse_cost < matrix_cost) {
      repr = MatrixRepr::kSparse;
    }
  }

  if (force_engine.has_value()) chosen = *force_engine;
  // A forced representation without a forced engine routes to the matrix
  // engine -- the only engine with a representation to force.
  if (force_repr.has_value() && !force_engine.has_value()) {
    chosen = EnginePlan::kMatrixGeneral;
  }
  plan.engine = chosen;
  plan.row_restricted = monadic;
  if (chosen == EnginePlan::kMatrixGeneral) {
    plan.repr = force_repr.value_or(repr);
    plan.cost = plan.repr == MatrixRepr::kSparse &&
                        sparse_cost !=
                            std::numeric_limits<double>::infinity()
                    ? sparse_cost
                    : matrix_cost;
    if (materializes &&
        sparse_cost != std::numeric_limits<double>::infinity()) {
      plan.alternative_cost =
          plan.repr == MatrixRepr::kSparse ? matrix_cost : sparse_cost;
    }
  } else {
    plan.cost = chosen == EnginePlan::kGkpPositive ? gkp_cost : matrix_cost;
  }
  if (q.positive && plan.alternative_cost == 0.0) {
    plan.alternative_cost =
        chosen == EnginePlan::kGkpPositive ? matrix_cost : gkp_cost;
  }

  // Composition-chain reassociation: only matrix plans that materialize
  // relations care about association order (monadic sweeps are
  // association-invariant), and forced parse-order plans are the
  // differential baseline.
  if (!force_parse_order && plan.engine == EnginePlan::kMatrixGeneral &&
      materializes) {
    std::size_t chains = 0;
    ppl::PplBinPtr opt = Reassociate(
        *q.pplbin, tree, plan.repr != MatrixRepr::kSparse, &chains);
    if (chains > 0) {
      plan.reassociated =
          std::shared_ptr<const ppl::PplBinExpr>(std::move(opt));
      plan.chains_reassociated = static_cast<std::uint32_t>(chains);
    }
  }
  return plan;
}

bool PlanRequiresDenseRelation(const CompiledQuery& q,
                               const ExecutionPlan& plan) {
  // N-ary machinery (Fig. 8 answer tables, and the enumerator's per-atom
  // relations) is dense end-to-end.
  if (plan.engine == EnginePlan::kNaryAnswer) return true;
  // Matrix plans carrying a sparse (or per-node auto) representation
  // never require the dense form: the run-list kernels evaluate --
  // including full relations -- at any tree size under their run budget.
  const bool sparse_capable = plan.engine == EnginePlan::kMatrixGeneral &&
                              plan.repr != MatrixRepr::kDense;
  // A full-relation answer IS an n x n matrix on every other route.
  if (plan.shape == ResultShape::kFullRelation) return !sparse_capable;
  // Monadic matrix plans materialize a sub-matrix only underneath a
  // complement whose operand is not a plain step -- dense only when the
  // plan's representation says so.
  if (plan.engine == EnginePlan::kMatrixGeneral && q.pplbin != nullptr) {
    return HasNonStepComplement(*q.pplbin) && !sparse_capable;
  }
  return false;
}

std::optional<ExecutionPlan> PlanMemo::Lookup(std::string_view text,
                                              ResultShape shape) const {
  const std::string key = Key(text, shape);
  MutexLock lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void PlanMemo::Insert(std::string_view text, ResultShape shape,
                      const ExecutionPlan& plan) {
  std::string key = Key(text, shape);
  MutexLock lock(mu_);
  if (plans_.size() >= max_entries_ && !plans_.contains(key)) return;
  plans_.emplace(std::move(key), plan);
}

std::size_t PlanMemo::size() const {
  MutexLock lock(mu_);
  return plans_.size();
}

std::uint64_t PlanMemo::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t PlanMemo::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

std::string PlanMemo::Key(std::string_view text, ResultShape shape) {
  std::string key(text);
  key.push_back('\x1f');  // cannot occur in a parseable query text
  key.append(ResultShapeName(shape));
  return key;
}

}  // namespace xpv::engine
