#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "ppl/pplbin.h"
#include "tree/axes.h"

namespace xpv::engine {

namespace {

double WordsPerRow(double n) {
  return std::max(1.0, std::ceil(n / 64.0));
}

/// Heuristic upper bound on |domain(P)| from the tree's posting lists.
/// domain(A::N) is the inverse-axis image of N's posting list, so it is
/// bounded by the posting size times how far one target can "spread"
/// backwards along A: one parent per node (child), at most max_fanout
/// siblings / children (siblings, parent), at most max_depth ancestors
/// (descendant). Only cost estimates depend on this -- every admissible
/// plan computes identical answers (enforced by tests/planner_test.cc).
double DomainBound(const ppl::PplBinExpr& p, const Tree& tree) {
  const TreeStats& s = tree.Stats();
  const double n = static_cast<double>(s.node_count);
  switch (p.kind) {
    case ppl::PplBinKind::kStep: {
      // PplBinExpr::Step normalizes the "*" wildcard to "".
      if (p.name_test.empty()) return n;
      const double f = static_cast<double>(tree.LabelFrequency(p.name_test));
      const double fanout = static_cast<double>(std::max<std::size_t>(
          s.max_fanout, 1));
      switch (p.axis) {
        case Axis::kSelf:
          return f;
        case Axis::kChild:
          return std::min(n, f);  // each labeled child has one parent
        case Axis::kParent:
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          return std::min(n, f * fanout);
        case Axis::kDescendant:
          return std::min(n, f * static_cast<double>(s.max_depth + 1));
        case Axis::kAncestor:
          return n;  // a labeled ancestor admits its whole subtree
      }
      return n;
    }
    case ppl::PplBinKind::kCompose:
      // domain(P1/P2) is contained in domain(P1).
      return DomainBound(*p.left, tree);
    case ppl::PplBinKind::kUnion:
      return std::min(
          n, DomainBound(*p.left, tree) + DomainBound(*p.right, tree));
    case ppl::PplBinKind::kFilter:
      // domain([Q]) = domain(Q).
      return DomainBound(*p.left, tree);
    case ppl::PplBinKind::kComplement:
      return n;
  }
  return n;
}

/// Cost (word ops) of the full matrix evaluation: |P| Boolean products.
double MatrixFullCost(std::size_t pplbin_size, double n) {
  return static_cast<double>(pplbin_size) * n * n * WordsPerRow(n);
}

/// Cost of the row-restricted matrix path: positive operators propagate
/// one BitVector (O(|t|) each); each complement node falls back to the
/// full matrix evaluation of its subexpression.
double MatrixMonadicCost(const ppl::PplBinExpr& p, double n) {
  switch (p.kind) {
    case ppl::PplBinKind::kStep:
      return n;
    case ppl::PplBinKind::kCompose:
    case ppl::PplBinKind::kUnion:
      return MatrixMonadicCost(*p.left, n) + MatrixMonadicCost(*p.right, n) +
             WordsPerRow(n);
    case ppl::PplBinKind::kFilter:
      // The domain resolves by a preimage walk of the same shape.
      return MatrixMonadicCost(*p.left, n) + WordsPerRow(n);
    case ppl::PplBinKind::kComplement:
      return MatrixFullCost(p.left->Size(), n) + n * WordsPerRow(n);
  }
  return n;
}

}  // namespace

std::string_view ResultShapeName(ResultShape shape) {
  // Exhaustive on purpose (no default return): a new shape without a
  // name is a -Wswitch compile warning, not a silent wrong string.
  switch (shape) {
    case ResultShape::kFullRelation:
      return "full-relation";
    case ResultShape::kFromRootSet:
      return "from-root-set";
    case ResultShape::kBoolean:
      return "boolean";
    case ResultShape::kCount:
      return "count";
  }
  std::abort();  // unreachable: the switch above covers every enumerator
}

std::string ExecutionPlan::DebugString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s%s cost=%.3g alt=%.3g",
                std::string(EnginePlanName(engine)).c_str(),
                std::string(ResultShapeName(shape)).c_str(),
                row_restricted ? " row-restricted" : "", cost,
                alternative_cost);
  return buf;
}

ExecutionPlan PlanQuery(const CompiledQuery& q, const Tree& tree,
                        ResultShape shape,
                        std::optional<EnginePlan> force_engine) {
  ExecutionPlan plan;
  plan.shape = shape;
  const double n =
      static_cast<double>(std::max<std::size_t>(tree.Stats().node_count, 1));

  if (q.pplbin == nullptr) {
    // N-ary queries have exactly one engine; the shape only selects the
    // payload derived from the answer set. Coarse Prop. 10 table bound.
    plan.engine = EnginePlan::kNaryAnswer;
    plan.cost = n * n;
    return plan;
  }

  // Binary queries: monadic shapes take the row-restricted entry points
  // of whichever engine wins the cost comparison.
  const bool monadic = shape != ResultShape::kFullRelation;
  const double matrix_cost = monadic
                                 ? MatrixMonadicCost(*q.pplbin, n)
                                 : MatrixFullCost(q.pplbin_size, n);
  double gkp_cost = std::numeric_limits<double>::infinity();
  if (q.positive) {
    // Monadic: both engines run the identical BitVector propagation on a
    // positive query, so the costs tie and the tie-break below prefers
    // GKP (it shares the filter-domain cache across calls).
    gkp_cost = monadic ? matrix_cost
                       : static_cast<double>(q.pplbin_size) * n *
                             (1.0 + DomainBound(*q.pplbin, tree));
  }

  EnginePlan chosen = gkp_cost <= matrix_cost ? EnginePlan::kGkpPositive
                                              : EnginePlan::kMatrixGeneral;
  if (force_engine.has_value()) chosen = *force_engine;
  plan.engine = chosen;
  plan.row_restricted = monadic;
  plan.cost =
      chosen == EnginePlan::kGkpPositive ? gkp_cost : matrix_cost;
  if (q.positive) {
    plan.alternative_cost =
        chosen == EnginePlan::kGkpPositive ? matrix_cost : gkp_cost;
  }
  return plan;
}

std::optional<ExecutionPlan> PlanMemo::Lookup(std::string_view text,
                                              ResultShape shape) const {
  const std::string key = Key(text, shape);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void PlanMemo::Insert(std::string_view text, ResultShape shape,
                      const ExecutionPlan& plan) {
  std::string key = Key(text, shape);
  std::lock_guard<std::mutex> lock(mu_);
  if (plans_.size() >= max_entries_ && !plans_.contains(key)) return;
  plans_.emplace(std::move(key), plan);
}

std::size_t PlanMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::uint64_t PlanMemo::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanMemo::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::string PlanMemo::Key(std::string_view text, ResultShape shape) {
  std::string key(text);
  key.push_back('\x1f');  // cannot occur in a parseable query text
  key.append(ResultShapeName(shape));
  return key;
}

}  // namespace xpv::engine
