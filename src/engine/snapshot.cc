#include "engine/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "tree/tree_io.h"

namespace xpv::engine {

namespace {

constexpr char kSegmentMagic[8] = {'X', 'P', 'V', 'S', 'N', 'A', 'P', '1'};
constexpr char kManifestMagic[8] = {'X', 'P', 'V', 'M', 'A', 'N', '0', '1'};
constexpr std::uint32_t kSectionMagic = 0x54434553u;  // "SECT" LE
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr const char* kManifestFile = "MANIFEST.xpv";

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Writes `bytes` to `path` atomically: a temporary sibling is written
/// and fsynced, then renamed over the target, then the directory entry
/// is fsynced. A crash (even SIGKILL / power loss) leaves either the old
/// file or the new one -- never a torn segment.
Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot create", tmp));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          errno == ENOSPC
              ? Status::ResourceExhausted(ErrnoMessage("cannot write", tmp))
              : Status::Internal(ErrnoMessage("cannot write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::Internal(ErrnoMessage("cannot fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::Internal(ErrnoMessage("cannot rename", tmp));
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

/// Appends one framed section (header + payload) to `out`.
void AppendSection(SectionType type, const std::string& payload,
                   std::string* out) {
  std::string header;
  ByteWriter w(&header);
  w.U32(kSectionMagic);
  w.U32(static_cast<std::uint32_t>(type));
  w.U64(payload.size());
  w.U32(Crc32(payload.data(), payload.size()));
  w.U32(Crc32(header.data(), header.size()));
  out->append(header);
  out->append(payload);
}

struct SectionView {
  std::uint32_t type = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

std::string SectionLabel(std::uint32_t type) {
  return std::string(SectionTypeName(type)) + " section";
}

/// Validates the file header and every section frame (magic, CRCs,
/// bounds, ascending type order) before any payload is interpreted.
Result<std::vector<SectionView>> ParseSegmentFrames(const MappedFile& file,
                                                    const std::string& path) {
  if (file.size() < kFileHeaderBytes) {
    return Status::DataLoss("segment '" + path +
                            "': truncated before the file header ends");
  }
  if (std::memcmp(file.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss("segment '" + path + "': bad magic");
  }
  ByteReader header(file.data() + 8, kFileHeaderBytes - 8);
  const std::uint32_t version = header.U32().value();
  const std::uint32_t section_count = header.U32().value();
  const std::uint64_t total_bytes = header.U64().value();
  const std::uint32_t header_crc = header.U32().value();
  if (Crc32(file.data(), kFileHeaderBytes - 4) != header_crc) {
    return Status::DataLoss("segment '" + path + "': file header CRC mismatch");
  }
  if (version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "segment '" + path + "': format version " + std::to_string(version) +
        " is newer than supported version " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (total_bytes != file.size()) {
    return Status::DataLoss("segment '" + path + "': truncated (header says " +
                            std::to_string(total_bytes) + " bytes, file has " +
                            std::to_string(file.size()) + ")");
  }
  std::vector<SectionView> sections;
  std::size_t pos = kFileHeaderBytes;
  std::uint32_t prev_type = 0;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (pos + kSectionHeaderBytes > file.size()) {
      return Status::DataLoss("segment '" + path +
                              "': truncated inside a section header");
    }
    ByteReader sh(file.data() + pos, kSectionHeaderBytes);
    const std::uint32_t magic = sh.U32().value();
    const std::uint32_t type = sh.U32().value();
    const std::uint64_t payload_size = sh.U64().value();
    const std::uint32_t payload_crc = sh.U32().value();
    const std::uint32_t section_crc = sh.U32().value();
    if (Crc32(file.data() + pos, kSectionHeaderBytes - 4) != section_crc) {
      return Status::DataLoss("segment '" + path + "': header CRC mismatch (" +
                              SectionLabel(type) + ")");
    }
    if (magic != kSectionMagic) {
      return Status::DataLoss("segment '" + path + "': bad section magic (" +
                              SectionLabel(type) + ")");
    }
    if (SectionTypeName(type) == "unknown") {
      return Status::DataLoss("segment '" + path + "': unknown section type " +
                              std::to_string(type));
    }
    if (type <= prev_type) {
      return Status::DataLoss("segment '" + path +
                              "': sections out of order (" +
                              SectionLabel(type) + " after " +
                              SectionLabel(prev_type) + ")");
    }
    prev_type = type;
    pos += kSectionHeaderBytes;
    if (payload_size > file.size() - pos) {
      return Status::DataLoss("segment '" + path + "': truncated " +
                              SectionLabel(type));
    }
    if (Crc32(file.data() + pos, payload_size) != payload_crc) {
      return Status::DataLoss("segment '" + path + "': CRC mismatch in " +
                              SectionLabel(type));
    }
    sections.push_back(SectionView{type, file.data() + pos,
                                   static_cast<std::size_t>(payload_size)});
    pos += payload_size;
  }
  if (pos != file.size()) {
    return Status::DataLoss("segment '" + path +
                            "': trailing bytes after the last section");
  }
  return sections;
}

}  // namespace

// ----------------------------------------------------------- MappedFile

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file '" + path + "'");
    }
    return Status::Internal(ErrnoMessage("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal(ErrnoMessage("cannot stat", path));
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const Status status = Status::Internal(ErrnoMessage("cannot mmap", path));
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const std::uint8_t*>(map);
  }
  ::close(fd);  // the mapping keeps the pages; the descriptor is not needed
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
  }
  size_ = 0;
}

// ------------------------------------------------------------- segments

std::string_view SectionTypeName(std::uint32_t type) {
  switch (static_cast<SectionType>(type)) {
    case SectionType::kMeta:
      return "meta";
    case SectionType::kTree:
      return "tree";
    case SectionType::kAxes:
      return "axes";
  }
  return "unknown";
}

std::string SegmentFileName(std::uint64_t document_id) {
  return "doc-" + std::to_string(document_id) + ".xpvseg";
}

Status WriteDocumentSegment(const std::string& path, std::uint64_t document_id,
                            const std::string& name, const Tree& tree,
                            const AxisCache* cache, bool interned) {
  std::string meta;
  {
    ByteWriter w(&meta);
    w.U64(document_id);
    w.Str(name);
    w.U8(interned ? 1 : 0);
  }
  std::string tree_payload;
  {
    ByteWriter w(&tree_payload);
    TreeIo::EncodeTree(tree, w);
  }
  std::string axes;
  std::uint32_t axes_count = 0;
  if (cache != nullptr) {
    ByteWriter w(&axes);
    const std::vector<Axis> built = cache->BuiltAxes();
    axes_count = static_cast<std::uint32_t>(built.size());
    w.U32(axes_count);
    for (Axis axis : built) {
      w.U32(static_cast<std::uint32_t>(axis));
      // Persist the canonical interval form regardless of the cache's
      // in-memory representation: the relation is a pure function of the
      // tree, and the interval builder emits it straight from the
      // pre-order index without touching O(n^2) bits.
      TreeIo::EncodeIntervalMatrix(AxisIntervalMatrix(tree, axis), w);
    }
  }

  std::string body;
  AppendSection(SectionType::kMeta, meta, &body);
  AppendSection(SectionType::kTree, tree_payload, &body);
  const std::uint32_t section_count = axes_count > 0 ? 3 : 2;
  if (axes_count > 0) AppendSection(SectionType::kAxes, axes, &body);

  std::string file;
  file.reserve(kFileHeaderBytes + body.size());
  file.append(kSegmentMagic, sizeof(kSegmentMagic));
  {
    ByteWriter w(&file);
    w.U32(kSnapshotFormatVersion);
    w.U32(section_count);
    w.U64(kFileHeaderBytes + body.size());
    w.U32(Crc32(file.data(), file.size()));
  }
  file.append(body);
  return WriteFileAtomic(path, file);
}

Result<LoadedSegment> LoadDocumentSegment(const std::string& path) {
  XPV_ASSIGN_OR_RETURN(const MappedFile file, MappedFile::Open(path));
  XPV_ASSIGN_OR_RETURN(const std::vector<SectionView> sections,
                       ParseSegmentFrames(file, path));
  LoadedSegment segment;
  segment.mapped_bytes = file.size();
  bool have_meta = false;
  bool have_tree = false;
  for (const SectionView& section : sections) {
    ByteReader r(section.payload, section.payload_size);
    switch (static_cast<SectionType>(section.type)) {
      case SectionType::kMeta: {
        XPV_ASSIGN_OR_RETURN(segment.meta.document_id, r.U64());
        XPV_ASSIGN_OR_RETURN(segment.meta.name, r.Str());
        XPV_ASSIGN_OR_RETURN(const std::uint8_t interned, r.U8());
        if (segment.meta.document_id == 0 || interned > 1) {
          return Status::DataLoss("segment '" + path +
                                  "': invalid meta section contents");
        }
        segment.meta.interned = interned == 1;
        have_meta = true;
        break;
      }
      case SectionType::kTree: {
        XPV_ASSIGN_OR_RETURN(segment.tree, TreeIo::DecodeTree(r));
        have_tree = true;
        break;
      }
      case SectionType::kAxes: {
        XPV_ASSIGN_OR_RETURN(const std::uint32_t count, r.U32());
        if (count > kAllAxes.size()) {
          return Status::DataLoss("segment '" + path +
                                  "': axes section lists too many axes");
        }
        std::uint32_t prev = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
          XPV_ASSIGN_OR_RETURN(const std::uint32_t axis, r.U32());
          if (axis >= kAllAxes.size() || (i > 0 && axis <= prev)) {
            return Status::DataLoss("segment '" + path +
                                    "': axes section out of order");
          }
          prev = axis;
          XPV_ASSIGN_OR_RETURN(IntervalMatrix m,
                               TreeIo::DecodeIntervalMatrix(r));
          segment.axes.emplace_back(static_cast<Axis>(axis), std::move(m));
        }
        break;
      }
    }
    if (!r.exhausted()) {
      return Status::DataLoss("segment '" + path + "': trailing bytes in " +
                              SectionLabel(section.type));
    }
  }
  if (!have_meta || !have_tree) {
    return Status::DataLoss("segment '" + path + "': missing " +
                            std::string(have_meta ? "tree" : "meta") +
                            " section");
  }
  for (const auto& [axis, matrix] : segment.axes) {
    (void)axis;
    if (matrix.size() != segment.tree.size()) {
      return Status::DataLoss(
          "segment '" + path +
          "': axes section dimension disagrees with the tree section");
    }
  }
  return segment;
}

std::unique_ptr<const BoolMatrix> AxisMatrixForBacking(IntervalMatrix m,
                                                       bool dense) {
  if (dense) {
    Result<BitMatrix> bits = BitMatrix::Create(m.size());
    if (bits.ok()) {
      for (std::size_t row = 0; row < m.size(); ++row) {
        auto [begin, end] = m.RunsOf(row);
        for (const IntervalRun* run = begin; run != end; ++run) {
          bits->SetRowRange(row, run->begin, run->end);
        }
      }
      return std::make_unique<DenseBoolMatrix>(std::move(bits).value());
    }
    // Above the dense ceiling: fall through to the succinct form (the
    // cache would not have built dense here either).
  }
  return std::make_unique<IntervalMatrix>(std::move(m));
}

// ------------------------------------------------------------- manifest

Status WriteManifest(const std::string& dir,
                     const SnapshotManifest& manifest) {
  std::string file(kManifestMagic, sizeof(kManifestMagic));
  ByteWriter w(&file);
  w.U32(kSnapshotFormatVersion);
  w.U64(manifest.next_document_id);
  w.U64(manifest.document_ids.size());
  for (std::uint64_t id : manifest.document_ids) w.U64(id);
  w.U32(Crc32(file.data(), file.size()));
  return WriteFileAtomic(dir + "/" + kManifestFile, file);
}

Result<SnapshotManifest> LoadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  XPV_ASSIGN_OR_RETURN(const MappedFile file, MappedFile::Open(path));
  if (file.size() < sizeof(kManifestMagic) + 4 + 8 + 8 + 4) {
    return Status::DataLoss("manifest '" + path + "': truncated");
  }
  if (std::memcmp(file.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::DataLoss("manifest '" + path + "': bad magic");
  }
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, file.data() + file.size() - 4, 4);
  if (Crc32(file.data(), file.size() - 4) != stored_crc) {
    return Status::DataLoss("manifest '" + path + "': CRC mismatch");
  }
  ByteReader r(file.data() + 8, file.size() - 8 - 4);
  XPV_ASSIGN_OR_RETURN(const std::uint32_t version, r.U32());
  if (version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "manifest '" + path + "': format version " + std::to_string(version) +
        " is newer than supported version " +
        std::to_string(kSnapshotFormatVersion));
  }
  SnapshotManifest manifest;
  XPV_ASSIGN_OR_RETURN(manifest.next_document_id, r.U64());
  XPV_ASSIGN_OR_RETURN(const std::uint64_t count, r.U64());
  if (count > (std::uint64_t{1} << 32) || count * 8 != r.remaining()) {
    return Status::DataLoss("manifest '" + path +
                            "': document count disagrees with file size");
  }
  manifest.document_ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    XPV_ASSIGN_OR_RETURN(const std::uint64_t id, r.U64());
    if (id == 0 || id >= manifest.next_document_id) {
      return Status::DataLoss("manifest '" + path +
                              "': document id out of range");
    }
    manifest.document_ids.push_back(id);
  }
  return manifest;
}

}  // namespace xpv::engine
