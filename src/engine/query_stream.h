// Streaming n-ary answer service: cursors over query answers with
// bounded memory -- the serving-layer response to the paper's closing
// question on answer *enumeration*.
//
// A QueryStream is a pull-based cursor returned by
// QueryService::OpenStream. Instead of materializing a potentially
// O(|t|^k) tuple set into a QueryResult, the stream produces tuples
// incrementally, from one of three backings chosen by the planner
// (engine/planner.h, StreamBacking):
//
//   kEnumerator    enumerable n-ary queries (union-free, alpha-acyclic
//                  Prop. 8 image): Yannakakis polynomial-delay
//                  enumeration (fo/enumerate.h). First-tuple latency and
//                  peak memory are independent of the answer count.
//   kMaterialized  n-ary queries with unions (or drain-everything
//                  streams on small trees): the Fig. 8 answer set is
//                  materialized on first read and served from a cursor.
//   kNodeSet       binary (variable-free) queries: the monadic
//                  from-root node set, streamed as 1-tuples.
//
// Stream order is deterministic per (query, tree, options) -- identical
// across NextBatch chunk sizes, service thread counts, and repeats --
// but unspecified across backings: the enumerator emits in join-forest
// DFS order, the other two in ascending/lexicographic order. Consumers
// needing a specific order sort their page.
//
// Lifecycle and ownership. OpenStream resolves and *pins* the backing
// document: the stream holds the DocumentPtr and its AxisCache
// shared_ptr, so a stream keeps serving correct answers even if the
// document is Remove()d from the store (and its id re-Interned) while
// the stream is open -- the store only forgets the id; the tree and
// cache live until the last holder lets go. The backing (enumerator /
// answer set / node set) is built lazily on the first NextBatch, so an
// opened-then-closed stream does no evaluation work.
//
// Admission control. An open stream occupies one of the service's
// `max_inflight_batches` slots until it is closed, exhausted, or failed
// -- long-lived cursors are load the dispatcher must see, or a crowd of
// idle streams would let batch work overcommit the service. OpenStream
// returns kOverloaded (never blocks) when no slot is free. Deadlines
// and Cancel() are honored *inside* the stream: every NextBatch checks
// the deadline/cancel token between tuples (and the enumerator checks
// between DFS steps), so a stream over a huge answer set stops
// cooperatively mid-pull with kDeadlineExceeded / kCancelled.
//
// Thread safety: Cancel() may be called from any thread *while the
// handle is alive* -- as with any C++ object, destroying or
// move-assigning the QueryStream concurrently with a member call
// (Cancel() included) is a data race the caller must exclude; keep the
// handle alive until cancelling threads are done with it. Everything
// else (NextBatch/Next/Close/stats) is single-consumer -- callers
// serialize access to one stream. Different streams are independent.
// A stream may outlive its QueryService (it shares the admission state
// it must update on close), but not its DocumentStore-less raw Tree.
#ifndef XPV_ENGINE_QUERY_STREAM_H_
#define XPV_ENGINE_QUERY_STREAM_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/compiled_query.h"
#include "engine/document_store.h"
#include "engine/planner.h"
#include "fo/enumerate.h"
#include "tree/axis_cache.h"
#include "xpath/eval.h"

namespace xpv::engine {

/// Per-stream options for QueryService::OpenStream.
struct StreamOptions {
  /// Maximum tuples the stream will produce (after `offset`); it reports
  /// exhaustion once reached. 0 = unbounded (drain the full answer set).
  std::size_t limit = 0;
  /// Tuples skipped before the first one is produced -- the resume
  /// cursor: reopening a stream with offset = previous stats().cursor
  /// continues exactly where the previous stream stopped, PROVIDED the
  /// planner picks the same backing (stream order is deterministic per
  /// backing, and the backing depends on whether `limit` is bounded --
  /// see planner.h). Keep the same limit discipline across resumes, and
  /// check stats().plan.backing when in doubt.
  std::size_t offset = 0;
  /// Observed inside NextBatch (between tuples) and inside the backing
  /// enumerator/answerer, not just between calls.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Budget for the enumerator's projection-dedup structure
  /// (fo/tuple_dedup.h); exceeding it fails the stream with
  /// kResourceExhausted. Ignored by non-enumerator backings.
  std::size_t max_dedup_bytes = 64u << 20;
};

/// Observability snapshot of one stream (QueryStream::stats()).
struct StreamStats {
  /// Tuples handed to the caller so far (post-offset).
  std::uint64_t produced = 0;
  /// Absolute cursor position: offset + produced. Pass as `offset` of a
  /// new stream to resume after a partial read.
  std::uint64_t cursor = 0;
  /// NextBatch calls served (monitoring).
  std::uint64_t batches = 0;
  std::size_t arity = 0;
  bool exhausted = false;
  bool closed = false;
  /// Sticky failure (deadline/cancel/dedup budget), OK while healthy.
  Status status;
  /// The planner's decision, including the stream backing.
  ExecutionPlan plan;
  /// Resident bytes of the backing's answer-dependent state: enumerator
  /// DFS frames + dedup, or the materialized answer set estimate, or
  /// the node-set bitvector. The acceptance property of the enumerator
  /// backing is that this stays flat no matter how many answers exist.
  std::size_t backing_bytes = 0;
  /// Distinct tuples remembered by the enumerator's dedup (0 when the
  /// projection is injective or the backing keeps no dedup).
  std::size_t dedup_entries = 0;
};

namespace internal {
struct AdmissionShared;
struct StreamState;
}  // namespace internal

/// Pull-based cursor over one query's answers. Move-only; the
/// destructor closes the stream (releasing the admission slot and the
/// document pin). See the file comment for ordering, pinning, and
/// admission semantics.
class QueryStream {
 public:
  QueryStream() = default;
  QueryStream(QueryStream&&) noexcept;
  QueryStream& operator=(QueryStream&&) noexcept;
  ~QueryStream();

  /// False for default-constructed / moved-from handles.
  bool valid() const { return state_ != nullptr; }

  /// Up to `max_tuples` next tuples (at least one unless the stream
  /// ends). An empty vector means exhausted -- the full answer set (or
  /// the requested limit) has been delivered. Errors are sticky:
  /// kDeadlineExceeded / kCancelled / kResourceExhausted fail the
  /// stream, release its resources, and repeat on later calls.
  /// InvalidArgument after Close() or on max_tuples == 0.
  Result<std::vector<xpath::NodeTuple>> NextBatch(std::size_t max_tuples);

  /// Single-tuple sugar: nullopt when exhausted.
  Result<std::optional<xpath::NodeTuple>> Next();

  /// True once the stream cannot produce more tuples (exhausted, limit
  /// reached, failed, or closed).
  bool done() const;

  /// Absolute cursor position (offset + produced).
  std::uint64_t cursor() const;

  /// Requests cooperative cancellation; the next tuple boundary inside
  /// an in-flight NextBatch (even on another thread) observes it and
  /// fails with kCancelled. Idempotent, never blocks. The handle must
  /// stay alive for the duration of the call (see the file comment).
  void Cancel();

  /// Releases the backing, the document pin, and the admission slot.
  /// Idempotent; stats() stays readable. Called by the destructor.
  void Close();

  StreamStats stats() const;

 private:
  friend class QueryService;
  explicit QueryStream(std::unique_ptr<internal::StreamState> state);

  std::unique_ptr<internal::StreamState> state_;
};

namespace internal {

/// The slice of QueryService's admission state shared with every stream
/// (and batch) it admits: streams must release their inflight slot --
/// and wake the dispatcher -- even if they outlive the service, so the
/// mutex/cv/counters live behind a shared_ptr rather than in the
/// service object itself.
struct AdmissionShared {
  Mutex mu;
  CondVar cv;
  /// Admitted batches currently executing.
  std::size_t inflight_batches XPV_GUARDED_BY(mu) = 0;
  /// Open streams holding an inflight slot (released on close,
  /// exhaustion, or failure).
  std::size_t open_streams XPV_GUARDED_BY(mu) = 0;
  std::uint64_t streams_opened XPV_GUARDED_BY(mu) = 0;
  std::uint64_t streams_closed XPV_GUARDED_BY(mu) = 0;
  /// Tuples delivered across all streams (relaxed; monitoring only).
  std::atomic<std::uint64_t> stream_tuples{0};
};

/// Everything one open stream owns. Heap-allocated and stable: the
/// cancel flag is observed by CancelToken copies inside the backing.
struct StreamState {
  // Pins + plan, immutable after OpenStream.
  std::shared_ptr<AdmissionShared> adm;
  DocumentPtr doc;        // null for raw-Tree streams
  const Tree* tree = nullptr;
  std::shared_ptr<AxisCache> cache;
  /// The document's subrelation cache (null for raw-Tree streams and
  /// when the store disables it); consulted by the node-set backing's
  /// engine. Stream consults show up in the store's relation_hits/
  /// relation_misses, not in the service's job counters.
  std::shared_ptr<ppl::RelationCache> relations;
  std::shared_ptr<const CompiledQuery> compiled;
  ExecutionPlan plan;
  StreamOptions options;
  std::size_t arity = 0;

  std::atomic<bool> cancelled{false};
  /// Observes `cancelled` + options.deadline; checked between tuples.
  /// The backing holds its own copies over the same flag/deadline.
  CancelToken token;

  // Backing, built lazily by the first NextBatch.
  bool backing_built = false;
  std::optional<fo::AcqEnumerator> enumerator;
  std::optional<xpath::TupleSet> materialized;
  xpath::TupleSet::const_iterator mat_it{};
  std::size_t mat_bytes = 0;
  std::optional<BitVector> node_set;
  std::size_t node_pos = 0;

  // Cursor + terminal state (single-consumer).
  std::uint64_t skipped = 0;
  std::uint64_t produced = 0;
  std::uint64_t batches = 0;
  bool exhausted = false;
  bool closed = false;
  bool slot_released = false;
  Status failed;

  /// Drops the backing and document pin; releases the admission slot.
  void ReleaseResources();
};

}  // namespace internal

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_STREAM_H_
