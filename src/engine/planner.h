// The middle stage of the compile -> plan -> execute pipeline: a
// cost-based, result-shape-aware query planner.
//
// CompileQuery (engine/compiled_query.h) is tree-independent and records
// every admissible engine; this layer picks one per (compiled query,
// tree, result shape) using the Tree::Stats() statistics that
// TreeBuilder::Finish() precomputes -- node count, depth, fanout, label
// posting-list sizes. The decision follows the paper's complexity
// landscape, made quantitative:
//
//   engine          full relation              monadic (row-restricted)
//   kGkpPositive    O(|P| |t| |domain|)        O(|P| |t|)
//   kMatrixGeneral  O(|P| |t|^3 / 64)          O(|P| |t|) + one
//                                              sub-matrix per `except`
//   kNaryAnswer     output-sensitive Section 7 machinery
//
// so e.g. a general-PPLbin query on a small tree runs on the matrix
// engine (one 64-bit word covers a whole row), while a large tree with a
// selective label routes a positive query to the GKP engine, whose
// domain-restricted Relation() loop touches only the posting-list-bounded
// domain.
//
// The *result shape* says what the caller actually consumes. Callers who
// only need the nodes reachable from the root -- the overwhelmingly
// common serving workload -- get a monadic fast path that propagates a
// single BitVector through every engine instead of materializing the
// O(|t|^2) relation:
//
//   shape           binary (PPLbin) payload        n-ary payload
//   kFullRelation   relation + from_root           tuples
//   kFromRootSet    from_root only                 tuples
//   kBoolean        boolean = from-root nonempty   boolean = any tuple
//   kCount          count = |from-root set|        count = |tuples|
//
// Plans are deterministic functions of (query, tree, shape), so memoizing
// them per document (PlanMemo, owned by the DocumentStore next to the
// AxisCache) never changes results -- only skips the cost arithmetic.
#ifndef XPV_ENGINE_PLANNER_H_
#define XPV_ENGINE_PLANNER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/sparse_matrix.h"
#include "common/thread_annotations.h"
#include "engine/compiled_query.h"
#include "ppl/pplbin.h"
#include "tree/tree.h"

namespace xpv::engine {

/// What a caller consumes from a query's answer. Shapes other than
/// kFullRelation unlock the monadic fast path on binary queries.
/// kTupleStream is the streaming shape: it is served exclusively through
/// QueryService::OpenStream (engine/query_stream.h) -- batch jobs
/// requesting it are rejected -- and yields tuples incrementally instead
/// of a materialized payload.
enum class ResultShape {
  kFullRelation,
  kFromRootSet,
  kBoolean,
  kCount,
  kTupleStream,
};

std::string_view ResultShapeName(ResultShape shape);

/// How a kTupleStream plan produces its tuples (kNone for every other
/// shape). The choice never changes the tuple *set*, only delay and
/// memory; it does change the deterministic stream *order* (documented
/// on QueryStream), which is why the planner's pick is a pure function
/// of (query, tree stats, limit).
enum class StreamBacking {
  kNone,
  /// Binary query: the monadic from-root node set, streamed as 1-tuples
  /// in ascending node order.
  kNodeSet,
  /// Enumerable n-ary query (union-free, alpha-acyclic): Yannakakis
  /// polynomial-delay enumeration with bounded memory (fo/enumerate.h).
  kEnumerator,
  /// Non-enumerable (union) or cheap-to-materialize n-ary query: the
  /// Fig. 8 answer set is materialized once on first read and served
  /// from a cursor in lexicographic order.
  kMaterialized,
};

std::string_view StreamBackingName(StreamBacking backing);

/// The planner's decision for one (compiled query, tree, shape): which
/// engine runs and whether it takes the row-restricted entry point.
struct ExecutionPlan {
  EnginePlan engine = EnginePlan::kMatrixGeneral;
  ResultShape shape = ResultShape::kFullRelation;
  /// Monadic fast path: the engine propagates a single BitVector
  /// (GkpEngine::EvaluateFromNode / MatrixEngine::EvaluateFromRoot)
  /// instead of materializing the O(|t|^2) relation.
  bool row_restricted = false;
  /// kTupleStream plans only: how the stream produces tuples.
  StreamBacking backing = StreamBacking::kNone;
  /// Matrix-engine plans that materialize relations: which representation
  /// the engine composes in. The planner's dense/sparse crossover picks
  /// kDense or kSparse per (tree stats, label selectivity, query shape);
  /// kAuto appears only via a forced override (QueryJob::repr_override)
  /// and lets the engine switch per node. Non-matrix plans keep the
  /// default (their execution never consults it).
  MatrixRepr repr = MatrixRepr::kDense;
  /// Cost-model estimate (in 64-bit word operations) of the chosen
  /// route, and of the best rejected admissible engine (0 = no
  /// alternative existed).
  double cost = 0.0;
  double alternative_cost = 0.0;
  /// Matrix plans that materialize relations: the query rewritten by the
  /// matrix-chain reassociation DP (composition chains re-parenthesized
  /// into the estimated-cheapest association; factor order, and hence
  /// the denoted relation, unchanged). Null when no chain changed --
  /// execution then evaluates the compiled form as parsed. Execution
  /// uses `reassociated` when set; forced parse-order runs
  /// (QueryJob::force_parse_order) plan with the DP disabled so
  /// association-order differentials stay possible.
  std::shared_ptr<const ppl::PplBinExpr> reassociated;
  /// Number of composition chains whose association the DP changed.
  std::uint32_t chains_reassociated = 0;

  /// Structural equality: plans are deterministic functions of (query,
  /// tree stats, shape), so independently computed plans compare equal
  /// -- the reassociated expression by structure, not pointer.
  bool operator==(const ExecutionPlan& other) const;

  /// E.g. "gkp-positive/from-root-set row-restricted cost=1.2e3 alt=5e6".
  std::string DebugString() const;
};

/// Chooses the cheapest admissible engine for `q` on `tree` under the
/// requested shape. With `force_engine` set (tests, ablations), the cost
/// model still runs but the named engine is selected; it must be
/// admissible for `q` (callers check via CompiledQuery::Admits --
/// QueryService rejects inadmissible overrides with InvalidArgument
/// before reaching this function).
///
/// Pure and non-blocking: reads only the precomputed Tree::Stats(), never
/// fails, and is safe to call concurrently from any number of threads.
///
/// `stream_limit` matters only for kTupleStream plans: it is the
/// caller's requested tuple budget (offset + limit; 0 = drain
/// everything) and steers the enumeration-vs-materialization choice --
/// a small limit amortizes the enumerator's preprocessing over few
/// tuples but skips materializing an answer set the caller will never
/// read. Stream plans are NOT memoized in the PlanMemo (their key would
/// need the limit); OpenStream plans per call, which is cheap.
/// `force_repr` (tests, ablations) pins the matrix representation the
/// plan executes with, bypassing the crossover (and, in QueryService, the
/// PlanMemo -- forced plans are never memoized).
///
/// `force_parse_order` (tests, ablations) disables the composition-chain
/// reassociation DP, so the plan evaluates the query exactly as parsed
/// -- the baseline for association-order differentials. Like the other
/// overrides it bypasses the PlanMemo in QueryService.
///
/// Reassociation runs only for matrix plans that materialize relations
/// (full-relation shapes, and monadic plans whose complement structure
/// forces sub-matrices): purely monadic evaluation is a left-to-right
/// vector sweep whose cost is association-invariant, and row
/// restrictions push through a reassociated chain unchanged (Image
/// recursion handles any parenthesization), so matrixxmatrix products
/// become vectorxmatrix sweeps wherever the shape allows regardless of
/// the association the DP picked for the materialized parts.
ExecutionPlan PlanQuery(const CompiledQuery& q, const Tree& tree,
                        ResultShape shape,
                        std::optional<EnginePlan> force_engine = {},
                        std::size_t stream_limit = 0,
                        std::optional<MatrixRepr> force_repr = {},
                        bool force_parse_order = false);

/// True when executing `plan` for `q` must materialize at least one dense
/// |t| x |t| BitMatrix: every kNaryAnswer plan (the HCL / Fig. 8
/// machinery is dense end-to-end), kFullRelation shapes on non-matrix
/// engines (their answer IS a dense matrix), and matrix plans whose
/// chosen representation is kDense when the execution materializes
/// relations (full-relation shapes, and monadic plans containing a
/// complement over a non-step subexpression). Matrix plans carrying
/// repr kSparse or kAuto never require the dense form: the sparse
/// composition kernels run at any tree size under their run byte budget,
/// which is how the planner lifts the old full-relation refusal on
/// oversized trees. QueryService refuses dense-requiring plans with
/// kResourceExhausted when the tree exceeds BitMatrix::kMaxDenseNodes
/// (common/bit_matrix.h), the documented dense-materialization ceiling.
bool PlanRequiresDenseRelation(const CompiledQuery& q,
                               const ExecutionPlan& plan);

/// Bounded, thread-safe (query text, shape) -> ExecutionPlan memo. One
/// lives beside each document's AxisCache in the DocumentStore, so a
/// repeated query template on a long-lived document plans once. Once
/// full, unseen keys are still planned by the caller but not inserted
/// (same containment policy as the QueryCache).
///
/// Thread safety: all methods may be called concurrently; no method
/// blocks beyond a short internal mutex hold (GetOrCompute runs the
/// compute callback outside the lock, so a slow planner never serializes
/// other lookups -- plans are deterministic, making a racing duplicate
/// computation harmless). Lookup never fails; it reports absence via
/// nullopt.
class PlanMemo {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 256;

  explicit PlanMemo(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  PlanMemo(const PlanMemo&) = delete;
  PlanMemo& operator=(const PlanMemo&) = delete;

  /// The memoized plan, or nullopt on a miss.
  std::optional<ExecutionPlan> Lookup(std::string_view text,
                                      ResultShape shape) const
      XPV_EXCLUDES(mu_);
  void Insert(std::string_view text, ResultShape shape,
              const ExecutionPlan& plan) XPV_EXCLUDES(mu_);

  /// Lookup-or-plan in one step: builds the key once and runs `compute`
  /// outside the lock on a miss (plans are deterministic, so a racing
  /// duplicate computation is harmless). The serving hot path.
  template <typename Fn>
  ExecutionPlan GetOrCompute(std::string_view text, ResultShape shape,
                             Fn&& compute) XPV_EXCLUDES(mu_) {
    std::string key = Key(text, shape);
    {
      MutexLock lock(mu_);
      auto it = plans_.find(key);
      if (it != plans_.end()) {
        ++hits_;
        return it->second;
      }
      ++misses_;
    }
    ExecutionPlan plan = compute();
    MutexLock lock(mu_);
    if (plans_.size() < max_entries_ || plans_.contains(key)) {
      plans_.emplace(std::move(key), plan);
    }
    return plan;
  }

  std::size_t size() const XPV_EXCLUDES(mu_);
  std::uint64_t hits() const XPV_EXCLUDES(mu_);
  std::uint64_t misses() const XPV_EXCLUDES(mu_);

 private:
  static std::string Key(std::string_view text, ResultShape shape);

  const std::size_t max_entries_;
  mutable Mutex mu_;
  std::unordered_map<std::string, ExecutionPlan> plans_ XPV_GUARDED_BY(mu_);
  mutable std::uint64_t hits_ XPV_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t misses_ XPV_GUARDED_BY(mu_) = 0;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_PLANNER_H_
