// Thread-safe compiled-query cache keyed by query text.
//
// A production service sees the same query strings over and over (the
// paper's motivating bibliography/restaurant lookups are templates); the
// cache makes parse + simplify + classify a once-per-distinct-query cost.
// Failed compilations are cached too, so malformed queries hammering the
// service stay O(1) after the first attempt. The entry count is bounded:
// once full, unseen texts are still compiled and served but no longer
// inserted, so a stream of distinct (e.g. adversarial) query strings
// cannot grow the cache without limit.
#ifndef XPV_ENGINE_QUERY_CACHE_H_
#define XPV_ENGINE_QUERY_CACHE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "engine/compiled_query.h"

namespace xpv::engine {

/// Memoizes CompileQuery by exact query text. Shared_ptr values are
/// immutable, so returned queries can be used concurrently with further
/// cache mutation.
class QueryCache {
 public:
  /// `max_entries` caps the number of cached texts (successes and
  /// failures alike); 0 disables caching entirely.
  explicit QueryCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The compiled form of `text`, compiling on first sight.
  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      std::string_view text);

  /// Number of cached entries (successes + failures).
  std::size_t size() const;
  /// Hits = lookups served from the cache; misses = compilations.
  std::size_t hits() const;
  std::size_t misses() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledQuery> query;  // null on compile failure
    Status error;
  };

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_CACHE_H_
