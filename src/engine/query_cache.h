// Thread-safe compiled-query cache keyed by *canonical* query text.
//
// A production service sees the same query strings over and over (the
// paper's motivating bibliography/restaurant lookups are templates); the
// cache makes parse + simplify + classify a once-per-distinct-query cost.
// Successful compilations are stored under the query's round-tripped
// canonical surface text (CompiledQuery::canonical_text), with a raw-text
// alias index in front: whitespace, parenthesization and abbreviation
// variants of one query share a single entry -- and hence one plan-memo
// entry and one RelationCache key family downstream. Failed compilations
// have no canonical form; they are cached under the raw text, so
// malformed queries hammering the service stay O(1) after the first
// attempt. Both the entry count and the alias count are bounded: once
// full, unseen texts are still compiled and served but no longer
// inserted, so a stream of distinct (e.g. adversarial) query strings
// cannot grow the cache without limit.
#ifndef XPV_ENGINE_QUERY_CACHE_H_
#define XPV_ENGINE_QUERY_CACHE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/compiled_query.h"

namespace xpv::engine {

/// Memoizes CompileQuery under canonical query text with a raw-text
/// alias index. Shared_ptr values are immutable, so returned queries can
/// be used concurrently with further cache mutation.
class QueryCache {
 public:
  /// `max_entries` caps the number of cached canonical entries (and,
  /// independently, the number of raw-text aliases); 0 disables caching
  /// entirely.
  explicit QueryCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The compiled form of `text`, compiling on first sight.
  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      std::string_view text) XPV_EXCLUDES(mu_);

  /// Number of cached canonical entries (successes + failures). Aliased
  /// raw variants do not add entries: after compiling "a/b" and
  /// " a / b ", size() is 1.
  std::size_t size() const XPV_EXCLUDES(mu_);
  /// Raw texts aliased onto a canonical entry (excluding raw texts that
  /// equal their canonical form).
  std::size_t aliases() const XPV_EXCLUDES(mu_);
  /// Hits = lookups served from the cache (by canonical entry or alias);
  /// misses = compilations.
  std::size_t hits() const XPV_EXCLUDES(mu_);
  std::size_t misses() const XPV_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const CompiledQuery> query;  // null on compile failure
    Status error;
  };

  mutable Mutex mu_;
  const std::size_t max_entries_;
  /// Canonical text (raw text for failures) -> compiled entry.
  std::unordered_map<std::string, Entry> entries_ XPV_GUARDED_BY(mu_);
  /// Raw text -> canonical text, for raw texts that differ from it.
  std::unordered_map<std::string, std::string> aliases_ XPV_GUARDED_BY(mu_);
  std::size_t hits_ XPV_GUARDED_BY(mu_) = 0;
  std::size_t misses_ XPV_GUARDED_BY(mu_) = 0;
};

}  // namespace xpv::engine

#endif  // XPV_ENGINE_QUERY_CACHE_H_
