// Abstract square Boolean matrix: the representation-agnostic view of a
// binary relation over tree nodes.
//
// The paper's Section-4 evaluation treats every binary query as a
// |t| x |t| Boolean matrix. Materializing the 7 axis relations densely
// costs O(|t|^2) bits, which is the binding scale constraint; but on a
// pre-order-numbered tree the axis relations are *interval-structured* --
// a subtree is the contiguous id range [v, v + SubtreeSize(v)), so a
// descendant row is a single interval and ancestor / sibling rows are
// unions of a few runs. This header splits the representation from the
// consumers:
//
//   BoolMatrix        -- the interface: cell probes, row materialization
//                        (single and batched), and the word-parallel set
//                        kernels the engines use (ImageOf, AndOfRows,
//                        RowsContaining), plus resident_bytes() so cache
//                        accounting reflects the actual representation.
//   DenseBoolMatrix   -- adapter over the bit-packed BitMatrix; stays the
//                        representation for composed and intermediate
//                        matrices (products, complements) and for small
//                        trees where a row is a handful of words.
//   IntervalMatrix    -- CSR-style sorted run lists, O(total runs) space;
//                        rows materialize lazily into caller-pooled
//                        BitVector scratch, and the kernels run directly
//                        on the runs (SetRange / ClearRange / AnyInRange)
//                        without ever expanding the whole relation.
#ifndef XPV_COMMON_BOOL_MATRIX_H_
#define XPV_COMMON_BOOL_MATRIX_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bit_matrix.h"
#include "common/status.h"

namespace xpv {

class IntervalMatrix;

/// Interface over square Boolean matrices. All row/column indexes are in
/// [0, size()); implementations are immutable once built and safe to read
/// concurrently.
class BoolMatrix {
 public:
  virtual ~BoolMatrix() = default;

  /// Matrix dimension (number of tree nodes).
  virtual std::size_t size() const = 0;
  /// Heap bytes held by this representation (payload only; excludes the
  /// object header). Drives AxisCache::approx_resident_bytes() and the
  /// DocumentStore hot-cache LRU budget.
  virtual std::size_t resident_bytes() const = 0;
  /// Representation name for stats and bench counters: "dense",
  /// "interval" or "sparse".
  virtual std::string_view name() const = 0;

  /// Single-cell probe.
  virtual bool Get(std::size_t row, std::size_t col) const = 0;

  /// Materializes one row into `out`, resizing it to size() if needed.
  /// Hot loops pass the same `out` every call -- that reused vector is
  /// the pooled scratch; no per-row allocation happens after the first.
  virtual void RowInto(std::size_t row, BitVector& out) const = 0;
  /// Row `row` as a freshly allocated BitVector.
  BitVector Row(std::size_t row) const;
  /// Batched row materialization (the metagraph get_rows idiom): one
  /// output allocation per requested row, shared decode state inside the
  /// implementation where that helps.
  virtual std::vector<BitVector> Rows(
      const std::vector<std::uint32_t>& rows) const;

  // Word-parallel set kernels. Defaults are generic over RowInto with one
  // pooled scratch row; both implementations override them with direct
  // word (dense) or run (interval) loops.

  /// image(N) = { v | exists u in N, M[u][v] }.
  virtual BitVector ImageOf(const BitVector& rows) const;
  /// AND of the rows selected by `rows` (all-ones for an empty selection,
  /// the AND identity). Complementing the result gives the image of a
  /// node set under the complemented relation without materializing it.
  virtual BitVector AndOfRows(const BitVector& rows) const;
  /// Rows whose row set contains every column of `cols` (all rows for an
  /// empty `cols`). Complementing the result gives the preimage of a
  /// node set under the complemented relation.
  virtual BitVector RowsContaining(const BitVector& cols) const;
  /// Set of rows with at least one set bit (the domain of the relation).
  virtual BitVector NonEmptyRows() const;
  /// Number of set cells.
  virtual std::size_t Count() const = 0;

  /// The backing BitMatrix when this is a dense representation, nullptr
  /// otherwise. Lets dense-path consumers borrow the matrix without a
  /// copy.
  virtual const BitMatrix* AsDense() const { return nullptr; }

  /// The CSR run-list view when this is an interval-structured
  /// representation (IntervalMatrix or its SparseBoolMatrix subclass),
  /// nullptr otherwise. Lets run-native consumers (the sparse composition
  /// kernels in common/sparse_matrix.h) borrow the runs without a copy.
  virtual const IntervalMatrix* AsInterval() const { return nullptr; }

  /// Dense copy of this relation. Fails with kResourceExhausted beyond
  /// BitMatrix::kMaxDenseNodes -- callers on the full-relation path are
  /// gated by the planner (engine/planner.h) before reaching this.
  Result<BitMatrix> ToDense() const;
};

/// Dense implementation: owns a bit-packed BitMatrix.
class DenseBoolMatrix final : public BoolMatrix {
 public:
  explicit DenseBoolMatrix(BitMatrix m) : m_(std::move(m)) {}

  std::size_t size() const override { return m_.size(); }
  std::size_t resident_bytes() const override { return m_.resident_bytes(); }
  std::string_view name() const override { return "dense"; }

  bool Get(std::size_t row, std::size_t col) const override {
    return m_.Get(row, col);
  }
  void RowInto(std::size_t row, BitVector& out) const override;

  BitVector ImageOf(const BitVector& rows) const override {
    return m_.ImageOf(rows);
  }
  BitVector AndOfRows(const BitVector& rows) const override {
    return m_.AndOfRows(rows);
  }
  BitVector RowsContaining(const BitVector& cols) const override {
    return m_.RowsContaining(cols);
  }
  BitVector NonEmptyRows() const override { return m_.NonEmptyRows(); }
  std::size_t Count() const override { return m_.Count(); }

  const BitMatrix* AsDense() const override { return &m_; }

 private:
  BitMatrix m_;
};

/// One maximal run of set columns [begin, end) in a row.
struct IntervalRun {
  std::uint32_t begin;
  std::uint32_t end;

  bool operator==(const IntervalRun&) const = default;
};

/// Succinct implementation: per-row sorted, disjoint, non-adjacent run
/// lists in CSR layout -- row r's runs are runs_[row_offset_[r] ..
/// row_offset_[r+1]). Space is O(total runs); the axis builders in
/// tree/axes.cc emit O(|t|) runs for every axis except ancestor and the
/// sibling axes, which are bounded by O(|t| * depth) resp. O(|t| *
/// non-leaf-sibling count) and stay near-linear on realistic shapes.
///
/// Kernel costs trade the dense words-per-row factor for runs-per-row:
/// ImageOf / AndOfRows touch only the selected rows' runs (plus the
/// words they cover), and RowsContaining rejects most rows with two O(1)
/// span tests before scanning any gap.
class IntervalMatrix : public BoolMatrix {
 public:
  /// Takes ownership of a prebuilt CSR: row_offset has size n + 1, runs
  /// per row are sorted, disjoint and non-adjacent (maximal).
  IntervalMatrix(std::size_t n, std::vector<std::uint32_t> row_offset,
                 std::vector<IntervalRun> runs);

  std::size_t size() const override { return n_; }
  std::size_t resident_bytes() const override {
    return row_offset_.size() * sizeof(std::uint32_t) +
           runs_.size() * sizeof(IntervalRun);
  }
  std::string_view name() const override { return "interval"; }

  bool Get(std::size_t row, std::size_t col) const override;
  void RowInto(std::size_t row, BitVector& out) const override;

  BitVector ImageOf(const BitVector& rows) const override;
  BitVector AndOfRows(const BitVector& rows) const override;
  BitVector RowsContaining(const BitVector& cols) const override;
  BitVector NonEmptyRows() const override;
  std::size_t Count() const override;

  const IntervalMatrix* AsInterval() const override { return this; }

  /// Total number of stored runs (bench counter).
  std::size_t num_runs() const { return runs_.size(); }
  /// Runs of one row, for tests and direct consumers.
  std::pair<const IntervalRun*, const IntervalRun*> RunsOf(
      std::size_t row) const {
    return {runs_.data() + row_offset_[row],
            runs_.data() + row_offset_[row + 1]};
  }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> row_offset_;  // size n_ + 1
  std::vector<IntervalRun> runs_;
};

}  // namespace xpv

#endif  // XPV_COMMON_BOOL_MATRIX_H_
