#include "common/bit_matrix.h"

#include <algorithm>
#include <cassert>

namespace xpv {

namespace {

/// Sets bits [begin, end) in a packed word array, whole words at a time.
/// Callers guarantee end fits in the array and begin < end.
void SetWordRange(std::uint64_t* words, std::size_t begin, std::size_t end) {
  const std::size_t wb = begin >> 6;
  const std::size_t we = (end - 1) >> 6;
  const std::uint64_t first = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t last =
      (end & 63) == 0 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (end & 63)) - 1;
  if (wb == we) {
    words[wb] |= first & last;
    return;
  }
  words[wb] |= first;
  for (std::size_t w = wb + 1; w < we; ++w) words[w] = ~std::uint64_t{0};
  words[we] |= last;
}

/// Clears bits [begin, end) in a packed word array, whole words at a time.
/// Callers guarantee end fits in the array and begin < end.
void ClearWordRange(std::uint64_t* words, std::size_t begin, std::size_t end) {
  const std::size_t wb = begin >> 6;
  const std::size_t we = (end - 1) >> 6;
  const std::uint64_t first = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t last =
      (end & 63) == 0 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (end & 63)) - 1;
  if (wb == we) {
    words[wb] &= ~(first & last);
    return;
  }
  words[wb] &= ~first;
  for (std::size_t w = wb + 1; w < we; ++w) words[w] = 0;
  words[we] &= ~last;
}

}  // namespace

void BitVector::Clear() { std::fill(words_.begin(), words_.end(), 0); }

void BitVector::Fill() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  ClearPadding();
}

void BitVector::SetRange(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  assert(end <= size_);
  SetWordRange(words_.data(), begin, end);
}

void BitVector::ClearRange(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  assert(end <= size_);
  ClearWordRange(words_.data(), begin, end);
}

bool BitVector::AnyInRange(std::size_t begin, std::size_t end) const {
  if (begin >= end) return false;
  assert(end <= size_);
  const std::size_t wb = begin >> 6;
  const std::size_t we = (end - 1) >> 6;
  const std::uint64_t first = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t last =
      (end & 63) == 0 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (end & 63)) - 1;
  if (wb == we) return (words_[wb] & first & last) != 0;
  if ((words_[wb] & first) != 0) return true;
  for (std::size_t w = wb + 1; w < we; ++w) {
    if (words_[w] != 0) return true;
  }
  return (words_[we] & last) != 0;
}

void BitVector::ClearPadding() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
  }
}

void BitVector::OrWith(const BitVector& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::AndNotWith(const BitVector& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void BitVector::Complement() {
  for (auto& w : words_) w = ~w;
  ClearPadding();
}

bool BitVector::None() const {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::size_t BitVector::Count() const {
  std::size_t count = 0;
  for (auto w : words_) count += static_cast<std::size_t>(__builtin_popcountll(w));
  return count;
}

std::size_t BitVector::FirstSet() const { return NextSet(0); }

std::size_t BitVector::NextSet(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from >> 6;
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
    }
    if (++w >= words_.size()) return size_;
    bits = words_[w];
  }
}

std::size_t BitVector::NextUnset(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from >> 6;
  std::uint64_t bits = ~words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      // Padding bits past size_ are stored as 0, so their complement can
      // report an unset position beyond the end; clamp it.
      return std::min(
          size_, w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits)));
    }
    if (++w >= words_.size()) return size_;
    bits = ~words_[w];
  }
}

std::vector<std::uint32_t> BitVector::ToIndices() const {
  std::vector<std::uint32_t> out;
  out.reserve(Count());
  ForEachSet([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
  return out;
}

Result<BitMatrix> BitMatrix::Create(std::size_t n) {
  if (n > kMaxDenseNodes) {
    return Status::ResourceExhausted(
        "dense BitMatrix of dimension " + std::to_string(n) + " exceeds the " +
        std::to_string(kMaxDenseNodes) +
        "-node ceiling (" + std::to_string(n * ((n + 63) / 64) * 8) +
        " bytes); use an interval-backed axis relation instead");
  }
  return BitMatrix(n);
}

BitMatrix BitMatrix::Identity(std::size_t n) {
  BitMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

BitMatrix BitMatrix::Full(std::size_t n) {
  BitMatrix m(n);
  std::fill(m.words_.begin(), m.words_.end(), ~std::uint64_t{0});
  for (std::size_t r = 0; r < n; ++r) m.ClearRowPadding(r);
  return m;
}

void BitMatrix::ClearRowPadding(std::size_t row) {
  if (n_ % 64 != 0 && words_per_row_ > 0) {
    words_[row * words_per_row_ + words_per_row_ - 1] &=
        (std::uint64_t{1} << (n_ % 64)) - 1;
  }
}

BitMatrix BitMatrix::Multiply(const BitMatrix& other) const {
  assert(n_ == other.n_);
  BitMatrix out(n_);
  if (n_ == 0) return out;
  // Row-OR product, blocked over bands of `other` rows so that the band
  // stays cache-resident while every row of `this` scans it: out[r] is the
  // OR of other[k] over all set bits k of row r. The extra passes over
  // `this` cost n^2/64 words per band -- negligible against the n^3/64
  // word OR volume they localize.
  constexpr std::size_t kBandRows = 512;
  for (std::size_t k0 = 0; k0 < n_; k0 += kBandRows) {
    const std::size_t k1 = std::min(n_, k0 + kBandRows);
    const std::size_t w0 = k0 >> 6;
    const std::size_t w1 = (k1 + 63) >> 6;
    for (std::size_t r = 0; r < n_; ++r) {
      std::uint64_t* out_row = &out.words_[r * words_per_row_];
      const std::uint64_t* this_row = &words_[r * words_per_row_];
      for (std::size_t w = w0; w < w1; ++w) {
        std::uint64_t bits = this_row[w];
        // Trim the first/last word of the band to [k0, k1).
        if (w == w0 && (k0 & 63) != 0) bits &= ~std::uint64_t{0} << (k0 & 63);
        if (w == w1 - 1 && (k1 & 63) != 0) {
          bits &= (std::uint64_t{1} << (k1 & 63)) - 1;
        }
        while (bits != 0) {
          const std::size_t k =
              w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          const std::uint64_t* other_row = &other.words_[k * words_per_row_];
          for (std::size_t j = 0; j < words_per_row_; ++j) {
            out_row[j] |= other_row[j];
          }
        }
      }
    }
  }
  return out;
}

BitMatrix BitMatrix::MultiplyNaive(const BitMatrix& other) const {
  assert(n_ == other.n_);
  BitMatrix out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t c = 0; c < n_; ++c) {
      for (std::size_t k = 0; k < n_; ++k) {
        if (Get(r, k) && other.Get(k, c)) {
          out.Set(r, c);
          break;
        }
      }
    }
  }
  return out;
}

BitMatrix BitMatrix::Or(const BitMatrix& other) const {
  assert(n_ == other.n_);
  BitMatrix out = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] |= other.words_[i];
  return out;
}

BitMatrix BitMatrix::And(const BitMatrix& other) const {
  assert(n_ == other.n_);
  BitMatrix out = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] &= other.words_[i];
  return out;
}

BitMatrix BitMatrix::AndNot(const BitMatrix& other) const {
  assert(n_ == other.n_);
  BitMatrix out = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] &= ~other.words_[i];
  return out;
}

BitMatrix BitMatrix::Complement() const {
  BitMatrix out = *this;
  for (auto& w : out.words_) w = ~w;
  for (std::size_t r = 0; r < n_; ++r) out.ClearRowPadding(r);
  return out;
}

BitMatrix BitMatrix::FilterDiagonal() const {
  BitMatrix out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (row[w] != 0) {
        out.Set(r, r);
        break;
      }
    }
  }
  return out;
}

namespace {

// In-place transpose of a 64x64 bit block, bit b of x[k] = element (k, b):
// recursive delta-swap of off-diagonal sub-blocks (Hacker's Delight 7-3),
// 6 rounds of word-parallel exchanges instead of 4096 single-bit probes.
void Transpose64(std::uint64_t x[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((x[k] >> j) ^ x[k + j]) & m;
      x[k + j] ^= t;
      x[k] ^= t << j;
    }
  }
}

}  // namespace

BitMatrix BitMatrix::Transpose() const {
  BitMatrix out(n_);
  const std::size_t blocks = (n_ + 63) / 64;
  std::uint64_t buf[64];
  for (std::size_t rb = 0; rb < blocks; ++rb) {
    const std::size_t rows = std::min<std::size_t>(64, n_ - rb * 64);
    for (std::size_t cb = 0; cb < blocks; ++cb) {
      for (std::size_t i = 0; i < rows; ++i) {
        buf[i] = words_[(rb * 64 + i) * words_per_row_ + cb];
      }
      std::fill(buf + rows, buf + 64, 0);
      Transpose64(buf);
      const std::size_t cols = std::min<std::size_t>(64, n_ - cb * 64);
      for (std::size_t j = 0; j < cols; ++j) {
        out.words_[(cb * 64 + j) * words_per_row_ + rb] = buf[j];
      }
    }
  }
  return out;
}

BitMatrix BitMatrix::SelectRows(const BitVector& rows) const {
  assert(rows.size() == n_);
  BitMatrix out(n_);
  rows.ForEachSet([&](std::size_t r) {
    std::copy(words_.begin() + static_cast<std::ptrdiff_t>(r * words_per_row_),
              words_.begin() + static_cast<std::ptrdiff_t>((r + 1) * words_per_row_),
              out.words_.begin() + static_cast<std::ptrdiff_t>(r * words_per_row_));
  });
  return out;
}

BitMatrix BitMatrix::MaskColumns(const BitVector& cols) const {
  assert(cols.size() == n_);
  BitMatrix out = *this;
  for (std::size_t r = 0; r < n_; ++r) {
    std::uint64_t* row = &out.words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) row[w] &= cols.words()[w];
  }
  return out;
}

void BitMatrix::MaskColumnsInPlace(const BitVector& cols) {
  assert(cols.size() == n_);
  for (std::size_t r = 0; r < n_; ++r) {
    std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) row[w] &= cols.words()[w];
  }
}

BitVector BitMatrix::ColumnUnion() const {
  BitVector out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      out.mutable_words()[w] |= row[w];
    }
  }
  return out;
}

BitVector BitMatrix::NonEmptyRows() const {
  BitVector out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (row[w] != 0) {
        out.Set(r);
        break;
      }
    }
  }
  return out;
}

BitVector BitMatrix::ImageOf(const BitVector& rows) const {
  assert(rows.size() == n_);
  BitVector out(n_);
  rows.ForEachSet([&](std::size_t r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      out.mutable_words()[w] |= row[w];
    }
  });
  return out;
}

BitVector BitMatrix::AndOfRows(const BitVector& rows) const {
  assert(rows.size() == n_);
  BitVector out(n_);
  out.Fill();
  rows.ForEachSet([&](std::size_t r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      out.mutable_words()[w] &= row[w];
    }
  });
  return out;
}

BitVector BitMatrix::RowsContaining(const BitVector& cols) const {
  assert(cols.size() == n_);
  BitVector out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::uint64_t* row = &words_[r * words_per_row_];
    bool contains = true;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if ((cols.words()[w] & ~row[w]) != 0) {
        contains = false;
        break;
      }
    }
    if (contains) out.Set(r);
  }
  return out;
}

std::size_t BitMatrix::Count() const {
  std::size_t count = 0;
  for (auto w : words_) count += static_cast<std::size_t>(__builtin_popcountll(w));
  return count;
}

bool BitMatrix::None() const {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

BitVector BitMatrix::Row(std::size_t row) const {
  BitVector out(n_);
  std::copy(words_.begin() + static_cast<std::ptrdiff_t>(row * words_per_row_),
            words_.begin() + static_cast<std::ptrdiff_t>((row + 1) * words_per_row_),
            out.mutable_words().begin());
  return out;
}

void BitMatrix::CopyRowInto(std::size_t row, BitVector& out) const {
  if (out.size() != n_) out = BitVector(n_);
  std::copy(words_.begin() + static_cast<std::ptrdiff_t>(row * words_per_row_),
            words_.begin() + static_cast<std::ptrdiff_t>((row + 1) * words_per_row_),
            out.mutable_words().begin());
}

void BitMatrix::OrIntoRow(std::size_t row, const BitVector& v) {
  assert(v.size() == n_);
  std::uint64_t* dst = &words_[row * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) dst[w] |= v.words()[w];
}

void BitMatrix::OrRowIntoRow(std::size_t dst, std::size_t src) {
  std::uint64_t* d = &words_[dst * words_per_row_];
  const std::uint64_t* s = &words_[src * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
}

void BitMatrix::OrRowFrom(std::size_t dst, const BitMatrix& src,
                          std::size_t src_row) {
  assert(n_ == src.n_);
  std::uint64_t* d = &words_[dst * words_per_row_];
  const std::uint64_t* s = &src.words_[src_row * words_per_row_];
  for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
}

void BitMatrix::SetRowRange(std::size_t row, std::size_t begin,
                            std::size_t end) {
  if (begin >= end) return;
  assert(end <= n_);
  SetWordRange(&words_[row * words_per_row_], begin, end);
}

std::string BitMatrix::ToString() const {
  std::string out;
  out.reserve(n_ * (n_ + 1));
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t c = 0; c < n_; ++c) out.push_back(Get(r, c) ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace xpv
