// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over byte
// ranges.
//
// The persistence layer (engine/snapshot.h) stamps every segment section
// with a CRC of its payload so that torn writes, truncation, and bit rot
// surface as typed kDataLoss errors at load time instead of undefined
// behavior later. Loads verify every byte before decoding, so CRC
// throughput sits directly on the reload critical path; the Castagnoli
// polynomial is the one x86's SSE4.2 crc32 instruction computes, which
// the implementation uses when available (runtime-detected) with a
// bit-identical table-driven slice-by-8 fallback everywhere else.
#ifndef XPV_COMMON_CRC32_H_
#define XPV_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xpv {

/// CRC-32C of `size` bytes at `data`, with standard init/final XOR
/// (matches the iSCSI / SSE4.2 crc32c function). Crc32(nullptr, 0) == 0.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Incremental form: feed the previous return value back in as `seed`
/// to checksum a discontiguous range. Seed 0 starts a fresh CRC.
std::uint32_t Crc32Update(std::uint32_t seed, const void* data,
                          std::size_t size);

}  // namespace xpv

#endif  // XPV_COMMON_CRC32_H_
