// Deterministic pseudo-random number generator (splitmix64 + xoshiro-style
// mixing) used by tree/expression generators in tests and benchmarks.
// std::mt19937 is avoided so random corpora are reproducible across
// standard-library implementations.
#ifndef XPV_COMMON_RNG_H_
#define XPV_COMMON_RNG_H_

#include <cstdint>

namespace xpv {

/// Small deterministic PRNG. Same seed => same sequence, everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next 64 random bits (splitmix64).
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// True with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace xpv

#endif  // XPV_COMMON_RNG_H_
