// Sparse Boolean composition kernels over CSR run-lists.
//
// PR 6 made axis *storage* succinct (IntervalMatrix); this header makes
// *composition* succinct. A SparseBoolMatrix is an IntervalMatrix that can
// also be built incrementally (Builder), converted from/to dense, and --
// the point -- multiplied, OR-ed, complemented and diagonal-filtered
// without ever expanding to the O(n^2)-bit dense form. That lifts the
// BitMatrix::kMaxDenseNodes ceiling from the full-relation evaluation
// path: a product of run-structured relations on a 1M-node tree costs
// O(runs) space instead of ~125 GB.
//
// Kernel shapes (the cuBool boolean-SpGEMM pattern from SNIPPETS.md §3,
// adapted to run-lists):
//
//   sparse x sparse   per output row, gather the b-rows selected by a's
//                     runs and merge their runs; when the gathered run
//                     count saturates (kDenseAccumRunFactor), switch to a
//                     word-parallel dense accumulator row and re-extract
//                     runs -- the SpGEMM "dense row fallback".
//   sparse x dense    OR whole bit-packed rows of b per source run
//                     (word-parallel, output dense).
//   dense x sparse    SetRowRange per (set bit, run) pair (output dense).
//
// Every sparse-output kernel takes a `max_runs` budget and fails with
// kResourceExhausted instead of letting an adversarial query (e.g.
// descendant masked by an alternating label on a path tree, whose masked
// relation has Theta(n^2) runs) grow the run list without bound. The
// planner (engine/planner.h) sizes the budget from kSparseEvalByteBudget.
#ifndef XPV_COMMON_SPARSE_MATRIX_H_
#define XPV_COMMON_SPARSE_MATRIX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bit_matrix.h"
#include "common/bool_matrix.h"
#include "common/status.h"

namespace xpv {

/// Which representation the matrix engine composes in (engine mode and
/// planner decision alike). kAuto lets the engine pick per node from the
/// axis-cache backing and per-operand density estimates; kDense / kSparse
/// force one representation end-to-end (tests, ablations, forced plans).
enum class MatrixRepr {
  kAuto,
  kDense,
  kSparse,
};

/// "auto" / "dense" / "sparse" (EnginePlanName-style; stats + plan dumps).
std::string_view MatrixReprName(MatrixRepr repr);

/// Byte budget for one sparse evaluation's run storage. Sized so a worst
/// case sparse full-relation job stays far below the container's memory
/// while still admitting ~16M runs -- orders of magnitude beyond what
/// run-structured axis compositions produce on realistic trees. The
/// planner refuses (keeps refusing, as before this engine existed) plans
/// whose estimated run footprint exceeds this.
inline constexpr std::size_t kSparseEvalByteBudget = 128u << 20;

/// IntervalMatrix with composition kernels: the sparse operand/result type
/// of ppl::MatrixEngine's AnyMatrix evaluation. Shares the IntervalRun CSR
/// vocabulary (and all read kernels) with the axis-cache representation.
class SparseBoolMatrix final : public IntervalMatrix {
 public:
  /// Empty 0 x 0 matrix (so AnyMatrix and containers can default-build).
  SparseBoolMatrix() : IntervalMatrix(0, {0}, {}) {}
  /// Takes ownership of a prebuilt CSR (same contract as IntervalMatrix).
  SparseBoolMatrix(std::size_t n, std::vector<std::uint32_t> row_offset,
                   std::vector<IntervalRun> runs)
      : IntervalMatrix(n, std::move(row_offset), std::move(runs)) {}

  std::string_view name() const override { return "sparse"; }

  /// Incremental CSR construction. Append() takes rows in non-decreasing
  /// order and, within a row, runs in increasing begin order; overlapping
  /// or adjacent runs are coalesced into maximal ones. With a nonzero
  /// `max_runs`, exceeding it fails the *build* (Append reports the
  /// overflow, Finish returns kResourceExhausted) instead of growing
  /// without bound.
  class Builder {
   public:
    explicit Builder(std::size_t n, std::size_t max_runs = 0);

    /// Adds [begin, end) to `row`; empty ranges are ignored. Returns false
    /// once the run budget is exceeded (the builder is then poisoned and
    /// Finish fails).
    bool Append(std::uint32_t row, std::uint32_t begin, std::uint32_t end);
    /// ORs the set bits of `bits` into `row` as coalesced runs,
    /// word-parallel run extraction.
    bool AppendBits(std::uint32_t row, const BitVector& bits);

    Result<SparseBoolMatrix> Finish();

    std::size_t num_runs() const { return runs_.size(); }

   private:
    void SealThrough(std::uint32_t row);

    std::size_t n_;
    std::size_t max_runs_;
    bool overflowed_ = false;
    std::uint32_t next_row_ = 0;  // rows < next_row_ are sealed
    std::vector<std::uint32_t> row_offset_;
    std::vector<IntervalRun> runs_;
  };

  /// Exact sparse copy of a dense matrix (word-parallel run extraction).
  static SparseBoolMatrix FromDense(const BitMatrix& m);
  /// Sparse copy of any BoolMatrix: borrows the CSR directly when `m` is
  /// interval-backed, extracts runs row by row otherwise. Fails with
  /// kResourceExhausted when the run count exceeds a nonzero `max_runs`.
  static Result<SparseBoolMatrix> FromBool(const BoolMatrix& m,
                                           std::size_t max_runs = 0);

  /// Boolean product this . b with sparse output: SpGEMM-style per-row run
  /// merging, falling back to a word-parallel dense accumulator row when
  /// the gathered run count saturates (see kDenseAccumRunFactor).
  Result<SparseBoolMatrix> Multiply(const SparseBoolMatrix& b,
                                    std::size_t max_runs = 0) const;
  /// this . b for dense b: ORs whole bit-packed rows of b, word-parallel;
  /// the output is dense (and bounded by b's existing allocation size).
  BitMatrix MultiplyDense(const BitMatrix& b) const;
  /// a . this for dense a: SetRowRange per (set bit of a's row, run).
  BitMatrix MultiplyDenseLeft(const BitMatrix& a) const;

  /// Elementwise OR: two-pointer merge of both rows' run lists.
  Result<SparseBoolMatrix> Or(const SparseBoolMatrix& b,
                              std::size_t max_runs = 0) const;
  /// ORs this matrix into a dense accumulator of the same size.
  void OrInto(BitMatrix& out) const;

  /// Elementwise complement. Gap inversion: the complement of a row with r
  /// runs has at most r + 1 runs, so the result is always representable
  /// within (num_runs + n) runs and never needs a budget.
  SparseBoolMatrix Complement() const;
  /// The paper's [M]: diagonal of nonempty rows (single-run rows).
  SparseBoolMatrix FilterDiagonal() const;

  /// Per-output-row threshold factor for the SpGEMM dense-row fallback:
  /// when a product row gathers more than max(kDenseAccumMinRuns,
  /// n / kDenseAccumRunFactor) candidate runs, sorting and merging them
  /// costs more word ops than blitting a ceil(n/64)-word accumulator row
  /// and re-extracting maximal runs, so the kernel switches per row.
  static constexpr std::size_t kDenseAccumRunFactor = 256;
  static constexpr std::size_t kDenseAccumMinRuns = 32;
};

}  // namespace xpv

#endif  // XPV_COMMON_SPARSE_MATRIX_H_
