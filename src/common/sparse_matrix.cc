#include "common/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <utility>

namespace xpv {

std::string_view MatrixReprName(MatrixRepr repr) {
  // Exhaustive on purpose (no default return): a new representation
  // without a name is a -Wswitch compile warning, not a silent string.
  switch (repr) {
    case MatrixRepr::kAuto:
      return "auto";
    case MatrixRepr::kDense:
      return "dense";
    case MatrixRepr::kSparse:
      return "sparse";
  }
  std::abort();  // unreachable: the switch above covers every enumerator
}

// ----------------------------------------------------------------- Builder

SparseBoolMatrix::Builder::Builder(std::size_t n, std::size_t max_runs)
    : n_(n), max_runs_(max_runs) {
  row_offset_.reserve(n_ + 1);
  row_offset_.push_back(0);  // first-run offset of row 0 (the open row)
}

void SparseBoolMatrix::Builder::SealThrough(std::uint32_t row) {
  assert(row <= n_);
  while (next_row_ < row) {
    row_offset_.push_back(static_cast<std::uint32_t>(runs_.size()));
    ++next_row_;
  }
}

bool SparseBoolMatrix::Builder::Append(std::uint32_t row, std::uint32_t begin,
                                       std::uint32_t end) {
  if (overflowed_) return false;
  if (end <= begin) return true;
  assert(row < n_ && end <= n_);
  assert(row >= next_row_ && "rows must arrive in non-decreasing order");
  SealThrough(row);
  // Coalesce with the open row's last run when overlapping or adjacent;
  // row_offset_.back() is the open row's first-run offset, so any run past
  // it belongs to this row.
  if (runs_.size() > row_offset_.back() && begin <= runs_.back().end) {
    assert(begin >= runs_.back().begin && "runs within a row must be sorted");
    runs_.back().end = std::max(runs_.back().end, end);
    return true;
  }
  runs_.push_back(IntervalRun{begin, end});
  if (max_runs_ != 0 && runs_.size() > max_runs_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

bool SparseBoolMatrix::Builder::AppendBits(std::uint32_t row,
                                           const BitVector& bits) {
  assert(bits.size() == n_);
  std::size_t pos = bits.FirstSet();
  while (pos < n_) {
    const std::size_t end = bits.NextUnset(pos);
    if (!Append(row, static_cast<std::uint32_t>(pos),
                static_cast<std::uint32_t>(end))) {
      return false;
    }
    if (end >= n_) break;
    pos = bits.NextSet(end);
  }
  return true;
}

Result<SparseBoolMatrix> SparseBoolMatrix::Builder::Finish() {
  if (overflowed_) {
    return Status::ResourceExhausted(
        "sparse matrix run budget exceeded (" + std::to_string(max_runs_) +
        " runs, " + std::to_string(max_runs_ * sizeof(IntervalRun)) +
        " bytes)");
  }
  SealThrough(static_cast<std::uint32_t>(n_));
  return SparseBoolMatrix(n_, std::move(row_offset_), std::move(runs_));
}

// ------------------------------------------------------------- conversion

SparseBoolMatrix SparseBoolMatrix::FromDense(const BitMatrix& m) {
  Builder builder(m.size());
  BitVector scratch;
  for (std::size_t r = 0; r < m.size(); ++r) {
    m.CopyRowInto(r, scratch);
    builder.AppendBits(static_cast<std::uint32_t>(r), scratch);
  }
  return std::move(builder.Finish()).value();  // unbudgeted: cannot fail
}

Result<SparseBoolMatrix> SparseBoolMatrix::FromBool(const BoolMatrix& m,
                                                    std::size_t max_runs) {
  Builder builder(m.size(), max_runs);
  if (const IntervalMatrix* iv = m.AsInterval()) {
    for (std::size_t r = 0; r < iv->size(); ++r) {
      auto [first, last] = iv->RunsOf(r);
      for (auto it = first; it != last; ++it) {
        if (!builder.Append(static_cast<std::uint32_t>(r), it->begin,
                            it->end)) {
          return builder.Finish();
        }
      }
    }
    return builder.Finish();
  }
  BitVector scratch;
  for (std::size_t r = 0; r < m.size(); ++r) {
    m.RowInto(r, scratch);
    if (!builder.AppendBits(static_cast<std::uint32_t>(r), scratch)) break;
  }
  return builder.Finish();
}

// ---------------------------------------------------------------- product

Result<SparseBoolMatrix> SparseBoolMatrix::Multiply(const SparseBoolMatrix& b,
                                                    std::size_t max_runs) const {
  assert(size() == b.size());
  const std::size_t n = size();
  const std::size_t dense_threshold =
      std::max(kDenseAccumMinRuns, n / kDenseAccumRunFactor);
  Builder builder(n, max_runs);
  std::vector<IntervalRun> gathered;
  BitVector accum(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto [af, al] = RunsOf(r);
    if (af == al) continue;
    // Candidate-run count first (CSR offset subtraction, no run reads):
    // it picks the merge strategy before any gathering happens.
    std::size_t candidates = 0;
    for (auto it = af; it != al; ++it) {
      for (std::uint32_t v = it->begin; v < it->end; ++v) {
        auto [bf, bl] = b.RunsOf(v);
        candidates += static_cast<std::size_t>(bl - bf);
      }
    }
    if (candidates == 0) continue;
    bool ok = true;
    if (candidates > dense_threshold) {
      // Saturated row: OR every candidate run into a word-parallel
      // accumulator and re-extract maximal runs -- O(candidates + n/64)
      // instead of O(candidates log candidates).
      accum.Clear();
      for (auto it = af; it != al; ++it) {
        for (std::uint32_t v = it->begin; v < it->end; ++v) {
          auto [bf, bl] = b.RunsOf(v);
          for (auto jt = bf; jt != bl; ++jt) {
            accum.SetRange(jt->begin, jt->end);
          }
        }
      }
      ok = builder.AppendBits(static_cast<std::uint32_t>(r), accum);
    } else {
      gathered.clear();
      for (auto it = af; it != al; ++it) {
        for (std::uint32_t v = it->begin; v < it->end; ++v) {
          auto [bf, bl] = b.RunsOf(v);
          gathered.insert(gathered.end(), bf, bl);
        }
      }
      std::sort(gathered.begin(), gathered.end(),
                [](const IntervalRun& x, const IntervalRun& y) {
                  return x.begin < y.begin;
                });
      for (const IntervalRun& run : gathered) {
        if (!builder.Append(static_cast<std::uint32_t>(r), run.begin,
                            run.end)) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) break;  // budget overflow: Finish() reports it
  }
  return builder.Finish();
}

BitMatrix SparseBoolMatrix::MultiplyDense(const BitMatrix& b) const {
  assert(size() == b.size());
  BitMatrix out(size());
  for (std::size_t r = 0; r < size(); ++r) {
    auto [first, last] = RunsOf(r);
    for (auto it = first; it != last; ++it) {
      for (std::uint32_t v = it->begin; v < it->end; ++v) {
        out.OrRowFrom(r, b, v);
      }
    }
  }
  return out;
}

BitMatrix SparseBoolMatrix::MultiplyDenseLeft(const BitMatrix& a) const {
  assert(size() == a.size());
  BitMatrix out(size());
  for (std::size_t r = 0; r < size(); ++r) {
    a.ForEachInRow(r, [&](std::size_t v) {
      auto [first, last] = RunsOf(v);
      for (auto it = first; it != last; ++it) {
        out.SetRowRange(r, it->begin, it->end);
      }
    });
  }
  return out;
}

// ----------------------------------------------------------- elementwise

Result<SparseBoolMatrix> SparseBoolMatrix::Or(const SparseBoolMatrix& b,
                                              std::size_t max_runs) const {
  assert(size() == b.size());
  Builder builder(size(), max_runs);
  for (std::size_t r = 0; r < size(); ++r) {
    auto [xi, xe] = RunsOf(r);
    auto [yi, ye] = b.RunsOf(r);
    bool ok = true;
    // Two-pointer merge by begin; Builder::Append coalesces overlaps.
    while (xi != xe || yi != ye) {
      const IntervalRun& next =
          yi == ye || (xi != xe && xi->begin <= yi->begin) ? *xi++ : *yi++;
      if (!builder.Append(static_cast<std::uint32_t>(r), next.begin,
                          next.end)) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
  }
  return builder.Finish();
}

void SparseBoolMatrix::OrInto(BitMatrix& out) const {
  assert(out.size() == size());
  for (std::size_t r = 0; r < size(); ++r) {
    auto [first, last] = RunsOf(r);
    for (auto it = first; it != last; ++it) {
      out.SetRowRange(r, it->begin, it->end);
    }
  }
}

SparseBoolMatrix SparseBoolMatrix::Complement() const {
  const std::uint32_t n = static_cast<std::uint32_t>(size());
  Builder builder(n);  // bounded by num_runs() + n: no budget needed
  for (std::uint32_t r = 0; r < n; ++r) {
    auto [first, last] = RunsOf(r);
    std::uint32_t gap_begin = 0;
    for (auto it = first; it != last; ++it) {
      builder.Append(r, gap_begin, it->begin);
      gap_begin = it->end;
    }
    builder.Append(r, gap_begin, n);
  }
  return std::move(builder.Finish()).value();  // unbudgeted: cannot fail
}

SparseBoolMatrix SparseBoolMatrix::FilterDiagonal() const {
  const std::uint32_t n = static_cast<std::uint32_t>(size());
  Builder builder(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    auto [first, last] = RunsOf(r);
    if (first != last) builder.Append(r, r, r + 1);
  }
  return std::move(builder.Finish()).value();  // unbudgeted: cannot fail
}

}  // namespace xpv
