// Clang thread-safety-analysis attribute macros.
//
// These wrap the capability attributes described in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the lock
// contracts of every concurrent class in this codebase (the table in
// docs/ARCHITECTURE.md "Concurrency contracts") are *machine-checked*:
// the CI clang job compiles src/ with `-Wthread-safety -Werror`, turning
// a violated GUARDED_BY / REQUIRES / lock-order contract into a build
// failure instead of a code-review catch.
//
// On compilers without the attributes (GCC builds every local and
// default-CI configuration) each macro expands to nothing, so the
// annotations cost zero and the code stays portable --
// tests/thread_annotations_test.cc pins that no-op behavior.
//
// The analysis only understands capability-annotated lock types, and
// libstdc++'s std::mutex is not annotated; use the annotated wrappers in
// common/mutex.h (xpv::Mutex / MutexLock / CondVar) instead of raw
// std::mutex in any class that declares these contracts.
#ifndef XPV_COMMON_THREAD_ANNOTATIONS_H_
#define XPV_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(XPV_NO_THREAD_SAFETY_ANALYSIS)
#define XPV_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define XPV_THREAD_ANNOTATION_(x)  // no-op on GCC and MSVC
#endif

/// Marks a class as a capability (a lock type). The string names the
/// capability kind in diagnostics ("mutex").
#define XPV_CAPABILITY(x) XPV_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define XPV_SCOPED_CAPABILITY XPV_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define XPV_GUARDED_BY(x) XPV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex (the
/// pointer itself may be read freely).
#define XPV_PT_GUARDED_BY(x) XPV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them). The `*Locked` private-helper convention maps to this.
#define XPV_REQUIRES(...) \
  XPV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for functions that acquire them internally).
#define XPV_EXCLUDES(...) XPV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define XPV_ACQUIRE(...) \
  XPV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define XPV_RELEASE(...) \
  XPV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define XPV_TRY_ACQUIRE(...) \
  XPV_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Lock-ordering declaration: this mutex is always acquired before /
/// after the named ones. Checked by `-Wthread-safety-beta` (the order
/// analysis is not yet in stable clang); kept in the source anyway as
/// the machine-readable form of the documented global acquisition order.
#define XPV_ACQUIRED_BEFORE(...) \
  XPV_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define XPV_ACQUIRED_AFTER(...) \
  XPV_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Returns a reference to data guarded by the given mutex (the caller
/// must hold it to dereference safely).
#define XPV_RETURN_CAPABILITY(x) XPV_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Every use
/// must carry a comment explaining why the contract cannot be expressed
/// (e.g. condition-variable wait, which releases and reacquires
/// invisibly but restores the lock state before returning).
#define XPV_NO_THREAD_SAFETY_ANALYSIS \
  XPV_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // XPV_COMMON_THREAD_ANNOTATIONS_H_
