// Capability-annotated mutex / lock / condition-variable wrappers.
//
// Clang's thread-safety analysis (common/thread_annotations.h) can only
// check lock contracts written against lock types that carry the
// `capability` attribute. libstdc++'s std::mutex does not, so every
// class that declares GUARDED_BY / REQUIRES contracts uses these
// zero-overhead wrappers instead: inline forwarding over std::mutex /
// std::unique_lock / std::condition_variable, identical codegen, plus
// the attributes the analysis needs.
//
// Idioms:
//
//   class Cache {
//     mutable Mutex mu_;
//     std::map<K, V> entries_ XPV_GUARDED_BY(mu_);
//     void EvictLocked() XPV_REQUIRES(mu_);
//   };
//   ...
//   MutexLock lock(mu_);   // scoped, like std::lock_guard
//   entries_.clear();       // OK: analysis sees mu_ held
//
// For condition waits, CondVar::Wait takes the MutexLock itself. The
// wait releases and reacquires the mutex internally but restores the
// held state before returning, so modeling it as a no-op on the lock
// set is sound -- the analysis never sees an intermediate state that
// could mask a real violation.
#ifndef XPV_COMMON_MUTEX_H_
#define XPV_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace xpv {

/// Annotated std::mutex. Prefer MutexLock over manual Lock/Unlock.
class XPV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XPV_ACQUIRE() { mu_.lock(); }
  void Unlock() XPV_RELEASE() { mu_.unlock(); }
  bool TryLock() XPV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (std::lock_guard ergonomics), with explicit
/// Unlock()/Relock() for hand-over-hand patterns like the QueryService
/// dispatcher, and CondVar waits through the underlying unique_lock.
class XPV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XPV_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() XPV_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope end (the destructor then does
  /// nothing). The analysis tracks the managed capability through both.
  void Unlock() XPV_RELEASE() { lock_.unlock(); }
  /// Reacquires after Unlock().
  void Relock() XPV_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotated std::condition_variable. Wait() has no capability
/// annotation on purpose: it releases and reacquires `lock`'s mutex
/// internally but returns with the same lock set it was entered with,
/// so the surrounding function's analysis state stays correct. Callers
/// use explicit `while (!predicate) cv.Wait(lock);` loops -- predicate
/// lambdas would read guarded state in a scope the analysis cannot see
/// into.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Zero-size anchor for lock-order declarations between mutexes that
/// cannot name each other (per-shard mutexes living behind unique_ptrs,
/// for example). Declare one inline token per ordering level and tie
/// both sides to it:
///
///   inline LockOrderToken kShardLockOrder;
///   Mutex intern_mu_ XPV_ACQUIRED_BEFORE(kShardLockOrder);
///   struct Shard { Mutex mu XPV_ACQUIRED_AFTER(kShardLockOrder); };
///
/// The token is never locked; it only gives ACQUIRED_BEFORE/AFTER a
/// capability-typed expression both declarations can reach.
class XPV_CAPABILITY("lock_order") LockOrderToken {};

}  // namespace xpv

#endif  // XPV_COMMON_MUTEX_H_
