// Lightweight Status / Result<T> error handling in the style of
// absl::Status / arrow::Result. Used throughout the library for operations
// that can fail for reasons other than programmer error (parsing, fragment
// violations, malformed input). Programmer errors use assertions (XPV_DCHECK).
#ifndef XPV_COMMON_STATUS_H_
#define XPV_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace xpv {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (bad syntax, bad parameters)
  kFragmentViolation,  // expression outside the required language fragment
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kOverloaded,         // admission control rejected the work; retry later
  kDeadlineExceeded,   // the batch deadline passed before the job ran
  kCancelled,          // the batch was cancelled before the job ran
  kResourceExhausted,  // a hard memory bound was reached mid-operation
  kDataLoss,           // persistent data is corrupt or unreadable
};

/// Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A Status holds either "ok" or an error code plus message.
///
/// [[nodiscard]] at class level: every function returning a Status (or a
/// Result<T> below) is fallible by construction, and silently dropping
/// the return loses the only error signal -- the compiler flags every
/// ignored return without per-function annotations. Intentional discards
/// are spelled `(void)DoThing();` at the call site, which documents the
/// decision where it is made.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FragmentViolation(std::string msg) {
    return Status(StatusCode::kFragmentViolation, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result<T> holds either a value of type T or an error Status.
/// Accessing the value of an errored Result is a programmer error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirrors absl::StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xpv

/// Propagates an error Status from an expression returning Status.
#define XPV_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::xpv::Status _xpv_status = (expr);          \
    if (!_xpv_status.ok()) return _xpv_status;   \
  } while (0)

/// Evaluates an expression returning Result<T>; on success binds the value,
/// on error returns the Status.
#define XPV_ASSIGN_OR_RETURN(lhs, expr)           \
  auto XPV_CONCAT_(_xpv_result, __LINE__) = (expr);             \
  if (!XPV_CONCAT_(_xpv_result, __LINE__).ok())                 \
    return XPV_CONCAT_(_xpv_result, __LINE__).status();         \
  lhs = std::move(XPV_CONCAT_(_xpv_result, __LINE__)).value()

#define XPV_CONCAT_IMPL_(a, b) a##b
#define XPV_CONCAT_(a, b) XPV_CONCAT_IMPL_(a, b)

#endif  // XPV_COMMON_STATUS_H_
