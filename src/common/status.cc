#include "common/status.h"

namespace xpv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFragmentViolation:
      return "FRAGMENT_VIOLATION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xpv
