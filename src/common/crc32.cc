#include "common/crc32.h"

#include <cstring>

namespace xpv {

namespace {

// Reflected CRC-32C (Castagnoli) polynomial -- chosen over the IEEE
// 802.3 polynomial because x86's SSE4.2 crc32 instruction computes
// exactly this function, putting segment verification at memory
// bandwidth instead of table-lookup speed on the reload critical path.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slice-by-8 fallback: table[0] is the classic byte-at-a-time table;
// table[k] gives the contribution of a byte k positions further from
// the end of the stream, so eight bytes fold in with eight independent
// lookups per iteration instead of a serial chain of eight dependent
// ones. Computes the identical function to the hardware path, so
// segments written on one machine verify on any other.
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables.t[0][c & 0xFFu] ^ (c >> 8);
      tables.t[k][i] = c;
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

std::uint32_t UpdateSliceBy8(std::uint32_t c, const unsigned char* p,
                             std::size_t size) {
  while (size >= 8) {
    // Little-endian-safe: assemble the two words explicitly.
    const std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                             (static_cast<std::uint32_t>(p[1]) << 8) |
                             (static_cast<std::uint32_t>(p[2]) << 16) |
                             (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    c ^= lo;
    c = kTables.t[7][c & 0xFFu] ^ kTables.t[6][(c >> 8) & 0xFFu] ^
        kTables.t[5][(c >> 16) & 0xFFu] ^ kTables.t[4][c >> 24] ^
        kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
        kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    c = kTables.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define XPV_CRC32_HW 1

__attribute__((target("sse4.2"))) std::uint32_t UpdateHardware(
    std::uint32_t c, const unsigned char* p, std::size_t size) {
  std::uint64_t c64 = c;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // x86 is little-endian; no swap needed
    c64 = __builtin_ia32_crc32di(c64, word);
    p += 8;
    size -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (size-- > 0) {
    c = __builtin_ia32_crc32qi(c, *p++);
  }
  return c;
}

bool HardwareCrcAvailable() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif  // defined(__x86_64__) && defined(__GNUC__)

}  // namespace

std::uint32_t Crc32Update(std::uint32_t seed, const void* data,
                          std::size_t size) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
#ifdef XPV_CRC32_HW
  if (HardwareCrcAvailable()) {
    return UpdateHardware(c, p, size) ^ 0xFFFFFFFFu;
  }
#endif
  return UpdateSliceBy8(c, p, size) ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace xpv
