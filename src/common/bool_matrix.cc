#include "common/bool_matrix.h"

#include <algorithm>
#include <cassert>

namespace xpv {

namespace {

/// Index of the last set bit of `v`; callers guarantee v.Any().
std::size_t LastSet(const BitVector& v) {
  const auto& words = v.words();
  for (std::size_t w = words.size(); w-- > 0;) {
    if (words[w] != 0) {
      return w * 64 + 63 -
             static_cast<std::size_t>(__builtin_clzll(words[w]));
    }
  }
  assert(false && "LastSet on empty vector");
  return 0;
}

}  // namespace

BitVector BoolMatrix::Row(std::size_t row) const {
  BitVector out(size());
  RowInto(row, out);
  return out;
}

std::vector<BitVector> BoolMatrix::Rows(
    const std::vector<std::uint32_t>& rows) const {
  std::vector<BitVector> out;
  out.reserve(rows.size());
  for (std::uint32_t r : rows) {
    out.emplace_back(size());
    RowInto(r, out.back());
  }
  return out;
}

BitVector BoolMatrix::ImageOf(const BitVector& rows) const {
  assert(rows.size() == size());
  BitVector out(size());
  BitVector scratch;
  rows.ForEachSet([&](std::size_t r) {
    RowInto(r, scratch);
    out.OrWith(scratch);
  });
  return out;
}

BitVector BoolMatrix::AndOfRows(const BitVector& rows) const {
  assert(rows.size() == size());
  BitVector out(size());
  out.Fill();
  BitVector scratch;
  rows.ForEachSet([&](std::size_t r) {
    RowInto(r, scratch);
    out.AndWith(scratch);
  });
  return out;
}

BitVector BoolMatrix::RowsContaining(const BitVector& cols) const {
  assert(cols.size() == size());
  BitVector out(size());
  BitVector scratch;
  for (std::size_t r = 0; r < size(); ++r) {
    RowInto(r, scratch);
    scratch.Complement();
    scratch.AndWith(cols);
    if (scratch.None()) out.Set(r);
  }
  return out;
}

BitVector BoolMatrix::NonEmptyRows() const {
  BitVector out(size());
  BitVector scratch;
  for (std::size_t r = 0; r < size(); ++r) {
    RowInto(r, scratch);
    if (scratch.Any()) out.Set(r);
  }
  return out;
}

Result<BitMatrix> BoolMatrix::ToDense() const {
  if (const BitMatrix* dense = AsDense()) return *dense;
  XPV_ASSIGN_OR_RETURN(BitMatrix out, BitMatrix::Create(size()));
  BitVector scratch;
  for (std::size_t r = 0; r < size(); ++r) {
    RowInto(r, scratch);
    out.OrIntoRow(r, scratch);
  }
  return out;
}

void DenseBoolMatrix::RowInto(std::size_t row, BitVector& out) const {
  m_.CopyRowInto(row, out);
}

IntervalMatrix::IntervalMatrix(std::size_t n,
                               std::vector<std::uint32_t> row_offset,
                               std::vector<IntervalRun> runs)
    : n_(n), row_offset_(std::move(row_offset)), runs_(std::move(runs)) {
  assert(row_offset_.size() == n_ + 1);
  assert(row_offset_.back() == runs_.size());
}

bool IntervalMatrix::Get(std::size_t row, std::size_t col) const {
  auto [first, last] = RunsOf(row);
  // Last run starting at or before col.
  auto it = std::upper_bound(
      first, last, static_cast<std::uint32_t>(col),
      [](std::uint32_t c, const IntervalRun& run) { return c < run.begin; });
  return it != first && col < (it - 1)->end;
}

void IntervalMatrix::RowInto(std::size_t row, BitVector& out) const {
  if (out.size() != n_) {
    out = BitVector(n_);
  } else {
    out.Clear();
  }
  auto [first, last] = RunsOf(row);
  for (auto it = first; it != last; ++it) out.SetRange(it->begin, it->end);
}

BitVector IntervalMatrix::ImageOf(const BitVector& rows) const {
  assert(rows.size() == n_);
  BitVector out(n_);
  rows.ForEachSet([&](std::size_t r) {
    auto [first, last] = RunsOf(r);
    for (auto it = first; it != last; ++it) out.SetRange(it->begin, it->end);
  });
  return out;
}

BitVector IntervalMatrix::AndOfRows(const BitVector& rows) const {
  assert(rows.size() == n_);
  BitVector out(n_);
  out.Fill();
  // out &= row r  ==  clear `out` on the complement of row r's runs.
  rows.ForEachSet([&](std::size_t r) {
    auto [first, last] = RunsOf(r);
    std::size_t gap_begin = 0;
    for (auto it = first; it != last; ++it) {
      out.ClearRange(gap_begin, it->begin);
      gap_begin = it->end;
    }
    out.ClearRange(gap_begin, n_);
  });
  return out;
}

BitVector IntervalMatrix::RowsContaining(const BitVector& cols) const {
  assert(cols.size() == n_);
  BitVector out(n_);
  if (cols.None()) {
    out.Fill();
    return out;
  }
  // Row r contains cols iff no set bit of cols falls outside r's runs.
  // The span test against [first, last] rejects almost every row in O(1);
  // only rows whose runs straddle the whole span scan their gaps.
  const std::size_t first_col = cols.FirstSet();
  const std::size_t last_col = LastSet(cols);
  for (std::size_t r = 0; r < n_; ++r) {
    auto [first, last] = RunsOf(r);
    if (first == last || first->begin > first_col ||
        (last - 1)->end <= last_col) {
      continue;
    }
    bool contains = true;
    for (auto it = first; it + 1 != last; ++it) {
      const std::size_t gap_begin = std::max<std::size_t>(it->end, first_col);
      const std::size_t gap_end =
          std::min<std::size_t>((it + 1)->begin, last_col + 1);
      if (cols.AnyInRange(gap_begin, gap_end)) {
        contains = false;
        break;
      }
    }
    if (contains) out.Set(r);
  }
  return out;
}

BitVector IntervalMatrix::NonEmptyRows() const {
  BitVector out(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    if (row_offset_[r] < row_offset_[r + 1]) out.Set(r);
  }
  return out;
}

std::size_t IntervalMatrix::Count() const {
  std::size_t count = 0;
  for (const IntervalRun& run : runs_) count += run.end - run.begin;
  return count;
}

}  // namespace xpv
