// Monotonic wall-clock timer for examples and ad-hoc measurements.
// Benchmarks proper use google-benchmark; this is for printing timings in
// example programs and the experiment harnesses.
#ifndef XPV_COMMON_TIMER_H_
#define XPV_COMMON_TIMER_H_

#include <chrono>

namespace xpv {

/// Measures elapsed wall time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xpv

#endif  // XPV_COMMON_TIMER_H_
