// Bit-packed square Boolean matrix over the semiring ({0,1}, OR, AND).
//
// This is the workhorse of the PPLbin evaluation algorithm (Section 4 of the
// paper): a binary query over a tree t is represented as a |t| x |t| Boolean
// matrix M with M[u][u'] = 1 iff (u, u') is selected. The paper's operations
//
//     M_{P1/P2}        = M_{P1} . M_{P2}        (Boolean product)
//     M_{P1 union P2}  = M_{P1} + M_{P2}        (elementwise OR)
//     M_{except P}     = not M_P                (elementwise complement)
//     M_{[P]}          = [M_P]                  (diagonal of nonempty rows)
//
// are all provided here. Rows are packed 64 bits per word, so the naive
// cubic product runs in |t|^3 / 64 word operations -- the practical analogue
// of the paper's remark that fast Boolean matrix multiplication
// (Coppersmith-Winograd) improves the exponent below 3.
#ifndef XPV_COMMON_BIT_MATRIX_H_
#define XPV_COMMON_BIT_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xpv {

/// Bit-packed vector of booleans of fixed size; one row of a BitMatrix,
/// also used standalone for node sets.
class BitVector {
 public:
  BitVector() : size_(0) {}
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool Get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void Reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void Assign(std::size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Sets all bits to 0.
  void Clear();
  /// Sets all bits in [0, size) to 1.
  void Fill();
  /// Sets all bits in [begin, end) to 1, whole words at a time.
  void SetRange(std::size_t begin, std::size_t end);
  /// Sets all bits in [begin, end) to 0, whole words at a time.
  void ClearRange(std::size_t begin, std::size_t end);
  /// True iff any bit in [begin, end) is set, whole words at a time.
  bool AnyInRange(std::size_t begin, std::size_t end) const;

  /// Elementwise operations; both operands must have equal size.
  void OrWith(const BitVector& other);
  void AndWith(const BitVector& other);
  void AndNotWith(const BitVector& other);  // this &= ~other
  /// Complements every bit (within [0, size)).
  void Complement();

  /// True iff no bit is set.
  bool None() const;
  /// True iff any bit is set.
  bool Any() const { return !None(); }
  /// Number of set bits.
  std::size_t Count() const;

  /// Index of the first set bit, or size() when none.
  std::size_t FirstSet() const;
  /// Index of the first set bit at position >= from, or size() when none.
  std::size_t NextSet(std::size_t from) const;
  /// Index of the first UNSET bit at position >= from, or size() when
  /// none. With NextSet this walks maximal runs of set bits word-at-a-time
  /// (the run-extraction loop of common/sparse_matrix.h).
  std::size_t NextUnset(std::size_t from) const;

  /// Invokes fn(i) for every set bit index i in increasing order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Collects set bit indices into a vector.
  std::vector<std::uint32_t> ToIndices() const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& mutable_words() { return words_; }

 private:
  /// Zeroes bits at positions >= size_ in the last word so that whole-word
  /// operations (complement, equality, counting) stay canonical.
  void ClearPadding();

  std::size_t size_;
  std::vector<std::uint64_t> words_;
};

/// Square Boolean matrix with bit-packed rows.
class BitMatrix {
 public:
  /// Hard ceiling on the dimension of a dense |t| x |t| materialization.
  /// An n x n BitMatrix costs n^2 bits -- 128 MiB at this limit, but a
  /// silent ~125 GB allocation at n = 1M. Construction beyond the limit
  /// must go through Create(), which refuses with kResourceExhausted;
  /// the planner uses the same constant to refuse plans that would
  /// materialize a dense relation on oversized trees (engine/planner.h).
  static constexpr std::size_t kMaxDenseNodes = std::size_t{1} << 15;

  BitMatrix() : n_(0), words_per_row_(0) {}
  explicit BitMatrix(std::size_t n)
      : n_(n), words_per_row_((n + 63) / 64), words_(n * words_per_row_, 0) {}

  /// Fallible construction: refuses dimensions beyond kMaxDenseNodes with
  /// kResourceExhausted instead of attempting the O(n^2)-bit allocation.
  /// Entry points whose dimension is data-dependent (axis caches, engine
  /// boundaries) use this; fixed-small-n internal call sites may still
  /// construct directly.
  static Result<BitMatrix> Create(std::size_t n);

  /// Identity relation {(v, v)}.
  static BitMatrix Identity(std::size_t n);
  /// Full relation nodes x nodes.
  static BitMatrix Full(std::size_t n);

  std::size_t size() const { return n_; }
  /// Heap bytes held by the bit-packed payload (n * ceil(n/64) words).
  std::size_t resident_bytes() const {
    return words_.size() * sizeof(std::uint64_t);
  }

  bool Get(std::size_t row, std::size_t col) const {
    return (words_[row * words_per_row_ + (col >> 6)] >> (col & 63)) & 1u;
  }
  void Set(std::size_t row, std::size_t col) {
    words_[row * words_per_row_ + (col >> 6)] |=
        (std::uint64_t{1} << (col & 63));
  }
  void Reset(std::size_t row, std::size_t col) {
    words_[row * words_per_row_ + (col >> 6)] &=
        ~(std::uint64_t{1} << (col & 63));
  }

  /// Boolean matrix product: this . other. Runs in O(n^3 / 64) word ops by
  /// OR-ing whole rows of `other` for each set bit of a row of `this`.
  BitMatrix Multiply(const BitMatrix& other) const;
  /// Naive O(n^3) bit-at-a-time product; reference implementation used in
  /// tests and in the matrix-multiplication ablation benchmark.
  BitMatrix MultiplyNaive(const BitMatrix& other) const;

  /// Elementwise OR / AND / AND-NOT.
  BitMatrix Or(const BitMatrix& other) const;
  BitMatrix And(const BitMatrix& other) const;
  BitMatrix AndNot(const BitMatrix& other) const;
  /// Elementwise complement (the paper's `except P`).
  BitMatrix Complement() const;
  /// The paper's [M]: diagonal matrix with [M][u][u] = 1 iff row u of M is
  /// nonempty (used for filter expressions P[T]).
  BitMatrix FilterDiagonal() const;
  /// Transpose (inverse relation).
  BitMatrix Transpose() const;

  /// Restricts to rows whose index is in `rows` (other rows zeroed).
  BitMatrix SelectRows(const BitVector& rows) const;
  /// Clears every cell whose column is not in `cols` (name-test masking).
  BitMatrix MaskColumns(const BitVector& cols) const;
  /// In-place variant of MaskColumns (no whole-matrix copy).
  void MaskColumnsInPlace(const BitVector& cols);

  /// OR of all rows: set of columns reachable from any row.
  BitVector ColumnUnion() const;
  /// Set of rows with at least one set bit (the domain of the relation).
  BitVector NonEmptyRows() const;
  /// image(N) = { u' | exists u in N, M[u][u'] }.
  BitVector ImageOf(const BitVector& rows) const;
  /// AND of the rows selected by `rows` (all-ones for an empty selection,
  /// the AND identity). Complementing the result gives the image of a
  /// node set under the complemented relation without materializing it:
  /// image(not M, N)[v] = OR_{u in N} not M[u][v] = not AndOfRows(N)[v].
  BitVector AndOfRows(const BitVector& rows) const;
  /// Rows whose row set contains every column of `cols` (all rows for an
  /// empty `cols`). Complementing the result gives the preimage of a node
  /// set under the complemented relation: u has some v in cols with
  /// not M[u][v] iff row u does not contain cols.
  BitVector RowsContaining(const BitVector& cols) const;

  /// Number of set cells.
  std::size_t Count() const;
  /// True iff no cell is set.
  bool None() const;

  /// Row `row` as a BitVector copy.
  BitVector Row(std::size_t row) const;
  /// Copies row `row` into `out`, resizing it to size() if needed (no
  /// temporary allocation when `out` already has the right size).
  void CopyRowInto(std::size_t row, BitVector& out) const;
  /// ORs `v` into row `row`.
  void OrIntoRow(std::size_t row, const BitVector& v);
  /// ORs row `src` into row `dst` in place (no temporary row copy).
  void OrRowIntoRow(std::size_t dst, std::size_t src);
  /// ORs row `src_row` of `src` into row `dst` of this matrix,
  /// word-parallel with no temporary copy (cross-matrix row accumulation:
  /// the sparse x dense product kernel). Both matrices must be same-size.
  void OrRowFrom(std::size_t dst, const BitMatrix& src, std::size_t src_row);
  /// Sets all cells (row, c) for c in [begin, end), whole words at a time.
  void SetRowRange(std::size_t row, std::size_t begin, std::size_t end);
  /// Invokes fn(col) for every set bit of `row`.
  template <typename Fn>
  void ForEachInRow(std::size_t row, Fn&& fn) const {
    const std::uint64_t* base = &words_[row * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = base[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const BitMatrix& other) const {
    return n_ == other.n_ && words_ == other.words_;
  }

  /// Multi-line 0/1 dump for debugging and test failure messages.
  std::string ToString() const;

 private:
  void ClearRowPadding(std::size_t row);

  std::size_t n_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> words_;
};

}  // namespace xpv

#endif  // XPV_COMMON_BIT_MATRIX_H_
