// Cooperative cancellation for long-running single operations.
//
// The admission-controlled serving layer (engine/query_service.h) checks
// deadlines and cancellation *between* jobs; that leaves a single
// long-running job -- an n-ary evaluation, an answer enumeration -- free
// to run to completion after its batch was cancelled or its deadline
// passed. A CancelToken threads the batch's cancel flag and deadline into
// the inner loops of such operations, so they can stop at the next
// check point and report kCancelled / kDeadlineExceeded instead.
//
// A token is a cheap value: it observes (never owns) an atomic cancel
// flag, and carries an optional deadline. Check() is amortized -- the
// flag is read every call, the clock only every kClockStride calls --
// so it is safe to call once per produced tuple or per visited node.
// Once a token has fired its status is sticky: every later Check()
// returns the same error, so an unwinding recursion cannot "un-cancel".
//
// Thread safety: the observed flag may be set from any thread at any
// time. One CancelToken *instance* is meant to be used from one thread
// (its amortization counter is unsynchronized); hand each worker its own
// copy of the token instead of sharing one instance.
#ifndef XPV_COMMON_CANCEL_H_
#define XPV_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "common/status.h"

namespace xpv {

class CancelToken {
 public:
  /// Clock reads are amortized over this many Check() calls.
  static constexpr std::uint32_t kClockStride = 256;

  /// A token that never fires.
  CancelToken() = default;

  /// Observes `cancel_flag` (may be null: never cancelled) and `deadline`
  /// (nullopt: none). The flag must outlive every copy of the token.
  explicit CancelToken(
      const std::atomic<bool>* cancel_flag,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt)
      : cancel_flag_(cancel_flag), deadline_(deadline) {}

  /// True when the token can ever fire; false tokens make Check() a
  /// single predictable branch.
  bool active() const {
    return cancel_flag_ != nullptr || deadline_.has_value();
  }

  /// OK while the operation may continue; Cancelled once the flag is
  /// observed set; DeadlineExceeded once the deadline is observed past.
  /// Sticky: after the first non-OK result the same status is returned
  /// forever (without re-reading flag or clock).
  Status Check() {
    if (fired_ != StatusCode::kOk) return Fired();
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      fired_ = StatusCode::kCancelled;
      return Fired();
    }
    if (deadline_.has_value() && ++calls_ % kClockStride == 1 &&
        std::chrono::steady_clock::now() > *deadline_) {
      fired_ = StatusCode::kDeadlineExceeded;
      return Fired();
    }
    return Status::OK();
  }

  /// Non-amortized variant: also reads the clock unconditionally. Use at
  /// phase boundaries (e.g. once per preprocessing pass), where a stale
  /// deadline check would delay cancellation by a whole phase.
  Status CheckNow() {
    if (fired_ != StatusCode::kOk) return Fired();
    calls_ = 0;  // restart the stride so Check() follows a fresh read
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      fired_ = StatusCode::kCancelled;
    } else if (deadline_.has_value() &&
               std::chrono::steady_clock::now() > *deadline_) {
      fired_ = StatusCode::kDeadlineExceeded;
    } else {
      return Status::OK();
    }
    return Fired();
  }

 private:
  Status Fired() const {
    return fired_ == StatusCode::kCancelled
               ? Status::Cancelled("operation cancelled mid-run")
               : Status::DeadlineExceeded("deadline passed mid-run");
  }

  const std::atomic<bool>* cancel_flag_ = nullptr;  // observed, not owned
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::uint32_t calls_ = 0;
  StatusCode fired_ = StatusCode::kOk;
};

}  // namespace xpv

#endif  // XPV_COMMON_CANCEL_H_
