#include "hcl/answer.h"

#include <algorithm>
#include <cassert>

namespace xpv::hcl {

QueryAnswerer::QueryAnswerer(const Tree& t, const HclExpr& c,
                             std::vector<std::string> tuple_vars,
                             AnswerOptions options,
                             std::shared_ptr<AxisCache> axis_cache)
    : tree_(t),
      expr_(c),
      tuple_vars_(std::move(tuple_vars)),
      options_(options),
      axis_cache_(std::move(axis_cache)) {
  for (const auto& v : tuple_vars_) {
    if (!var_index_.contains(v)) {
      var_index_[v] = static_cast<int>(query_vars_.size());
      query_vars_.push_back(v);
    }
  }
}

Status QueryAnswerer::Prepare() {
  XPV_RETURN_IF_ERROR(CheckNoSharedComposition(expr_));
  form_ = SharingForm::FromHcl(expr_);

  // Precompile all binary queries into successor lists, sharing one
  // per-tree axis cache across every leaf of the composition (and with
  // the caller, e.g. other batch jobs on this tree, when one was given).
  if (axis_cache_ == nullptr) axis_cache_ = std::make_shared<AxisCache>(tree_);
  for (const BinaryQueryPtr& b : form_->binary_queries()) {
    XPV_RETURN_IF_ERROR(options_.cancel.CheckNow());
    XPV_ASSIGN_OR_RETURN(BitMatrix relation, b->EvaluateCached(axis_cache_));
    std::vector<std::vector<NodeId>> adj(tree_.size());
    for (NodeId u = 0; u < tree_.size(); ++u) {
      relation.ForEachInRow(u, [&](std::size_t v) {
        adj[u].push_back(static_cast<NodeId>(v));
      });
    }
    successors_.emplace(b.get(), std::move(adj));
  }

  // MC table, computed for every (subformula, node) pair -- the dynamic
  // program of Proposition 10. Memoized recursion; the table is total so
  // Vals() can consult any entry. Skipped entirely under the E11
  // no-filter ablation.
  if (options_.use_mc_filter) {
    mc_.assign(form_->num_subformulas() * tree_.size(), -1);
    for (std::size_t id = 0; id < form_->num_subformulas(); ++id) {
      for (NodeId u = 0; u < tree_.size(); ++u) {
        XPV_RETURN_IF_ERROR(options_.cancel.Check());
        ComputeMc(form_->Subformula(static_cast<int>(id)), u);
      }
    }
  } else {
    mc_.assign(form_->num_subformulas() * tree_.size(), 1);
  }

  vals_memo_.assign(form_->num_subformulas() * tree_.size(), std::nullopt);
  prepared_ = true;
  return Status::OK();
}

bool QueryAnswerer::ComputeMc(const SharingExpr& d, NodeId u) {
  signed char& cell = mc_[static_cast<std::size_t>(d.id) * tree_.size() + u];
  if (cell != -1) return cell == 1;
  bool value = false;
  switch (d.kind) {
    case SharingKind::kSelf:
      // MC(self, u) = 1.
      value = true;
      break;
    case SharingKind::kParam:
      // MC(p, u) = MC(Delta(p), u).
      value = ComputeMc(form_->Def(d.param), u);
      break;
    case SharingKind::kUnion:
      // MC(D u D', u) = MC(D, u) or MC(D', u).
      value = ComputeMc(*d.left, u) || ComputeMc(*d.right, u);
      break;
    case SharingKind::kCompose: {
      const PrefixExpr& e = *d.prefix;
      switch (e.kind) {
        case PrefixKind::kBinary: {
          // MC(b/D, u) = OR over (u,u') in q_b(t) of MC(D, u').
          const auto& adj = successors_.at(e.binary.get());
          for (NodeId v : adj[u]) {
            value = ComputeMc(*d.left, v) || value;
          }
          break;
        }
        case PrefixKind::kVar:
          // MC(x/D, u) = MC(D, u): by NVS(/), x does not occur in D, so x
          // can always be bound to u independently.
          value = ComputeMc(*d.left, u);
          break;
        case PrefixKind::kFilter:
          // MC([D]/D', u) = MC(D, u) and MC(D', u): by NVS(/) the two
          // sides are variable-disjoint, hence independently satisfiable.
          value = ComputeMc(*e.filter_body, u) && ComputeMc(*d.left, u);
          break;
      }
      break;
    }
  }
  cell = value ? 1 : 0;
  return value;
}

std::vector<int> QueryAnswerer::VarIndicesOf(int subformula_id) const {
  std::vector<int> out;
  for (const std::string& v : form_->VarsOf(subformula_id)) {
    auto it = var_index_.find(v);
    if (it != var_index_.end()) out.push_back(it->second);
  }
  return out;
}

ValuationSet QueryAnswerer::Extend(
    const ValuationSet& in, const std::vector<int>& target_positions) const {
  ValuationSet out;
  const std::size_t n = tree_.size();
  for (const PartialValuation& base : in) {
    std::vector<int> missing;
    for (int pos : target_positions) {
      if (base[pos] == kNoNode) missing.push_back(pos);
    }
    if (missing.empty()) {
      out.insert(base);
      continue;
    }
    PartialValuation tuple = base;
    std::vector<NodeId> counters(missing.size(), 0);
    while (true) {
      for (std::size_t i = 0; i < missing.size(); ++i) {
        tuple[missing[i]] = counters[i];
      }
      out.insert(tuple);
      std::size_t i = 0;
      for (; i < counters.size(); ++i) {
        if (++counters[i] < n) break;
        counters[i] = 0;
      }
      if (i == counters.size()) break;
    }
  }
  return out;
}

ValuationSet QueryAnswerer::Vals(const SharingExpr& d, NodeId u) {
  // Cooperative cancellation: once the token fires, the whole recursion
  // unwinds fast through empty sets (checked first, so an interrupted
  // run does no further work) and nothing more is memoized -- a partial
  // ValuationSet in the memo would corrupt later reuse.
  if (!interrupted_.ok()) return {};
  if (Status live = options_.cancel.Check(); !live.ok()) {
    interrupted_ = live;
    return {};
  }
  // Fig. 8 line 3: filter unsatisfiable cases through the MC table.
  // (Under the no-filter ablation the table is all-ones, so every branch
  // is explored and dead valuations are discarded only at merge points.)
  if (!Mc(d.id, u)) return {};
  if (!options_.memoize_vals) return ValsCompute(d, u);
  std::optional<ValuationSet>& memo =
      vals_memo_[static_cast<std::size_t>(d.id) * tree_.size() + u];
  if (memo.has_value()) return *memo;
  ValuationSet out = ValsCompute(d, u);
  if (!interrupted_.ok()) return {};
  // Note: vals_memo_ never reallocates (sized in Prepare), so taking the
  // reference before the recursive ValsCompute would also be safe; assign
  // after to keep the invariant simple.
  vals_memo_[static_cast<std::size_t>(d.id) * tree_.size() + u] = out;
  return out;
}

ValuationSet QueryAnswerer::ValsCompute(const SharingExpr& d, NodeId u) {
  ValuationSet out;
  const PartialValuation empty_valuation(query_vars_.size(), kNoNode);
  switch (d.kind) {
    case SharingKind::kSelf:
      // vals(self, u) = { epsilon }.
      out.insert(empty_valuation);
      break;
    case SharingKind::kParam:
      out = Vals(form_->Def(d.param), u);
      break;
    case SharingKind::kUnion: {
      // Both branches are extended to be total on Var((D u D')_Delta)
      // intersected with the query variables, then unioned; this
      // deduplicates valuations that differ only on variables free in the
      // other branch.
      const std::vector<int> target = VarIndicesOf(d.id);
      ValuationSet l = Extend(Vals(*d.left, u), target);
      ValuationSet r = Extend(Vals(*d.right, u), target);
      out = std::move(l);
      out.insert(r.begin(), r.end());
      break;
    }
    case SharingKind::kCompose: {
      const PrefixExpr& e = *d.prefix;
      switch (e.kind) {
        case PrefixKind::kBinary: {
          // vals(b/D', u) = union over successors u' of vals(D', u').
          const auto& adj = successors_.at(e.binary.get());
          for (NodeId v : adj[u]) {
            const ValuationSet& sub = Vals(*d.left, v);
            out.insert(sub.begin(), sub.end());
          }
          break;
        }
        case PrefixKind::kVar: {
          auto it = var_index_.find(e.var);
          if (it != var_index_.end()) {
            // x in x: bind x to u in every valuation of the continuation.
            for (PartialValuation val : Vals(*d.left, u)) {
              assert(val[it->second] == kNoNode &&
                     "NVS(/) guarantees x is unset in the continuation");
              val[it->second] = u;
              out.insert(std::move(val));
            }
          } else {
            // x projected away: vals(D', u) unchanged.
            out = Vals(*d.left, u);
          }
          break;
        }
        case PrefixKind::kFilter: {
          // vals([D']/D'', u) = pairwise disjoint unions alpha' . alpha''.
          const ValuationSet& filter_vals = Vals(*e.filter_body, u);
          const ValuationSet& rest_vals = Vals(*d.left, u);
          for (const PartialValuation& a : filter_vals) {
            for (const PartialValuation& b : rest_vals) {
              PartialValuation merged = a;
              for (std::size_t i = 0; i < merged.size(); ++i) {
                if (b[i] != kNoNode) {
                  assert(merged[i] == kNoNode &&
                         "NVS(/) guarantees disjoint valuation domains");
                  merged[i] = b[i];
                }
              }
              out.insert(std::move(merged));
            }
          }
          break;
        }
      }
      break;
    }
  }
  return out;
}

Result<xpath::TupleSet> QueryAnswerer::Answer() {
  assert(prepared_ && "call Prepare() first");
  XPV_RETURN_IF_ERROR(interrupted_);
  // partial_vals = union over u of vals(D, u).
  ValuationSet partial_vals;
  for (NodeId u = 0; u < tree_.size(); ++u) {
    const ValuationSet& at_u = Vals(form_->root(), u);
    XPV_RETURN_IF_ERROR(interrupted_);
    partial_vals.insert(at_u.begin(), at_u.end());
  }
  // valuations = extend_{t,x}(partial_vals).
  std::vector<int> all_positions(query_vars_.size());
  for (std::size_t i = 0; i < all_positions.size(); ++i) {
    all_positions[i] = static_cast<int>(i);
  }
  ValuationSet valuations = Extend(partial_vals, all_positions);
  // return { alpha(x) | alpha in valuations }.
  xpath::TupleSet answers;
  for (const PartialValuation& val : valuations) {
    xpath::NodeTuple tuple(tuple_vars_.size());
    for (std::size_t i = 0; i < tuple_vars_.size(); ++i) {
      tuple[i] = val[var_index_.at(tuple_vars_[i])];
    }
    answers.insert(std::move(tuple));
  }
  return answers;
}

Result<xpath::TupleSet> AnswerQuery(
    const Tree& t, const HclExpr& c,
    const std::vector<std::string>& tuple_vars) {
  QueryAnswerer answerer(t, c, tuple_vars);
  XPV_RETURN_IF_ERROR(answerer.Prepare());
  return answerer.Answer();
}

}  // namespace xpv::hcl
