#include "hcl/sharing.h"

#include <cassert>
#include <functional>
#include <map>

namespace xpv::hcl {

namespace {

SharingPtr MakeSelf() {
  auto d = std::make_unique<SharingExpr>();
  d->kind = SharingKind::kSelf;
  return d;
}

SharingPtr MakeParam(int p) {
  auto d = std::make_unique<SharingExpr>();
  d->kind = SharingKind::kParam;
  d->param = p;
  return d;
}

SharingPtr MakeUnion(SharingPtr l, SharingPtr r) {
  auto d = std::make_unique<SharingExpr>();
  d->kind = SharingKind::kUnion;
  d->left = std::move(l);
  d->right = std::move(r);
  return d;
}

SharingPtr MakeCompose(std::unique_ptr<PrefixExpr> e, SharingPtr rest) {
  auto d = std::make_unique<SharingExpr>();
  d->kind = SharingKind::kCompose;
  d->prefix = std::move(e);
  d->left = std::move(rest);
  return d;
}

std::unique_ptr<PrefixExpr> MakeVarPrefix(std::string var) {
  auto e = std::make_unique<PrefixExpr>();
  e->kind = PrefixKind::kVar;
  e->var = std::move(var);
  return e;
}

std::unique_ptr<PrefixExpr> MakeBinaryPrefix(BinaryQueryPtr b) {
  auto e = std::make_unique<PrefixExpr>();
  e->kind = PrefixKind::kBinary;
  e->binary = std::move(b);
  return e;
}

std::unique_ptr<PrefixExpr> MakeFilterPrefix(SharingPtr body) {
  auto e = std::make_unique<PrefixExpr>();
  e->kind = PrefixKind::kFilter;
  e->filter_body = std::move(body);
  return e;
}

/// The Lemma 3 conversion. `defs` accumulates the equation system.
class Converter {
 public:
  explicit Converter(std::vector<SharingPtr>* defs) : defs_(defs) {}

  // toD(C): the sharing formula for C followed by `self`.
  SharingPtr ToD(const HclExpr& c) {
    switch (c.kind) {
      case HclKind::kBinary:
        return MakeCompose(MakeBinaryPrefix(c.binary), MakeSelf());
      case HclKind::kVar:
        return MakeCompose(MakeVarPrefix(c.var), MakeSelf());
      case HclKind::kFilter:
        return MakeCompose(MakeFilterPrefix(ToD(*c.left)), MakeSelf());
      case HclKind::kUnion:
        return MakeUnion(ToD(*c.left), ToD(*c.right));
      case HclKind::kCompose:
        return Prepend(*c.left, ToD(*c.right));
    }
    return nullptr;
  }

 private:
  // Prepend(C1, D) computes a sharing formula for C1/D_Delta. When C1 is a
  // union, D is shared through a fresh parameter (the Lemma 3 rewrite
  // (C1 u C2)/C => C1/p u C2/p with Delta(p) = C).
  SharingPtr Prepend(const HclExpr& c1, SharingPtr d) {
    switch (c1.kind) {
      case HclKind::kBinary:
        return MakeCompose(MakeBinaryPrefix(c1.binary), std::move(d));
      case HclKind::kVar:
        return MakeCompose(MakeVarPrefix(c1.var), std::move(d));
      case HclKind::kFilter:
        return MakeCompose(MakeFilterPrefix(ToD(*c1.left)), std::move(d));
      case HclKind::kCompose:
        return Prepend(*c1.left, Prepend(*c1.right, std::move(d)));
      case HclKind::kUnion: {
        // Avoid a fresh parameter when D is already a trivial reference.
        if (d->kind == SharingKind::kParam || d->kind == SharingKind::kSelf) {
          SharingPtr copy;
          if (d->kind == SharingKind::kParam) {
            copy = MakeParam(d->param);
          } else {
            copy = MakeSelf();
          }
          return MakeUnion(Prepend(*c1.left, std::move(copy)),
                           Prepend(*c1.right, std::move(d)));
        }
        const int p = static_cast<int>(defs_->size());
        defs_->push_back(std::move(d));
        return MakeUnion(Prepend(*c1.left, MakeParam(p)),
                         Prepend(*c1.right, MakeParam(p)));
      }
    }
    return nullptr;
  }

  std::vector<SharingPtr>* defs_;
};

void PrintD(const SharingExpr& d, std::string* out);

void PrintE(const PrefixExpr& e, std::string* out) {
  switch (e.kind) {
    case PrefixKind::kVar:
      *out += e.var;
      return;
    case PrefixKind::kBinary: {
      std::string b = e.binary->ToString();
      if (b.find(' ') != std::string::npos ||
          b.find('/') != std::string::npos) {
        *out += '{';
        *out += b;
        *out += '}';
      } else {
        *out += b;
      }
      return;
    }
    case PrefixKind::kFilter:
      *out += '[';
      PrintD(*e.filter_body, out);
      *out += ']';
      return;
  }
}

void PrintD(const SharingExpr& d, std::string* out) {
  switch (d.kind) {
    case SharingKind::kSelf:
      *out += "self";
      return;
    case SharingKind::kParam:
      *out += 'p';
      *out += std::to_string(d.param);
      return;
    case SharingKind::kUnion:
      if (d.left->kind == SharingKind::kUnion) {
        *out += '(';
        PrintD(*d.left, out);
        *out += ')';
      } else {
        PrintD(*d.left, out);
      }
      *out += " u ";
      if (d.right->kind == SharingKind::kUnion) {
        *out += '(';
        PrintD(*d.right, out);
        *out += ')';
      } else {
        PrintD(*d.right, out);
      }
      return;
    case SharingKind::kCompose:
      PrintE(*d.prefix, out);
      *out += '/';
      if (d.left->kind == SharingKind::kUnion) {
        *out += '(';
        PrintD(*d.left, out);
        *out += ')';
      } else {
        PrintD(*d.left, out);
      }
      return;
  }
}

}  // namespace

std::string SharingExpr::ToString() const {
  std::string out;
  PrintD(*this, &out);
  return out;
}

std::size_t SharingExpr::Size() const {
  std::size_t size = 1;
  if (prefix != nullptr && prefix->filter_body != nullptr) {
    size += prefix->filter_body->Size();
  }
  if (left) size += left->Size();
  if (right) size += right->Size();
  return size;
}

SharingForm SharingForm::FromHcl(const HclExpr& c) {
  SharingForm form;
  Converter converter(&form.defs_);
  form.root_ = converter.ToD(c);
  form.Index();
  return form;
}

std::size_t SharingForm::TotalSize() const {
  std::size_t size = root_->Size();
  for (const auto& def : defs_) size += def->Size();
  return size;
}

void SharingForm::Index() {
  subformulas_.clear();
  binaries_.clear();
  std::map<const BinaryQuery*, bool> seen_binaries;

  std::function<void(SharingExpr&)> walk = [&](SharingExpr& d) {
    d.id = static_cast<int>(subformulas_.size());
    subformulas_.push_back(&d);
    if (d.kind == SharingKind::kCompose) {
      PrefixExpr& e = *d.prefix;
      if (e.kind == PrefixKind::kFilter) {
        walk(*e.filter_body);
      } else if (e.kind == PrefixKind::kBinary) {
        if (!seen_binaries[e.binary.get()]) {
          seen_binaries[e.binary.get()] = true;
          binaries_.push_back(e.binary);
        }
      }
      walk(*d.left);
    } else if (d.kind == SharingKind::kUnion) {
      walk(*d.left);
      walk(*d.right);
    }
  };
  walk(*root_);
  for (auto& def : defs_) walk(*def);

  // Free variables of each subformula's expansion, parameters followed.
  // Definitions precede uses acyclically, so a fixpoint in reverse
  // indexing order is unnecessary: compute with memoization instead.
  vars_.assign(subformulas_.size(), {});
  std::vector<char> done(subformulas_.size(), 0);
  std::function<const std::set<std::string>&(const SharingExpr&)> vars_of =
      [&](const SharingExpr& d) -> const std::set<std::string>& {
    if (done[d.id]) return vars_[d.id];
    done[d.id] = 1;
    std::set<std::string>& out = vars_[d.id];
    switch (d.kind) {
      case SharingKind::kSelf:
        break;
      case SharingKind::kParam:
        out = vars_of(*defs_[d.param]);
        break;
      case SharingKind::kUnion: {
        out = vars_of(*d.left);
        const auto& rv = vars_of(*d.right);
        out.insert(rv.begin(), rv.end());
        break;
      }
      case SharingKind::kCompose: {
        const PrefixExpr& e = *d.prefix;
        if (e.kind == PrefixKind::kVar) {
          out.insert(e.var);
        } else if (e.kind == PrefixKind::kFilter) {
          const auto& fv = vars_of(*e.filter_body);
          out.insert(fv.begin(), fv.end());
        }
        const auto& rv = vars_of(*d.left);
        out.insert(rv.begin(), rv.end());
        break;
      }
    }
    return out;
  };
  for (const SharingExpr* d : subformulas_) vars_of(*d);
}

HclPtr SharingForm::ExpandExpr(const SharingExpr& d) const {
  switch (d.kind) {
    case SharingKind::kSelf:
      return HclExpr::Binary(MakeAxisQuery(Axis::kSelf));
    case SharingKind::kParam:
      return ExpandExpr(*defs_[d.param]);
    case SharingKind::kUnion:
      return HclExpr::Union(ExpandExpr(*d.left), ExpandExpr(*d.right));
    case SharingKind::kCompose: {
      HclPtr prefix;
      switch (d.prefix->kind) {
        case PrefixKind::kVar:
          prefix = HclExpr::Var(d.prefix->var);
          break;
        case PrefixKind::kBinary:
          prefix = HclExpr::Binary(d.prefix->binary);
          break;
        case PrefixKind::kFilter:
          prefix = HclExpr::Filter(ExpandExpr(*d.prefix->filter_body));
          break;
      }
      return HclExpr::Compose(std::move(prefix), ExpandExpr(*d.left));
    }
  }
  return nullptr;
}

HclPtr SharingForm::Expand() const { return ExpandExpr(*root_); }

std::string SharingForm::ToString() const {
  std::string out = root_->ToString();
  for (std::size_t p = 0; p < defs_.size(); ++p) {
    out += "\n  p" + std::to_string(p) + " -> " + defs_[p]->ToString();
  }
  return out;
}

}  // namespace xpv::hcl
