// Parser for the HCL(L) surface syntax as printed by HclExpr::ToString,
// instantiated with L = PPLbin:
//
//   C := b | C/C' | x | [C] | C u C' | (C)
//
// where a binary-query leaf b is either a single step (child::a,
// descendant::*, nodes) or an arbitrary PPLbin expression in braces
// ({except child::a/[child::b]}). Variables are bare names without '::'.
//
// Round-trips with HclExpr::ToString for expressions whose leaves are
// PplBinQuery / AxisQuery / FullRelationQuery.
#ifndef XPV_HCL_PARSER_H_
#define XPV_HCL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "hcl/ast.h"

namespace xpv::hcl {

/// Parses an HCL(PPLbin) expression.
Result<HclPtr> ParseHcl(std::string_view text);

}  // namespace xpv::hcl

#endif  // XPV_HCL_PARSER_H_
