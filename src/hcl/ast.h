// The hybrid composition language HCL(L) of Section 5 (Fig. 5/6):
//
//   C := b          expression for a binary query (b in L)
//      | C / C'     composition
//      | x          variable (a node *test*, not a goto: [[x]] =
//                   {(alpha(x), alpha(x))})
//      | [C]        filter
//      | C u C'     disjunction
//
// HCL-(L) is the fragment whose compositions share no variables
// (condition NVS(/)). Expressions of HCL define n-ary queries via
// q_{C,x}(t) = { alpha(x) | [[C]]^{t,alpha} != {} } exactly as in Core
// XPath 2.0.
#ifndef XPV_HCL_AST_H_
#define XPV_HCL_AST_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "hcl/binary_query.h"
#include "xpath/eval.h"

namespace xpv::hcl {

enum class HclKind {
  kBinary,   // b in L
  kCompose,  // C / C'
  kVar,      // x
  kFilter,   // [C]
  kUnion,    // C u C'
};

using HclPtr = std::unique_ptr<struct HclExpr>;

/// An HCL(L) composition formula (Fig. 5).
struct HclExpr {
  HclKind kind;

  BinaryQueryPtr binary;  // kBinary
  std::string var;        // kVar
  HclPtr left;            // kCompose/kUnion (left), kFilter (body)
  HclPtr right;           // kCompose/kUnion

  static HclPtr Binary(BinaryQueryPtr b);
  static HclPtr Compose(HclPtr l, HclPtr r);
  static HclPtr Var(std::string name);
  static HclPtr Filter(HclPtr body);
  static HclPtr Union(HclPtr l, HclPtr r);

  HclPtr Clone() const;
  /// Composition size |C|: number of HCL nodes; binary-query leaves count
  /// 1 regardless of their inner |b| (Section 5).
  std::size_t Size() const;
  std::string ToString() const;
};

/// Free variables Var(C); HCL has no binders.
std::set<std::string> FreeVars(const HclExpr& c);

/// HCL-(L) membership: no variable sharing in compositions (NVS(/)).
Status CheckNoSharedComposition(const HclExpr& c);

/// [[C]]^{t,alpha} per Fig. 6, as a node-pair matrix. `relations` caches
/// q_b(t) per binary query across calls (pass the same map for repeated
/// evaluation on one tree). Ground-truth oracle for the efficient
/// algorithm of Section 7.
BitMatrix EvalHcl(const Tree& t, const HclExpr& c,
                  const xpath::Assignment& alpha,
                  std::map<const BinaryQuery*, BitMatrix>* relations);

/// q_{C,x}(t) by brute-force enumeration of assignments to Var(C)
/// (|t|^|Var(C)| evaluations). Tuple positions not occurring in C range
/// over all nodes.
xpath::TupleSet EvalHclNaryNaive(const Tree& t, const HclExpr& c,
                                 const std::vector<std::string>& tuple_vars);

}  // namespace xpv::hcl

#endif  // XPV_HCL_AST_H_
