// Polynomial-time n-ary query answering for HCL-(L) -- Section 7 of the
// paper (Propositions 10 and 11, Fig. 8).
//
// Pipeline, for a query q_{C,x} on a tree t:
//
//   1. Convert C to sharing normal form (D, Delta)      [Lemma 3, O(|C|)]
//   2. Precompile every b in L(C) into successor lists  [sum_b p(|b|,|t|)]
//   3. Compute the satisfiability table
//        MC(D0, u) = 1 iff ex. alpha, u' : (u,u') in [[D0_Delta]]^{t,alpha}
//      by memoized recursion                            [Prop. 10,
//                                                        O(|t|^2 (|D|+|Delta|))]
//   4. Enumerate partial valuations vals(D0, u) bottom-up, filtering
//      unsatisfiable branches through MC, deduplicating, and memoizing
//      (Fig. 8)                                         [Prop. 11,
//                                                        O((|D|+|Delta|) |t|^2 n |A|)]
//
// The key property making step 4 output-sensitive: because MC filters every
// recursive call, each intermediate valuation extends to at least one
// answer, so no dead work is enumerated and each memoized set has at most
// |A| elements.
#ifndef XPV_HCL_ANSWER_H_
#define XPV_HCL_ANSWER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "hcl/ast.h"
#include "hcl/sharing.h"
#include "tree/axis_cache.h"

namespace xpv::hcl {

/// A partial valuation over the query's variable list: val[i] is the node
/// assigned to variable i, or kNoNode when the variable is unset.
using PartialValuation = std::vector<NodeId>;
using ValuationSet = std::set<PartialValuation>;

/// Ablation switches for the Fig. 8 algorithm. Both default on; turning
/// either off preserves correctness (the recursion still computes exact
/// valuation sets) but forfeits the output-sensitivity analysis:
/// without MC filtering, dead branches are enumerated and discarded late;
/// without memoization, shared subformulas are recomputed per call site.
/// Used by the ablation benchmark (E11) and its correctness tests.
struct AnswerOptions {
  bool use_mc_filter = true;
  bool memoize_vals = true;
  /// Cooperative cancellation, observed inside the long-running phases
  /// (binary-query precompilation, the MC table loops, and every
  /// memoized vals() call) -- not just between jobs. When it fires,
  /// Prepare()/Answer() return kCancelled / kDeadlineExceeded.
  CancelToken cancel;
};

/// Answers one n-ary HCL-(L) query on one tree. Construct, Prepare(), then
/// Answer(); the intermediate artifacts (sharing form, MC table) stay
/// accessible for inspection, tests, and benchmarks.
class QueryAnswerer {
 public:
  /// `tuple_vars` is the output variable sequence x = x1...xn (repeats
  /// allowed). `axis_cache` optionally shares a per-tree axis-relation
  /// cache with other evaluations on `t` (e.g. other jobs of a
  /// QueryService batch); when null, Prepare() builds a private one.
  QueryAnswerer(const Tree& t, const HclExpr& c,
                std::vector<std::string> tuple_vars,
                AnswerOptions options = {},
                std::shared_ptr<AxisCache> axis_cache = nullptr);

  /// Steps 1-3: fragment check, sharing normal form, binary-query
  /// precompilation, MC table. Fails with FragmentViolation when C is not
  /// in HCL-(L).
  Status Prepare();

  /// Step 4: the answer set q_{C,x}(t). Prepare() must have succeeded.
  /// Fails only via the cancel token (kCancelled / kDeadlineExceeded);
  /// the token is sticky, so once a run has been interrupted every later
  /// call fails with the same status.
  Result<xpath::TupleSet> Answer();

  /// MC(D0, u) for the subformula with the given id (Prepare() first).
  bool Mc(int subformula_id, NodeId u) const {
    return mc_[static_cast<std::size_t>(subformula_id) * tree_.size() + u] ==
           1;
  }

  const SharingForm& form() const { return *form_; }

 private:
  bool ComputeMc(const SharingExpr& d, NodeId u);
  ValuationSet Vals(const SharingExpr& d, NodeId u);
  ValuationSet ValsCompute(const SharingExpr& d, NodeId u);
  /// extend_{t,X}: extends every valuation to be total on the variable
  /// index set X (unset positions in X range over all nodes).
  ValuationSet Extend(const ValuationSet& in,
                      const std::vector<int>& target_positions) const;
  std::vector<int> VarIndicesOf(int subformula_id) const;

  const Tree& tree_;
  const HclExpr& expr_;
  std::vector<std::string> tuple_vars_;
  AnswerOptions options_;
  std::shared_ptr<AxisCache> axis_cache_;
  /// Deduplicated query variables; valuations index into this.
  std::vector<std::string> query_vars_;
  std::map<std::string, int> var_index_;

  std::optional<SharingForm> form_;
  /// Successor lists per binary query (Prop. 10's precompiled structure).
  std::map<const BinaryQuery*, std::vector<std::vector<NodeId>>> successors_;
  /// MC table: -1 unknown, 0 false, 1 true; indexed [sub_id * |t| + u].
  std::vector<signed char> mc_;
  /// vals memoization; empty optional = not yet computed.
  std::vector<std::optional<ValuationSet>> vals_memo_;
  bool prepared_ = false;
  /// Sticky cancel status observed inside the vals() recursion; set by
  /// Vals() (which then unwinds fast with empty sets and stops
  /// memoizing, so no partial set is ever cached), surfaced by Answer().
  Status interrupted_;
};

/// One-shot convenience wrapper: Prepare() + Answer().
Result<xpath::TupleSet> AnswerQuery(const Tree& t, const HclExpr& c,
                                    const std::vector<std::string>& tuple_vars);

}  // namespace xpv::hcl

#endif  // XPV_HCL_ANSWER_H_
