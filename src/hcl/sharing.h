// Sharing expressions and equation systems (Section 7, Lemma 3).
//
// Naively distributing unions out of compositions, (C1 u C2)/C =>
// C1/C u C2/C, copies C and can explode exponentially. The paper instead
// introduces *sharing expressions* with parameters p referring to shared
// subformulas:
//
//   E ::= x | [D] | b                 (composition prefixes)
//   D ::= p | D u D' | E/D | self
//
// together with an acyclic equation system Delta = [p1 -> D1, ...]. Every
// HCL formula C converts in linear time to a pair (D, Delta) with
// D_Delta = C and |D| + |Delta| = O(|C|) (Lemma 3), by rewriting
//
//   (C1 u C2)/C  =>  C1/p u C2/p   where Delta(p) = C
//
// exhaustively and terminating every branch with .../self.
//
// The SharingForm class owns (D, Delta) plus the bookkeeping the Section 7
// algorithms need: an id per D-subformula, the free variables
// Var(D0_Delta) per subformula, and the set of distinct binary queries.
#ifndef XPV_HCL_SHARING_H_
#define XPV_HCL_SHARING_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hcl/ast.h"

namespace xpv::hcl {

enum class SharingKind {
  kSelf,     // self
  kParam,    // p
  kUnion,    // D u D'
  kCompose,  // E/D
};

enum class PrefixKind {
  kVar,     // x
  kFilter,  // [D]
  kBinary,  // b
};

using SharingPtr = std::unique_ptr<struct SharingExpr>;

/// A composition prefix E ::= x | [D] | b.
struct PrefixExpr {
  PrefixKind kind;
  std::string var;         // kVar
  BinaryQueryPtr binary;   // kBinary
  SharingPtr filter_body;  // kFilter
};

/// A sharing formula D.
struct SharingExpr {
  SharingKind kind;
  int param = -1;                      // kParam: index into Delta
  std::unique_ptr<PrefixExpr> prefix;  // kCompose: the E
  SharingPtr left;                     // kUnion (left), kCompose (the D)
  SharingPtr right;                    // kUnion (right)

  // Assigned by SharingForm::Index(): dense id over all D-subformulas
  // reachable from the root and the equation system.
  int id = -1;

  std::string ToString() const;
  /// Number of nodes of this formula (prefixes and their filter bodies
  /// included), not following parameters.
  std::size_t Size() const;
};

/// The pair (D, Delta) of Lemma 3 plus indexing for the Section 7
/// algorithms.
class SharingForm {
 public:
  /// Converts an HCL formula to sharing normal form in linear time.
  static SharingForm FromHcl(const HclExpr& c);

  const SharingExpr& root() const { return *root_; }
  /// Delta(p).
  const SharingExpr& Def(int param) const { return *defs_[param]; }
  std::size_t num_params() const { return defs_.size(); }

  /// Total number of indexed D-subformulas (root + definitions).
  std::size_t num_subformulas() const { return subformulas_.size(); }
  const SharingExpr& Subformula(int id) const { return *subformulas_[id]; }

  /// |D| + |Delta| (the size measure of Lemma 3 / Prop. 10).
  std::size_t TotalSize() const;

  /// Var(D0_Delta) for the subformula with the given id (variables of the
  /// expansion, following parameters).
  const std::set<std::string>& VarsOf(int id) const { return vars_[id]; }

  /// Distinct binary queries occurring anywhere (the paper's L(C)).
  const std::vector<BinaryQueryPtr>& binary_queries() const {
    return binaries_;
  }

  /// Expands D_Delta back into a plain HCL formula (exponential in the
  /// worst case -- used by tests to validate Lemma 3's semantics
  /// preservation on small inputs).
  HclPtr Expand() const;

  std::string ToString() const;

 private:
  SharingForm() = default;

  void Index();
  HclPtr ExpandExpr(const SharingExpr& d) const;

  SharingPtr root_;
  std::vector<SharingPtr> defs_;
  std::vector<const SharingExpr*> subformulas_;
  std::vector<std::set<std::string>> vars_;
  std::vector<BinaryQueryPtr> binaries_;
};

}  // namespace xpv::hcl

#endif  // XPV_HCL_SHARING_H_
