#include "hcl/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "ppl/parser.h"

namespace xpv::hcl {

namespace {

enum class Tok {
  kName,
  kBraced,  // {raw pplbin text}
  kSlash,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kAxisSep,
  kStar,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  std::size_t offset = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    std::size_t start = pos;
    if (IsNameStart(c)) {
      ++pos;
      while (pos < text.size() && IsNameChar(text[pos])) ++pos;
      out.push_back({Tok::kName, std::string(text.substr(start, pos - start)),
                     start});
      continue;
    }
    switch (c) {
      case '{': {
        std::size_t end = text.find('}', pos);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated '{' at offset " +
                                         std::to_string(start));
        }
        out.push_back({Tok::kBraced,
                       std::string(text.substr(pos + 1, end - pos - 1)),
                       start});
        pos = end + 1;
        break;
      }
      case '/':
        out.push_back({Tok::kSlash, "/", start});
        ++pos;
        break;
      case '[':
        out.push_back({Tok::kLBracket, "[", start});
        ++pos;
        break;
      case ']':
        out.push_back({Tok::kRBracket, "]", start});
        ++pos;
        break;
      case '(':
        out.push_back({Tok::kLParen, "(", start});
        ++pos;
        break;
      case ')':
        out.push_back({Tok::kRParen, ")", start});
        ++pos;
        break;
      case '*':
        out.push_back({Tok::kStar, "*", start});
        ++pos;
        break;
      case ':':
        if (pos + 1 < text.size() && text[pos + 1] == ':') {
          out.push_back({Tok::kAxisSep, "::", start});
          pos += 2;
          break;
        }
        return Status::InvalidArgument("stray ':' at offset " +
                                       std::to_string(start));
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(start));
    }
  }
  out.push_back({Tok::kEnd, "", text.size()});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<HclPtr> ParseFull() {
    XPV_ASSIGN_OR_RETURN(HclPtr c, ParseUnion());
    if (Peek().kind != Tok::kEnd) return ErrorHere("unexpected trailing input");
    return c;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() {
    return tokens_[index_ < tokens_.size() - 1 ? index_++ : index_];
  }
  bool TryTake(Tok kind) {
    if (Peek().kind == kind) {
      Take();
      return true;
    }
    return false;
  }
  Status ErrorHere(std::string msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  /// Nesting bound over the parenthesized recursion: "((((..."
  /// otherwise recurses once per character and overflows the stack
  /// (found by fuzz_hcl_parser; fuzz/corpus/ keeps the reproducers).
  static constexpr int kMaxNestingDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int& d) : depth(d) { ++depth; }
    ~DepthGuard() { --depth; }
    int& depth;
  };

  Result<HclPtr> ParseUnion() {
    DepthGuard guard(depth_);
    if (depth_ > kMaxNestingDepth) {
      return ErrorHere("expression nests too deeply");
    }
    XPV_ASSIGN_OR_RETURN(HclPtr left, ParseCompose());
    while (Peek().kind == Tok::kName && Peek().text == "u") {
      Take();
      XPV_ASSIGN_OR_RETURN(HclPtr right, ParseCompose());
      left = HclExpr::Union(std::move(left), std::move(right));
    }
    return left;
  }

  Result<HclPtr> ParseCompose() {
    XPV_ASSIGN_OR_RETURN(HclPtr left, ParseAtom());
    while (TryTake(Tok::kSlash)) {
      XPV_ASSIGN_OR_RETURN(HclPtr right, ParseAtom());
      left = HclExpr::Compose(std::move(left), std::move(right));
    }
    return left;
  }

  Result<HclPtr> ParseAtom() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kBraced: {
        XPV_ASSIGN_OR_RETURN(ppl::PplBinPtr bin,
                             ppl::ParsePplBin(Take().text));
        return HclExpr::Binary(MakePplBinQuery(std::move(bin)));
      }
      case Tok::kLBracket: {
        Take();
        XPV_ASSIGN_OR_RETURN(HclPtr inner, ParseUnion());
        if (!TryTake(Tok::kRBracket)) return ErrorHere("expected ']'");
        return HclExpr::Filter(std::move(inner));
      }
      case Tok::kLParen: {
        Take();
        XPV_ASSIGN_OR_RETURN(HclPtr inner, ParseUnion());
        if (!TryTake(Tok::kRParen)) return ErrorHere("expected ')'");
        return inner;
      }
      case Tok::kName: {
        if (tok.text == "u") {
          return ErrorHere("'u' is the union keyword, not a variable");
        }
        // `nodes` is the full relation.
        if (tok.text == "nodes" && Peek(1).kind != Tok::kAxisSep) {
          Take();
          return HclExpr::Binary(MakeFullRelationQuery());
        }
        // Axis step when followed by '::', variable otherwise.
        if (Peek(1).kind == Tok::kAxisSep) {
          Result<Axis> axis = xpv::ParseAxis(tok.text);
          if (!axis.ok()) return ErrorHere("unknown axis '" + tok.text + "'");
          Take();
          Take();  // '::'
          const Token& nt = Peek();
          if (nt.kind == Tok::kStar) {
            Take();
            return HclExpr::Binary(
                MakePplBinQuery(ppl::PplBinExpr::Step(*axis, "*")));
          }
          if (nt.kind == Tok::kName) {
            return HclExpr::Binary(
                MakePplBinQuery(ppl::PplBinExpr::Step(*axis, Take().text)));
          }
          return ErrorHere("expected a name test or '*'");
        }
        return HclExpr::Var(Take().text);
      }
      default:
        return ErrorHere("expected an HCL expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<HclPtr> ParseHcl(std::string_view text) {
  XPV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseFull();
}

}  // namespace xpv::hcl
