#include "hcl/translate.h"

#include "xpath/fragment.h"

namespace xpv::hcl {

namespace {

using xpath::NodeRef;
using xpath::PathExpr;
using xpath::PathKind;
using xpath::PathPtr;
using xpath::TestExpr;
using xpath::TestKind;

/// Wraps a variable-free Core XPath 2.0 subexpression as a single PPLbin
/// binary-query leaf (via Fig. 4).
Result<HclPtr> PplBinLeaf(const PathExpr& p) {
  XPV_ASSIGN_OR_RETURN(ppl::PplBinPtr bin, ppl::FromXPath(p));
  return HclExpr::Binary(MakePplBinQuery(std::move(bin)));
}

Result<HclPtr> Translate(const PathExpr& p);

/// L./[T]M^{-1}: the partial identity of test T as an HCL formula.
Result<HclPtr> TranslateFilterTest(const TestExpr& t) {
  switch (t.kind) {
    case TestKind::kPath: {
      // LP1[P2]M^{-1} = LP1M^{-1} / [LP2M^{-1}] (NVS([]) ensures NVS(/)).
      XPV_ASSIGN_OR_RETURN(HclPtr inner, Translate(*t.path));
      return HclExpr::Filter(std::move(inner));
    }
    case TestKind::kIs: {
      // [. is .]: every node -- the identity, i.e. the `self` binary query.
      if (t.lhs.is_dot && t.rhs.is_dot) {
        return HclExpr::Binary(MakePplBinQuery(ppl::PplBinExpr::Self()));
      }
      // [. is $x] (either side): the HCL variable node test x.
      if (t.lhs.is_dot != t.rhs.is_dot) {
        const std::string& var = t.lhs.is_dot ? t.rhs.var : t.lhs.var;
        return HclExpr::Var(var);
      }
      // [$x is $y]: passes exactly at alpha(x) when alpha(x) = alpha(y);
      // the composition x/y of two variable tests.
      return HclExpr::Compose(HclExpr::Var(t.lhs.var),
                              HclExpr::Var(t.rhs.var));
    }
    case TestKind::kNot: {
      // LP[not T]M^{-1} = LPM^{-1} / .[not T]: NV(not) makes .[not T]
      // variable-free, hence a PPLbin leaf by Proposition 4.
      xpath::PathPtr as_path =
          PathExpr::Filter(PathExpr::Dot(), TestExpr::Not(t.a->Clone()));
      XPV_RETURN_IF_ERROR(xpath::CheckNoVariables(*as_path));
      return PplBinLeaf(*as_path);
    }
    case TestKind::kAnd: {
      // LP[T1 and T2]M^{-1} = LPM^{-1}/L./[T1]M^{-1}/L./[T2]M^{-1}
      // (NVS(and) guarantees NVS(/)).
      XPV_ASSIGN_OR_RETURN(HclPtr l, TranslateFilterTest(*t.a));
      XPV_ASSIGN_OR_RETURN(HclPtr r, TranslateFilterTest(*t.b));
      return HclExpr::Compose(std::move(l), std::move(r));
    }
    case TestKind::kOr: {
      // LP[T1 or T2]M^{-1} = P/(L./[T1]M^{-1} union L./[T2]M^{-1}).
      XPV_ASSIGN_OR_RETURN(HclPtr l, TranslateFilterTest(*t.a));
      XPV_ASSIGN_OR_RETURN(HclPtr r, TranslateFilterTest(*t.b));
      return HclExpr::Union(std::move(l), std::move(r));
    }
  }
  return Status::Internal("unreachable test kind");
}

Result<HclPtr> Translate(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kStep:
      // LA::NM^{-1} = A::N (a PPLbin step).
      return HclExpr::Binary(MakePplBinQuery(
          ppl::PplBinExpr::Step(p.axis, p.name_test.empty() ? "*"
                                                            : p.name_test)));
    case PathKind::kDot:
      // L.M^{-1} = self.
      return HclExpr::Binary(MakePplBinQuery(ppl::PplBinExpr::Self()));
    case PathKind::kVar:
      // L$xM^{-1} = nodes/x.
      return HclExpr::Compose(
          HclExpr::Binary(MakePplBinQuery(ppl::MakeNodesRelation())),
          HclExpr::Var(p.var));
    case PathKind::kFor:
      return Status::FragmentViolation("N(for): PPL has no for-loops");
    case PathKind::kCompose: {
      XPV_ASSIGN_OR_RETURN(HclPtr l, Translate(*p.left));
      XPV_ASSIGN_OR_RETURN(HclPtr r, Translate(*p.right));
      return HclExpr::Compose(std::move(l), std::move(r));
    }
    case PathKind::kUnion: {
      XPV_ASSIGN_OR_RETURN(HclPtr l, Translate(*p.left));
      XPV_ASSIGN_OR_RETURN(HclPtr r, Translate(*p.right));
      return HclExpr::Union(std::move(l), std::move(r));
    }
    case PathKind::kIntersect:
    case PathKind::kExcept:
      // NV(intersect)/NV(except): the whole subexpression is variable-free
      // and collapses into one PPLbin leaf modulo Proposition 4.
      XPV_RETURN_IF_ERROR(xpath::CheckNoVariables(p));
      return PplBinLeaf(p);
    case PathKind::kFilter: {
      XPV_ASSIGN_OR_RETURN(HclPtr l, Translate(*p.left));
      XPV_ASSIGN_OR_RETURN(HclPtr t, TranslateFilterTest(*p.test));
      return HclExpr::Compose(std::move(l), std::move(t));
    }
  }
  return Status::Internal("unreachable path kind");
}

}  // namespace

Result<HclPtr> PplToHcl(const xpath::PathExpr& p) {
  XPV_RETURN_IF_ERROR(xpath::CheckPpl(p));
  return Translate(p);
}

Result<xpath::PathPtr> HclToPpl(const HclExpr& c) {
  switch (c.kind) {
    case HclKind::kBinary: {
      // LbM = b, included into Core XPath 2.0 syntax.
      if (const auto* pplbin =
              dynamic_cast<const PplBinQuery*>(c.binary.get())) {
        return ppl::ToXPath(pplbin->expr());
      }
      if (const auto* axis = dynamic_cast<const AxisQuery*>(c.binary.get())) {
        return PathExpr::Step(axis->axis(), axis->name_test().empty()
                                                ? "*"
                                                : axis->name_test());
      }
      if (dynamic_cast<const FullRelationQuery*>(c.binary.get()) != nullptr) {
        return xpath::MakeNodesExpr();
      }
      return Status::InvalidArgument(
          "HclToPpl requires PPLbin/axis/full-relation binary queries, got " +
          c.binary->ToString());
    }
    case HclKind::kCompose: {
      XPV_ASSIGN_OR_RETURN(PathPtr l, HclToPpl(*c.left));
      XPV_ASSIGN_OR_RETURN(PathPtr r, HclToPpl(*c.right));
      return PathExpr::Compose(std::move(l), std::move(r));
    }
    case HclKind::kVar:
      // LxM = .[. is $x].
      return PathExpr::Filter(
          PathExpr::Dot(),
          TestExpr::Is(NodeRef::Dot(), NodeRef::Var(c.var)));
    case HclKind::kFilter: {
      // L[C]M = .[LCM].
      XPV_ASSIGN_OR_RETURN(PathPtr inner, HclToPpl(*c.left));
      return PathExpr::Filter(PathExpr::Dot(),
                              TestExpr::Path(std::move(inner)));
    }
    case HclKind::kUnion: {
      XPV_ASSIGN_OR_RETURN(PathPtr l, HclToPpl(*c.left));
      XPV_ASSIGN_OR_RETURN(PathPtr r, HclToPpl(*c.right));
      return PathExpr::Union(std::move(l), std::move(r));
    }
  }
  return Status::Internal("unreachable HCL kind");
}

}  // namespace xpv::hcl
