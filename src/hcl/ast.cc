#include "hcl/ast.h"

#include <cassert>

namespace xpv::hcl {

namespace {

HclPtr Make(HclKind kind) {
  auto c = std::make_unique<HclExpr>();
  c->kind = kind;
  return c;
}

/// Print precedence: union(0) < compose(1) < atoms(2).
int Level(const HclExpr& c) {
  switch (c.kind) {
    case HclKind::kUnion:
      return 0;
    case HclKind::kCompose:
      return 1;
    default:
      return 2;
  }
}

void Print(const HclExpr& c, std::string* out);

void PrintChild(const HclExpr& child, int required, std::string* out) {
  const bool parens = Level(child) < required;
  if (parens) *out += '(';
  Print(child, out);
  if (parens) *out += ')';
}

void Print(const HclExpr& c, std::string* out) {
  switch (c.kind) {
    case HclKind::kBinary: {
      // Wrap multi-token binary expressions so the printout is unambiguous.
      std::string b = c.binary->ToString();
      if (b.find(' ') != std::string::npos ||
          b.find('/') != std::string::npos) {
        *out += '{';
        *out += b;
        *out += '}';
      } else {
        *out += b;
      }
      return;
    }
    case HclKind::kCompose:
      PrintChild(*c.left, 1, out);
      *out += '/';
      PrintChild(*c.right, 2, out);
      return;
    case HclKind::kVar:
      *out += c.var;
      return;
    case HclKind::kFilter:
      *out += '[';
      Print(*c.left, out);
      *out += ']';
      return;
    case HclKind::kUnion:
      PrintChild(*c.left, 0, out);
      *out += " u ";
      PrintChild(*c.right, 1, out);
      return;
  }
}

void CollectVars(const HclExpr& c, std::set<std::string>* out) {
  switch (c.kind) {
    case HclKind::kBinary:
      return;
    case HclKind::kVar:
      out->insert(c.var);
      return;
    case HclKind::kFilter:
      CollectVars(*c.left, out);
      return;
    case HclKind::kCompose:
    case HclKind::kUnion:
      CollectVars(*c.left, out);
      CollectVars(*c.right, out);
      return;
  }
}

}  // namespace

HclPtr HclExpr::Binary(BinaryQueryPtr b) {
  auto c = Make(HclKind::kBinary);
  c->binary = std::move(b);
  return c;
}

HclPtr HclExpr::Compose(HclPtr l, HclPtr r) {
  auto c = Make(HclKind::kCompose);
  c->left = std::move(l);
  c->right = std::move(r);
  return c;
}

HclPtr HclExpr::Var(std::string name) {
  auto c = Make(HclKind::kVar);
  c->var = std::move(name);
  return c;
}

HclPtr HclExpr::Filter(HclPtr body) {
  auto c = Make(HclKind::kFilter);
  c->left = std::move(body);
  return c;
}

HclPtr HclExpr::Union(HclPtr l, HclPtr r) {
  auto c = Make(HclKind::kUnion);
  c->left = std::move(l);
  c->right = std::move(r);
  return c;
}

HclPtr HclExpr::Clone() const {
  auto c = std::make_unique<HclExpr>();
  c->kind = kind;
  c->binary = binary;  // shared, immutable
  c->var = var;
  if (left) c->left = left->Clone();
  if (right) c->right = right->Clone();
  return c;
}

std::size_t HclExpr::Size() const {
  std::size_t size = 1;
  if (left) size += left->Size();
  if (right) size += right->Size();
  return size;
}

std::string HclExpr::ToString() const {
  std::string out;
  Print(*this, &out);
  return out;
}

std::set<std::string> FreeVars(const HclExpr& c) {
  std::set<std::string> out;
  CollectVars(c, &out);
  return out;
}

Status CheckNoSharedComposition(const HclExpr& c) {
  switch (c.kind) {
    case HclKind::kBinary:
    case HclKind::kVar:
      return Status::OK();
    case HclKind::kFilter:
      return CheckNoSharedComposition(*c.left);
    case HclKind::kUnion:
      XPV_RETURN_IF_ERROR(CheckNoSharedComposition(*c.left));
      return CheckNoSharedComposition(*c.right);
    case HclKind::kCompose: {
      std::set<std::string> lv = FreeVars(*c.left);
      std::set<std::string> rv = FreeVars(*c.right);
      for (const auto& v : lv) {
        if (rv.contains(v)) {
          return Status::FragmentViolation(
              "NVS(/): variable " + v + " shared across composition '" +
              c.ToString() + "'");
        }
      }
      XPV_RETURN_IF_ERROR(CheckNoSharedComposition(*c.left));
      return CheckNoSharedComposition(*c.right);
    }
  }
  return Status::OK();
}

BitMatrix EvalHcl(const Tree& t, const HclExpr& c,
                  const xpath::Assignment& alpha,
                  std::map<const BinaryQuery*, BitMatrix>* relations) {
  const std::size_t n = t.size();
  switch (c.kind) {
    case HclKind::kBinary: {
      // [[b]] = q_b(t).
      if (relations != nullptr) {
        auto it = relations->find(c.binary.get());
        if (it == relations->end()) {
          it = relations->emplace(c.binary.get(), c.binary->Evaluate(t))
                   .first;
        }
        return it->second;
      }
      return c.binary->Evaluate(t);
    }
    case HclKind::kCompose:
      return EvalHcl(t, *c.left, alpha, relations)
          .Multiply(EvalHcl(t, *c.right, alpha, relations));
    case HclKind::kVar: {
      // [[x]] = {(alpha(x), alpha(x))}.
      auto it = alpha.find(c.var);
      assert(it != alpha.end() && "unbound variable in HCL evaluation");
      BitMatrix m(n);
      m.Set(it->second, it->second);
      return m;
    }
    case HclKind::kFilter:
      // [[ [C] ]] = {(u,u) | exists u': (u,u') in [[C]]}.
      return EvalHcl(t, *c.left, alpha, relations).FilterDiagonal();
    case HclKind::kUnion:
      return EvalHcl(t, *c.left, alpha, relations)
          .Or(EvalHcl(t, *c.right, alpha, relations));
  }
  return BitMatrix(n);
}

xpath::TupleSet EvalHclNaryNaive(const Tree& t, const HclExpr& c,
                                 const std::vector<std::string>& tuple_vars) {
  const std::size_t n = t.size();
  const std::set<std::string> free_vars = FreeVars(c);
  const std::vector<std::string> vars(free_vars.begin(), free_vars.end());

  std::vector<std::size_t> wildcard_positions;
  for (std::size_t i = 0; i < tuple_vars.size(); ++i) {
    if (!free_vars.contains(tuple_vars[i])) wildcard_positions.push_back(i);
  }

  std::map<const BinaryQuery*, BitMatrix> relations;
  xpath::TupleSet constrained;
  xpath::Assignment alpha;
  std::vector<NodeId> counters(vars.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < vars.size(); ++i) alpha[vars[i]] = counters[i];
    if (!EvalHcl(t, c, alpha, &relations).None()) {
      xpath::NodeTuple tuple(tuple_vars.size(), 0);
      for (std::size_t i = 0; i < tuple_vars.size(); ++i) {
        auto it = alpha.find(tuple_vars[i]);
        if (it != alpha.end()) tuple[i] = it->second;
      }
      constrained.insert(tuple);
    }
    std::size_t i = 0;
    for (; i < counters.size(); ++i) {
      if (++counters[i] < n) break;
      counters[i] = 0;
    }
    if (i == counters.size()) break;
  }
  return xpath::ExpandWildcardPositions(constrained, wildcard_positions, n);
}

}  // namespace xpv::hcl
