// The parameter language L of the hybrid composition language HCL(L)
// (Section 5): "a set of expressions b in L that define binary queries
// q_b". The paper instantiates L with the axes of Core XPath 2.0, with
// PPLbin, or with FObin; BinaryQuery is the common interface and the first
// two instantiations live here (the FObin instantiation lives in fo/).
//
// Implementations are immutable and shared via shared_ptr<const ...> so a
// binary query can appear at many leaves of an HclExpr without copies.
#ifndef XPV_HCL_BINARY_QUERY_H_
#define XPV_HCL_BINARY_QUERY_H_

#include <memory>
#include <string>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "ppl/pplbin.h"
#include "tree/axes.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"

namespace xpv::hcl {

/// An expression b in some binary query language L. Evaluate() returns the
/// full relation q_b(t); the query answering machinery precompiles it into
/// successor lists once per (query, tree) pair (Proposition 10's
/// "precompiled data structure that returns S_{u,b} in time |S_{u,b}|").
class BinaryQuery {
 public:
  virtual ~BinaryQuery() = default;

  /// q_b(t) as a Boolean relation matrix.
  virtual BitMatrix Evaluate(const Tree& t) const = 0;
  /// q_b(t) drawing axis relations and label sets from a shared per-tree
  /// cache, so all leaves of one composition (and all concurrent jobs on
  /// one tree) materialize each axis matrix once. Default: uncached.
  /// Fails with kResourceExhausted when the dense relation cannot
  /// materialize (tree beyond BitMatrix::kMaxDenseNodes) -- the HCL
  /// machinery is dense end-to-end, so an oversized tree on this path is
  /// a job error, never a crash.
  virtual Result<BitMatrix> EvaluateCached(
      const std::shared_ptr<AxisCache>& cache) const {
    return Evaluate(cache->tree());
  }
  /// Surface syntax of b (used in HclExpr::ToString).
  virtual std::string ToString() const = 0;
  /// |b| -- the size of b as an expression of L (a leaf of HCL has
  /// composition size 1 regardless; this is the inner size).
  virtual std::size_t ExprSize() const { return 1; }
};

using BinaryQueryPtr = std::shared_ptr<const BinaryQuery>;

/// L = axes of Core XPath 2.0: b = Axis::NameTest.
class AxisQuery : public BinaryQuery {
 public:
  AxisQuery(Axis axis, std::string name_test)
      : axis_(axis), name_test_(std::move(name_test)) {
    // Normalize after the move (not in the initializer, whose
    // compare-then-move GCC 12 misdiagnoses as a use of uninitialized
    // memory under -O2).
    if (name_test_ == "*") name_test_.clear();
  }

  BitMatrix Evaluate(const Tree& t) const override;
  Result<BitMatrix> EvaluateCached(
      const std::shared_ptr<AxisCache>& cache) const override;
  std::string ToString() const override;

  Axis axis() const { return axis_; }
  const std::string& name_test() const { return name_test_; }

 private:
  Axis axis_;
  std::string name_test_;  // empty = wildcard
};

/// L = PPLbin (Section 4): b is a PPLbin expression evaluated by the
/// Boolean-matrix engine in O(|b| |t|^3 / 64).
class PplBinQuery : public BinaryQuery {
 public:
  explicit PplBinQuery(ppl::PplBinPtr expr) : expr_(std::move(expr)) {}

  BitMatrix Evaluate(const Tree& t) const override;
  Result<BitMatrix> EvaluateCached(
      const std::shared_ptr<AxisCache>& cache) const override;
  std::string ToString() const override { return expr_->ToString(); }
  std::size_t ExprSize() const override { return expr_->Size(); }

  const ppl::PplBinExpr& expr() const { return *expr_; }

 private:
  ppl::PplBinPtr expr_;
};

/// The full relation nodes(t)^2 -- the paper's `nodes` binary query, used
/// by the L$xM^{-1} = nodes/x clause of Fig. 7.
class FullRelationQuery : public BinaryQuery {
 public:
  BitMatrix Evaluate(const Tree& t) const override {
    return BitMatrix::Full(t.size());
  }
  Result<BitMatrix> EvaluateCached(
      const std::shared_ptr<AxisCache>& cache) const override;
  std::string ToString() const override { return "nodes"; }
};

/// Convenience constructors.
BinaryQueryPtr MakeAxisQuery(Axis axis, std::string name_test = "*");
BinaryQueryPtr MakePplBinQuery(ppl::PplBinPtr expr);
BinaryQueryPtr MakeFullRelationQuery();

}  // namespace xpv::hcl

#endif  // XPV_HCL_BINARY_QUERY_H_
