// The two translations proving HCL-(PPLbin) = PPL (Proposition 5):
//
//   PplToHcl  -- Fig. 7, PPL -> HCL-(PPLbin). Variable-free subexpressions
//                (intersections, exceptions, negated tests) collapse into
//                single PPLbin binary-query leaves via the Fig. 4
//                translation; variables become HCL variable node tests;
//                goto-variables $x become nodes/x.
//
//   HclToPpl  -- the inclusion HCL-(PPLbin) -> PPL from the proof of
//                Proposition 5: LbM = b, LC/C'M = LCM/LC'M,
//                LxM = .[. is $x], L[C]M = .[LCM], LC u C'M = LCM union LC'M.
//
// Both translations are linear time and preserve n-ary query semantics;
// the round-trip tests in translations_test.cc verify this differentially.
#ifndef XPV_HCL_TRANSLATE_H_
#define XPV_HCL_TRANSLATE_H_

#include "common/status.h"
#include "hcl/ast.h"
#include "xpath/ast.h"

namespace xpv::hcl {

/// Fig. 7: translates a PPL expression (Definition 1) into HCL-(PPLbin).
/// Fails with FragmentViolation when `p` is not in PPL.
Result<HclPtr> PplToHcl(const xpath::PathExpr& p);

/// Proposition 5 inclusion: translates HCL-(PPLbin) into PPL syntax.
/// Binary-query leaves must be PplBinQuery, AxisQuery or
/// FullRelationQuery; fails otherwise. The output satisfies CheckPpl
/// whenever the input satisfies NVS(/).
Result<xpath::PathPtr> HclToPpl(const HclExpr& c);

}  // namespace xpv::hcl

#endif  // XPV_HCL_TRANSLATE_H_
