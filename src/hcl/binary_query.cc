#include "hcl/binary_query.h"

#include "ppl/matrix_engine.h"

namespace xpv::hcl {

BitMatrix AxisQuery::Evaluate(const Tree& t) const {
  BitMatrix m = AxisMatrix(t, axis_);
  if (name_test_.empty()) return m;
  return m.MaskColumns(LabelSet(t, name_test_));
}

BitMatrix AxisQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  const BitMatrix& m = cache->Matrix(axis_);
  if (name_test_.empty()) return m;
  return m.MaskColumns(cache->Labels(name_test_));
}

std::string AxisQuery::ToString() const {
  std::string out(AxisName(axis_));
  out += "::";
  out += name_test_.empty() ? "*" : name_test_;
  return out;
}

BitMatrix PplBinQuery::Evaluate(const Tree& t) const {
  ppl::MatrixEngine engine(t);
  return engine.Evaluate(*expr_);
}

BitMatrix PplBinQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  ppl::MatrixEngine engine(cache);
  return engine.Evaluate(*expr_);
}

BinaryQueryPtr MakeAxisQuery(Axis axis, std::string name_test) {
  return std::make_shared<AxisQuery>(axis, std::move(name_test));
}

BinaryQueryPtr MakePplBinQuery(ppl::PplBinPtr expr) {
  return std::make_shared<PplBinQuery>(std::move(expr));
}

BinaryQueryPtr MakeFullRelationQuery() {
  return std::make_shared<FullRelationQuery>();
}

}  // namespace xpv::hcl
