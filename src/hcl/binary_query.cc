#include "hcl/binary_query.h"

#include "ppl/matrix_engine.h"

namespace xpv::hcl {

BitMatrix AxisQuery::Evaluate(const Tree& t) const {
  BitMatrix m = AxisMatrix(t, axis_);
  if (name_test_.empty()) return m;
  return m.MaskColumns(LabelSet(t, name_test_));
}

BitMatrix AxisQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  const BoolMatrix& axis = cache->Matrix(axis_);
  if (const BitMatrix* dense = axis.AsDense()) {
    if (name_test_.empty()) return *dense;
    return dense->MaskColumns(cache->Labels(name_test_));
  }
  // HCL machinery is dense end-to-end; kNaryAnswer plans are refused
  // beyond BitMatrix::kMaxDenseNodes before reaching this leaf.
  BitMatrix m = ToDenseOrAbort(axis);
  if (!name_test_.empty()) m.MaskColumnsInPlace(cache->Labels(name_test_));
  return m;
}

std::string AxisQuery::ToString() const {
  std::string out(AxisName(axis_));
  out += "::";
  out += name_test_.empty() ? "*" : name_test_;
  return out;
}

BitMatrix PplBinQuery::Evaluate(const Tree& t) const {
  ppl::MatrixEngine engine(t);
  return engine.Evaluate(*expr_);
}

BitMatrix PplBinQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  ppl::MatrixEngine engine(cache);
  return engine.Evaluate(*expr_);
}

BinaryQueryPtr MakeAxisQuery(Axis axis, std::string name_test) {
  return std::make_shared<AxisQuery>(axis, std::move(name_test));
}

BinaryQueryPtr MakePplBinQuery(ppl::PplBinPtr expr) {
  return std::make_shared<PplBinQuery>(std::move(expr));
}

BinaryQueryPtr MakeFullRelationQuery() {
  return std::make_shared<FullRelationQuery>();
}

}  // namespace xpv::hcl
