#include "hcl/binary_query.h"

#include "ppl/matrix_engine.h"

namespace xpv::hcl {

BitMatrix AxisQuery::Evaluate(const Tree& t) const {
  BitMatrix m = AxisMatrix(t, axis_);
  if (name_test_.empty()) return m;
  return m.MaskColumns(LabelSet(t, name_test_));
}

Result<BitMatrix> AxisQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  const BoolMatrix& axis = cache->Matrix(axis_);
  if (const BitMatrix* dense = axis.AsDense()) {
    if (name_test_.empty()) return *dense;
    return dense->MaskColumns(cache->Labels(name_test_));
  }
  // HCL machinery is dense end-to-end; kNaryAnswer plans are refused
  // beyond BitMatrix::kMaxDenseNodes before reaching this leaf, and a
  // caller that slips through gets a job error, not a crash.
  XPV_ASSIGN_OR_RETURN(BitMatrix m, axis.ToDense());
  if (!name_test_.empty()) m.MaskColumnsInPlace(cache->Labels(name_test_));
  return m;
}

std::string AxisQuery::ToString() const {
  std::string out(AxisName(axis_));
  out += "::";
  out += name_test_.empty() ? "*" : name_test_;
  return out;
}

BitMatrix PplBinQuery::Evaluate(const Tree& t) const {
  ppl::MatrixEngine engine(t);
  return engine.Evaluate(*expr_);
}

Result<BitMatrix> PplBinQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  ppl::MatrixEngine engine(cache);
  return engine.EvaluateDense(*expr_);
}

Result<BitMatrix> FullRelationQuery::EvaluateCached(
    const std::shared_ptr<AxisCache>& cache) const {
  const std::size_t n = cache->tree().size();
  // Gate the O(n^2)-bit fill behind the fallible constructor instead of
  // letting BitMatrix::Full allocate unboundedly on an oversized tree.
  XPV_ASSIGN_OR_RETURN(BitMatrix m, BitMatrix::Create(n));
  for (std::size_t r = 0; r < n; ++r) m.SetRowRange(r, 0, n);
  return m;
}

BinaryQueryPtr MakeAxisQuery(Axis axis, std::string name_test) {
  return std::make_shared<AxisQuery>(axis, std::move(name_test));
}

BinaryQueryPtr MakePplBinQuery(ppl::PplBinPtr expr) {
  return std::make_shared<PplBinQuery>(std::move(expr));
}

BinaryQueryPtr MakeFullRelationQuery() {
  return std::make_shared<FullRelationQuery>();
}

}  // namespace xpv::hcl
