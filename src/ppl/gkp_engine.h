// Successor-set evaluation for the positive (complement-free) fragment of
// PPLbin -- "the main evaluation trick of Core XPath 1.0" recalled in
// Section 4 of the paper (Gottlob, Koch, Pichler): the image
// S_P(N) = { u' | exists u in N, (u, u') in [[P]] } of a node set N is
// computable in O(|P| |t|) time, because each axis image is linear and
// filter tests reduce to domain computations via path reversal.
//
// This yields:
//   * monadic queries from the root in O(|P| |t|),
//   * the full binary relation in O(|P| |t|^2) (one image per start node),
// which the E10 benchmark contrasts with the O(|P| |t|^3 / 64) matrix
// engine. The paper points out exactly this asymmetry: "it is not clear
// whether this trick can be used for evaluating PPLbin, since the except
// operator can occur at any position" -- hence the matrix algorithm for
// the full language, and this engine for its positive part.
#ifndef XPV_PPL_GKP_ENGINE_H_
#define XPV_PPL_GKP_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "ppl/pplbin.h"
#include "tree/axis_cache.h"
#include "tree/tree.h"

namespace xpv::ppl {

class RelationCache;

/// Linear-time set-image evaluator for positive PPLbin expressions.
/// Domain sets of filter subexpressions are cached across Image() calls,
/// so evaluating the full binary relation costs O(|P| |t|^2) overall.
/// Label sets come from an AxisCache: private by default, or shared with
/// other engines and jobs on the same tree when one is supplied (this
/// engine never materializes axis matrices -- it only shares label sets).
class GkpEngine {
 public:
  explicit GkpEngine(const Tree& tree)
      : GkpEngine(std::make_shared<AxisCache>(tree)) {}

  /// Shares the given per-tree cache (label sets only).
  explicit GkpEngine(std::shared_ptr<AxisCache> cache)
      : tree_(cache->tree()), cache_(std::move(cache)) {}

  /// Attaches a shared subrelation cache (ppl/relation_cache.h):
  /// Relation() consults it for the whole expression under this engine's
  /// own "gkp" representation tag before running the per-start-node
  /// image loop, and publishes the relation it computes. Null detaches.
  void set_relation_cache(std::shared_ptr<RelationCache> cache) {
    rel_cache_ = std::move(cache);
  }

  /// Shared-cache consults performed by Relation(), mirroring
  /// MatrixEngineStats::subrel_hits / subrel_misses for aggregation into
  /// ServiceStats.
  std::uint64_t subrel_hits() const { return subrel_hits_; }
  std::uint64_t subrel_misses() const { return subrel_misses_; }

  /// S_P(N). Fails with FragmentViolation if P contains `except`.
  Result<BitVector> Image(const PplBinExpr& p, const BitVector& from);

  /// domain(P) = { u | exists u': (u, u') in [[P]] }, via reversal.
  Result<BitVector> Domain(const PplBinExpr& p);

  /// The full relation [[P]]. Rows outside domain(P) are empty, so the
  /// per-start-node image loop runs only over the domain -- computed
  /// first via one reversal image, O(|P| |t|). Label-selective queries
  /// (small domains) pay O(|P| |t| |domain|) instead of O(|P| |t|^2).
  Result<BitMatrix> Relation(const PplBinExpr& p);

  /// Monadic query from one start node: S_P({u}), O(|P| |t|).
  Result<BitVector> EvaluateFromNode(const PplBinExpr& p, NodeId u);
  /// Monadic query from the root.
  Result<BitVector> FromRoot(const PplBinExpr& p);

 private:
  BitVector ImagePositive(const PplBinExpr& p, const BitVector& from);
  /// domain(P) by reversal; requires P positive (checked by callers).
  BitVector DomainPositive(const PplBinExpr& p);

  const Tree& tree_;
  std::shared_ptr<AxisCache> cache_;
  std::shared_ptr<RelationCache> rel_cache_;
  std::uint64_t subrel_hits_ = 0;
  std::uint64_t subrel_misses_ = 0;
  // Domain cache keyed by the filter subexpression's surface text.
  // ToString round-trips, so equal keys mean equal expressions; pointer
  // keys would dangle across calls (expressions -- including the
  // temporaries built by syntactic reversal -- die while the engine
  // lives, and the allocator reuses their addresses).
  std::map<std::string, BitVector> domain_cache_;
};

}  // namespace xpv::ppl

#endif  // XPV_PPL_GKP_ENGINE_H_
