// Algebraic simplification of PPLbin expressions; the Fig. 4 translation
// emits double complements (intersect elimination) and identity
// compositions that these semantics-preserving rewrites remove:
//
//   P/self::* => P   self::*/P => P   P union P => P
//   except except P => P              [[P]] => [P]
//
// Checked differentially in simplify_test.cc.
#ifndef XPV_PPL_SIMPLIFY_H_
#define XPV_PPL_SIMPLIFY_H_

#include "ppl/pplbin.h"

namespace xpv::ppl {

/// Simplifies a PPLbin expression; never grows it.
PplBinPtr Simplify(PplBinPtr p);

}  // namespace xpv::ppl

#endif  // XPV_PPL_SIMPLIFY_H_
