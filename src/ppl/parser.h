// Parser for the PPLbin surface syntax (the Fig. 3 grammar as printed by
// PplBinExpr::ToString):
//
//   P := Axis::NameTest | .          (self::* sugar)
//      | P / P                       (composition, binds tighter than union)
//      | P union P
//      | except P                    (prefix complement, binds tighter
//                                     than / so `a/except b` parses as
//                                     a/(except b))
//      | [ P ]                       (domain partial identity)
//      | ( P )
//
// Round-trips with PplBinExpr::ToString: Parse(p.ToString()).Equals(p).
#ifndef XPV_PPL_PARSER_H_
#define XPV_PPL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "ppl/pplbin.h"

namespace xpv::ppl {

/// Parses a PPLbin expression.
Result<PplBinPtr> ParsePplBin(std::string_view text);

}  // namespace xpv::ppl

#endif  // XPV_PPL_PARSER_H_
